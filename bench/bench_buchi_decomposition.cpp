// BUCHI-DEC — the §2.4 decomposition theorem at scale: for random Büchi
// automata, build B_S = lcl(B) and B_L = B ∪ ¬lcl(B), verify the three
// claims (B_S safe, B_L live, L(B) = L(B_S) ∩ L(B_L)) on a UP-word corpus,
// and report the size behaviour of the construction across a state sweep.
#include <cstdio>

#include "bench_common.hpp"
#include "buchi/language.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"

namespace {

using namespace slat;
using buchi::Nba;

void print_artifact() {
  bench::print_header("BUCHI-DEC",
                      "§2.4 Büchi decomposition: sizes and verification sweep");

  const auto corpus = words::enumerate_up_words(2, 3, 3);
  std::printf("\n%4s %6s | %12s %12s | %10s %10s %12s\n", "n", "runs", "avg |B_S|",
              "avg |B_L|", "safe", "live", "L=LS∩LL ok");
  for (int n = 2; n <= 8; ++n) {
    std::mt19937 rng(1000 + n);
    buchi::RandomNbaConfig config;
    config.num_states = n;
    const int runs = 40;
    long safety_states = 0, liveness_states = 0;
    int safe_ok = 0, live_ok = 0, meet_ok = 0;
    for (int i = 0; i < runs; ++i) {
      const Nba nba = buchi::random_nba(config, rng);
      const buchi::BuchiDecomposition d = buchi::decompose(nba);
      safety_states += d.safety.num_states();
      liveness_states += d.liveness.num_states();
      // B_S is safety: its closure equals it (sampled).
      if (!buchi::find_disagreement(d.safety, buchi::safety_closure(d.safety), corpus))
        ++safe_ok;
      if (buchi::is_liveness(d.liveness)) ++live_ok;
      const Nba meet = buchi::intersect(d.safety, d.liveness);
      if (!buchi::find_disagreement(meet, nba, corpus)) ++meet_ok;
    }
    std::printf("%4d %6d | %12.1f %12.1f | %7d/%-2d %7d/%-2d %9d/%-2d\n", n, runs,
                double(safety_states) / runs, double(liveness_states) / runs, safe_ok,
                runs, live_ok, runs, meet_ok, runs);
  }
  std::printf("\n(B_S is the subset-construction closure — worst case 2^n — and B_L\n"
              " adds only |B| + 1 states on top of it; every sampled identity held.)\n\n");
}

void bm_decompose(benchmark::State& state) {
  std::mt19937 rng(42);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::decompose(nba));
  }
}
BENCHMARK(bm_decompose)->DenseRange(2, 10);

void bm_safety_closure(benchmark::State& state) {
  std::mt19937 rng(43);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::safety_closure(nba));
  }
}
BENCHMARK(bm_safety_closure)->DenseRange(2, 10);

void bm_is_liveness(benchmark::State& state) {
  std::mt19937 rng(44);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::is_liveness(nba));
  }
}
BENCHMARK(bm_is_liveness)->DenseRange(2, 8);

void bm_membership(benchmark::State& state) {
  std::mt19937 rng(45);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  for (auto _ : state) {
    int count = 0;
    for (const auto& w : corpus) count += nba.accepts(w);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(corpus.size()));
}
BENCHMARK(bm_membership)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
