// ABL-COMP — ablation: the rank-based complementation.
// The paper's lattice of Büchi-definable languages is a Boolean algebra
// because complementation exists; this bench measures what that closure
// property costs, and what the two implementation levers (trimming the
// input, tightening the rank bound from 2n to 2(n-|F|)) buy.
#include <cstdio>

#include "bench_common.hpp"
#include "buchi/complement.hpp"
#include "buchi/language.hpp"
#include "buchi/random.hpp"
#include "core/parallel.hpp"

namespace {

using namespace slat;
using buchi::Nba;

void print_artifact() {
  bench::print_header("ABL-COMP", "rank-based complementation blowup + ablation");

  std::printf("\n%3s %6s | %14s %14s | %16s\n", "n", "runs", "avg |C| tight",
              "avg |C| 2n", "tight/naive size");
  for (int n = 1; n <= 4; ++n) {
    std::mt19937 rng(500 + n);
    buchi::RandomNbaConfig config;
    config.num_states = n;
    const int runs = 12;
    double tight_states = 0, naive_states = 0;
    for (int i = 0; i < runs; ++i) {
      const Nba nba = buchi::random_nba(config, rng);
      const Nba tight = buchi::complement(nba);  // trims + 2(n-|F|) bound
      const Nba naive = buchi::complement(nba, 2 * nba.num_states());
      tight_states += tight.num_states();
      naive_states += naive.num_states();
    }
    std::printf("%3d %6d | %14.1f %14.1f | %15.2f%%\n", n, runs, tight_states / runs,
                naive_states / runs, 100.0 * tight_states / naive_states);
  }
  std::printf("\n(the tight bound keeps the construction usable for the language-level\n"
              " equivalence checks the test suite and the lattice instance rely on)\n\n");
}

void bm_complement_tight(benchmark::State& state) {
  std::mt19937 rng(600);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::complement(nba));
  }
}
BENCHMARK(bm_complement_tight)->DenseRange(1, 4);

void bm_complement_naive_bound(benchmark::State& state) {
  std::mt19937 rng(600);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::complement(nba, 2 * nba.num_states()));
  }
}
BENCHMARK(bm_complement_naive_bound)->DenseRange(1, 3);

// Thread sweep: a fixed pool of instances complemented concurrently via the
// parallel layer. One grain-1 chunk per automaton; each complement() call
// itself runs inline on its worker (nested parallelism goes inline), so the
// sweep isolates the instance-level scaling. Results are discarded per slot —
// the equivalence tests already pin outputs to be thread-count independent.
void bm_complement_pool(benchmark::State& state) {
  slat::bench::ThreadSweepGuard guard(state);
  std::mt19937 rng(602);
  buchi::RandomNbaConfig config;
  config.num_states = 4;
  std::vector<Nba> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(buchi::random_nba(config, rng));
  for (auto _ : state) {
    core::parallel_for(
        static_cast<int>(pool.size()),
        [&](int i) { benchmark::DoNotOptimize(buchi::complement(pool[i])); },
        /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(bm_complement_pool)->SLAT_BENCH_THREAD_ARGS;

void bm_equivalence_check(benchmark::State& state) {
  std::mt19937 rng(601);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba lhs = buchi::random_nba(config, rng);
  const Nba rhs = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::is_subset(lhs, rhs));
  }
}
BENCHMARK(bm_equivalence_check)->DenseRange(2, 4);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
