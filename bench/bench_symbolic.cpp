// SYM-SWEEP — the PR9 symbolic cube backend vs the explicit per-letter
// pipeline, swept over alphabet size. The formula family fixes the tableau
// (the fairness conjunction ⋀_{i<c} G F p_i: 2^c pending-obligation sets,
// every edge labeled by a cube over the pending APs) and grows only k, the
// number of atomic propositions: the explicit backend materializes
// Θ(edges · 2^(k-c)) transitions — per-letter rows for every free AP
// combination — while the symbolic edge count never moves. That separation
// is the acceptance gate (≥10× time AND ≥10× peak RSS at k = 10, and a
// k = 16 run that never materializes a letter).
//
// Registration order is load-bearing for the RSS counters: peak RSS is
// process-monotone, so the symbolic benchmarks run FIRST, while the
// high-water mark is still the small symbolic footprint; the explicit
// benchmarks then raise it. For the same reason the gated run disables the
// artifact table below (SLAT_BENCH_ARTIFACT=0) — it materializes the
// explicit automata up to k = 10 before any benchmark runs.
// scripts/run_benches.sh gates on the k = 10 medians of 5 repetitions
// (BENCH_PR9.json).
//
// Before any k = 10 timing, the explicit benchmark asserts the two
// backends' automata are BIT-identical after cube expansion — a mismatch
// aborts the bench rather than timing two different computations.
#include <sys/resource.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "buchi/safety.hpp"
#include "buchi/symbolic.hpp"
#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "ltl/translate.hpp"

namespace {

using namespace slat;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

void record_rss(benchmark::State& state, double rss_before) {
  const double rss_after = peak_rss_mb();
  state.counters["peak_rss_mb"] = rss_after;
  state.counters["rss_growth_mb"] = std::max(0.0, rss_after - rss_before);
}

/// The gate runs the explicit pipeline up to here; beyond, 2^k letters are
/// out of the question and only the symbolic backend continues.
constexpr int kMaxExplicitK = 10;
/// Fairness conjuncts: the tableau has ~2^c states and c·2^(2c-2) edges,
/// independent of k. Fixed across the sweep so k is the ONLY moving part
/// (clamped to k at the sweep's low end, where fewer APs exist).
constexpr int kConjuncts = 6;

words::Alphabet ap_alphabet(int k) {
  std::vector<std::string> aps;
  aps.reserve(k);
  for (int i = 0; i < k; ++i) aps.push_back("p" + std::to_string(i));
  return words::Alphabet::of_aps(aps);
}

std::string fairness_text(int k, int conjuncts = kConjuncts) {
  std::string text;
  for (int i = 0; i < std::min(conjuncts, k); ++i) {
    if (i > 0) text += " & ";
    text += "G F p" + std::to_string(i);
  }
  return text;
}

void BM_SymbolicToNbaClosure(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int k = static_cast<int>(state.range(0));
  ltl::LtlArena arena(ap_alphabet(k));
  const ltl::FormulaId f = *arena.parse(fairness_text(k));
  const double rss_before = peak_rss_mb();
  int states = 0;
  std::size_t edges = 0;
  std::uint64_t expanded = 0;
  std::size_t labels = 0;
  for (auto _ : state) {
    const buchi::SymbolicNba closure =
        buchi::safety_closure(ltl::to_nba_symbolic(arena, f));
    states = closure.num_states();
    edges = closure.num_edges();
    expanded = closure.store()->stats().expanded_letters;
    labels = closure.store()->num_labels();
    benchmark::DoNotOptimize(closure);
  }
  // The scaling contract itself: the symbolic pipeline NEVER materializes a
  // letter, at any k — asserted, not just reported.
  SLAT_ASSERT_MSG(expanded == 0, "symbolic pipeline expanded letters");
  state.counters["closure_states"] = states;
  state.counters["closure_edges"] = static_cast<double>(edges);
  state.counters["store_labels"] = static_cast<double>(labels);
  state.counters["expanded_letters"] = static_cast<double>(expanded);
  record_rss(state, rss_before);
}
BENCHMARK(BM_SymbolicToNbaClosure)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(14)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// The explicit reference runs immediately after the symbolic sweep — peak
// RSS is process-monotone, so the symbolic rows must be recorded while the
// high-water mark is still theirs. The (heavier) inclusion benchmarks come
// last for the same reason.

void BM_SymbolicInclusion(benchmark::State& state) {
  // The antichain engine over condensed block pseudo-letters: the fairness
  // conjunction against itself minus its last conjunct (included, so the
  // search runs to the full fixpoint instead of exiting on an early
  // witness). Four conjuncts: inclusion squares the state space, so the
  // input is a notch smaller than the translation sweep's.
  core::CacheEnabledScope cache_off(false);
  const int k = static_cast<int>(state.range(0));
  ltl::LtlArena arena(ap_alphabet(k));
  const ltl::FormulaId lhs = *arena.parse(fairness_text(k, 4));
  const ltl::FormulaId rhs = *arena.parse(fairness_text(k, 3));
  const buchi::SymbolicNba sl = ltl::to_nba_symbolic(arena, lhs);
  const buchi::SymbolicNba sr = ltl::to_nba_symbolic(arena, rhs);
  const double rss_before = peak_rss_mb();
  bool included = false;
  for (auto _ : state) {
    included = buchi::check_inclusion(sl, sr).included;
    benchmark::DoNotOptimize(included);
  }
  SLAT_ASSERT_MSG(included, "the fairness conjunction must imply its weakening");
  record_rss(state, rss_before);
}

void BM_ExplicitToNbaClosure(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int k = static_cast<int>(state.range(0));
  SLAT_ASSERT_MSG(k <= kMaxExplicitK, "explicit backend beyond the letter budget");
  ltl::LtlArena arena(ap_alphabet(k));
  const ltl::FormulaId f = *arena.parse(fairness_text(k));
  if (k == kMaxExplicitK) {
    // Agreement BEFORE timing: at the gate point the two backends must
    // produce the same automaton bit for bit, or the comparison is void.
    const buchi::SymbolicNba symbolic = ltl::to_nba_symbolic(arena, f);
    const buchi::Nba expl = ltl::to_nba(arena, f);
    SLAT_ASSERT_MSG(
        buchi::fingerprint(symbolic.expand()) == buchi::fingerprint(expl),
        "symbolic and explicit automata diverged at the gate k");
    SLAT_ASSERT_MSG(
        buchi::fingerprint(buchi::safety_closure(symbolic).expand()) ==
            buchi::fingerprint(buchi::safety_closure(expl)),
        "symbolic and explicit closures diverged at the gate k");
  }
  const double rss_before = peak_rss_mb();
  int states = 0;
  long transitions = 0;
  for (auto _ : state) {
    const buchi::Nba closure = buchi::safety_closure(ltl::to_nba(arena, f));
    states = closure.num_states();
    transitions = closure.num_transitions();
    benchmark::DoNotOptimize(closure);
  }
  state.counters["closure_states"] = states;
  state.counters["closure_transitions"] = static_cast<double>(transitions);
  state.counters["letters"] = static_cast<double>(arena.alphabet().size());
  record_rss(state, rss_before);
}
BENCHMARK(BM_ExplicitToNbaClosure)
    ->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ExplicitInclusion(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int k = static_cast<int>(state.range(0));
  ltl::LtlArena arena(ap_alphabet(k));
  const ltl::FormulaId lhs = *arena.parse(fairness_text(k, 4));
  const ltl::FormulaId rhs = *arena.parse(fairness_text(k, 3));
  const buchi::Nba el = ltl::to_nba(arena, lhs);
  const buchi::Nba er = ltl::to_nba(arena, rhs);
  const double rss_before = peak_rss_mb();
  bool included = false;
  for (auto _ : state) {
    included = buchi::check_inclusion(el, er).included;
    benchmark::DoNotOptimize(included);
  }
  SLAT_ASSERT_MSG(included, "the fairness conjunction must imply its weakening");
  record_rss(state, rss_before);
}
BENCHMARK(BM_SymbolicInclusion)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExplicitInclusion)->Arg(8)->Unit(benchmark::kMillisecond);

void print_artifact() {
  bench::print_header("SYM-SWEEP",
                      "symbolic cube backend vs explicit letters (PR9)");
  std::printf("\nformula: %s   (c = %d conjuncts, k swept)\n\n",
              fairness_text(16).c_str(), kConjuncts);
  std::printf("%3s | %9s %10s %12s | %12s\n", "k", "letters", "sym edges",
              "sym labels", "expl trans");
  core::CacheEnabledScope cache_off(false);
  for (int k = 4; k <= 16; k += 2) {
    ltl::LtlArena arena(ap_alphabet(k));
    const ltl::FormulaId f = *arena.parse(fairness_text(k));
    const buchi::SymbolicNba symbolic = ltl::to_nba_symbolic(arena, f);
    long expl_transitions = -1;
    if (k <= kMaxExplicitK) {
      expl_transitions = ltl::to_nba(arena, f).num_transitions();
    }
    std::printf("%3d | %9llu %10zu %12zu | ", k,
                static_cast<unsigned long long>(symbolic.store()->num_letters()),
                symbolic.num_edges(), symbolic.store()->num_labels());
    if (expl_transitions >= 0) {
      std::printf("%12ld\n", expl_transitions);
    } else {
      std::printf("%12s\n", "(skipped)");
    }
  }
  std::printf("\n");
}

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
