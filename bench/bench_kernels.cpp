// KERNELS — the bitset state-set kernel vs the seed (ordered-map)
// implementations, measured in the same binary.
//
// The artifact table prints the measured speedup of the optimized subset
// construction, bisimulation reduction, and rank-based complementation over
// verbatim copies of the seed algorithms (std::map interning, sort+unique
// images), on the same random automata. The google-benchmark timings below
// give the per-kernel numbers BENCH_PR1.json aggregates; regenerate with
// scripts/run_benches.sh.
#include <algorithm>
#include <chrono>
#include <map>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "core/parallel.hpp"

namespace slat::buchi {
namespace {

// --- Seed subset construction, verbatim modulo the output shape.
struct ReferenceDetSafety {
  State initial = 0;
  State sink = 0;
  std::vector<std::vector<State>> delta;
};

ReferenceDetSafety reference_determinize(const Nba& closure) {
  ReferenceDetSafety out;
  const int sigma = closure.alphabet().size();
  std::map<std::vector<State>, State> intern;
  std::vector<std::vector<State>> worklist_sets;
  const auto intern_set = [&](const std::vector<State>& set) {
    auto it = intern.find(set);
    if (it == intern.end()) {
      it = intern.emplace(set, static_cast<State>(intern.size())).first;
      out.delta.emplace_back(sigma, -1);
      worklist_sets.push_back(set);
    }
    return it->second;
  };
  out.sink = intern_set({});
  if (closure.is_trivially_dead()) {
    out.initial = out.sink;
  } else {
    out.initial = intern_set({closure.initial()});
  }
  for (std::size_t next = 0; next < worklist_sets.size(); ++next) {
    const std::vector<State> current = worklist_sets[next];
    const State current_id = intern.at(current);
    for (Sym s = 0; s < sigma; ++s) {
      std::vector<State> image;
      for (State q : current) {
        for (State succ : closure.successors(q, s)) image.push_back(succ);
      }
      std::sort(image.begin(), image.end());
      image.erase(std::unique(image.begin(), image.end()), image.end());
      out.delta[current_id][s] = intern_set(std::move(image));
    }
  }
  return out;
}

// --- Seed bisimulation signature refinement, verbatim.
Nba reference_reduce(const Nba& input) {
  const Nba trimmed = input.trim();
  const int n = trimmed.num_states();
  const Sym sigma = trimmed.alphabet().size();
  std::vector<int> cls(n);
  for (State q = 0; q < n; ++q) cls[q] = trimmed.is_accepting(q) ? 1 : 0;
  while (true) {
    std::map<std::vector<int>, int> signature_to_class;
    std::vector<int> next_cls(n);
    for (State q = 0; q < n; ++q) {
      std::vector<int> signature{cls[q]};
      for (Sym s = 0; s < sigma; ++s) {
        std::vector<int> succ_classes;
        for (State to : trimmed.successors(q, s)) succ_classes.push_back(cls[to]);
        std::sort(succ_classes.begin(), succ_classes.end());
        succ_classes.erase(std::unique(succ_classes.begin(), succ_classes.end()),
                           succ_classes.end());
        signature.push_back(-1);
        signature.insert(signature.end(), succ_classes.begin(), succ_classes.end());
      }
      next_cls[q] = signature_to_class
                        .emplace(std::move(signature),
                                 static_cast<int>(signature_to_class.size()))
                        .first->second;
    }
    const bool stable = static_cast<int>(signature_to_class.size()) ==
                        1 + *std::max_element(cls.begin(), cls.end());
    cls = std::move(next_cls);
    if (stable) break;
  }
  const int num_classes = 1 + *std::max_element(cls.begin(), cls.end());
  if (num_classes == n) return trimmed;
  Nba out(trimmed.alphabet(), num_classes, cls[trimmed.initial()]);
  for (State q = 0; q < n; ++q) {
    out.set_accepting(cls[q], trimmed.is_accepting(q));
    for (Sym s = 0; s < sigma; ++s) {
      for (State to : trimmed.successors(q, s)) out.add_transition(cls[q], s, cls[to]);
    }
  }
  return out;
}

std::vector<Nba> closure_pool(int num_states, int alphabet_size, int count,
                              std::uint32_t seed) {
  std::mt19937 rng(seed);
  RandomNbaConfig config;
  config.num_states = num_states;
  config.alphabet_size = alphabet_size;
  // Density 0.8 keeps the deterministic automaton in the 10^3..10^5 range at
  // n = 64..128; at >= 1.0 the subset construction blows past 10^6 states.
  config.transition_density = 0.8;
  std::vector<Nba> pool;
  pool.reserve(count);
  for (int i = 0; i < count; ++i) pool.push_back(safety_closure(random_nba(config, rng)));
  return pool;
}

std::vector<Nba> nba_pool(int num_states, int alphabet_size, int count,
                          std::uint32_t seed) {
  std::mt19937 rng(seed);
  RandomNbaConfig config;
  config.num_states = num_states;
  config.alphabet_size = alphabet_size;
  config.transition_density = 1.3;
  std::vector<Nba> pool;
  pool.reserve(count);
  for (int i = 0; i < count; ++i) pool.push_back(random_nba(config, rng));
  return pool;
}

// --- google-benchmark timings ---------------------------------------------
//
// Each iteration processes the ENTIRE pool so that reference and optimized
// timings always cover the same inputs, no matter how many iterations the
// framework decides to run — per-closure iteration would let the two sides
// sample different pool prefixes and skew the ratio.

constexpr int kPoolSize = 4;

void BM_SubsetConstruction_Reference(benchmark::State& state) {
  const auto pool = closure_pool(static_cast<int>(state.range(0)), 4, kPoolSize, 42);
  for (auto _ : state) {
    for (const Nba& closure : pool) {
      benchmark::DoNotOptimize(reference_determinize(closure));
    }
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_SubsetConstruction_Reference)->Arg(16)->Arg(64)->Arg(128);

void BM_SubsetConstruction_Bitset(benchmark::State& state) {
  const auto pool = closure_pool(static_cast<int>(state.range(0)), 4, kPoolSize, 42);
  for (auto _ : state) {
    for (const Nba& closure : pool) {
      benchmark::DoNotOptimize(DetSafety::determinize(closure));
    }
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_SubsetConstruction_Bitset)->Arg(16)->Arg(64)->Arg(128);

void BM_Reduce_Reference(benchmark::State& state) {
  const auto pool = nba_pool(static_cast<int>(state.range(0)), 4, kPoolSize, 7);
  for (auto _ : state) {
    for (const Nba& nba : pool) benchmark::DoNotOptimize(reference_reduce(nba));
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_Reduce_Reference)->Arg(64)->Arg(256);

void BM_Reduce_Hashed(benchmark::State& state) {
  const auto pool = nba_pool(static_cast<int>(state.range(0)), 4, kPoolSize, 7);
  for (auto _ : state) {
    for (const Nba& nba : pool) benchmark::DoNotOptimize(nba.reduce());
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_Reduce_Hashed)->Arg(64)->Arg(256);

// Thread sweep: the full closure pool determinized concurrently, one
// automaton per chunk. The per-automaton internal parallelism (image
// computation levels) runs inline on the workers, so this measures
// instance-level scaling of the subset construction.
void BM_SubsetConstruction_Pool(benchmark::State& state) {
  slat::bench::ThreadSweepGuard guard(state);
  const auto pool = closure_pool(64, 4, 8, 42);
  for (auto _ : state) {
    slat::core::parallel_for(
        static_cast<int>(pool.size()),
        [&](int i) { benchmark::DoNotOptimize(DetSafety::determinize(pool[i])); },
        /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_SubsetConstruction_Pool)->SLAT_BENCH_THREAD_ARGS;

void BM_Reduce_Pool(benchmark::State& state) {
  slat::bench::ThreadSweepGuard guard(state);
  const auto pool = nba_pool(256, 4, 8, 7);
  for (auto _ : state) {
    slat::core::parallel_for(
        static_cast<int>(pool.size()),
        [&](int i) { benchmark::DoNotOptimize(pool[i].reduce()); },
        /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(BM_Reduce_Pool)->SLAT_BENCH_THREAD_ARGS;

// --- artifact: the measured speedup table ----------------------------------

template <typename F>
double seconds_per_run(const F& f, int min_runs) {
  using clock = std::chrono::steady_clock;
  // Warm-up once, then time enough runs to pass ~50ms.
  f();
  int runs = 0;
  const auto begin = clock::now();
  auto elapsed = clock::now() - begin;
  while (runs < min_runs ||
         elapsed < std::chrono::milliseconds(50)) {
    f();
    ++runs;
    elapsed = clock::now() - begin;
  }
  return std::chrono::duration<double>(elapsed).count() / runs;
}

void print_artifact() {
  slat::bench::print_header(
      "KERNELS", "bitset state-set kernel vs seed ordered-map implementations");
  std::printf("per-automaton averages over a fixed pool of %d random inputs;\n",
              kPoolSize);
  std::printf("both sides time identical full pool passes.\n\n");
  std::printf("subset construction (|Σ| = 4, density 0.8, random closures):\n");
  std::printf("%8s %14s %14s %10s\n", "n", "seed (ms)", "bitset (ms)", "speedup");
  for (const int n : {16, 64, 128}) {
    const auto pool = closure_pool(n, 4, kPoolSize, 42);
    const double ref = seconds_per_run(
        [&] {
          for (const Nba& c : pool) benchmark::DoNotOptimize(reference_determinize(c));
        },
        2);
    const double opt = seconds_per_run(
        [&] {
          for (const Nba& c : pool) benchmark::DoNotOptimize(DetSafety::determinize(c));
        },
        2);
    std::printf("%8d %14.3f %14.3f %9.1fx\n", n, ref * 1e3 / kPoolSize,
                opt * 1e3 / kPoolSize, ref / opt);
  }
  std::printf("\nbisimulation reduction (|Σ| = 4, density 1.3, random NBAs):\n");
  std::printf("%8s %14s %14s %10s\n", "n", "seed (ms)", "hashed (ms)", "speedup");
  for (const int n : {64, 256}) {
    const auto pool = nba_pool(n, 4, kPoolSize, 7);
    const double ref = seconds_per_run(
        [&] {
          for (const Nba& nba : pool) benchmark::DoNotOptimize(reference_reduce(nba));
        },
        2);
    const double opt = seconds_per_run(
        [&] {
          for (const Nba& nba : pool) benchmark::DoNotOptimize(nba.reduce());
        },
        2);
    std::printf("%8d %14.3f %14.3f %9.1fx\n", n, ref * 1e3 / kPoolSize,
                opt * 1e3 / kPoolSize, ref / opt);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace slat::buchi

SLAT_BENCH_MAIN(slat::buchi::print_artifact)
