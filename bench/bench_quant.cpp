// QUANT-DEC: the quantitative safety/liveness tier (PR 10).
//
// The artifact is a Rem-style table at the quantitative level: for a small
// catalogue of named weighted properties (one per value function, plus the
// two boolean embeddings) it prints Φ(w), Φ*(w) and Φ_live(w) at witness
// words and SLAT_ASSERTs the Theorem 10 min identity and the
// boolean-embedding agreement with the qualitative pipeline BEFORE any
// timing runs — so a divergence aborts the bench instead of timing two
// different computations.
//
//   BM_QuantValue/<fn>     — Φ(w) product-evaluation throughput per value
//                            function on a fixed random automaton; items/s
//                            == word evaluations/s.
//   BM_QuantClosure/<fn>   — Φ*(w) config-iteration throughput on the same
//                            automata (DiscSum short-circuits to value()).
//   BM_EmbedDifferential   — the full {0,1} differential: embed_buchi value
//                            vs Nba::accepts per (automaton, word), verdict
//                            equality asserted inside the timed loop.
//   BM_DiscSumValueIteration/threads:T
//                          — the PR 2 pool sweep: one value() call on a
//                            50 000-state sparse DiscSum automaton (Jacobi
//                            value iteration dominates); items/s == product
//                            states swept per second.
//
// Caching is pinned off inside every benchmark (value/closure_value are
// memoized per (fingerprint, word), so a warm cache would turn every
// iteration after the first into a hash lookup); SLAT_CACHE=0 in
// scripts/run_benches.sh is belt and braces.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "qc/gen.hpp"
#include "qc/seed.hpp"
#include "quant/closure.hpp"
#include "quant/decomposition.hpp"
#include "quant/embed.hpp"
#include "quant/eval.hpp"
#include "quant/value_function.hpp"
#include "quant/weighted.hpp"
#include "words/alphabet.hpp"
#include "words/up_word.hpp"

namespace slat::quant {
namespace {

using words::Alphabet;
using words::UpWord;

/// One fixed random automaton per value function, drawn from the qc domain
/// (dyadic weights, λ = ½) with a bench-owned seed so the workload is
/// stable across runs and hosts.
WeightedNba workload(ValueFn fn) {
  qc::WeightedNbaDomain domain{{6, 10, 2, 2, 0.8, 1.6, 0.2, 0.6}};
  domain.all_value_fns = false;
  domain.fixed_fn = fn;
  domain.random_discount = false;
  std::mt19937 rng = qc::make_rng("bench_quant.workload");
  return qc::arbitrary_weighted_nba(domain)(rng);
}

const std::vector<UpWord>& corpus() {
  static const std::vector<UpWord> words = words::enumerate_up_words(2, 3, 3);
  return words;
}

void BM_QuantValue(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const ValueFn fn = kAllValueFns[state.range(0)];
  const WeightedNba aut = workload(fn);
  for (auto _ : state) {
    for (const UpWord& w : corpus()) {
      benchmark::DoNotOptimize(value(aut, w));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus().size()));
  state.SetLabel(to_string(fn));
}
BENCHMARK(BM_QuantValue)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_QuantClosure(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const ValueFn fn = kAllValueFns[state.range(0)];
  const WeightedNba aut = workload(fn);
  for (auto _ : state) {
    for (const UpWord& w : corpus()) {
      benchmark::DoNotOptimize(closure_value(aut, w));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(corpus().size()));
  state.SetLabel(to_string(fn));
}
BENCHMARK(BM_QuantClosure)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_EmbedDifferential(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  // Pregenerate the instances; the timed loop runs BOTH pipelines per
  // (automaton, word) and asserts the verdicts agree — the differential
  // oracle itself is the workload.
  constexpr int kInstances = 25;
  std::mt19937 rng = qc::make_rng("bench_quant.embed");
  const qc::Gen<buchi::Nba> gen = qc::arbitrary_nba({2, 5, 2, 2, 0.6, 1.5, 0.2, 0.6});
  std::vector<buchi::Nba> nbas;
  std::vector<WeightedNba> embedded;
  for (int i = 0; i < kInstances; ++i) {
    nbas.push_back(gen(rng));
    embedded.push_back(embed_buchi(nbas.back()));
  }
  for (auto _ : state) {
    for (int i = 0; i < kInstances; ++i) {
      for (const UpWord& w : corpus()) {
        const double quantitative = value(embedded[i], w);
        const bool qualitative = nbas[i].accepts(w);
        SLAT_ASSERT(quantitative == (qualitative ? 1.0 : 0.0));
        benchmark::DoNotOptimize(quantitative);
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kInstances *
                          static_cast<std::int64_t>(corpus().size()));
}
BENCHMARK(BM_EmbedDifferential)->Unit(benchmark::kMillisecond);

/// A 50 000-state sparse DiscSum automaton over a unary alphabet: two
/// pseudo-random out-edges per state with dyadic weights. Evaluating it on
/// a^ω is one Jacobi value iteration over the whole product — the workload
/// the PR 2 pool parallelizes sweep by sweep.
WeightedNba large_disc_sum() {
  constexpr int kStates = 50'000;
  WeightedNba aut(Alphabet::of_size(1), kStates, 0, ValueFn::kDiscSum, 0.5);
  aut.nba().set_accepting(0, true);
  for (buchi::State q = 0; q < kStates; ++q) {
    aut.add_transition(q, 0, (q * 2 + 1) % kStates,
                       static_cast<double>((q * 3) % 9) / 8.0);
    aut.add_transition(q, 0, (q * 5 + 3) % kStates,
                       static_cast<double>((q * 7 + 2) % 9) / 8.0);
  }
  return aut;
}

void BM_DiscSumValueIteration(benchmark::State& state) {
  bench::ThreadSweepGuard threads(state);
  core::CacheEnabledScope cache_off(false);
  const WeightedNba aut = large_disc_sum();
  const UpWord a_omega({}, {0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(value(aut, a_omega));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          aut.nba().num_states());
}
BENCHMARK(BM_DiscSumValueIteration)
    ->SLAT_BENCH_THREAD_ARGS->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Artifact: the quantitative Rem-style table + the embedding cross-check.
// ---------------------------------------------------------------------------

/// "Infinitely many a" as LimSup — the canonical live-not-safe property.
WeightedNba gf_a() {
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kLimSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 1.0);
  aut.add_transition(0, 1, 0, 0.0);
  return aut;
}

/// {a^ω} at weight 1 as Sup — limit-closed, so safe and not live.
WeightedNba only_a() {
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 1.0);
  return aut;
}

/// A discounted sum — always safe (Φ* = Φ, the compactness argument).
WeightedNba disc() {
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kDiscSum, 0.5);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 1.0);
  aut.add_transition(0, 1, 0, 0.0);
  return aut;
}

void print_decomposition_row(const char* name, const WeightedNba& aut,
                             const UpWord& w, const char* word_name) {
  const QuantDecomposition d = decompose_at(aut, w);
  SLAT_ASSERT(std::min(d.safety, d.live) == d.property);
  std::printf("  %-18s %-8s  phi=%.3f  phi*=%.3f  phi_live=%.3f\n", name,
              word_name, d.property, d.safety, d.live);
}

void print_artifact() {
  bench::print_header("QUANT-DEC",
                      "quantitative safety/liveness (HMS Thm. 10)");

  const UpWord a_omega({}, {0});
  const UpWord b_omega({}, {1});
  const UpWord ab_omega({}, {0, 1});

  std::printf("Theorem 10 triples (phi = min(phi*, phi_live), asserted):\n");
  for (const UpWord* w : {&a_omega, &b_omega, &ab_omega}) {
    const char* wn = w == &a_omega ? "a^w" : (w == &b_omega ? "b^w" : "(ab)^w");
    print_decomposition_row("GFa/LimSup", gf_a(), *w, wn);
    print_decomposition_row("only-a/Sup", only_a(), *w, wn);
    print_decomposition_row("disc@1/2", disc(), *w, wn);
  }

  // Sampled classification on the enumeration corpus: the three catalogue
  // rows land in the three distinct safe/live cells.
  const std::vector<UpWord>& words = corpus();
  SLAT_ASSERT(!is_safety_on(gf_a(), words) && is_liveness_on(gf_a(), words));
  SLAT_ASSERT(is_safety_on(only_a(), words) && !is_liveness_on(only_a(), words));
  SLAT_ASSERT(is_safety_on(disc(), words));
  std::printf("\nsampled classes: GFa live-not-safe, only-a safe-not-live, "
              "DiscSum safe (asserted)\n");

  // The boolean-embedding differential on the bench's own instances: the
  // quantitative readings must reproduce acceptance and the lcl verdict
  // exactly — the same oracle the qc property quant.embed.boolean_agreement
  // and tests/integration/quant_equivalence_test.cpp sweep at scale.
  std::mt19937 rng = qc::make_rng("bench_quant.embed");
  const qc::Gen<buchi::Nba> gen = qc::arbitrary_nba({2, 5, 2, 2, 0.6, 1.5, 0.2, 0.6});
  std::size_t checks = 0;
  for (int i = 0; i < 25; ++i) {
    const buchi::Nba nba = gen(rng);
    const buchi::DetSafety det =
        buchi::DetSafety::determinize(buchi::safety_closure(nba));
    const WeightedNba eb = embed_buchi(nba);
    const WeightedNba es = embed_safety(nba);
    for (const UpWord& w : words) {
      SLAT_ASSERT(value(eb, w) == (nba.accepts(w) ? 1.0 : 0.0));
      SLAT_ASSERT(closure_value(eb, w) == (det.accepts(w) ? 1.0 : 0.0));
      SLAT_ASSERT(value(es, w) == (det.accepts(w) ? 1.0 : 0.0));
      checks += 3;
    }
  }
  std::printf("boolean-embedding differential: %zu exact agreements over 25 "
              "random NBAs x %zu words (asserted)\n",
              checks, words.size());

  std::printf(
      "\nnotes:\n"
      "  - BM_QuantValue/BM_QuantClosure run per value function (label =\n"
      "    the function); items/s == word evaluations/s on a fixed random\n"
      "    8-10-state automaton and the 80-word enumeration corpus\n"
      "  - BM_EmbedDifferential asserts quantitative == qualitative inside\n"
      "    the timed loop; items/s == differential checks/s\n"
      "  - BM_DiscSumValueIteration sweeps the PR 2 pool over one 50 000-\n"
      "    state Jacobi value iteration (threads:1/2/4/8 -> BENCH_PR10.json)\n"
      "  - scripts/run_benches.sh aggregates into BENCH_PR10.json\n");
}

}  // namespace
}  // namespace slat::quant

SLAT_BENCH_MAIN(::slat::quant::print_artifact)
