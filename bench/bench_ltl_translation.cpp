// ABL-LTL — ablation: GPVW tableau sizes for pattern formula families.
// The §2 pipeline's cost is dominated by the LTL → Büchi step; this bench
// reports tableau nodes / NBA states / acceptance sets for the standard
// specification patterns, and times the translation.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "ltl/eval.hpp"
#include "ltl/translate.hpp"

namespace {

using namespace slat;

// The k-th member of each pattern family over {a, b}.
std::string response_chain(int k) {
  // G(a -> F b) nested: G(a -> F (a -> F ( ... )))
  std::string inner = "b";
  for (int i = 0; i < k; ++i) inner = "(a -> F " + inner + ")";
  return "G " + inner;
}

std::string until_chain(int k) {
  std::string formula = "b";
  for (int i = 0; i < k; ++i) {
    formula = (i % 2 == 0 ? "a U (" : "b U (") + formula + ")";
  }
  return formula;
}

std::string next_chain(int k) {
  std::string formula = "a";
  for (int i = 0; i < k; ++i) formula = "X (" + formula + ")";
  return formula;
}

std::string fairness_conjunction(int k) {
  // GF a & FG b & GF a & ... alternating fairness constraints.
  std::string formula = "G F a";
  for (int i = 1; i < k; ++i) {
    formula += i % 2 == 1 ? " & F G b" : " & G F a";
  }
  return formula;
}

void report_family(const char* family, std::string (*make)(int), int max_k) {
  ltl::LtlArena arena(words::Alphabet::binary());
  for (int k = 1; k <= max_k; ++k) {
    const std::string text = make(k);
    const auto f = arena.parse(text);
    if (!f) {
      std::printf("  %s k=%d: PARSE ERROR\n", family, k);
      continue;
    }
    ltl::TranslationStats stats;
    ltl::to_nba(arena, *f, &stats);
    std::printf("%-12s %2d | %9d %9d %7d %9d | %s\n", family, k, stats.tableau_nodes,
                stats.nba_states, stats.acceptance_sets, stats.nba_transitions,
                k <= 3 ? text.c_str() : "...");
  }
}

void print_artifact() {
  slat::bench::print_header("ABL-LTL", "GPVW translation sizes for pattern families");
  std::printf("\n%-12s %2s | %9s %9s %7s %9s | formula\n", "family", "k", "tableau",
              "states", "untils", "trans");
  report_family("response", response_chain, 4);
  report_family("until", until_chain, 5);
  report_family("next", next_chain, 6);
  report_family("fairness", fairness_conjunction, 4);
  std::printf("\n");
}

void bm_translate_response(benchmark::State& state) {
  const std::string text = response_chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ltl::LtlArena arena(words::Alphabet::binary());
    benchmark::DoNotOptimize(ltl::to_nba(arena, *arena.parse(text)));
  }
}
BENCHMARK(bm_translate_response)->DenseRange(1, 4);

void bm_translate_until(benchmark::State& state) {
  const std::string text = until_chain(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ltl::LtlArena arena(words::Alphabet::binary());
    benchmark::DoNotOptimize(ltl::to_nba(arena, *arena.parse(text)));
  }
}
BENCHMARK(bm_translate_until)->DenseRange(1, 5);

void bm_parse_only(benchmark::State& state) {
  const std::string text = response_chain(4);
  for (auto _ : state) {
    ltl::LtlArena arena(words::Alphabet::binary());
    benchmark::DoNotOptimize(arena.parse(text));
  }
}
BENCHMARK(bm_parse_only);

void bm_eval_on_word(benchmark::State& state) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto f = *arena.parse(fairness_conjunction(4));
  const words::UpWord w({0, 1, 0}, {1, 0, 0, 1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(ltl::holds(arena, f, w));
  }
}
BENCHMARK(bm_eval_on_word);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
