// ABL-MON — ablation: runtime monitor construction.
// Compares the raw subset-construction monitor against the Moore-minimized
// DFA monitor across specification patterns, and measures per-event
// monitoring throughput — the operational payoff of the paper's Theorem 6
// (the closure is the strongest monitorable approximation, and the minimal
// DFA is its canonical machine).
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "monitor/dfa_monitor.hpp"
#include "monitor/monitor.hpp"

namespace {

using namespace slat;

const char* kSpecs[] = {
    "G a",
    "a & F !a",
    "G (a -> X !a)",
    "G (a | X (a | X a))",
    "a U b",
    "a W b",
    "G (a -> X (b R (a | b)))",
};

void print_artifact() {
  bench::print_header("ABL-MON", "monitor sizes: subset construction vs minimal DFA");

  ltl::LtlArena arena(words::Alphabet::binary());
  std::printf("\n%-28s %10s %12s %9s\n", "specification", "subset |Q|", "minimal |Q|",
              "vacuous");
  for (const char* text : kSpecs) {
    const auto f = arena.parse(text);
    if (!f) continue;
    monitor::SafetyMonitor subset = monitor::SafetyMonitor::from_ltl(arena, *f);
    monitor::DfaMonitor minimal = monitor::DfaMonitor::from_ltl(arena, *f);
    std::printf("%-28s %10d %12d %9s\n", text, subset.automaton().num_states(),
                minimal.automaton().num_states(), minimal.is_vacuous() ? "yes" : "no");
  }
  std::printf("\n(the minimal monitor is the Moore quotient of the good-prefix DFA;\n"
              " verdicts are identical by construction and by test)\n\n");
}

words::Word random_trace(std::size_t length, std::mt19937& rng) {
  std::uniform_int_distribution<int> pick(0, 1);
  words::Word trace;
  trace.reserve(length);
  for (std::size_t i = 0; i < length; ++i) trace.push_back(pick(rng));
  return trace;
}

void bm_monitor_throughput_subset(benchmark::State& state) {
  ltl::LtlArena arena(words::Alphabet::binary());
  monitor::SafetyMonitor monitor =
      monitor::SafetyMonitor::from_ltl(arena, *arena.parse("G (a -> X !a)"));
  std::mt19937 rng(7);
  const words::Word trace = random_trace(4096, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.run(trace));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(trace.size()));
}
BENCHMARK(bm_monitor_throughput_subset);

void bm_monitor_throughput_minimal(benchmark::State& state) {
  ltl::LtlArena arena(words::Alphabet::binary());
  monitor::DfaMonitor monitor =
      monitor::DfaMonitor::from_ltl(arena, *arena.parse("G (a -> X !a)"));
  std::mt19937 rng(7);
  const words::Word trace = random_trace(4096, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(monitor.run(trace));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(trace.size()));
}
BENCHMARK(bm_monitor_throughput_minimal);

void bm_monitor_construction(benchmark::State& state) {
  const char* text = kSpecs[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    ltl::LtlArena arena(words::Alphabet::binary());
    benchmark::DoNotOptimize(monitor::DfaMonitor::from_ltl(arena, *arena.parse(text)));
  }
  state.SetLabel(text);
}
BENCHMARK(bm_monitor_construction)->DenseRange(0, 6);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
