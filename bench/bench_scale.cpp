// The 10^4–10^6-state scaling tier (PR6): drives subset construction,
// direct simulation, and antichain inclusion over scaled Rem-family and
// sparse-random automata, reporting states/second (items_per_second) and
// peak RSS per run. The *_Reference benchmarks are verbatim copies of the
// pre-CSR kernels — the quadratic-bitset subset construction and the
// per-node heap-allocated StateSet/Profile antichain engine — so the
// headline ratios in BENCH_PR6.json compare the flat CSR + arena layout
// against the layout it replaced, on identical inputs (the artifact section
// cross-checks that both sides produce identical results).
//
// Registration order matters for the RSS counters: ru_maxrss is a process
// high-water mark, so the optimized benchmarks run FIRST and their
// peak_rss_mb readings are untouched by the reference runs' deliberately
// quadratic allocations. rss_growth_mb (high-water growth during the
// benchmark) is reported alongside for per-run footprints.
//
// Scaled families (binary alphabet, all O(states) edges):
//   rem_p1_chain(n)   — Rem's p1 ("first symbol is a") iterated n times:
//                       a^n Σ^ω as an all-accepting chain, the safety-closure
//                       shape whose determinization has n+2 subsets.
//   sim_cycle(n)      — all-accepting a-counter cycle with b self-loops;
//                       simulation's greatest fixpoint converges in one
//                       Jacobi round, isolating the per-round sweep cost.
//   stem_lhs(n)       — Σ^{n-1} a^ω: a branching chain with a single
//                       accepting tail loop, so the inclusion search runs a
//                       full stem fixpoint and exactly one (tiny) period
//                       search: a stem-phase benchmark by construction.
//   stem_rhs(m, k)    — "eventually always a" as an m-state guess chain,
//                       disjoint-union an accepting mod-k a-counter. The
//                       counter keeps up to k mutually incomparable rhs sets
//                       per lhs state, so antichain chains have real width
//                       and the subsumption loops are actually exercised.
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "buchi/inclusion.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "buchi/simulation.hpp"
#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {
namespace {

using core::StateSet;

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

void record_rss(benchmark::State& state, double rss_before) {
  const double rss_after = peak_rss_mb();
  state.counters["peak_rss_mb"] = rss_after;
  state.counters["rss_growth_mb"] = std::max(0.0, rss_after - rss_before);
}

// ---------------------------------------------------------------------------
// Scaled input families
// ---------------------------------------------------------------------------

/// a^n Σ^ω as an all-accepting (closure-shaped) chain: states 0..n, q<n has
/// only q -a-> q+1 (a b falls off into the determinization sink), state n
/// loops on both symbols.
Nba rem_p1_chain(int n) {
  Nba nba(Alphabet::of_size(2), n + 1, 0);
  for (State q = 0; q < n; ++q) {
    nba.set_accepting(q, true);
    nba.add_transition(q, 0, q + 1);
  }
  nba.set_accepting(n, true);
  nba.add_transition(n, 0, n);
  nba.add_transition(n, 1, n);
  return nba;
}

/// All-accepting cycle: q -a-> q+1 (mod n), q -b-> q.
Nba sim_cycle(int n) {
  Nba nba(Alphabet::of_size(2), n, 0);
  for (State q = 0; q < n; ++q) {
    nba.set_accepting(q, true);
    nba.add_transition(q, 0, (q + 1) % n);
    nba.add_transition(q, 1, q);
  }
  return nba;
}

/// Σ^{n-1} a^ω: free a/b choice along a chain of n-1 states, then an
/// accepting a-loop. Trim keeps everything; the tail loop is the only
/// accepting SCC, so the period phase runs from exactly one pivot.
Nba stem_lhs(int n) {
  SLAT_ASSERT(n >= 2);
  Nba nba(Alphabet::of_size(2), n, 0);
  for (State q = 0; q + 1 < n; ++q) {
    nba.add_transition(q, 0, q + 1);
    nba.add_transition(q, 1, q + 1);
  }
  nba.set_accepting(n - 1, true);
  nba.add_transition(n - 1, 0, n - 1);
  return nba;
}

/// Disjoint union of an m-state "eventually always a" guess chain and an
/// accepting mod-k a-counter, behind a fresh initial state that mimics both
/// components' initial moves. L ⊇ Σ^* a^ω, so stem_lhs(n) ⊆ stem_rhs(m, k)
/// always holds and the inclusion search runs to its antichain fixpoint.
Nba stem_rhs(int m, int k) {
  SLAT_ASSERT(m >= 2 && k >= 1);
  // State layout: 0 = fresh initial, 1..m = guess chain r0..r_{m-1},
  // m+1..m+k = counter c_0..c_{k-1}.
  const State r0 = 1;
  const State c0 = m + 1;
  Nba nba(Alphabet::of_size(2), 1 + m + k, 0);
  // Guess chain: r0 loops on both symbols and may enter the a-run; the run
  // must then stay on a forever, accepting only at the end of the chain.
  nba.add_transition(r0, 0, r0);
  nba.add_transition(r0, 1, r0);
  nba.add_transition(r0, 0, r0 + 1);
  for (int i = 1; i < m; ++i) {
    if (i + 1 < m) {
      nba.add_transition(r0 + i, 0, r0 + i + 1);
    } else {
      nba.set_accepting(r0 + i, true);
      nba.add_transition(r0 + i, 0, r0 + i);
    }
  }
  // Counter: rotates on a, holds on b, accepting at residue 0 — it keeps
  // the a-count mod k alive inside every reachable rhs subset.
  for (int i = 0; i < k; ++i) {
    nba.add_transition(c0 + i, 0, c0 + (i + 1) % k);
    nba.add_transition(c0 + i, 1, c0 + i);
  }
  nba.set_accepting(c0, true);
  // Fresh initial: the union of both components' initial out-edges.
  for (Sym s = 0; s < 2; ++s) {
    for (State to : nba.successors(r0, s)) nba.add_transition(0, s, to);
    for (State to : nba.successors(c0, s)) nba.add_transition(0, s, to);
  }
  return nba;
}

/// Sparse random automaton, all states accepting (closure shape) so the
/// benches measure the kernels, not acceptance trivia.
Nba random_closure(int n, double density, std::uint32_t seed) {
  RandomNbaConfig config;
  config.num_states = n;
  config.alphabet_size = 2;
  config.transition_density = density;
  config.accepting_probability = 1.0;
  std::mt19937 rng(seed);
  return sparse_random_nba(config, rng);
}

/// Two random permutations as the transition functions: deterministic and
/// complete, so determinization is a relabelling with ≤ n+1 subsets — but
/// every subset step is a RANDOM intern-table probe, the locality
/// worst-case for the subset-construction machinery. (A genuinely
/// nondeterministic random NFA is useless here: supercritical densities
/// blow the subset count up exponentially, subcritical ones die into the
/// sink after two steps. The permutation family is the bounded way to
/// drive the determinizer with random automata at 10^5–10^6 states.)
Nba random_perm(int n, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Nba nba(Alphabet::of_size(2), n, 0);
  std::vector<State> perm(n);
  for (Sym s = 0; s < 2; ++s) {
    for (State q = 0; q < n; ++q) perm[q] = q;
    std::shuffle(perm.begin(), perm.end(), rng);
    for (State q = 0; q < n; ++q) {
      nba.set_accepting(q, true);
      nba.add_transition(q, s, perm[q]);
    }
  }
  return nba;
}

/// Word-oblivious sparse random rhs: symbol b copies symbol a's rows, so
/// every length-q word reaches the same rhs subset and the stem antichain
/// stays one (dense) set per lhs state — a per-node set-arithmetic workload.
/// Acceptance stays sparse on purpose: an all-accepting random graph is one
/// big mutual-simulation class and the engine's quotient would collapse it
/// to a handful of states before the search even starts.
Nba random_oblivious_rhs(int m, double density, std::uint32_t seed) {
  RandomNbaConfig config;
  config.num_states = m;
  config.alphabet_size = 2;
  config.transition_density = density;
  config.accepting_probability = 0.3;
  std::mt19937 rng(seed);
  const Nba draw = sparse_random_nba(config, rng);
  Nba nba(Alphabet::of_size(2), m, 0);
  for (State q = 0; q < m; ++q) {
    nba.set_accepting(q, draw.is_accepting(q));
    for (State to : draw.successors(q, 0)) {
      nba.add_transition(q, 0, to);
      nba.add_transition(q, 1, to);
    }
  }
  return nba;
}

// ---------------------------------------------------------------------------
// Pre-CSR reference kernels (verbatim pre-PR6 implementations)
// ---------------------------------------------------------------------------

/// The pre-PR6 subset construction: quadratic per-(state,symbol) successor
/// bitsets, n-bit StateSet subsets interned by value, per-subset
/// vector<State> transition rows. O(states² · |Σ|) bits of auxiliary memory.
struct ReferenceDetSafety {
  State initial = -1;
  State sink = -1;
  std::vector<std::vector<State>> delta;
};

ReferenceDetSafety reference_determinize(const Nba& closure) {
  ReferenceDetSafety out;
  const Sym sigma = closure.alphabet().size();
  const int n = closure.num_states();

  std::vector<StateSet> succ_bits(static_cast<std::size_t>(n) * sigma);
  core::parallel_for(n * sigma, [&](int cell) {
    const State q = cell / sigma;
    const Sym s = cell % sigma;
    StateSet bits(n);
    for (State to : closure.successors(q, s)) bits.insert(to);
    succ_bits[cell] = std::move(bits);
  });

  core::InternTable<StateSet> intern;
  intern.reserve(2 * n + 2);
  const auto intern_set = [&](const StateSet& set) {
    State id = intern.find(set);
    if (id == -1) {
      id = intern.intern(set);
      out.delta.emplace_back(sigma, -1);
    }
    return id;
  };

  out.sink = intern_set(StateSet{});
  if (closure.is_trivially_dead()) {
    out.initial = out.sink;
  } else {
    StateSet init(n);
    init.insert(closure.initial());
    out.initial = intern_set(init);
  }

  std::vector<StateSet> images;
  for (State level_begin = 0; level_begin < intern.size();) {
    const State level_end = intern.size();
    const int frontier = level_end - level_begin;
    images.assign(static_cast<std::size_t>(frontier) * sigma, StateSet{});
    core::parallel_for(
        frontier * sigma,
        [&](int cell) {
          const State current_id = level_begin + cell / sigma;
          const Sym s = cell % sigma;
          StateSet image(n);
          intern.key(current_id).for_each([&](int q) {
            image.union_with(succ_bits[static_cast<std::size_t>(q) * sigma + s]);
          });
          images[cell] = std::move(image);
        },
        /*grain=*/sigma);
    for (State current_id = level_begin; current_id < level_end; ++current_id) {
      for (Sym s = 0; s < sigma; ++s) {
        const State target = intern_set(images[(current_id - level_begin) * sigma + s]);
        out.delta[current_id][s] = target;
      }
    }
    level_begin = level_end;
  }
  return out;
}

/// Pre-PR6 arc profile: one heap-backed StateSet per rhs state and row.
struct Profile {
  std::vector<StateSet> any;
  std::vector<StateSet> acc;
};

bool profile_subseteq(const Profile& a, const Profile& b) {
  for (std::size_t s = 0; s < a.any.size(); ++s) {
    if (!b.any[s].contains_all(a.any[s])) return false;
    if (!b.acc[s].contains_all(a.acc[s])) return false;
  }
  return true;
}

/// The pre-PR6 antichain engine, verbatim apart from metrics: per-node
/// StateSet/Profile values with per-push heap copies, AoS node records, and
/// member-by-member subsumption without the word-parallel fast paths. Search
/// order is identical to the production engine, so node counts must agree.
class ReferenceAntichainEngine {
 public:
  std::uint64_t stem_node_count = 0;
  std::uint64_t period_node_count = 0;

  ReferenceAntichainEngine(const Nba& lhs, const Nba& rhs)
      : a_(lhs.trim()),
        b_(simulation_quotient(rhs)),
        sigma_(a_.alphabet().size()),
        na_(a_.num_states()),
        nb_(b_.num_states()),
        sim_(direct_simulation(b_)) {
    step_any_.assign(sigma_, std::vector<StateSet>(nb_, StateSet(nb_)));
    step_acc_.assign(sigma_, std::vector<StateSet>(nb_, StateSet(nb_)));
    for (State s = 0; s < nb_; ++s) {
      for (Sym c = 0; c < sigma_; ++c) {
        for (State t : b_.successors(s, c)) {
          step_any_[c][s].insert(t);
          if (b_.is_accepting(s) || b_.is_accepting(t)) step_acc_[c][s].insert(t);
        }
      }
    }

    std::vector<bool> self_loop(na_, false);
    const auto scc = detail::strongly_connected_components(
        na_, [&](int q, const std::function<void(int)>& visit) {
          for (Sym c = 0; c < sigma_; ++c) {
            for (State t : a_.successors(q, c)) {
              if (t == q) self_loop[q] = true;
              visit(t);
            }
          }
        });
    std::vector<int> scc_size(scc.num_components, 0);
    std::vector<bool> scc_accepting(scc.num_components, false);
    for (State q = 0; q < na_; ++q) {
      scc_size[scc.component[q]] += 1;
      if (a_.is_accepting(q)) scc_accepting[scc.component[q]] = true;
    }
    pivot_ok_.assign(na_, false);
    for (State q = 0; q < na_; ++q) {
      const int c = scc.component[q];
      pivot_ok_[q] = scc_accepting[c] && (scc_size[c] >= 2 || self_loop[q]);
    }
  }

  InclusionResult run() {
    InclusionResult result{true, std::nullopt};
    if (!a_.is_trivially_dead()) {
      result = search();
    }
    return result;
  }

 private:
  StateSet normalize_set(const StateSet& full) const {
    StateSet out(nb_);
    full.for_each([&](int q) {
      bool drop = false;
      sim_.simulators[q].for_each([&](int t) {
        if (drop || t == q || !full.contains(t)) return;
        if (!sim_.simulates(q, t) || t < q) drop = true;
      });
      if (!drop) out.insert(q);
    });
    return out;
  }

  bool set_dominates(const StateSet& strong, const StateSet& weak) const {
    bool ok = true;
    strong.for_each([&](int s) {
      if (ok && !sim_.simulators[s].intersects(weak)) ok = false;
    });
    return ok;
  }

  StateSet step_set(const StateSet& set, Sym c) const {
    StateSet next(nb_);
    set.for_each([&](int s) { next.union_with(step_any_[c][s]); });
    return normalize_set(next);
  }

  Profile one_step_profile(Sym c) const {
    return Profile{step_any_[c], step_acc_[c]};
  }

  Profile compose(const Profile& r, Sym c) const {
    Profile out;
    out.any.assign(nb_, StateSet(nb_));
    out.acc.assign(nb_, StateSet(nb_));
    for (State s = 0; s < nb_; ++s) {
      r.any[s].for_each([&](int t) {
        out.any[s].union_with(step_any_[c][t]);
        out.acc[s].union_with(step_acc_[c][t]);
      });
      r.acc[s].for_each([&](int t) { out.acc[s].union_with(step_any_[c][t]); });
    }
    return out;
  }

  bool profile_accepts(const StateSet& set, const Profile& prof) const {
    StateSet reach(nb_);
    std::vector<int> work;
    set.for_each([&](int s) {
      reach.insert(s);
      work.push_back(s);
    });
    while (!work.empty()) {
      const int s = work.back();
      work.pop_back();
      prof.any[s].for_each([&](int t) {
        if (!reach.contains(t)) {
          reach.insert(t);
          work.push_back(t);
        }
      });
    }
    const auto scc = detail::strongly_connected_components(
        nb_, [&](int s, const std::function<void(int)>& visit) {
          prof.any[s].for_each(visit);
        });
    bool found = false;
    for (State s = 0; s < nb_ && !found; ++s) {
      if (!reach.contains(s)) continue;
      prof.acc[s].for_each([&](int t) {
        if (scc.component[t] == scc.component[s]) found = true;
      });
    }
    return found;
  }

  struct StemNode {
    State p;
    StateSet set;
    int pred;
    Sym sym;
  };

  void push_stem(State p, StateSet set, int pred, Sym sym) {
    auto& chain = stem_chain_[p];
    for (const int id : chain) {
      if (set_dominates(stem_nodes_[id].set, set)) return;
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      if (set_dominates(set, stem_nodes_[id].set)) {
        stem_live_[id] = false;
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(stem_nodes_.size());
    stem_nodes_.push_back(StemNode{p, std::move(set), pred, sym});
    stem_live_.push_back(true);
    chain.push_back(id);
    stem_frontier_.push_back(id);
    stem_node_count += 1;
  }

  void run_stems() {
    stem_chain_.assign(na_, {});
    StateSet init(nb_);
    init.insert(b_.initial());
    push_stem(a_.initial(), normalize_set(init), -1, -1);
    std::size_t head = 0;
    while (head < stem_frontier_.size()) {
      const int id = stem_frontier_[head++];
      if (!stem_live_[id]) continue;
      // Copy out: push_stem may reallocate stem_nodes_.
      const State p = stem_nodes_[id].p;
      const StateSet set = stem_nodes_[id].set;
      for (Sym c = 0; c < sigma_; ++c) {
        const auto succs = a_.successors(p, c);
        if (succs.empty()) continue;
        const StateSet next = step_set(set, c);
        for (const State q : succs) push_stem(q, next, id, c);
      }
    }
  }

  struct PeriodNode {
    State q;
    bool acc;
    Profile prof;
    int pred;
    Sym sym;
  };

  struct Hit {
    int stem_id;
    int period_id;
  };

  std::optional<Hit> push_period(State pivot, State q, bool acc, const Profile& prof,
                                 int pred, Sym sym) {
    auto& chain = period_chain_[q];
    for (const int id : chain) {
      const PeriodNode& node = period_nodes_[id];
      if (node.acc >= acc && profile_subseteq(node.prof, prof)) {
        return std::nullopt;
      }
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      const PeriodNode& node = period_nodes_[id];
      if (acc >= node.acc && profile_subseteq(prof, node.prof)) {
        period_live_[id] = false;
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(period_nodes_.size());
    period_nodes_.push_back(PeriodNode{q, acc, prof, pred, sym});
    period_live_.push_back(true);
    chain.push_back(id);
    period_frontier_.push_back(id);
    period_node_count += 1;
    if (q == pivot && acc) {
      for (const int stem_id : stem_chain_[pivot]) {
        if (!profile_accepts(stem_nodes_[stem_id].set, prof)) {
          return Hit{stem_id, id};
        }
      }
    }
    return std::nullopt;
  }

  std::optional<Hit> run_periods(State pivot) {
    period_nodes_.clear();
    period_live_.clear();
    period_frontier_.clear();
    period_chain_.assign(na_, {});
    const bool pivot_acc = a_.is_accepting(pivot);
    for (Sym c = 0; c < sigma_; ++c) {
      const auto succs = a_.successors(pivot, c);
      if (succs.empty()) continue;
      const Profile prof = one_step_profile(c);
      for (const State q : succs) {
        if (auto hit = push_period(pivot, q, pivot_acc || a_.is_accepting(q), prof,
                                   -1, c)) {
          return hit;
        }
      }
    }
    std::size_t head = 0;
    while (head < period_frontier_.size()) {
      const int id = period_frontier_[head++];
      if (!period_live_[id]) continue;
      const State q = period_nodes_[id].q;
      const bool acc = period_nodes_[id].acc;
      const Profile prof = period_nodes_[id].prof;  // copy: vector may grow
      for (Sym c = 0; c < sigma_; ++c) {
        const auto succs = a_.successors(q, c);
        if (succs.empty()) continue;
        const Profile next = compose(prof, c);
        for (const State q2 : succs) {
          if (auto hit =
                  push_period(pivot, q2, acc || a_.is_accepting(q2), next, id, c)) {
            return hit;
          }
        }
      }
    }
    return std::nullopt;
  }

  InclusionResult search() {
    run_stems();
    for (State pivot = 0; pivot < na_; ++pivot) {
      if (!pivot_ok_[pivot] || stem_chain_[pivot].empty()) continue;
      if (const auto hit = run_periods(pivot)) {
        return InclusionResult{false, build_witness(hit->stem_id, hit->period_id)};
      }
    }
    return InclusionResult{true, std::nullopt};
  }

  UpWord build_witness(int stem_id, int period_id) const {
    Word u;
    for (int id = stem_id; id != -1; id = stem_nodes_[id].pred) {
      if (stem_nodes_[id].sym >= 0) u.push_back(stem_nodes_[id].sym);
    }
    std::reverse(u.begin(), u.end());
    Word v;
    for (int id = period_id; id != -1; id = period_nodes_[id].pred) {
      v.push_back(period_nodes_[id].sym);
    }
    std::reverse(v.begin(), v.end());
    return UpWord(std::move(u), std::move(v));
  }

  const Nba a_;
  const Nba b_;
  const Sym sigma_;
  const int na_;
  const int nb_;
  const SimulationPreorder sim_;
  std::vector<std::vector<StateSet>> step_any_;
  std::vector<std::vector<StateSet>> step_acc_;
  std::vector<bool> pivot_ok_;

  std::vector<StemNode> stem_nodes_;
  std::vector<bool> stem_live_;
  std::vector<std::vector<int>> stem_chain_;
  std::vector<int> stem_frontier_;

  std::vector<PeriodNode> period_nodes_;
  std::vector<bool> period_live_;
  std::vector<std::vector<int>> period_chain_;
  std::vector<int> period_frontier_;
};

// ---------------------------------------------------------------------------
// Workload parameters shared by benchmark and artifact code
// ---------------------------------------------------------------------------

constexpr double kRandomDensity = 1.05;     // sparse random simulation input
constexpr std::uint32_t kRandomSeed = 0x5ca1ab1e;
constexpr int kStemRhsChain = 192;          // > 128 ⇒ pre-PR sets heap-allocate
constexpr int kStemRhsMod = 32;             // antichain width per lhs state
constexpr int kObliviousRhs = 256;
constexpr double kObliviousDensity = 1.3;

Nba inclusion_rhs() { return stem_rhs(kStemRhsChain, kStemRhsMod); }

Nba oblivious_rhs() {
  return random_oblivious_rhs(kObliviousRhs, kObliviousDensity, kRandomSeed + 1);
}

// ---------------------------------------------------------------------------
// Optimized benchmarks (registered first: see the RSS note atop this file)
// ---------------------------------------------------------------------------

void BM_SubsetConstruction_RemChain(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba chain = rem_p1_chain(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetSafety::determinize(chain));
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_SubsetConstruction_RemChain)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_SubsetConstruction_RandomPerm(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba nfa = random_perm(n, kRandomSeed);
  const double rss_before = peak_rss_mb();
  int det_states = 0;
  for (auto _ : state) {
    const DetSafety det = DetSafety::determinize(nfa);
    det_states = det.num_states();
    benchmark::DoNotOptimize(det_states);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["det_states"] = det_states;
  record_rss(state, rss_before);
}
BENCHMARK(BM_SubsetConstruction_RandomPerm)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_Simulation_Cycle(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba cycle = sim_cycle(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(direct_simulation(cycle));
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_Simulation_Cycle)->Arg(10000)->Unit(benchmark::kMillisecond);

// Simulation is inherently Θ(n²) in relation size (the preorder itself is a
// dense n×n bit matrix on these families), so its scaling tier stops at
// 10^4 — the quadratic frontier this PR's kernels deliberately avoid
// everywhere else. The sparse-random instance runs at 4·10^3: its fixpoint
// needs many more refinement rounds than the cycle's single round.
void BM_Simulation_SparseRandom(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba nfa = random_closure(n, kRandomDensity, kRandomSeed + 2);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(direct_simulation(nfa));
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_Simulation_SparseRandom)->Arg(4000)->Unit(benchmark::kMillisecond);

void BM_InclusionStem_RemFga(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba lhs = stem_lhs(n);
  const Nba rhs = inclusion_rhs();
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    const InclusionResult result = check_inclusion(lhs, rhs);
    SLAT_ASSERT(result.included);
    benchmark::DoNotOptimize(result.included);
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_InclusionStem_RemFga)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond);

void BM_InclusionStem_RandomRhs(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba lhs = stem_lhs(n);
  const Nba rhs = oblivious_rhs();
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    const InclusionResult result = check_inclusion(lhs, rhs);
    benchmark::DoNotOptimize(result.included);
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_InclusionStem_RandomRhs)->Arg(10000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Pre-CSR reference benchmarks (quadratic memory: capped at the 10^5 tier)
// ---------------------------------------------------------------------------

void BM_SubsetConstruction_RemChain_Reference(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba chain = rem_p1_chain(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_determinize(chain));
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_SubsetConstruction_RemChain_Reference)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SubsetConstruction_RandomPerm_Reference(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba nfa = random_perm(n, kRandomSeed);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(reference_determinize(nfa));
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_SubsetConstruction_RandomPerm_Reference)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_InclusionStem_RemFga_Reference(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba lhs = stem_lhs(n);
  const Nba rhs = inclusion_rhs();
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    ReferenceAntichainEngine engine(lhs, rhs);
    const InclusionResult result = engine.run();
    SLAT_ASSERT(result.included);
    benchmark::DoNotOptimize(result.included);
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_InclusionStem_RemFga_Reference)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_InclusionStem_RandomRhs_Reference(benchmark::State& state) {
  core::CacheEnabledScope cache_off(false);
  const int n = static_cast<int>(state.range(0));
  const Nba lhs = stem_lhs(n);
  const Nba rhs = oblivious_rhs();
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    ReferenceAntichainEngine engine(lhs, rhs);
    const InclusionResult result = engine.run();
    benchmark::DoNotOptimize(result.included);
  }
  state.SetItemsProcessed(state.iterations() * n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_InclusionStem_RandomRhs_Reference)
    ->Arg(10000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Artifact: cross-check reference vs optimized on small instances
// ---------------------------------------------------------------------------

void print_artifact() {
  namespace bench = slat::bench;
  bench::print_header(
      "E-SCALE (PR6)",
      "10^4–10^6-state scaling tier: CSR + arena kernels vs pre-CSR layouts");
  core::CacheEnabledScope cache_off(false);

  std::printf("cross-checks at n=2000 (the timed tiers reuse the same generators):\n");

  {
    const Nba chain = rem_p1_chain(2000);
    const ReferenceDetSafety ref = reference_determinize(chain);
    const DetSafety det = DetSafety::determinize(chain);
    bool same = det.num_states() == static_cast<int>(ref.delta.size()) &&
                det.initial() == ref.initial && det.sink() == ref.sink;
    for (State q = 0; same && q < det.num_states(); ++q) {
      for (Sym s = 0; s < 2; ++s) same = det.step(q, s) == ref.delta[q][s];
    }
    std::printf("  subset construction, rem_p1_chain:    %d subsets, %s\n",
                det.num_states(), same ? "reference == optimized" : "MISMATCH");
    SLAT_ASSERT(same);
  }
  {
    const Nba nfa = random_perm(2000, kRandomSeed);
    const ReferenceDetSafety ref = reference_determinize(nfa);
    const DetSafety det = DetSafety::determinize(nfa);
    bool same = det.num_states() == static_cast<int>(ref.delta.size()) &&
                det.initial() == ref.initial && det.sink() == ref.sink;
    for (State q = 0; same && q < det.num_states(); ++q) {
      for (Sym s = 0; s < 2; ++s) same = det.step(q, s) == ref.delta[q][s];
    }
    std::printf("  subset construction, random perm:     %d subsets, %s\n",
                det.num_states(), same ? "reference == optimized" : "MISMATCH");
    SLAT_ASSERT(same);
  }
  {
    const Nba lhs = stem_lhs(2000);
    const Nba rhs = inclusion_rhs();
    core::Counter& stems = core::metrics().counter("buchi.inclusion.stem_nodes");
    const std::uint64_t before = stems.value();
    const InclusionResult optimized = check_inclusion(lhs, rhs);
    const std::uint64_t optimized_stems = stems.value() - before;
    ReferenceAntichainEngine engine(lhs, rhs);
    const InclusionResult reference = engine.run();
    const bool same = optimized.included == reference.included &&
                      optimized_stems == engine.stem_node_count;
    std::printf("  inclusion stem search, rem/fga rhs:   included=%d, "
                "%llu stem nodes, %s\n",
                optimized.included ? 1 : 0,
                static_cast<unsigned long long>(optimized_stems),
                same ? "reference == optimized" : "MISMATCH");
    SLAT_ASSERT(same);
  }
  {
    const Nba lhs = stem_lhs(2000);
    const Nba rhs = oblivious_rhs();
    const InclusionResult optimized = check_inclusion(lhs, rhs);
    ReferenceAntichainEngine engine(lhs, rhs);
    const InclusionResult reference = engine.run();
    const bool same = optimized.included == reference.included;
    std::printf("  inclusion stem search, oblivious rhs: included=%d, %s\n",
                optimized.included ? 1 : 0,
                same ? "reference == optimized" : "MISMATCH");
    SLAT_ASSERT(same);
  }

  std::printf(
      "\nnotes:\n"
      "  - items/s == automaton states/s for the driven input family\n"
      "  - peak_rss_mb is the process high-water mark (monotone across runs;\n"
      "    optimized benchmarks run first, references — with their quadratic\n"
      "    auxiliary structures — afterwards); rss_growth_mb is the growth\n"
      "    during the run\n"
      "  - *_Reference = pre-CSR layout (bitset-prepass subset construction,\n"
      "    heap-per-node antichain engine); capped at 10^5 states, where its\n"
      "    auxiliary memory already reaches ~2.5 GB per determinization\n"
      "  - scripts/run_benches.sh aggregates the 10^5-tier ratios into\n"
      "    BENCH_PR6.json (gate: >=3x subset construction, >=2x stem search)\n");
}

}  // namespace
}  // namespace slat::buchi

SLAT_BENCH_MAIN(::slat::buchi::print_artifact)
