// ABL-RED — ablation: the bisimulation-quotient reduction and the
// all-accepting intersection fast path. Both exist to keep the exponential
// steps (complementation, subset construction) fed with small inputs; this
// bench quantifies what they buy on tableau outputs and random automata.
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "buchi/complement.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace {

using namespace slat;
using buchi::Nba;

void print_artifact() {
  bench::print_header("ABL-RED", "bisimulation reduction + intersection fast path");

  ltl::LtlArena arena(words::Alphabet::binary());
  std::printf("\nGPVW outputs, before/after the bisimulation quotient:\n");
  std::printf("%-26s %8s %9s %16s\n", "formula", "raw |Q|", "reduced", "complement |Q|");
  for (const char* text :
       {"F a", "a U b", "(a U b) & F a", "G (a -> F b)", "(a U b) | (b U a)",
        "F (a & X (b & X a))"}) {
    const Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const Nba reduced = nba.reduce();
    const Nba comp = buchi::complement(nba);  // internally reduces
    std::printf("%-26s %8d %9d %16d\n", text, nba.num_states(), reduced.num_states(),
                comp.num_states());
  }

  std::printf("\nClosure-automata intersection: counter construction vs fast path\n");
  std::printf("(all-accepting inputs; the fast path halves the state count and keeps\n");
  std::printf(" the product all-accepting, making later complements rank-0):\n");
  std::mt19937 rng(211);
  buchi::RandomNbaConfig config;
  config.num_states = 5;
  std::printf("%6s | %14s %14s\n", "pair", "fast-path |Q|", "counter |Q| (2×)");
  for (int i = 0; i < 4; ++i) {
    const Nba a = buchi::safety_closure(buchi::random_nba(config, rng));
    const Nba b = buchi::safety_closure(buchi::random_nba(config, rng));
    const Nba fast = buchi::intersect(a, b);  // hits the fast path
    std::printf("%6d | %14d %14d\n", i, fast.num_states(),
                a.num_states() * b.num_states() * 2);
  }
  std::printf("\n");
}

void bm_reduce(benchmark::State& state) {
  std::mt19937 rng(220);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba nba = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nba.reduce());
  }
}
BENCHMARK(bm_reduce)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void bm_complement_with_reduction(benchmark::State& state) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const Nba nba = ltl::to_nba(arena, *arena.parse("(a U b) & F a"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::complement(nba));
  }
}
BENCHMARK(bm_complement_with_reduction);

void bm_intersect_fast_path(benchmark::State& state) {
  std::mt19937 rng(221);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const Nba a = buchi::safety_closure(buchi::random_nba(config, rng));
  const Nba b = buchi::safety_closure(buchi::random_nba(config, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::intersect(a, b));
  }
}
BENCHMARK(bm_intersect_fast_path)->Arg(4)->Arg(8);

void bm_intersect_counter_path(benchmark::State& state) {
  std::mt19937 rng(221);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  // Mixed-acceptance automata take the 2-counter construction.
  const Nba a = buchi::random_nba(config, rng);
  const Nba b = buchi::random_nba(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::intersect(a, b));
  }
}
BENCHMARK(bm_intersect_counter_path)->Arg(4)->Arg(8);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
