// TAB-REM-LT — the §2.3 example table (Martin Rem's properties p0–p6),
// regenerated end-to-end: LTL text → GPVW tableau → Büchi automaton →
// safety closure → classification, plus the closure-identity column
// (lcl(p3) = p1, lcl(p4) = lcl(p5) = Σ^ω) checked on the UP-word corpus.
#include <cstdio>

#include "bench_common.hpp"
#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "ltl/rem.hpp"
#include "ltl/translate.hpp"

namespace {

using namespace slat;

void print_artifact() {
  bench::print_header("TAB-REM-LT", "§2.3 Rem examples, linear time (p0–p6)");

  ltl::LtlArena arena(words::Alphabet::binary());
  const auto corpus = words::enumerate_up_words(2, 4, 4);

  // Pre-translate every example so closure identities can cross-reference.
  struct Row {
    ltl::RemExample example;
    buchi::Nba nba;
  };
  std::vector<Row> rows;
  for (const auto& example : ltl::rem_examples()) {
    rows.push_back({example, ltl::to_nba(arena, *arena.parse(example.formula))});
  }
  const auto nba_of = [&](const std::string& name) -> const buchi::Nba& {
    for (const auto& row : rows) {
      if (row.example.name == name) return row.nba;
    }
    std::abort();
  };

  std::printf("\n%-4s %-10s %-17s %-17s %-9s %-8s  %s\n", "id", "formula",
              "classification", "paper says", "lcl(p)=", "verified",
              "description");
  bool all_match = true;
  for (const auto& row : rows) {
    const buchi::SafetyClass got = buchi::classify(row.nba);
    const bool match = got == row.example.expected;
    all_match = all_match && match;
    // Closure identity on the corpus.
    const buchi::Nba closure = buchi::safety_closure(row.nba);
    const auto disagreement =
        buchi::find_disagreement(closure, nba_of(row.example.closure_name), corpus);
    all_match = all_match && !disagreement;
    std::printf("%-4s %-10s %-17s %-17s %-9s %-8s  %s\n", row.example.name.c_str(),
                row.example.formula.c_str(), buchi::to_string(got),
                buchi::to_string(row.example.expected), row.example.closure_name.c_str(),
                (match && !disagreement) ? "ok" : "MISMATCH",
                row.example.description.c_str());
  }
  std::printf("\n%s\n\n", all_match
                              ? "All seven classifications and closures match §2.3."
                              : "!! Some row DISAGREES with the paper — investigate.");
}

void bm_classify(benchmark::State& state) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto& examples = ltl::rem_examples();
  const auto& example = examples[static_cast<std::size_t>(state.range(0))];
  const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(example.formula));
  for (auto _ : state) {
    benchmark::DoNotOptimize(buchi::classify(nba));
  }
  state.SetLabel(example.name + " = " + example.formula);
}
BENCHMARK(bm_classify)->DenseRange(0, 6);

void bm_full_pipeline(benchmark::State& state) {
  const auto& examples = ltl::rem_examples();
  const auto& example = examples[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    ltl::LtlArena arena(words::Alphabet::binary());
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(example.formula));
    benchmark::DoNotOptimize(buchi::classify(nba));
  }
  state.SetLabel(example.name);
}
BENCHMARK(bm_full_pipeline)->DenseRange(0, 6);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
