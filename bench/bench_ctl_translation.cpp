// ABL-CTL — ablation: CTL → Büchi tree automata via the alternating /
// Miyano–Hayashi pipeline. Sizes for the §4.3 CTL examples and pattern
// formulas, plus end-to-end timing (translation and translation+emptiness).
#include <cstdio>

#include "bench_common.hpp"
#include "rabin/from_ctl.hpp"

namespace {

using namespace slat;

const char* kFormulas[] = {
    "a",           "a & AF !a",   "a & EF !a",  "AF b",
    "AG (a -> EF b)", "E(a U AG b)", "A(a U b) & EG a", "AG AF b",
};

void print_artifact() {
  bench::print_header("ABL-CTL",
                      "CTL -> Büchi tree automata (alternating + breakpoint)");

  trees::CtlArena arena(words::Alphabet::binary());
  std::printf("\n%-20s %6s | %8s %8s %8s | %7s\n", "formula", "k", "alt |Q|",
              "nondet", "tuples", "empty?");
  for (const char* text : kFormulas) {
    const auto f = arena.parse(text);
    if (!f) continue;
    for (int k : {1, 2}) {
      rabin::CtlTranslationStats stats;
      const rabin::RabinTreeAutomaton automaton = rabin::from_ctl(arena, *f, k, &stats);
      std::printf("%-20s %6d | %8d %8d %8d | %7s\n", text, k,
                  stats.alternating_states, stats.nondeterministic_states,
                  stats.transitions, automaton.is_empty() ? "yes" : "no");
    }
  }
  std::printf("\n(alt |Q| is linear in the formula; the breakpoint construction pays\n"
              " the exponential — still single digits for the paper's examples)\n\n");
}

void bm_translate(benchmark::State& state) {
  const char* text = kFormulas[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    trees::CtlArena arena(words::Alphabet::binary());
    benchmark::DoNotOptimize(rabin::from_ctl(arena, *arena.parse(text), 2));
  }
  state.SetLabel(text);
}
BENCHMARK(bm_translate)->DenseRange(0, 7);

void bm_translate_and_check_emptiness(benchmark::State& state) {
  trees::CtlArena arena(words::Alphabet::binary());
  const auto f = *arena.parse("AG (a -> EF b) & AF b");
  for (auto _ : state) {
    const rabin::RabinTreeAutomaton automaton = rabin::from_ctl(arena, f, 2);
    benchmark::DoNotOptimize(automaton.is_empty());
  }
}
BENCHMARK(bm_translate_and_check_emptiness);

void bm_generated_membership(benchmark::State& state) {
  trees::CtlArena arena(words::Alphabet::binary());
  const rabin::RabinTreeAutomaton automaton =
      rabin::from_ctl(arena, *arena.parse("AG (a -> EF b)"), 2);
  const trees::KTree tree = trees::KTree::constant(words::Alphabet::binary(), 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(automaton.accepts(tree));
  }
}
BENCHMARK(bm_generated_membership);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
