// TAB-REM-BT — the §4.3 example table (q0–q6 over trees): the ES/US/EL/UL
// classification grid, regenerated from the graph-algorithmic oracles over
// a corpus of regular trees that includes sequences and the paper's own
// witness trees. CTL-expressible rows are cross-checked against the CTL
// model checker.
#include <cstdio>

#include "bench_common.hpp"
#include "trees/closures.hpp"
#include "trees/ctl.hpp"
#include "trees/rem_branching.hpp"

namespace {

using namespace slat;
using trees::KTree;

std::vector<KTree> corpus() {
  auto out = trees::total_tree_corpus(words::Alphabet::binary(), 2, 2);
  for (KTree& witness : trees::paper_witness_trees()) out.push_back(std::move(witness));
  return out;
}

const char* mark(bool value) { return value ? "yes" : "-"; }

void print_artifact() {
  bench::print_header("TAB-REM-BT", "§4.3 Rem examples, branching time (q0–q6)");

  const auto trees_corpus = corpus();
  trees::CtlArena ctl(words::Alphabet::binary());
  std::printf("\ncorpus: %zu total regular trees (incl. sequences + paper witnesses), "
              "closure depth 2\n\n",
              trees_corpus.size());
  std::printf("%-5s %-14s | %-4s %-4s %-4s %-4s | %-8s %-9s  %s\n", "id", "CTL(*)",
              "ES", "US", "EL", "UL", "matches", "ctl-xchk", "description");

  bool all_match = true;
  for (const auto& example : trees::rem_branching_examples()) {
    const auto got = trees::classify(example.property, trees_corpus, 2);
    const bool match = got.existentially_safe == example.expected.existentially_safe &&
                       got.universally_safe == example.expected.universally_safe &&
                       got.existentially_live == example.expected.existentially_live &&
                       got.universally_live == example.expected.universally_live;
    all_match = all_match && match;
    // Cross-check CTL-expressible properties against the model checker.
    const char* xchk = "(CTL*)";
    if (!example.ctl.empty()) {
      const auto f = ctl.parse(example.ctl);
      bool agree = f.has_value();
      if (agree) {
        for (const KTree& tree : trees_corpus) {
          if (trees::holds(ctl, *f, tree) != example.property.contains(tree)) {
            agree = false;
            break;
          }
        }
      }
      xchk = agree ? "ok" : "MISMATCH";
      all_match = all_match && agree;
    }
    std::printf("%-5s %-14s | %-4s %-4s %-4s %-4s | %-8s %-9s  %s\n",
                example.name.c_str(),
                example.ctl.empty() ? "(CTL* only)" : example.ctl.c_str(),
                mark(got.existentially_safe), mark(got.universally_safe),
                mark(got.existentially_live), mark(got.universally_live),
                match ? "ok" : "MISMATCH", xchk, example.description.c_str());
  }
  std::printf("\n%s\n\n",
              all_match ? "All ten rows match the paper's §4.3 analysis."
                        : "!! Some row DISAGREES with the paper — investigate.");
}

void bm_classify_example(benchmark::State& state) {
  const auto examples = trees::rem_branching_examples();
  const auto& example = examples[static_cast<std::size_t>(state.range(0))];
  const auto trees_corpus = corpus();
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::classify(example.property, trees_corpus, 2));
  }
  state.SetLabel(example.name);
}
BENCHMARK(bm_classify_example)->DenseRange(0, 9);

void bm_ncl_membership(benchmark::State& state) {
  const auto examples = trees::rem_branching_examples();
  const auto& q4a = examples[5];
  const KTree tree = KTree::constant(words::Alphabet::binary(), 0, 2);
  const int depth = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trees::in_ncl(q4a.property, tree, depth));
  }
}
BENCHMARK(bm_ncl_membership)->Arg(1)->Arg(2)->Arg(3);

void bm_ctl_model_checking(benchmark::State& state) {
  trees::CtlArena ctl(words::Alphabet::binary());
  const auto f = *ctl.parse("AG (a -> EF b) & E(a U AG b)");
  const auto trees_corpus = corpus();
  for (auto _ : state) {
    int count = 0;
    for (const KTree& tree : trees_corpus) count += trees::holds(ctl, f, tree);
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(trees_corpus.size()));
}
BENCHMARK(bm_ctl_model_checking);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
