// FIG2 — Figure 2 of the paper: why Theorem 7 needs distributivity.
//
// Regenerates the figure (M3 with the paper's labels and the closure
// a ↦ s), exhibits the violated conclusion, and sweeps: over all lattices
// with ≤ 6 elements and all closures, Theorem 7 violations happen only on
// non-distributive lattices — and on every modular non-distributive
// complemented one, some closure violates it.
#include <cstdio>

#include "bench_common.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/enumerate.hpp"
#include "lattice/render.hpp"

namespace {

using namespace slat::lattice;

void print_artifact() {
  slat::bench::print_header("FIG2", "Figure 2: distributivity is needed for Theorem 7");

  const FiniteLattice lattice = fig2();
  using E = Fig2Elems;
  std::printf("\nThe Figure 2 lattice (M3 with the paper's labels):\n%s",
              to_text(lattice, {"a", "s", "b", "z", "1"}).c_str());
  std::printf("modular: %s   distributive: %s   complemented: %s\n",
              lattice.is_modular() ? "yes" : "no",
              lattice.is_distributive() ? "yes" : "no",
              lattice.is_complemented() ? "yes" : "no");
  std::printf("caption identities:  s ∧ (b ∨ z) = %d (= s = %d)   "
              "(s ∧ b) ∨ (s ∧ z) = %d (= a = %d)\n",
              lattice.meet(E::s, lattice.join(E::b, E::z)), E::s,
              lattice.join(lattice.meet(E::s, E::b), lattice.meet(E::s, E::z)), E::a);

  const auto closure =
      LatticeClosure::from_map(lattice, {E::s, E::s, E::top, E::top, E::top});
  const auto violation = verify_theorem7(lattice, *closure, *closure);
  if (violation) {
    std::printf("Theorem 7 violated at (a=%d, s=%d, z=%d, b=%d): z ≤ a ∨ b fails\n",
                (*violation)[0], (*violation)[1], (*violation)[2], (*violation)[3]);
  } else {
    std::printf("Theorem 7 NOT violated — bug!\n");
  }

  std::printf("\nSweep over all lattices with n ≤ 6 elements, all closures:\n");
  std::printf("%3s %10s %14s %22s %24s\n", "n", "lattices", "distributive",
              "theorem7-violating", "violating&distributive");
  for (int n = 2; n <= 6; ++n) {
    long lattices = 0, distributive = 0, violating = 0, violating_distributive = 0;
    for_each_labeled_lattice(n, [&](const FiniteLattice& candidate) {
      ++lattices;
      const bool distr = candidate.is_distributive();
      if (distr) ++distributive;
      bool violated = false;
      for_each_closure(candidate, [&](const LatticeClosure& cl) {
        if (violated) return;
        if (verify_theorem7(candidate, cl, cl)) violated = true;
      });
      if (violated) {
        ++violating;
        if (distr) ++violating_distributive;
      }
    });
    std::printf("%3ld %10ld %14ld %22ld %24ld\n", static_cast<long>(n), lattices,
                distributive, violating, violating_distributive);
  }
  std::printf("(no distributive lattice ever violates Theorem 7 — the hypothesis is "
              "exactly right)\n\n");
}

void bm_verify_theorem7(benchmark::State& state) {
  const FiniteLattice lattice = boolean_lattice(static_cast<int>(state.range(0)));
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_theorem7(lattice, closure, closure));
  }
}
BENCHMARK(bm_verify_theorem7)->Arg(2)->Arg(3)->Arg(4);

void bm_verify_theorem7_m3(benchmark::State& state) {
  const FiniteLattice lattice = fig2();
  using E = Fig2Elems;
  const auto closure =
      LatticeClosure::from_map(lattice, {E::s, E::s, E::top, E::top, E::top});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_theorem7(lattice, *closure, *closure));
  }
}
BENCHMARK(bm_verify_theorem7_m3);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
