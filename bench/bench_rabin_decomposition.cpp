// RABIN-DEC — §4.4 / Theorem 9: the Rabin tree-automaton decomposition.
// For the example automata and a random sweep: build B_safe = rfcl(B),
// verify the decomposition identities by exact game-based membership on a
// regular-tree corpus, and time the game pipeline (emptiness, membership,
// closure, witness extraction).
#include <cstdio>

#include "bench_common.hpp"
#include "rabin/examples.hpp"
#include "rabin/random.hpp"
#include "trees/closures.hpp"

namespace {

using namespace slat;
using rabin::RabinTreeAutomaton;
using trees::KTree;

std::vector<KTree> binary_corpus() {
  std::vector<KTree> corpus;
  for (int n = 1; n <= 2; ++n) {
    for (KTree& tree :
         trees::enumerate_regular_trees(words::Alphabet::binary(), n, 2, 2)) {
      bool duplicate = false;
      for (const KTree& existing : corpus) {
        if (existing.same_unfolding(tree)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) corpus.push_back(std::move(tree));
    }
  }
  return corpus;
}

struct NamedAutomaton {
  const char* name;
  RabinTreeAutomaton automaton;
};

std::vector<NamedAutomaton> examples() {
  std::vector<NamedAutomaton> out;
  out.push_back({"const-a", rabin::aut_const_a()});
  out.push_back({"root-a", rabin::aut_root_a()});
  out.push_back({"AF b", rabin::aut_af_b()});
  out.push_back({"A GF b", rabin::aut_agf_b()});
  out.push_back({"E FG b", rabin::aut_efg_b()});
  out.push_back({"A FG b", rabin::aut_afg_b()});
  return out;
}

void print_artifact() {
  bench::print_header("RABIN-DEC", "§4.4 Theorem 9: Rabin tree decomposition");

  const auto corpus = binary_corpus();
  std::printf("\ncorpus: %zu total binary regular trees (k = 2)\n\n", corpus.size());
  std::printf("%-8s | %3s %5s | %8s %9s | %10s %10s %10s\n", "B", "|Q|", "pairs",
              "|Q_safe|", "closure=", "L=S∩L ok", "safe ok", "live ok");

  for (const auto& [name, automaton] : examples()) {
    const rabin::RabinDecomposition d = rabin::decompose(automaton);
    const trees::TreeProperty safe_prop{
        "safe", [&](const KTree& t) { return d.safety.accepts(t); },
        [&](const KTree& t) { return d.safety.accepts_some_extension(t); }};
    const trees::TreeProperty live_prop{
        "live", [&](const KTree& t) { return d.liveness_contains(t); },
        [&](const KTree& t) { return d.liveness_extendable(t); }};
    const trees::TreeProperty orig_prop{
        "orig", [&](const KTree& t) { return automaton.accepts(t); },
        [&](const KTree& t) { return automaton.accepts_some_extension(t); }};
    int meet_ok = 0, safe_ok = 0, live_ok = 0, closure_semantic = 0;
    for (const KTree& t : corpus) {
      if (automaton.accepts(t) == (d.safety.accepts(t) && d.liveness_contains(t)))
        ++meet_ok;
      // Safety: B_safe is fcl-closed.
      if (d.safety.accepts(t) == trees::in_fcl(safe_prop, t, 3)) ++safe_ok;
      // Liveness: fcl(B_live) is everything.
      if (trees::in_fcl(live_prop, t, 3)) ++live_ok;
      // B_safe really is the semantic closure of B (bounded check).
      if (d.safety.accepts(t) == trees::in_fcl(orig_prop, t, 6)) ++closure_semantic;
    }
    std::printf("%-8s | %3d %5d | %8d %6d/%-2zu | %7d/%-2zu %7d/%-2zu %7d/%-2zu\n", name,
                automaton.num_states(), automaton.num_pairs(), d.safety.num_states(),
                closure_semantic, corpus.size(), meet_ok, corpus.size(), safe_ok,
                corpus.size(), live_ok, corpus.size());
  }
  std::printf("\n(B_live is represented as the effective union L(B) ∪ ¬L(rfcl B); see\n"
              " DESIGN.md for the complementation substitution.)\n\n");
}

void bm_emptiness(benchmark::State& state) {
  std::mt19937 rng(71);
  rabin::RandomRabinConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const RabinTreeAutomaton aut = rabin::random_rabin(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aut.is_empty());
  }
}
BENCHMARK(bm_emptiness)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void bm_membership(benchmark::State& state) {
  const RabinTreeAutomaton aut = rabin::aut_afg_b();
  const KTree tree = KTree::constant(words::Alphabet::binary(), 1, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aut.accepts(tree));
  }
}
BENCHMARK(bm_membership);

void bm_rfcl(benchmark::State& state) {
  std::mt19937 rng(73);
  rabin::RandomRabinConfig config;
  config.num_states = static_cast<int>(state.range(0));
  const RabinTreeAutomaton aut = rabin::random_rabin(config, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rabin::rfcl(aut));
  }
}
BENCHMARK(bm_rfcl)->Arg(2)->Arg(4)->Arg(6);

void bm_find_accepted_tree(benchmark::State& state) {
  const RabinTreeAutomaton aut = rabin::aut_efg_b();
  for (auto _ : state) {
    benchmark::DoNotOptimize(aut.find_accepted_tree());
  }
}
BENCHMARK(bm_find_accepted_tree);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
