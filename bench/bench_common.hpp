// Shared glue for the bench binaries: every bench first PRINTS the paper
// artifact it regenerates (table or figure), then runs its google-benchmark
// timings. EXPERIMENTS.md catalogues the outputs.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>

namespace slat::bench {

/// Prints the standard header naming the experiment (ids from DESIGN.md §4).
inline void print_header(const char* experiment_id, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("================================================================\n");
}

/// Runs the artifact printer, then the registered benchmarks.
template <typename PrintArtifact>
int run(int argc, char** argv, const PrintArtifact& print_artifact) {
  print_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace slat::bench

#define SLAT_BENCH_MAIN(print_artifact)                        \
  int main(int argc, char** argv) {                            \
    return ::slat::bench::run(argc, argv, (print_artifact));   \
  }
