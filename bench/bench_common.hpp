// Shared glue for the bench binaries: every bench first PRINTS the paper
// artifact it regenerates (table or figure), then runs its google-benchmark
// timings. EXPERIMENTS.md catalogues the outputs.
//
// The artifact dump is routed to STDERR (the printers themselves use plain
// printf; `run` temporarily redirects fd 1) so that
// `--benchmark_format=json` / `--benchmark_out` consumers — in particular
// scripts/run_benches.sh — always see clean JSON on stdout. Setting
// SLAT_BENCH_ARTIFACT=0 skips the artifact entirely (useful for fast
// timing-only sweeps).
#pragma once

#include <benchmark/benchmark.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/metrics.hpp"
#include "core/thread_pool.hpp"

namespace slat::bench {

/// Prints the standard header naming the experiment (ids from DESIGN.md §4).
inline void print_header(const char* experiment_id, const char* description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", experiment_id, description);
  std::printf("================================================================\n");
}

inline bool artifact_enabled() {
  const char* env = std::getenv("SLAT_BENCH_ARTIFACT");
  return env == nullptr || env[0] != '0';
}

/// Runs `print_artifact` with stdout temporarily redirected to stderr, so
/// printf-style artifact printers never pollute machine-readable stdout.
template <typename PrintArtifact>
void print_artifact_to_stderr(const PrintArtifact& print_artifact) {
  std::fflush(stdout);
  const int saved_stdout = ::dup(STDOUT_FILENO);
  if (saved_stdout >= 0 && ::dup2(STDERR_FILENO, STDOUT_FILENO) >= 0) {
    print_artifact();
    std::fflush(stdout);
    ::dup2(saved_stdout, STDOUT_FILENO);
    ::close(saved_stdout);
  } else {
    // fd juggling failed (exotic environment): print unredirected.
    if (saved_stdout >= 0) ::close(saved_stdout);
    print_artifact();
  }
}

/// If SLAT_METRICS_OUT names a file, dumps the process-wide metrics registry
/// (counters/timers/histograms, including every memo cache's hit/miss/eviction
/// counts) as JSON to that path. scripts/run_benches.sh uses this to compute
/// per-bench cache hit rates for BENCH_PR3.json.
inline void dump_metrics_if_requested() {
  const char* path = std::getenv("SLAT_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return;
  if (std::FILE* f = std::fopen(path, "w")) {
    const std::string json = core::metrics().dump_json();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  } else {
    std::fprintf(stderr, "warning: cannot open SLAT_METRICS_OUT=%s\n", path);
  }
}

/// Runs the artifact printer (to stderr), then the registered benchmarks.
template <typename PrintArtifact>
int run(int argc, char** argv, const PrintArtifact& print_artifact) {
  if (artifact_enabled()) print_artifact_to_stderr(print_artifact);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dump_metrics_if_requested();
  return 0;
}

/// Scales the global pool to `state.range(0)` threads for the duration of a
/// pool benchmark and restores the auto size afterwards. Pool benchmarks
/// take the thread count as their first Arg (see SLAT_BENCH_THREAD_ARGS);
/// scripts/run_benches.sh sweeps and aggregates them into BENCH_PR2.json.
class ThreadSweepGuard {
 public:
  explicit ThreadSweepGuard(benchmark::State& state) {
    core::set_num_threads(static_cast<int>(state.range(0)));
  }
  ~ThreadSweepGuard() { core::set_num_threads(0); }
};

}  // namespace slat::bench

/// The standard thread sweep reported per thread count: 1, 2, 4, 8.
#define SLAT_BENCH_THREAD_ARGS \
  ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime()

#define SLAT_BENCH_MAIN(print_artifact)                        \
  int main(int argc, char** argv) {                            \
    return ::slat::bench::run(argc, argv, (print_artifact));   \
  }
