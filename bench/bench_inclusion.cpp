// PERF-INCL — the antichain inclusion engine vs the complement-based oracle.
// Language inclusion is the workhorse query behind the paper-level lattice
// instance (equal/leq on ω-regular languages): this bench times the same
// L(A) ⊆ L(B) queries on both backends — the on-the-fly antichain search
// with simulation subsumption, and lhs ∩ ¬rhs emptiness through rank-based
// complementation — on random NBA families and on the Rem p0–p6 tableau
// automata, and reports the antichain search's size counters (nodes,
// subsumption prunings, final antichain size). Caching is disabled inside
// every timing loop so both backends pay their full construction each
// iteration; scripts/run_benches.sh additionally runs the binary under
// SLAT_CACHE=0 and aggregates the antichain/complement ratio into
// BENCH_PR4.json.
#include <chrono>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "buchi/inclusion.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "ltl/rem.hpp"
#include "ltl/translate.hpp"

namespace {

using namespace slat;
using buchi::InclusionBackend;
using buchi::InclusionBackendScope;
using buchi::Nba;

std::vector<std::pair<Nba, Nba>> random_pairs(int num_states, int count,
                                              unsigned seed) {
  std::mt19937 rng(seed);
  buchi::RandomNbaConfig config;
  config.num_states = num_states;
  config.alphabet_size = 2;
  std::vector<std::pair<Nba, Nba>> pairs;
  pairs.reserve(count);
  for (int i = 0; i < count; ++i) {
    config.transition_density = 0.8 + 0.1 * (i % 3);
    Nba lhs = buchi::random_nba(config, rng);
    Nba rhs = buchi::random_nba(config, rng);
    pairs.emplace_back(std::move(lhs), std::move(rhs));
  }
  return pairs;
}

std::vector<Nba> rem_tableaux() {
  ltl::LtlArena arena(words::Alphabet::binary());
  std::vector<Nba> automata;
  for (const auto& example : ltl::rem_examples()) {
    const auto f = arena.parse(example.formula);
    if (f.has_value()) automata.push_back(ltl::to_nba(arena, *f));
  }
  return automata;
}

double run_backend_us(InclusionBackend backend,
                      const std::vector<std::pair<Nba, Nba>>& pairs) {
  InclusionBackendScope scope(backend);
  core::CacheEnabledScope uncached(false);
  const auto start = std::chrono::steady_clock::now();
  for (const auto& [lhs, rhs] : pairs) {
    benchmark::DoNotOptimize(buchi::check_inclusion(lhs, rhs));
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::micro>(elapsed).count() /
         static_cast<double>(pairs.size());
}

void print_artifact() {
  bench::print_header("PERF-INCL",
                      "antichain inclusion vs complement-based oracle");

  std::printf("\nrandom NBA pairs (avg μs per query, %d pairs per row)\n", 10);
  std::printf("%3s | %12s %12s | %8s | %12s %12s\n", "n", "antichain",
              "complement", "speedup", "nodes/query", "prunings/query");
  core::Counter& stem = core::metrics().counter("buchi.inclusion.stem_nodes");
  core::Counter& period = core::metrics().counter("buchi.inclusion.period_nodes");
  core::Counter& prunings =
      core::metrics().counter("buchi.inclusion.subsumption_prunings");
  for (int n = 2; n <= 5; ++n) {
    const auto pairs = random_pairs(n, 10, 7000 + n);
    const std::uint64_t stem0 = stem.value(), period0 = period.value();
    const std::uint64_t prune0 = prunings.value();
    const double anti_us = run_backend_us(InclusionBackend::kAntichain, pairs);
    const std::uint64_t nodes = stem.value() - stem0 + period.value() - period0;
    const double comp_us = run_backend_us(InclusionBackend::kComplement, pairs);
    std::printf("%3d | %12.1f %12.1f | %7.1fx | %12.1f %12.1f\n", n, anti_us,
                comp_us, comp_us / anti_us,
                static_cast<double>(nodes) / pairs.size(),
                static_cast<double>(prunings.value() - prune0) / pairs.size());
  }

  const auto automata = rem_tableaux();
  std::vector<std::pair<Nba, Nba>> rem_pairs;
  for (const auto& a : automata) {
    for (const auto& b : automata) rem_pairs.emplace_back(a, b);
  }
  const double anti_us = run_backend_us(InclusionBackend::kAntichain, rem_pairs);
  const double comp_us = run_backend_us(InclusionBackend::kComplement, rem_pairs);
  std::printf("\nRem p0–p6 tableaux, all %zu ordered pairs:\n", rem_pairs.size());
  std::printf("  antichain %.1f μs/query, complement %.1f μs/query (%.1fx)\n\n",
              anti_us, comp_us, comp_us / anti_us);
}

void bm_inclusion_antichain(benchmark::State& state) {
  const auto pairs =
      random_pairs(static_cast<int>(state.range(0)), 8, 7100 + state.range(0));
  InclusionBackendScope scope(InclusionBackend::kAntichain);
  core::CacheEnabledScope uncached(false);
  for (auto _ : state) {
    for (const auto& [lhs, rhs] : pairs) {
      benchmark::DoNotOptimize(buchi::check_inclusion(lhs, rhs));
    }
  }
}
BENCHMARK(bm_inclusion_antichain)->DenseRange(2, 5);

void bm_inclusion_complement(benchmark::State& state) {
  const auto pairs =
      random_pairs(static_cast<int>(state.range(0)), 8, 7100 + state.range(0));
  InclusionBackendScope scope(InclusionBackend::kComplement);
  core::CacheEnabledScope uncached(false);
  for (auto _ : state) {
    for (const auto& [lhs, rhs] : pairs) {
      benchmark::DoNotOptimize(buchi::check_inclusion(lhs, rhs));
    }
  }
}
BENCHMARK(bm_inclusion_complement)->DenseRange(2, 4);

void bm_inclusion_rem_antichain(benchmark::State& state) {
  const auto automata = rem_tableaux();
  InclusionBackendScope scope(InclusionBackend::kAntichain);
  core::CacheEnabledScope uncached(false);
  for (auto _ : state) {
    for (const auto& a : automata) {
      for (const auto& b : automata) {
        benchmark::DoNotOptimize(buchi::check_inclusion(a, b));
      }
    }
  }
}
BENCHMARK(bm_inclusion_rem_antichain);

void bm_inclusion_rem_complement(benchmark::State& state) {
  const auto automata = rem_tableaux();
  InclusionBackendScope scope(InclusionBackend::kComplement);
  core::CacheEnabledScope uncached(false);
  for (auto _ : state) {
    for (const auto& a : automata) {
      for (const auto& b : automata) {
        benchmark::DoNotOptimize(buchi::check_inclusion(a, b));
      }
    }
  }
}
BENCHMARK(bm_inclusion_rem_complement);

void bm_universality_antichain(benchmark::State& state) {
  std::mt19937 rng(7300);
  buchi::RandomNbaConfig config;
  config.num_states = static_cast<int>(state.range(0));
  std::vector<Nba> automata;
  for (int i = 0; i < 8; ++i) automata.push_back(buchi::random_nba(config, rng));
  InclusionBackendScope scope(InclusionBackend::kAntichain);
  core::CacheEnabledScope uncached(false);
  for (auto _ : state) {
    for (const auto& nba : automata) {
      benchmark::DoNotOptimize(buchi::check_universality(nba));
    }
  }
}
BENCHMARK(bm_universality_antichain)->DenseRange(2, 5);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
