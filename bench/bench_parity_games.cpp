// ABL-GAME — ablation: the game-solving substrate behind the branching-time
// results. Zielonka on random parity games across sizes/priorities, and the
// IAR (Rabin → parity) expansion factor across pair counts.
#include <cstdio>
#include <random>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "games/parity.hpp"
#include "games/rabin_game.hpp"

namespace {

using namespace slat::games;

ParityGame random_parity_game(int n, int max_priority, std::mt19937& rng) {
  std::uniform_int_distribution<int> owner_dist(0, 1), priority_dist(0, max_priority),
      node_dist(0, n - 1);
  ParityGame game;
  for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), priority_dist(rng));
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  return game;
}

RabinGame random_rabin_game(int n, int pairs, std::mt19937& rng) {
  std::uniform_int_distribution<int> owner_dist(0, 1), node_dist(0, n - 1);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, (1u << pairs) - 1);
  RabinGame game;
  game.num_pairs = pairs;
  for (int v = 0; v < n; ++v)
    game.add_node(owner_dist(rng), RabinMarks{mask_dist(rng), mask_dist(rng)});
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  return game;
}

void print_artifact() {
  slat::bench::print_header("ABL-GAME", "parity/Rabin game solving substrate");

  std::printf("\nZielonka on random parity games (avg player-0 share of nodes):\n");
  std::printf("%7s %6s | %10s\n", "nodes", "prio", "P0 share");
  for (int n : {100, 1000, 10000}) {
    for (int p : {2, 4, 8}) {
      std::mt19937 rng(n + p);
      const ParityGame game = random_parity_game(n, p, rng);
      const ParitySolution solution = solve(game);
      int p0 = 0;
      for (int v = 0; v < n; ++v) p0 += solution.winner[v] == 0;
      std::printf("%7d %6d | %9.1f%%\n", n, p, 100.0 * p0 / n);
    }
  }

  std::printf("\nIAR expansion (Rabin game -> parity game), 50-node games:\n");
  std::printf("%6s | %12s %14s\n", "pairs", "parity nodes", "factor vs m!·n");
  for (int pairs : {1, 2, 3, 4}) {
    std::mt19937 rng(pairs);
    const RabinGame game = random_rabin_game(50, pairs, rng);
    const IarExpansion expansion = expand_iar(game);
    long factorial = 1;
    for (int i = 2; i <= pairs; ++i) factorial *= i;
    std::printf("%6d | %12d %13.1f%%\n", pairs, expansion.parity.num_nodes(),
                100.0 * expansion.parity.num_nodes() / (factorial * 50));
  }
  std::printf("\n(only REACHABLE records are expanded, which keeps the IAR factor well\n"
              " under the worst-case m!)\n\n");
}

void bm_zielonka(benchmark::State& state) {
  std::mt19937 rng(static_cast<unsigned>(state.range(0)));
  const ParityGame game =
      random_parity_game(static_cast<int>(state.range(0)), 6, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve(game));
  }
}
BENCHMARK(bm_zielonka)->Arg(100)->Arg(1000)->Arg(10000);

void bm_iar_expand(benchmark::State& state) {
  std::mt19937 rng(9);
  const RabinGame game = random_rabin_game(50, static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(expand_iar(game));
  }
}
BENCHMARK(bm_iar_expand)->DenseRange(1, 4);

// Thread sweep: a fixed pool of parity games solved concurrently. Grain 1 so
// an idle thread steals the next unsolved game; the attractor-internal
// parallelism runs inline on the workers.
void bm_zielonka_pool(benchmark::State& state) {
  slat::bench::ThreadSweepGuard guard(state);
  std::mt19937 rng(11);
  std::vector<ParityGame> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(random_parity_game(1000, 6, rng));
  for (auto _ : state) {
    slat::core::parallel_for(
        static_cast<int>(pool.size()),
        [&](int i) { benchmark::DoNotOptimize(solve(pool[i])); },
        /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * pool.size());
}
BENCHMARK(bm_zielonka_pool)->SLAT_BENCH_THREAD_ARGS;

void bm_solve_rabin(benchmark::State& state) {
  std::mt19937 rng(10);
  const RabinGame game = random_rabin_game(static_cast<int>(state.range(0)), 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_rabin(game));
  }
}
BENCHMARK(bm_solve_rabin)->Arg(10)->Arg(50)->Arg(200);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
