// FIG1 — Figure 1 of the paper: why Theorem 3 needs modularity.
//
// Regenerates the figure (the N5 Hasse diagram with the closure cl.a = b),
// machine-checks Lemma 6 on it, and then widens the figure into a sweep the
// paper only gestures at: over EVERY lattice with ≤ 6 elements and EVERY
// closure on it, decomposition failures occur only on non-modular lattices.
#include <cstdio>

#include "bench_common.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/enumerate.hpp"
#include "lattice/render.hpp"

namespace {

using namespace slat::lattice;

LatticeClosure figure1_closure(const FiniteLattice& lattice) {
  using E = N5Elems;
  auto closure =
      LatticeClosure::from_map(lattice, {E::bottom, E::b, E::b, E::c, E::top});
  return *closure;
}

void print_artifact() {
  slat::bench::print_header("FIG1", "Figure 1: modularity is needed (N5 + sweep)");

  const FiniteLattice lattice = n5();
  std::printf("\nThe N5 lattice (paper labels):\n%s",
              to_text(lattice, {"0", "a", "b", "c", "1"}).c_str());
  std::printf("modular: %s   complemented: %s\n",
              lattice.is_modular() ? "yes" : "no",
              lattice.is_complemented() ? "yes" : "no");
  const auto witness = lattice.modularity_counterexample();
  std::printf("modularity witness (a,b,c): (%d,%d,%d)\n", (*witness)[0], (*witness)[1],
              (*witness)[2]);

  const LatticeClosure closure = figure1_closure(lattice);
  std::printf("closure: cl(a) = b, identity elsewhere\n");
  const auto decomposition =
      find_any_decomposition(lattice, closure, closure, N5Elems::a);
  std::printf("Lemma 6 — element a decomposable as safety ∧ liveness: %s\n",
              decomposition ? "YES (BUG!)" : "no (as the paper proves)");

  // Sweep: all labeled lattices with ≤ 6 elements, all closures on each.
  std::printf("\nSweep over all lattices with n ≤ 6 elements (natural labelings):\n");
  std::printf("%3s %10s %10s %12s %14s %16s\n", "n", "lattices", "modular",
              "complemented", "mod+comp", "undecomposable");
  for (int n = 2; n <= 6; ++n) {
    long lattices = 0, modular = 0, complemented = 0, paper_setting = 0;
    long with_failure = 0;  // lattices with SOME closure + element that fails
    long nonmodular_failures = 0;
    for_each_labeled_lattice(n, [&](const FiniteLattice& candidate) {
      ++lattices;
      const bool is_mod = candidate.is_modular();
      const bool is_comp = candidate.is_complemented();
      if (is_mod) ++modular;
      if (is_comp) ++complemented;
      if (is_mod && is_comp) ++paper_setting;
      if (!is_comp) return;  // Theorem 2 presupposes complements
      bool failure = false;
      for_each_closure(candidate, [&](const LatticeClosure& cl) {
        if (failure) return;
        for (Elem a = 0; a < candidate.size() && !failure; ++a) {
          if (!find_any_decomposition(candidate, cl, cl, a)) failure = true;
        }
      });
      if (failure) {
        ++with_failure;
        if (!is_mod) ++nonmodular_failures;
      }
    });
    std::printf("%3d %10ld %10ld %12ld %14ld %16ld\n", n, lattices, modular,
                complemented, paper_setting, with_failure);
    if (with_failure != nonmodular_failures) {
      std::printf("  !! a MODULAR complemented lattice failed — contradicts Theorem 2\n");
    }
  }
  std::printf("(every undecomposable case sits on a non-modular lattice — Theorem 2 "
              "is tight)\n\n");
}

void bm_lemma6_search(benchmark::State& state) {
  const FiniteLattice lattice = n5();
  const LatticeClosure closure = figure1_closure(lattice);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_any_decomposition(lattice, closure, closure, N5Elems::a));
  }
}
BENCHMARK(bm_lemma6_search);

void bm_sweep_lattices(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    long count = 0;
    for_each_labeled_lattice(n, [&](const FiniteLattice&) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(bm_sweep_lattices)->Arg(4)->Arg(5);

void bm_modularity_check(benchmark::State& state) {
  const FiniteLattice lattice = subspace_lattice_gf2(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lattice.is_modular());
  }
}
BENCHMARK(bm_modularity_check)->Arg(2)->Arg(3)->Arg(4);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
