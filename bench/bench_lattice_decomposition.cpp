// THM-LAT — Theorems 2/3/5/6/7 and Lemmas 3–5, verified exhaustively on a
// suite of lattices (Boolean, subspace, partition, divisor) with enumerated
// or random closures, with timing across lattice sizes.
#include <cstdio>

#include "bench_common.hpp"
#include "core/parallel.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/enumerate.hpp"

namespace {

using namespace slat::lattice;

struct NamedLattice {
  const char* name;
  FiniteLattice lattice;
};

std::vector<NamedLattice> suite() {
  std::vector<NamedLattice> out;
  out.push_back({"B_2", boolean_lattice(2)});
  out.push_back({"B_3", boolean_lattice(3)});
  out.push_back({"B_4", boolean_lattice(4)});
  out.push_back({"M3", m3()});
  out.push_back({"GF(2)^2", subspace_lattice_gf2(2)});
  out.push_back({"GF(2)^3", subspace_lattice_gf2(3)});
  out.push_back({"Pi_3", partition_lattice(3)});
  out.push_back({"div(30)", divisor_lattice(30)});
  return out;
}

void print_artifact() {
  slat::bench::print_header(
      "THM-LAT", "Theorems 2/3/5/6/7 + Lemmas 3-5 across a lattice suite");

  std::printf("\n%-9s %5s %8s %6s %7s | %9s %6s %6s %6s %6s\n", "lattice", "size",
              "modular", "compl", "distr", "closures", "Thm3", "Thm5", "Thm6", "Thm7");
  for (const auto& [name, lattice] : suite()) {
    const bool comp = lattice.is_complemented();
    const bool mod = lattice.is_modular();
    const bool distr = lattice.is_distributive();

    // Sample closures: the full enumeration for small lattices, random ones
    // for the larger lattices in the suite.
    std::vector<LatticeClosure> closures;
    if (lattice.size() <= 8) {
      for_each_closure(lattice, [&](const LatticeClosure& cl) { closures.push_back(cl); });
    } else {
      std::mt19937 rng(2024);
      for (int i = 0; i < 30; ++i) closures.push_back(LatticeClosure::random(lattice, rng));
      closures.push_back(LatticeClosure::identity(lattice));
      closures.push_back(LatticeClosure::to_top(lattice));
    }

    int theorem3_ok = 0, theorem3_total = 0;
    int theorem5_ok = 0, theorem6_ok = 0, theorem6_total = 0, theorem7_ok = 0,
        theorem7_total = 0, theorem5_total = 0;
    for (const auto& cl1 : closures) {
      for (const auto& cl2 : closures) {
        ++theorem5_total;
        if (!verify_theorem5(lattice, cl1, cl2)) ++theorem5_ok;
        if (!cl1.pointwise_leq(cl2)) continue;
        if (comp && mod) {
          ++theorem3_total;
          if (!verify_theorem3(lattice, cl1, cl2)) ++theorem3_ok;
        }
        ++theorem6_total;
        if (!verify_theorem6(lattice, cl1, cl2)) ++theorem6_ok;
      }
      if (distr) {
        // Theorem 7's extremal-liveness claim, in its single-closure form.
        ++theorem7_total;
        if (!verify_theorem7(lattice, cl1, cl1)) ++theorem7_ok;
      }
    }
    std::printf("%-9s %5d %8s %6s %7s | %9zu %d/%d %4d/%d %3d/%d %4d/%d\n", name,
                lattice.size(), mod ? "yes" : "no", comp ? "yes" : "no",
                distr ? "yes" : "no", closures.size(), theorem3_ok, theorem3_total,
                theorem5_ok, theorem5_total, theorem6_ok, theorem6_total, theorem7_ok,
                theorem7_total);
  }
  std::printf("\n(each 'x/y' pair must have x = y: every theorem instance verified)\n\n");
}

void bm_theorem3_verify(benchmark::State& state) {
  const FiniteLattice lattice = boolean_lattice(static_cast<int>(state.range(0)));
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_theorem3(lattice, closure, closure));
  }
}
BENCHMARK(bm_theorem3_verify)->DenseRange(2, 6);

void bm_decompose_single(benchmark::State& state) {
  const FiniteLattice lattice = boolean_lattice(static_cast<int>(state.range(0)));
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {1, 2});
  for (auto _ : state) {
    for (Elem a = 0; a < lattice.size(); ++a) {
      benchmark::DoNotOptimize(decompose(lattice, closure, a));
    }
  }
  state.SetItemsProcessed(state.iterations() * lattice.size());
}
BENCHMARK(bm_decompose_single)->DenseRange(2, 8);

// Thread sweep: decompose every element under a pool of random closures on
// B_8, one closure per chunk. Decomposition is a pure function of
// (lattice, closure, element), so each chunk owns its closure outright.
void bm_decompose_pool(benchmark::State& state) {
  slat::bench::ThreadSweepGuard guard(state);
  const FiniteLattice lattice = boolean_lattice(8);
  std::mt19937 rng(2025);
  std::vector<LatticeClosure> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(LatticeClosure::random(lattice, rng));
  for (auto _ : state) {
    slat::core::parallel_for(
        static_cast<int>(pool.size()),
        [&](int i) {
          for (Elem a = 0; a < lattice.size(); ++a) {
            benchmark::DoNotOptimize(decompose(lattice, pool[i], a));
          }
        },
        /*grain=*/1);
  }
  state.SetItemsProcessed(state.iterations() * pool.size() * lattice.size());
}
BENCHMARK(bm_decompose_pool)->SLAT_BENCH_THREAD_ARGS;

void bm_random_closure_construction(benchmark::State& state) {
  const FiniteLattice lattice = boolean_lattice(static_cast<int>(state.range(0)));
  std::mt19937 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatticeClosure::random(lattice, rng));
  }
}
BENCHMARK(bm_random_closure_construction)->DenseRange(2, 6);

}  // namespace

SLAT_BENCH_MAIN(print_artifact)
