// E10 (DESIGN.md §8): the streaming monitor fleet at serving scale.
//
// The workload is monitoring-as-a-service: a fixed family of "no run of
// more than k consecutive b's" specifications compiled once, 10^4–10^6
// concurrent sessions zipf-assigned across them, and bursty seeded traffic
// (1% out-of-alphabet garbage — the PR 8 hardened event path is part of the
// hot loop, not an error branch). Every timed pass replays the SAME
// pregenerated batches after reset_sessions(), so iterations measure
// identical work.
//
//   BM_FleetIngest          — batched MonitorFleet::ingest across the global
//                             pool; items/s == events/s.
//   BM_FleetScalar          — the same fleet stepped one event at a time on
//                             one thread (the table layout without the
//                             batching layer).
//   BM_NaiveIngest_Reference — the pre-fleet architecture: one SafetyMonitor
//                             object per session (each owning its subset
//                             automaton), stepped per event. This is the
//                             baseline the run_benches.sh gate compares
//                             against (fleet >= 3x at the 10^5 tier); it is
//                             capped at 10^5 sessions, where its per-session
//                             objects already cost ~100x the fleet's 8 bytes.
//
// Registration order matters for the RSS counters: ru_maxrss is a process
// high-water mark, so the fleet benchmarks run FIRST and their peak_rss_mb
// readings — the "O(sessions) resident memory" acceptance number — are
// untouched by the reference runs' per-session monitor objects.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

#include "bench_common.hpp"
#include "buchi/nba.hpp"
#include "common/assert.hpp"
#include "monitor/fleet.hpp"
#include "monitor/monitor.hpp"
#include "monitor/traffic.hpp"
#include "qc/seed.hpp"
#include "words/alphabet.hpp"

namespace slat::monitor {
namespace {

double peak_rss_mb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // Linux: KiB
}

void record_rss(benchmark::State& state, double rss_before) {
  const double rss_after = peak_rss_mb();
  state.counters["peak_rss_mb"] = rss_after;
  state.counters["rss_growth_mb"] = std::max(0.0, rss_after - rss_before);
}

constexpr std::uint32_t kNumMonitors = 12;
/// Batches per timed pass; each batch carries one event per session on
/// average, so a pass is ~4 events/session of bursty zipf traffic.
constexpr int kBatchesPerPass = 4;

/// "No run of more than `limit` consecutive b's" over Σ = {a, b} — the same
/// family as tests/monitor/fleet_test.cpp; the b-counter overflows into a
/// missing transition, so the closure's determinization grows a real sink.
buchi::Nba b_run_limit(int limit) {
  buchi::Nba nba(words::Alphabet::binary(), limit + 1, 0);
  for (int q = 0; q <= limit; ++q) {
    nba.set_accepting(q, true);
    nba.add_transition(q, 0, 0);
    if (q < limit) nba.add_transition(q, 1, q + 1);
  }
  return nba;
}

TrafficConfig fleet_config(std::uint32_t num_sessions) {
  return TrafficConfig{.num_sessions = num_sessions,
                       .num_monitors = kNumMonitors,
                       .alphabet_size = 2,
                       .common_sym_bias = 0.85,
                       .garbage_rate = 0.01};
}

std::vector<MonitorId> monitor_mix(const TrafficConfig& cfg, std::mt19937& rng) {
  return zipf_monitor_assignment(cfg, rng);
}

struct FleetWorkload {
  MonitorFleet fleet;
  std::vector<std::vector<Event>> batches;
  std::size_t total_events = 0;
};

FleetWorkload make_fleet_workload(std::uint32_t num_sessions) {
  const TrafficConfig cfg = fleet_config(num_sessions);
  FleetWorkload w;
  std::mt19937 rng = qc::make_rng("bench_fleet.build");
  std::vector<MonitorId> programs;
  for (std::uint32_t j = 0; j < kNumMonitors; ++j) {
    programs.push_back(w.fleet.compile_nba(b_run_limit(1 + static_cast<int>(j % 6))));
  }
  for (const MonitorId m : monitor_mix(cfg, rng)) {
    w.fleet.open_session(programs[m]);
  }
  for (int b = 0; b < kBatchesPerPass; ++b) {
    w.batches.push_back(make_batch(cfg, num_sessions, rng));
    w.total_events += w.batches.back().size();
  }
  return w;
}

/// The pre-fleet architecture: session i owns a full SafetyMonitor built by
/// SafetyMonitor::from_nba — the library's per-trace entry point, which is
/// exactly how the monitor API is consumed without a fleet (no shared
/// compiled programs; every session constructs and owns its automaton). The
/// zipf assignment and the batches are the fleet workload's, seed-for-seed.
struct NaiveWorkload {
  std::vector<SafetyMonitor> sessions;
  std::vector<std::vector<Event>> batches;
  std::size_t total_events = 0;
};

NaiveWorkload make_naive_workload(std::uint32_t num_sessions) {
  const TrafficConfig cfg = fleet_config(num_sessions);
  NaiveWorkload w;
  std::mt19937 rng = qc::make_rng("bench_fleet.build");
  std::vector<buchi::Nba> specs;
  for (std::uint32_t j = 0; j < kNumMonitors; ++j) {
    specs.push_back(b_run_limit(1 + static_cast<int>(j % 6)));
  }
  w.sessions.reserve(num_sessions);
  for (const MonitorId m : monitor_mix(cfg, rng)) {
    w.sessions.push_back(SafetyMonitor::from_nba(specs[m]));
  }
  for (int b = 0; b < kBatchesPerPass; ++b) {
    w.batches.push_back(make_batch(cfg, num_sessions, rng));
    w.total_events += w.batches.back().size();
  }
  return w;
}

void BM_FleetIngest(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  FleetWorkload w = make_fleet_workload(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    state.PauseTiming();
    w.fleet.reset_sessions();
    state.ResumeTiming();
    for (const std::vector<Event>& batch : w.batches) {
      w.fleet.ingest(batch);
    }
    benchmark::DoNotOptimize(w.fleet.session_state(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_events));
  state.counters["sessions"] = static_cast<double>(n);
  state.counters["violated_sessions"] = static_cast<double>(w.fleet.count_violated());
  record_rss(state, rss_before);
}
BENCHMARK(BM_FleetIngest)
    ->Arg(10000)->Arg(100000)->Arg(1000000)->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_FleetScalar(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  FleetWorkload w = make_fleet_workload(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    state.PauseTiming();
    w.fleet.reset_sessions();
    state.ResumeTiming();
    for (const std::vector<Event>& batch : w.batches) {
      for (const Event& e : batch) {
        benchmark::DoNotOptimize(w.fleet.step(e.session, e.sym));
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_events));
  state.counters["sessions"] = static_cast<double>(n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_FleetScalar)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_NaiveIngest_Reference(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  NaiveWorkload w = make_naive_workload(n);
  const double rss_before = peak_rss_mb();
  for (auto _ : state) {
    state.PauseTiming();
    for (SafetyMonitor& m : w.sessions) m.reset();
    state.ResumeTiming();
    for (const std::vector<Event>& batch : w.batches) {
      for (const Event& e : batch) {
        benchmark::DoNotOptimize(w.sessions[e.session].step(e.sym));
      }
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(w.total_events));
  state.counters["sessions"] = static_cast<double>(n);
  record_rss(state, rss_before);
}
BENCHMARK(BM_NaiveIngest_Reference)
    ->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Artifact: fleet-vs-naive verdict agreement, then the footprint story.
// ---------------------------------------------------------------------------

void print_artifact() {
  bench::print_header("E10", "streaming monitor fleet (DESIGN.md §8)");

  // Cross-check BEFORE any timing: the fleet and the one-monitor-per-session
  // reference must agree on every verdict of the 10^4-session workload.
  FleetWorkload fleet_w = make_fleet_workload(10'000);
  NaiveWorkload naive_w = make_naive_workload(10'000);
  SLAT_ASSERT(fleet_w.total_events == naive_w.total_events);
  std::size_t mismatches = 0;
  for (int b = 0; b < kBatchesPerPass; ++b) {
    const std::vector<Event>& batch = fleet_w.batches[b];
    std::vector<std::uint8_t> verdicts(batch.size());
    fleet_w.fleet.ingest(batch, verdicts);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool naive = naive_w.sessions[batch[i].session].step(batch[i].sym);
      if (verdicts[i] != (naive ? 1 : 0)) ++mismatches;
    }
  }
  std::size_t naive_violated = 0;
  for (const SafetyMonitor& m : naive_w.sessions) {
    if (m.violated()) ++naive_violated;
  }
  const std::size_t fleet_violated = fleet_w.fleet.count_violated();
  std::printf("  10^4-session cross-check: %zu events, %zu verdict mismatches, "
              "violated %zu (fleet) vs %zu (naive) — %s\n",
              fleet_w.total_events, mismatches, fleet_violated, naive_violated,
              mismatches == 0 && fleet_violated == naive_violated
                  ? "reference == fleet"
                  : "MISMATCH");
  SLAT_ASSERT(mismatches == 0 && fleet_violated == naive_violated);

  std::printf(
      "\nnotes:\n"
      "  - items/s == monitor events/s; every pass replays %d pregenerated\n"
      "    zipf/bursty batches (~4 events/session, 1%% out-of-alphabet)\n"
      "  - peak_rss_mb is the process high-water mark; the fleet benchmarks\n"
      "    run first so their readings show the 8-byte-session footprint,\n"
      "    the *_Reference runs (a SafetyMonitor object per session) after\n"
      "  - BM_NaiveIngest_Reference stops at 10^5 sessions; BM_FleetIngest\n"
      "    runs to 10^6 (the O(sessions) RSS acceptance point)\n"
      "  - scripts/run_benches.sh aggregates into BENCH_PR8.json (gate:\n"
      "    batched fleet >= 3x naive at the 10^5 tier)\n",
      kBatchesPerPass);
}

}  // namespace
}  // namespace slat::monitor

SLAT_BENCH_MAIN(::slat::monitor::print_artifact)
