#!/usr/bin/env bash
# Run the kernel-relevant benchmark binaries with JSON output and aggregate
# the results into BENCH_PR1.json (kernel vs seed speedups), BENCH_PR2.json
# (parallel-layer thread sweep), BENCH_PR3.json (memo-cache hit rates),
# BENCH_PR4.json (antichain inclusion vs complement oracle), and
# BENCH_PR6.json (10^4–10^6-state scaling tier: CSR/arena kernels vs the
# pre-CSR reference layouts), and BENCH_PR8.json (streaming monitor fleet:
# batched events/sec + RSS vs the one-monitor-per-session baseline, with a
# hard >=3x gate at the 10^5-session tier), and BENCH_PR9.json (symbolic
# cube-alphabet backend: k-sweep of the to_nba+closure pipeline vs the
# explicit per-letter backend, hard >=10x time AND >=10x peak-RSS gate at
# k = 10 plus a letter-free k = 16 run), and BENCH_PR10.json (quantitative
# tier: per-value-function Φ/Φ* throughput, the boolean-embedding
# differential, and the DiscSum value-iteration thread sweep — the binary
# SLAT_ASSERTs the Theorem 10 min identity and quantitative == qualitative
# agreement before any timing) at the repo root. Every
# BENCH_*.json written is stamped with provenance (commit, compiler, CPU
# model) as the last step.
#
# Usage: scripts/run_benches.sh [build-dir]
#
# Each binary prints its human-readable artifact to stderr (kept visible) and
# writes google-benchmark JSON to a per-binary file via --benchmark_out; the
# aggregation steps merge those files. The thread sweep runs the *_Pool
# benchmarks with SLAT_BENCH_ARTIFACT=0 so only timings are collected.
#
# Failure discipline: the JSON directory is wiped up front and every bench
# invocation is checked — a crashing binary deletes its partial output and
# aborts the whole script with a non-zero exit, so a BENCH_PR*.json at the
# repo root is only ever built from a complete, fresh set of runs.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT_DIR="${BUILD_DIR}/bench_json"
BENCHES=(bench_kernels bench_complementation bench_reduction bench_buchi_decomposition)
# Binaries carrying thread-sweep pool benchmarks (…->SLAT_BENCH_THREAD_ARGS).
SWEEP_BENCHES=(bench_kernels bench_complementation bench_parity_games bench_lattice_decomposition)
# Binaries whose workloads exercise the memo caches; each run dumps the
# metrics registry (SLAT_METRICS_OUT) so hit rates land in BENCH_PR3.json.
CACHE_BENCHES=(bench_rem_linear bench_rem_branching bench_rabin_decomposition bench_lattice_decomposition)
# The inclusion-engine comparison (BENCH_PR4.json).
INCLUSION_BENCHES=(bench_inclusion)
# The scaling tier (BENCH_PR6.json): optimized vs pre-CSR reference kernels.
SCALE_BENCHES=(bench_scale)
# The monitor-fleet serving tier (BENCH_PR8.json): batched ingest vs the
# one-SafetyMonitor-per-session baseline.
FLEET_BENCHES=(bench_fleet)
# The symbolic alphabet k-sweep (BENCH_PR9.json): hash-consed cube labels vs
# the explicit 2^k-letter pipeline.
SYMBOLIC_BENCHES=(bench_symbolic)
# The quantitative tier (BENCH_PR10.json): weighted evaluation, closure, and
# the boolean-embedding differential.
QUANT_BENCHES=(bench_quant)

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
fi
cmake --build "${BUILD_DIR}" -j --target \
  "${BENCHES[@]}" "${SWEEP_BENCHES[@]}" "${CACHE_BENCHES[@]}" \
  "${INCLUSION_BENCHES[@]}" "${SCALE_BENCHES[@]}" "${FLEET_BENCHES[@]}" \
  "${SYMBOLIC_BENCHES[@]}" "${QUANT_BENCHES[@]}"

# Start from a clean slate: stale JSON from an earlier (possibly aborted) run
# must never leak into the aggregates.
rm -rf "${OUT_DIR}"
mkdir -p "${OUT_DIR}"

# Runs one bench binary; on a crash, removes the partial JSON named by the
# first argument and fails the whole script loudly.
run_bench() {
  local out_file="$1"
  shift
  local status=0
  "$@" || status=$?
  if [[ ${status} -ne 0 ]]; then
    rm -f "${out_file}"
    echo "error: benchmark invocation failed (exit ${status}): $*" >&2
    echo "error: removed partial output ${out_file}; no BENCH_PR*.json written" >&2
    exit 1
  fi
}

# The PR1/PR2 loops run with SLAT_CACHE=0: they measure the raw kernels and
# the parallel layer, and the memo caches would otherwise turn every repeat
# iteration into a lookup (BENCH_PR3.json is where caching is measured).
for bench in "${BENCHES[@]}"; do
  echo "== ${bench} =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='-threads:' \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

for bench in "${SWEEP_BENCHES[@]}"; do
  echo "== ${bench} (thread sweep) =="
  run_bench "${OUT_DIR}/${bench}.threads.json" \
    env SLAT_BENCH_ARTIFACT=0 SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='threads:' \
    --benchmark_out="${OUT_DIR}/${bench}.threads.json" \
    --benchmark_out_format=json
done

for bench in "${CACHE_BENCHES[@]}"; do
  echo "== ${bench} (cache metrics) =="
  run_bench "${OUT_DIR}/${bench}.cache.json" \
    env SLAT_BENCH_ARTIFACT=0 SLAT_METRICS_OUT="${OUT_DIR}/${bench}.metrics.json" \
    "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_filter='-threads:' \
    --benchmark_out="${OUT_DIR}/${bench}.cache.json" \
    --benchmark_out_format=json
done

# The inclusion comparison runs uncached (both backends pay their full
# construction per query) and dumps the metrics registry for the antichain
# size / pruning counters.
for bench in "${INCLUSION_BENCHES[@]}"; do
  echo "== ${bench} (antichain vs complement) =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_CACHE=0 SLAT_METRICS_OUT="${OUT_DIR}/${bench}.metrics.json" \
    "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

# The scaling tier runs every size (10^4–10^6 for the optimized kernels,
# 10^4–10^5 for the pre-CSR references — see bench_scale.cpp for why the
# references stop there). bench_scale pins caching off internally per
# benchmark; SLAT_CACHE=0 is belt and braces.
for bench in "${SCALE_BENCHES[@]}"; do
  echo "== ${bench} (scaling tier) =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

# The fleet tier runs with repetitions: its acceptance gate compares two
# benchmarks measured minutes apart in a noisy-VM-prone environment, so the
# ratio is taken over per-benchmark MEDIANS, not single shots. The binary's
# artifact (fleet-vs-naive verdict cross-check, SLAT_ASSERT-backed) stays on
# stderr; a crash there aborts the script via run_bench.
for bench in "${FLEET_BENCHES[@]}"; do
  echo "== ${bench} (monitor fleet) =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.1 \
    --benchmark_repetitions=5 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

# The symbolic k-sweep also runs with repetitions: its gate divides two
# benchmarks' medians (symbolic vs explicit to_nba+closure at k = 10), and
# the binary itself asserts bit-identical automata at the gate k BEFORE any
# timing, so a divergence aborts the script here rather than gating on two
# different computations. Caching is pinned off inside every benchmark
# (CacheEnabledScope); SLAT_CACHE=0 is belt and braces. Registration order
# inside the binary puts the symbolic sweep first so its peak_rss_mb rows
# are recorded before the explicit backend raises the process high-water
# mark. SLAT_BENCH_ARTIFACT=0 is load-bearing, not cosmetic: the binary's
# artifact table materializes the explicit automata up to k = 10 BEFORE the
# benchmarks run, which would raise the high-water mark over the symbolic
# rows and void the RSS comparison.
for bench in "${SYMBOLIC_BENCHES[@]}"; do
  echo "== ${bench} (symbolic k-sweep) =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_BENCH_ARTIFACT=0 SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_repetitions=5 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

# The quantitative tier runs once per binary with the artifact ENABLED: the
# artifact is the correctness story (Theorem 10 min identity plus the
# boolean-embedding differential, all SLAT_ASSERT-backed), so a divergence
# aborts the script via run_bench before any number lands in
# BENCH_PR10.json. One run collects both the per-value-function throughput
# benchmarks and the DiscSum thread sweep; caching is pinned off inside
# every benchmark (CacheEnabledScope), SLAT_CACHE=0 is belt and braces.
for bench in "${QUANT_BENCHES[@]}"; do
  echo "== ${bench} (quantitative tier) =="
  run_bench "${OUT_DIR}/${bench}.json" \
    env SLAT_CACHE=0 "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR1.json" "${BENCHES[@]}" <<'PY'
import json
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"context": None, "benchmarks": {}}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    merged["benchmarks"][bench] = [
        {
            "name": run["name"],
            "real_time_ns": run.get("real_time"),
            "cpu_time_ns": run.get("cpu_time"),
            "iterations": run.get("iterations"),
        }
        for run in data.get("benchmarks", [])
        if run.get("run_type", "iteration") == "iteration"
    ]

# Headline numbers: per-size speedup of the bitset kernels over the in-binary
# seed references from bench_kernels.
kernels = {run["name"]: run["real_time_ns"] for run in merged["benchmarks"].get("bench_kernels", [])}
speedups = {}
for name, reference in kernels.items():
    if "_Reference/" not in name:
        continue
    optimized_name = name.replace("_Reference/", "_Bitset/")
    if optimized_name not in kernels:
        optimized_name = name.replace("_Reference/", "_Hashed/")
    optimized = kernels.get(optimized_name)
    if optimized:
        speedups[name.replace("_Reference", "")] = round(reference / optimized, 2)
merged["speedups_vs_seed"] = speedups

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR2.json" "${SWEEP_BENCHES[@]}" <<'PY'
import json
import re
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "real-time speedups are bounded by context.num_cpus on the "
            "measuring host; outputs are bit-identical at every thread count "
            "(see tests/integration/parallel_equivalence_test.cpp)",
    "thread_sweep": {},
    "speedup_vs_1_thread": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.threads.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    # Group "<base>/threads:<T>/real_time" runs by base name, keyed by T.
    by_base = {}
    for run in data.get("benchmarks", []):
        if run.get("run_type", "iteration") != "iteration":
            continue
        match = re.match(r"(.*)/threads:(\d+)(?:/|$)", run["name"])
        if not match:
            continue
        base, threads = match.group(1), int(match.group(2))
        by_base.setdefault(base, {})[threads] = run.get("real_time")
    merged["thread_sweep"][bench] = {
        base: {str(t): times[t] for t in sorted(times)} for base, times in by_base.items()
    }
    for base, times in by_base.items():
        baseline = times.get(1)
        if not baseline:
            continue
        merged["speedup_vs_1_thread"][f"{bench}/{base}"] = {
            str(t): round(baseline / times[t], 2) for t in sorted(times) if times[t]
        }

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, per_thread in sorted(merged["speedup_vs_1_thread"].items()):
    sweep = "  ".join(f"{t}t:{s}x" for t, s in per_thread.items())
    print(f"  {name}: {sweep}")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR3.json" "${CACHE_BENCHES[@]}" <<'PY'
import json
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "note": "per-bench memo-cache hit rates (hits / (hits + misses)) from the "
            "metrics registry dumped via SLAT_METRICS_OUT; cached results are "
            "bit-identical to uncached runs "
            "(see tests/integration/cache_equivalence_test.cpp)",
    "cache_hit_rates": {},
    "cache_counters": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.metrics.json") as f:
        counters = json.load(f).get("counters", {})
    # Counters are "cache.<name>.{hits,misses,evictions}"; group per cache.
    per_cache = {}
    for key, value in counters.items():
        if not key.startswith("cache."):
            continue
        cache, _, field = key[len("cache."):].rpartition(".")
        if field in ("hits", "misses", "evictions"):
            per_cache.setdefault(cache, {})[field] = value
    rates = {}
    for cache, fields in per_cache.items():
        hits = fields.get("hits", 0)
        lookups = hits + fields.get("misses", 0)
        if lookups:
            rates[cache] = round(hits / lookups, 4)
    merged["cache_hit_rates"][bench] = rates
    merged["cache_counters"][bench] = per_cache

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for bench, rates in sorted(merged["cache_hit_rates"].items()):
    for cache, rate in sorted(rates.items()):
        print(f"  {bench}: {cache} hit rate {rate:.2%}")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR4.json" "${INCLUSION_BENCHES[@]}" <<'PY'
import json
import re
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "antichain inclusion engine vs complement-based oracle on the "
            "same query sets, SLAT_CACHE=0 (both backends recompute every "
            "query); verdict/witness agreement is pinned by "
            "tests/integration/inclusion_equivalence_test.cpp",
    "benchmarks": {},
    "speedup_antichain_vs_complement": {},
    "antichain_search_counters": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    runs = {
        run["name"]: run.get("real_time")
        for run in data.get("benchmarks", [])
        if run.get("run_type", "iteration") == "iteration"
    }
    merged["benchmarks"][bench] = {
        name: {"real_time_ns": time} for name, time in sorted(runs.items())
    }
    # Pair bm_..._antichain(/arg) with bm_..._complement(/arg) by suffix.
    for name, antichain_time in runs.items():
        if "_antichain" not in name:
            continue
        oracle_name = name.replace("_antichain", "_complement")
        oracle_time = runs.get(oracle_name)
        if antichain_time and oracle_time:
            key = re.sub(r"^bm_", "", name.replace("_antichain", ""))
            merged["speedup_antichain_vs_complement"][key] = round(
                oracle_time / antichain_time, 2)
    try:
        with open(f"{out_dir}/{bench}.metrics.json") as f:
            counters = json.load(f).get("counters", {})
    except FileNotFoundError:
        counters = {}
    merged["antichain_search_counters"][bench] = {
        key: value for key, value in sorted(counters.items())
        if key.startswith("buchi.inclusion.")
    }

if not merged["speedup_antichain_vs_complement"]:
    print("error: no antichain/complement benchmark pairs found", file=sys.stderr)
    sys.exit(1)

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, s in sorted(merged["speedup_antichain_vs_complement"].items()):
    print(f"  {name}: {s}x vs complement oracle")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR6.json" "${SCALE_BENCHES[@]}" <<'PY'
import json
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "10^4-10^6-state scaling tier: CSR subset construction and "
            "arena/SoA antichain inclusion vs the pre-CSR reference layouts "
            "compiled into the same binary; outputs are asserted "
            "bit-identical by the binary's artifact cross-checks before any "
            "timing runs. items_per_second == input automaton states/sec; "
            "peak_rss_mb is the process high-water mark (optimized "
            "benchmarks run first), rss_growth_mb the growth during the run.",
    "benchmarks": {},
    "speedup_vs_pre_csr": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    runs = {}
    for run in data.get("benchmarks", []):
        if run.get("run_type", "iteration") != "iteration":
            continue
        entry = {"real_time_ns": run.get("real_time"),
                 "cpu_time_ns": run.get("cpu_time"),
                 "iterations": run.get("iterations")}
        for counter in ("items_per_second", "peak_rss_mb", "rss_growth_mb", "det_states"):
            if counter in run:
                entry[counter] = run[counter]
        runs[run["name"]] = entry
    merged["benchmarks"][bench] = dict(sorted(runs.items()))
    for name, entry in runs.items():
        if "_Reference/" not in name:
            continue
        optimized = runs.get(name.replace("_Reference/", "/"))
        if optimized and optimized["real_time_ns"]:
            merged["speedup_vs_pre_csr"][name.replace("_Reference", "")] = round(
                entry["real_time_ns"] / optimized["real_time_ns"], 2)

# The PR6 acceptance gate, checked at the 10^5-state tier: >=3x on subset
# construction (both input families) and >=2x on the inclusion stem search
# (the rem/fga family; the oblivious-rhs workload is an auxiliary
# near-parity check, not gated).
gates = []
for name, ratio in sorted(merged["speedup_vs_pre_csr"].items()):
    if not name.endswith("/100000"):
        continue
    if "SubsetConstruction" in name:
        gates.append((name, ratio, 3.0))
    elif "InclusionStem_RemFga" in name:
        gates.append((name, ratio, 2.0))
merged["gate_10e5_tier"] = {
    name: {"speedup": ratio, "required": need, "pass": ratio >= need}
    for name, ratio, need in gates
}
if len(gates) < 3 or any(ratio < need for _, ratio, need in gates):
    print("error: PR6 scaling gate failed:", file=sys.stderr)
    for name, ratio, need in gates:
        print(f"  {name}: {ratio}x (need >= {need}x)", file=sys.stderr)
    sys.exit(1)

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, s in sorted(merged["speedup_vs_pre_csr"].items()):
    print(f"  {name}: {s}x vs pre-CSR layout")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR8.json" "${FLEET_BENCHES[@]}" <<'PY'
import json
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "streaming monitor fleet (DESIGN.md §8): batched "
            "MonitorFleet::ingest vs the pre-fleet one-SafetyMonitor-per-"
            "session baseline on identical seeded zipf/bursty traffic "
            "(1% out-of-alphabet). items_per_second == monitor events/sec; "
            "peak_rss_mb is the process high-water mark (fleet benchmarks "
            "run first, so their readings exclude the baseline's per-session "
            "objects). Verdict agreement is asserted by the binary's "
            "artifact before any timing run and pinned by the qc property "
            "monitor.fleet_batch_scalar. The gate ratio uses per-benchmark "
            "medians over 5 repetitions (the two sides are measured minutes "
            "apart, so single shots would gate on scheduler noise).",
    "benchmarks": {},
    "median_events_per_sec": {},
    "speedup_fleet_vs_naive": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    runs = {}
    for run in data.get("benchmarks", []):
        if run.get("run_type", "iteration") == "iteration":
            entry = {"real_time_ns": run.get("real_time"),
                     "cpu_time_ns": run.get("cpu_time"),
                     "iterations": run.get("iterations")}
            for counter in ("items_per_second", "peak_rss_mb", "rss_growth_mb",
                            "sessions", "violated_sessions"):
                if counter in run:
                    entry[counter] = run[counter]
            runs.setdefault(run["name"], []).append(entry)
        elif run.get("aggregate_name") == "median":
            base = run["name"].removesuffix("_median")
            if "items_per_second" in run:
                merged["median_events_per_sec"][base] = run["items_per_second"]
    merged["benchmarks"][bench] = dict(sorted(runs.items()))

medians = merged["median_events_per_sec"]
for tier in ("10000", "100000"):
    fleet = medians.get(f"BM_FleetIngest/{tier}/real_time")
    naive = medians.get(f"BM_NaiveIngest_Reference/{tier}")
    if fleet and naive:
        merged["speedup_fleet_vs_naive"][f"sessions_{tier}"] = round(fleet / naive, 2)

# The PR8 acceptance gate: at the 10^5-session tier, batched fleet ingest
# must clear 3x the one-monitor-per-session baseline (median over reps).
ratio = merged["speedup_fleet_vs_naive"].get("sessions_100000")
merged["gate_10e5_tier"] = {
    "fleet_vs_naive_events_per_sec": {
        "speedup": ratio, "required": 3.0,
        "pass": ratio is not None and ratio >= 3.0,
    }
}
if ratio is None or ratio < 3.0:
    print("error: PR8 fleet gate failed:", file=sys.stderr)
    print(f"  BM_FleetIngest/100000 vs BM_NaiveIngest_Reference/100000: "
          f"{ratio}x (need >= 3.0x)", file=sys.stderr)
    sys.exit(1)

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, eps in sorted(medians.items()):
    print(f"  {name}: {eps / 1e6:.1f}M events/s (median)")
for tier, s in sorted(merged["speedup_fleet_vs_naive"].items()):
    print(f"  {tier}: fleet {s}x vs one-monitor-per-session baseline")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR9.json" "${SYMBOLIC_BENCHES[@]}" <<'PY'
import json
import re
import statistics
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "symbolic cube-alphabet backend (DESIGN.md §9): hash-consed cube "
            "edge labels through to_nba + safety_closure, swept over k "
            "(alphabet = 2^k letters) on the fixed fairness conjunction "
            "AND_{i<6} G F p_i, vs the explicit per-letter pipeline. The "
            "explicit backend materializes Theta(edges * 2^(k-6)) "
            "transitions; the symbolic edge/label counts are flat in k and "
            "the k = 16 run never expands a letter (asserted in-binary). "
            "Bit-identity at the gate k is asserted by the binary BEFORE any "
            "timing (buchi::fingerprint of automaton and closure) and pinned "
            "by the qc property symbolic.explicit_agreement plus the "
            "symbolic-smoke ctest tier. peak_rss_mb is the process "
            "high-water mark; the symbolic sweep is registered first so its "
            "rows predate the explicit backend's allocations. The gate "
            "ratios use per-benchmark MEDIANS over 5 repetitions.",
    "benchmarks": {},
    "median_by_k": {},
    "speedup_symbolic_vs_explicit": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    runs = {}
    for run in data.get("benchmarks", []):
        if run.get("run_type", "iteration") != "iteration":
            continue
        # real_time/cpu_time are in the benchmark's declared unit (ms here);
        # time_unit rides along so nothing downstream assumes ns.
        entry = {"real_time": run.get("real_time"),
                 "cpu_time": run.get("cpu_time"),
                 "time_unit": run.get("time_unit"),
                 "iterations": run.get("iterations")}
        for counter in ("peak_rss_mb", "rss_growth_mb", "closure_states",
                        "closure_edges", "closure_transitions", "store_labels",
                        "expanded_letters", "letters"):
            if counter in run:
                entry[counter] = run[counter]
        runs.setdefault(run["name"], []).append(entry)
    merged["benchmarks"][bench] = dict(sorted(runs.items()))

# Per-(benchmark, k) medians over the repetitions. Counters are identical
# across reps by construction (same input); the median keeps them verbatim.
runs = merged["benchmarks"].get("bench_symbolic", {})
for name, reps in runs.items():
    match = re.match(r"(BM_\w+)/(\d+)$", name)
    if not match:
        continue
    base, k = match.group(1), match.group(2)
    entry = {"real_time": statistics.median(r["real_time"] for r in reps),
             "time_unit": reps[0]["time_unit"]}
    for counter in ("peak_rss_mb", "rss_growth_mb", "closure_states",
                    "closure_edges", "closure_transitions", "store_labels",
                    "expanded_letters", "letters"):
        if counter in reps[0]:
            entry[counter] = statistics.median(r[counter] for r in reps)
    merged["median_by_k"].setdefault(base, {})[k] = entry

by_k = merged["median_by_k"]
for pair, key in ((("BM_ExplicitToNbaClosure", "BM_SymbolicToNbaClosure"),
                   "to_nba_closure"),
                  (("BM_ExplicitInclusion", "BM_SymbolicInclusion"),
                   "inclusion")):
    explicit, symbolic = (by_k.get(pair[0], {}), by_k.get(pair[1], {}))
    for k in sorted(set(explicit) & set(symbolic), key=int):
        merged["speedup_symbolic_vs_explicit"][f"{key}/k{k}"] = {
            "time": round(explicit[k]["real_time"] /
                          symbolic[k]["real_time"], 2),
            "peak_rss": round(explicit[k]["peak_rss_mb"] /
                              symbolic[k]["peak_rss_mb"], 2)
            if explicit[k].get("peak_rss_mb") and symbolic[k].get("peak_rss_mb")
            else None,
        }

# The PR9 acceptance gate: at k = 10 (the largest alphabet the explicit
# backend still finishes), the symbolic to_nba+closure pipeline must clear
# 10x on median time AND 10x on median peak RSS — and the symbolic k = 16
# row must exist with expanded_letters == 0 (the run completed without ever
# materializing a letter; the binary also SLAT_ASSERTs this).
gate_pair = merged["speedup_symbolic_vs_explicit"].get("to_nba_closure/k10", {})
k16 = by_k.get("BM_SymbolicToNbaClosure", {}).get("16")
merged["gate_k10_tier"] = {
    "time_speedup": {"speedup": gate_pair.get("time"), "required": 10.0,
                     "pass": (gate_pair.get("time") or 0) >= 10.0},
    "peak_rss_reduction": {"reduction": gate_pair.get("peak_rss"),
                           "required": 10.0,
                           "pass": (gate_pair.get("peak_rss") or 0) >= 10.0},
    "k16_letter_free": {
        "expanded_letters": None if k16 is None else k16.get("expanded_letters"),
        "pass": k16 is not None and k16.get("expanded_letters") == 0,
    },
}
if not all(check["pass"] for check in merged["gate_k10_tier"].values()):
    print("error: PR9 symbolic-alphabet gate failed:", file=sys.stderr)
    for name, check in merged["gate_k10_tier"].items():
        print(f"  {name}: {check}", file=sys.stderr)
    sys.exit(1)

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, ratios in sorted(merged["speedup_symbolic_vs_explicit"].items()):
    rss = f", {ratios['peak_rss']}x peak RSS" if ratios.get("peak_rss") else ""
    print(f"  {name}: {ratios['time']}x time{rss} vs explicit letters")
PY

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR10.json" "${QUANT_BENCHES[@]}" <<'PY'
import json
import re
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {
    "context": None,
    "note": "quantitative safety/liveness tier (HMS Thm. 10): "
            "per-value-function Phi/Phi* product-evaluation throughput "
            "(items_per_second == word evaluations/s on the 80-word "
            "enumeration corpus), the boolean-embedding differential "
            "(quantitative == qualitative asserted inside the timed loop), "
            "and the DiscSum Jacobi value-iteration thread sweep on a "
            "50000-state sparse automaton. The binary SLAT_ASSERTs the min "
            "identity and the embedding agreement BEFORE any timing; "
            "real-time sweep speedups are bounded by context.num_cpus on "
            "the measuring host, and "
            "bit-identity across thread counts is pinned by "
            "tests/integration/quant_equivalence_test.cpp and the qc "
            "property quant.embed.boolean_agreement.",
    "benchmarks": {},
    "words_per_sec_by_value_fn": {},
    "thread_sweep": {},
    "speedup_vs_1_thread": {},
}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    runs = {}
    for run in data.get("benchmarks", []):
        if run.get("run_type", "iteration") != "iteration":
            continue
        # real_time/cpu_time are in the benchmark's declared unit (ms here);
        # time_unit rides along so nothing downstream assumes ns.
        entry = {"real_time": run.get("real_time"),
                 "cpu_time": run.get("cpu_time"),
                 "time_unit": run.get("time_unit"),
                 "iterations": run.get("iterations")}
        if "items_per_second" in run:
            entry["items_per_second"] = run["items_per_second"]
        if run.get("label"):
            entry["value_fn"] = run["label"]
        runs[run["name"]] = entry
    merged["benchmarks"][bench] = dict(sorted(runs.items()))
    # Per-value-function throughput, keyed by the benchmark's label.
    for name, entry in runs.items():
        match = re.match(r"BM_Quant(Value|Closure)/\d+$", name)
        if match and "value_fn" in entry and "items_per_second" in entry:
            kind = "value" if match.group(1) == "Value" else "closure"
            merged["words_per_sec_by_value_fn"].setdefault(kind, {})[
                entry["value_fn"]] = round(entry["items_per_second"], 1)
    # The DiscSum value-iteration sweep, grouped by thread count.
    times = {}
    for name, entry in runs.items():
        match = re.match(r"(BM_\w+)/threads:(\d+)(?:/|$)", name)
        if match:
            times.setdefault(match.group(1), {})[int(match.group(2))] = entry[
                "real_time"]
    for base, by_threads in times.items():
        merged["thread_sweep"][base] = {
            str(t): by_threads[t] for t in sorted(by_threads)
        }
        baseline = by_threads.get(1)
        if baseline:
            merged["speedup_vs_1_thread"][base] = {
                str(t): round(baseline / by_threads[t], 2)
                for t in sorted(by_threads) if by_threads[t]
            }

if not merged["words_per_sec_by_value_fn"]:
    print("error: no per-value-function quant benchmarks found", file=sys.stderr)
    sys.exit(1)

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for kind, by_fn in sorted(merged["words_per_sec_by_value_fn"].items()):
    for fn, rate in sorted(by_fn.items()):
        print(f"  {kind}/{fn}: {rate / 1e3:.1f}k words/s")
for base, per_thread in sorted(merged["speedup_vs_1_thread"].items()):
    sweep = "  ".join(f"{t}t:{s}x" for t, s in per_thread.items())
    print(f"  {base}: {sweep}")
PY

# Provenance: stamp every aggregate written above with the commit, compiler,
# and CPU that produced it, so numbers checked into the repo are auditable.
COMMIT="$(git -C "${REPO_ROOT}" rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git -C "${REPO_ROOT}" diff --quiet HEAD 2>/dev/null; then
  COMMIT="${COMMIT}-dirty"
fi
CXX_BIN="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "${BUILD_DIR}/CMakeCache.txt" | head -1)"
COMPILER="$("${CXX_BIN:-c++}" --version 2>/dev/null | head -1 || echo unknown)"
CPU_MODEL="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null | head -1)"
NATIVE="$(sed -n 's/^SLAT_NATIVE:BOOL=//p' "${BUILD_DIR}/CMakeCache.txt" | head -1)"
python3 - "${REPO_ROOT}" "${COMMIT}" "${COMPILER}" "${CPU_MODEL:-unknown}" \
  "${NATIVE:-OFF}" <<'PY'
import glob
import json
import sys

repo_root, commit, compiler, cpu_model, native = sys.argv[1:6]
for path in sorted(glob.glob(f"{repo_root}/BENCH_PR*.json")):
    with open(path) as f:
        data = json.load(f)
    data["provenance"] = {
        "commit": commit,
        "compiler": compiler,
        "cpu_model": cpu_model,
        "march_native": native == "ON",
    }
    with open(path, "w") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"stamped {path} @ {commit}")
PY
