#!/usr/bin/env bash
# Run the kernel-relevant benchmark binaries with JSON output and aggregate
# the results into BENCH_PR1.json at the repo root.
#
# Usage: scripts/run_benches.sh [build-dir]
#
# Each binary prints its human-readable artifact to stdout (kept visible) and
# writes google-benchmark JSON to a per-binary file via --benchmark_out; the
# aggregation step merges those files. We avoid --benchmark_format=json
# because the artifact tables would corrupt the JSON stream.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build}"
OUT_DIR="${BUILD_DIR}/bench_json"
BENCHES=(bench_kernels bench_complementation bench_reduction bench_buchi_decomposition)

if [[ ! -d "${BUILD_DIR}" ]]; then
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"
fi
cmake --build "${BUILD_DIR}" -j --target "${BENCHES[@]}"

mkdir -p "${OUT_DIR}"
for bench in "${BENCHES[@]}"; do
  echo "== ${bench} =="
  "${BUILD_DIR}/bench/${bench}" \
    --benchmark_min_time=0.05 \
    --benchmark_out="${OUT_DIR}/${bench}.json" \
    --benchmark_out_format=json
done

python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_PR1.json" "${BENCHES[@]}" <<'PY'
import json
import sys

out_dir, target, benches = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = {"context": None, "benchmarks": {}}
for bench in benches:
    with open(f"{out_dir}/{bench}.json") as f:
        data = json.load(f)
    if merged["context"] is None:
        context = data.get("context", {})
        merged["context"] = {
            key: context.get(key)
            for key in ("date", "host_name", "num_cpus", "mhz_per_cpu", "library_build_type")
        }
    merged["benchmarks"][bench] = [
        {
            "name": run["name"],
            "real_time_ns": run.get("real_time"),
            "cpu_time_ns": run.get("cpu_time"),
            "iterations": run.get("iterations"),
        }
        for run in data.get("benchmarks", [])
        if run.get("run_type", "iteration") == "iteration"
    ]

# Headline numbers: per-size speedup of the bitset kernels over the in-binary
# seed references from bench_kernels.
kernels = {run["name"]: run["real_time_ns"] for run in merged["benchmarks"].get("bench_kernels", [])}
speedups = {}
for name, reference in kernels.items():
    if "_Reference/" not in name:
        continue
    optimized_name = name.replace("_Reference/", "_Bitset/")
    if optimized_name not in kernels:
        optimized_name = name.replace("_Reference/", "_Hashed/")
    optimized = kernels.get(optimized_name)
    if optimized:
        speedups[name.replace("_Reference", "")] = round(reference / optimized, 2)
merged["speedups_vs_seed"] = speedups

with open(target, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {target}")
for name, s in sorted(speedups.items()):
    print(f"  {name}: {s}x")
PY
