#!/usr/bin/env bash
# Build with -DSLAT_COVERAGE=ON, run the test suite, and print a per-file
# line-coverage summary for src/.
#
# Usage: scripts/coverage.sh [build-dir] [extra ctest args...]
#
# The default build dir is build-coverage/ so an instrumented tree never
# mixes with the regular build/. Toolchains:
#   - gcc:   --coverage instrumentation; the summary is aggregated from
#            gcov's per-file output over every .gcda the tests produced.
#   - clang: -fprofile-instr-generate; profiles are merged with
#            llvm-profdata and reported with llvm-cov (if both are on PATH).
# gcovr/lcov are used when available but are not required — the fallback
# only needs the compiler's own gcov/llvm-cov.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-${REPO_ROOT}/build-coverage}"
shift || true

cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" \
  -DCMAKE_BUILD_TYPE=Debug -DSLAT_COVERAGE=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)"

# Stale counters from a previous run would inflate the numbers.
find "${BUILD_DIR}" -name '*.gcda' -delete 2>/dev/null || true
rm -rf "${BUILD_DIR}/profraw"

if [[ -n "$(find "${BUILD_DIR}" -name '*.profraw' -print -quit 2>/dev/null)" ]]; then
  find "${BUILD_DIR}" -name '*.profraw' -delete
fi

# Clang's runtime writes one profile per process when %p is in the pattern.
export LLVM_PROFILE_FILE="${BUILD_DIR}/profraw/%p.profraw"
mkdir -p "${BUILD_DIR}/profraw"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j"$(nproc)" "$@"

if compgen -G "${BUILD_DIR}/profraw/*.profraw" > /dev/null; then
  # Clang source-based coverage.
  llvm-profdata merge -sparse "${BUILD_DIR}"/profraw/*.profraw \
    -o "${BUILD_DIR}/coverage.profdata"
  BINARIES=()
  for b in "${BUILD_DIR}"/tests/* "${BUILD_DIR}"/src/qc/fuzz_slat; do
    [[ -x "$b" && -f "$b" ]] && BINARIES+=(-object "$b")
  done
  llvm-cov report "${BINARIES[@]}" \
    -instr-profile "${BUILD_DIR}/coverage.profdata" \
    -ignore-filename-regex='tests/|/usr/'
elif command -v gcovr > /dev/null; then
  gcovr --root "${REPO_ROOT}" --filter "${REPO_ROOT}/src/" "${BUILD_DIR}"
else
  # Plain-gcov fallback: run gcov over every counter file and aggregate the
  # per-source percentages it prints.
  cd "${BUILD_DIR}"
  find . -name '*.gcda' | xargs -r gcov -r -s "${REPO_ROOT}" 2>/dev/null \
    | awk -v root="${REPO_ROOT}/" '
        /^File / { file = $2; gsub(/'\''/, "", file); sub(root, "", file) }
        /^Lines executed:/ {
          split($0, parts, /[:% ]+/)
          if (file ~ /^src\//) printf "%7.2f%%  %s\n", parts[3], file
          file = ""
        }' \
    | sort -u -k2 | sort -rn
  echo "(per-file line coverage from gcov; install gcovr for totals)"
fi
