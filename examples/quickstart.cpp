// Quickstart: the library in one file.
//
// Parse an LTL specification, translate it to a Büchi automaton, classify
// it (safety / liveness / neither), decompose it into its safety and
// liveness parts (Theorem 2 on the lattice of ω-regular languages), and
// check some words against all three automata.
//
//   $ ./quickstart            # uses the default spec "a & F !a" (Rem's p3)
//   $ ./quickstart "G (a -> F b)"
#include <cstdio>
#include <string>

#include "buchi/safety.hpp"
#include "ltl/eval.hpp"
#include "ltl/translate.hpp"

int main(int argc, char** argv) {
  using namespace slat;

  const std::string spec_text = argc > 1 ? argv[1] : "a & F !a";
  ltl::LtlArena arena(words::Alphabet::binary());

  ltl::LtlArena::ParseError error{"", 0};
  const auto spec = arena.parse(spec_text, &error);
  if (!spec) {
    std::fprintf(stderr, "parse error at offset %zu: %s\n", error.position,
                 error.message.c_str());
    return 1;
  }
  std::printf("specification: %s\n", arena.to_string(*spec).c_str());

  // 1. LTL -> Büchi.
  ltl::TranslationStats stats;
  const buchi::Nba nba = ltl::to_nba(arena, *spec, &stats);
  std::printf("Büchi automaton: %d states, %d transitions (tableau: %d nodes)\n",
              stats.nba_states, stats.nba_transitions, stats.tableau_nodes);

  // 2. Classification per Alpern–Schneider / the paper's §2.
  std::printf("classification: %s\n", buchi::to_string(buchi::classify(nba)));

  // 3. Decomposition: spec = safety ∩ liveness.
  const buchi::BuchiDecomposition parts = buchi::decompose(nba);
  std::printf("decomposition: safety part %d states, liveness part %d states\n",
              parts.safety.num_states(), parts.liveness.num_states());

  // 4. Evaluate a few words against the pieces.
  std::printf("\n%-12s %6s %8s %10s %14s\n", "word", "spec", "safety", "liveness",
              "safety∧live");
  for (const auto& w : {words::UpWord::constant(0), words::UpWord::constant(1),
                        words::UpWord({0}, {1}), words::UpWord({}, {0, 1}),
                        words::UpWord({1, 0}, {0})}) {
    const bool in_spec = nba.accepts(w);
    const bool in_safety = parts.safety.accepts(w);
    const bool in_live = parts.liveness.accepts(w);
    std::printf("%-12s %6s %8s %10s %14s%s\n", w.to_string(arena.alphabet()).c_str(),
                in_spec ? "yes" : "no", in_safety ? "yes" : "no",
                in_live ? "yes" : "no", (in_safety && in_live) ? "yes" : "no",
                in_spec == (in_safety && in_live) ? "" : "   <-- BUG");
    // The evaluator agrees with the automaton (differential sanity).
    if (ltl::holds(arena, *spec, w) != in_spec) {
      std::printf("  !! evaluator and automaton disagree\n");
      return 1;
    }
  }
  std::printf("\nThe safety column equals lcl(spec); the decomposition identity\n"
              "spec = safety ∩ liveness holds on every word (Theorem 1 / Theorem 2).\n");
  return 0;
}
