// Lattice explorer: build the paper's lattices, print their Hasse diagrams
// (text + Graphviz DOT), check the §3 hypotheses, and walk through the two
// counterexample figures interactively enough to read in one sitting.
//
//   $ ./lattice_explorer           # tour of N5, M3/Figure 2, B_3, GF(2)^3
//   $ ./lattice_explorer --dot     # also dump DOT for the figures
#include <cstdio>
#include <cstring>

#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/render.hpp"

namespace {

using namespace slat::lattice;

void describe(const char* name, const FiniteLattice& lattice,
              const std::vector<std::string>& labels, bool dot) {
  std::printf("---- %s (%d elements) ----\n%s", name, lattice.size(),
              to_text(lattice, labels).c_str());
  std::printf("modular: %-3s  distributive: %-3s  complemented: %-3s  boolean: %s\n",
              lattice.is_modular() ? "yes" : "no",
              lattice.is_distributive() ? "yes" : "no",
              lattice.is_complemented() ? "yes" : "no",
              lattice.is_boolean() ? "yes" : "no");
  if (const auto w = lattice.modularity_counterexample()) {
    std::printf("modularity fails at (a=%d, b=%d, c=%d)\n", (*w)[0], (*w)[1], (*w)[2]);
  }
  if (const auto w = lattice.distributivity_counterexample()) {
    std::printf("distributivity fails at (a=%d, b=%d, c=%d)\n", (*w)[0], (*w)[1],
                (*w)[2]);
  }
  if (dot) std::printf("DOT:\n%s", to_dot(lattice, labels).c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  std::printf("== The paper's Figure 1: N5, where decomposition fails ==\n\n");
  const FiniteLattice pentagon = n5();
  describe("N5 (Figure 1)", pentagon, {"0", "a", "b", "c", "1"}, dot);
  {
    using E = N5Elems;
    const auto cl = LatticeClosure::from_map(
        pentagon, {E::bottom, E::b, E::b, E::c, E::top});
    std::printf("closure: cl(a) = b, identity elsewhere\n");
    std::printf("safety elements: {");
    for (Elem x : cl->closed_elements()) std::printf(" %d", x);
    std::printf(" }   liveness elements: {");
    for (Elem x : cl->liveness_elements()) std::printf(" %d", x);
    std::printf(" }\n");
    const auto d = find_any_decomposition(pentagon, *cl, *cl, E::a);
    std::printf("element a = safety ∧ liveness? %s (Lemma 6: impossible without "
                "modularity)\n\n",
                d ? "yes!?" : "no");
  }

  std::printf("== The paper's Figure 2: M3, where Theorem 7 fails ==\n\n");
  const FiniteLattice diamond = fig2();
  describe("M3 (Figure 2)", diamond, {"a", "s", "b", "z", "1"}, dot);
  {
    using E = Fig2Elems;
    const auto cl = LatticeClosure::from_map(
        diamond, {E::s, E::s, E::top, E::top, E::top});
    const auto violation = verify_theorem7(diamond, *cl, *cl);
    if (violation) {
      std::printf("Theorem 7 violation: a=%d decomposes as s=%d ∧ z=%d, but with "
                  "b=%d ∈ cmp(cl.a),\n  z ≤ a ∨ b FAILS — the liveness part is "
                  "not extremal without distributivity.\n\n",
                  (*violation)[0], (*violation)[1], (*violation)[2], (*violation)[3]);
    }
    // Theorem 3 still applies (M3 is modular + complemented).
    const auto d = decompose(diamond, *cl, E::z);
    std::printf("Theorem 3 decomposition of z: safety = %d, liveness = %d, "
                "meet = %d (= z)\n\n",
                d->safety, d->liveness, diamond.meet(d->safety, d->liveness));
  }

  std::printf("== Boolean algebra B_3 (the classical Alpern–Schneider setting) ==\n\n");
  describe("B_3", boolean_lattice(3), {}, dot);

  std::printf("== Subspaces of GF(2)^3: modular + complemented, NOT distributive ==\n");
  std::printf("   (the paper's exact §3 setting, beyond Boolean algebras)\n\n");
  describe("GF(2)^3", subspace_lattice_gf2(3), {}, dot);
  return 0;
}
