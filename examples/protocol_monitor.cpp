// Decomposing a protocol specification into its monitorable core and its
// liveness residue.
//
// A toy request/response protocol over events {req, rsp, idle}:
//   * safety-ish rules: no response without a pending request, no double
//     request while one is pending;
//   * liveness rule: every request is eventually answered.
// The combined specification is NEITHER safety nor liveness. The Theorem 2
// decomposition splits it into the strongest monitorable safety part
// (machine closure, Theorem 6) and the weakest liveness residue (Theorem 7),
// and the safety part drives a runtime monitor.
//
//   $ ./protocol_monitor
#include <cstdio>
#include <vector>

#include "buchi/safety.hpp"
#include "ltl/translate.hpp"
#include "monitor/monitor.hpp"

int main() {
  using namespace slat;

  words::Alphabet alphabet({"req", "rsp", "idle"});
  ltl::LtlArena arena(alphabet);

  // Pending-request discipline, expressed without past operators by keying
  // on the event order: after a req, no further req until a rsp; a rsp only
  // directly after a pending req phase. We approximate "pending" with the
  // strict alternation req ... rsp and require progress.
  const auto spec = *arena.parse(
      "G (req -> X ((!req U rsp) | G !req))"   // no double request
      " & G (req -> F rsp)"                     // every request answered
      " & ((!rsp U req) | G !rsp)");            // no unsolicited response
  std::printf("specification:\n  %s\n\n", arena.to_string(spec).c_str());

  const buchi::Nba nba = ltl::to_nba(arena, spec);
  // The automaton is too large for exact (complementation-based)
  // classification; the sampled classifier decides liveness exactly and
  // checks safety against a UP-word corpus.
  const auto corpus = words::enumerate_up_words(alphabet.size(), 3, 3);
  std::printf("as a Büchi automaton: %d states — classification: %s\n",
              nba.num_states(),
              buchi::to_string(buchi::classify_sampled(nba, corpus)));

  const buchi::BuchiDecomposition parts = buchi::decompose(nba);
  std::printf("decomposed: safety part %d states (%s), liveness part %d states (%s)\n\n",
              parts.safety.num_states(),
              buchi::to_string(buchi::classify_sampled(parts.safety, corpus)),
              parts.liveness.num_states(),
              buchi::to_string(buchi::classify_sampled(parts.liveness, corpus)));

  monitor::SafetyMonitor safety_monitor = monitor::SafetyMonitor::from_nba(nba);
  std::printf("runtime monitor (from the spec's closure): %d states, vacuous: %s\n\n",
              safety_monitor.automaton().num_states(),
              safety_monitor.is_vacuous() ? "yes" : "no");

  const auto sym = [&](const char* name) { return *alphabet.index_of(name); };
  const std::vector<std::pair<const char*, words::Word>> traces = {
      {"req rsp req rsp", {sym("req"), sym("rsp"), sym("req"), sym("rsp")}},
      {"req req", {sym("req"), sym("req")}},
      {"rsp", {sym("rsp")}},
      {"idle req idle rsp", {sym("idle"), sym("req"), sym("idle"), sym("rsp")}},
      {"req idle idle idle", {sym("req"), sym("idle"), sym("idle"), sym("idle")}},
  };
  std::printf("monitoring traces:\n");
  for (const auto& [label, trace] : traces) {
    const auto violation = safety_monitor.run(trace);
    if (violation) {
      std::printf("  [%-18s] SAFETY VIOLATION at event %zu ('%s')\n", label,
                  *violation, alphabet.name(trace[*violation]).c_str());
    } else {
      std::printf("  [%-18s] safe so far%s\n", label,
                  label == std::string("req idle idle idle")
                      ? "  (the pending F rsp is liveness: never refutable)"
                      : "");
    }
  }

  std::printf("\nTheorem 6 says this monitor is the STRONGEST safety property implied\n"
              "by the spec — no runtime monitor can catch more without false alarms.\n");
  return 0;
}
