// A guided tour of the paper with this library — every section's main
// object gets built, checked, and printed, in paper order.
//
//   $ ./paper_tour
#include <cstdio>

#include "buchi/safety.hpp"
#include "core/concepts.hpp"
#include "core/instances.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/render.hpp"
#include "ltl/rem.hpp"
#include "ltl/translate.hpp"
#include "rabin/from_ctl.hpp"
#include "trees/closures.hpp"
#include "trees/rem_branching.hpp"

namespace {

void section(const char* title) {
  std::printf("\n========== %s ==========\n\n", title);
}

}  // namespace

int main() {
  using namespace slat;

  section("§2  Linear time: Alpern–Schneider via lcl");
  {
    ltl::LtlArena arena(words::Alphabet::binary());
    std::printf("Rem's examples, classified through LTL -> Büchi -> closure:\n");
    for (const auto& example : ltl::rem_examples()) {
      const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(example.formula));
      std::printf("  %-3s %-9s -> %-16s (%s)\n", example.name.c_str(),
                  example.formula.c_str(), buchi::to_string(buchi::classify(nba)),
                  example.description.c_str());
    }
    const buchi::Nba p3 = ltl::to_nba(arena, *arena.parse("a & F !a"));
    const buchi::BuchiDecomposition d = buchi::decompose(p3);
    std::printf("\nTheorem 1 on p3: safety part %d states, liveness part %d states,\n"
                "machine closed: %s\n",
                d.safety.num_states(), d.liveness.num_states(),
                buchi::is_machine_closed(d.safety, d.liveness) ? "yes" : "no");
  }

  section("§3  The lattice-theoretic characterization");
  {
    using namespace lattice;
    const FiniteLattice pentagon = n5();
    std::printf("Figure 1 (N5):\n%s", to_text(pentagon, {"0", "a", "b", "c", "1"}).c_str());
    const auto cl = LatticeClosure::from_map(
        pentagon, {N5Elems::bottom, N5Elems::b, N5Elems::b, N5Elems::c, N5Elems::top});
    std::printf("Lemma 6: 'a' decomposable here? %s (N5 is not modular)\n",
                find_any_decomposition(pentagon, *cl, *cl, N5Elems::a) ? "yes" : "no");

    const FiniteLattice diamond = fig2();
    const auto cl2 = LatticeClosure::from_map(
        diamond, {Fig2Elems::s, Fig2Elems::s, Fig2Elems::top, Fig2Elems::top,
                  Fig2Elems::top});
    std::printf("Figure 2 (M3): Theorem 7 violated? %s (modular but not distributive)\n",
                verify_theorem7(diamond, *cl2, *cl2) ? "yes" : "no");

    const FiniteLattice gf2 = subspace_lattice_gf2(3);
    std::printf("GF(2)^3 subspaces: %d elements, modular %s, distributive %s — the\n"
                "paper's setting strictly beyond Boolean algebras; Theorem 3 holds:\n",
                gf2.size(), gf2.is_modular() ? "yes" : "no",
                gf2.is_distributive() ? "yes" : "no");
    const LatticeClosure id = LatticeClosure::identity(gf2);
    std::printf("  verify_theorem3(identity closure): %s\n",
                verify_theorem3(gf2, id, id) ? "FAILED" : "ok");
  }

  section("§3  The same theorem, generically, on ω-regular languages");
  {
    ltl::LtlArena arena(words::Alphabet::binary());
    const core::SampledOmegaRegularOps ops(words::Alphabet::binary(),
                                           words::enumerate_up_words(2, 3, 3));
    const buchi::Nba spec = ltl::to_nba(arena, *arena.parse("a U b"));
    const auto d = core::decompose(ops, core::LclClosureFn{}, spec);
    std::printf("decompose(a U b) via the generic Theorem 2 template: valid: %s\n",
                core::decomposition_valid(ops, core::LclClosureFn{},
                                          core::LclClosureFn{}, spec, d)
                    ? "yes"
                    : "no");
  }

  section("§4  Branching time: trees, ncl/fcl, CTL, Rabin automata");
  {
    auto corpus = trees::total_tree_corpus(words::Alphabet::binary(), 2, 2);
    for (trees::KTree& w : trees::paper_witness_trees()) corpus.push_back(std::move(w));
    std::printf("Rem's branching examples on %zu regular trees (ES/US/EL/UL):\n",
                corpus.size());
    for (const auto& example : trees::rem_branching_examples()) {
      const auto got = trees::classify(example.property, corpus, 2);
      std::printf("  %-4s %d%d%d%d  %s\n", example.name.c_str(),
                  got.existentially_safe, got.universally_safe,
                  got.existentially_live, got.universally_live,
                  example.description.c_str());
    }

    const auto is_binary = [](const trees::KTree& t) {
      const auto reach = t.reachable();
      for (int v = 0; v < t.num_nodes(); ++v) {
        if (reach[v] && t.children(v).size() != 2) return false;
      }
      return true;
    };
    trees::CtlArena ctl(words::Alphabet::binary());
    const rabin::RabinTreeAutomaton q3a =
        rabin::from_ctl(ctl, *ctl.parse("a & AF !a"), 2);
    const rabin::RabinTreeAutomaton closure = rabin::rfcl(q3a);
    const rabin::RabinTreeAutomaton q1 = rabin::from_ctl(ctl, *ctl.parse("a"), 2);
    bool matches = true;
    for (const trees::KTree& t : corpus) {
      if (!is_binary(t)) continue;  // k = 2 automata
      if (closure.accepts(t) != q1.accepts(t)) matches = false;
    }
    std::printf("\n§4.3's closure identity with machine-generated automata:\n"
                "  rfcl(from_ctl(q3a)) = from_ctl(q1) on the binary corpus: %s\n",
                matches ? "yes" : "NO");

    const rabin::RabinDecomposition d = rabin::decompose(q3a);
    std::printf("Theorem 9 on from_ctl(q3a): safety part %d states; decomposition\n"
                "identity holds on the corpus: ",
                d.safety.num_states());
    bool identity = true;
    for (const trees::KTree& t : corpus) {
      if (!is_binary(t)) continue;
      if (q3a.accepts(t) != (d.safety.accepts(t) && d.liveness_contains(t))) {
        identity = false;
      }
    }
    std::printf("%s\n", identity ? "yes" : "NO");
  }

  std::printf("\n(Every claim printed above is also enforced by the test suite; the\n"
              " bench binaries regenerate the full tables with timings.)\n");
  return 0;
}
