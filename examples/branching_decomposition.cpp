// Branching time end-to-end (paper §4): a Rabin tree automaton, its
// finite-depth closure rfcl, the Theorem 9 decomposition, game-based
// membership of regular trees, and a synthesized witness tree.
//
//   $ ./branching_decomposition
#include <cstdio>

#include "rabin/examples.hpp"
#include "rabin/from_ctl.hpp"
#include "trees/closures.hpp"
#include "trees/ctl.hpp"

int main() {
  using namespace slat;
  using trees::KTree;

  const words::Alphabet alphabet = words::Alphabet::binary();

  // The property AF b — along each path, eventually b — over binary trees.
  const rabin::RabinTreeAutomaton aut = rabin::aut_af_b();
  std::printf("property: AF b (every path eventually hits b), k = 2\n");
  std::printf("%s\n", aut.to_string().c_str());

  // Sample trees.
  const KTree all_a = KTree::constant(alphabet, 0, 2);
  const KTree all_b = KTree::constant(alphabet, 1, 2);
  KTree mixed(alphabet, 2, 0);  // root a, both subtrees all-b
  mixed.set_label(0, 0);
  mixed.set_label(1, 1);
  mixed.add_child(0, 1);
  mixed.add_child(0, 1);
  mixed.add_child(1, 1);
  mixed.add_child(1, 1);

  std::printf("membership (decided by the Rabin game via IAR + Zielonka):\n");
  std::printf("  all-a tree: %s\n", aut.accepts(all_a) ? "in L" : "NOT in L");
  std::printf("  all-b tree: %s\n", aut.accepts(all_b) ? "in L" : "NOT in L");
  std::printf("  a(b,b) tree: %s\n\n", aut.accepts(mixed) ? "in L" : "NOT in L");

  // The closure and decomposition (Theorem 9).
  const rabin::RabinDecomposition parts = rabin::decompose(aut);
  std::printf("rfcl(B): %d states, trivial acceptance — the universally-safe part.\n",
              parts.safety.num_states());
  std::printf("  closure accepts all-a tree: %s (every finite prefix of it still\n"
              "  extends into AF b, so the closure keeps it)\n\n",
              parts.safety.accepts(all_a) ? "yes" : "no");

  std::printf("liveness part (effective union L(B) ∪ ¬L(rfcl B)):\n");
  std::printf("  contains all-a tree: %s\n",
              parts.liveness_contains(all_a) ? "yes" : "no");
  std::printf("  contains all-b tree: %s\n\n",
              parts.liveness_contains(all_b) ? "yes" : "no");

  // Witness synthesis from the emptiness game.
  if (const auto witness = aut.find_accepted_tree()) {
    std::printf("synthesized witness tree in L(B):\n%s", witness->to_string().c_str());
    std::printf("  (check: automaton accepts it: %s)\n\n",
                aut.accepts(*witness) ? "yes" : "no");
  }

  // Bounded semantic closure membership, for comparison with the automaton.
  const trees::TreeProperty property{
      "AF b", [&](const KTree& t) { return aut.accepts(t); },
      [&](const KTree& t) { return aut.accepts_some_extension(t); }};
  std::printf("semantic fcl membership (depth-6 truncations):\n");
  std::printf("  all-a in fcl: %s   all-b in fcl: %s\n",
              trees::in_fcl(property, all_a, 6) ? "yes" : "no",
              trees::in_fcl(property, all_b, 6) ? "yes" : "no");
  std::printf("  (matches the rfcl automaton: %s / %s)\n\n",
              parts.safety.accepts(all_a) ? "yes" : "no",
              parts.safety.accepts(all_b) ? "yes" : "no");

  // CTL cross-check on the same trees.
  trees::CtlArena ctl(alphabet);
  const auto af_b = *ctl.parse("AF b");
  std::printf("CTL model checker agrees: all-a ⊨ AF b: %s, a(b,b) ⊨ AF b: %s\n\n",
              trees::holds(ctl, af_b, all_a) ? "yes" : "no",
              trees::holds(ctl, af_b, mixed) ? "yes" : "no");

  // The same automaton, machine-generated from the CTL formula (alternating
  // automaton + breakpoint construction) instead of hand-built.
  rabin::CtlTranslationStats stats;
  const rabin::RabinTreeAutomaton generated = rabin::from_ctl(ctl, af_b, 2, &stats);
  std::printf("machine-generated automaton for AF b: %d states (%d alternating),\n"
              "agrees with the hand-built one on the samples: %s\n",
              stats.nondeterministic_states, stats.alternating_states,
              (generated.accepts(all_a) == aut.accepts(all_a) &&
               generated.accepts(all_b) == aut.accepts(all_b) &&
               generated.accepts(mixed) == aut.accepts(mixed))
                  ? "yes"
                  : "NO");
  return 0;
}
