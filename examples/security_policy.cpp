// Enforceable security policies (paper §1, citing Schneider): an execution
// monitor can enforce exactly the SAFETY properties, and the enforcement
// automaton is the deterministic safety closure of the policy.
//
// Scenario: a process may read private data and may send on the network,
// but once it has read, it must never send ("no exfiltration"). A second,
// desirable-but-unenforceable policy says every read is eventually followed
// by an audit — a liveness property no runtime monitor can refute.
//
//   $ ./security_policy
#include <cstdio>
#include <vector>

#include "monitor/monitor.hpp"

int main() {
  using namespace slat;
  using monitor::SafetyMonitor;

  // Events of the system.
  words::Alphabet alphabet({"read", "send", "audit", "other"});
  ltl::LtlArena arena(alphabet);

  // Policy 1 (safety): G (read -> G !send) — after any read, never send.
  const auto no_exfiltration = *arena.parse("G (read -> G !send)");
  SafetyMonitor exfiltration_monitor = SafetyMonitor::from_ltl(arena, no_exfiltration);
  std::printf("policy 1: %s\n", arena.to_string(no_exfiltration).c_str());
  std::printf("  enforceable (non-vacuous safety monitor): %s\n",
              exfiltration_monitor.is_vacuous() ? "no" : "yes");
  std::printf("  monitor automaton: %d states\n\n",
              exfiltration_monitor.automaton().num_states());

  // Policy 2 (liveness): G (read -> F audit) — every read is audited.
  const auto audited = *arena.parse("G (read -> F audit)");
  SafetyMonitor audit_monitor = SafetyMonitor::from_ltl(arena, audited);
  std::printf("policy 2: %s\n", arena.to_string(audited).c_str());
  std::printf("  enforceable: %s — Schneider's theorem: execution monitoring\n"
              "  can enforce only safety; this policy's safety closure is trivial.\n\n",
              audit_monitor.is_vacuous() ? "no (pure liveness)" : "yes");

  // Run traces through the enforcement monitor (truncation semantics:
  // execution stops at the offending event).
  const auto sym = [&](const char* name) { return *alphabet.index_of(name); };
  const std::vector<std::pair<const char*, words::Word>> traces = {
      {"other send read audit", {sym("other"), sym("send"), sym("read"), sym("audit")}},
      {"read other send", {sym("read"), sym("other"), sym("send")}},
      {"send send read read", {sym("send"), sym("send"), sym("read"), sym("read")}},
      {"read audit send", {sym("read"), sym("audit"), sym("send")}},
  };
  std::printf("enforcement runs (policy 1):\n");
  for (const auto& [label, trace] : traces) {
    const auto truncated_at = exfiltration_monitor.run(trace);
    if (truncated_at) {
      std::printf("  [%-22s] TRUNCATED at event %zu (the '%s' would violate)\n",
                  label, *truncated_at, alphabet.name(trace[*truncated_at]).c_str());
    } else {
      std::printf("  [%-22s] allowed in full\n", label);
    }
  }

  std::printf("\nThe monitor is exactly the Büchi automaton for lcl(policy): a\n"
              "security automaton in Schneider's sense, obtained here by the\n"
              "paper's closure construction.\n");
  return 0;
}
