#include "ltl/formula.hpp"

#include <gtest/gtest.h>

namespace slat::ltl {
namespace {

TEST(LtlArena, InterningDeduplicates) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a1 = arena.atom("a");
  const FormulaId a2 = arena.atom(Sym{0});
  EXPECT_EQ(a1, a2);
  EXPECT_EQ(arena.eventually(a1), arena.eventually(a2));
}

TEST(LtlArena, ConstructorsFoldConstants) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a = arena.atom("a");
  EXPECT_EQ(arena.conj(arena.tru(), a), a);
  EXPECT_EQ(arena.conj(a, arena.fls()), arena.fls());
  EXPECT_EQ(arena.disj(arena.fls(), a), a);
  EXPECT_EQ(arena.disj(a, arena.tru()), arena.tru());
  EXPECT_EQ(arena.negation(arena.negation(a)), a);
  EXPECT_EQ(arena.negation(arena.tru()), arena.fls());
  EXPECT_EQ(arena.conj(a, a), a);
  EXPECT_EQ(arena.until(a, arena.tru()), arena.tru());
  EXPECT_EQ(arena.until(a, arena.fls()), arena.fls());
}

TEST(LtlArena, ConjIsOrderCanonical) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a = arena.atom("a");
  const FormulaId b = arena.atom("b");
  EXPECT_EQ(arena.conj(a, b), arena.conj(b, a));
  EXPECT_EQ(arena.disj(a, b), arena.disj(b, a));
}

TEST(Parser, ParsesTheRemExamples) {
  LtlArena arena(Alphabet::binary());
  for (const char* text : {"false", "a", "!a", "a & F !a", "F G !a", "G F a", "true"}) {
    EXPECT_TRUE(arena.parse(text).has_value()) << text;
  }
}

TEST(Parser, PrecedenceAndAssociativity) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a = arena.atom("a");
  const FormulaId b = arena.atom("b");
  // & binds tighter than |, | tighter than ->.
  EXPECT_EQ(*arena.parse("a & b | a"), arena.disj(arena.conj(a, b), a));
  EXPECT_EQ(*arena.parse("a -> b -> a"), arena.implies(a, arena.implies(b, a)));
  // U is right-associative and binds tighter than &.
  EXPECT_EQ(*arena.parse("a U b U a"), arena.until(a, arena.until(b, a)));
  EXPECT_EQ(*arena.parse("a U b & b"), arena.conj(arena.until(a, b), b));
  // Unary operators chain.
  EXPECT_EQ(*arena.parse("G F a"), arena.always(arena.eventually(a)));
  EXPECT_EQ(*arena.parse("!X a"), arena.negation(arena.next(a)));
}

TEST(Parser, ReportsErrors) {
  LtlArena arena(Alphabet::binary());
  LtlArena::ParseError error{"", 0};
  EXPECT_FALSE(arena.parse("a &", &error).has_value());
  EXPECT_FALSE(arena.parse("(a", &error).has_value());
  EXPECT_FALSE(arena.parse("unknown_atom", &error).has_value());
  EXPECT_FALSE(arena.parse("a b", &error).has_value());
  EXPECT_FALSE(arena.parse("", &error).has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(Parser, RoundTripsThroughToString) {
  LtlArena arena(Alphabet::binary());
  for (const char* text :
       {"a & F !a", "G F a", "a U (b R a)", "X X a", "(a | b) & X b", "a -> F b"}) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    const auto reparsed = arena.parse(arena.to_string(*f));
    ASSERT_TRUE(reparsed.has_value()) << arena.to_string(*f);
    EXPECT_EQ(*reparsed, *f) << text;
  }
}

TEST(Nnf, PushesNegationsToAtoms) {
  LtlArena arena(Alphabet::binary());
  const auto check_nnf_shape = [&](FormulaId f) {
    // In NNF, kNot wraps only atoms, and F/G/→ are gone.
    std::vector<FormulaId> stack{f};
    while (!stack.empty()) {
      const FormulaNode n = arena.node(stack.back());
      stack.pop_back();
      EXPECT_NE(n.op, Op::kImplies);
      EXPECT_NE(n.op, Op::kEventually);
      EXPECT_NE(n.op, Op::kAlways);
      if (n.op == Op::kNot) {
        EXPECT_EQ(arena.node(n.lhs).op, Op::kAtom);
        continue;
      }
      if (n.lhs >= 0) stack.push_back(n.lhs);
      if (n.rhs >= 0) stack.push_back(n.rhs);
    }
  };
  for (const char* text :
       {"!(a & b)", "!(a U b)", "!G F a", "!(a -> b)", "!X !a", "!(a R b)", "F G !a"}) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value());
    check_nnf_shape(arena.nnf(*f));
  }
}

TEST(Parser, WeakUntilDesugarsToRelease) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a = arena.atom("a");
  const FormulaId b = arena.atom("b");
  // a W b = b R (a ∨ b).
  EXPECT_EQ(*arena.parse("a W b"), arena.release(b, arena.disj(a, b)));
  // Right-associative like U: a W b W a parses.
  EXPECT_TRUE(arena.parse("a W b W a").has_value());
}

TEST(Nnf, KnownIdentities) {
  LtlArena arena(Alphabet::binary());
  const FormulaId a = arena.atom("a");
  // ¬F a = G ¬a = false R ¬a.
  EXPECT_EQ(arena.nnf(arena.negation(arena.eventually(a))),
            arena.release(arena.fls(), arena.negation(a)));
  // F a = true U a.
  EXPECT_EQ(arena.nnf(arena.eventually(a)), arena.until(arena.tru(), a));
  // ¬¬a = a.
  EXPECT_EQ(arena.nnf(arena.negation(arena.negation(a))), a);
}

}  // namespace
}  // namespace slat::ltl
