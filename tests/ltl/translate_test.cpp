// GPVW translation, differentially tested against the UP-word evaluator:
// for every formula and every corpus word, w ⊨ φ ⟺ NBA(φ) accepts w.
#include "ltl/translate.hpp"

#include <gtest/gtest.h>

#include <random>

#include "buchi/safety.hpp"
#include "ltl/eval.hpp"
#include "ltl/rem.hpp"

namespace slat::ltl {
namespace {

using words::UpWord;

class TranslateFixture : public ::testing::Test {
 protected:
  LtlArena arena{Alphabet::binary()};
  std::vector<UpWord> corpus = words::enumerate_up_words(2, 3, 3);

  void expect_translation_correct(FormulaId f) {
    const buchi::Nba nba = to_nba(arena, f);
    for (const auto& w : corpus) {
      ASSERT_EQ(nba.accepts(w), holds(arena, f, w))
          << arena.to_string(f) << " on " << w.to_string(arena.alphabet());
    }
  }
};

TEST_F(TranslateFixture, CoreFormulas) {
  for (const char* text : {
           "true", "false", "a", "!a", "X a", "X X b", "F a", "G a", "a U b",
           "b R a", "F G a", "G F a", "a & F !a", "F G !a",
           "a -> X b", "G (a -> X b)", "F (a & X a)", "(F a) & (F b)",
           "G (a | X a)", "a U (b U a)", "(a U b) | (b U a)",
           "!(a U b)", "G (a -> F b)", "F a -> F b", "X (a R b)",
       }) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    expect_translation_correct(*f);
  }
}

// Random formula generator over {a, b}.
FormulaId random_formula(LtlArena& arena, std::mt19937& rng, int depth) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 3 : 11);
  switch (pick(rng)) {
    case 0:
      return arena.atom(Sym{0});
    case 1:
      return arena.atom(Sym{1});
    case 2:
      return arena.tru();
    case 3:
      return arena.negation(random_formula(arena, rng, 0));
    case 4:
      return arena.negation(random_formula(arena, rng, depth - 1));
    case 5:
      return arena.conj(random_formula(arena, rng, depth - 1),
                        random_formula(arena, rng, depth - 1));
    case 6:
      return arena.disj(random_formula(arena, rng, depth - 1),
                        random_formula(arena, rng, depth - 1));
    case 7:
      return arena.next(random_formula(arena, rng, depth - 1));
    case 8:
      return arena.eventually(random_formula(arena, rng, depth - 1));
    case 9:
      return arena.always(random_formula(arena, rng, depth - 1));
    case 10:
      return arena.until(random_formula(arena, rng, depth - 1),
                         random_formula(arena, rng, depth - 1));
    default:
      return arena.release(random_formula(arena, rng, depth - 1),
                           random_formula(arena, rng, depth - 1));
  }
}

TEST_F(TranslateFixture, RandomFormulasAgreeWithEvaluator) {
  std::mt19937 rng(79);
  for (int i = 0; i < 150; ++i) {
    const FormulaId f = random_formula(arena, rng, 3);
    expect_translation_correct(f);
  }
}

TEST_F(TranslateFixture, StatsAreFilled) {
  TranslationStats stats;
  const auto f = arena.parse("G (a -> F b)");
  ASSERT_TRUE(f.has_value());
  const buchi::Nba nba = to_nba(arena, *f, &stats);
  EXPECT_GT(stats.tableau_nodes, 0);
  EXPECT_EQ(stats.acceptance_sets, 1);  // one Until after NNF
  EXPECT_EQ(stats.nba_states, nba.num_states());
  EXPECT_EQ(stats.nba_transitions, nba.num_transitions());
}

TEST_F(TranslateFixture, NoUntilMeansEverythingAccepting) {
  // Pure safety formula: the translation has no acceptance obligations.
  TranslationStats stats;
  const auto f = arena.parse("G a");
  to_nba(arena, *f, &stats);
  EXPECT_EQ(stats.acceptance_sets, 0);
}

TEST(RemExamples, ClassificationsMatchThePaper) {
  LtlArena arena(Alphabet::binary());
  for (const RemExample& example : rem_examples()) {
    const auto f = arena.parse(example.formula);
    ASSERT_TRUE(f.has_value()) << example.name;
    const buchi::Nba nba = to_nba(arena, *f);
    EXPECT_EQ(buchi::classify(nba), example.expected) << example.name;
  }
}

TEST(RemExamples, ClosuresMatchThePaper) {
  // lcl(p3) = p1 and lcl(p4) = lcl(p5) = Σ^ω, per §2.3.
  LtlArena arena(Alphabet::binary());
  const auto nba_of = [&](const char* text) {
    const auto f = arena.parse(text);
    EXPECT_TRUE(f.has_value());
    return to_nba(arena, *f);
  };
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  const buchi::Nba closure_p3 = buchi::safety_closure(nba_of("a & F !a"));
  const buchi::Nba p1 = nba_of("a");
  for (const auto& w : corpus) {
    EXPECT_EQ(closure_p3.accepts(w), p1.accepts(w)) << w.to_string(arena.alphabet());
  }
  EXPECT_TRUE(buchi::DetSafety::from_nba(nba_of("F G !a")).is_universal());
  EXPECT_TRUE(buchi::DetSafety::from_nba(nba_of("G F a")).is_universal());
}

}  // namespace
}  // namespace slat::ltl
