// Sistla's syntactic fragments: soundness (fragment membership implies the
// semantic classification) and incompleteness (semantically safe formulas
// outside the fragment), differential-tested through the full pipeline.
#include "ltl/syntactic.hpp"

#include <gtest/gtest.h>

#include <random>

#include "buchi/safety.hpp"
#include "ltl/eval.hpp"
#include "ltl/translate.hpp"

namespace slat::ltl {
namespace {

class SyntacticFixture : public ::testing::Test {
 protected:
  LtlArena arena{Alphabet::binary()};

  FormulaId parse(const char* text) {
    const auto f = arena.parse(text);
    EXPECT_TRUE(f.has_value()) << text;
    return *f;
  }
};

TEST_F(SyntacticFixture, ClassifiesKnownFormulas) {
  EXPECT_EQ(classify_syntactic(arena, parse("G a")), SyntacticClass::kSafety);
  EXPECT_EQ(classify_syntactic(arena, parse("a & X !a")), SyntacticClass::kBoth);
  EXPECT_EQ(classify_syntactic(arena, parse("F a")), SyntacticClass::kCoSafety);
  EXPECT_EQ(classify_syntactic(arena, parse("a U b")), SyntacticClass::kCoSafety);
  EXPECT_EQ(classify_syntactic(arena, parse("b R a")), SyntacticClass::kSafety);
  EXPECT_EQ(classify_syntactic(arena, parse("G F a")), SyntacticClass::kNeither);
  EXPECT_EQ(classify_syntactic(arena, parse("G (a -> F b)")), SyntacticClass::kNeither);
  // Classification happens after NNF: ¬F¬a is G a, hence safety.
  EXPECT_EQ(classify_syntactic(arena, parse("!F !a")), SyntacticClass::kSafety);
  EXPECT_EQ(classify_syntactic(arena, parse("!G !a")), SyntacticClass::kCoSafety);
}

TEST_F(SyntacticFixture, WeakUntilIsSyntacticSafety) {
  const FormulaId w = weak_until(arena, arena.atom("a"), arena.atom("b"));
  EXPECT_TRUE(in_syntactic_safety_fragment(arena, w));
  // And semantically: a W b = (a U b) ∨ G a on the corpus.
  const FormulaId strong = parse("(a U b) | G a");
  for (const auto& word : words::enumerate_up_words(2, 3, 3)) {
    EXPECT_EQ(holds(arena, w, word), holds(arena, strong, word))
        << word.to_string(arena.alphabet());
  }
}

TEST_F(SyntacticFixture, SafetyFragmentIsSemanticallySound) {
  for (const char* text :
       {"G a", "b R a", "a & X (b R (a | b))", "G (a | X b)", "X X a",
        "(b R a) | G b", "a & G (a -> X b)"}) {
    const FormulaId f = parse(text);
    ASSERT_TRUE(in_syntactic_safety_fragment(arena, f)) << text;
    const buchi::Nba nba = to_nba(arena, f);
    EXPECT_TRUE(buchi::is_safety(nba)) << text;
  }
}

TEST_F(SyntacticFixture, CoSafetyFragmentIsSemanticallySound) {
  for (const char* text : {"F a", "a U b", "X F b", "(a U b) & F a", "a | F (a & X b)"}) {
    const FormulaId f = parse(text);
    ASSERT_TRUE(in_syntactic_cosafety_fragment(arena, f)) << text;
    const buchi::Nba nba = to_nba(arena, f);
    EXPECT_TRUE(buchi::is_cosafety(nba)) << text;
  }
}

TEST_F(SyntacticFixture, FragmentIsIncomplete) {
  // (a U b) | G a is semantically SAFETY (it is a W b) but mentions U.
  const FormulaId f = parse("(a U b) | G a");
  EXPECT_FALSE(in_syntactic_safety_fragment(arena, f));
  EXPECT_TRUE(buchi::is_safety(to_nba(arena, f)));
  // Dually: (b R a) & F b is co-safety ("a until the first b, which occurs")
  // but mentions R.
  const FormulaId g = parse("(b R a) & F b");
  EXPECT_FALSE(in_syntactic_cosafety_fragment(arena, g));
  EXPECT_TRUE(buchi::is_cosafety(to_nba(arena, g)));
}

// Random U-free formulas are always semantically safe; random R-free ones
// always co-safe. (The generator mirrors the translate test but restricted.)
FormulaId random_fragment_formula(LtlArena& arena, std::mt19937& rng, int depth,
                                  bool safety) {
  std::uniform_int_distribution<int> pick(0, depth <= 0 ? 2 : 7);
  switch (pick(rng)) {
    case 0:
      return arena.atom(Sym{0});
    case 1:
      return arena.atom(Sym{1});
    case 2:
      return arena.negation(arena.atom(Sym{rng() % 2 == 0 ? 0 : 1}));
    case 3:
      return arena.conj(random_fragment_formula(arena, rng, depth - 1, safety),
                        random_fragment_formula(arena, rng, depth - 1, safety));
    case 4:
      return arena.disj(random_fragment_formula(arena, rng, depth - 1, safety),
                        random_fragment_formula(arena, rng, depth - 1, safety));
    case 5:
      return arena.next(random_fragment_formula(arena, rng, depth - 1, safety));
    case 6:
      return safety
                 ? arena.always(random_fragment_formula(arena, rng, depth - 1, safety))
                 : arena.eventually(
                       random_fragment_formula(arena, rng, depth - 1, safety));
    default:
      return safety
                 ? arena.release(random_fragment_formula(arena, rng, depth - 1, safety),
                                 random_fragment_formula(arena, rng, depth - 1, safety))
                 : arena.until(random_fragment_formula(arena, rng, depth - 1, safety),
                               random_fragment_formula(arena, rng, depth - 1, safety));
  }
}

TEST_F(SyntacticFixture, RandomSafetyFragmentFormulasAreSafe) {
  std::mt19937 rng(131);
  for (int i = 0; i < 40; ++i) {
    const FormulaId f = random_fragment_formula(arena, rng, 3, /*safety=*/true);
    ASSERT_TRUE(in_syntactic_safety_fragment(arena, f)) << arena.to_string(f);
    EXPECT_TRUE(buchi::is_safety(to_nba(arena, f))) << arena.to_string(f);
  }
}

TEST_F(SyntacticFixture, RandomCoSafetyFragmentFormulasAreCoSafe) {
  // is_cosafety complements the automaton, so skip the occasional random
  // formula whose (reduced) automaton is too large for the rank
  // construction — enough small ones remain for a meaningful sweep.
  std::mt19937 rng(137);
  int checked = 0;
  for (int i = 0; i < 60 && checked < 18; ++i) {
    const FormulaId f = random_fragment_formula(arena, rng, 2, /*safety=*/false);
    ASSERT_TRUE(in_syntactic_cosafety_fragment(arena, f)) << arena.to_string(f);
    const buchi::Nba reduced = to_nba(arena, f).reduce();
    if (reduced.num_states() - reduced.num_accepting() > 3) continue;
    ++checked;
    EXPECT_TRUE(buchi::is_cosafety(reduced)) << arena.to_string(f);
  }
  EXPECT_GE(checked, 15);
}

TEST_F(SyntacticFixture, DualityUnderNegation) {
  // ¬(safety fragment) lands in the co-safety fragment and vice versa.
  for (const char* text : {"G a", "b R a", "G (a | X b)"}) {
    const FormulaId f = parse(text);
    EXPECT_TRUE(in_syntactic_cosafety_fragment(arena, arena.negation(f))) << text;
  }
  for (const char* text : {"F a", "a U b"}) {
    const FormulaId f = parse(text);
    EXPECT_TRUE(in_syntactic_safety_fragment(arena, arena.negation(f))) << text;
  }
}

TEST_F(SyntacticFixture, Names) {
  EXPECT_STREQ(to_string(SyntacticClass::kSafety), "syntactic-safety");
  EXPECT_STREQ(to_string(SyntacticClass::kNeither), "syntactic-neither");
}

}  // namespace
}  // namespace slat::ltl
