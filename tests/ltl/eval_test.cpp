#include "ltl/eval.hpp"

#include <gtest/gtest.h>

namespace slat::ltl {
namespace {

using words::UpWord;

constexpr Sym kA = 0;
constexpr Sym kB = 1;

class EvalFixture : public ::testing::Test {
 protected:
  LtlArena arena{Alphabet::binary()};

  bool eval(const char* text, const UpWord& w) {
    const auto f = arena.parse(text);
    EXPECT_TRUE(f.has_value()) << text;
    return holds(arena, *f, w);
  }
};

TEST_F(EvalFixture, Atoms) {
  EXPECT_TRUE(eval("a", UpWord::constant(kA)));
  EXPECT_FALSE(eval("a", UpWord::constant(kB)));
  EXPECT_TRUE(eval("!a", UpWord({kB}, {kA})));
}

TEST_F(EvalFixture, BooleanConnectives) {
  const UpWord w({kA}, {kB});
  EXPECT_TRUE(eval("a & X b", w));
  EXPECT_TRUE(eval("a | b", w));
  EXPECT_FALSE(eval("a & b", w));
  EXPECT_TRUE(eval("b -> a", w));
  EXPECT_FALSE(eval("a -> b", w));
  EXPECT_TRUE(eval("true", w));
  EXPECT_FALSE(eval("false", w));
}

TEST_F(EvalFixture, NextStepsThroughPrefixAndPeriod) {
  const UpWord w({kA, kB}, {kA, kA, kB});
  EXPECT_TRUE(eval("X b", w));
  EXPECT_TRUE(eval("X X a", w));
  EXPECT_TRUE(eval("X X X a", w));
  EXPECT_TRUE(eval("X X X X b", w));
  // Period wrap: position 5 is the period start again (a).
  EXPECT_TRUE(eval("X X X X X a", w));
}

TEST_F(EvalFixture, EventuallyAndAlways) {
  EXPECT_TRUE(eval("F b", UpWord({kA, kA, kA}, {kB})));
  EXPECT_FALSE(eval("F b", UpWord::constant(kA)));
  EXPECT_TRUE(eval("G a", UpWord::constant(kA)));
  EXPECT_FALSE(eval("G a", UpWord({kA, kA}, {kB})));
  EXPECT_TRUE(eval("G F a", UpWord({}, {kA, kB})));
  EXPECT_FALSE(eval("G F a", UpWord({kA, kA}, {kB})));
  EXPECT_TRUE(eval("F G b", UpWord({kA, kA}, {kB})));
  EXPECT_FALSE(eval("F G b", UpWord({}, {kA, kB})));
}

TEST_F(EvalFixture, UntilAndRelease) {
  // a U b: a's until the first b.
  EXPECT_TRUE(eval("a U b", UpWord({kA, kA, kB}, {kA})));
  EXPECT_FALSE(eval("a U b", UpWord::constant(kA)));
  EXPECT_TRUE(eval("a U b", UpWord::constant(kB)));  // ψ holds immediately
  // Release: b R a = a holds up to and INCLUDING the first b. Over the
  // binary alphabet a and b are mutually exclusive, so the release point can
  // never satisfy both and b R a degenerates to G a.
  EXPECT_TRUE(eval("b R a", UpWord::constant(kA)));
  EXPECT_FALSE(eval("b R a", UpWord({kA, kA, kB}, {kB})));
  EXPECT_FALSE(eval("b R a", UpWord({kA, kB}, {kA})));
  // With a releasing point that satisfies both operands the release fires:
  // (a | b) R a is just G a, while a R (a | b) releases immediately.
  EXPECT_TRUE(eval("a R (a | b)", UpWord::constant(kB)));
}

TEST_F(EvalFixture, UntilSemanticsEdgeCase) {
  // φ U ψ requires ψ eventually — strong until.
  EXPECT_FALSE(eval("a U (b & X a)", UpWord::constant(kA)));
  EXPECT_TRUE(eval("a U (b & X a)", UpWord({kA, kB}, {kA})));
}

TEST_F(EvalFixture, SemanticEquivalencesOnCorpus) {
  // Well-known identities, validated pointwise over a word corpus.
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  const struct {
    const char* lhs;
    const char* rhs;
  } identities[] = {
      {"F a", "true U a"},
      {"G a", "!F !a"},
      {"a R b", "!(!a U !b)"},
      {"F F a", "F a"},
      {"G G a", "G a"},
      {"X (a & b)", "X a & X b"},
      {"F (a | b)", "F a | F b"},
      {"G (a & b)", "G a & G b"},
      {"a U (a U b)", "a U b"},
      {"G F a", "!F G !a"},
  };
  for (const auto& identity : identities) {
    const auto lhs = arena.parse(identity.lhs);
    const auto rhs = arena.parse(identity.rhs);
    ASSERT_TRUE(lhs.has_value() && rhs.has_value());
    for (const auto& w : corpus) {
      EXPECT_EQ(holds(arena, *lhs, w), holds(arena, *rhs, w))
          << identity.lhs << " vs " << identity.rhs << " on "
          << w.to_string(arena.alphabet());
    }
  }
}

TEST_F(EvalFixture, NnfPreservesSemantics) {
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (const char* text :
       {"!(a U b)", "!(a R b)", "!G F a", "!(a -> F b)", "!X (a & !b)",
        "a & F !a", "F G !a", "G F a", "!(a | X (b U a))"}) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    const FormulaId g = arena.nnf(*f);
    for (const auto& w : corpus) {
      EXPECT_EQ(holds(arena, *f, w), holds(arena, g, w))
          << text << " on " << w.to_string(arena.alphabet());
    }
  }
}

TEST_F(EvalFixture, TruthTableCoversAllPositions) {
  const auto f = arena.parse("a");
  const UpWord w({kA, kB}, {kB, kA});
  const auto table = truth_table(arena, *f, w);
  ASSERT_EQ(table.size(), 4u);
  EXPECT_TRUE(table[0]);
  EXPECT_FALSE(table[1]);
  EXPECT_FALSE(table[2]);
  EXPECT_TRUE(table[3]);
}

}  // namespace
}  // namespace slat::ltl
