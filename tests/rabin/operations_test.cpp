// Union and (Büchi-shaped) intersection of Rabin tree automata — validated
// semantically on tree corpora and compositionally against from_ctl.
#include "rabin/operations.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rabin/examples.hpp"
#include "rabin/from_ctl.hpp"
#include "rabin/random.hpp"
#include "trees/ctl.hpp"

namespace slat::rabin {
namespace {

using trees::KTree;

Alphabet binary() { return words::Alphabet::binary(); }

std::vector<KTree> corpus() {
  std::vector<KTree> out;
  for (int n = 1; n <= 2; ++n) {
    for (KTree& tree : trees::enumerate_regular_trees(binary(), n, 2, 2)) {
      out.push_back(std::move(tree));
    }
  }
  std::mt19937 rng(191);
  for (int i = 0; i < 8; ++i) {
    out.push_back(trees::random_regular_tree(binary(), 3, 2, rng));
  }
  return out;
}

TEST(Union, SemanticsOnExamples) {
  const RabinTreeAutomaton a = aut_agf_b();
  const RabinTreeAutomaton b = aut_root_a();
  const RabinTreeAutomaton both = unite(a, b);
  for (const KTree& t : corpus()) {
    EXPECT_EQ(both.accepts(t), a.accepts(t) || b.accepts(t)) << t.to_string();
  }
}

TEST(Union, SemanticsOnRandomAutomata) {
  std::mt19937 rng(193);
  RandomRabinConfig config;
  config.num_states = 2;
  const auto trees_corpus = corpus();
  for (int i = 0; i < 15; ++i) {
    const RabinTreeAutomaton a = random_rabin(config, rng);
    const RabinTreeAutomaton b = random_rabin(config, rng);
    const RabinTreeAutomaton both = unite(a, b);
    for (const KTree& t : trees_corpus) {
      ASSERT_EQ(both.accepts(t), a.accepts(t) || b.accepts(t)) << i;
    }
  }
}

TEST(Union, MixedPairCounts) {
  // Different pair structures unite cleanly.
  const RabinTreeAutomaton a = aut_afg_b();   // 1 pair with red
  const RabinTreeAutomaton b = aut_all_trees();  // trivial
  const RabinTreeAutomaton both = unite(a, b);
  EXPECT_EQ(both.num_pairs(), 2);
  for (const KTree& t : corpus()) {
    EXPECT_TRUE(both.accepts(t));  // b already accepts everything
  }
}

TEST(IntersectBuchi, ShapeDetection) {
  EXPECT_TRUE(is_buchi_shaped(aut_agf_b()));
  EXPECT_TRUE(is_buchi_shaped(rfcl(aut_af_b())));
  EXPECT_FALSE(is_buchi_shaped(aut_af_b()));  // has a red set
  EXPECT_FALSE(is_buchi_shaped(aut_afg_b()));
}

TEST(IntersectBuchi, SemanticsOnExamples) {
  const RabinTreeAutomaton a = aut_agf_b();     // A GF b (Büchi-shaped)
  const RabinTreeAutomaton b = aut_root_a();    // root a (trivial pair)
  const RabinTreeAutomaton both = intersect_buchi(a, b);
  for (const KTree& t : corpus()) {
    EXPECT_EQ(both.accepts(t), a.accepts(t) && b.accepts(t)) << t.to_string();
  }
}

TEST(IntersectBuchi, MatchesFromCtlOnConjunctions) {
  // from_ctl(φ ∧ ψ) and intersect_buchi(from_ctl(φ), from_ctl(ψ)) must
  // recognize the same language.
  trees::CtlArena arena(binary());
  const struct {
    const char* lhs;
    const char* rhs;
  } cases[] = {
      {"AF b", "AG (a | b)"},
      {"EF a", "AF b"},
      {"AG AF b", "EX a"},
  };
  const auto trees_corpus = corpus();
  for (const auto& c : cases) {
    const auto fl = *arena.parse(c.lhs);
    const auto fr = *arena.parse(c.rhs);
    const RabinTreeAutomaton combined =
        from_ctl(arena, arena.conj(fl, fr), 2);
    const RabinTreeAutomaton product =
        intersect_buchi(from_ctl(arena, fl, 2), from_ctl(arena, fr, 2));
    for (const KTree& t : trees_corpus) {
      ASSERT_EQ(combined.accepts(t), product.accepts(t)) << c.lhs << " & " << c.rhs;
    }
  }
}

TEST(Union, MatchesFromCtlOnDisjunctions) {
  trees::CtlArena arena(binary());
  const auto fl = *arena.parse("AG a");
  const auto fr = *arena.parse("AF b");
  const RabinTreeAutomaton combined = from_ctl(arena, arena.disj(fl, fr), 2);
  const RabinTreeAutomaton sum = unite(from_ctl(arena, fl, 2), from_ctl(arena, fr, 2));
  for (const KTree& t : corpus()) {
    ASSERT_EQ(combined.accepts(t), sum.accepts(t)) << t.to_string();
  }
}

TEST(Operations, DecompositionOfAnIntersection) {
  // End-to-end: intersect two generated automata, decompose, verify the
  // identity — the lattice story closing over machine-built objects.
  trees::CtlArena arena(binary());
  const RabinTreeAutomaton automaton = intersect_buchi(
      from_ctl(arena, *arena.parse("AG (a | b)"), 2),
      from_ctl(arena, *arena.parse("AF b"), 2));
  const RabinDecomposition d = decompose(automaton);
  for (const KTree& t : corpus()) {
    ASSERT_EQ(automaton.accepts(t), d.safety.accepts(t) && d.liveness_contains(t));
  }
}

}  // namespace
}  // namespace slat::rabin
