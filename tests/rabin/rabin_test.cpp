// Rabin tree automata: membership/emptiness via games, cross-checks against
// the CTL / graph oracles, the rfcl closure theorem L(rfcl B) = fcl(L(B)),
// and the Theorem 9 decomposition.
#include "rabin/rabin_tree_automaton.hpp"

#include <gtest/gtest.h>

#include "rabin/examples.hpp"
#include "rabin/random.hpp"
#include "trees/closures.hpp"
#include "trees/rem_branching.hpp"

namespace slat::rabin {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

Alphabet binary() { return words::Alphabet::binary(); }

// All total binary (exactly 2 children) regular trees with ≤ 2 graph nodes.
std::vector<KTree> binary_corpus() {
  std::vector<KTree> corpus;
  for (int n = 1; n <= 2; ++n) {
    for (KTree& tree : trees::enumerate_regular_trees(binary(), n, 2, 2)) {
      bool duplicate = false;
      for (const KTree& existing : corpus) {
        if (existing.same_unfolding(tree)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) corpus.push_back(std::move(tree));
    }
  }
  return corpus;
}

trees::TreeProperty property_of(const RabinTreeAutomaton& automaton, std::string name) {
  return trees::TreeProperty{
      std::move(name),
      [&automaton](const KTree& t) { return automaton.accepts(t); },
      [&automaton](const KTree& t) { return automaton.accepts_some_extension(t); }};
}

TEST(Membership, ConstAAutomaton) {
  const RabinTreeAutomaton aut = aut_const_a();
  EXPECT_TRUE(aut.accepts(KTree::constant(binary(), kA, 2)));
  EXPECT_FALSE(aut.accepts(KTree::constant(binary(), kB, 2)));
  EXPECT_FALSE(aut.is_empty());
}

TEST(Membership, EmptyAutomaton) {
  const RabinTreeAutomaton aut = aut_empty();
  EXPECT_TRUE(aut.is_empty());
  EXPECT_FALSE(aut.accepts(KTree::constant(binary(), kA, 2)));
  EXPECT_FALSE(aut.find_accepted_tree().has_value());
}

TEST(Membership, ExamplesAgreeWithGraphOracles) {
  const auto corpus = binary_corpus();
  ASSERT_GT(corpus.size(), 5u);
  const RabinTreeAutomaton agf_b = aut_agf_b();
  const RabinTreeAutomaton efg_b = aut_efg_b();
  const RabinTreeAutomaton afg_b = aut_afg_b();
  const RabinTreeAutomaton root_a = aut_root_a();
  for (const KTree& t : corpus) {
    // A GF b ⟺ no reachable all-a cycle.
    EXPECT_EQ(agf_b.accepts(t), !trees::exists_monochrome_cycle(t, kA)) << t.to_string();
    // E FG b ⟺ some reachable all-b cycle.
    EXPECT_EQ(efg_b.accepts(t), trees::exists_monochrome_cycle(t, kB)) << t.to_string();
    // A FG b ⟺ no reachable cycle visiting a.
    EXPECT_EQ(afg_b.accepts(t), !trees::exists_cycle_visiting(t, kA)) << t.to_string();
    EXPECT_EQ(root_a.accepts(t), t.label(t.root()) == kA) << t.to_string();
  }
}

TEST(Membership, AfBAgainstHandTrees) {
  const RabinTreeAutomaton aut = aut_af_b();
  EXPECT_TRUE(aut.accepts(KTree::constant(binary(), kB, 2)));
  EXPECT_FALSE(aut.accepts(KTree::constant(binary(), kA, 2)));
  // Root a, both children all-b: AF b holds.
  KTree tree(binary(), 2, 0);
  tree.set_label(0, kA);
  tree.set_label(1, kB);
  tree.add_child(0, 1);
  tree.add_child(0, 1);
  tree.add_child(1, 1);
  tree.add_child(1, 1);
  EXPECT_TRUE(aut.accepts(tree));
  // One branch stays all-a: AF b fails.
  KTree bad(binary(), 3, 0);
  bad.set_label(0, kA);
  bad.set_label(1, kA);
  bad.set_label(2, kB);
  bad.add_child(0, 1);
  bad.add_child(0, 2);
  bad.add_child(1, 1);
  bad.add_child(1, 1);
  bad.add_child(2, 2);
  bad.add_child(2, 2);
  EXPECT_FALSE(aut.accepts(bad));
}

TEST(Witness, FindAcceptedTreeRoundTrips) {
  for (const RabinTreeAutomaton& aut :
       {aut_const_a(), aut_all_trees(), aut_root_a(), aut_af_b(), aut_agf_b(),
        aut_efg_b(), aut_afg_b()}) {
    const auto witness = aut.find_accepted_tree();
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(aut.accepts(*witness));
  }
}

TEST(Witness, RandomAutomataRoundTrip) {
  std::mt19937 rng(103);
  RandomRabinConfig config;
  int nonempty = 0;
  for (int i = 0; i < 60; ++i) {
    const RabinTreeAutomaton aut = random_rabin(config, rng);
    const auto witness = aut.find_accepted_tree();
    EXPECT_EQ(witness.has_value(), !aut.is_empty()) << i;
    if (witness) {
      ++nonempty;
      EXPECT_TRUE(aut.accepts(*witness)) << i;
    }
  }
  EXPECT_GT(nonempty, 5);
}

TEST(Extension, PrefixExtendability) {
  const RabinTreeAutomaton aut = aut_const_a();  // L = {a^∞ tree}
  // A single a-leaf extends into the language; a b-leaf does not.
  KTree a_leaf(binary(), 1, 0);
  a_leaf.set_label(0, kA);
  EXPECT_TRUE(aut.accepts_some_extension(a_leaf));
  KTree b_leaf(binary(), 1, 0);
  b_leaf.set_label(0, kB);
  EXPECT_FALSE(aut.accepts_some_extension(b_leaf));
  // An a-root with one subtree already b: no extension works.
  KTree mixed(binary(), 3, 0);
  mixed.set_label(0, kA);
  mixed.set_label(1, kB);
  mixed.set_label(2, kA);
  mixed.add_child(0, 1);
  mixed.add_child(0, 2);
  // children 1 and 2 are leaves
  EXPECT_FALSE(aut.accepts_some_extension(mixed));
}

TEST(Closure, RfclShape) {
  const RabinTreeAutomaton closure = rfcl(aut_af_b());
  EXPECT_EQ(closure.num_pairs(), 1);
  for (State q = 0; q < closure.num_states(); ++q) {
    EXPECT_TRUE(closure.pair(0).green[q]);
    EXPECT_FALSE(closure.pair(0).red[q]);
  }
  // AF b is a liveness-like property on trees: every finite prefix extends,
  // so the closure accepts every total binary tree.
  for (const KTree& t : binary_corpus()) {
    EXPECT_TRUE(closure.accepts(t)) << t.to_string();
  }
}

TEST(Closure, RfclIsTheSemanticFcl) {
  // L(rfcl B) = fcl(L(B)), tested via the bounded semantic fcl from the
  // trees module with the automaton's own oracles. Truncation
  // extendability is antitone in the depth and stabilizes to true fcl
  // membership; depth 8 is comfortably past stabilization for 3-state
  // automata on ≤2-node trees (the deepest flip observed is at depth 4).
  std::mt19937 rng(107);
  RandomRabinConfig config;
  const auto corpus = binary_corpus();
  for (int i = 0; i < 16; ++i) {
    const RabinTreeAutomaton aut = random_rabin(config, rng);
    const RabinTreeAutomaton closure = rfcl(aut);
    const trees::TreeProperty prop = property_of(aut, "random");
    for (const KTree& t : corpus) {
      const bool exact = closure.accepts(t);
      // Shallow approximations may only err on the "extendable" side.
      if (exact) {
        EXPECT_TRUE(trees::in_fcl(prop, t, 3));
      }
      ASSERT_EQ(exact, trees::in_fcl(prop, t, 8))
          << "iteration " << i << "\n"
          << aut.to_string() << t.to_string();
    }
  }
}

TEST(Closure, RfclIsExtensiveAndIdempotent) {
  std::mt19937 rng(109);
  RandomRabinConfig config;
  const auto corpus = binary_corpus();
  for (int i = 0; i < 25; ++i) {
    const RabinTreeAutomaton aut = random_rabin(config, rng);
    const RabinTreeAutomaton once = rfcl(aut);
    const RabinTreeAutomaton twice = rfcl(once);
    for (const KTree& t : corpus) {
      if (aut.accepts(t)) {
        EXPECT_TRUE(once.accepts(t)) << i;
      }
      EXPECT_EQ(once.accepts(t), twice.accepts(t)) << i;
    }
  }
}

TEST(Escape, SafetyEscapeAnalysis) {
  // Closure of const-a: language {a^∞}; a lone a-leaf escapes (grow a b),
  // and the total constant-a tree does not escape.
  const RabinTreeAutomaton closure = rfcl(aut_const_a());
  KTree a_leaf(binary(), 1, 0);
  a_leaf.set_label(0, kA);
  EXPECT_TRUE(some_extension_escapes(closure, a_leaf));
  EXPECT_FALSE(some_extension_escapes(closure, KTree::constant(binary(), kA, 2)));
  EXPECT_TRUE(some_extension_escapes(closure, KTree::constant(binary(), kB, 2)));
  // Closure of "all trees": nothing escapes.
  const RabinTreeAutomaton everything = rfcl(aut_all_trees());
  EXPECT_FALSE(some_extension_escapes(everything, a_leaf));
}

TEST(Decomposition, Theorem9OnExamples) {
  const auto corpus = binary_corpus();
  for (const RabinTreeAutomaton& aut :
       {aut_const_a(), aut_root_a(), aut_af_b(), aut_agf_b(), aut_afg_b()}) {
    const RabinDecomposition d = decompose(aut);
    const trees::TreeProperty live{"live",
                                   [&d](const KTree& t) { return d.liveness_contains(t); },
                                   [&d](const KTree& t) { return d.liveness_extendable(t); }};
    const trees::TreeProperty safe = property_of(d.safety, "safe");
    for (const KTree& t : corpus) {
      // L(B) = L(B_safe) ∩ L(B_live).
      EXPECT_EQ(aut.accepts(t), d.safety.accepts(t) && d.liveness_contains(t));
      // The safety part is universally safe: fcl-closed.
      EXPECT_EQ(d.safety.accepts(t), trees::in_fcl(safe, t, 3)) << t.to_string();
      // The liveness part is universally live: fcl = everything.
      EXPECT_TRUE(trees::in_fcl(live, t, 3)) << t.to_string();
    }
  }
}

TEST(Decomposition, Theorem9OnRandomAutomata) {
  std::mt19937 rng(113);
  RandomRabinConfig config;
  config.num_states = 2;
  const auto corpus = binary_corpus();
  for (int i = 0; i < 20; ++i) {
    const RabinTreeAutomaton aut = random_rabin(config, rng);
    const RabinDecomposition d = decompose(aut);
    const trees::TreeProperty live{"live",
                                   [&d](const KTree& t) { return d.liveness_contains(t); },
                                   [&d](const KTree& t) { return d.liveness_extendable(t); }};
    for (const KTree& t : corpus) {
      ASSERT_EQ(aut.accepts(t), d.safety.accepts(t) && d.liveness_contains(t)) << i;
      ASSERT_TRUE(trees::in_fcl(live, t, 2)) << i << "\n" << aut.to_string();
    }
  }
}

TEST(Rncl, ExistentialAndUniversalClosuresDiverge) {
  // The §4.2 point, at the automaton level: for AF b, the two-path tree
  // (one all-a branch, one all-b branch) is in the FINITE-DEPTH closure
  // (every truncation still extends into AF b) but not in the NON-TOTAL
  // closure (the pruning that keeps the all-a branch alive cannot be
  // extended — the trapped a-path already violates AF b).
  const RabinTreeAutomaton aut = aut_af_b();
  KTree two_path(binary(), 3, 0);
  two_path.set_label(0, kA);
  two_path.set_label(1, kA);
  two_path.set_label(2, kB);
  two_path.add_child(0, 1);
  two_path.add_child(0, 2);
  two_path.add_child(1, 1);
  two_path.add_child(1, 1);
  two_path.add_child(2, 2);
  two_path.add_child(2, 2);
  const RabinTreeAutomaton closure = rfcl(aut);
  EXPECT_TRUE(closure.accepts(two_path));                 // ∈ fcl(L)
  EXPECT_TRUE(trees::in_fcl(as_tree_property(aut, "af_b"), two_path, 3));
  EXPECT_FALSE(in_rncl_bounded(aut, two_path, 2));        // ∉ ncl(L)
  // Whereas the all-b tree is in both closures (it is in L itself).
  const KTree all_b = KTree::constant(binary(), kB, 2);
  EXPECT_TRUE(closure.accepts(all_b));
  EXPECT_TRUE(in_rncl_bounded(aut, all_b, 2));
}

TEST(Rncl, BoundedNclIsBelowBoundedFcl) {
  std::mt19937 rng(173);
  RandomRabinConfig config;
  config.num_states = 2;
  const auto corpus = binary_corpus();
  for (int i = 0; i < 10; ++i) {
    const RabinTreeAutomaton aut = random_rabin(config, rng);
    const auto prop = as_tree_property(aut, "random");
    for (const KTree& t : corpus) {
      if (in_rncl_bounded(aut, t, 2)) {
        EXPECT_TRUE(trees::in_fcl(prop, t, 2)) << i;
      }
    }
  }
}

TEST(States, NonemptyLanguagePerState) {
  // In aut_af_b every state has a non-empty language.
  const auto nonempty = aut_af_b().states_with_nonempty_language();
  EXPECT_TRUE(nonempty[0]);
  EXPECT_TRUE(nonempty[1]);
  // Add an unreachable dead state: its language is empty.
  RabinTreeAutomaton aut(binary(), 2, 3, 0);
  aut.add_transition(0, kA, {0, 0});
  aut.set_trivial_acceptance();
  const auto dead = aut.states_with_nonempty_language();
  EXPECT_TRUE(dead[0]);
  EXPECT_FALSE(dead[1]);
  EXPECT_FALSE(dead[2]);
}

}  // namespace
}  // namespace slat::rabin
