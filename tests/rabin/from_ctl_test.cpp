// CTL → Büchi tree automaton translation, differential-tested against the
// CTL model checker on regular-tree corpora (the strongest oracle we have:
// both sides are exact).
#include "rabin/from_ctl.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rabin/examples.hpp"
#include "trees/closures.hpp"

namespace slat::rabin {
namespace {

using trees::CtlArena;
using trees::KTree;

Alphabet binary() { return words::Alphabet::binary(); }

std::vector<KTree> corpus(int arity) {
  std::vector<KTree> out;
  for (int n = 1; n <= 2; ++n) {
    for (KTree& tree : trees::enumerate_regular_trees(binary(), n, arity, arity)) {
      bool duplicate = false;
      for (const KTree& existing : out) {
        if (existing.same_unfolding(tree)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) out.push_back(std::move(tree));
    }
  }
  // A few larger random trees for good measure.
  std::mt19937 rng(181);
  for (int i = 0; i < 6; ++i) {
    out.push_back(trees::random_regular_tree(binary(), 4, arity, rng));
  }
  return out;
}

class FromCtlFixture : public ::testing::Test {
 protected:
  CtlArena arena{binary()};

  void expect_matches_model_checker(const char* text, int branching) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    const RabinTreeAutomaton automaton = from_ctl(arena, *f, branching);
    for (const KTree& tree : corpus(branching)) {
      ASSERT_EQ(automaton.accepts(tree), trees::holds(arena, *f, tree))
          << text << " (k=" << branching << ") on\n"
          << tree.to_string();
    }
  }
};

TEST_F(FromCtlFixture, AtomsAndBooleans) {
  for (const char* text : {"true", "false", "a", "!a", "a | b", "a & !a"}) {
    expect_matches_model_checker(text, 2);
  }
}

TEST_F(FromCtlFixture, NextOperators) {
  for (const char* text : {"EX a", "AX a", "EX (a & AX b)", "AX EX a", "!EX a"}) {
    expect_matches_model_checker(text, 2);
  }
}

TEST_F(FromCtlFixture, EventuallyAndAlways) {
  for (const char* text : {"EF b", "AF b", "EG a", "AG a", "!AF b", "AG (a | b)",
                           "EF AG a", "AG EF b", "AF (a & EX b)"}) {
    expect_matches_model_checker(text, 2);
  }
}

TEST_F(FromCtlFixture, UntilAndRelease) {
  for (const char* text : {"E(a U b)", "A(a U b)", "E(a R b)", "A(a R b)",
                           "!E(a U b)", "E(a U AG b)", "A((a | b) U b)"}) {
    expect_matches_model_checker(text, 2);
  }
}

TEST_F(FromCtlFixture, UnaryTreesActLikeSequences) {
  for (const char* text : {"AF b", "AG a", "E(a U b)", "EX a", "AG (a -> AX b)"}) {
    expect_matches_model_checker(text, 1);
  }
}

TEST_F(FromCtlFixture, TernaryBranching) {
  for (const char* text : {"AF b", "EX a", "AG (a | b)"}) {
    expect_matches_model_checker(text, 3);
  }
}

TEST_F(FromCtlFixture, RemExamplesMatchHandBuiltAutomata) {
  // q1 and q3a/q3b analogues at k = 2: the generated automata must agree
  // with the hand-built ones from rabin/examples.hpp on the corpus.
  const struct {
    const char* formula;
    RabinTreeAutomaton hand;
  } cases[] = {
      {"a", aut_root_a()},
      {"AF b", aut_af_b()},
  };
  for (const auto& c : cases) {
    const auto f = arena.parse(c.formula);
    ASSERT_TRUE(f.has_value());
    const RabinTreeAutomaton generated = from_ctl(arena, *f, 2);
    for (const KTree& tree : corpus(2)) {
      EXPECT_EQ(generated.accepts(tree), c.hand.accepts(tree)) << c.formula;
    }
  }
}

TEST_F(FromCtlFixture, ClosureOfGeneratedQ3aIsQ1OnTheCorpus) {
  // fcl(q3a) = q1 — now with MACHINE-GENERATED automata end to end.
  const auto q3a = arena.parse("a & AF !a");
  const auto q1 = arena.parse("a");
  ASSERT_TRUE(q3a && q1);
  const RabinTreeAutomaton closure = rfcl(from_ctl(arena, *q3a, 2));
  const RabinTreeAutomaton automaton_q1 = from_ctl(arena, *q1, 2);
  for (const KTree& tree : corpus(2)) {
    EXPECT_EQ(closure.accepts(tree), automaton_q1.accepts(tree)) << tree.to_string();
  }
}

TEST_F(FromCtlFixture, StatsAreFilled) {
  CtlTranslationStats stats;
  const auto f = arena.parse("A(a U b) & EG a");
  ASSERT_TRUE(f.has_value());
  const RabinTreeAutomaton automaton = from_ctl(arena, *f, 2, &stats);
  EXPECT_GT(stats.alternating_states, 0);
  EXPECT_EQ(stats.nondeterministic_states, automaton.num_states());
  EXPECT_GT(stats.transitions, 0);
}

TEST_F(FromCtlFixture, EmptinessAndWitnesses) {
  // a & !a is unsatisfiable; AF b is satisfiable with a synthesizable witness.
  const RabinTreeAutomaton empty = from_ctl(arena, *arena.parse("a & !a"), 2);
  EXPECT_TRUE(empty.is_empty());
  const RabinTreeAutomaton af_b = from_ctl(arena, *arena.parse("AF b & EX a"), 2);
  const auto witness = af_b.find_accepted_tree();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(af_b.accepts(*witness));
  EXPECT_TRUE(trees::holds(arena, *arena.parse("AF b & EX a"), *witness));
}

}  // namespace
}  // namespace slat::rabin
