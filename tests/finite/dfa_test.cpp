#include "finite/dfa.hpp"

#include <gtest/gtest.h>

#include "ltl/translate.hpp"

namespace slat::finite {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

Alphabet binary() { return words::Alphabet::binary(); }

// DFA for "even number of a's" (no minimization possible: already minimal).
Dfa even_as() {
  Dfa dfa(binary(), 2, 0);
  dfa.set_accepting(0, true);
  dfa.set_transition(0, kA, 1);
  dfa.set_transition(0, kB, 0);
  dfa.set_transition(1, kA, 0);
  dfa.set_transition(1, kB, 1);
  return dfa;
}

TEST(Dfa, AcceptsRunsTheWord) {
  const Dfa dfa = even_as();
  EXPECT_TRUE(dfa.accepts({}));
  EXPECT_TRUE(dfa.accepts({kB, kB}));
  EXPECT_FALSE(dfa.accepts({kA}));
  EXPECT_TRUE(dfa.accepts({kA, kB, kA}));
}

TEST(Dfa, MinimizeMergesEquivalentStates) {
  // Same language as even_as but with a redundant duplicated state.
  Dfa bloated(binary(), 4, 0);
  bloated.set_accepting(0, true);
  bloated.set_accepting(2, true);  // clone of 0
  bloated.set_transition(0, kA, 1);
  bloated.set_transition(0, kB, 2);
  bloated.set_transition(2, kA, 3);
  bloated.set_transition(2, kB, 0);
  bloated.set_transition(1, kA, 2);
  bloated.set_transition(1, kB, 3);
  bloated.set_transition(3, kA, 0);
  bloated.set_transition(3, kB, 1);
  const Dfa minimal = bloated.minimize();
  EXPECT_EQ(minimal.num_states(), 2);
  EXPECT_TRUE(minimal.equivalent(even_as()));
  EXPECT_TRUE(minimal.equivalent(bloated));
}

TEST(Dfa, MinimizeDropsUnreachableStates) {
  Dfa dfa(binary(), 3, 0);
  dfa.set_accepting(0, true);
  dfa.set_transition(0, kA, 0);
  dfa.set_transition(0, kB, 0);
  dfa.set_transition(1, kA, 2);  // unreachable island
  dfa.set_transition(1, kB, 2);
  dfa.set_transition(2, kA, 1);
  dfa.set_transition(2, kB, 1);
  EXPECT_EQ(dfa.minimize().num_states(), 1);
}

TEST(Dfa, EquivalentDetectsDifferences) {
  Dfa always(binary(), 1, 0);
  always.set_accepting(0, true);
  always.set_transition(0, kA, 0);
  always.set_transition(0, kB, 0);
  EXPECT_FALSE(always.equivalent(even_as()));
  EXPECT_TRUE(always.equivalent(always));
}

TEST(Dfa, ShortestAcceptedWord) {
  // Language: words containing "ab".
  Dfa dfa(binary(), 3, 0);
  dfa.set_transition(0, kA, 1);
  dfa.set_transition(0, kB, 0);
  dfa.set_transition(1, kA, 1);
  dfa.set_transition(1, kB, 2);
  dfa.set_transition(2, kA, 2);
  dfa.set_transition(2, kB, 2);
  dfa.set_accepting(2, true);
  const auto word = dfa.shortest_accepted();
  ASSERT_TRUE(word.has_value());
  EXPECT_EQ(*word, (Word{kA, kB}));
  // Empty language: no accepted word.
  Dfa never(binary(), 1, 0);
  never.set_transition(0, kA, 0);
  never.set_transition(0, kB, 0);
  EXPECT_FALSE(never.shortest_accepted().has_value());
}

TEST(Dfa, ComplementFlipsMembership) {
  const Dfa dfa = even_as();
  const Dfa comp = dfa.complemented();
  for (const Word& w : {Word{}, Word{kA}, Word{kA, kA}, Word{kB, kA, kB}}) {
    EXPECT_NE(dfa.accepts(w), comp.accepts(w));
  }
}

// ---------------------------------------------------------------------------
// Bad-prefix / good-prefix DFAs from safety automata
// ---------------------------------------------------------------------------

class BadPrefixFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{binary()};

  buchi::DetSafety det(const char* text) {
    return buchi::DetSafety::from_nba(ltl::to_nba(arena, *arena.parse(text)));
  }
};

TEST_F(BadPrefixFixture, GaBadPrefixesAreWordsWithB) {
  const Dfa bad = bad_prefix_dfa(det("G a"));
  EXPECT_TRUE(bad.is_extension_closed());  // bad prefixes stay bad
  EXPECT_FALSE(bad.accepts({}));
  EXPECT_FALSE(bad.accepts({kA, kA}));
  EXPECT_TRUE(bad.accepts({kB}));
  EXPECT_TRUE(bad.accepts({kA, kB, kA}));
  EXPECT_EQ(*bad.shortest_accepted(), (Word{kB}));
  EXPECT_EQ(bad.num_states(), 2);  // minimal: safe / dead
}

TEST_F(BadPrefixFixture, GoodAndBadAreComplements) {
  for (const char* text : {"G a", "a & F !a", "G (a -> X !a)", "a U b"}) {
    const Dfa good = good_prefix_dfa(det(text));
    const Dfa bad = bad_prefix_dfa(det(text));
    EXPECT_TRUE(good.equivalent(bad.complemented())) << text;
    EXPECT_TRUE(bad.is_extension_closed()) << text;
  }
}

TEST_F(BadPrefixFixture, LivenessHasNoBadPrefixes) {
  const Dfa bad = bad_prefix_dfa(det("G F a"));
  EXPECT_FALSE(bad.shortest_accepted().has_value());
  EXPECT_EQ(bad.num_states(), 1);  // minimal: everything good
}

TEST_F(BadPrefixFixture, MinimizationNeverGrowsTheMonitor) {
  for (const char* text : {"G a", "a & F !a", "G (a -> X !a)", "G (a | X a)"}) {
    const buchi::DetSafety raw = det(text);
    const Dfa minimal = good_prefix_dfa(raw);
    EXPECT_LE(minimal.num_states(), raw.num_states()) << text;
    // And agrees with the raw safety automaton on prefixes.
    for (const Word& w :
         {Word{}, Word{kA}, Word{kB}, Word{kA, kB}, Word{kA, kA, kB, kA}}) {
      EXPECT_EQ(minimal.accepts(w), raw.accepts_prefix(w)) << text;
    }
  }
}

TEST_F(BadPrefixFixture, ShortestBadPrefixIsTheEarliestViolationWitness) {
  // For G (a -> X !a), the earliest violation is "aa".
  const Dfa bad = bad_prefix_dfa(det("G (a -> X !a)"));
  EXPECT_EQ(*bad.shortest_accepted(), (Word{kA, kA}));
}

}  // namespace
}  // namespace slat::finite
