// Stream-stability regression: the PR10 quantitative generators draw their
// randomness from FRESH named streams, so every pre-existing generator must
// keep producing byte-identical artifacts at a pinned seed. The constants
// below were recorded before the quant generators landed; if one of these
// fails, a generator's consumption pattern changed and every corpus seed
// and SLAT_SEED repro line in the wild silently points at different inputs.
//
// (The draws are std::mt19937 + std distributions, so the pins hold for
// this repo's single-toolchain CI — the same caveat gen.hpp documents.)
#include <gtest/gtest.h>

#include <random>

#include "buchi/nba.hpp"
#include "ltl/formula.hpp"
#include "qc/driver.hpp"
#include "qc/gen.hpp"
#include "qc/gtest_seed.hpp"
#include "qc/seed.hpp"
#include "quant/weighted.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"
#include "trees/ktree.hpp"
#include "words/up_word.hpp"

namespace slat::qc {
namespace {

TEST(GenRegression, NbaDrawsArePinned) {
  const std::pair<std::uint64_t, const char*> pins[] = {
      {1, "f164c1ef2c11db48ba0d6b00fb4725db"},
      {2, "6fb96797f001aa492de0acfe5b1671ca"},
      {3, "93053c7c4497a269334788b2e03c95e4"},
  };
  for (const auto& [seed, hex] : pins) {
    std::mt19937 rng = make_rng(seed);
    EXPECT_EQ(digest_hex(buchi::fingerprint(arbitrary_nba({})(rng))), hex)
        << "seed " << seed;
  }
}

TEST(GenRegression, UpWordDrawsArePinned) {
  std::mt19937 rng = make_rng(std::uint64_t{7});
  const words::Alphabet sigma = words::Alphabet::of_size(2);
  // Two consecutive draws pin the per-draw consumption, not just the first.
  EXPECT_EQ(arbitrary_up_word({})(rng).to_string(sigma), "s0(s1)^w");
  EXPECT_EQ(arbitrary_up_word({})(rng).to_string(sigma), "(s0)^w");
}

TEST(GenRegression, RabinDrawIsPinned) {
  std::mt19937 rng = make_rng(std::uint64_t{11});
  EXPECT_EQ(digest_hex(rabin::fingerprint(arbitrary_rabin({})(rng))),
            "a3faa543c708be61341999111ebec5ae");
}

TEST(GenRegression, LatticeDrawsArePinned) {
  std::mt19937 rng = make_rng(std::uint64_t{13});
  EXPECT_EQ(random_lattice(3, rng).size(), 2);
  EXPECT_EQ(digest_hex(random_lattice(3, rng).content_digest()),
            "cc8a485c3c488cca03f8a70cb7a5589f");
}

TEST(GenRegression, FormulaDrawsArePinned) {
  {
    std::mt19937 rng = make_rng(std::uint64_t{17});
    ltl::LtlArena arena(words::Alphabet::of_aps({"p", "q"}));
    EXPECT_EQ(arena.to_string(random_formula(arena, 3, rng)), "false");
  }
  {
    std::mt19937 rng = make_rng(std::uint64_t{19});
    trees::CtlArena arena(words::Alphabet::of_aps({"p", "q"}));
    EXPECT_EQ(arena.to_string(random_ctl(arena, 3, rng)), "AX EX v00");
  }
}

TEST(GenRegression, KTreeDrawIsPinned) {
  std::mt19937 rng = make_rng(std::uint64_t{23});
  EXPECT_EQ(arbitrary_ktree({})(rng).to_string(),
            "KTree root=0\n  0 [s0] -> (0, 0)\n  1 [s0] -> (0, 1)\n");
}

// The new quant generators themselves: deterministic, and structurally
// riding on arbitrary_nba (same skeleton stream) with weights layered on
// top from the SAME rng — pinned indirectly through the structure digest.
TEST(GenRegression, WeightedNbaIsDeterministic) {
  const Gen<quant::WeightedNba> gen = arbitrary_weighted_nba({});
  std::mt19937 rng1 = make_rng(std::uint64_t{29});
  std::mt19937 rng2 = make_rng(std::uint64_t{29});
  EXPECT_EQ(quant::fingerprint(gen(rng1)), quant::fingerprint(gen(rng2)));
  std::mt19937 rng3 = make_rng(std::uint64_t{31});
  EXPECT_NE(quant::fingerprint(gen(rng1)), quant::fingerprint(gen(rng3)));
}

}  // namespace
}  // namespace slat::qc
