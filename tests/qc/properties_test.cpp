// The oracle library itself: the registry is well-formed, every property
// passes a bounded deterministic sweep (the real volume lives in the
// fuzz-smoke tier and fuzz_slat runs), and failing trials replay exactly.
#include <gtest/gtest.h>

#include <set>

#include "qc/gtest_seed.hpp"
#include "qc/properties.hpp"
#include "qc/seed.hpp"

namespace slat::qc {
namespace {

TEST(Properties, RegistryIsWellFormed) {
  const auto& all = properties();
  EXPECT_GE(all.size(), 15u);
  std::set<std::string> names;
  for (const Property& p : all) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.paper_ref.empty());
    EXPECT_GE(p.weight, 1);
    EXPECT_NE(p.trial, nullptr);
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate name " << p.name;
  }
}

TEST(Properties, LookupByName) {
  ASSERT_NE(find_property("buchi.lcl.extensive"), nullptr);
  EXPECT_EQ(find_property("buchi.lcl.extensive")->name, "buchi.lcl.extensive");
  EXPECT_EQ(find_property("no.such.property"), nullptr);
}

TEST(Properties, EveryPropertyPassesABoundedSweep) {
  for (const Property& p : properties()) {
    for (int i = 0; i < 8; ++i) {
      const std::uint64_t trial_seed =
          derive(seed(), p.name + ":properties_test:" + std::to_string(i));
      const PropertyResult result = p.trial(trial_seed);
      EXPECT_TRUE(result.ok) << p.name << " failed (trial_seed=" << trial_seed
                             << "):\n"
                             << result.message;
    }
  }
}

TEST(Properties, TrialsAreSeedDeterministic) {
  // Same (property, trial_seed) → same verdict and same report; this is
  // what makes a corpus entry a complete bug reproduction.
  for (const Property& p : properties()) {
    const std::uint64_t trial_seed = derive(seed(), p.name + ":determinism");
    const PropertyResult a = p.trial(trial_seed);
    const PropertyResult b = p.trial(trial_seed);
    EXPECT_EQ(a.ok, b.ok) << p.name;
    EXPECT_EQ(a.message, b.message) << p.name;
    EXPECT_EQ(a.digest, b.digest) << p.name;
  }
}

}  // namespace
}  // namespace slat::qc
