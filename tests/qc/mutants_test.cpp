// The mutant bank: ≥ 38 deliberately-broken constructions spanning the
// LTL, Büchi, lattice, Rabin/CTL and quantitative pipelines, with a 100%
// kill rate.
#include <gtest/gtest.h>

#include <set>

#include "qc/gtest_seed.hpp"
#include "qc/mutants.hpp"

namespace slat::qc {
namespace {

TEST(Mutants, BankIsLargeEnoughAndNamed) {
  const auto& bank = mutants();
  EXPECT_GE(bank.size(), 38u);
  std::set<std::string> names;
  for (const Mutant& m : bank) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_FALSE(m.corrupts.empty());
    EXPECT_TRUE(names.insert(m.name).second) << "duplicate name " << m.name;
  }
}

TEST(Mutants, SpansAllFourPipelines) {
  std::set<std::string> pipelines;
  for (const Mutant& m : mutants()) pipelines.insert(m.pipeline);
  EXPECT_TRUE(pipelines.count("buchi"));
  EXPECT_TRUE(pipelines.count("ltl"));
  EXPECT_TRUE(pipelines.count("lattice"));
  EXPECT_TRUE(pipelines.count("rabin"));
  EXPECT_TRUE(pipelines.count("ctl"));
  EXPECT_TRUE(pipelines.count("quant"));
}

TEST(Mutants, HundredPercentKillRate) {
  for (const Mutant& m : mutants()) {
    EXPECT_TRUE(m.killed()) << "mutant survived: " << m.name
                            << " (corrupts: " << m.corrupts << ")";
  }
}

}  // namespace
}  // namespace slat::qc
