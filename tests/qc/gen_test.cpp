// The generator layer: seed-determinism, domain bounds, and structural
// well-formedness of every arbitrary_* generator.
#include <gtest/gtest.h>

#include "buchi/nba.hpp"
#include "lattice/closure.hpp"
#include "lattice/finite_lattice.hpp"
#include "ltl/formula.hpp"
#include "qc/gen.hpp"
#include "qc/gtest_seed.hpp"
#include "qc/seed.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ctl.hpp"

namespace slat::qc {
namespace {

TEST(Seed, SplitmixIsDeterministicAndMixing) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(Seed, DeriveSeparatesStreams) {
  const std::uint64_t base = 12345;
  EXPECT_EQ(derive(base, "alpha"), derive(base, "alpha"));
  EXPECT_NE(derive(base, "alpha"), derive(base, "beta"));
  EXPECT_NE(derive(base, "alpha"), derive(base + 1, "alpha"));
  // Length-suffixed hashing: concatenation boundaries matter.
  EXPECT_NE(derive(base, "ab"), derive(base, "a"));
}

TEST(Seed, NamedRngsAreIndependentOfCallOrder) {
  std::mt19937 first_a = make_rng("stream-a");
  (void)first_a();
  std::mt19937 second_a = make_rng("stream-a");
  std::mt19937 fresh_a = make_rng("stream-a");
  EXPECT_EQ(second_a(), fresh_a());
}

TEST(GenNba, SameSeedSameAutomaton) {
  const Gen<buchi::Nba> gen = arbitrary_nba({});
  std::mt19937 rng1 = make_rng(std::uint64_t{7});
  std::mt19937 rng2 = make_rng(std::uint64_t{7});
  EXPECT_EQ(buchi::fingerprint(gen(rng1)), buchi::fingerprint(gen(rng2)));
}

TEST(GenNba, RespectsDomainBounds) {
  const NbaDomain domain{3, 5, 2, 2, 0.5, 1.5, 0.2, 0.6};
  const Gen<buchi::Nba> gen = arbitrary_nba(domain);
  std::mt19937 rng = make_rng("gen_test.nba.bounds");
  for (int i = 0; i < 50; ++i) {
    const buchi::Nba nba = gen(rng);
    EXPECT_GE(nba.num_states(), 3);
    EXPECT_LE(nba.num_states(), 5);
    EXPECT_EQ(nba.alphabet().size(), 2);
    EXPECT_GE(nba.initial(), 0);
    EXPECT_LT(nba.initial(), nba.num_states());
  }
}

TEST(GenUpWord, WellFormed) {
  const Gen<words::UpWord> gen = arbitrary_up_word({2, 4, 4});
  std::mt19937 rng = make_rng("gen_test.upword");
  for (int i = 0; i < 50; ++i) {
    const words::UpWord w = gen(rng);
    EXPECT_FALSE(w.period().empty());
    EXPECT_TRUE(w.is_normalized());
    for (std::size_t p = 0; p < 8; ++p) {
      EXPECT_GE(w.at(p), 0);
      EXPECT_LT(w.at(p), 2);
    }
  }
}

TEST(GenFormula, DeterministicAndInAlphabet) {
  ltl::LtlArena arena1(words::Alphabet::binary());
  ltl::LtlArena arena2(words::Alphabet::binary());
  std::mt19937 rng1 = make_rng(std::uint64_t{99});
  std::mt19937 rng2 = make_rng(std::uint64_t{99});
  const ltl::FormulaId f1 = random_formula(arena1, 3, rng1);
  const ltl::FormulaId f2 = random_formula(arena2, 3, rng2);
  EXPECT_EQ(arena1.to_string(f1), arena2.to_string(f2));
}

TEST(GenCtl, Deterministic) {
  trees::CtlArena arena1(words::Alphabet::binary());
  trees::CtlArena arena2(words::Alphabet::binary());
  std::mt19937 rng1 = make_rng(std::uint64_t{5});
  std::mt19937 rng2 = make_rng(std::uint64_t{5});
  EXPECT_EQ(arena1.to_string(random_ctl(arena1, 2, rng1)),
            arena2.to_string(random_ctl(arena2, 2, rng2)));
}

TEST(GenRabin, WellFormed) {
  const Gen<rabin::RabinTreeAutomaton> gen = arbitrary_rabin({2, 4, 2, 2, 1, 2});
  std::mt19937 rng = make_rng("gen_test.rabin");
  for (int i = 0; i < 20; ++i) {
    const rabin::RabinTreeAutomaton automaton = gen(rng);
    EXPECT_GE(automaton.num_states(), 2);
    EXPECT_LE(automaton.num_states(), 4);
    EXPECT_GE(automaton.num_pairs(), 1);
    EXPECT_LE(automaton.num_pairs(), 2);
    EXPECT_EQ(automaton.branching(), 2);
  }
}

TEST(GenLattice, ProducesGenuineLatticesWithValidClosures) {
  std::mt19937 rng = make_rng("gen_test.lattice");
  for (int i = 0; i < 30; ++i) {
    const lattice::FiniteLattice lat = random_lattice(3, rng);
    EXPECT_GE(lat.size(), 1);
    EXPECT_LE(lat.size(), 8);
    const lattice::LatticeClosure cl = random_closure(lat, rng);
    std::vector<lattice::Elem> map;
    for (lattice::Elem a = 0; a < lat.size(); ++a) map.push_back(cl.apply(a));
    EXPECT_EQ(lattice::LatticeClosure::violation(lat, map), std::nullopt);
  }
}

TEST(GenLattice, ClosurePairsSatisfyTheorem3Hypothesis) {
  std::mt19937 rng = make_rng("gen_test.closure_pair");
  for (int i = 0; i < 30; ++i) {
    const lattice::FiniteLattice lat = random_lattice(3, rng);
    const auto [cl1, cl2] = random_closure_pair(lat, rng);
    EXPECT_TRUE(cl1.pointwise_leq(cl2));
  }
}

}  // namespace
}  // namespace slat::qc
