// The fuzz driver loop in-process: determinism, corpus round-trips, flag
// semantics (property filter, mutants-only), and the digest/corpus key
// format.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "qc/driver.hpp"
#include "qc/gtest_seed.hpp"
#include "qc/mutants.hpp"
#include "qc/properties.hpp"
#include "qc/seed.hpp"

namespace slat::qc {
namespace {

namespace fs = std::filesystem;

/// A fresh scratch corpus directory, removed on scope exit.
struct ScratchCorpus {
  fs::path dir;
  explicit ScratchCorpus(const char* tag)
      : dir(fs::temp_directory_path() /
            (std::string("slat_qc_driver_test_") + tag)) {
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  ~ScratchCorpus() { fs::remove_all(dir); }
};

TEST(Driver, DigestHexIs32Chars) {
  core::Digest d;
  d.hi = 0x0123456789abcdefULL;
  d.lo = 0xfedcba9876543210ULL;
  EXPECT_EQ(digest_hex(d), "0123456789abcdeffedcba9876543210");
}

TEST(Driver, ResolveCorpusDirPrefersExplicitOption) {
  FuzzOptions options;
  options.corpus_dir = "/tmp/explicit";
  EXPECT_EQ(resolve_corpus_dir(options), "/tmp/explicit");
  options.corpus_dir = "-";
  EXPECT_EQ(resolve_corpus_dir(options), "-");
}

TEST(Driver, SmallSweepIsCleanAndDeterministic) {
  FuzzOptions options;
  options.runs = 40;
  options.base_seed = 20030713;
  options.corpus_dir = "-";
  options.run_mutants = false;
  std::ostringstream out1, out2;
  const FuzzReport r1 = run_fuzz(options, out1);
  const FuzzReport r2 = run_fuzz(options, out2);
  EXPECT_TRUE(r1.clean()) << out1.str();
  EXPECT_EQ(r1.trials, 40);
  EXPECT_EQ(out1.str(), out2.str());
}

TEST(Driver, MutantsOnlyRunsTheWholeBank) {
  FuzzOptions options;
  options.run_properties = false;
  options.corpus_dir = "-";
  std::ostringstream out;
  const FuzzReport report = run_fuzz(options, out);
  EXPECT_EQ(report.trials, 0);
  EXPECT_EQ(report.mutants_total, static_cast<int>(mutants().size()));
  EXPECT_EQ(report.mutants_killed, report.mutants_total) << out.str();
}

TEST(Driver, PropertyFilterRestrictsTheSweep) {
  FuzzOptions options;
  options.runs = 10;
  options.base_seed = 7;
  options.only_property = "words.upword.laws";
  options.corpus_dir = "-";
  options.run_mutants = false;
  options.verbose = true;
  std::ostringstream out;
  const FuzzReport report = run_fuzz(options, out);
  EXPECT_TRUE(report.clean()) << out.str();
  EXPECT_EQ(report.trials, 10);
  EXPECT_NE(out.str().find("words.upword.laws: 10 trials"), std::string::npos)
      << out.str();
}

TEST(Driver, CorpusEntriesReplayFirst) {
  ScratchCorpus scratch("replay");
  // A hand-written corpus entry for a real property: the driver must replay
  // it (it passes — properties are sound) and report it as now-passing.
  {
    std::ofstream entry(scratch.dir / "00000000000000000000000000000001.corpus");
    entry << "property=buchi.lcl.extensive\n";
    entry << "trial_seed=12345\n";
    entry << "# historical failure report\n";
  }
  // Unknown properties are skipped, not fatal (bank evolves over time).
  {
    std::ofstream entry(scratch.dir / "00000000000000000000000000000002.corpus");
    entry << "property=does.not.exist\n";
    entry << "trial_seed=1\n";
  }
  FuzzOptions options;
  options.runs = 0;
  options.base_seed = 99;
  options.corpus_dir = scratch.dir.string();
  options.run_mutants = false;
  std::ostringstream out;
  const FuzzReport report = run_fuzz(options, out);
  EXPECT_EQ(report.corpus_replayed, 1) << out.str();
  EXPECT_EQ(report.corpus_now_passing, 1);
  EXPECT_TRUE(report.failures.empty());
}

TEST(Driver, TimeBudgetStopsTheSweep) {
  FuzzOptions options;
  options.runs = 1000000;
  options.base_seed = 3;
  options.corpus_dir = "-";
  options.run_mutants = false;
  options.time_budget_seconds = 0.05;
  std::ostringstream out;
  const FuzzReport report = run_fuzz(options, out);
  EXPECT_LT(report.trials, 1000000) << "time budget never triggered";
}

}  // namespace
}  // namespace slat::qc
