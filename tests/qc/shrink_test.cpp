// The shrinker: every one-step candidate stays well-formed, and the greedy
// descent actually minimizes — a planted bug in a 12-state NBA must come
// back as an automaton of at most 4 states.
#include <gtest/gtest.h>

#include <cmath>

#include "buchi/nba.hpp"
#include "qc/gen.hpp"
#include "quant/eval.hpp"
#include "qc/gtest_seed.hpp"
#include "qc/seed.hpp"
#include "qc/shrink.hpp"
#include "words/up_word.hpp"

namespace slat::qc {
namespace {

using buchi::Nba;
using words::UpWord;
using words::Word;

// Structural invariants every candidate must keep. Acceptance is separate:
// the Büchi domain requires ≥ 1 accepting state, while the quantitative
// semantics ignore acceptance marks entirely (weights carry them instead),
// so weighted candidates may legitimately drop the last accepting state.
void expect_structurally_sound(const Nba& nba) {
  ASSERT_GE(nba.num_states(), 1);
  EXPECT_GE(nba.initial(), 0);
  EXPECT_LT(nba.initial(), nba.num_states());
  EXPECT_GE(nba.alphabet().size(), 1);
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    for (words::Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (buchi::State to : nba.successors(q, s)) {
        EXPECT_GE(to, 0);
        EXPECT_LT(to, nba.num_states());
      }
    }
  }
}

void expect_well_formed(const Nba& nba) {
  expect_structurally_sound(nba);
  EXPECT_GE(nba.num_accepting(), 1);
}

TEST(ShrinkNba, CandidatesPreserveWellFormedness) {
  std::mt19937 rng = make_rng("shrink_test.nba.wf");
  const Gen<Nba> gen = arbitrary_nba({2, 6, 2, 3, 0.5, 1.5, 0.3, 0.7});
  for (int i = 0; i < 25; ++i) {
    const Nba nba = gen(rng);
    for (const Nba& candidate : shrink_steps(nba)) {
      expect_well_formed(candidate);
      // Every candidate is strictly "smaller or equal" structurally.
      EXPECT_LE(candidate.num_states(), nba.num_states());
    }
  }
}

TEST(ShrinkNba, PlantedBugShrinksToAtMostFourStates) {
  // 12 states of decoy structure: an a-cycle through all states, plus the
  // planted bug — state 0 accepts b^ω via a self-loop. The "failure" is
  // accepting b^ω; the minimal witness automaton needs one state.
  Nba nba(words::Alphabet::binary(), 12, 0);
  nba.set_accepting(0, true);
  nba.set_accepting(11, true);
  for (buchi::State q = 0; q < 12; ++q) {
    nba.add_transition(q, 0, (q + 1) % 12);
  }
  nba.add_transition(0, 1, 0);  // the planted bug
  const UpWord b_omega({}, {1});
  ASSERT_TRUE(nba.accepts(b_omega));

  // Guard against alphabet-shrinking candidates: b_omega uses symbol 1, so
  // a candidate restricted to a unary alphabet cannot run it.
  const Nba shrunk = shrink_nba(nba, [&](const Nba& c) {
    return c.alphabet().size() == 2 && c.accepts(b_omega);
  });
  EXPECT_TRUE(shrunk.accepts(b_omega));
  EXPECT_LE(shrunk.num_states(), 4);
  expect_well_formed(shrunk);
}

TEST(ShrinkUpWord, MinimizesAgainstPredicate) {
  // Failure: "the period contains a b". Minimal: empty prefix, period "b".
  const UpWord w({0, 1, 0}, {0, 1, 0, 1});
  const auto still_fails = [](const UpWord& u) {
    for (const auto s : u.period()) {
      if (s == 1) return true;
    }
    return false;
  };
  const UpWord shrunk = shrink_up_word(w, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_TRUE(shrunk.prefix().empty());
  EXPECT_EQ(shrunk.period().size(), 1u);
  EXPECT_EQ(shrunk.period()[0], 1);
}

TEST(ShrinkUpWord, CandidatesKeepPeriodNonEmpty) {
  std::mt19937 rng = make_rng("shrink_test.upword.wf");
  const Gen<UpWord> gen = arbitrary_up_word({2, 4, 4});
  for (int i = 0; i < 40; ++i) {
    for (const UpWord& candidate : shrink_steps(gen(rng))) {
      EXPECT_FALSE(candidate.period().empty());
    }
  }
}

TEST(ShrinkRabin, CandidatesPreserveWellFormedness) {
  std::mt19937 rng = make_rng("shrink_test.rabin.wf");
  const Gen<rabin::RabinTreeAutomaton> gen = arbitrary_rabin({2, 4, 2, 2, 1, 2});
  for (int i = 0; i < 15; ++i) {
    const rabin::RabinTreeAutomaton automaton = gen(rng);
    for (const rabin::RabinTreeAutomaton& c : shrink_steps(automaton)) {
      EXPECT_GE(c.num_states(), 1);
      EXPECT_GE(c.initial(), 0);
      EXPECT_LT(c.initial(), c.num_states());
      EXPECT_GE(c.num_pairs(), 1);
      for (rabin::State q = 0; q < c.num_states(); ++q) {
        for (words::Sym s = 0; s < c.alphabet().size(); ++s) {
          for (const rabin::Tuple& tuple : c.transitions(q, s)) {
            ASSERT_EQ(static_cast<int>(tuple.size()), c.branching());
            for (rabin::State t : tuple) {
              EXPECT_GE(t, 0);
              EXPECT_LT(t, c.num_states());
            }
          }
        }
      }
    }
  }
}

TEST(ShrinkFormula, DescendsToSubformula) {
  ltl::LtlArena arena(words::Alphabet::binary());
  // F (a ∧ X b), failure = "mentions b". Minimal failing formula: b itself.
  const ltl::FormulaId inner = arena.conj(arena.atom(0), arena.next(arena.atom(1)));
  const ltl::FormulaId f = arena.eventually(inner);
  const std::function<bool(ltl::FormulaId)> mentions_b = [&](ltl::FormulaId g) {
    const auto& node = arena.node(g);
    if (node.op == ltl::Op::kAtom && node.atom == 1) return true;
    return (node.lhs >= 0 && mentions_b(node.lhs)) ||
           (node.rhs >= 0 && mentions_b(node.rhs));
  };
  const ltl::FormulaId shrunk = shrink_formula(arena, f, mentions_b);
  EXPECT_EQ(arena.to_string(shrunk), arena.to_string(arena.atom(1)));
}

TEST(ShrinkWeighted, CandidatesPreserveWellFormednessAndDomain) {
  std::mt19937 rng = make_rng("shrink_test.weighted.wf");
  const Gen<quant::WeightedNba> gen =
      arbitrary_weighted_nba({{2, 6, 2, 3, 0.5, 1.5, 0.3, 0.7}});
  for (int i = 0; i < 25; ++i) {
    const quant::WeightedNba aut = gen(rng);
    for (const quant::WeightedNba& c : shrink_steps(aut)) {
      expect_structurally_sound(c.nba());
      // Value function, discount and weight domain survive every step, and
      // every weight stays inside the domain.
      EXPECT_EQ(c.value_fn(), aut.value_fn());
      EXPECT_EQ(c.discount(), aut.discount());
      EXPECT_EQ(c.domain_min(), aut.domain_min());
      EXPECT_EQ(c.domain_max(), aut.domain_max());
      EXPECT_LE(c.nba().num_states(), aut.nba().num_states());
      for (buchi::State q = 0; q < c.nba().num_states(); ++q) {
        for (words::Sym s = 0; s < c.nba().alphabet().size(); ++s) {
          for (const double w : c.weights(q, s)) {
            EXPECT_GE(w, c.domain_min());
            EXPECT_LE(w, c.domain_max());
          }
        }
      }
    }
  }
}

TEST(ShrinkWeighted, PlantedBugShrinksAndStillFails) {
  // 8 states of decoy a-cycle at weight ¼, plus the planted bug: a
  // weight-1 b-self-loop on state 0. The "failure" is Φ(b^ω) = 1 under
  // Sup; the minimal witness is one state with one b-loop.
  quant::WeightedNba aut(words::Alphabet::binary(), 8, 0, quant::ValueFn::kSup);
  aut.nba().set_accepting(0, true);
  for (buchi::State q = 0; q < 8; ++q) {
    aut.add_transition(q, 0, (q + 1) % 8, 0.25);
  }
  aut.add_transition(0, 1, 0, 1.0);  // the planted bug
  const UpWord b_omega({}, {1});
  const auto still_fails = [&](const quant::WeightedNba& c) {
    return c.nba().alphabet().size() == 2 && quant::value(c, b_omega) == 1.0;
  };
  ASSERT_TRUE(still_fails(aut));
  const quant::WeightedNba shrunk = shrink_weighted_nba(aut, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_LE(shrunk.nba().num_states(), 2);
  expect_structurally_sound(shrunk.nba());
}

TEST(ShrinkWeightLasso, MinimizesAgainstPredicate) {
  // Failure: "some period weight is ≥ ½". Minimal: no prefix, period [½].
  const quant::WeightLasso lasso{{0.25, 1.0}, {0.75, 0.0, 0.5}};
  const auto still_fails = [](const quant::WeightLasso& l) {
    for (const double w : l.period) {
      if (w >= 0.5) return true;
    }
    return false;
  };
  const quant::WeightLasso shrunk = shrink_weight_lasso(lasso, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  EXPECT_TRUE(shrunk.prefix.empty());
  EXPECT_EQ(shrunk.period.size(), 1u);
}

TEST(ShrinkWeightLasso, CandidatesKeepPeriodNonEmptyAndOnGrid) {
  std::mt19937 rng = make_rng("shrink_test.lasso.wf");
  const Gen<quant::WeightLasso> gen = arbitrary_weight_lasso({4, 4, 8});
  for (int i = 0; i < 40; ++i) {
    for (const quant::WeightLasso& c : shrink_steps(gen(rng))) {
      EXPECT_FALSE(c.period.empty());
      for (const double w : c.period) {
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
        // Candidates stay on the dyadic grid (lowering goes to 0 exactly).
        EXPECT_EQ(w * 8.0, std::round(w * 8.0));
      }
    }
  }
}

TEST(ShrinkGeneric, BudgetBoundsPlateaus) {
  // A step function that returns the same value forever must terminate via
  // the budget, not loop.
  int calls = 0;
  const int result = shrink<int>(
      5, [](const int& v) { return std::vector<int>{v}; },
      [&calls](const int&) {
        ++calls;
        return true;
      },
      /*max_steps=*/50);
  EXPECT_EQ(result, 5);
  EXPECT_LE(calls, 50);
}

}  // namespace
}  // namespace slat::qc
