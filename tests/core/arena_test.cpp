// Unit tests for the monotone bump-pointer Arena (core/arena.hpp): alignment
// of every block, reset-reuse of backing chunks, oversized single
// allocations, and zero-fill of alloc_words. The ASan preset runs these too,
// which is what actually checks the bump arithmetic never hands out
// overlapping or out-of-chunk memory.
#include "core/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace slat::core {
namespace {

bool is_max_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t) == 0;
}

TEST(Arena, EveryBlockIsMaxAligned) {
  Arena arena(256);  // tiny chunks force frequent chunk boundaries
  for (int i = 1; i <= 200; ++i) {
    void* p = arena.allocate(i);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(is_max_aligned(p)) << "allocation " << i;
  }
}

TEST(Arena, BlocksDoNotOverlap) {
  Arena arena(128);
  std::vector<std::uint64_t*> blocks;
  // Write a distinct pattern into each block; any overlap (or a rewound
  // bump pointer) would corrupt an earlier block's pattern.
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto* words = arena.alloc_array<std::uint64_t>(3);
    for (int w = 0; w < 3; ++w) words[w] = i * 1000 + w;
    blocks.push_back(words);
  }
  for (std::uint64_t i = 0; i < 100; ++i) {
    for (int w = 0; w < 3; ++w) {
      EXPECT_EQ(blocks[i][w], i * 1000 + w) << "block " << i;
    }
  }
}

TEST(Arena, ResetKeepsChunksAndReusesMemory) {
  Arena arena(1024);
  void* first = arena.allocate(512);
  arena.allocate(512);
  arena.allocate(512);  // forces a second chunk
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  EXPECT_GE(arena.bytes_allocated(), 3 * 512u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // chunks kept

  // The first allocation after reset lands back on the first chunk.
  void* again = arena.allocate(512);
  EXPECT_EQ(again, first);
  // Refilling the same volume must not grow the backing store.
  arena.allocate(512);
  arena.allocate(512);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, LargeSingleAllocationGetsDedicatedChunk) {
  Arena arena(64);
  arena.allocate(16);  // start the small first chunk
  const std::size_t big = std::size_t{1} << 22;  // 4 MiB ≫ chunk seed
  auto* block = static_cast<std::byte*>(arena.allocate(big));
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(is_max_aligned(block));
  // The whole span must be writable (ASan verifies the bounds).
  std::memset(block, 0xab, big);
  EXPECT_EQ(static_cast<unsigned char>(block[big - 1]), 0xabu);
  EXPECT_GE(arena.bytes_reserved(), big);
}

TEST(Arena, AllocWordsZeroFills) {
  Arena arena(256);
  // Dirty a block, reset, and re-allocate the same memory: alloc_words must
  // hand it back zeroed even though the arena recycles chunks.
  auto* dirty = arena.alloc_array<std::uint64_t>(32);
  for (int w = 0; w < 32; ++w) dirty[w] = ~std::uint64_t{0};
  arena.reset();
  const std::uint64_t* words = arena.alloc_words(32);
  for (int w = 0; w < 32; ++w) EXPECT_EQ(words[w], 0u) << "word " << w;
}

TEST(Arena, ZeroByteAllocationIsValid) {
  Arena arena;
  void* p = arena.allocate(0);
  EXPECT_NE(p, nullptr);
  // And must not collide with a following allocation's writes.
  auto* q = arena.alloc_array<std::uint64_t>(1);
  *q = 42;
  EXPECT_EQ(*q, 42u);
}

}  // namespace
}  // namespace slat::core
