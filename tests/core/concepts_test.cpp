// The generic framework: laws and decomposition on three very different
// instances of the same concepts.
#include "core/concepts.hpp"

#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/random.hpp"
#include "core/instances.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "ltl/translate.hpp"

namespace slat::core {
namespace {

static_assert(BoundedLattice<PowersetOps>);
static_assert(ComplementedLattice<PowersetOps>);
static_assert(BoundedLattice<FiniteLatticeOps>);
static_assert(ComplementedLattice<FiniteLatticeOps>);
static_assert(BoundedLattice<OmegaRegularOps>);
static_assert(ComplementedLattice<OmegaRegularOps>);
static_assert(ClosureFor<LclClosureFn, OmegaRegularOps>);

// ---------------------------------------------------------------------------
// PowersetOps
// ---------------------------------------------------------------------------

std::vector<std::uint32_t> all_subsets(const PowersetOps& ops) {
  std::vector<std::uint32_t> out;
  for (std::uint32_t mask = 0; mask <= ops.top(); ++mask) out.push_back(mask);
  return out;
}

TEST(PowersetInstance, LatticeLawsHold) {
  const PowersetOps ops(4);
  const auto samples = all_subsets(ops);
  EXPECT_TRUE(lattice_laws_hold(ops, samples));
  EXPECT_TRUE(modularity_holds(ops, samples));
}

TEST(PowersetInstance, ClosureFromSupersetFamilyAndDecomposition) {
  const PowersetOps ops(4);
  // Closure: the up-closure to the smallest superset containing bit 0.
  const auto cl = [&](std::uint32_t a) { return a | 1u; };
  const auto samples = all_subsets(ops);
  EXPECT_TRUE(closure_laws_hold(ops, cl, samples));
  for (std::uint32_t a : samples) {
    const auto d = decompose(ops, cl, a);
    EXPECT_TRUE(decomposition_valid(ops, cl, cl, a, d)) << a;
  }
}

TEST(PowersetInstance, SafetyAndLivenessElements) {
  const PowersetOps ops(3);
  const auto cl = [&](std::uint32_t a) { return a | 1u; };
  EXPECT_TRUE(is_safety_element(ops, cl, 0b001u));
  EXPECT_FALSE(is_safety_element(ops, cl, 0b010u));
  EXPECT_TRUE(is_liveness_element(ops, cl, 0b110u));
  EXPECT_FALSE(is_liveness_element(ops, cl, 0b011u));
}

// ---------------------------------------------------------------------------
// FiniteLatticeOps: the generic algorithm must coincide with the dedicated
// finite-lattice module.
// ---------------------------------------------------------------------------

TEST(FiniteInstance, GenericDecomposeMatchesDedicatedModule) {
  std::mt19937 rng(127);
  for (const lattice::FiniteLattice& fl :
       {lattice::boolean_lattice(3), lattice::m3(), lattice::subspace_lattice_gf2(2)}) {
    const FiniteLatticeOps ops(fl);
    std::vector<lattice::Elem> samples;
    for (int a = 0; a < fl.size(); ++a) samples.push_back(a);
    EXPECT_TRUE(lattice_laws_hold(ops, samples));
    for (int i = 0; i < 10; ++i) {
      const lattice::LatticeClosure cl = lattice::LatticeClosure::random(fl, rng);
      const FiniteClosureFn fn(cl);
      EXPECT_TRUE(closure_laws_hold(ops, fn, samples));
      for (lattice::Elem a : samples) {
        const auto generic = decompose(ops, fn, a);
        EXPECT_TRUE(decomposition_valid(ops, fn, fn, a, generic));
        const auto dedicated = lattice::decompose(fl, cl, a);
        ASSERT_TRUE(dedicated.has_value());
        EXPECT_EQ(generic.safety, dedicated->safety);
        EXPECT_EQ(generic.liveness, dedicated->liveness);
      }
    }
  }
}

TEST(FiniteInstance, Theorem6ExtremalityOnBooleanLattice) {
  const lattice::FiniteLattice fl = lattice::boolean_lattice(3);
  const FiniteLatticeOps ops(fl);
  const lattice::LatticeClosure cl = lattice::LatticeClosure::from_closed_set(fl, {0b011});
  const FiniteClosureFn fn(cl);
  for (int a = 0; a < fl.size(); ++a) {
    for (int s = 0; s < fl.size(); ++s) {
      if (cl.apply(s) != s) continue;
      for (int z = 0; z < fl.size(); ++z) {
        EXPECT_TRUE(theorem6_holds(ops, fn, a, s, z));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// OmegaRegularOps: the §2 Büchi world run through the §3 generic theorems.
// ---------------------------------------------------------------------------

SampledOmegaRegularOps sampled_ops() {
  return SampledOmegaRegularOps(words::Alphabet::binary(),
                                words::enumerate_up_words(2, 3, 3));
}

TEST(OmegaInstance, LatticeLawsOnSmallAutomata) {
  // Sampled equality: the law checks build deep product automata, where the
  // exact (complementation-based) instance would blow up.
  const SampledOmegaRegularOps ops = sampled_ops();
  ltl::LtlArena arena(words::Alphabet::binary());
  std::vector<buchi::Nba> samples;
  for (const char* text : {"G a", "F b", "a"}) {
    samples.push_back(ltl::to_nba(arena, *arena.parse(text)));
  }
  EXPECT_TRUE(lattice_laws_hold(ops, samples));
  EXPECT_TRUE(closure_laws_hold(ops, LclClosureFn{}, samples));
}

TEST(OmegaInstance, GenericDecomposeProducesValidPartsExact) {
  // Exact instance on a deliberately tiny specification.
  const OmegaRegularOps ops(words::Alphabet::binary());
  ltl::LtlArena arena(words::Alphabet::binary());
  const buchi::Nba nba = ltl::to_nba(arena, *arena.parse("G a"));
  const auto d = decompose(ops, LclClosureFn{}, nba);
  EXPECT_TRUE(decomposition_valid(ops, LclClosureFn{}, LclClosureFn{}, nba, d));
}

TEST(OmegaInstance, GenericDecomposeProducesValidPartsSampled) {
  const SampledOmegaRegularOps ops = sampled_ops();
  ltl::LtlArena arena(words::Alphabet::binary());
  for (const char* text : {"a & F !a", "G a", "G F a", "a U b", "G (a -> F b)"}) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const auto d = decompose(ops, LclClosureFn{}, nba);
    EXPECT_TRUE(decomposition_valid(ops, LclClosureFn{}, LclClosureFn{}, nba, d)) << text;
  }
}

TEST(OmegaInstance, GenericAndDedicatedDecompositionsAgreeOnLanguages) {
  // The generic Theorem 2 construction (via rank-based complementation) and
  // the dedicated §2.4 pipeline (via the deterministic safety automaton)
  // must produce the same two languages.
  const SampledOmegaRegularOps ops = sampled_ops();
  ltl::LtlArena arena(words::Alphabet::binary());
  for (const char* text : {"a & F !a", "G a", "a U b"}) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const auto generic = decompose(ops, LclClosureFn{}, nba);
    const buchi::BuchiDecomposition dedicated = buchi::decompose(nba);
    EXPECT_TRUE(ops.equal(generic.safety, dedicated.safety)) << text;
    EXPECT_TRUE(ops.equal(generic.liveness, dedicated.liveness)) << text;
  }
}

TEST(OmegaInstance, LanguageLatticeIsDistributiveAndModular) {
  // The ω-regular lattice is a Boolean algebra, hence distributive and
  // modular — the hypotheses Theorems 3 and 7 need (checked on samples,
  // sampled equality).
  const SampledOmegaRegularOps ops = sampled_ops();
  ltl::LtlArena arena(words::Alphabet::binary());
  std::vector<buchi::Nba> samples;
  for (const char* text : {"G a", "F b", "a", "G F a"}) {
    samples.push_back(ltl::to_nba(arena, *arena.parse(text)));
  }
  EXPECT_TRUE(modularity_holds(ops, samples));
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      for (const auto& c : samples) {
        EXPECT_TRUE(ops.equal(ops.meet(a, ops.join(b, c)),
                              ops.join(ops.meet(a, b), ops.meet(a, c))));
      }
    }
  }
}

TEST(OmegaInstance, SafetyAndLivenessPredicatesMatchModule) {
  const OmegaRegularOps ops(words::Alphabet::binary());
  ltl::LtlArena arena(words::Alphabet::binary());
  for (const char* text : {"G a", "F b", "G F a", "a & F !a", "true", "false"}) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(text));
    EXPECT_EQ(is_safety_element(ops, LclClosureFn{}, nba), buchi::is_safety(nba)) << text;
    EXPECT_EQ(is_liveness_element(ops, LclClosureFn{}, nba), buchi::is_liveness(nba))
        << text;
  }
}

}  // namespace
}  // namespace slat::core
