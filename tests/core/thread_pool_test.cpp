#include "core/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace slat::core {
namespace {

TEST(ThreadPool, RunExecutesEveryChunkExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> executed(100);
  pool.run(100, [&](int c) { executed[c].fetch_add(1); });
  for (int c = 0; c < 100; ++c) EXPECT_EQ(executed[c].load(), 1) << c;
}

TEST(ThreadPool, ResizeWhenIdleIsAllowed) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.num_threads(), 2);
  pool.set_num_threads(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::atomic<int> sum{0};
  pool.run(10, [&](int c) { sum.fetch_add(c); });
  EXPECT_EQ(sum.load(), 45);
  pool.set_num_threads(1);
  EXPECT_EQ(pool.num_threads(), 1);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.run(8, [&](int) {
    // Nested run from a pool task must go inline, not deadlock.
    pool.run(4, [&](int) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 32);
}

using ThreadPoolDeathTest = ::testing::Test;

TEST(ThreadPoolDeathTest, ResizeWhileJobInFlightAborts) {
  // Regression for an unchecked precondition: set_num_threads while a job is
  // in flight used to silently join workers mid-job (tearing the live job's
  // state down under them); it must now trip the SLAT_ASSERT guard. The
  // resize is attempted from inside a running chunk — whether the chunk
  // landed on the caller thread (job_in_flight_ set) or a worker
  // (in_worker), the guard fires.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(4);
        pool.run(8, [&](int) { pool.set_num_threads(2); });
      },
      "job is in flight");
}

}  // namespace
}  // namespace slat::core
