// Unit tests for the bitset state-set kernel: insert/iterate round trips,
// word-boundary universes (63/64/65), capacity-independent hashing and
// equality, small-size inline vs heap growth, and InternTable behavior
// under forced collisions.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "core/state_set.hpp"

namespace slat::core {
namespace {

TEST(StateSet, InsertContainsEraseRoundTrip) {
  StateSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.count(), 0);
  set.insert(0);
  set.insert(5);
  set.insert(5);  // duplicate insert is a no-op
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(5));
  EXPECT_FALSE(set.contains(1));
  EXPECT_EQ(set.count(), 2);
  set.erase(5);
  EXPECT_FALSE(set.contains(5));
  EXPECT_EQ(set.count(), 1);
  set.erase(1000);  // erasing beyond capacity is a no-op
  EXPECT_EQ(set.count(), 1);
}

TEST(StateSet, IterationIsSortedAndComplete) {
  for (const int universe : {7, 63, 64, 65, 128, 129, 513}) {
    StateSet set(universe);
    std::mt19937 rng(universe);
    std::set<int> expected;
    std::uniform_int_distribution<int> pick(0, universe - 1);
    for (int i = 0; i < universe / 2 + 1; ++i) {
      const int q = pick(rng);
      set.insert(q);
      expected.insert(q);
    }
    const std::vector<int> got = set.to_vector();
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end())) << universe;
    EXPECT_EQ(got, std::vector<int>(expected.begin(), expected.end())) << universe;
    EXPECT_EQ(set.count(), static_cast<int>(expected.size())) << universe;
  }
}

TEST(StateSet, WordBoundarySizes) {
  // 63, 64, 65: last bit of a word, exactly one full word, first bit of the
  // next word. Also 127/128/129 across the inline-storage boundary.
  for (const int boundary : {63, 64, 65, 127, 128, 129}) {
    StateSet set;
    set.insert(boundary);
    EXPECT_TRUE(set.contains(boundary)) << boundary;
    EXPECT_FALSE(set.contains(boundary - 1)) << boundary;
    EXPECT_FALSE(set.contains(boundary + 1)) << boundary;
    EXPECT_EQ(set.count(), 1) << boundary;
    std::vector<int> members = set.to_vector();
    ASSERT_EQ(members.size(), 1u) << boundary;
    EXPECT_EQ(members[0], boundary) << boundary;
  }
}

TEST(StateSet, EqualityAndHashIgnoreCapacity) {
  StateSet small;       // inline capacity (128 bits)
  StateSet large(600);  // heap-backed from the start
  for (int q : {3, 64, 100}) {
    small.insert(q);
    large.insert(q);
  }
  EXPECT_EQ(small, large);
  EXPECT_EQ(small.hash(), large.hash());
  // Growing past the inline buffer then erasing back must not disturb
  // equality either.
  StateSet grown = small;
  grown.insert(500);
  EXPECT_FALSE(grown == small);
  grown.erase(500);
  EXPECT_EQ(grown, small);
  EXPECT_EQ(grown.hash(), small.hash());
}

TEST(StateSet, UnionWith) {
  StateSet a, b;
  a.insert(1);
  a.insert(70);
  b.insert(2);
  b.insert(300);  // forces growth of `a` during the union
  a.union_with(b);
  EXPECT_EQ(a.to_vector(), (std::vector<int>{1, 2, 70, 300}));
}

TEST(StateSet, CopyAndMoveAcrossStorageKinds) {
  StateSet inline_set;
  inline_set.insert(10);
  StateSet heap_set(300);
  heap_set.insert(290);

  StateSet copy = heap_set;  // heap -> fresh
  EXPECT_EQ(copy, heap_set);
  copy = inline_set;  // heap <- inline
  EXPECT_EQ(copy, inline_set);

  StateSet moved = std::move(copy);
  EXPECT_EQ(moved, inline_set);
  StateSet target(300);
  target.insert(5);
  target = std::move(moved);  // heap <- inline move
  EXPECT_EQ(target, inline_set);
}

struct CollidingKey {
  int value;
  // All keys share one hash bucket: the table must fall back to equality.
  std::uint64_t hash() const { return 42; }
  friend bool operator==(const CollidingKey&, const CollidingKey&) = default;
};

TEST(InternTable, AssignsIdsInFirstEncounterOrderUnderCollisions) {
  InternTable<CollidingKey> table;
  for (int round = 0; round < 3; ++round) {
    for (int v = 0; v < 100; ++v) {
      EXPECT_EQ(table.intern(CollidingKey{v}), v) << round;
    }
  }
  EXPECT_EQ(table.size(), 100);
  EXPECT_EQ(table.find(CollidingKey{7}), 7);
  EXPECT_EQ(table.find(CollidingKey{100}), -1);
}

TEST(InternTable, InternStateSetsSurvivesRehashing) {
  InternTable<StateSet> table;
  std::mt19937 rng(99);
  std::vector<StateSet> originals;
  for (int i = 0; i < 500; ++i) {
    StateSet set;
    std::uniform_int_distribution<int> pick(0, 200);
    for (int j = 0; j < 5; ++j) set.insert(pick(rng));
    bool created = false;
    const int id = table.intern(set, &created);
    if (created) {
      ASSERT_EQ(id, static_cast<int>(originals.size()));
      originals.push_back(set);
    } else {
      EXPECT_EQ(table.key(id), set);
    }
  }
  // Every original still resolves to its id after all the growth.
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_EQ(table.find(originals[i]), static_cast<int>(i));
  }
}

TEST(InternTable, IntVecKeySignatures) {
  InternTable<IntVecKey> table;
  EXPECT_EQ(table.intern(IntVecKey{{1, -1, 2}}), 0);
  EXPECT_EQ(table.intern(IntVecKey{{1, -1, 3}}), 1);
  EXPECT_EQ(table.intern(IntVecKey{{1, -1, 2}}), 0);
  EXPECT_EQ(table.intern(IntVecKey{{}}), 2);
  EXPECT_EQ(table.key(1).values, (std::vector<int>{1, -1, 3}));
}

}  // namespace
}  // namespace slat::core
