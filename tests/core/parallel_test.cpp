// The thread pool and the deterministic parallel primitives: correctness of
// the chunked execution, the index-order result contract, re-entrancy, and
// exception propagation — at several pool sizes.
#include "core/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace slat::core {
namespace {

class ParallelTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { set_num_threads(GetParam()); }
  void TearDown() override { set_num_threads(0); }
};

TEST_P(ParallelTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int n : {0, 1, 7, 64, 1000}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(n, [&](int i) { hits[i].fetch_add(1); }, /*grain=*/3);
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelTest, ParallelMapReturnsResultsInIndexOrder) {
  const auto squares = parallel_map<long>(500, [](int i) { return 1L * i * i; });
  ASSERT_EQ(squares.size(), 500u);
  for (int i = 0; i < 500; ++i) EXPECT_EQ(squares[i], 1L * i * i);
}

TEST_P(ParallelTest, ParallelReduceMatchesSequentialFold) {
  const long total = parallel_reduce(
      1000, 0L, [](int i) { return static_cast<long>(i); },
      [](long a, long b) { return a + b; });
  EXPECT_EQ(total, 1000L * 999 / 2);
}

TEST_P(ParallelTest, FloatReductionIsBitIdenticalAcrossThreadCounts) {
  // The chunking depends only on (n, grain), so even a non-associative
  // floating-point fold groups identically at every thread count.
  const auto run = [] {
    return parallel_reduce(
        10'000, 0.0, [](int i) { return 1.0 / (1.0 + i); },
        [](double a, double b) { return a + b; }, /*grain=*/64);
  };
  const double here = run();
  set_num_threads(1);
  const double sequential = run();
  EXPECT_EQ(here, sequential);  // exact: same grouping, same rounding
}

TEST_P(ParallelTest, NestedParallelForRunsInlineWithoutDeadlock) {
  std::vector<int> totals(40, 0);
  parallel_for(40, [&](int i) {
    int inner = 0;
    parallel_for(10, [&](int j) { inner += i + j; }, /*grain=*/1);
    totals[i] = inner;
  });
  for (int i = 0; i < 40; ++i) EXPECT_EQ(totals[i], 10 * i + 45);
}

TEST_P(ParallelTest, ExceptionInChunkPropagatesToCaller) {
  EXPECT_THROW(
      parallel_for(100, [](int i) {
        if (i == 37) throw std::runtime_error("boom");
      }),
      std::runtime_error);
  // The pool survives the failed job.
  std::atomic<int> count{0};
  parallel_for(100, [&](int) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST_P(ParallelTest, PoolReportsRequestedThreadCount) {
  EXPECT_EQ(num_threads(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ParallelTest, ::testing::Values(1, 2, 4, 8));

TEST(ThreadPool, BackToBackJobsReuseWorkers) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(16, [&](int c) { sum.fetch_add(c); });
    EXPECT_EQ(sum.load(), 120);
  }
}

TEST(ThreadPool, ZeroChunksIsANoOp) {
  ThreadPool pool(2);
  pool.run(0, [](int) { FAIL() << "no chunk should run"; });
}

}  // namespace
}  // namespace slat::core
