#include "core/memo_cache.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

namespace slat::core {
namespace {

Digest key_of(int i) { return DigestBuilder().add_string("key").add_int(i).digest(); }

TEST(DigestBuilder, DistinguishesStructure) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  // Different streams must (overwhelmingly) yield different digests.
  const Digest a = DigestBuilder().add_string("ab").add_string("c").digest();
  const Digest b = DigestBuilder().add_string("a").add_string("bc").digest();
  const Digest c = DigestBuilder().add_int(1).add_int(2).digest();
  const Digest d = DigestBuilder().add_int(2).add_int(1).digest();
  const Digest e = DigestBuilder().add_ints(std::vector<int>{1, 2}).digest();
  const Digest f = DigestBuilder().add_ints(std::vector<int>{1}).add_int(2).digest();
  for (const Digest& digest : {a, b, c, d, e, f}) {
    EXPECT_TRUE(seen.emplace(digest.hi, digest.lo).second);
  }
  // And identical streams must collide exactly.
  EXPECT_EQ(a, DigestBuilder().add_string("ab").add_string("c").digest());
}

TEST(DigestBuilder, BoolVectorsAreLengthPrefixed) {
  const Digest a = DigestBuilder().add_bools({true, false}).digest();
  const Digest b = DigestBuilder().add_bools({true, false, false}).digest();
  EXPECT_FALSE(a == b);
}

TEST(MemoCache, MissComputesAndHitReturnsCachedValue) {
  MemoCache<int> cache("test.memo.basic", 8);
  CacheEnabledScope enabled(true);
  int computes = 0;
  const auto compute = [&] { return ++computes * 10; };
  EXPECT_EQ(cache.get_or_compute(key_of(1), compute), 10);
  EXPECT_EQ(cache.get_or_compute(key_of(1), compute), 10);  // hit: not recomputed
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hit_counter().value(), 1u);
  EXPECT_EQ(cache.miss_counter().value(), 1u);
}

TEST(MemoCache, DisabledCacheIsAPassThrough) {
  MemoCache<int> cache("test.memo.disabled", 8);
  CacheEnabledScope disabled(false);
  int computes = 0;
  const auto compute = [&] { return ++computes; };
  EXPECT_EQ(cache.get_or_compute(key_of(1), compute), 1);
  EXPECT_EQ(cache.get_or_compute(key_of(1), compute), 2);  // recomputed
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hit_counter().value(), 0u);
  EXPECT_EQ(cache.miss_counter().value(), 0u);
}

TEST(MemoCache, LruEvictsTheColdestEntry) {
  MemoCache<int> cache("test.memo.lru", 2);
  CacheEnabledScope enabled(true);
  const auto constant = [](int v) { return [v] { return v; }; };
  cache.get_or_compute(key_of(1), constant(1));
  cache.get_or_compute(key_of(2), constant(2));
  cache.get_or_compute(key_of(1), constant(1));   // touch 1: now 2 is coldest
  cache.get_or_compute(key_of(3), constant(3));   // evicts 2
  EXPECT_EQ(cache.eviction_counter().value(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  int recomputed = 0;
  cache.get_or_compute(key_of(1), [&] { ++recomputed; return 1; });  // still hot
  cache.get_or_compute(key_of(3), [&] { ++recomputed; return 3; });  // still hot
  EXPECT_EQ(recomputed, 0);
  cache.get_or_compute(key_of(2), [&] { ++recomputed; return 2; });  // was evicted
  EXPECT_EQ(recomputed, 1);
}

TEST(MemoCache, ClearAllCachesEmptiesLiveCaches) {
  MemoCache<int> cache("test.memo.clear", 8);
  CacheEnabledScope enabled(true);
  cache.get_or_compute(key_of(1), [] { return 1; });
  EXPECT_EQ(cache.size(), 1u);
  clear_all_caches();
  EXPECT_EQ(cache.size(), 0u);
  // Metrics survive a cache clear.
  EXPECT_EQ(cache.miss_counter().value(), 1u);
}

TEST(MemoCache, ConcurrentMixedKeysAreConsistent) {
  MemoCache<int> cache("test.memo.threads", 64);
  CacheEnabledScope enabled(true);
  constexpr int kThreads = 4;
  constexpr int kKeys = 16;
  constexpr int kRounds = 200;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const int k = (round + t) % kKeys;
        const int got = cache.get_or_compute(key_of(k), [k] { return k * 7; });
        if (got != k * 7) ++failures[t];
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
  // Every lookup either hit or missed; duplicate concurrent computes are
  // allowed, so misses ≥ kKeys and hits + misses = total lookups.
  EXPECT_EQ(cache.hit_counter().value() + cache.miss_counter().value(),
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_GE(cache.miss_counter().value(), static_cast<std::uint64_t>(kKeys));
}

TEST(MemoCache, ShortLivedCachesDeregisterSafely) {
  {
    MemoCache<int> cache("test.memo.ephemeral", 4);
    CacheEnabledScope enabled(true);
    cache.get_or_compute(key_of(1), [] { return 1; });
  }
  // The dead cache must no longer be reachable from clear_all_caches().
  clear_all_caches();
}

TEST(MemoCache, DefaultCapacityComesFromEnvironmentOrFallback) {
  // The env var is latched once per process; just check the invariant that
  // the resolved value is positive and caches honor an explicit override.
  EXPECT_GE(default_cache_capacity(), 1u);
  MemoCache<int> cache("test.memo.capacity", 3);
  EXPECT_EQ(cache.capacity(), 3u);
}

}  // namespace
}  // namespace slat::core
