// The generic framework on its third domain: Rabin-definable tree languages
// (Büchi-shaped automata, sampled equality over a regular-tree corpus).
#include "core/tree_instance.hpp"

#include <gtest/gtest.h>

#include <random>

#include "rabin/from_ctl.hpp"

namespace slat::core {
namespace {

using rabin::RabinTreeAutomaton;
using trees::KTree;

TreeLanguageOps make_ops() {
  std::vector<KTree> corpus;
  for (int n = 1; n <= 2; ++n) {
    for (KTree& tree :
         trees::enumerate_regular_trees(words::Alphabet::binary(), n, 2, 2)) {
      corpus.push_back(std::move(tree));
    }
  }
  std::mt19937 rng(199);
  for (int i = 0; i < 4; ++i) {
    corpus.push_back(trees::random_regular_tree(words::Alphabet::binary(), 3, 2, rng));
  }
  return TreeLanguageOps(words::Alphabet::binary(), 2, std::move(corpus));
}

std::vector<RabinTreeAutomaton> samples(trees::CtlArena& arena) {
  std::vector<RabinTreeAutomaton> out;
  for (const char* text : {"AG (a | b)", "AF b", "EX a"}) {
    out.push_back(rabin::from_ctl(arena, *arena.parse(text), 2));
  }
  return out;
}

TEST(TreeInstance, LatticeLawsHoldOnSamples) {
  trees::CtlArena arena(words::Alphabet::binary());
  const TreeLanguageOps ops = make_ops();
  EXPECT_TRUE(lattice_laws_hold(ops, samples(arena)));
}

TEST(TreeInstance, TopAndBottomBehave) {
  const TreeLanguageOps ops = make_ops();
  trees::CtlArena arena(words::Alphabet::binary());
  for (const auto& a : samples(arena)) {
    EXPECT_TRUE(ops.leq(a, ops.top()));
    EXPECT_TRUE(ops.leq(ops.bottom(), a));
    EXPECT_TRUE(ops.equal(ops.meet(a, ops.top()), a));
    EXPECT_TRUE(ops.equal(ops.join(a, ops.bottom()), a));
  }
}

TEST(TreeInstance, RfclIsAGenericClosure) {
  trees::CtlArena arena(words::Alphabet::binary());
  const TreeLanguageOps ops = make_ops();
  EXPECT_TRUE(closure_laws_hold(ops, RfclClosureFn{}, samples(arena)));
}

TEST(TreeInstance, SafetyAndLivenessDefinitionsInstantiate) {
  trees::CtlArena arena(words::Alphabet::binary());
  const TreeLanguageOps ops = make_ops();
  // AG (a|b) is everything over {a,b} — safety AND liveness. AF b is
  // universally live (its closure is everything) but not safe.
  const RabinTreeAutomaton ag = rabin::from_ctl(arena, *arena.parse("AG (a | b)"), 2);
  const RabinTreeAutomaton af_b = rabin::from_ctl(arena, *arena.parse("AF b"), 2);
  const RabinTreeAutomaton root_a = rabin::from_ctl(arena, *arena.parse("a"), 2);
  EXPECT_TRUE(is_safety_element(ops, RfclClosureFn{}, ag));
  EXPECT_TRUE(is_liveness_element(ops, RfclClosureFn{}, af_b));
  EXPECT_FALSE(is_safety_element(ops, RfclClosureFn{}, af_b));
  EXPECT_TRUE(is_safety_element(ops, RfclClosureFn{}, root_a));
  EXPECT_FALSE(is_liveness_element(ops, RfclClosureFn{}, root_a));
}

TEST(TreeInstance, JoinReshapingPreservesTheUnion) {
  trees::CtlArena arena(words::Alphabet::binary());
  const TreeLanguageOps ops = make_ops();
  const auto autos = samples(arena);
  // join must equal the plain union semantically.
  for (const auto& a : autos) {
    for (const auto& b : autos) {
      const RabinTreeAutomaton joined = ops.join(a, b);
      const RabinTreeAutomaton plain = rabin::unite(a, b);
      EXPECT_TRUE(ops.equal(joined, plain));
    }
  }
}

}  // namespace
}  // namespace slat::core
