#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace slat::core {
namespace {

TEST(Metrics, CounterStartsAtZeroAndAccumulates) {
  Counter& c = metrics().counter("test.metrics.counter_basic");
  c.reset();
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  Counter& first = metrics().counter("test.metrics.stable");
  // Force map growth past the first lookup.
  for (int i = 0; i < 64; ++i) {
    metrics().counter("test.metrics.stable_filler_" + std::to_string(i));
  }
  Counter& second = metrics().counter("test.metrics.stable");
  EXPECT_EQ(&first, &second);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter& c = metrics().counter("test.metrics.threaded");
  c.reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, TimerAccumulatesViaScopedTimer) {
  Timer& t = metrics().timer("test.metrics.timer");
  t.reset();
  { ScopedTimer timed(t); }
  { ScopedTimer timed(t); }
  if (metrics_enabled()) {
    EXPECT_EQ(t.count(), 2u);
  }
  t.add(1000);
  EXPECT_GE(t.total_ns(), 1000u);
}

TEST(Metrics, ScopedTimerRespectsRuntimeDisable) {
  Timer& t = metrics().timer("test.metrics.timer_disabled");
  t.reset();
  const bool previous = metrics_enabled();
  set_metrics_enabled(false);
  { ScopedTimer timed(t); }
  set_metrics_enabled(previous);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
}

TEST(Metrics, HistogramBucketsByBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0);
  EXPECT_EQ(Histogram::bucket_of(1), 1);
  EXPECT_EQ(Histogram::bucket_of(2), 2);
  EXPECT_EQ(Histogram::bucket_of(3), 2);
  EXPECT_EQ(Histogram::bucket_of(4), 3);
  EXPECT_EQ(Histogram::bucket_of(~0ull), 64);

  Histogram& h = metrics().histogram("test.metrics.histogram");
  h.reset();
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 2u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(Metrics, DumpTextListsMetricsSorted) {
  metrics().counter("test.metrics.dump_b").reset();
  metrics().counter("test.metrics.dump_a").inc(7);
  const std::string text = metrics().dump_text();
  const auto pos_a = text.find("test.metrics.dump_a = 7");
  const auto pos_b = text.find("test.metrics.dump_b = ");
  EXPECT_NE(pos_a, std::string::npos);
  EXPECT_NE(pos_b, std::string::npos);
  EXPECT_LT(pos_a, pos_b);  // the name map keeps dumps sorted
}

TEST(Metrics, DumpJsonIsWellFormedEnoughToGrep) {
  metrics().counter("test.metrics.json").inc(3);
  const std::string json = metrics().dump_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.metrics.json\": 3"), std::string::npos);
}

TEST(Metrics, ResetAllZeroesEverything) {
  Counter& c = metrics().counter("test.metrics.reset_all.c");
  Timer& t = metrics().timer("test.metrics.reset_all.t");
  Histogram& h = metrics().histogram("test.metrics.reset_all.h");
  c.inc(5);
  t.add(5);
  h.record(5);
  metrics().reset_all();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.total_ns(), 0u);
  EXPECT_EQ(t.count(), 0u);
  EXPECT_EQ(h.total_count(), 0u);
}

}  // namespace
}  // namespace slat::core
