// One test per paper claim, named by the paper's numbering, crossing all
// three instantiations (finite lattices, ω-regular languages, tree
// languages). This is the machine-checked summary of the reproduction;
// EXPERIMENTS.md references these tests by name.
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "core/concepts.hpp"
#include "core/instances.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/enumerate.hpp"
#include "ltl/rem.hpp"
#include "ltl/translate.hpp"
#include "rabin/examples.hpp"
#include "trees/closures.hpp"
#include "trees/rem_branching.hpp"

namespace slat {
namespace {

using lattice::FiniteLattice;
using lattice::LatticeClosure;

// Lemma 1 / Theorem 1 (Alpern–Schneider, linear time): P ∪ ¬lcl(P) is live,
// and P = lcl(P) ∩ (P ∪ ¬lcl(P)).
TEST(Paper, Theorem1LinearTimeDecomposition) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  for (const char* text : {"a & F !a", "G a", "G F a", "F G !a", "a", "true", "false"}) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const buchi::BuchiDecomposition d = buchi::decompose(nba);
    EXPECT_TRUE(buchi::is_liveness(d.liveness)) << text;  // Lemma 1
    const buchi::Nba meet = buchi::intersect(d.safety, d.liveness);
    for (const auto& w : corpus) {
      EXPECT_EQ(meet.accepts(w), nba.accepts(w)) << text;  // Theorem 1
    }
  }
}

// Lemma 2: a ≤ b implies a ∧ c ≤ b ∧ c and a ∨ c ≤ b ∨ c.
TEST(Paper, Lemma2MeetJoinMonotone) {
  for (const FiniteLattice& lattice :
       {lattice::boolean_lattice(3), lattice::m3(), lattice::n5()}) {
    for (int a = 0; a < lattice.size(); ++a) {
      for (int b = 0; b < lattice.size(); ++b) {
        if (!lattice.leq(a, b)) continue;
        for (int c = 0; c < lattice.size(); ++c) {
          EXPECT_TRUE(lattice.leq(lattice.meet(a, c), lattice.meet(b, c)));
          EXPECT_TRUE(lattice.leq(lattice.join(a, c), lattice.join(b, c)));
        }
      }
    }
  }
}

// Lemma 3: cl(a ∧ b) ≤ cl.a ∧ cl.b — on finite lattices and on ω-regular
// languages.
TEST(Paper, Lemma3SubMeetPreservation) {
  const FiniteLattice lattice = lattice::subspace_lattice_gf2(2);
  lattice::for_each_closure(lattice, [&](const LatticeClosure& cl) {
    EXPECT_EQ(lattice::verify_lemma3(lattice, cl), std::nullopt);
  });
  // ω-regular: lcl(A ∩ B) ⊆ lcl(A) ∩ lcl(B).
  ltl::LtlArena arena(words::Alphabet::binary());
  const buchi::Nba a = ltl::to_nba(arena, *arena.parse("F a"));
  const buchi::Nba b = ltl::to_nba(arena, *arena.parse("F b"));
  EXPECT_TRUE(buchi::is_subset(buchi::safety_closure(buchi::intersect(a, b)),
                               buchi::intersect(buchi::safety_closure(a),
                                                buchi::safety_closure(b))));
}

// Lemma 4: b ∈ cmp(cl.a) makes a ∨ b live.
TEST(Paper, Lemma4JoinWithComplementIsLive) {
  for (const FiniteLattice& lattice : {lattice::boolean_lattice(4), lattice::m3()}) {
    lattice::for_each_closure(lattice, [&](const LatticeClosure& cl) {
      EXPECT_EQ(lattice::verify_lemma4(lattice, cl), std::nullopt);
    });
  }
}

// Theorem 2/3: every element is safety ∧ liveness, for closure pairs
// cl1 ≤ cl2, on modular complemented lattices.
TEST(Paper, Theorem3TwoClosureDecomposition) {
  const FiniteLattice lattice = lattice::m3();
  std::vector<LatticeClosure> closures;
  lattice::for_each_closure(lattice, [&](const LatticeClosure& cl) {
    closures.push_back(cl);
  });
  for (const auto& cl1 : closures) {
    for (const auto& cl2 : closures) {
      if (!cl1.pointwise_leq(cl2)) continue;
      EXPECT_EQ(lattice::verify_theorem3(lattice, cl1, cl2), std::nullopt);
    }
  }
}

// Lemma 6 / Figure 1: in the non-modular N5, element a is undecomposable.
TEST(Paper, Lemma6Figure1NonModularCounterexample) {
  const FiniteLattice lattice = lattice::n5();
  using E = lattice::N5Elems;
  const auto cl = LatticeClosure::from_map(
      lattice, {E::bottom, E::b, E::b, E::c, E::top});
  ASSERT_TRUE(cl.has_value());
  EXPECT_EQ(lattice::find_any_decomposition(lattice, *cl, *cl, E::a), std::nullopt);
}

// Theorem 4: the three branching-time decompositions exist (ES∧EL, US∧UL,
// ES∧UL), demonstrated on the tree-language instance via Theorem 9's
// construction and the semantic closure checks.
TEST(Paper, Theorem4BranchingDecompositionsExist) {
  const auto corpus = [] {
    std::vector<trees::KTree> out;
    for (trees::KTree& t :
         trees::enumerate_regular_trees(words::Alphabet::binary(), 2, 2, 2)) {
      out.push_back(std::move(t));
    }
    return out;
  }();
  const rabin::RabinTreeAutomaton aut = rabin::aut_af_b();
  const rabin::RabinDecomposition d = rabin::decompose(aut);
  const trees::TreeProperty live{
      "live", [&d](const trees::KTree& t) { return d.liveness_contains(t); },
      [&d](const trees::KTree& t) { return d.liveness_extendable(t); }};
  for (const trees::KTree& t : corpus) {
    if (!t.is_total()) continue;
    EXPECT_EQ(aut.accepts(t), d.safety.accepts(t) && d.liveness_contains(t));
    EXPECT_TRUE(trees::in_fcl(live, t, 2));  // UL part
  }
}

// Theorem 5: no property with fcl.a = A_tot and ncl.a < A_tot can be split
// into a US safety part and an EL liveness part. Verified exhaustively on
// finite lattices (where cl1 = ncl-analogue ≤ cl2 = fcl-analogue).
TEST(Paper, Theorem5ImpossibleMix) {
  for (const FiniteLattice& lattice : {lattice::boolean_lattice(3), lattice::m3()}) {
    std::vector<LatticeClosure> closures;
    lattice::for_each_closure(lattice, [&](const LatticeClosure& cl) {
      closures.push_back(cl);
    });
    for (const auto& cl1 : closures) {
      for (const auto& cl2 : closures) {
        EXPECT_EQ(lattice::verify_theorem5(lattice, cl1, cl2), std::nullopt);
      }
    }
  }
}

// Theorem 5's branching-time instance: AF b has fcl = A_tot and ncl ≠ A_tot,
// so (by the theorem) it cannot be US ∧ EL; check the hypothesis facts.
TEST(Paper, Theorem5HypothesesHoldForAFa) {
  const auto& examples = trees::rem_branching_examples();
  const auto q3a = std::find_if(examples.begin(), examples.end(),
                                [](const auto& e) { return e.name == "q3a"; });
  ASSERT_NE(q3a, examples.end());
  // The paper instantiates Theorem 5 with AF-style properties: UL holds,
  // EL fails — exactly what the classification grid records for q4a/q5a.
  for (const char* name : {"q4a", "q5a"}) {
    const auto it = std::find_if(examples.begin(), examples.end(),
                                 [&](const auto& e) { return e.name == name; });
    ASSERT_NE(it, examples.end());
    EXPECT_TRUE(it->expected.universally_live);
    EXPECT_FALSE(it->expected.existentially_live);
  }
}

// Theorem 6: cl1.a is the strongest safety element in ANY decomposition.
TEST(Paper, Theorem6MachineClosure) {
  const FiniteLattice lattice = lattice::subspace_lattice_gf2(2);
  std::vector<LatticeClosure> closures;
  lattice::for_each_closure(lattice, [&](const LatticeClosure& cl) {
    closures.push_back(cl);
  });
  for (const auto& cl1 : closures) {
    for (const auto& cl2 : closures) {
      if (!cl1.pointwise_leq(cl2)) continue;
      EXPECT_EQ(lattice::verify_theorem6(lattice, cl1, cl2), std::nullopt);
    }
  }
}

// Theorem 7 + Figure 2: a ∨ b is the weakest liveness part — on
// distributive lattices; the modular non-distributive M3 (Figure 2)
// violates it.
TEST(Paper, Theorem7WeakestLivenessAndFigure2) {
  const FiniteLattice boolean = lattice::boolean_lattice(3);
  lattice::for_each_closure(boolean, [&](const LatticeClosure& cl) {
    EXPECT_EQ(lattice::verify_theorem7(boolean, cl, cl), std::nullopt);
  });
  const FiniteLattice fig2 = lattice::fig2();
  using E = lattice::Fig2Elems;
  const auto cl = LatticeClosure::from_map(fig2, {E::s, E::s, E::top, E::top, E::top});
  ASSERT_TRUE(cl.has_value());
  EXPECT_NE(lattice::verify_theorem7(fig2, *cl, *cl), std::nullopt);
}

// Theorem 8: for q ES or US and p = q ∩ r: ncl.p ≤ q and r ≥ p ∪ ¬ncl.p —
// the finite-lattice rendering via Theorems 6 and 7 is covered by those
// tests; here we check the ω-regular rendering of the first half:
// lcl(P ∩ Q) ⊆ Q for safety Q.
TEST(Paper, Theorem8StrongestSafetyFactor) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const buchi::Nba safety = ltl::to_nba(arena, *arena.parse("G a"));
  ASSERT_TRUE(buchi::is_safety(safety));
  for (const char* other : {"F b", "G F a", "b R a"}) {
    const buchi::Nba r = ltl::to_nba(arena, *arena.parse(other));
    const buchi::Nba p = buchi::intersect(safety, r);
    EXPECT_TRUE(buchi::is_subset(buchi::safety_closure(p), safety)) << other;
  }
}

// Theorem 9: effective Rabin decomposition — detailed checks live in
// rabin_automaton_test; this is the cross-reference smoke test.
TEST(Paper, Theorem9EffectiveRabinDecomposition) {
  const rabin::RabinTreeAutomaton aut = rabin::aut_agf_b();
  const rabin::RabinDecomposition d = rabin::decompose(aut);
  EXPECT_EQ(d.safety.num_pairs(), 1);
  const trees::KTree all_b = trees::KTree::constant(words::Alphabet::binary(), 1, 2);
  const trees::KTree all_a = trees::KTree::constant(words::Alphabet::binary(), 0, 2);
  EXPECT_TRUE(aut.accepts(all_b));
  EXPECT_TRUE(d.safety.accepts(all_b) && d.liveness_contains(all_b));
  EXPECT_FALSE(d.safety.accepts(all_a) && d.liveness_contains(all_a));
}

// §2.3: the Rem table end-to-end (duplicated from the LTL tests on purpose:
// this file is the paper index).
TEST(Paper, Section23RemTable) {
  ltl::LtlArena arena(words::Alphabet::binary());
  for (const auto& example : ltl::rem_examples()) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(example.formula));
    EXPECT_EQ(buchi::classify(nba), example.expected) << example.name;
  }
}

// §4.3: the branching-time Rem table.
TEST(Paper, Section43BranchingRemTable) {
  auto corpus = trees::total_tree_corpus(words::Alphabet::binary(), 2, 2);
  for (trees::KTree& w : trees::paper_witness_trees()) corpus.push_back(std::move(w));
  for (const auto& example : trees::rem_branching_examples()) {
    const auto got = trees::classify(example.property, corpus, 2);
    EXPECT_EQ(got.existentially_safe, example.expected.existentially_safe) << example.name;
    EXPECT_EQ(got.universally_safe, example.expected.universally_safe) << example.name;
    EXPECT_EQ(got.existentially_live, example.expected.existentially_live) << example.name;
    EXPECT_EQ(got.universally_live, example.expected.universally_live) << example.name;
  }
}

}  // namespace
}  // namespace slat
