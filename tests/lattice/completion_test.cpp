// Dedekind–MacNeille completion and the Moore-family ↔ closure
// correspondence — the "complete lattice" side of the paper's §1 discussion
// (Gumm's setting needs completeness; finite lattices have it for free).
#include <gtest/gtest.h>

#include "lattice/closure.hpp"
#include "lattice/constructions.hpp"
#include "lattice/enumerate.hpp"

namespace slat::lattice {
namespace {

TEST(DedekindMacNeille, CompletionOfALatticeIsIsomorphicToIt) {
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), m3(), n5(), chain(4), divisor_lattice(12)}) {
    const DedekindMacNeille dm = dedekind_macneille(lattice.poset());
    EXPECT_EQ(dm.lattice.size(), lattice.size());
    // The embedding is an order isomorphism here.
    for (Elem a = 0; a < lattice.size(); ++a) {
      for (Elem b = 0; b < lattice.size(); ++b) {
        EXPECT_EQ(lattice.leq(a, b), dm.lattice.leq(dm.embedding[a], dm.embedding[b]));
      }
    }
  }
}

TEST(DedekindMacNeille, CompletionOfAnAntichainIsATwoLevelLattice) {
  // n incomparable points: completion adds bottom and top only.
  const auto poset = FinitePoset::from_covers(3, {});
  ASSERT_TRUE(poset.has_value());
  const DedekindMacNeille dm = dedekind_macneille(*poset);
  EXPECT_EQ(dm.lattice.size(), 5);  // 3 points + 0 + 1
}

TEST(DedekindMacNeille, CompletionOfAFenceIsSmall) {
  // The 4-point "N" poset (0<2, 1<2, 1<3): a classic non-lattice.
  const auto poset = FinitePoset::from_covers(4, {{0, 2}, {1, 2}, {1, 3}});
  ASSERT_TRUE(poset.has_value());
  ASSERT_FALSE(poset->is_lattice());
  const DedekindMacNeille dm = dedekind_macneille(*poset);
  // The completion is a lattice and embeds the order.
  for (int a = 0; a < poset->size(); ++a) {
    for (int b = 0; b < poset->size(); ++b) {
      EXPECT_EQ(poset->leq(a, b),
                dm.lattice.leq(dm.embedding[a], dm.embedding[b]));
    }
  }
  EXPECT_GE(dm.lattice.size(), poset->size());
}

TEST(DedekindMacNeille, EmbeddingPreservesExistingMeets) {
  // Where the original poset HAS a meet, the completion agrees with it.
  const FiniteLattice lattice = m3();
  const DedekindMacNeille dm = dedekind_macneille(lattice.poset());
  for (Elem a = 0; a < lattice.size(); ++a) {
    for (Elem b = 0; b < lattice.size(); ++b) {
      EXPECT_EQ(dm.embedding[lattice.meet(a, b)],
                dm.lattice.meet(dm.embedding[a], dm.embedding[b]));
    }
  }
}

TEST(MooreFamilies, ClosureToClosedSetRoundTrip) {
  // closure ↦ closed set ↦ closure is the identity: the lattice-closure /
  // Moore-family correspondence that makes finite lattices "complete
  // enough" for every closure to arise from meets of closed elements.
  for (const FiniteLattice& lattice : {boolean_lattice(3), m3(), n5()}) {
    for_each_closure(lattice, [&](const LatticeClosure& closure) {
      const LatticeClosure rebuilt =
          LatticeClosure::from_closed_set(lattice, closure.closed_elements());
      EXPECT_TRUE(closure == rebuilt);
    });
  }
}

TEST(MooreFamilies, ClosedSetsAreMeetClosedAndContainTop) {
  for (const FiniteLattice& lattice : {boolean_lattice(3), subspace_lattice_gf2(2)}) {
    for_each_closure(lattice, [&](const LatticeClosure& closure) {
      const auto closed = closure.closed_elements();
      EXPECT_NE(std::find(closed.begin(), closed.end(), lattice.top()), closed.end());
      for (Elem a : closed) {
        for (Elem b : closed) {
          const Elem m = lattice.meet(a, b);
          EXPECT_NE(std::find(closed.begin(), closed.end(), m), closed.end());
        }
      }
    });
  }
}

}  // namespace
}  // namespace slat::lattice
