// The paper's §3 theorems, exhaustively machine-checked on finite lattices —
// including the two counterexample figures showing the hypotheses are tight.
#include "lattice/decomposition.hpp"

#include <gtest/gtest.h>

#include "lattice/constructions.hpp"
#include "lattice/enumerate.hpp"

namespace slat::lattice {
namespace {

LatticeClosure fig1_closure(const FiniteLattice& n5_lattice) {
  using E = N5Elems;
  auto closure = LatticeClosure::from_map(
      n5_lattice, {E::bottom, E::b, E::b, E::c, E::top});
  EXPECT_TRUE(closure.has_value());
  return *closure;
}

LatticeClosure fig2_closure(const FiniteLattice& fig2_lattice) {
  using E = Fig2Elems;
  // Any lattice closure mapping a to s: here a↦s, s↦s, b↦1, z↦1, 1↦1.
  auto closure = LatticeClosure::from_map(
      fig2_lattice, {E::s, E::s, E::top, E::top, E::top});
  EXPECT_TRUE(closure.has_value());
  return *closure;
}

// ---------------------------------------------------------------------------
// Lemmas
// ---------------------------------------------------------------------------

TEST(Lemmas, Lemma3HoldsForEveryClosureOnEveryTestLattice) {
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), m3(), n5(), subspace_lattice_gf2(2), divisor_lattice(30)}) {
    for_each_closure(lattice, [&](const LatticeClosure& cl) {
      EXPECT_EQ(verify_lemma3(lattice, cl), std::nullopt);
    });
  }
}

TEST(Lemmas, Lemma4HoldsOnComplementedLattices) {
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), m3(), partition_lattice(3), subspace_lattice_gf2(2)}) {
    ASSERT_TRUE(lattice.is_complemented());
    for_each_closure(lattice, [&](const LatticeClosure& cl) {
      EXPECT_EQ(verify_lemma4(lattice, cl), std::nullopt);
    });
  }
}

TEST(Lemmas, Lemma5HoldsEverywhere) {
  for (const FiniteLattice& lattice :
       {boolean_lattice(4), m3(), n5(), partition_lattice(4), subspace_lattice_gf2(3)}) {
    EXPECT_EQ(verify_lemma5(lattice), std::nullopt);
  }
}

// ---------------------------------------------------------------------------
// Theorems 2 and 3 (decomposition)
// ---------------------------------------------------------------------------

TEST(Theorem3, HoldsForAllClosurePairsOnModularComplementedLattices) {
  for (const FiniteLattice& lattice : {boolean_lattice(3), m3(), subspace_lattice_gf2(2)}) {
    ASSERT_TRUE(lattice.is_paper_setting());
    std::vector<LatticeClosure> closures;
    for_each_closure(lattice, [&](const LatticeClosure& cl) { closures.push_back(cl); });
    int checked_pairs = 0;
    for (const auto& cl1 : closures) {
      for (const auto& cl2 : closures) {
        if (!cl1.pointwise_leq(cl2)) continue;
        ++checked_pairs;
        EXPECT_EQ(verify_theorem3(lattice, cl1, cl2), std::nullopt);
      }
    }
    EXPECT_GT(checked_pairs, 0);
  }
}

TEST(Theorem2, SingleClosureDecompositionOnB4) {
  const FiniteLattice lattice = boolean_lattice(4);
  std::mt19937 rng(13);
  for (int i = 0; i < 25; ++i) {
    const LatticeClosure cl = LatticeClosure::random(lattice, rng);
    EXPECT_EQ(verify_theorem3(lattice, cl, cl), std::nullopt);
  }
}

TEST(Theorem3, DecompositionPartsAreWhatTheProofSays) {
  const FiniteLattice lattice = boolean_lattice(3);
  const LatticeClosure cl = LatticeClosure::from_closed_set(lattice, {0b110});
  for (Elem a = 0; a < lattice.size(); ++a) {
    const auto d = decompose(lattice, cl, a);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->safety, cl.apply(a));
    EXPECT_EQ(d->liveness, lattice.join(a, d->complement));
    EXPECT_TRUE(is_valid_decomposition(lattice, cl, cl, a, *d));
  }
}

// ---------------------------------------------------------------------------
// Figure 1 / Lemma 6: modularity is needed
// ---------------------------------------------------------------------------

TEST(Figure1, ElementAHasNoDecompositionInN5) {
  const FiniteLattice lattice = n5();
  const LatticeClosure cl = fig1_closure(lattice);
  // Lemma 6: no (safety, liveness) pair meets to a.
  EXPECT_EQ(find_any_decomposition(lattice, cl, cl, N5Elems::a), std::nullopt);
  // Every OTHER element does decompose (the failure is specific to a).
  for (Elem x : {N5Elems::bottom, N5Elems::b, N5Elems::c, N5Elems::top}) {
    EXPECT_NE(find_any_decomposition(lattice, cl, cl, x), std::nullopt) << x;
  }
}

TEST(Figure1, TheoremConstructionProducesInvalidDecompositionOnN5) {
  // The Theorem 3 construction can still be *run* on N5 — the theorem just
  // doesn't guarantee validity without modularity, and indeed it fails at a.
  const FiniteLattice lattice = n5();
  const LatticeClosure cl = fig1_closure(lattice);
  const auto d = decompose(lattice, cl, N5Elems::a);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(is_valid_decomposition(lattice, cl, cl, N5Elems::a, *d));
}

TEST(Figure1, EverySmallNonDecomposableLatticeClosurePairIsNonModular) {
  // Sweep: for every lattice with ≤ 5 elements and every closure on it, if
  // some element fails to decompose, the lattice is not modular (or not
  // complemented) — i.e. Theorem 2's hypotheses are exactly what the
  // counterexamples violate.
  for_each_labeled_lattice(5, [&](const FiniteLattice& lattice) {
    if (!lattice.is_complemented()) return;
    for_each_closure(lattice, [&](const LatticeClosure& cl) {
      for (Elem a = 0; a < lattice.size(); ++a) {
        if (!find_any_decomposition(lattice, cl, cl, a)) {
          EXPECT_FALSE(lattice.is_modular());
          return;
        }
      }
    });
  });
}

// ---------------------------------------------------------------------------
// Theorem 5: the US/EL mix is impossible
// ---------------------------------------------------------------------------

TEST(Theorem5, HoldsForAllClosurePairsOnTestLattices) {
  for (const FiniteLattice& lattice : {boolean_lattice(3), m3(), n5()}) {
    std::vector<LatticeClosure> closures;
    for_each_closure(lattice, [&](const LatticeClosure& cl) { closures.push_back(cl); });
    for (const auto& cl1 : closures) {
      for (const auto& cl2 : closures) {
        EXPECT_EQ(verify_theorem5(lattice, cl1, cl2), std::nullopt);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 6 (extremal safety — machine closure)
// ---------------------------------------------------------------------------

TEST(Theorem6, HoldsForAllClosurePairsOnTestLattices) {
  for (const FiniteLattice& lattice : {boolean_lattice(3), m3(), subspace_lattice_gf2(2)}) {
    std::vector<LatticeClosure> closures;
    for_each_closure(lattice, [&](const LatticeClosure& cl) { closures.push_back(cl); });
    for (const auto& cl1 : closures) {
      for (const auto& cl2 : closures) {
        if (!cl1.pointwise_leq(cl2)) continue;
        EXPECT_EQ(verify_theorem6(lattice, cl1, cl2), std::nullopt);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Theorem 7 (extremal liveness — needs distributivity) and Figure 2
// ---------------------------------------------------------------------------

TEST(Theorem7, HoldsOnDistributiveLattices) {
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), divisor_lattice(30), chain(4)}) {
    ASSERT_TRUE(lattice.is_distributive());
    for_each_closure(lattice, [&](const LatticeClosure& cl) {
      EXPECT_EQ(verify_theorem7(lattice, cl, cl), std::nullopt);
    });
  }
}

TEST(Figure2, Theorem7FailsOnTheModularNonDistributiveLattice) {
  const FiniteLattice lattice = fig2();
  ASSERT_TRUE(lattice.is_modular());
  ASSERT_FALSE(lattice.is_distributive());
  const LatticeClosure cl = fig2_closure(lattice);
  const auto violation = verify_theorem7(lattice, cl, cl);
  ASSERT_TRUE(violation.has_value());
  // The paper's witness: a = s ∧ z with s closed, b ∈ cmp(cl.a) = cmp(s),
  // yet z ≰ a ∨ b.
  using E = Fig2Elems;
  EXPECT_FALSE(lattice.leq(E::z, lattice.join(E::a, E::b)));
  EXPECT_TRUE(cl.is_safety_element(E::s));
  EXPECT_EQ(lattice.meet(E::s, E::z), E::a);
}

TEST(Figure2, Theorem3StillHoldsThere) {
  // Modularity suffices for the *decomposition* even where Theorem 7 fails.
  const FiniteLattice lattice = fig2();
  const LatticeClosure cl = fig2_closure(lattice);
  EXPECT_EQ(verify_theorem3(lattice, cl, cl), std::nullopt);
}

TEST(Theorem7, DistributiveLatticesHaveUniqueComplements) {
  for (const FiniteLattice& lattice : {boolean_lattice(4), divisor_lattice(30)}) {
    for (Elem a = 0; a < lattice.size(); ++a) {
      EXPECT_LE(lattice.complements(a).size(), 1u);
    }
  }
}

}  // namespace
}  // namespace slat::lattice
