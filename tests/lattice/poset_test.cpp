#include "lattice/finite_poset.hpp"

#include <gtest/gtest.h>

#include "lattice/constructions.hpp"

namespace slat::lattice {
namespace {

TEST(FinitePoset, RejectsNonReflexive) {
  std::vector<std::vector<bool>> leq = {{false}};
  EXPECT_FALSE(FinitePoset::from_leq(leq).has_value());
}

TEST(FinitePoset, RejectsNonAntisymmetric) {
  std::vector<std::vector<bool>> leq = {{true, true}, {true, true}};
  EXPECT_FALSE(FinitePoset::from_leq(leq).has_value());
}

TEST(FinitePoset, RejectsNonTransitive) {
  // 0 < 1, 1 < 2 but not 0 < 2.
  std::vector<std::vector<bool>> leq = {
      {true, true, false}, {false, true, true}, {false, false, true}};
  EXPECT_FALSE(FinitePoset::from_leq(leq).has_value());
}

TEST(FinitePoset, FromCoversClosesTransitively) {
  auto poset = FinitePoset::from_covers(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(poset.has_value());
  EXPECT_TRUE(poset->leq(0, 2));
  EXPECT_TRUE(poset->lt(0, 2));
  EXPECT_FALSE(poset->leq(2, 0));
}

TEST(FinitePoset, FromCoversRejectsCycles) {
  EXPECT_FALSE(FinitePoset::from_covers(2, {{0, 1}, {1, 0}}).has_value());
  EXPECT_FALSE(FinitePoset::from_covers(1, {{0, 0}}).has_value());
}

TEST(FinitePoset, CoverPairsRecoverInput) {
  auto poset = FinitePoset::from_covers(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  ASSERT_TRUE(poset.has_value());
  const std::vector<std::pair<Elem, Elem>> expected = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  EXPECT_EQ(poset->cover_pairs(), expected);
}

TEST(FinitePoset, MeetJoinOnDiamond) {
  auto poset = FinitePoset::from_covers(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  ASSERT_TRUE(poset.has_value());
  EXPECT_EQ(poset->meet(1, 2), 0);
  EXPECT_EQ(poset->join(1, 2), 3);
  EXPECT_EQ(poset->meet(1, 3), 1);
  EXPECT_EQ(poset->join(0, 2), 2);
  EXPECT_TRUE(poset->is_lattice());
}

TEST(FinitePoset, AntichainPairHasNoMeetWithoutBottom) {
  // Two incomparable elements with no common bound.
  auto poset = FinitePoset::from_covers(2, {});
  ASSERT_TRUE(poset.has_value());
  EXPECT_FALSE(poset->meet(0, 1).has_value());
  EXPECT_FALSE(poset->join(0, 1).has_value());
  EXPECT_FALSE(poset->is_lattice());
}

TEST(FinitePoset, MeetRequiresUniqueGreatestLowerBound) {
  // 0, 1 below both 2 and 3 (no bottom distinction): meet(2, 3) undefined.
  auto poset = FinitePoset::from_covers(4, {{0, 2}, {0, 3}, {1, 2}, {1, 3}});
  ASSERT_TRUE(poset.has_value());
  EXPECT_FALSE(poset->meet(2, 3).has_value());
}

TEST(FinitePoset, BottomTopMaximalMinimal) {
  auto poset = FinitePoset::from_covers(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  ASSERT_TRUE(poset.has_value());
  EXPECT_EQ(poset->bottom(), 0);
  EXPECT_EQ(poset->top(), 3);
  EXPECT_EQ(poset->minimal_elements(), std::vector<Elem>{0});
  EXPECT_EQ(poset->maximal_elements(), std::vector<Elem>{3});
}

TEST(FinitePoset, DualSwapsEverything) {
  auto poset = FinitePoset::from_covers(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(poset.has_value());
  const FinitePoset dual = poset->dual();
  EXPECT_TRUE(dual.leq(2, 0));
  EXPECT_EQ(dual.bottom(), 2);
  EXPECT_EQ(dual.top(), 0);
  EXPECT_TRUE(dual.dual() == *poset);
}

TEST(FinitePoset, DownSetsOfChainAreItsPrefixes) {
  auto poset = FinitePoset::from_covers(3, {{0, 1}, {1, 2}});
  ASSERT_TRUE(poset.has_value());
  const auto sets = poset->down_sets();
  // ∅, {0}, {0,1}, {0,1,2}.
  EXPECT_EQ(sets.size(), 4u);
}

TEST(FinitePoset, DownSetsOfAntichainAreAllSubsets) {
  auto poset = FinitePoset::from_covers(3, {});
  ASSERT_TRUE(poset.has_value());
  EXPECT_EQ(poset->down_sets().size(), 8u);
}

}  // namespace
}  // namespace slat::lattice
