#include "lattice/closure.hpp"

#include <gtest/gtest.h>

#include "lattice/constructions.hpp"
#include "lattice/enumerate.hpp"

namespace slat::lattice {
namespace {

TEST(LatticeClosure, IdentityAndToTopAreValid) {
  const FiniteLattice lattice = boolean_lattice(3);
  const LatticeClosure id = LatticeClosure::identity(lattice);
  const LatticeClosure top = LatticeClosure::to_top(lattice);
  for (Elem a = 0; a < lattice.size(); ++a) {
    EXPECT_EQ(id.apply(a), a);
    EXPECT_EQ(top.apply(a), lattice.top());
  }
  EXPECT_TRUE(id.pointwise_leq(top));
  EXPECT_FALSE(top.pointwise_leq(id));
}

TEST(LatticeClosure, FromMapValidatesLaws) {
  const FiniteLattice lattice = chain(3);
  // Not extensive: maps 1 to 0.
  EXPECT_FALSE(LatticeClosure::from_map(lattice, {0, 0, 2}).has_value());
  // Not idempotent: 0 -> 1 -> 2.
  EXPECT_FALSE(LatticeClosure::from_map(lattice, {1, 2, 2}).has_value());
  // Valid: 0 -> 1, closed above.
  EXPECT_TRUE(LatticeClosure::from_map(lattice, {1, 1, 2}).has_value());
}

TEST(LatticeClosure, NonMonotoneMapRejected) {
  const FiniteLattice lattice = boolean_lattice(2);
  // Elements: 0=∅, 1={x}, 2={y}, 3={x,y}. Map ∅ to {x,y} but {x} to itself:
  // ∅ ≤ {x} yet cl(∅) = {x,y} ≰ {x}.
  EXPECT_FALSE(LatticeClosure::from_map(lattice, {3, 1, 2, 3}).has_value());
  EXPECT_NE(LatticeClosure::violation(lattice, {3, 1, 2, 3}), std::nullopt);
}

TEST(LatticeClosure, PaperFigure1Closure) {
  // cl.a = b, identity elsewhere — the closure from Figure 1.
  const FiniteLattice lattice = n5();
  using E = N5Elems;
  std::vector<Elem> map = {E::bottom, E::b, E::b, E::c, E::top};
  const auto closure = LatticeClosure::from_map(lattice, map);
  ASSERT_TRUE(closure.has_value());
  EXPECT_FALSE(closure->is_safety_element(E::a));
  EXPECT_TRUE(closure->is_safety_element(E::b));
  // The only liveness element is the top.
  EXPECT_EQ(closure->liveness_elements(), std::vector<Elem>{E::top});
}

TEST(LatticeClosure, FromClosedSetMeetCompletes) {
  const FiniteLattice lattice = boolean_lattice(2);
  // Generate from the two singletons; their meet ∅ must become closed.
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {1, 2});
  EXPECT_TRUE(closure.is_safety_element(0));
  EXPECT_TRUE(closure.is_safety_element(1));
  EXPECT_TRUE(closure.is_safety_element(2));
  EXPECT_TRUE(closure.is_safety_element(3));  // top always closed
}

TEST(LatticeClosure, FromClosedSetComputesLeastClosedAbove) {
  const FiniteLattice lattice = chain(4);
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {2});
  EXPECT_EQ(closure.apply(0), 2);
  EXPECT_EQ(closure.apply(1), 2);
  EXPECT_EQ(closure.apply(2), 2);
  EXPECT_EQ(closure.apply(3), 3);
}

TEST(LatticeClosure, RandomClosuresAreValid) {
  std::mt19937 rng(7);
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), m3(), n5(), divisor_lattice(30), subspace_lattice_gf2(2)}) {
    for (int i = 0; i < 50; ++i) {
      const LatticeClosure closure = LatticeClosure::random(lattice, rng);
      std::vector<Elem> map(lattice.size());
      for (Elem a = 0; a < lattice.size(); ++a) map[a] = closure.apply(a);
      EXPECT_EQ(LatticeClosure::violation(lattice, map), std::nullopt);
    }
  }
}

TEST(LatticeClosure, EnumerationMatchesMeetClosedSubsets) {
  // On the chain 0<1<2, the meet-closed subsets containing the top are the
  // subsets of {0,1} extended with {2}: 4 closures.
  const FiniteLattice lattice = chain(3);
  int count = 0;
  for_each_closure(lattice, [&](const LatticeClosure&) { ++count; });
  EXPECT_EQ(count, 4);
}

TEST(LatticeClosure, EnumerationOnB2) {
  // B_2 subsets containing top, closed under meet: {T}, {T,0}, {T,a}, {T,b},
  // {T,a,0}, {T,b,0}, {T,a,b,0}, {T,0,a}... enumerate and cross-check count.
  const FiniteLattice lattice = boolean_lattice(2);
  int count = 0;
  for_each_closure(lattice, [&](const LatticeClosure& cl) {
    ++count;
    std::vector<Elem> map(lattice.size());
    for (Elem a = 0; a < lattice.size(); ++a) map[a] = cl.apply(a);
    EXPECT_EQ(LatticeClosure::violation(lattice, map), std::nullopt);
  });
  // Subsets of {∅,{x},{y}} (with top forced) closed under meet: all 8 minus
  // {{x},{y}} without ∅ — 7 closures.
  EXPECT_EQ(count, 7);
}

TEST(LatticeClosure, ClosedAndLivenessElements) {
  const FiniteLattice lattice = boolean_lattice(2);
  const LatticeClosure closure = LatticeClosure::from_closed_set(lattice, {1});
  EXPECT_EQ(closure.closed_elements(), (std::vector<Elem>{1, 3}));
  EXPECT_EQ(closure.liveness_elements(), (std::vector<Elem>{2, 3}));
}

}  // namespace
}  // namespace slat::lattice
