#include "lattice/finite_lattice.hpp"

#include <gtest/gtest.h>

#include "lattice/constructions.hpp"
#include "lattice/enumerate.hpp"
#include "lattice/render.hpp"

namespace slat::lattice {
namespace {

// Every construction must satisfy the §3 algebraic axioms.
class ConstructionAxioms : public ::testing::TestWithParam<FiniteLattice> {};

TEST_P(ConstructionAxioms, SatisfiesLatticeAxioms) {
  EXPECT_TRUE(GetParam().satisfies_lattice_axioms());
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructions, ConstructionAxioms,
    ::testing::Values(n5(), m3(), fig2(), boolean_lattice(0), boolean_lattice(1),
                      boolean_lattice(3), chain(1), chain(5), divisor_lattice(12),
                      divisor_lattice(30), partition_lattice(3), partition_lattice(4),
                      subspace_lattice_gf2(2), subspace_lattice_gf2(3),
                      product(m3(), chain(2)), product(n5(), boolean_lattice(1))));

TEST(Constructions, N5IsThePaperFigure1) {
  const FiniteLattice lattice = n5();
  using E = N5Elems;
  EXPECT_EQ(lattice.size(), 5);
  // The chain 0 < a < b < 1 and the side element 0 < c < 1.
  EXPECT_TRUE(lattice.lt(E::bottom, E::a));
  EXPECT_TRUE(lattice.lt(E::a, E::b));
  EXPECT_TRUE(lattice.lt(E::b, E::top));
  EXPECT_TRUE(lattice.lt(E::c, E::top));
  EXPECT_FALSE(lattice.poset().comparable(E::a, E::c));
  EXPECT_FALSE(lattice.poset().comparable(E::b, E::c));
  // Not modular — with exactly the witness from the caption: a ≤ b but
  // a ∨ (c ∧ b) = a while (a ∨ c) ∧ b = b.
  EXPECT_FALSE(lattice.is_modular());
  EXPECT_EQ(lattice.join(E::a, lattice.meet(E::c, E::b)), E::a);
  EXPECT_EQ(lattice.meet(lattice.join(E::a, E::c), E::b), E::b);
  // N5 is complemented: c complements both a and b.
  EXPECT_TRUE(lattice.is_complemented());
}

TEST(Constructions, M3IsModularComplementedNotDistributive) {
  const FiniteLattice lattice = m3();
  EXPECT_TRUE(lattice.is_modular());
  EXPECT_TRUE(lattice.is_complemented());
  EXPECT_FALSE(lattice.is_distributive());
  EXPECT_TRUE(lattice.is_paper_setting());
  EXPECT_FALSE(lattice.is_boolean());
  // Each atom has exactly the two other atoms as complements.
  for (Elem atom = 1; atom <= 3; ++atom) {
    EXPECT_EQ(lattice.complements(atom).size(), 2u);
  }
}

TEST(Constructions, Fig2WitnessesTheTheorem7Identities) {
  const FiniteLattice lattice = fig2();
  using E = Fig2Elems;
  // s ∧ (b ∨ z) = s but (s ∧ b) ∨ (s ∧ z) = a — the caption's identity.
  EXPECT_EQ(lattice.meet(E::s, lattice.join(E::b, E::z)), E::s);
  EXPECT_EQ(lattice.join(lattice.meet(E::s, E::b), lattice.meet(E::s, E::z)), E::a);
  // a = s ∧ z and b is a complement of s.
  EXPECT_EQ(lattice.meet(E::s, E::z), E::a);
  const auto cmp_s = lattice.complements(E::s);
  EXPECT_NE(std::find(cmp_s.begin(), cmp_s.end(), E::b), cmp_s.end());
  // z ≤ a ∨ b fails: a ∨ b = b and z ≰ b.
  EXPECT_EQ(lattice.join(E::a, E::b), E::b);
  EXPECT_FALSE(lattice.leq(E::z, lattice.join(E::a, E::b)));
}

TEST(Constructions, BooleanLatticeIsBoolean) {
  for (int n = 0; n <= 4; ++n) {
    const FiniteLattice lattice = boolean_lattice(n);
    EXPECT_EQ(lattice.size(), 1 << n);
    EXPECT_TRUE(lattice.is_boolean()) << "B_" << n;
    EXPECT_TRUE(lattice.is_modular());
    // Unique complement = bitwise negation.
    for (Elem a = 0; a < lattice.size(); ++a) {
      const auto cmp = lattice.complements(a);
      ASSERT_EQ(cmp.size(), 1u);
      EXPECT_EQ(cmp[0], (lattice.size() - 1) ^ a);
    }
  }
}

TEST(Constructions, ChainIsDistributiveButBarelyComplemented) {
  EXPECT_TRUE(chain(5).is_distributive());
  EXPECT_TRUE(chain(5).is_modular());
  EXPECT_FALSE(chain(3).is_complemented());  // the middle element has none
  EXPECT_TRUE(chain(2).is_complemented());
  EXPECT_TRUE(chain(1).is_complemented());
}

TEST(Constructions, DivisorLatticeComplementedIffSquarefree) {
  EXPECT_TRUE(divisor_lattice(30).is_complemented());   // 2·3·5
  EXPECT_TRUE(divisor_lattice(30).is_boolean());
  EXPECT_FALSE(divisor_lattice(12).is_complemented());  // 2²·3
  EXPECT_TRUE(divisor_lattice(12).is_distributive());
  EXPECT_EQ(divisor_lattice(12).size(), 6);  // 1,2,3,4,6,12
}

TEST(Constructions, PartitionLatticeShape) {
  const FiniteLattice p3 = partition_lattice(3);
  EXPECT_EQ(p3.size(), 5);  // Bell(3)
  EXPECT_TRUE(p3.is_complemented());
  EXPECT_TRUE(p3.is_modular());  // Π_3 ≅ M3
  const FiniteLattice p4 = partition_lattice(4);
  EXPECT_EQ(p4.size(), 15);  // Bell(4)
  EXPECT_TRUE(p4.is_complemented());
  EXPECT_FALSE(p4.is_modular());  // Π_n is not modular for n ≥ 4
}

TEST(Constructions, SubspaceLatticeIsThePaperSetting) {
  // dim 2: {0}, three lines, the plane — this IS M3.
  const FiniteLattice dim2 = subspace_lattice_gf2(2);
  EXPECT_EQ(dim2.size(), 5);
  EXPECT_TRUE(dim2.is_paper_setting());
  EXPECT_FALSE(dim2.is_distributive());

  // dim 3: 1 + 7 lines + 7 planes + 1 = 16 subspaces.
  const FiniteLattice dim3 = subspace_lattice_gf2(3);
  EXPECT_EQ(dim3.size(), 16);
  EXPECT_TRUE(dim3.is_modular());
  EXPECT_TRUE(dim3.is_complemented());
  EXPECT_FALSE(dim3.is_distributive());
}

TEST(Constructions, ProductPreservesStructure) {
  const FiniteLattice prod = product(boolean_lattice(1), boolean_lattice(2));
  EXPECT_EQ(prod.size(), 8);
  EXPECT_TRUE(prod.is_boolean());
  const FiniteLattice with_n5 = product(n5(), chain(2));
  EXPECT_FALSE(with_n5.is_modular());  // N5 embeds
}

TEST(Constructions, BirkhoffRoundTrip) {
  // A distributive lattice is the down-set lattice of its join-irreducibles.
  for (const FiniteLattice& lattice :
       {boolean_lattice(3), chain(4), divisor_lattice(12), divisor_lattice(30)}) {
    ASSERT_TRUE(lattice.is_distributive());
    const FinitePoset irr = join_irreducible_poset(lattice);
    const FiniteLattice rebuilt = downset_lattice(irr);
    EXPECT_EQ(rebuilt.size(), lattice.size());
    EXPECT_TRUE(rebuilt.is_distributive());
    // Isomorphic as lattices: same number of elements at each height and the
    // same modular/distributive/complemented profile is a cheap proxy; the
    // real isomorphism check is the size equality plus distributivity
    // (Birkhoff's theorem guarantees the rest for these inputs).
    EXPECT_EQ(rebuilt.is_complemented(), lattice.is_complemented());
  }
}

TEST(Constructions, JoinIrreduciblesOfBooleanLatticeAreAtoms) {
  const FiniteLattice b3 = boolean_lattice(3);
  const auto irr = b3.join_irreducibles();
  EXPECT_EQ(irr, (std::vector<Elem>{1, 2, 4}));
}

TEST(Enumerate, CountsLatticesUpToSize5) {
  // Labeled-poset enumeration restricted to natural labelings; the counts
  // of LATTICES among them are fixed reference values for regression.
  int total = 0, lattices = 0, modular = 0, distributive = 0;
  for_each_labeled_poset(5, [&](const FinitePoset& poset) {
    ++total;
    auto lattice = FiniteLattice::from_poset(poset);
    if (!lattice) return;
    ++lattices;
    if (lattice->is_modular()) ++modular;
    if (lattice->is_distributive()) ++distributive;
  });
  EXPECT_GT(total, 0);
  EXPECT_GT(lattices, 0);
  EXPECT_GE(modular, distributive);
  EXPECT_GT(lattices, modular);  // N5 exists at size 5
}

TEST(Render, TextAndDotMentionEveryElement) {
  const FiniteLattice lattice = n5();
  const std::string text = to_text(lattice, {"0", "a", "b", "c", "1"});
  EXPECT_NE(text.find('a'), std::string::npos);
  EXPECT_NE(text.find("covers:"), std::string::npos);
  const std::string dot = to_dot(lattice);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Render, HeightsOfChain) {
  EXPECT_EQ(element_heights(chain(4)), (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace slat::lattice
