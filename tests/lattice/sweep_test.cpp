// Parameterized theorem sweep: one named lattice per parameter, the full
// §3 battery per instance. Complements the exhaustive per-theorem tests
// with a per-structure view (which lattice breaks which hypothesis).
#include <gtest/gtest.h>

#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "lattice/enumerate.hpp"

namespace slat::lattice {
namespace {

struct SweepCase {
  const char* name;
  FiniteLattice (*make)();
  bool modular;
  bool distributive;
  bool complemented;
};

FiniteLattice make_b3() { return boolean_lattice(3); }
FiniteLattice make_b4() { return boolean_lattice(4); }
FiniteLattice make_m3() { return m3(); }
FiniteLattice make_n5() { return n5(); }
FiniteLattice make_gf2_2() { return subspace_lattice_gf2(2); }
FiniteLattice make_pi3() { return partition_lattice(3); }
FiniteLattice make_pi4() { return partition_lattice(4); }
FiniteLattice make_div30() { return divisor_lattice(30); }
FiniteLattice make_div12() { return divisor_lattice(12); }
FiniteLattice make_chain5() { return chain(5); }
FiniteLattice make_m3_x_b1() { return product(m3(), boolean_lattice(1)); }

class LatticeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LatticeSweep, StructurePredicatesMatchExpectation) {
  const FiniteLattice lattice = GetParam().make();
  EXPECT_EQ(lattice.is_modular(), GetParam().modular);
  EXPECT_EQ(lattice.is_distributive(), GetParam().distributive);
  EXPECT_EQ(lattice.is_complemented(), GetParam().complemented);
  EXPECT_TRUE(lattice.satisfies_lattice_axioms());
}

TEST_P(LatticeSweep, DistributiveImpliesModular) {
  const FiniteLattice lattice = GetParam().make();
  if (lattice.is_distributive()) {
    EXPECT_TRUE(lattice.is_modular());
  }
}

TEST_P(LatticeSweep, Theorem3WhereHypothesesHold) {
  const SweepCase& c = GetParam();
  if (!(c.modular && c.complemented)) GTEST_SKIP() << "hypotheses absent by design";
  const FiniteLattice lattice = c.make();
  std::mt19937 rng(211);
  for (int i = 0; i < 12; ++i) {
    const LatticeClosure cl = LatticeClosure::random(lattice, rng);
    EXPECT_EQ(verify_theorem3(lattice, cl, cl), std::nullopt) << c.name;
  }
}

TEST_P(LatticeSweep, Theorem5And6HoldUnconditionally) {
  const FiniteLattice lattice = GetParam().make();
  std::mt19937 rng(223);
  for (int i = 0; i < 6; ++i) {
    const LatticeClosure cl1 = LatticeClosure::random(lattice, rng);
    const LatticeClosure cl2 = LatticeClosure::random(lattice, rng);
    EXPECT_EQ(verify_theorem5(lattice, cl1, cl2), std::nullopt) << GetParam().name;
    if (cl1.pointwise_leq(cl2)) {
      EXPECT_EQ(verify_theorem6(lattice, cl1, cl2), std::nullopt) << GetParam().name;
    }
  }
}

TEST_P(LatticeSweep, Theorem7WhereDistributive) {
  const SweepCase& c = GetParam();
  if (!c.distributive) GTEST_SKIP() << "not distributive by design";
  const FiniteLattice lattice = c.make();
  std::mt19937 rng(227);
  for (int i = 0; i < 8; ++i) {
    const LatticeClosure cl = LatticeClosure::random(lattice, rng);
    EXPECT_EQ(verify_theorem7(lattice, cl, cl), std::nullopt) << c.name;
  }
}

TEST_P(LatticeSweep, DualLatticeKeepsModularity) {
  // Modularity and distributivity are self-dual properties.
  const FiniteLattice lattice = GetParam().make();
  const FiniteLattice dual = lattice.dual();
  EXPECT_EQ(dual.is_modular(), lattice.is_modular());
  EXPECT_EQ(dual.is_distributive(), lattice.is_distributive());
  EXPECT_EQ(dual.is_complemented(), lattice.is_complemented());
}

TEST_P(LatticeSweep, DedekindMacNeilleIsIdentityOnLattices) {
  const FiniteLattice lattice = GetParam().make();
  if (lattice.size() > 20) GTEST_SKIP() << "completion enumeration bound";
  const DedekindMacNeille dm = dedekind_macneille(lattice.poset());
  EXPECT_EQ(dm.lattice.size(), lattice.size()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    NamedLattices, LatticeSweep,
    ::testing::Values(
        SweepCase{"B3", make_b3, true, true, true},
        SweepCase{"B4", make_b4, true, true, true},
        SweepCase{"M3", make_m3, true, false, true},
        SweepCase{"N5", make_n5, false, false, true},
        SweepCase{"GF2_2", make_gf2_2, true, false, true},
        SweepCase{"Pi3", make_pi3, true, false, true},
        SweepCase{"Pi4", make_pi4, false, false, true},
        SweepCase{"Div30", make_div30, true, true, true},
        SweepCase{"Div12", make_div12, true, true, false},
        SweepCase{"Chain5", make_chain5, true, true, false},
        SweepCase{"M3xB1", make_m3_x_b1, true, false, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) { return info.param.name; });

}  // namespace
}  // namespace slat::lattice
