// The minimal DFA-backed monitor: verdict-equivalent to SafetyMonitor and
// never larger.
#include "monitor/dfa_monitor.hpp"

#include <gtest/gtest.h>

#include "monitor/monitor.hpp"

namespace slat::monitor {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

class DfaMonitorFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{words::Alphabet::binary()};

  ltl::FormulaId parse(const char* text) { return *arena.parse(text); }
};

TEST_F(DfaMonitorFixture, SameVerdictsAsSubsetMonitor) {
  const std::vector<words::Word> traces = {
      {}, {kA}, {kB}, {kA, kA}, {kA, kB}, {kB, kA}, {kA, kB, kA, kA},
      {kB, kB, kB}, {kA, kA, kB, kA, kB}};
  for (const char* text :
       {"G a", "a & F !a", "G (a -> X !a)", "G F a", "false", "a U b", "a W b"}) {
    SafetyMonitor subset = SafetyMonitor::from_ltl(arena, parse(text));
    DfaMonitor minimal = DfaMonitor::from_ltl(arena, parse(text));
    EXPECT_EQ(subset.is_vacuous(), minimal.is_vacuous()) << text;
    for (const auto& trace : traces) {
      EXPECT_EQ(subset.run(trace), minimal.run(trace)) << text;
    }
  }
}

TEST_F(DfaMonitorFixture, NeverLargerThanSubsetMonitor) {
  for (const char* text :
       {"G a", "a & F !a", "G (a -> X !a)", "G (a | X (a | X a))", "a U b"}) {
    SafetyMonitor subset = SafetyMonitor::from_ltl(arena, parse(text));
    DfaMonitor minimal = DfaMonitor::from_ltl(arena, parse(text));
    EXPECT_LE(minimal.automaton().num_states(), subset.automaton().num_states())
        << text;
  }
}

TEST_F(DfaMonitorFixture, StepAndLatching) {
  DfaMonitor monitor = DfaMonitor::from_ltl(arena, parse("G a"));
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_FALSE(monitor.step(kB));
  EXPECT_TRUE(monitor.violated());
  EXPECT_FALSE(monitor.step(kA));  // latched
  monitor.reset();
  EXPECT_FALSE(monitor.violated());
  EXPECT_TRUE(monitor.step(kA));
}

TEST_F(DfaMonitorFixture, WeakUntilMonitors) {
  // a W b is safety. Over the BINARY alphabet every prefix is all-a
  // (extendable to a^ω) or contains b, so no finite trace can violate it —
  // the monitor is vacuous there; the ternary alphabet below is not.
  DfaMonitor monitor = DfaMonitor::from_ltl(arena, parse("a W b"));
  EXPECT_TRUE(monitor.is_vacuous());
  EXPECT_EQ(monitor.run({kA, kA, kB}), std::nullopt);
  EXPECT_EQ(monitor.run({kB}), std::nullopt);
  // After b everything is allowed...
  EXPECT_EQ(monitor.run({kA, kB, kA, kB, kB}), std::nullopt);
  // ...but a bare stop of a before b violates: "ab" is fine; "a then
  // neither a nor b" is impossible over the binary alphabet, so a W b over
  // {a,b} is violated never — use the ternary alphabet instead.
  words::Alphabet ternary({"a", "b", "c"});
  ltl::LtlArena arena3(ternary);
  DfaMonitor monitor3 = DfaMonitor::from_ltl(arena3, *arena3.parse("a W b"));
  const auto s = [&](const char* name) { return *ternary.index_of(name); };
  EXPECT_EQ(monitor3.run({s("a"), s("a"), s("c")}), std::optional<std::size_t>(2));
  EXPECT_EQ(monitor3.run({s("a"), s("b"), s("c")}), std::nullopt);
  EXPECT_EQ(monitor3.run({s("c")}), std::optional<std::size_t>(0));
}

TEST_F(DfaMonitorFixture, OutOfAlphabetEventsRejectDeterministically) {
  // Regression: the raw event went straight into Dfa::step, whose
  // precondition assert aborts the process on an out-of-range symbol (and
  // without the assert it would be an out-of-bounds read). The monitor now
  // latches a deterministic violation instead, same as SafetyMonitor.
  DfaMonitor monitor = DfaMonitor::from_ltl(arena, parse("G a"));
  const words::Sym beyond = monitor.automaton().alphabet().size();
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_FALSE(monitor.step(beyond));
  EXPECT_TRUE(monitor.violated());
  EXPECT_FALSE(monitor.step(kA));  // latched
  monitor.reset();
  EXPECT_FALSE(monitor.step(words::Sym{-1}));
  EXPECT_EQ(monitor.run({kA, beyond, kA}), std::optional<std::size_t>(1));
}

TEST_F(DfaMonitorFixture, EmptyPrefixViolationIsReportedByRun) {
  // Regression twin of SafetyMonitor's: run({}) on an unsatisfiable
  // closure must report 0 accepted events, not "safe throughout".
  DfaMonitor monitor = DfaMonitor::from_ltl(arena, parse("false"));
  EXPECT_TRUE(monitor.violated());
  EXPECT_EQ(monitor.run({}), std::optional<std::size_t>(0));
  EXPECT_EQ(monitor.run({kA, kB}), std::optional<std::size_t>(0));
  // And the two monitors agree on the verdict, empty trace included.
  SafetyMonitor subset = SafetyMonitor::from_ltl(arena, parse("false"));
  EXPECT_EQ(subset.run({}), monitor.run({}));
}

TEST_F(DfaMonitorFixture, VacuousMonitorHasOneState) {
  DfaMonitor monitor = DfaMonitor::from_ltl(arena, parse("G F a"));
  EXPECT_TRUE(monitor.is_vacuous());
  EXPECT_EQ(monitor.automaton().num_states(), 1);
}

}  // namespace
}  // namespace slat::monitor
