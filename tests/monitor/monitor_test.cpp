#include "monitor/monitor.hpp"

#include <gtest/gtest.h>

namespace slat::monitor {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

class MonitorFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{words::Alphabet::binary()};

  SafetyMonitor monitor_for(const char* text) {
    const auto f = arena.parse(text);
    EXPECT_TRUE(f.has_value()) << text;
    return SafetyMonitor::from_ltl(arena, *f);
  }
};

TEST_F(MonitorFixture, GaRejectsAtFirstB) {
  SafetyMonitor monitor = monitor_for("G a");
  monitor.record_trace(16);
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_FALSE(monitor.step(kB));
  EXPECT_TRUE(monitor.violated());
  // Latching: everything afterwards is rejected.
  EXPECT_FALSE(monitor.step(kA));
  EXPECT_EQ(monitor.accepted_trace(), (Word{kA, kA}));
}

TEST_F(MonitorFixture, RunReportsFirstViolationIndex) {
  SafetyMonitor monitor = monitor_for("G a");
  EXPECT_EQ(monitor.run({kA, kA, kB, kA}), std::optional<std::size_t>(2));
  EXPECT_EQ(monitor.run({kA, kA, kA}), std::nullopt);
}

TEST_F(MonitorFixture, LivenessSpecificationsAreVacuous) {
  // Pure liveness cannot be refuted by any finite trace: the monitor's
  // safety closure is universal.
  for (const char* text : {"G F a", "F G !a", "F b"}) {
    SafetyMonitor monitor = monitor_for(text);
    EXPECT_TRUE(monitor.is_vacuous()) << text;
    EXPECT_EQ(monitor.run({kB, kB, kB, kB, kB, kB}), std::nullopt) << text;
  }
}

TEST_F(MonitorFixture, P3MonitorsItsSafetyPart) {
  // p3 = a ∧ F¬a: the safety closure is "first symbol a"; only the first
  // event can violate.
  SafetyMonitor monitor = monitor_for("a & F !a");
  EXPECT_FALSE(monitor.is_vacuous());
  EXPECT_EQ(monitor.run({kB}), std::optional<std::size_t>(0));
  EXPECT_EQ(monitor.run({kA, kB, kB, kA}), std::nullopt);
}

TEST_F(MonitorFixture, FalseSpecificationRejectsImmediately) {
  SafetyMonitor monitor = monitor_for("false");
  EXPECT_TRUE(monitor.violated());  // the empty trace already fails
  EXPECT_FALSE(monitor.step(kA));
}

TEST_F(MonitorFixture, EmptyPrefixViolationIsReportedByRun) {
  // Regression: an unsatisfiable closure latches violated_ in the
  // constructor, but run({}) used to fall through the loop and report
  // nullopt ("safe throughout"). The verdict is defined as the number of
  // events accepted before the violation — 0 here, for every trace.
  SafetyMonitor monitor = monitor_for("false");
  EXPECT_EQ(monitor.run({}), std::optional<std::size_t>(0));
  EXPECT_EQ(monitor.run({kA}), std::optional<std::size_t>(0));
  EXPECT_EQ(monitor.run({kB, kA, kB}), std::optional<std::size_t>(0));
  // A satisfiable closure still reports the empty trace as safe.
  SafetyMonitor ok = monitor_for("G a");
  EXPECT_EQ(ok.run({}), std::nullopt);
}

TEST_F(MonitorFixture, OutOfAlphabetEventsRejectDeterministically) {
  // Regression: step() used to index the DetSafety table with the raw
  // event, so an out-of-alphabet symbol was an out-of-bounds read (silent
  // in release builds; caught by ASan). The hardened path latches a
  // violation instead, without touching the table.
  SafetyMonitor monitor = monitor_for("G a");
  EXPECT_TRUE(monitor.step(kA));
  const Sym beyond = monitor.automaton().alphabet().size();
  EXPECT_FALSE(monitor.step(beyond));
  EXPECT_TRUE(monitor.violated());
  EXPECT_FALSE(monitor.step(kA));  // latched, like any other violation

  monitor.reset();
  EXPECT_FALSE(monitor.step(Sym{-1}));
  EXPECT_TRUE(monitor.violated());

  // Through run(): the garbage event's index is the verdict, and the run
  // is repeatable (deterministic rejection, not UB).
  EXPECT_EQ(monitor.run({kA, kA, beyond, kA}), std::optional<std::size_t>(2));
  EXPECT_EQ(monitor.run({kA, kA, beyond, kA}), std::optional<std::size_t>(2));
  // Even a vacuous (pure-liveness) monitor rejects garbage events: they
  // are not symbols of Σ at all.
  SafetyMonitor vacuous = monitor_for("G F a");
  EXPECT_EQ(vacuous.run({kA, beyond}), std::optional<std::size_t>(1));
}

TEST_F(MonitorFixture, ResetRestoresInitialState) {
  SafetyMonitor monitor = monitor_for("G a");
  monitor.record_trace(16);
  EXPECT_EQ(monitor.run({kB}), std::optional<std::size_t>(0));
  monitor.reset();
  EXPECT_FALSE(monitor.violated());
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_EQ(monitor.accepted_trace(), (Word{kA}));
  EXPECT_EQ(monitor.accepted_count(), 1u);
}

TEST_F(MonitorFixture, LongTraceStaysBoundedWithoutRecording) {
  // Regression: step() used to append every accepted event to an internal
  // vector unconditionally, so a long-running monitor grew O(trace). With
  // recording off (the default) the buffer must stay empty — capacity
  // included — no matter how many events stream through.
  SafetyMonitor monitor = monitor_for("G a");
  constexpr std::size_t kEvents = 2'000'000;
  for (std::size_t i = 0; i < kEvents; ++i) {
    ASSERT_TRUE(monitor.step(kA));
  }
  EXPECT_EQ(monitor.accepted_count(), kEvents);
  EXPECT_TRUE(monitor.accepted_trace().empty());
  EXPECT_EQ(monitor.accepted_trace().capacity(), 0u);
}

TEST_F(MonitorFixture, RecordingIsBoundedAtTheRequestedCap) {
  SafetyMonitor monitor = monitor_for("G a");
  monitor.record_trace(8);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(monitor.step(kA));
  }
  EXPECT_EQ(monitor.accepted_trace().size(), 8u);     // first 8 events kept
  EXPECT_EQ(monitor.accepted_count(), 1000u);         // but all counted
  EXPECT_LE(monitor.accepted_trace().capacity(), 16u);  // and no silent growth
  monitor.stop_recording();
  EXPECT_FALSE(monitor.recording());
  EXPECT_TRUE(monitor.accepted_trace().empty());
  EXPECT_EQ(monitor.accepted_trace().capacity(), 0u);
}

TEST_F(MonitorFixture, RequestResponsePolicy) {
  // Schneider-style policy over {request=a, response=b}: after a request,
  // no further request until a response: G (a -> X (b R !a))... expressed
  // as the safety formula G (a -> X (!a U b | G !a)) simplified to the
  // automaton level: use G (a -> X !a) for a strict alternation check.
  SafetyMonitor monitor = monitor_for("G (a -> X !a)");
  EXPECT_EQ(monitor.run({kA, kB, kA, kB}), std::nullopt);
  EXPECT_EQ(monitor.run({kA, kA}), std::optional<std::size_t>(1));
}

TEST_F(MonitorFixture, FromNbaDirectly) {
  // Hand-built Ga automaton.
  Nba ga(words::Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  SafetyMonitor monitor = SafetyMonitor::from_nba(ga);
  EXPECT_TRUE(monitor.step(kA));
  EXPECT_FALSE(monitor.step(kB));
}

}  // namespace
}  // namespace slat::monitor
