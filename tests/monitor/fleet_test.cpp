// MonitorFleet: compiled-table verdicts must be exactly SafetyMonitor's
// (empty-prefix and out-of-alphabet semantics included), and the batched
// ingest path must be bit-identical to scalar stepping at every thread
// count. The 10^4-session tier lives in fleet_smoke_test.cpp.
#include "monitor/fleet.hpp"

#include <gtest/gtest.h>

#include "core/thread_pool.hpp"
#include "monitor/monitor.hpp"
#include "monitor/traffic.hpp"
#include "qc/seed.hpp"

namespace slat::monitor {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

/// "No run of more than `limit` consecutive b's": a (limit+1)-state
/// all-accepting chain over Σ = {a, b}; the b-counter overflows into a
/// missing transition, so the closure's determinization grows a sink.
buchi::Nba b_run_limit(int limit) {
  buchi::Nba nba(words::Alphabet::binary(), limit + 1, 0);
  for (int q = 0; q <= limit; ++q) {
    nba.set_accepting(q, true);
    nba.add_transition(q, kA, 0);
    if (q < limit) nba.add_transition(q, kB, q + 1);
  }
  return nba;
}

buchi::Nba false_spec() {
  return buchi::Nba::empty_language(words::Alphabet::binary());
}

class FleetFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{words::Alphabet::binary()};
};

TEST_F(FleetFixture, VerdictsMatchSafetyMonitor) {
  MonitorFleet fleet;
  const MonitorId m = fleet.compile_nba(b_run_limit(2));
  SafetyMonitor reference = SafetyMonitor::from_nba(b_run_limit(2));

  const std::vector<words::Word> traces = {
      {},          {kA},           {kB, kB},       {kB, kB, kB},
      {kA, kB, kB, kA, kB, kB, kB}, {kB, kB, kA, kB, kB, kA}};
  for (const words::Word& trace : traces) {
    const SessionId session = fleet.open_session(m);
    std::optional<std::size_t> fleet_verdict;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (!fleet.step(session, trace[i])) {
        fleet_verdict = i;
        break;
      }
    }
    EXPECT_EQ(fleet_verdict, reference.run(trace));
    EXPECT_EQ(fleet.session_violated(session), reference.violated());
  }
}

TEST_F(FleetFixture, UnsatisfiableClosureSessionsAreBornViolated) {
  MonitorFleet fleet;
  const MonitorId m = fleet.compile_nba(false_spec());
  EXPECT_TRUE(fleet.rejects_empty_prefix(m));
  const SessionId session = fleet.open_session(m);
  // The empty-prefix verdict of the fleet path: violated before any event,
  // every event rejected — the contract SafetyMonitor::run({}) == 0 maps to.
  EXPECT_TRUE(fleet.session_violated(session));
  EXPECT_FALSE(fleet.step(session, kA));
  EXPECT_TRUE(fleet.session_violated(session));
  EXPECT_EQ(fleet.count_violated(), 1u);
}

TEST_F(FleetFixture, OutOfAlphabetEventsLatchTheSink) {
  MonitorFleet fleet;
  const MonitorId m = fleet.compile_ltl(arena, *arena.parse("G a"));
  const SessionId session = fleet.open_session(m);
  EXPECT_TRUE(fleet.step(session, kA));
  EXPECT_FALSE(fleet.step(session, words::Sym{2}));  // == |Σ|: not a symbol
  EXPECT_TRUE(fleet.session_violated(session));
  EXPECT_FALSE(fleet.step(session, kA));  // latched

  const SessionId other = fleet.open_session(m);
  EXPECT_FALSE(fleet.step(other, words::Sym{-7}));
  EXPECT_TRUE(fleet.session_violated(other));
}

TEST_F(FleetFixture, VacuousMonitorNeverViolatesOnAlphabetEvents) {
  MonitorFleet fleet;
  const MonitorId m = fleet.compile_ltl(arena, *arena.parse("G F a"));
  EXPECT_FALSE(fleet.rejects_empty_prefix(m));
  const SessionId session = fleet.open_session(m);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(fleet.step(session, i % 2 == 0 ? kB : kA));
  }
  // ...but garbage events are violations even for vacuous monitors.
  EXPECT_FALSE(fleet.step(session, words::Sym{5}));
}

TEST_F(FleetFixture, SessionsSurviveSlabAndShardBoundaries) {
  MonitorFleet fleet(/*num_shards=*/4);
  const MonitorId ga = fleet.compile_ltl(arena, *arena.parse("G a"));
  const MonitorId limit = fleet.compile_nba(b_run_limit(1));
  // Enough sessions to cross several 1024-session slab boundaries in every
  // shard; alternate monitors so neighbors differ.
  constexpr std::uint32_t kSessions = 3 * 4 * 1024 + 37;
  for (std::uint32_t i = 0; i < kSessions; ++i) {
    const SessionId id = fleet.open_session(i % 2 == 0 ? ga : limit);
    ASSERT_EQ(id, i);  // dense ids, in open order
  }
  ASSERT_EQ(fleet.num_sessions(), kSessions);
  // Violate exactly the odd (b_run_limit(1)) sessions with a bb burst.
  for (std::uint32_t i = 1; i < kSessions; i += 2) {
    EXPECT_EQ(fleet.session_monitor(i), limit);
    EXPECT_TRUE(fleet.step(i, kB));
    EXPECT_FALSE(fleet.step(i, kB));
  }
  for (std::uint32_t i = 0; i < kSessions; ++i) {
    EXPECT_EQ(fleet.session_violated(i), i % 2 == 1) << i;
  }
  EXPECT_EQ(fleet.count_violated(), kSessions / 2);
}

TEST_F(FleetFixture, BatchedIngestIsBitIdenticalToScalarStepping) {
  // Two identically-built fleets: one stepped per event, one fed the same
  // events as batches at 1 and 4 threads. States and verdicts must match
  // exactly (the repo-wide bit-identical-output contract).
  const TrafficConfig cfg{.num_sessions = 500,
                          .num_monitors = 3,
                          .alphabet_size = 2,
                          .common_sym_bias = 0.8,
                          .garbage_rate = 0.02};
  auto build = [&](MonitorFleet& fleet) {
    std::mt19937 rng = qc::make_rng("fleet_test.batch_scalar");
    const MonitorId specs[3] = {fleet.compile_nba(b_run_limit(1)),
                                fleet.compile_nba(b_run_limit(3)),
                                fleet.compile_nba(false_spec())};
    for (const MonitorId m : zipf_monitor_assignment(cfg, rng)) {
      fleet.open_session(specs[m]);
    }
  };
  MonitorFleet scalar, batched1, batched4;
  build(scalar);
  build(batched1);
  build(batched4);

  core::ThreadPool pool1(1), pool4(4);
  std::mt19937 rng = qc::make_rng("fleet_test.batch_scalar.events");
  for (int round = 0; round < 4; ++round) {
    const std::vector<Event> batch = make_batch(cfg, 2000, rng);
    std::vector<std::uint8_t> scalar_verdicts(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      scalar_verdicts[i] = scalar.step(batch[i].session, batch[i].sym) ? 1 : 0;
    }
    std::vector<std::uint8_t> verdicts1(batch.size()), verdicts4(batch.size());
    batched1.ingest(batch, verdicts1, pool1);
    batched4.ingest(batch, verdicts4, pool4);
    ASSERT_EQ(scalar_verdicts, verdicts1) << "round " << round;
    ASSERT_EQ(scalar_verdicts, verdicts4) << "round " << round;
    for (SessionId id = 0; id < cfg.num_sessions; ++id) {
      ASSERT_EQ(scalar.session_state(id), batched1.session_state(id)) << id;
      ASSERT_EQ(scalar.session_state(id), batched4.session_state(id)) << id;
    }
  }
  EXPECT_EQ(scalar.count_violated(), batched4.count_violated());
}

TEST_F(FleetFixture, RawProgramsValidateTheSinkLatch) {
  MonitorFleet fleet;
  // A well-formed 2-state program: live state 0 (a stays, b sinks), sink 1.
  const MonitorId m = fleet.add_program(2, 2, 0, 1, {0, 1, 1, 1});
  const SessionId s = fleet.open_session(m);
  EXPECT_TRUE(fleet.step(s, kA));
  EXPECT_FALSE(fleet.step(s, kB));
  EXPECT_FALSE(fleet.step(s, kA));  // latched by the sink row
  // A sink row that does not self-loop (the dropped-latch defect) is
  // rejected at program-load time.
  EXPECT_DEATH(fleet.add_program(2, 2, 0, 1, {0, 1, 0, 1}),
               "sink row must self-loop");
}

TEST_F(FleetFixture, TrafficGeneratorIsSeedDeterministic) {
  const TrafficConfig cfg{.num_sessions = 100, .num_monitors = 5};
  std::mt19937 rng_a = qc::make_rng("fleet_test.traffic");
  std::mt19937 rng_b = qc::make_rng("fleet_test.traffic");
  const auto assign_a = zipf_monitor_assignment(cfg, rng_a);
  const auto assign_b = zipf_monitor_assignment(cfg, rng_b);
  ASSERT_EQ(assign_a, assign_b);
  std::size_t hottest = 0;
  for (const MonitorId m : assign_a) {
    ASSERT_LT(m, cfg.num_monitors);
    if (m == 0) ++hottest;
  }
  // Zipf skew: the hottest monitor holds more sessions than a uniform share.
  EXPECT_GT(hottest, assign_a.size() / cfg.num_monitors);

  const auto batch_a = make_batch(cfg, 1000, rng_a);
  const auto batch_b = make_batch(cfg, 1000, rng_b);
  ASSERT_EQ(batch_a.size(), 1000u);
  for (std::size_t i = 0; i < batch_a.size(); ++i) {
    ASSERT_EQ(batch_a[i].session, batch_b[i].session);
    ASSERT_EQ(batch_a[i].sym, batch_b[i].sym);
    ASSERT_LT(batch_a[i].session, cfg.num_sessions);
  }
}

}  // namespace
}  // namespace slat::monitor
