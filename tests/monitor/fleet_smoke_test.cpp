// The fleet-smoke tier (ctest label `fleet-smoke`, loud TIMEOUT): a
// 10^4-session fleet driven through seeded bursty/zipf traffic, with the
// batched ingest replayed scalar-by-scalar and compared bit-for-bit.
// Intentionally heavier than fleet_test.cpp and intentionally parallel
// (global pool at 4 threads), so a TSan build of this one test vets the
// shard-ownership claims of MonitorFleet::ingest under real contention.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/thread_pool.hpp"
#include "monitor/fleet.hpp"
#include "monitor/traffic.hpp"
#include "qc/seed.hpp"

namespace slat::monitor {
namespace {

/// "No run of more than `limit` consecutive b's" (same family as
/// fleet_test.cpp and bench_fleet.cpp).
buchi::Nba b_run_limit(int limit) {
  buchi::Nba nba(words::Alphabet::binary(), limit + 1, 0);
  for (int q = 0; q <= limit; ++q) {
    nba.set_accepting(q, true);
    nba.add_transition(q, 0, 0);
    if (q < limit) nba.add_transition(q, 1, q + 1);
  }
  return nba;
}

TEST(FleetSmoke, TenThousandSessionsBatchedEqualsScalar) {
  const TrafficConfig cfg{.num_sessions = 10'000,
                          .num_monitors = 12,
                          .alphabet_size = 2,
                          .common_sym_bias = 0.85,
                          .garbage_rate = 0.01};

  const auto build = [&](MonitorFleet& fleet) {
    std::mt19937 rng = qc::make_rng("fleet_smoke.build");
    std::vector<MonitorId> specs;
    for (std::uint32_t j = 0; j < cfg.num_monitors; ++j) {
      specs.push_back(fleet.compile_nba(b_run_limit(1 + static_cast<int>(j % 6))));
    }
    for (const MonitorId m : zipf_monitor_assignment(cfg, rng)) {
      fleet.open_session(specs[m]);
    }
  };

  MonitorFleet batched, scalar;
  build(batched);
  build(scalar);
  ASSERT_EQ(batched.num_sessions(), cfg.num_sessions);

  core::ThreadPool pool(4);
  std::mt19937 rng = qc::make_rng("fleet_smoke.events");
  constexpr int kBatches = 20;
  constexpr std::size_t kBatchEvents = 50'000;
  for (int round = 0; round < kBatches; ++round) {
    const std::vector<Event> batch = make_batch(cfg, kBatchEvents, rng);
    std::vector<std::uint8_t> batched_verdicts(batch.size());
    batched.ingest(batch, batched_verdicts, pool);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const bool accepted = scalar.step(batch[i].session, batch[i].sym);
      ASSERT_EQ(batched_verdicts[i], accepted ? 1 : 0)
          << "round " << round << " event " << i;
    }
  }
  for (SessionId id = 0; id < cfg.num_sessions; ++id) {
    ASSERT_EQ(batched.session_state(id), scalar.session_state(id)) << id;
  }
  EXPECT_EQ(batched.count_violated(), scalar.count_violated());
  // One million bursty events over 10^4 zipf sessions must have latched a
  // healthy violation mix — an all-safe or all-violated end state means the
  // workload (or the monitors) degenerated.
  const std::size_t violated = batched.count_violated();
  EXPECT_GT(violated, 0u);
  EXPECT_LT(violated, cfg.num_sessions);
}

}  // namespace
}  // namespace slat::monitor
