#include "games/rabin_game.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slat::games {
namespace {

TEST(IarExpansion, TrivialGreenPairMakesPlayerZeroWin) {
  // One node, self-loop, green for pair 0 and never red: player 0 wins.
  RabinGame game;
  game.num_pairs = 1;
  game.add_node(0, RabinMarks{.green = 1u, .red = 0u});
  game.add_edge(0, 0);
  const auto solution = solve_rabin(game);
  EXPECT_EQ(solution.winner[0], 0);
}

TEST(IarExpansion, RedOnTheOnlyCycleMakesPlayerOneWin) {
  RabinGame game;
  game.num_pairs = 1;
  game.add_node(0, RabinMarks{.green = 1u, .red = 1u});
  game.add_edge(0, 0);
  EXPECT_EQ(solve_rabin(game).winner[0], 1);
}

TEST(IarExpansion, NoPairsMeansPlayerOneWinsEverything) {
  RabinGame game;
  game.num_pairs = 0;
  game.add_node(0, RabinMarks{});
  game.add_edge(0, 0);
  EXPECT_EQ(solve_rabin(game).winner[0], 1);
}

TEST(IarExpansion, PlayerZeroPicksTheGoodLoop) {
  // Node 0 (P0) chooses between a green self-loop (1) and a red one (2).
  RabinGame game;
  game.num_pairs = 1;
  game.add_node(0, RabinMarks{});
  game.add_node(0, RabinMarks{.green = 1u, .red = 0u});
  game.add_node(0, RabinMarks{.green = 0u, .red = 1u});
  game.add_edge(0, 1);
  game.add_edge(0, 2);
  game.add_edge(1, 1);
  game.add_edge(2, 2);
  const auto solution = solve_rabin(game);
  EXPECT_EQ(solution.winner[0], 0);
  EXPECT_EQ(solution.winner[1], 0);
  EXPECT_EQ(solution.winner[2], 1);
}

TEST(IarExpansion, PathfinderPicksTheBadLoop) {
  RabinGame game;
  game.num_pairs = 1;
  game.add_node(1, RabinMarks{});
  game.add_node(0, RabinMarks{.green = 1u, .red = 0u});
  game.add_node(0, RabinMarks{.green = 0u, .red = 1u});
  game.add_edge(0, 1);
  game.add_edge(0, 2);
  game.add_edge(1, 1);
  game.add_edge(2, 2);
  EXPECT_EQ(solve_rabin(game).winner[0], 1);
}

TEST(IarExpansion, TwoPairsEitherSuffices) {
  // A loop alternating: node 0 green for pair 0 / red for pair 1, node 1
  // red for pair 0 / green for pair 1. The forced play visits both
  // infinitely: pair 0 has inf green AND inf red (bad); pair 1 likewise.
  // Player 1 wins. Adding a node green-for-0 only (no red) flips it.
  RabinGame game;
  game.num_pairs = 2;
  game.add_node(0, RabinMarks{.green = 1u, .red = 2u});
  game.add_node(0, RabinMarks{.green = 2u, .red = 1u});
  game.add_edge(0, 1);
  game.add_edge(1, 0);
  EXPECT_EQ(solve_rabin(game).winner[0], 1);

  RabinGame richer = game;
  const int extra = richer.add_node(0, RabinMarks{.green = 1u, .red = 0u});
  richer.add_edge(1, extra);   // player 0 may divert to a clean green loop
  richer.add_edge(extra, extra);
  const auto solution = solve_rabin(richer);
  EXPECT_EQ(solution.winner[0], 0);
  EXPECT_EQ(solution.winner[extra], 0);
}

TEST(IarExpansion, MatchesBruteForceOnRandomGames) {
  std::mt19937 rng(97);
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::uniform_int_distribution<int> nodes_dist(1, 5), pairs_dist(1, 2);
    const int n = nodes_dist(rng);
    RabinGame game;
    game.num_pairs = pairs_dist(rng);
    std::uniform_int_distribution<int> owner_dist(0, 1), node_dist(0, n - 1),
        extra_dist(0, 1);
    std::uniform_int_distribution<std::uint32_t> mask_dist(0, (1u << game.num_pairs) - 1);
    for (int v = 0; v < n; ++v) {
      game.add_node(owner_dist(rng), RabinMarks{mask_dist(rng), mask_dist(rng)});
    }
    for (int v = 0; v < n; ++v) {
      const int edges = 1 + extra_dist(rng);
      for (int e = 0; e < edges; ++e) game.add_edge(v, node_dist(rng));
    }
    const auto fast = solve_rabin(game);
    const auto slow = solve_rabin_brute_force(game);
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(fast.winner[v], slow[v])
          << "iteration " << iteration << " node " << v;
    }
  }
}

TEST(IarExpansion, RecordGrowthIsBounded) {
  // The expansion is at most |nodes| · |pairs|! Automaton nodes plus the
  // intermediate nodes; check a 3-pair game stays within the bound.
  RabinGame game;
  game.num_pairs = 3;
  std::mt19937 rng(101);
  std::uniform_int_distribution<int> node_dist(0, 3);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, 7);
  for (int v = 0; v < 4; ++v) game.add_node(v % 2, RabinMarks{mask_dist(rng), mask_dist(rng)});
  for (int v = 0; v < 4; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  const auto expansion = expand_iar(game);
  EXPECT_LE(expansion.parity.num_nodes(), 4 * 6 + 1);  // 4 nodes · 3! records
  EXPECT_TRUE(expansion.parity.is_total());
}

}  // namespace
}  // namespace slat::games
