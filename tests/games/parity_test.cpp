#include "games/parity.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slat::games {
namespace {

// Independent validation of a claimed solution: winning regions must be
// closed (the winner's strategy stays inside; the loser cannot escape), and
// in the strategy-restricted subgraph of player w's region every cycle must
// have max priority of parity w.
void expect_solution_valid(const ParityGame& game, const ParitySolution& solution) {
  const int n = game.num_nodes();
  for (int v = 0; v < n; ++v) {
    const Player w = solution.winner[v];
    ASSERT_TRUE(w == 0 || w == 1);
    if (game.owner[v] == w) {
      const int target = solution.strategy[v];
      ASSERT_NE(target, -1) << "winner-owned node " << v << " lacks a strategy";
      EXPECT_EQ(solution.winner[target], w) << "strategy leaves the region at " << v;
    } else {
      for (int succ : game.successors[v]) {
        EXPECT_EQ(solution.winner[succ], w)
            << "loser escapes the region via " << v << " -> " << succ;
      }
    }
  }
  // Cycle parity check per region.
  for (Player w : {0, 1}) {
    // Restricted successor lists.
    std::vector<std::vector<int>> graph(n);
    for (int v = 0; v < n; ++v) {
      if (solution.winner[v] != w) continue;
      if (game.owner[v] == w) {
        graph[v] = {solution.strategy[v]};
      } else {
        graph[v] = game.successors[v];
      }
    }
    // A "bad" cycle has max priority of parity 1-w. For each priority p of
    // parity 1-w, look for a cycle through a p-node using only nodes with
    // priority ≤ p inside the region.
    int max_priority = 0;
    for (int v = 0; v < n; ++v) max_priority = std::max(max_priority, game.priority[v]);
    for (int p = 0; p <= max_priority; ++p) {
      if (p % 2 == w) continue;  // this parity favors w; not a bad cycle
      for (int start = 0; start < n; ++start) {
        if (solution.winner[start] != w || game.priority[start] != p) continue;
        // BFS from start through nodes with priority ≤ p, looking for start.
        std::vector<bool> seen(n, false);
        std::vector<int> stack{start};
        bool found = false;
        while (!stack.empty() && !found) {
          const int v = stack.back();
          stack.pop_back();
          for (int succ : graph[v]) {
            if (game.priority[succ] > p || solution.winner[succ] != w) continue;
            if (succ == start) {
              found = true;
              break;
            }
            if (!seen[succ]) {
              seen[succ] = true;
              stack.push_back(succ);
            }
          }
        }
        EXPECT_FALSE(found) << "bad cycle of max priority " << p << " through node "
                            << start << " in region of player " << w;
      }
    }
  }
}

TEST(Attractor, PullsForcedNodes) {
  // 0 (P0) -> 1 (target); 2 (P1) -> 1 and 2 -> 3; 3 (P1) -> 3.
  ParityGame game;
  game.add_node(0, 0);
  game.add_node(0, 0);
  game.add_node(1, 0);
  game.add_node(1, 0);
  game.add_edge(0, 1);
  game.add_edge(2, 1);
  game.add_edge(2, 3);
  game.add_edge(3, 3);
  game.add_edge(1, 1);
  std::vector<bool> active(4, true), target(4, false);
  target[1] = true;
  std::vector<int> strategy(4, -1);
  const auto attracted = attractor(game, 0, active, target, &strategy);
  EXPECT_TRUE(attracted[1]);
  EXPECT_TRUE(attracted[0]);   // P0 can move into the target
  EXPECT_FALSE(attracted[2]);  // P1 escapes to 3
  EXPECT_FALSE(attracted[3]);
  EXPECT_EQ(strategy[0], 1);
}

TEST(Attractor, OpponentForcedWhenAllSuccessorsAttracted) {
  // 2 (P1) has successors 0 and 1, both targets.
  ParityGame game;
  game.add_node(0, 0);
  game.add_node(0, 0);
  game.add_node(1, 0);
  game.add_edge(2, 0);
  game.add_edge(2, 1);
  game.add_edge(0, 0);
  game.add_edge(1, 1);
  std::vector<bool> active(3, true), target(3, false);
  target[0] = target[1] = true;
  const auto attracted = attractor(game, 0, active, target, nullptr);
  EXPECT_TRUE(attracted[2]);
}

TEST(Zielonka, SingleNodeSelfLoop) {
  for (int priority = 0; priority <= 3; ++priority) {
    ParityGame game;
    game.add_node(0, priority);
    game.add_edge(0, 0);
    const auto solution = solve(game);
    EXPECT_EQ(solution.winner[0], priority % 2) << priority;
  }
}

TEST(Zielonka, ChoiceBetweenGoodAndBadLoop) {
  // P0 at node 0 chooses between an even loop (1) and an odd loop (2).
  ParityGame game;
  game.add_node(0, 1);
  game.add_node(0, 2);
  game.add_node(0, 1);
  game.add_edge(0, 1);
  game.add_edge(0, 2);
  game.add_edge(1, 1);
  game.add_edge(2, 2);
  const auto solution = solve(game);
  EXPECT_EQ(solution.winner[0], 0);
  EXPECT_EQ(solution.strategy[0], 1);
  expect_solution_valid(game, solution);
  // Same arena but P1 to move: P1 picks the odd loop.
  ParityGame flipped = game;
  flipped.owner[0] = 1;
  const auto other = solve(flipped);
  EXPECT_EQ(other.winner[0], 1);
  EXPECT_EQ(other.strategy[0], 2);
  expect_solution_valid(flipped, other);
}

TEST(Zielonka, AlternationNeedsHigherPriority) {
  // Cycle 0 -> 1 -> 0 with priorities 1 and 2: max on the cycle is 2, even,
  // so player 0 wins regardless of owners.
  ParityGame game;
  game.add_node(1, 1);
  game.add_node(0, 2);
  game.add_edge(0, 1);
  game.add_edge(1, 0);
  const auto solution = solve(game);
  EXPECT_EQ(solution.winner[0], 0);
  EXPECT_EQ(solution.winner[1], 0);
  expect_solution_valid(game, solution);
}

TEST(Zielonka, RandomGamesProduceValidSolutions) {
  std::mt19937 rng(83);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::uniform_int_distribution<int> num_nodes_dist(1, 8);
    const int n = num_nodes_dist(rng);
    std::uniform_int_distribution<int> owner_dist(0, 1), priority_dist(0, 5),
        node_dist(0, n - 1), extra_dist(0, 2);
    ParityGame game;
    for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), priority_dist(rng));
    for (int v = 0; v < n; ++v) {
      const int edges = 1 + extra_dist(rng);
      for (int e = 0; e < edges; ++e) game.add_edge(v, node_dist(rng));
    }
    const auto solution = solve(game);
    expect_solution_valid(game, solution);
  }
}

TEST(Zielonka, LargerRandomGamesSolveAndValidate) {
  std::mt19937 rng(89);
  std::uniform_int_distribution<int> owner_dist(0, 1), priority_dist(0, 7);
  const int n = 200;
  std::uniform_int_distribution<int> node_dist(0, n - 1);
  ParityGame game;
  for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), priority_dist(rng));
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  const auto solution = solve(game);
  expect_solution_valid(game, solution);
}

}  // namespace
}  // namespace slat::games
