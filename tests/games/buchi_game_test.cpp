// The dedicated Büchi-game solver, cross-checked against Zielonka on the
// parity encoding.
#include "games/buchi_game.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slat::games {
namespace {

TEST(BuchiGameSolver, TargetSelfLoopWinsForPlayerZero) {
  BuchiGame game;
  game.add_node(0, true);
  game.add_edge(0, 0);
  EXPECT_EQ(solve_buchi(game), std::vector<Player>{0});
}

TEST(BuchiGameSolver, NonTargetSelfLoopWinsForPlayerOne) {
  BuchiGame game;
  game.add_node(0, false);
  game.add_edge(0, 0);
  EXPECT_EQ(solve_buchi(game), std::vector<Player>{1});
}

TEST(BuchiGameSolver, VisitingOnceIsNotEnough) {
  // 0 (target) -> 1 -> 1, with 1 non-target: the single visit loses.
  BuchiGame game;
  game.add_node(0, true);
  game.add_node(0, false);
  game.add_edge(0, 1);
  game.add_edge(1, 1);
  const auto winner = solve_buchi(game);
  EXPECT_EQ(winner[0], 1);
  EXPECT_EQ(winner[1], 1);
}

TEST(BuchiGameSolver, PlayerZeroDivertsThroughTheTargetCycle) {
  // 0 (P0) chooses 1 (target with loop back to 0) or 2 (sink, no target).
  BuchiGame game;
  game.add_node(0, false);
  game.add_node(0, true);
  game.add_node(0, false);
  game.add_edge(0, 1);
  game.add_edge(0, 2);
  game.add_edge(1, 0);
  game.add_edge(2, 2);
  const auto winner = solve_buchi(game);
  EXPECT_EQ(winner[0], 0);
  EXPECT_EQ(winner[1], 0);
  EXPECT_EQ(winner[2], 1);
}

TEST(BuchiGameSolver, PathfinderAvoidsTheTarget) {
  // 1-owned branch point: P1 avoids the target loop.
  BuchiGame game;
  game.add_node(1, false);
  game.add_node(0, true);
  game.add_node(0, false);
  game.add_edge(0, 1);
  game.add_edge(0, 2);
  game.add_edge(1, 0);
  game.add_edge(2, 2);
  EXPECT_EQ(solve_buchi(game)[0], 1);
}

TEST(BuchiGameSolver, AgreesWithZielonkaOnRandomGames) {
  std::mt19937 rng(163);
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::uniform_int_distribution<int> nodes_dist(1, 10);
    const int n = nodes_dist(rng);
    std::uniform_int_distribution<int> owner_dist(0, 1), node_dist(0, n - 1),
        extra_dist(0, 2);
    std::bernoulli_distribution is_target(0.3);
    BuchiGame game;
    for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), is_target(rng));
    for (int v = 0; v < n; ++v) {
      const int edges = 1 + extra_dist(rng);
      for (int e = 0; e < edges; ++e) game.add_edge(v, node_dist(rng));
    }
    const auto direct = solve_buchi(game);
    const auto via_parity = solve(game.to_parity());
    for (int v = 0; v < n; ++v) {
      ASSERT_EQ(direct[v], via_parity.winner[v]) << "iteration " << iteration;
    }
  }
}

TEST(BuchiGameSolver, LargerRandomGameMatchesZielonka) {
  std::mt19937 rng(167);
  const int n = 500;
  std::uniform_int_distribution<int> owner_dist(0, 1), node_dist(0, n - 1);
  std::bernoulli_distribution is_target(0.15);
  BuchiGame game;
  for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), is_target(rng));
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  const auto direct = solve_buchi(game);
  const auto via_parity = solve(game.to_parity());
  for (int v = 0; v < n; ++v) ASSERT_EQ(direct[v], via_parity.winner[v]);
}

}  // namespace
}  // namespace slat::games
