// The §4.2/§4.3 closure machinery: ncl and fcl membership, the paper's
// closure identities (fcl.q3a = q1, ncl.q3b = q1, ncl.q4b = A_tot, ...), and
// the full ES/US/EL/UL classification grid of the Rem examples.
#include "trees/closures.hpp"

#include <gtest/gtest.h>

#include "trees/rem_branching.hpp"

namespace slat::trees {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;
constexpr int kDepth = 2;

Alphabet binary() { return words::Alphabet::binary(); }

KTree two_path_tree() {
  KTree tree(binary(), 3, 0);
  tree.set_label(0, kA);
  tree.set_label(1, kA);
  tree.set_label(2, kB);
  tree.add_child(0, 1);
  tree.add_child(0, 2);
  tree.add_child(1, 1);
  tree.add_child(2, 2);
  return tree;
}

KTree sequence(std::vector<Sym> prefix, Sym looped) {
  // The sequence prefix · looped^ω as a unary tree.
  KTree tree(binary(), static_cast<int>(prefix.size()) + 1, 0);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    tree.set_label(static_cast<int>(i), prefix[i]);
    tree.add_child(static_cast<int>(i), static_cast<int>(i) + 1);
  }
  tree.set_label(static_cast<int>(prefix.size()), looped);
  tree.add_child(static_cast<int>(prefix.size()), static_cast<int>(prefix.size()));
  return tree;
}

const TreeProperty& property_named(const std::string& name) {
  static const auto examples = rem_branching_examples();
  for (const auto& example : examples) {
    if (example.name == name) return example.property;
  }
  ADD_FAILURE() << "unknown example " << name;
  return examples.front().property;
}

std::vector<KTree> classification_corpus() {
  auto corpus = total_tree_corpus(binary(), 2, 2);
  for (KTree& witness : paper_witness_trees()) corpus.push_back(std::move(witness));
  return corpus;
}

TEST(Corpus, ContainsSequencesAndBinaryTrees) {
  const auto corpus = total_tree_corpus(binary(), 2, 2);
  EXPECT_GT(corpus.size(), 10u);
  bool has_unary = false, has_binary = false;
  for (const KTree& tree : corpus) {
    EXPECT_TRUE(tree.is_total());
    const int arity = static_cast<int>(tree.children(tree.root()).size());
    has_unary = has_unary || arity == 1;
    has_binary = has_binary || arity == 2;
  }
  EXPECT_TRUE(has_unary);
  EXPECT_TRUE(has_binary);
}

TEST(Corpus, DeduplicatesByUnfolding) {
  const auto corpus = total_tree_corpus(binary(), 2, 2);
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    for (std::size_t j = i + 1; j < corpus.size(); ++j) {
      EXPECT_FALSE(corpus[i].same_unfolding(corpus[j])) << i << " vs " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// The paper's §4.3 closure identities
// ---------------------------------------------------------------------------

TEST(PaperClaims, FclOfQ3aIsQ1) {
  const TreeProperty& q3a = property_named("q3a");
  const TreeProperty& q1 = property_named("q1");
  for (const KTree& y : classification_corpus()) {
    EXPECT_EQ(in_fcl(q3a, y, kDepth), q1.contains(y)) << y.to_string();
  }
}

TEST(PaperClaims, NclOfQ3bIsQ1AndFclOfQ3bIsQ1) {
  const TreeProperty& q3b = property_named("q3b");
  const TreeProperty& q1 = property_named("q1");
  for (const KTree& y : classification_corpus()) {
    EXPECT_EQ(in_ncl(q3b, y, kDepth), q1.contains(y)) << y.to_string();
    EXPECT_EQ(in_fcl(q3b, y, kDepth), q1.contains(y)) << y.to_string();
  }
}

TEST(PaperClaims, NclOfQ3aIsStrictlyBelowQ1) {
  // ncl.q3a ⊆ q1 on the corpus, with the two-path witness strictly inside
  // q1 \ ncl.q3a (it has an all-a path, which some pruning keeps).
  const TreeProperty& q3a = property_named("q3a");
  const TreeProperty& q1 = property_named("q1");
  for (const KTree& y : classification_corpus()) {
    if (in_ncl(q3a, y, kDepth)) {
      EXPECT_TRUE(q1.contains(y));
    }
  }
  const KTree witness = two_path_tree();
  EXPECT_TRUE(q1.contains(witness));
  EXPECT_FALSE(in_ncl(q3a, witness, kDepth));
}

TEST(PaperClaims, SequencesStartingWithALieInNclOfQ3a) {
  // "trees can be sequences, so {a·y} ⊆ ncl.q3a" — and a^ω witnesses that
  // the containment q3a ⊆ ncl.q3a is strict.
  const TreeProperty& q3a = property_named("q3a");
  for (const KTree& y : {sequence({kA}, kA), sequence({kA}, kB), sequence({kA, kB}, kA)}) {
    EXPECT_TRUE(in_ncl(q3a, y, kDepth)) << y.to_string();
  }
  EXPECT_FALSE(q3a.contains(sequence({kA}, kA)));  // a^ω ∉ q3a
}

TEST(PaperClaims, FclOfQ4aIsEverything) {
  const TreeProperty& q4a = property_named("q4a");
  for (const KTree& y : classification_corpus()) {
    EXPECT_TRUE(in_fcl(q4a, y, kDepth)) << y.to_string();
  }
}

TEST(PaperClaims, NclOfQ4aExcludesTreesWithAllAPathButKeepsSequences) {
  const TreeProperty& q4a = property_named("q4a");
  EXPECT_FALSE(in_ncl(q4a, two_path_tree(), kDepth));
  EXPECT_FALSE(in_ncl(q4a, KTree::constant(binary(), kA, 2), kDepth));
  // Sequences all belong to ncl.q4a (their prunings are finite words).
  for (const KTree& y : {sequence({}, kA), sequence({}, kB), sequence({kB, kA}, kA)}) {
    EXPECT_TRUE(in_ncl(q4a, y, kDepth)) << y.to_string();
  }
}

TEST(PaperClaims, NclOfQ4bIsEverything) {
  const TreeProperty& q4b = property_named("q4b");
  for (const KTree& y : classification_corpus()) {
    EXPECT_TRUE(in_ncl(q4b, y, kDepth)) << y.to_string();
    EXPECT_TRUE(in_fcl(q4b, y, kDepth)) << y.to_string();
  }
}

TEST(PaperClaims, Q5MirrorsQ4WithLettersSwapped) {
  const TreeProperty& q5a = property_named("q5a");
  const TreeProperty& q5b = property_named("q5b");
  for (const KTree& y : classification_corpus()) {
    EXPECT_TRUE(in_fcl(q5a, y, kDepth)) << y.to_string();
    EXPECT_TRUE(in_ncl(q5b, y, kDepth)) << y.to_string();
  }
  EXPECT_FALSE(in_ncl(q5a, KTree::constant(binary(), kB, 2), kDepth));
}

// ---------------------------------------------------------------------------
// The classification grid
// ---------------------------------------------------------------------------

TEST(Classification, MatchesThePaperTable) {
  const auto corpus = classification_corpus();
  for (const auto& example : rem_branching_examples()) {
    const BranchingClassification got = classify(example.property, corpus, kDepth);
    EXPECT_EQ(got.existentially_safe, example.expected.existentially_safe)
        << example.name << " ES";
    EXPECT_EQ(got.universally_safe, example.expected.universally_safe)
        << example.name << " US";
    EXPECT_EQ(got.existentially_live, example.expected.existentially_live)
        << example.name << " EL";
    EXPECT_EQ(got.universally_live, example.expected.universally_live)
        << example.name << " UL";
  }
}

TEST(Closures, NclImpliesFcl) {
  // ncl ≤ fcl pointwise (finite prefixes are non-total), hence
  // ncl-membership implies fcl-membership.
  const auto corpus = classification_corpus();
  for (const auto& example : rem_branching_examples()) {
    for (const KTree& y : corpus) {
      if (in_ncl(example.property, y, kDepth)) {
        EXPECT_TRUE(in_fcl(example.property, y, kDepth)) << example.name;
      }
    }
  }
}

TEST(Closures, MembershipImpliesClosureMembership) {
  // Extensivity of both closures on the corpus.
  const auto corpus = classification_corpus();
  for (const auto& example : rem_branching_examples()) {
    for (const KTree& y : corpus) {
      if (example.property.contains(y)) {
        EXPECT_TRUE(in_ncl(example.property, y, kDepth)) << example.name;
        EXPECT_TRUE(in_fcl(example.property, y, kDepth)) << example.name;
      }
    }
  }
}

TEST(GraphPredicates, SpotChecks) {
  const KTree tree = two_path_tree();
  EXPECT_TRUE(exists_monochrome_path(tree, kA));
  EXPECT_FALSE(exists_monochrome_path(tree, kB));  // root is a
  EXPECT_TRUE(exists_cycle_visiting(tree, kA));
  EXPECT_TRUE(exists_cycle_visiting(tree, kB));
  EXPECT_TRUE(exists_monochrome_cycle(tree, kA));
  EXPECT_TRUE(exists_monochrome_cycle(tree, kB));
  EXPECT_FALSE(has_reachable_leaf(tree));
  EXPECT_TRUE(reaches_label(tree, kB));

  const KTree pruned = tree.prune_at({{1}});
  EXPECT_TRUE(has_reachable_leaf(pruned));
  EXPECT_TRUE(exists_monochrome_path(pruned, kA));
  EXPECT_FALSE(exists_monochrome_cycle(pruned, kB));
}

}  // namespace
}  // namespace slat::trees
