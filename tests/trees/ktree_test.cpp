#include "trees/ktree.hpp"

#include <gtest/gtest.h>

namespace slat::trees {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

Alphabet binary() { return words::Alphabet::binary(); }

// Root a with two subtrees: all-a path (unary) and all-b path (unary).
KTree two_path_tree() {
  KTree tree(binary(), 3, 0);
  tree.set_label(0, kA);
  tree.set_label(1, kA);
  tree.set_label(2, kB);
  tree.add_child(0, 1);
  tree.add_child(0, 2);
  tree.add_child(1, 1);
  tree.add_child(2, 2);
  return tree;
}

TEST(KTree, ConstantTrees) {
  const KTree aw = KTree::constant(binary(), kA, 1);
  EXPECT_TRUE(aw.is_total());
  EXPECT_FALSE(aw.is_finite());
  const KTree leaf = KTree::constant(binary(), kB, 0);
  EXPECT_FALSE(leaf.is_total());
  EXPECT_TRUE(leaf.is_finite());
  EXPECT_TRUE(leaf.is_leaf(0));
}

TEST(KTree, NodeAtFollowsPositions) {
  const KTree tree = two_path_tree();
  EXPECT_EQ(tree.node_at({}), 0);
  EXPECT_EQ(tree.node_at({0}), 1);
  EXPECT_EQ(tree.node_at({1}), 2);
  EXPECT_EQ(tree.node_at({0, 0}), 1);
  EXPECT_EQ(tree.node_at({1, 0, 0}), 2);
  EXPECT_FALSE(tree.node_at({2}).has_value());
  EXPECT_FALSE(tree.node_at({0, 1}).has_value());
}

TEST(KTree, PositionsUpToDepth) {
  const KTree tree = two_path_tree();
  // Depth 0: root only; depth 1: root + 2 children; depth 2: + 2 more.
  EXPECT_EQ(tree.positions_up_to(0).size(), 1u);
  EXPECT_EQ(tree.positions_up_to(1).size(), 3u);
  EXPECT_EQ(tree.positions_up_to(2).size(), 5u);
}

TEST(KTree, TruncateProducesFinitePrefix) {
  const KTree tree = two_path_tree();
  const KTree prefix = tree.truncate(2);
  EXPECT_TRUE(prefix.is_finite());
  EXPECT_FALSE(prefix.is_total());
  // Shape: root with 2 children, each with one child (leaves at depth 2).
  EXPECT_EQ(prefix.num_nodes(), 5);
  EXPECT_EQ(prefix.label(*prefix.node_at({0, 0})), kA);
  EXPECT_EQ(prefix.label(*prefix.node_at({1, 0})), kB);
  EXPECT_TRUE(prefix.is_leaf(*prefix.node_at({1, 0})));
  // Depth 0 truncation: a single leaf carrying the root label.
  const KTree root_only = tree.truncate(0);
  EXPECT_EQ(root_only.num_nodes(), 1);
  EXPECT_TRUE(root_only.is_leaf(0));
  EXPECT_EQ(root_only.label(0), kA);
}

TEST(KTree, UnrollPreservesUnfolding) {
  const KTree tree = two_path_tree();
  for (int depth = 0; depth <= 3; ++depth) {
    const KTree unrolled = tree.unroll(depth);
    EXPECT_TRUE(unrolled.same_unfolding(tree)) << depth;
    EXPECT_TRUE(unrolled.is_total()) << depth;
  }
}

TEST(KTree, PruneCutsASubtree) {
  const KTree tree = two_path_tree();
  // Cut the b-branch at depth 1: the a-path survives, position {1} is a leaf.
  const KTree pruned = tree.prune_at({{1}});
  EXPECT_FALSE(pruned.is_total());
  EXPECT_FALSE(pruned.is_finite());  // the a-path is still infinite
  EXPECT_TRUE(pruned.is_leaf(*pruned.node_at({1})));
  EXPECT_EQ(pruned.node_at({0, 0}).has_value(), true);
  EXPECT_FALSE(pruned.node_at({1, 0}).has_value());
}

TEST(KTree, PruneAtRootGivesSingleLeaf) {
  const KTree pruned = two_path_tree().prune_at({{}});
  EXPECT_TRUE(pruned.is_leaf(*pruned.node_at({})));
  EXPECT_TRUE(pruned.is_finite());
}

TEST(KTree, SameUnfoldingIdentifiesEqualRegularTrees) {
  // a^ω as a self-loop vs as a two-node cycle.
  const KTree one = KTree::constant(binary(), kA, 1);
  KTree two(binary(), 2, 0);
  two.set_label(0, kA);
  two.set_label(1, kA);
  two.add_child(0, 1);
  two.add_child(1, 0);
  EXPECT_TRUE(one.same_unfolding(two));
  // Different label somewhere: not equal.
  KTree three = two;
  three.set_label(1, kB);
  EXPECT_FALSE(one.same_unfolding(three));
  // Different arity: not equal.
  EXPECT_FALSE(one.same_unfolding(KTree::constant(binary(), kA, 2)));
}

TEST(KTree, StructurallyEqualAfterRenumbering) {
  KTree tree(binary(), 2, 1);  // root is node 1
  tree.set_label(1, kA);
  tree.set_label(0, kB);
  tree.add_child(1, 0);
  tree.add_child(0, 0);
  KTree other(binary(), 2, 0);  // same shape, root is node 0
  other.set_label(0, kA);
  other.set_label(1, kB);
  other.add_child(0, 1);
  other.add_child(1, 1);
  EXPECT_TRUE(tree.structurally_equal(other));
}

TEST(KTree, EnumerateCounts) {
  // 1 node, arity 1..1, alphabet 2: one self-loop shape × 2 labels.
  EXPECT_EQ(enumerate_regular_trees(binary(), 1, 1, 1).size(), 2u);
  // 1 node, arity 0..1: leaf or self-loop, × 2 labels.
  EXPECT_EQ(enumerate_regular_trees(binary(), 1, 0, 1).size(), 4u);
  // 2 nodes, arity 1..2: per node 2 + 4 = 6 child lists; 6²·2² labelings.
  EXPECT_EQ(enumerate_regular_trees(binary(), 2, 1, 2).size(), 144u);
}

TEST(KTree, ReachabilityIgnoresOrphans) {
  KTree tree(binary(), 3, 0);
  tree.add_child(0, 0);
  // Node 1 and 2 unreachable; node 2 is a leaf but tree still total.
  EXPECT_TRUE(tree.is_total());
  const auto reach = tree.reachable();
  EXPECT_TRUE(reach[0]);
  EXPECT_FALSE(reach[1]);
  EXPECT_FALSE(reach[2]);
}

}  // namespace
}  // namespace slat::trees
