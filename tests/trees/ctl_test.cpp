#include "trees/ctl.hpp"

#include <gtest/gtest.h>

#include "trees/closures.hpp"
#include "trees/rem_branching.hpp"

namespace slat::trees {
namespace {

constexpr Sym kA = 0;
constexpr Sym kB = 1;

Alphabet binary() { return words::Alphabet::binary(); }

KTree two_path_tree() {
  KTree tree(binary(), 3, 0);
  tree.set_label(0, kA);
  tree.set_label(1, kA);
  tree.set_label(2, kB);
  tree.add_child(0, 1);
  tree.add_child(0, 2);
  tree.add_child(1, 1);
  tree.add_child(2, 2);
  return tree;
}

class CtlFixture : public ::testing::Test {
 protected:
  CtlArena arena{binary()};

  bool check(const char* text, const KTree& tree) {
    const auto f = arena.parse(text);
    EXPECT_TRUE(f.has_value()) << text;
    return holds(arena, *f, tree);
  }
};

TEST_F(CtlFixture, AtomsAndBooleans) {
  const KTree aw = KTree::constant(binary(), kA, 2);
  EXPECT_TRUE(check("a", aw));
  EXPECT_FALSE(check("b", aw));
  EXPECT_TRUE(check("a | b", aw));
  EXPECT_FALSE(check("a & b", aw));
  EXPECT_TRUE(check("b -> false", aw));
  EXPECT_TRUE(check("true", aw));
}

TEST_F(CtlFixture, NextOperators) {
  const KTree tree = two_path_tree();
  EXPECT_TRUE(check("EX a", tree));
  EXPECT_TRUE(check("EX b", tree));
  EXPECT_FALSE(check("AX a", tree));
  EXPECT_TRUE(check("AX (a | b)", tree));
}

TEST_F(CtlFixture, EventuallyGloballyQuantified) {
  const KTree tree = two_path_tree();
  EXPECT_TRUE(check("EF b", tree));
  EXPECT_FALSE(check("AF b", tree));  // the a-path never sees b
  EXPECT_TRUE(check("EG a", tree));   // the a-path
  EXPECT_FALSE(check("AG a", tree));
  EXPECT_TRUE(check("AG (a | b)", tree));
  EXPECT_TRUE(check("EF AG b", tree));
}

TEST_F(CtlFixture, UntilOperators) {
  const KTree tree = two_path_tree();
  EXPECT_TRUE(check("E(a U b)", tree));
  EXPECT_FALSE(check("A(a U b)", tree));
  // On the all-b constant tree the until fires immediately.
  EXPECT_TRUE(check("A(a U b)", KTree::constant(binary(), kB, 2)));
  EXPECT_FALSE(check("E(a U b)", KTree::constant(binary(), kA, 2)));
}

TEST_F(CtlFixture, FixpointsOnCycles) {
  // (ab)^ω alternating sequence: AG (a -> AX b) and AG (b -> AX a).
  KTree tree(binary(), 2, 0);
  tree.set_label(0, kA);
  tree.set_label(1, kB);
  tree.add_child(0, 1);
  tree.add_child(1, 0);
  EXPECT_TRUE(check("AG (a -> AX b)", tree));
  EXPECT_TRUE(check("AG (b -> AX a)", tree));
  EXPECT_TRUE(check("AG EF a", tree));
  EXPECT_TRUE(check("AG AF b", tree));
  EXPECT_FALSE(check("EG a", tree));
}

TEST_F(CtlFixture, ParserHandlesQuantifiedUntilSyntax) {
  EXPECT_TRUE(arena.parse("E(a U AF b)").has_value());
  EXPECT_TRUE(arena.parse("A((a | b) U b)").has_value());
  EXPECT_FALSE(arena.parse("E(a U )").has_value());
  EXPECT_FALSE(arena.parse("EF").has_value());
  std::string error;
  EXPECT_FALSE(arena.parse("E a U b", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST_F(CtlFixture, ToStringRoundTrips) {
  for (const char* text :
       {"a & AF !a", "E(a U b)", "AG (a -> EF b)", "EX AX a", "A(a U EG b)"}) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    const auto reparsed = arena.parse(arena.to_string(*f));
    ASSERT_TRUE(reparsed.has_value()) << arena.to_string(*f);
    EXPECT_EQ(*reparsed, *f);
  }
}

TEST_F(CtlFixture, AgreesWithGraphOraclesOnCorpus) {
  // The CTL-expressible Rem examples (q1, q2, q3a, q3b) must agree with the
  // graph-algorithmic oracles used for the CTL*-only ones.
  auto corpus = total_tree_corpus(binary(), 2, 2);
  for (KTree& witness : paper_witness_trees()) corpus.push_back(std::move(witness));
  for (const auto& example : rem_branching_examples()) {
    if (example.ctl.empty()) continue;
    const auto f = arena.parse(example.ctl);
    ASSERT_TRUE(f.has_value()) << example.ctl;
    for (const KTree& tree : corpus) {
      EXPECT_EQ(holds(arena, *f, tree), example.property.contains(tree))
          << example.name << " on\n"
          << tree.to_string();
    }
  }
}

TEST_F(CtlFixture, ReleaseOperators) {
  const KTree tree = two_path_tree();
  // E(b R a): some path where a holds up to (and including) a b∧a point —
  // over {a,b} that degenerates to EG a.
  EXPECT_TRUE(check("E(b R a)", tree));
  EXPECT_FALSE(check("A(b R a)", tree));
  // E(false R φ) = EG φ, A(false R φ) = AG φ.
  EXPECT_EQ(check("E(false R a)", tree), check("EG a", tree));
  EXPECT_EQ(check("A(false R (a | b))", tree), check("AG (a | b)", tree));
  // Release with an immediately-true lhs collapses to the rhs now.
  EXPECT_TRUE(check("A((a | b) R (a | b))", tree));
}

TEST_F(CtlFixture, ReleaseIsDualToUntil) {
  // E(φ R ψ) = ¬A(¬φ U ¬ψ) and A(φ R ψ) = ¬E(¬φ U ¬ψ), on a corpus.
  const auto corpus = total_tree_corpus(binary(), 2, 2);
  const auto er = arena.parse("E(a R b)");
  const auto not_au = arena.parse("!A(!a U !b)");
  const auto ar = arena.parse("A(b R (a | b))");
  const auto not_eu = arena.parse("!E(!b U !(a | b))");
  ASSERT_TRUE(er && not_au && ar && not_eu);
  for (const KTree& tree : corpus) {
    EXPECT_EQ(holds(arena, *er, tree), holds(arena, *not_au, tree));
    EXPECT_EQ(holds(arena, *ar, tree), holds(arena, *not_eu, tree));
  }
}

TEST_F(CtlFixture, NnfPreservesSemantics) {
  const auto corpus = total_tree_corpus(binary(), 2, 2);
  for (const char* text :
       {"!AF b", "!EG a", "!E(a U b)", "!A(a R b)", "!(a -> EF b)", "!AX (a & EX b)",
        "!AG (a -> AF b)", "a & AF !a"}) {
    const auto f = arena.parse(text);
    ASSERT_TRUE(f.has_value()) << text;
    const trees::CtlId g = arena.nnf(*f);
    // NNF shape: no Not except on atoms, no Implies/EF/AF/EG/AG.
    std::vector<trees::CtlId> stack{g};
    while (!stack.empty()) {
      const CtlNode n = arena.node(stack.back());
      stack.pop_back();
      EXPECT_NE(n.op, CtlOp::kImplies);
      EXPECT_NE(n.op, CtlOp::kEF);
      EXPECT_NE(n.op, CtlOp::kAF);
      EXPECT_NE(n.op, CtlOp::kEG);
      EXPECT_NE(n.op, CtlOp::kAG);
      if (n.op == CtlOp::kNot) {
        EXPECT_EQ(arena.node(n.lhs).op, CtlOp::kAtom);
        continue;
      }
      if (n.lhs >= 0) stack.push_back(n.lhs);
      if (n.rhs >= 0) stack.push_back(n.rhs);
    }
    // And semantics unchanged.
    for (const KTree& tree : corpus) {
      EXPECT_EQ(holds(arena, *f, tree), holds(arena, g, tree)) << text;
    }
  }
}

TEST_F(CtlFixture, SatisfyingNodesPerNode) {
  const KTree tree = two_path_tree();
  const auto f = arena.parse("EF b");
  const auto sat = satisfying_nodes(arena, *f, tree);
  EXPECT_TRUE(sat[0]);   // root reaches b
  EXPECT_FALSE(sat[1]);  // the a-loop never does
  EXPECT_TRUE(sat[2]);
}

}  // namespace
}  // namespace slat::trees
