// Theorem 10 at the quantitative level: the min-decomposition triple, the
// verifier laws, the chain-lattice bridge, and the boolean embeddings.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "quant/closure.hpp"
#include "quant/decomposition.hpp"
#include "quant/embed.hpp"
#include "quant/eval.hpp"
#include "quant/weighted.hpp"
#include "words/alphabet.hpp"
#include "words/up_word.hpp"

namespace slat::quant {
namespace {

using words::Alphabet;
using words::UpWord;

const UpWord a_omega({}, {0});
const UpWord b_omega({}, {1});

std::vector<UpWord> corpus() { return words::enumerate_up_words(2, 2, 2); }

// "Infinitely many a" as a LimSup property: the canonical live-not-safe
// quantitative property (closure ≡ ⊤, value 0 on finitely-many-a words).
WeightedNba gf_a() {
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kLimSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 1.0);
  aut.add_transition(0, 1, 0, 0.0);
  return aut;
}

TEST(QuantDecomposition, TripleAtALiveProperty) {
  const WeightedNba aut = gf_a();
  // At a^ω the property is already at ⊤: safe here, live part ⊤.
  const QuantDecomposition at_a = decompose_at(aut, a_omega);
  EXPECT_EQ(at_a.property, 1.0);
  EXPECT_EQ(at_a.safety, 1.0);
  EXPECT_EQ(at_a.live, 1.0);
  // At b^ω the closure still promises 1 but the value is 0: the live part
  // carries the whole property.
  const QuantDecomposition at_b = decompose_at(aut, b_omega);
  EXPECT_EQ(at_b.property, 0.0);
  EXPECT_EQ(at_b.safety, 1.0);
  EXPECT_EQ(at_b.live, 0.0);
  EXPECT_EQ(std::min(at_b.safety, at_b.live), at_b.property);
}

TEST(QuantDecomposition, VerifiersPassOnHandProperties) {
  const std::vector<UpWord> words = corpus();
  for (const WeightedNba& aut : {gf_a(), embed_buchi(buchi::Nba(
                                     Alphabet::binary(), 1, 0))}) {
    EXPECT_EQ(verify_decomposition(aut, words), std::nullopt);
    EXPECT_EQ(verify_closure_laws(aut, words), std::nullopt);
    EXPECT_EQ(verify_chain_embedding(aut, words), std::nullopt);
  }
}

TEST(QuantDecomposition, VerifierRejectsABrokenTriple) {
  // Sanity of the checker itself: feeding it a property whose "closure"
  // we corrupt must produce a counterexample string. Corrupt by checking
  // an automaton against the corpus of a DIFFERENT alphabet size — the
  // verifier must be alphabet-strict and is expected to die on misuse, so
  // instead corrupt semantically: claim gf_a decomposes with live ≡ ⊤.
  const WeightedNba aut = gf_a();
  const QuantDecomposition d = decompose_at(aut, b_omega);
  // The genuine live part is NOT ⊤ at b^ω; min(safety, ⊤) would be 1 ≠ 0.
  EXPECT_NE(std::min(d.safety, aut.top_value()), d.property);
}

TEST(QuantEmbed, BuchiEmbeddingMatchesAcceptance) {
  // L = GF a over Σ = {a, b}, the 2-state classic.
  buchi::Nba nba(Alphabet::binary(), 2, 0);
  nba.set_accepting(1, true);
  for (words::Sym s = 0; s < 2; ++s) {
    nba.add_transition(0, s, s == 0 ? 1 : 0);
    nba.add_transition(1, s, s == 0 ? 1 : 0);
  }
  const WeightedNba embedded = embed_buchi(nba);
  for (const UpWord& w : corpus()) {
    EXPECT_EQ(value(embedded, w), nba.accepts(w) ? 1.0 : 0.0)
        << w.to_string(nba.alphabet());
  }
  // GF a is live: closure ≡ ⊤ on every sampled word.
  for (const UpWord& w : corpus()) {
    EXPECT_EQ(closure_value(embedded, w), 1.0) << w.to_string(nba.alphabet());
  }
}

TEST(QuantEmbed, SafetyEmbeddingMatchesTheClosureLanguage) {
  // L = a^ω ∪ ab^ω-dead-end shape: lcl(L) adds the limits of live prefixes.
  buchi::Nba nba(Alphabet::binary(), 2, 0);
  nba.set_accepting(0, true);
  nba.add_transition(0, 0, 0);
  nba.add_transition(0, 1, 1);
  nba.add_transition(1, 1, 1);  // dead end: never accepting
  const buchi::Nba lcl = buchi::safety_closure(nba);
  const WeightedNba embedded = embed_safety(nba);
  for (const UpWord& w : corpus()) {
    EXPECT_EQ(value(embedded, w), lcl.accepts(w) ? 1.0 : 0.0)
        << w.to_string(nba.alphabet());
  }
}

}  // namespace
}  // namespace slat::quant
