// The product evaluator: hand-computed Φ(w) per value function on small
// automata, the empty-run bottom, memoized batch evaluation and state
// ranks.
#include <gtest/gtest.h>

#include <vector>

#include "quant/eval.hpp"
#include "quant/value_function.hpp"
#include "quant/weighted.hpp"
#include "words/alphabet.hpp"
#include "words/up_word.hpp"

namespace slat::quant {
namespace {

using words::Alphabet;
using words::UpWord;

// Two runs from q0 on a^ω: stay in q0 (weight ½ forever) or jump to q1
// once (weight 1 on the jump, then ¾ forever). Nondeterminism makes the
// sup over runs non-trivial for every value function.
WeightedNba forked(ValueFn fn, double discount = 0.5) {
  WeightedNba aut(Alphabet::binary(), 2, 0, fn, discount);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 0.5);
  aut.add_transition(0, 0, 1, 1.0);
  aut.add_transition(1, 0, 1, 0.75);
  return aut;
}

const UpWord a_omega({}, {0});
const UpWord b_omega({}, {1});

TEST(QuantEval, SupTakesTheBestSingleWeight) {
  EXPECT_EQ(value(forked(ValueFn::kSup), a_omega), 1.0);
}

TEST(QuantEval, InfPrefersTheUniformRun) {
  // Staying in q0 gives inf ½; jumping gives min(1, ¾) = ¾ — sup is ¾.
  EXPECT_EQ(value(forked(ValueFn::kInf), a_omega), 0.75);
}

TEST(QuantEval, LimSupAndLimInfSeeOnlyTheTail) {
  // Tails: ½^ω (stay) or ¾^ω (jump) — the jump weight 1 occurs once and
  // is invisible in the limit.
  EXPECT_EQ(value(forked(ValueFn::kLimSup), a_omega), 0.75);
  EXPECT_EQ(value(forked(ValueFn::kLimInf), a_omega), 0.75);
}

TEST(QuantEval, LimAvgIsTheBestCycleMean) {
  EXPECT_EQ(value(forked(ValueFn::kLimAvg), a_omega), 0.75);
}

TEST(QuantEval, DiscSumMatchesTheClosedForm) {
  // Best run jumps immediately: 1 + λ·(¾/(1−λ)) = 1 + ¾ = 1.75 at λ = ½.
  const std::vector<double> stem{1.0};
  const std::vector<double> cycle{0.75};
  EXPECT_EQ(value(forked(ValueFn::kDiscSum), a_omega),
            discounted_lasso_value(stem, cycle, 0.5));
}

TEST(QuantEval, NoInfiniteRunMeansBottom) {
  // No b-transitions anywhere: Φ(b^ω) = ⊥ for every value function.
  for (const ValueFn fn : kAllValueFns) {
    const WeightedNba aut = forked(fn);
    EXPECT_EQ(value(aut, b_omega), aut.bottom_value()) << to_string(fn);
  }
}

TEST(QuantEval, LimAvgAveragesTheCycleNotTheStem) {
  // One run: weight 1 on the stem edge, then a 0-weight self-loop.
  WeightedNba aut(Alphabet::binary(), 2, 0, ValueFn::kLimAvg);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 1, 1.0);
  aut.add_transition(1, 0, 1, 0.0);
  EXPECT_EQ(value(aut, a_omega), 0.0);
}

TEST(QuantEval, BatchValuesAgreesWithScalar) {
  const WeightedNba aut = forked(ValueFn::kLimAvg);
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  const std::vector<double> batch = batch_values(aut, corpus);
  ASSERT_EQ(batch.size(), corpus.size());
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_EQ(batch[i], value(aut, corpus[i])) << i;
  }
}

TEST(QuantEval, StateRanksMarkDeadStatesAndBoundValues) {
  for (const ValueFn fn : kAllValueFns) {
    const WeightedNba aut = forked(fn);
    const auto ranks = state_ranks(aut);
    ASSERT_EQ(ranks->live.size(), 2u) << to_string(fn);
    // Both states sit on an a-cycle, so both are live.
    EXPECT_TRUE(ranks->live[0]) << to_string(fn);
    EXPECT_TRUE(ranks->live[1]) << to_string(fn);
    for (int q = 0; q < 2; ++q) {
      EXPECT_GE(ranks->rank[q], aut.bottom_value()) << to_string(fn);
      EXPECT_LE(ranks->rank[q], aut.top_value()) << to_string(fn);
    }
  }
}

}  // namespace
}  // namespace slat::quant
