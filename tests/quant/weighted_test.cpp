// WeightedNba structure: CSR-aligned weight rows, first-wins dedup shared
// with the underlying Nba, domain bounds, and fingerprint sensitivity.
#include <gtest/gtest.h>

#include <vector>

#include "quant/value_function.hpp"
#include "quant/weighted.hpp"
#include "words/alphabet.hpp"

namespace slat::quant {
namespace {

using words::Alphabet;

WeightedNba two_state(ValueFn fn) {
  WeightedNba aut(Alphabet::binary(), 2, 0, fn);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 1, 0.25);
  aut.add_transition(0, 0, 0, 0.5);
  aut.add_transition(1, 1, 1, 1.0);
  return aut;
}

TEST(WeightedNba, WeightsAlignWithSuccessorSlices) {
  const WeightedNba aut = two_state(ValueFn::kSup);
  const auto succ = aut.nba().successors(0, 0);
  const auto wts = aut.weights(0, 0);
  ASSERT_EQ(succ.size(), 2u);
  ASSERT_EQ(wts.size(), 2u);
  // First-insertion order: target 1 (w=0.25) before target 0 (w=0.5).
  EXPECT_EQ(succ[0], 1);
  EXPECT_EQ(wts[0], 0.25);
  EXPECT_EQ(succ[1], 0);
  EXPECT_EQ(wts[1], 0.5);
  EXPECT_EQ(aut.weight_of(0, 0, 0), 0.5);
  EXPECT_EQ(aut.weight_of(1, 1, 1), 1.0);
  EXPECT_TRUE(aut.weights(1, 0).empty());
}

TEST(WeightedNba, DuplicateEdgeKeepsFirstWeight) {
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kSup);
  aut.add_transition(0, 0, 0, 0.25);
  aut.add_transition(0, 0, 0, 0.75);  // ignored, like Nba::add_transition
  ASSERT_EQ(aut.nba().successors(0, 0).size(), 1u);
  EXPECT_EQ(aut.weight_of(0, 0, 0), 0.25);
}

TEST(WeightedNba, CopyPreservesStructureAndWeights) {
  const WeightedNba aut = two_state(ValueFn::kLimAvg);
  WeightedNba copy = aut;
  EXPECT_EQ(fingerprint(copy), fingerprint(aut));
  copy.add_transition(1, 0, 0, 0.125);
  EXPECT_NE(fingerprint(copy), fingerprint(aut));
}

TEST(WeightedNba, FingerprintSensitivity) {
  const WeightedNba base = two_state(ValueFn::kSup);
  // Same structure, one weight changed.
  WeightedNba reweighted(Alphabet::binary(), 2, 0, ValueFn::kSup);
  reweighted.nba().set_accepting(0, true);
  reweighted.add_transition(0, 0, 1, 0.125);
  reweighted.add_transition(0, 0, 0, 0.5);
  reweighted.add_transition(1, 1, 1, 1.0);
  EXPECT_NE(fingerprint(reweighted), fingerprint(base));
  // Same structure and weights, different value function.
  EXPECT_NE(fingerprint(two_state(ValueFn::kInf)), fingerprint(base));
  // Deterministic across constructions.
  EXPECT_EQ(fingerprint(two_state(ValueFn::kSup)), fingerprint(base));
}

TEST(WeightedNba, ValueDomainBounds) {
  const WeightedNba sup = two_state(ValueFn::kSup);
  EXPECT_EQ(sup.bottom_value(), 0.0);
  EXPECT_EQ(sup.top_value(), 1.0);
  // A discounted sum of weights in [0, 1] at λ = ½ ranges over [0, 2].
  WeightedNba disc(Alphabet::binary(), 1, 0, ValueFn::kDiscSum, 0.5);
  EXPECT_EQ(disc.bottom_value(), 0.0);
  EXPECT_EQ(disc.top_value(), 2.0);
}

TEST(ValueFunction, FoldValueOnLassos) {
  const WeightLasso lasso{{1.0}, {0.0, 0.5}};
  EXPECT_EQ(fold_value(ValueFn::kSup, 0.5, lasso), 1.0);
  EXPECT_EQ(fold_value(ValueFn::kInf, 0.5, lasso), 0.0);
  // The lim* functions ignore the stem.
  EXPECT_EQ(fold_value(ValueFn::kLimSup, 0.5, lasso), 0.5);
  EXPECT_EQ(fold_value(ValueFn::kLimInf, 0.5, lasso), 0.0);
  EXPECT_EQ(fold_value(ValueFn::kLimAvg, 0.5, lasso), 0.25);
  // fold_value shares discounted_lasso_value with the evaluator's policy
  // walk; pin that bit-identity here.
  EXPECT_EQ(fold_value(ValueFn::kDiscSum, 0.5, lasso),
            discounted_lasso_value(lasso.prefix, lasso.period, 0.5));
}

TEST(ValueFunction, DiscountedLassoClosedForm) {
  // 0.5^ω at λ = ½: Σ λ^i · ½ = ½ · 2 = 1.
  const std::vector<double> empty_stem;
  const std::vector<double> half{0.5};
  EXPECT_DOUBLE_EQ(discounted_lasso_value(empty_stem, half, 0.5), 1.0);
  // Pure stem then zeros: value is the finite discounted stem sum.
  const std::vector<double> ones{1.0, 1.0};
  const std::vector<double> zero{0.0};
  EXPECT_EQ(discounted_lasso_value(ones, zero, 0.5), 1.5);
}

TEST(ValueFunction, PrefixIndependenceFlags) {
  EXPECT_FALSE(prefix_independent(ValueFn::kSup));
  EXPECT_FALSE(prefix_independent(ValueFn::kInf));
  EXPECT_FALSE(prefix_independent(ValueFn::kDiscSum));
  EXPECT_TRUE(prefix_independent(ValueFn::kLimSup));
  EXPECT_TRUE(prefix_independent(ValueFn::kLimInf));
  EXPECT_TRUE(prefix_independent(ValueFn::kLimAvg));
}

}  // namespace
}  // namespace slat::quant
