// The quantitative safety closure: prefix_sup monotonicity, hand-computed
// Φ* values, the closure-automaton laws and the sampled membership tests.
#include <gtest/gtest.h>

#include <vector>

#include "quant/closure.hpp"
#include "quant/embed.hpp"
#include "quant/eval.hpp"
#include "quant/weighted.hpp"
#include "words/alphabet.hpp"
#include "words/up_word.hpp"

namespace slat::quant {
namespace {

using words::Alphabet;
using words::UpWord;

// Φ(w) = 1 if w = a^ω, else no run survives: Sup over the a-loop of
// weight 1. Every a-prefix still promises 1, and the first b drops both
// the value AND the promise to ⊥ — a safety property with a non-trivial
// prefix_sup descent.
WeightedNba only_a_omega() {
  WeightedNba aut(Alphabet::binary(), 2, 0, ValueFn::kSup);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 1, 1.0);
  aut.add_transition(1, 0, 1, 1.0);
  return aut;
}

const UpWord a_omega({}, {0});
const UpWord ab_omega({0}, {1});

TEST(QuantClosure, PrefixSupIsNonIncreasing) {
  const WeightedNba aut = only_a_omega();
  const double at_empty = prefix_sup(aut, {});
  const double at_a = prefix_sup(aut, {0});
  const double at_ab = prefix_sup(aut, {0, 1});
  EXPECT_GE(at_empty, at_a);
  EXPECT_GE(at_a, at_ab);
  EXPECT_EQ(at_a, 1.0);   // a^ω still continues the prefix "a"
  EXPECT_EQ(at_ab, 0.0);  // no run survives "ab": sup over continuations = ⊥
}

TEST(QuantClosure, ClosureIsExtensiveAndSeparatesAtTheLimit) {
  const WeightedNba aut = only_a_omega();
  // At a^ω: value 1 and every prefix promises 1 — closure equals value.
  EXPECT_EQ(value(aut, a_omega), 1.0);
  EXPECT_EQ(closure_value(aut, a_omega), 1.0);
  // At a·b^ω: value ⊥ but the closure has already dropped to ⊥ too (the
  // prefix "ab" kills every run) — this word does NOT witness unsafety.
  EXPECT_EQ(value(aut, ab_omega), 0.0);
  EXPECT_EQ(closure_value(aut, ab_omega), 0.0);
}

TEST(QuantClosure, ClosureAutomatonReproducesTheClosure) {
  const WeightedNba aut = only_a_omega();
  const WeightedNba cl = closure_automaton(aut);
  for (const UpWord& w : words::enumerate_up_words(2, 2, 2)) {
    const double expected = closure_value(aut, w);
    // The closure is safe: evaluating the closure automaton gives Φ* …
    EXPECT_EQ(value(cl, w), expected) << w.to_string(aut.nba().alphabet());
    // … and Φ is a fixpoint of closing twice (Φ** = Φ*).
    EXPECT_EQ(closure_value(cl, w), expected) << w.to_string(aut.nba().alphabet());
  }
}

TEST(QuantClosure, DiscSumIsAlreadySafe) {
  // Bounded discounted sums are continuous, hence safe: Φ* = Φ.
  WeightedNba aut(Alphabet::binary(), 1, 0, ValueFn::kDiscSum, 0.5);
  aut.nba().set_accepting(0, true);
  aut.add_transition(0, 0, 0, 1.0);
  aut.add_transition(0, 1, 0, 0.0);
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  for (const UpWord& w : corpus) {
    EXPECT_EQ(closure_value(aut, w), value(aut, w))
        << w.to_string(aut.nba().alphabet());
  }
  EXPECT_TRUE(is_safety_on(aut, corpus));
}

TEST(QuantClosure, SampledMembershipTests) {
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  // A Sup property with a total 1-weighted structure is constantly ⊤ —
  // safe (and vacuously live: no word has value < ⊤).
  WeightedNba top(Alphabet::binary(), 1, 0, ValueFn::kSup);
  top.nba().set_accepting(0, true);
  top.add_transition(0, 0, 0, 1.0);
  top.add_transition(0, 1, 0, 1.0);
  EXPECT_TRUE(is_safety_on(top, corpus));
  EXPECT_TRUE(is_liveness_on(top, corpus));

  // "Infinitely many a" embedded as LimSup: live but not safe — b^ω has
  // value 0 < ⊤ while every prefix still promises 1.
  WeightedNba gf_a(Alphabet::binary(), 1, 0, ValueFn::kLimSup);
  gf_a.nba().set_accepting(0, true);
  gf_a.add_transition(0, 0, 0, 1.0);
  gf_a.add_transition(0, 1, 0, 0.0);
  EXPECT_FALSE(is_safety_on(gf_a, corpus));
  EXPECT_TRUE(is_liveness_on(gf_a, corpus));

  // {a^ω} is limit-closed, so only_a_omega is safe — and not live: b^ω has
  // value ⊥ < ⊤ with closure ⊥ too (no promise survives the first b).
  EXPECT_TRUE(is_safety_on(only_a_omega(), corpus));
  EXPECT_FALSE(is_liveness_on(only_a_omega(), corpus));
}

}  // namespace
}  // namespace slat::quant
