#include "words/up_word.hpp"

#include <gtest/gtest.h>

#include <set>

namespace slat::words {
namespace {

TEST(UpWord, NormalizesPeriodToPrimitiveRoot) {
  const UpWord w({}, {0, 1, 0, 1});
  EXPECT_EQ(w.period(), (Word{0, 1}));
  EXPECT_TRUE(w.is_normalized());
}

TEST(UpWord, NormalizesPrefixIntoPeriod) {
  // a(ba)^ω = (ab)^ω.
  const UpWord lhs({0}, {1, 0});
  const UpWord rhs({}, {0, 1});
  EXPECT_EQ(lhs, rhs);
}

TEST(UpWord, ConstantWordsCollapse) {
  EXPECT_EQ(UpWord({0, 0, 0}, {0}), UpWord::constant(0));
  EXPECT_EQ(UpWord({}, {0, 0, 0}), UpWord::constant(0));
}

TEST(UpWord, DistinctWordsStayDistinct) {
  EXPECT_FALSE(UpWord({0}, {1}) == UpWord({}, {1}));
  EXPECT_FALSE(UpWord({}, {0, 1}) == UpWord({}, {1, 0}));
}

TEST(UpWord, AtIndexesPrefixThenPeriod) {
  const UpWord w({0, 1}, {2, 3});
  EXPECT_EQ(w.at(0), 0);
  EXPECT_EQ(w.at(1), 1);
  EXPECT_EQ(w.at(2), 2);
  EXPECT_EQ(w.at(3), 3);
  EXPECT_EQ(w.at(4), 2);
  EXPECT_EQ(w.at(100), 2);
  EXPECT_EQ(w.at(101), 3);
}

TEST(UpWord, TakeProducesFinitePrefix) {
  const UpWord w({0}, {1, 2});
  EXPECT_EQ(w.take(5), (Word{0, 1, 2, 1, 2}));
  EXPECT_EQ(w.take(0), Word{});
}

TEST(UpWord, SuffixDenotesTheShiftedWord) {
  const UpWord w({0, 1}, {2, 3});
  for (std::size_t shift = 0; shift <= 6; ++shift) {
    const UpWord s = w.suffix(shift);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(s.at(i), w.at(i + shift)) << "shift " << shift << " i " << i;
    }
  }
}

TEST(UpWord, SuffixEqualityAfterFullPeriod) {
  const UpWord w({}, {0, 1, 2});
  EXPECT_EQ(w.suffix(3), w);
  EXPECT_EQ(w.suffix(6), w);
}

TEST(UpWord, ToStringUsesAlphabetNames) {
  const Alphabet alphabet = Alphabet::binary();
  EXPECT_EQ(UpWord({0}, {1}).to_string(alphabet), "a(b)^w");
  EXPECT_EQ(UpWord::constant(0).to_string(alphabet), "(a)^w");
}

TEST(EnumerateUpWords, DeduplicatesByValue) {
  const auto words = enumerate_up_words(2, 2, 2);
  std::set<UpWord> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), words.size());
  // Every word is in normal form.
  for (const UpWord& w : words) EXPECT_TRUE(w.is_normalized());
  // The two constant words and the alternating word are present.
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord::constant(0)), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord::constant(1)), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord({}, {0, 1})), words.end());
}

TEST(EnumerateUpWords, CountGrowsWithBounds) {
  EXPECT_LT(enumerate_up_words(2, 1, 2).size(), enumerate_up_words(2, 3, 3).size());
  EXPECT_EQ(enumerate_up_words(1, 2, 2).size(), 1u);  // only s0^ω
}

TEST(UpWord, OrderingIsStrictWeak) {
  const auto words = enumerate_up_words(2, 2, 2);
  for (const auto& x : words) {
    EXPECT_FALSE(x < x);
    for (const auto& y : words) {
      if (x < y) {
        EXPECT_FALSE(y < x);
      }
    }
  }
}

}  // namespace
}  // namespace slat::words
