#include "words/up_word.hpp"

#include <gtest/gtest.h>

#include <set>

namespace slat::words {
namespace {

TEST(UpWord, NormalizesPeriodToPrimitiveRoot) {
  const UpWord w({}, {0, 1, 0, 1});
  EXPECT_EQ(w.period(), (Word{0, 1}));
  EXPECT_TRUE(w.is_normalized());
}

TEST(UpWord, NormalizesPrefixIntoPeriod) {
  // a(ba)^ω = (ab)^ω.
  const UpWord lhs({0}, {1, 0});
  const UpWord rhs({}, {0, 1});
  EXPECT_EQ(lhs, rhs);
}

TEST(UpWord, ConstantWordsCollapse) {
  EXPECT_EQ(UpWord({0, 0, 0}, {0}), UpWord::constant(0));
  EXPECT_EQ(UpWord({}, {0, 0, 0}), UpWord::constant(0));
}

TEST(UpWord, DistinctWordsStayDistinct) {
  EXPECT_FALSE(UpWord({0}, {1}) == UpWord({}, {1}));
  EXPECT_FALSE(UpWord({}, {0, 1}) == UpWord({}, {1, 0}));
}

TEST(UpWord, AtIndexesPrefixThenPeriod) {
  const UpWord w({0, 1}, {2, 3});
  EXPECT_EQ(w.at(0), 0);
  EXPECT_EQ(w.at(1), 1);
  EXPECT_EQ(w.at(2), 2);
  EXPECT_EQ(w.at(3), 3);
  EXPECT_EQ(w.at(4), 2);
  EXPECT_EQ(w.at(100), 2);
  EXPECT_EQ(w.at(101), 3);
}

TEST(UpWord, TakeProducesFinitePrefix) {
  const UpWord w({0}, {1, 2});
  EXPECT_EQ(w.take(5), (Word{0, 1, 2, 1, 2}));
  EXPECT_EQ(w.take(0), Word{});
}

TEST(UpWord, SuffixDenotesTheShiftedWord) {
  const UpWord w({0, 1}, {2, 3});
  for (std::size_t shift = 0; shift <= 6; ++shift) {
    const UpWord s = w.suffix(shift);
    for (std::size_t i = 0; i < 12; ++i) {
      EXPECT_EQ(s.at(i), w.at(i + shift)) << "shift " << shift << " i " << i;
    }
  }
}

TEST(UpWord, SuffixEqualityAfterFullPeriod) {
  const UpWord w({}, {0, 1, 2});
  EXPECT_EQ(w.suffix(3), w);
  EXPECT_EQ(w.suffix(6), w);
}

TEST(UpWord, IsNormalizedAgreesWithRenormalization) {
  // The direct normal-form check must agree exactly with "construct a copy
  // and see if normalize() changed anything" — over every (prefix, period)
  // pair up to length 4 over a ternary alphabet, fed through the PRIVATE
  // representation path: build a normalized word, then compare predicates on
  // raw candidate pairs via a freshly constructed word.
  for (int p0 = -1; p0 < 3; ++p0) {
    for (int p1 = -1; p1 < 3; ++p1) {
      for (int v0 = 0; v0 < 3; ++v0) {
        for (int v1 = -1; v1 < 3; ++v1) {
          Word prefix;
          if (p0 >= 0) prefix.push_back(p0);
          if (p0 >= 0 && p1 >= 0) prefix.push_back(p1);
          Word period{v0};
          if (v1 >= 0) period.push_back(v1);
          const UpWord w(prefix, period);
          // Constructor normalizes, so the result must satisfy the predicate…
          EXPECT_TRUE(w.is_normalized()) << w.to_string(Alphabet::of_size(3));
          // …and re-normalizing must be the identity.
          EXPECT_EQ(UpWord(w.prefix(), w.period()), w);
        }
      }
    }
  }
}

TEST(UpWord, ConstructorCollapsesNonNormalInputs) {
  // Non-normal (prefix, period) inputs collapse at construction — so the
  // class invariant the direct is_normalized() check relies on (primitive
  // period, absorbed prefix) really holds for every constructible word.
  EXPECT_EQ(UpWord({}, {1, 1, 1}).period(), (Word{1}));        // power collapses
  EXPECT_EQ(UpWord({}, {0, 1, 0, 1, 0, 1}).period(), (Word{0, 1}));
  EXPECT_EQ(UpWord({0, 1}, {1, 1}).prefix(), (Word{0}));       // absorption fires
}

TEST(UpWord, SuffixWithEmptyPrefixRotatesAtPeriodBoundary) {
  // Edge cases for suffix() on a purely periodic word: shifts that land
  // exactly ON the period boundary must return the same word, and interior
  // shifts must return a normalized rotation.
  const UpWord w({}, {0, 1, 2});
  EXPECT_EQ(w.suffix(0), w);
  EXPECT_EQ(w.suffix(3), w);
  EXPECT_EQ(w.suffix(300), w);
  const UpWord rotated = w.suffix(1);
  EXPECT_EQ(rotated, UpWord({}, {1, 2, 0}));
  EXPECT_TRUE(rotated.is_normalized());
  // A rotation can itself need normalization: (aab)^ω shifted by 2 is
  // (baa)^ω, whose fresh construction must stay primitive and prefix-free.
  const UpWord v({}, {0, 0, 1});
  for (std::size_t shift = 0; shift <= 6; ++shift) {
    EXPECT_TRUE(v.suffix(shift).is_normalized()) << shift;
  }
}

TEST(UpWord, SuffixPastPrefixEndIsExactlyThePeriodicTail) {
  // Shift exactly at the prefix/period boundary (i == prefix_size): the
  // result is the pure periodic tail, not a rotation.
  const UpWord w({2, 2}, {0, 1});
  EXPECT_EQ(w.suffix(2), UpWord({}, {0, 1}));
  // One past the boundary rotates; the rotated form collapses when the
  // rotation is a power ((ab)(ab)… shifted into (ba)(ba)…).
  EXPECT_EQ(w.suffix(3), UpWord({}, {1, 0}));
  EXPECT_TRUE(w.suffix(3).is_normalized());
}

TEST(UpWord, ToStringUsesAlphabetNames) {
  const Alphabet alphabet = Alphabet::binary();
  EXPECT_EQ(UpWord({0}, {1}).to_string(alphabet), "a(b)^w");
  EXPECT_EQ(UpWord::constant(0).to_string(alphabet), "(a)^w");
}

TEST(EnumerateUpWords, DeduplicatesByValue) {
  const auto words = enumerate_up_words(2, 2, 2);
  std::set<UpWord> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), words.size());
  // Every word is in normal form.
  for (const UpWord& w : words) EXPECT_TRUE(w.is_normalized());
  // The two constant words and the alternating word are present.
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord::constant(0)), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord::constant(1)), words.end());
  EXPECT_NE(std::find(words.begin(), words.end(), UpWord({}, {0, 1})), words.end());
}

TEST(EnumerateUpWords, CountGrowsWithBounds) {
  EXPECT_LT(enumerate_up_words(2, 1, 2).size(), enumerate_up_words(2, 3, 3).size());
  EXPECT_EQ(enumerate_up_words(1, 2, 2).size(), 1u);  // only s0^ω
}

TEST(UpWord, OrderingIsStrictWeak) {
  const auto words = enumerate_up_words(2, 2, 2);
  for (const auto& x : words) {
    EXPECT_FALSE(x < x);
    for (const auto& y : words) {
      if (x < y) {
        EXPECT_FALSE(y < x);
      }
    }
  }
}

}  // namespace
}  // namespace slat::words
