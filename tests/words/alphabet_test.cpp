// Alphabet lookups (the hashed index_of) and the AP-backed 2^k flavor.
#include "words/alphabet.hpp"

#include <gtest/gtest.h>

#include "core/memo_cache.hpp"

namespace slat::words {
namespace {

TEST(Alphabet, IndexOfReturnsTheSameSymbolsAsTheLinearScan) {
  // Regression for the hashed index: lookup results (and the name ↔ index
  // correspondence) are exactly the seed-era linear scan's.
  const Alphabet a = Alphabet::of_size(50);
  for (Sym s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a.name(s), "s" + std::to_string(s));
    const auto found = a.index_of(a.name(s));
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(*found, s);
  }
  EXPECT_FALSE(a.index_of("s50").has_value());
  EXPECT_FALSE(a.index_of("").has_value());

  const Alphabet b = Alphabet::binary();
  EXPECT_EQ(b.index_of("a"), std::optional<Sym>(0));
  EXPECT_EQ(b.index_of("b"), std::optional<Sym>(1));
  EXPECT_FALSE(b.index_of("c").has_value());
}

TEST(Alphabet, ApBackedAlphabetEncodesValuations) {
  const Alphabet a = Alphabet::of_aps({"p", "q", "r"});
  EXPECT_TRUE(a.ap_backed());
  EXPECT_EQ(a.ap_count(), 3);
  EXPECT_EQ(a.size(), 8);
  EXPECT_EQ(a.atom_range(), 3);
  EXPECT_EQ(a.atom_name(0), "p");
  EXPECT_EQ(a.atom_index_of("r"), std::optional<int>(2));
  EXPECT_FALSE(a.atom_index_of("s").has_value());

  // Letter 0b101 = {p, r}: bit j of the letter is the truth of AP j.
  EXPECT_TRUE(a.letter_satisfies_atom(0b101, 0));
  EXPECT_FALSE(a.letter_satisfies_atom(0b101, 1));
  EXPECT_TRUE(a.letter_satisfies_atom(0b101, 2));

  // Lazy names round-trip through index_of without materializing 2^k up
  // front; rendering is MSB-first.
  EXPECT_EQ(a.name(0b101), "v101");
  EXPECT_EQ(a.index_of("v101"), std::optional<Sym>(0b101));
  EXPECT_EQ(a.index_of("v000"), std::optional<Sym>(0));
  EXPECT_FALSE(a.index_of("v10").has_value());
  EXPECT_FALSE(a.index_of("p").has_value());

  EXPECT_EQ(a, Alphabet::of_aps({"p", "q", "r"}));
  EXPECT_FALSE(a == Alphabet::of_aps({"p", "q"}));
  EXPECT_FALSE(a == Alphabet::of_size(8));
}

TEST(Alphabet, ExplicitDigestMatchesTheSeedEncoding) {
  // digest_alphabet must keep the seed-era byte stream for explicit
  // alphabets (memo-cache digests survive the refactor) ...
  const Alphabet a = Alphabet::of_size(5);
  core::DigestBuilder via_helper;
  digest_alphabet(via_helper, a);
  core::DigestBuilder seed_era;
  seed_era.add_int(a.size());
  for (Sym s = 0; s < a.size(); ++s) seed_era.add_string(a.name(s));
  EXPECT_EQ(via_helper.digest(), seed_era.digest());
}

TEST(Alphabet, ApDigestIsDisjointFromExplicitAndNameFree) {
  // ... while AP-backed alphabets digest the AP list in a disjoint domain,
  // independent of how many letter names were lazily rendered.
  const Alphabet ap = Alphabet::of_aps({"p", "q", "r"});
  const Alphabet expl = Alphabet::of_size(8);

  core::DigestBuilder b1, b2, b3;
  digest_alphabet(b1, ap);
  digest_alphabet(b2, expl);
  EXPECT_NE(b1.digest(), b2.digest());

  const Alphabet ap_again = Alphabet::of_aps({"p", "q", "r"});
  (void)ap_again.name(3);  // render a few names first
  (void)ap_again.name(7);
  digest_alphabet(b3, ap_again);
  EXPECT_EQ(b1.digest(), b3.digest());
}

}  // namespace
}  // namespace slat::words
