// The cube-label store: hash-consing contract, algebra laws against the
// letter-set semantics, and the minterm refinement. Small k throughout so
// every law can be checked against exhaustive expansion.
#include "words/cube.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

namespace slat::words {
namespace {

std::set<Sym> letters(CubeStore& store, LabelId label) {
  const auto v = store.expand_letters(label);
  return std::set<Sym>(v.begin(), v.end());
}

TEST(CubeStore, DistinguishedLabelsArePinned) {
  CubeStore store(3);
  EXPECT_TRUE(store.is_empty(kEmptyLabel));
  EXPECT_TRUE(store.is_full(kFullLabel));
  EXPECT_TRUE(store.cubes(kEmptyLabel).empty());
  ASSERT_EQ(store.cubes(kFullLabel).size(), 1u);
  EXPECT_EQ(store.cubes(kFullLabel)[0], (Cube{0, 0}));
  // A contradictory cube is the empty label, not a fresh node.
  EXPECT_EQ(store.cube(0b001, 0b001), kEmptyLabel);
  EXPECT_EQ(store.cube(0, 0), kFullLabel);
}

TEST(CubeStore, HashConsingReturnsTheSameIdForEqualConstructions) {
  CubeStore store(4);
  // The contract the dropped-dedup mutant violates: structurally equal
  // labels are id-equal, however they were built.
  const LabelId a = store.cube(0b0011, 0b0100);
  const LabelId b = store.cube(0b0011, 0b0100);
  EXPECT_EQ(a, b);

  const LabelId c = store.make({Cube{0b0001, 0}, Cube{0b0010, 0}});
  const LabelId d = store.make({Cube{0b0010, 0}, Cube{0b0001, 0}});  // permuted
  const LabelId e = store.make({Cube{0b0001, 0}, Cube{0b0010, 0}, Cube{0b0001, 0}});
  EXPECT_EQ(c, d);
  EXPECT_EQ(c, e);

  // Memoized algebra: repeating an operation is a hit, same id.
  const std::uint64_t hits_before = store.stats().memo_hits;
  const LabelId x = store.intersect(c, store.complement(a));
  const LabelId y = store.intersect(c, store.complement(a));
  EXPECT_EQ(x, y);
  EXPECT_GT(store.stats().memo_hits, hits_before);
}

TEST(CubeStore, NormalizationPrunesSubsumedCubes) {
  CubeStore store(3);
  // {p} subsumes {p q}: the weaker cube absorbs the stronger one.
  const LabelId merged = store.make({Cube{0b001, 0}, Cube{0b011, 0}});
  EXPECT_EQ(merged, store.cube(0b001, 0));
  // An unconstrained cube absorbs everything.
  EXPECT_EQ(store.make({Cube{0b001, 0}, Cube{0, 0}}), kFullLabel);
}

TEST(CubeStore, LetterLabelsExpandToThemselves) {
  CubeStore store(3);
  for (Sym v = 0; v < 8; ++v) {
    const LabelId l = store.letter(v);
    EXPECT_EQ(letters(store, l), std::set<Sym>{v});
    EXPECT_EQ(store.min_letter(l), v);
    EXPECT_EQ(store.count_letters(l), 1u);
    for (Sym w = 0; w < 8; ++w) EXPECT_EQ(store.matches(l, w), v == w);
  }
}

TEST(CubeStore, AlgebraMatchesLetterSetSemantics) {
  CubeStore store(4);
  std::mt19937 rng(20260809);
  const auto random_label = [&] {
    std::vector<Cube> cubes;
    const int n = static_cast<int>(rng() % 3);
    for (int i = 0; i < n; ++i) {
      const ApMask mt = static_cast<ApMask>(rng() % 16);
      const ApMask mf = static_cast<ApMask>(rng() % 16) & ~mt;
      cubes.push_back(Cube{mt, mf});
    }
    return store.make(std::move(cubes));
  };
  std::set<Sym> all;
  for (Sym v = 0; v < 16; ++v) all.insert(v);

  for (int trial = 0; trial < 200; ++trial) {
    const LabelId a = random_label();
    const LabelId b = random_label();
    const std::set<Sym> sa = letters(store, a);
    const std::set<Sym> sb = letters(store, b);

    std::set<Sym> expect_and, expect_or, expect_not;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::inserter(expect_and, expect_and.end()));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::inserter(expect_or, expect_or.end()));
    std::set_difference(all.begin(), all.end(), sa.begin(), sa.end(),
                        std::inserter(expect_not, expect_not.end()));

    EXPECT_EQ(letters(store, store.intersect(a, b)), expect_and);
    EXPECT_EQ(letters(store, store.unite(a, b)), expect_or);
    EXPECT_EQ(letters(store, store.complement(a)), expect_not);
    // Involution and De Morgan. Note: canonical DNF is canonical per
    // STRUCTURE, not per semantics, so involution holds on letter sets —
    // ¬¬a may intern a different (equivalent) cube decomposition than a.
    EXPECT_EQ(letters(store, store.complement(store.complement(a))), sa);
    EXPECT_EQ(letters(store, store.complement(store.intersect(a, b))),
              letters(store, store.unite(store.complement(a), store.complement(b))));
    EXPECT_EQ(store.count_letters(a), sa.size());
    EXPECT_EQ(store.min_letter(a), sa.empty() ? -1 : *sa.begin());
    for (Sym v = 0; v < 16; ++v) EXPECT_EQ(store.matches(a, v), sa.count(v) != 0);
  }
}

TEST(CubeStore, RefineYieldsTheMintermPartitionSortedByMinLetter) {
  CubeStore store(4);
  const std::vector<LabelId> labels = {
      store.cube(0b0001, 0),        // p0
      store.cube(0b0010, 0b0100),   // p1 ∧ ¬p2
      store.make({Cube{0b1000, 0}, Cube{0, 0b0001}}),  // p3 ∨ ¬p0
  };
  const std::vector<LabelId> blocks = store.refine(labels);

  // Partition: disjoint, exhaustive.
  std::set<Sym> seen;
  Sym previous_min = -1;
  for (const LabelId block : blocks) {
    EXPECT_GT(store.min_letter(block), previous_min);  // sorted, distinct
    previous_min = store.min_letter(block);
    for (const Sym v : store.expand_letters(block)) {
      EXPECT_TRUE(seen.insert(v).second) << "blocks overlap at letter " << v;
    }
  }
  EXPECT_EQ(seen.size(), 16u);

  // Every input label is a union of blocks: each block is inside or outside.
  for (const LabelId label : labels) {
    const std::set<Sym> sl = letters(store, label);
    for (const LabelId block : blocks) {
      const auto bl = store.expand_letters(block);
      const bool first_in = sl.count(bl.front()) != 0;
      for (const Sym v : bl) EXPECT_EQ(sl.count(v) != 0, first_in);
    }
  }

  // Determinism in the label SET: permuted + duplicated input, same blocks.
  std::vector<LabelId> shuffled = {labels[2], labels[0], labels[1], labels[0]};
  EXPECT_EQ(store.refine(shuffled), blocks);
}

TEST(CubeStore, ImportReinternsAcrossStores) {
  CubeStore a(3), b(3);
  const LabelId in_a = a.make({Cube{0b001, 0b010}, Cube{0b100, 0}});
  const LabelId in_b = b.import(a, in_a);
  EXPECT_EQ(letters(b, in_b), letters(a, in_a));
  // Round trip through the other store lands on the SAME id (canonical).
  EXPECT_EQ(a.import(b, in_b), in_a);
}

TEST(CubeStore, ToStringRendersApNames) {
  CubeStore store(2);
  const Alphabet alphabet = Alphabet::of_aps({"p", "q"});
  EXPECT_EQ(store.to_string(kEmptyLabel, alphabet), "false");
  EXPECT_EQ(store.to_string(kFullLabel, alphabet), "true");
  const LabelId l = store.make({Cube{0b01, 0b10}, Cube{0b10, 0}});
  EXPECT_EQ(store.to_string(l, alphabet), "{p !q} | {q}");
}

TEST(AlphabetBackend, ScopeRestoresThePreviousBackend) {
  const AlphabetBackend before = alphabet_backend();
  {
    AlphabetBackendScope scope(AlphabetBackend::kExplicit);
    EXPECT_EQ(alphabet_backend(), AlphabetBackend::kExplicit);
    {
      AlphabetBackendScope inner(AlphabetBackend::kSymbolic);
      EXPECT_EQ(alphabet_backend(), AlphabetBackend::kSymbolic);
    }
    EXPECT_EQ(alphabet_backend(), AlphabetBackend::kExplicit);
  }
  EXPECT_EQ(alphabet_backend(), before);
}

}  // namespace
}  // namespace slat::words
