// Differential test of the antichain inclusion engine against the
// complement-based oracle: identical verdicts and witness existence on ≥150
// random NBA pairs and on every ordered pair of Rem p0–p6 tableau automata,
// at 1 and 4 threads, plus exact hit/miss accounting of the
// "buchi.inclusion" memo cache. TSan builds run this file unchanged.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "buchi/inclusion.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "core/thread_pool.hpp"
#include "ltl/rem.hpp"
#include "ltl/translate.hpp"
#include "qc/gtest_seed.hpp"

namespace slat {
namespace {

using buchi::InclusionBackend;
using buchi::InclusionBackendScope;
using buchi::InclusionResult;
using buchi::Nba;
using words::UpWord;

InclusionResult on_backend(InclusionBackend backend, const Nba& lhs, const Nba& rhs) {
  InclusionBackendScope scope(backend);
  return buchi::check_inclusion(lhs, rhs);
}

// The differential contract: same verdict, same witness existence, and any
// witness (either backend's) actually separates the languages.
void expect_backends_agree(const Nba& lhs, const Nba& rhs, const std::string& tag) {
  const InclusionResult antichain = on_backend(InclusionBackend::kAntichain, lhs, rhs);
  const InclusionResult oracle = on_backend(InclusionBackend::kComplement, lhs, rhs);
  EXPECT_EQ(antichain.included, oracle.included) << tag;
  EXPECT_EQ(antichain.counterexample.has_value(), oracle.counterexample.has_value())
      << tag;
  EXPECT_NE(antichain.included, antichain.counterexample.has_value()) << tag;
  for (const auto& witness : {antichain.counterexample, oracle.counterexample}) {
    if (witness.has_value()) {
      EXPECT_TRUE(lhs.accepts(*witness)) << tag;
      EXPECT_FALSE(rhs.accepts(*witness)) << tag;
    }
  }
}

class InclusionEquivalence : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    core::set_num_threads(GetParam());
    core::clear_all_caches();
    core::metrics().reset_all();
  }
  void TearDown() override { core::set_num_threads(1); }
};

TEST_P(InclusionEquivalence, RandomPairsAgreeWithComplementOracle) {
  std::mt19937 rng = qc::make_rng("inclusion_equivalence.random_pairs");
  buchi::RandomNbaConfig config;
  config.alphabet_size = 2;
  for (int i = 0; i < 160; ++i) {
    // rhs stays ≤ 4 states: the oracle complements it rank-based, and the
    // rank construction's heavy tail starts around 5 states (same envelope
    // as cache_equivalence_test). The antichain side takes larger lhs in
    // stride — witness_validity_test covers it without the oracle.
    config.num_states = 2 + i % 3;
    config.transition_density = 0.7 + 0.15 * (i % 4);
    config.accepting_probability = 0.25 + 0.15 * (i % 3);
    const Nba rhs = buchi::random_nba(config, rng);
    config.num_states = 2 + (i / 2) % 5;
    const Nba lhs = buchi::random_nba(config, rng);
    expect_backends_agree(lhs, rhs, "random pair " + std::to_string(i));
  }
}

TEST_P(InclusionEquivalence, RemTableauxAgreeWithComplementOracle) {
  ltl::LtlArena arena(words::Alphabet::binary());
  std::vector<Nba> automata;
  std::vector<std::string> names;
  for (const auto& example : ltl::rem_examples()) {
    const auto f = arena.parse(example.formula);
    ASSERT_TRUE(f.has_value()) << example.formula;
    automata.push_back(ltl::to_nba(arena, *f));
    names.push_back(example.name);
  }
  for (std::size_t i = 0; i < automata.size(); ++i) {
    for (std::size_t j = 0; j < automata.size(); ++j) {
      expect_backends_agree(automata[i], automata[j], names[i] + " vs " + names[j]);
    }
  }
}

TEST_P(InclusionEquivalence, InclusionCacheAccountingIsExact) {
  InclusionBackendScope antichain(InclusionBackend::kAntichain);
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  core::metrics().reset_all();

  std::mt19937 rng = qc::make_rng("inclusion_equivalence.cache_accounting");
  buchi::RandomNbaConfig config;
  config.num_states = 4;
  const Nba lhs = buchi::random_nba(config, rng);
  const Nba rhs = buchi::random_nba(config, rng);

  core::Counter& hits = core::metrics().counter("cache.buchi.inclusion.hits");
  core::Counter& misses = core::metrics().counter("cache.buchi.inclusion.misses");

  const InclusionResult first = buchi::check_inclusion(lhs, rhs);
  EXPECT_EQ(misses.value(), 1u);
  EXPECT_EQ(hits.value(), 0u);

  const InclusionResult replay = buchi::check_inclusion(lhs, rhs);
  EXPECT_EQ(misses.value(), 1u);
  EXPECT_EQ(hits.value(), 1u);
  EXPECT_EQ(first.included, replay.included);
  EXPECT_EQ(first.counterexample, replay.counterexample);

  // find_separating_word is the same query: pure hit, no recompute.
  const std::optional<UpWord> w = buchi::find_separating_word(lhs, rhs);
  EXPECT_EQ(misses.value(), 1u);
  EXPECT_EQ(hits.value(), 2u);
  EXPECT_EQ(w, first.counterexample);

  // The reverse direction is a distinct key.
  const InclusionResult reverse = buchi::check_inclusion(rhs, lhs);
  EXPECT_EQ(misses.value(), 2u);
  EXPECT_EQ(hits.value(), 2u);

  // is_equivalent = two directional checks, both now cached; the backward
  // one only runs when the forward one succeeded (short-circuit).
  (void)buchi::is_equivalent(lhs, rhs);
  EXPECT_EQ(misses.value(), 2u);
  EXPECT_EQ(hits.value(), first.included ? 4u : 3u);
  (void)reverse;

  // With caching disabled the query recomputes and touches no counters.
  {
    core::CacheEnabledScope disabled(false);
    const InclusionResult uncached = buchi::check_inclusion(lhs, rhs);
    EXPECT_EQ(uncached.included, first.included);
    EXPECT_EQ(uncached.counterexample, first.counterexample);
  }
  EXPECT_EQ(misses.value(), 2u);
  EXPECT_EQ(hits.value(), first.included ? 4u : 3u);
}

TEST_P(InclusionEquivalence, CachedWitnessesReplayBitIdentically) {
  InclusionBackendScope antichain(InclusionBackend::kAntichain);
  std::mt19937 rng = qc::make_rng("inclusion_equivalence.witness_replay");
  buchi::RandomNbaConfig config;
  config.alphabet_size = 2;
  std::vector<Nba> corpus;
  for (int i = 0; i < 20; ++i) {
    config.num_states = 2 + i % 5;
    corpus.push_back(buchi::random_nba(config, rng));
  }
  std::vector<InclusionResult> reference;
  {
    core::CacheEnabledScope disabled(false);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      reference.push_back(
          buchi::check_inclusion(corpus[i], corpus[(i + 3) % corpus.size()]));
    }
  }
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const InclusionResult r =
          buchi::check_inclusion(corpus[i], corpus[(i + 3) % corpus.size()]);
      EXPECT_EQ(r.included, reference[i].included) << "round " << round << " i " << i;
      EXPECT_EQ(r.counterexample, reference[i].counterexample)
          << "round " << round << " i " << i;
    }
  }
  EXPECT_GT(core::metrics().counter("cache.buchi.inclusion.hits").value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Threads, InclusionEquivalence, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace slat
