// Degenerate inputs across modules: one-element lattices, one-letter
// alphabets, trivial automata, singleton trees — the places where an
// off-by-one traditionally hides.
#include <gtest/gtest.h>

#include "buchi/safety.hpp"
#include "lattice/constructions.hpp"
#include "lattice/enumerate.hpp"
#include "lattice/decomposition.hpp"
#include "ltl/translate.hpp"
#include "monitor/monitor.hpp"
#include "rabin/examples.hpp"
#include "rabin/from_ctl.hpp"
#include "trees/closures.hpp"

namespace slat {
namespace {

TEST(EdgeCases, OneElementLattice) {
  // chain(1): bottom = top; the unique element is its own complement, and
  // every theorem holds vacuously.
  const lattice::FiniteLattice lattice = lattice::chain(1);
  EXPECT_EQ(lattice.size(), 1);
  EXPECT_EQ(lattice.bottom(), lattice.top());
  EXPECT_TRUE(lattice.is_boolean());
  EXPECT_TRUE(lattice.is_paper_setting());
  const lattice::LatticeClosure cl = lattice::LatticeClosure::identity(lattice);
  EXPECT_EQ(lattice::verify_theorem3(lattice, cl, cl), std::nullopt);
  // The unique element is simultaneously a safety and a liveness element.
  EXPECT_TRUE(cl.is_safety_element(0));
  EXPECT_TRUE(cl.is_liveness_element(0));
}

TEST(EdgeCases, BooleanLatticeOfDimensionZero) {
  const lattice::FiniteLattice lattice = lattice::boolean_lattice(0);
  EXPECT_EQ(lattice.size(), 1);
  EXPECT_TRUE(lattice.satisfies_lattice_axioms());
}

TEST(EdgeCases, SingleLetterAlphabet) {
  // Σ = {s0}: the only ω-word is s0^ω; every property is Σ^ω or ∅.
  const words::Alphabet unary = words::Alphabet::of_size(1);
  const auto corpus = words::enumerate_up_words(1, 3, 3);
  ASSERT_EQ(corpus.size(), 1u);
  const buchi::Nba universal = buchi::Nba::universal(unary);
  const buchi::Nba empty = buchi::Nba::empty_language(unary);
  EXPECT_EQ(buchi::classify(universal), buchi::SafetyClass::kSafetyAndLiveness);
  EXPECT_EQ(buchi::classify(empty), buchi::SafetyClass::kSafety);
  const buchi::BuchiDecomposition d = buchi::decompose(universal);
  EXPECT_TRUE(buchi::intersect(d.safety, d.liveness).accepts(corpus[0]));
}

TEST(EdgeCases, LtlOverSingleLetterAlphabet) {
  ltl::LtlArena arena(words::Alphabet::of_size(1));
  const auto f = arena.parse("G s0");
  ASSERT_TRUE(f.has_value());
  const buchi::Nba nba = ltl::to_nba(arena, *f);
  EXPECT_TRUE(nba.accepts(words::UpWord::constant(0)));
  const auto g = arena.parse("F !s0");
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(ltl::to_nba(arena, *g).is_empty());
}

TEST(EdgeCases, SelfLoopOnlyTreeAndUnaryBranching) {
  // k = 1 Rabin automata act on sequences; the single unary constant tree.
  trees::CtlArena arena(words::Alphabet::binary());
  const rabin::RabinTreeAutomaton af_b = rabin::from_ctl(arena, *arena.parse("AF b"), 1);
  const trees::KTree a_seq = trees::KTree::constant(words::Alphabet::binary(), 0, 1);
  const trees::KTree b_seq = trees::KTree::constant(words::Alphabet::binary(), 1, 1);
  EXPECT_FALSE(af_b.accepts(a_seq));
  EXPECT_TRUE(af_b.accepts(b_seq));
}

TEST(EdgeCases, EmptyWordPrefixAndZeroTruncation) {
  // truncate(0) is the bare root; every property with a satisfiable
  // extension from a bare root keeps it extendable.
  const trees::KTree tree = trees::KTree::constant(words::Alphabet::binary(), 0, 2);
  const trees::KTree root_only = tree.truncate(0);
  EXPECT_EQ(root_only.num_nodes(), 1);
  const rabin::RabinTreeAutomaton all = rabin::aut_all_trees();
  EXPECT_TRUE(all.accepts_some_extension(root_only));
}

TEST(EdgeCases, MonitorOnEmptyTrace) {
  ltl::LtlArena arena(words::Alphabet::binary());
  monitor::SafetyMonitor monitor =
      monitor::SafetyMonitor::from_ltl(arena, *arena.parse("G a"));
  EXPECT_EQ(monitor.run({}), std::nullopt);  // nothing violated yet
  monitor::SafetyMonitor impossible =
      monitor::SafetyMonitor::from_ltl(arena, *arena.parse("false"));
  EXPECT_TRUE(impossible.violated());  // even the empty trace is doomed
}

TEST(EdgeCases, UpWordSuffixBeyondPrefix) {
  const words::UpWord w({0, 1}, {1, 0});
  const words::UpWord far = w.suffix(100);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(far.at(i), w.at(i + 100));
  }
}

TEST(EdgeCases, DecomposeBottomAndTop) {
  const lattice::FiniteLattice lattice = lattice::m3();
  lattice::for_each_closure(lattice, [&](const lattice::LatticeClosure& cl) {
    for (lattice::Elem a : {lattice.bottom(), lattice.top()}) {
      const auto d = lattice::decompose(lattice, cl, a);
      ASSERT_TRUE(d.has_value());
      EXPECT_TRUE(lattice::is_valid_decomposition(lattice, cl, cl, a, *d));
    }
  });
}

}  // namespace
}  // namespace slat
