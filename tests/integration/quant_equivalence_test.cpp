// The boolean-embedding differential: on 100+ random NBAs, the {0,1}
// quantitative readings must reproduce the qualitative pipeline with exact
// 0.0/1.0 doubles — acceptance through embed_buchi/LimSup, the lcl verdict
// through both closure_value and embed_safety/Sup, and Theorem 10's live
// part flagging ⊤ exactly on L(B) ∪ ¬lcl(L(B)) — identically at 1 and 4
// worker threads with caches disabled (so both thread counts do real work).
//
// This is the ISSUE's end-to-end oracle: every quantitative ingredient
// (product evaluation, config-automaton closure, decomposition) runs
// against an independent implementation that nine prior PRs already vetted.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "core/memo_cache.hpp"
#include "core/thread_pool.hpp"
#include "qc/gen.hpp"
#include "qc/gtest_seed.hpp"
#include "qc/seed.hpp"
#include "quant/closure.hpp"
#include "quant/decomposition.hpp"
#include "quant/embed.hpp"
#include "quant/eval.hpp"
#include "words/up_word.hpp"

namespace slat {
namespace {

using buchi::Nba;
using words::UpWord;

class QuantEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    threads_before_ = core::ThreadPool::global().num_threads();
    cache_was_enabled_ = core::cache_enabled();
    core::set_cache_enabled(false);
  }
  void TearDown() override {
    core::set_num_threads(threads_before_);
    core::set_cache_enabled(cache_was_enabled_);
  }

 private:
  int threads_before_ = 0;
  bool cache_was_enabled_ = true;
};

TEST_F(QuantEquivalenceTest, BooleanEmbeddingMatchesQualitativePipeline) {
  const qc::NbaDomain domain{2, 5, 2, 2, 0.6, 1.5, 0.2, 0.6};
  const qc::Gen<Nba> gen = qc::arbitrary_nba(domain);
  std::mt19937 rng = qc::make_rng("quant_equivalence.embedding");
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  constexpr int kInstances = 100;
  for (int i = 0; i < kInstances; ++i) {
    const Nba nba = gen(rng);
    // Qualitative oracles, computed once per instance.
    const Nba lcl = buchi::safety_closure(nba);
    const buchi::DetSafety det = buchi::DetSafety::determinize(lcl);
    const buchi::BuchiDecomposition parts = buchi::decompose(nba);
    const quant::WeightedNba eb = quant::embed_buchi(nba);
    const quant::WeightedNba es = quant::embed_safety(nba);
    for (const int threads : {1, 4}) {
      core::set_num_threads(threads);
      for (const UpWord& w : corpus) {
        const double in_l = nba.accepts(w) ? 1.0 : 0.0;
        const double in_lcl = det.accepts(w) ? 1.0 : 0.0;
        ASSERT_EQ(quant::value(eb, w), in_l)
            << "instance " << i << ", " << threads << " threads, value at "
            << w.to_string(nba.alphabet());
        ASSERT_EQ(quant::closure_value(eb, w), in_lcl)
            << "instance " << i << ", " << threads << " threads, closure at "
            << w.to_string(nba.alphabet());
        ASSERT_EQ(quant::value(es, w), in_lcl)
            << "instance " << i << ", " << threads
            << " threads, Sup embedding at " << w.to_string(nba.alphabet());
        const quant::QuantDecomposition d = quant::decompose_at(eb, w);
        ASSERT_EQ(std::min(d.safety, d.live), d.property)
            << "instance " << i << ", " << threads << " threads, min identity at "
            << w.to_string(nba.alphabet());
        ASSERT_EQ(d.live == eb.top_value(), parts.liveness.accepts(w))
            << "instance " << i << ", " << threads << " threads, live part at "
            << w.to_string(nba.alphabet());
      }
    }
  }
}

TEST_F(QuantEquivalenceTest, BatchValuesIsThreadInvariant) {
  // batch_values runs the per-word evaluations through parallel_map; the
  // results must be bit-identical to the scalar loop at every width.
  const qc::WeightedNbaDomain domain{{2, 6, 2, 2, 0.6, 1.5, 0.2, 0.6}};
  const qc::Gen<quant::WeightedNba> gen = qc::arbitrary_weighted_nba(domain);
  std::mt19937 rng = qc::make_rng("quant_equivalence.batch");
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  for (int i = 0; i < 30; ++i) {
    const quant::WeightedNba aut = gen(rng);
    core::set_num_threads(1);
    std::vector<double> scalar;
    scalar.reserve(corpus.size());
    for (const UpWord& w : corpus) scalar.push_back(quant::value(aut, w));
    for (const int threads : {1, 4}) {
      core::set_num_threads(threads);
      const std::vector<double> batched = quant::batch_values(aut, corpus);
      ASSERT_EQ(batched.size(), scalar.size());
      for (std::size_t k = 0; k < scalar.size(); ++k) {
        ASSERT_EQ(batched[k], scalar[k])
            << "instance " << i << ", word " << k << ", " << threads
            << " threads (" << quant::to_string(aut.value_fn()) << ")";
      }
    }
  }
}

}  // namespace
}  // namespace slat
