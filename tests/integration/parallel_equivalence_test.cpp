// The determinism contract of the parallel execution layer: every
// parallelized construction — subset construction, rank-based
// complementation, attractor-based game solving, IAR expansion — must
// produce BIT-IDENTICAL output at 1, 2, 4, and 8 threads. The 1-thread run
// executes the same code path with inline loops, and is itself pinned to the
// seed algorithms by kernel_equivalence_test, so agreement across thread
// counts extends the seed guarantee to the whole sweep.
//
// 140+ random instances across the four pipelines.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "buchi/complement.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "core/thread_pool.hpp"
#include "games/buchi_game.hpp"
#include "games/parity.hpp"
#include "games/rabin_game.hpp"
#include "qc/gtest_seed.hpp"

namespace slat {
namespace {

using buchi::DetSafety;
using buchi::Nba;
using games::BuchiGame;
using games::ParityGame;
using games::ParitySolution;
using games::RabinGame;
using games::RabinMarks;

constexpr int kThreadSweep[] = {2, 4, 8};  // compared against the 1-thread run

class ThreadGuard {
 public:
  ~ThreadGuard() { core::set_num_threads(0); }
};

// --- structural equality helpers -------------------------------------------

void expect_same_det_safety(const DetSafety& a, const DetSafety& b, int threads) {
  ASSERT_EQ(a.num_states(), b.num_states()) << threads << " threads";
  ASSERT_EQ(a.initial(), b.initial()) << threads << " threads";
  ASSERT_EQ(a.sink(), b.sink()) << threads << " threads";
  for (buchi::State q = 0; q < a.num_states(); ++q) {
    for (words::Sym s = 0; s < a.alphabet().size(); ++s) {
      ASSERT_EQ(a.step(q, s), b.step(q, s))
          << "delta(" << q << ", " << s << ") at " << threads << " threads";
    }
  }
}

void expect_same_nba(const Nba& a, const Nba& b, int threads) {
  // to_string lists state count, initial, accepting set, and every
  // transition in insertion order — exactly the bit-identity we promise.
  ASSERT_EQ(a.to_string(), b.to_string()) << threads << " threads";
}

// --- random instance generators (fixed seeds; identical across runs) --------

ParityGame random_parity_game(int n, int max_priority, std::mt19937& rng) {
  std::uniform_int_distribution<int> owner_dist(0, 1), priority_dist(0, max_priority),
      node_dist(0, n - 1), extra_dist(0, 2);
  ParityGame game;
  for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), priority_dist(rng));
  for (int v = 0; v < n; ++v) {
    const int edges = 1 + extra_dist(rng);
    for (int e = 0; e < edges; ++e) game.add_edge(v, node_dist(rng));
  }
  return game;
}

RabinGame random_rabin_game(int n, int pairs, std::mt19937& rng) {
  std::uniform_int_distribution<int> owner_dist(0, 1), node_dist(0, n - 1);
  std::uniform_int_distribution<std::uint32_t> mask_dist(0, (1u << pairs) - 1);
  RabinGame game;
  game.num_pairs = pairs;
  for (int v = 0; v < n; ++v)
    game.add_node(owner_dist(rng), RabinMarks{mask_dist(rng), mask_dist(rng)});
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  return game;
}

BuchiGame random_buchi_game(int n, std::mt19937& rng) {
  std::uniform_int_distribution<int> owner_dist(0, 1), target_dist(0, 3),
      node_dist(0, n - 1);
  BuchiGame game;
  for (int v = 0; v < n; ++v) game.add_node(owner_dist(rng), target_dist(rng) == 0);
  for (int v = 0; v < n; ++v) {
    game.add_edge(v, node_dist(rng));
    game.add_edge(v, node_dist(rng));
  }
  return game;
}

// --- the sweeps -------------------------------------------------------------

TEST(ParallelEquivalence, SubsetConstructionBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.subset");
  buchi::RandomNbaConfig config;
  config.alphabet_size = 3;
  config.transition_density = 0.9;
  for (int i = 0; i < 40; ++i) {
    config.num_states = 2 + i % 20;
    const Nba closure = buchi::safety_closure(buchi::random_nba(config, rng));
    core::set_num_threads(1);
    const DetSafety baseline = DetSafety::determinize(closure);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      expect_same_det_safety(baseline, DetSafety::determinize(closure), threads);
    }
  }
}

TEST(ParallelEquivalence, ComplementationBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.complement");
  buchi::RandomNbaConfig config;
  for (int i = 0; i < 30; ++i) {
    config.num_states = 1 + i % 4;
    const Nba nba = buchi::random_nba(config, rng);
    core::set_num_threads(1);
    const Nba baseline = buchi::complement(nba);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      expect_same_nba(baseline, buchi::complement(nba), threads);
    }
  }
}

TEST(ParallelEquivalence, ParityWinnersAndStrategiesBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.parity");
  for (int i = 0; i < 40; ++i) {
    const int n = 2 + i % 30;
    const ParityGame game = random_parity_game(n, 5, rng);
    core::set_num_threads(1);
    const ParitySolution baseline = games::solve(game);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      const ParitySolution solution = games::solve(game);
      ASSERT_EQ(baseline.winner, solution.winner) << threads << " threads";
      ASSERT_EQ(baseline.strategy, solution.strategy) << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, BuchiGameWinnersBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.buchi_game");
  for (int i = 0; i < 20; ++i) {
    const BuchiGame game = random_buchi_game(3 + i % 40, rng);
    core::set_num_threads(1);
    const auto baseline = games::solve_buchi(game);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      ASSERT_EQ(baseline, games::solve_buchi(game)) << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, RabinSolveBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.rabin");
  for (int i = 0; i < 10; ++i) {
    const RabinGame game = random_rabin_game(4 + i * 2, 1 + i % 3, rng);
    core::set_num_threads(1);
    const games::RabinSolution baseline = games::solve_rabin(game);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      const games::RabinSolution solution = games::solve_rabin(game);
      ASSERT_EQ(baseline.winner, solution.winner) << threads << " threads";
      // The IAR expansion itself must also be reproduced node-for-node.
      ASSERT_EQ(baseline.expansion.rabin_node, solution.expansion.rabin_node)
          << threads << " threads";
      ASSERT_EQ(baseline.expansion.record, solution.expansion.record)
          << threads << " threads";
      ASSERT_EQ(baseline.expansion.parity.successors, solution.expansion.parity.successors)
          << threads << " threads";
      ASSERT_EQ(baseline.parity_solution.winner, solution.parity_solution.winner)
          << threads << " threads";
    }
  }
}

TEST(ParallelEquivalence, FullSafetyDecompositionBitIdenticalAcrossThreadCounts) {
  ThreadGuard guard;
  std::mt19937 rng = qc::make_rng("parallel_equivalence.decomposition");
  buchi::RandomNbaConfig config;
  config.num_states = 4;
  for (int i = 0; i < 10; ++i) {
    const Nba nba = buchi::random_nba(config, rng);
    core::set_num_threads(1);
    const buchi::BuchiDecomposition baseline = buchi::decompose(nba);
    for (int threads : kThreadSweep) {
      core::set_num_threads(threads);
      const buchi::BuchiDecomposition decomposition = buchi::decompose(nba);
      expect_same_nba(baseline.safety, decomposition.safety, threads);
      expect_same_nba(baseline.liveness, decomposition.liveness, threads);
    }
  }
}

}  // namespace
}  // namespace slat
