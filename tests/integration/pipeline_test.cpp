// Cross-module integration: LTL → Büchi → decomposition → monitor, and the
// linear-time/branching-time bridge (a sequence is a unary tree, so LTL on
// UP-words must agree with branching-time oracles on the matching trees).
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "ltl/eval.hpp"
#include "ltl/translate.hpp"
#include "monitor/monitor.hpp"
#include "trees/closures.hpp"
#include "trees/ctl.hpp"
#include "trees/rem_branching.hpp"

namespace slat {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

// The unary regular tree of an ultimately periodic word.
trees::KTree tree_of_word(const words::UpWord& w) {
  const int p = static_cast<int>(w.prefix_size());
  const int k = static_cast<int>(w.period_size());
  trees::KTree tree(words::Alphabet::binary(), p + k, 0);
  for (int i = 0; i < p + k; ++i) {
    tree.set_label(i, w.at(i));
    tree.add_child(i, i + 1 < p + k ? i + 1 : p);
  }
  return tree;
}

TEST(Bridge, SequencesLinkLinearAndBranchingTime) {
  // On sequences: F b ⟺ AF b ⟺ EF b; G a ⟺ AG a; GF a ⟺ "a-cycle
  // reachable"; FG b ⟺ "all-b tail".
  ltl::LtlArena larena(words::Alphabet::binary());
  trees::CtlArena carena(words::Alphabet::binary());
  const auto fb = *larena.parse("F b");
  const auto afb = *carena.parse("AF b");
  const auto efb = *carena.parse("EF b");
  const auto ga = *larena.parse("G a");
  const auto aga = *carena.parse("AG a");
  for (const auto& w : words::enumerate_up_words(2, 3, 3)) {
    const trees::KTree tree = tree_of_word(w);
    ASSERT_TRUE(tree.is_total());
    EXPECT_EQ(ltl::holds(larena, fb, w), trees::holds(carena, afb, tree));
    EXPECT_EQ(ltl::holds(larena, fb, w), trees::holds(carena, efb, tree));
    EXPECT_EQ(ltl::holds(larena, ga, w), trees::holds(carena, aga, tree));
  }
}

TEST(Bridge, LinearRemAndBranchingRemAgreeOnSequences) {
  // q3a/q3b collapse to p3 on sequences; q4a/q4b to p4; q5a/q5b to p5.
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto p3 = *arena.parse("a & F !a");
  const auto p4 = *arena.parse("F G !a");
  const auto p5 = *arena.parse("G F a");
  const auto& examples = trees::rem_branching_examples();
  const auto property = [&](const char* name) {
    return std::find_if(examples.begin(), examples.end(),
                        [&](const auto& e) { return e.name == name; })
        ->property;
  };
  for (const auto& w : words::enumerate_up_words(2, 3, 3)) {
    const trees::KTree tree = tree_of_word(w);
    EXPECT_EQ(ltl::holds(arena, p3, w), property("q3a").contains(tree));
    EXPECT_EQ(ltl::holds(arena, p3, w), property("q3b").contains(tree));
    EXPECT_EQ(ltl::holds(arena, p4, w), property("q4a").contains(tree));
    EXPECT_EQ(ltl::holds(arena, p4, w), property("q4b").contains(tree));
    EXPECT_EQ(ltl::holds(arena, p5, w), property("q5a").contains(tree));
    EXPECT_EQ(ltl::holds(arena, p5, w), property("q5b").contains(tree));
  }
}

TEST(Pipeline, SpecificationToMonitor) {
  // The full applied pipeline: parse a spec, decompose, monitor the safety
  // part, and confirm the liveness part is monitor-invisible.
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto spec = *arena.parse("a & G (a -> X !a) & G F a");
  const buchi::Nba nba = ltl::to_nba(arena, spec);
  const buchi::BuchiDecomposition d = buchi::decompose(nba);

  // The liveness part is vacuous for monitoring...
  EXPECT_TRUE(monitor::SafetyMonitor::from_nba(d.liveness).is_vacuous());
  // ...and monitoring the spec equals monitoring its safety part.
  monitor::SafetyMonitor from_spec = monitor::SafetyMonitor::from_nba(nba);
  monitor::SafetyMonitor from_safety = monitor::SafetyMonitor::from_nba(d.safety);
  const std::vector<words::Word> traces = {
      {kA, kB, kA, kB}, {kA, kA}, {kB}, {kA, kB, kB, kB, kA}, {}, {kA, kB, kA, kA}};
  for (const auto& trace : traces) {
    EXPECT_EQ(from_spec.run(trace), from_safety.run(trace));
  }
  EXPECT_EQ(from_spec.run({kA, kA}), std::optional<std::size_t>(1));
  EXPECT_EQ(from_spec.run({kB}), std::optional<std::size_t>(0));
  EXPECT_EQ(from_spec.run({kA, kB, kA, kB}), std::nullopt);
}

TEST(Pipeline, DecompositionIsMachineClosed) {
  // Theorem 6 consequence: the safety part of the decomposition equals the
  // closure of the specification — the strongest monitorable approximation.
  ltl::LtlArena arena(words::Alphabet::binary());
  for (const char* text : {"a & F !a", "G (a -> F b)", "a U b"}) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const buchi::BuchiDecomposition d = buchi::decompose(nba);
    EXPECT_TRUE(buchi::is_equivalent(d.safety, buchi::safety_closure(nba))) << text;
  }
}

TEST(Pipeline, LtlSafetyClassificationFeedsMonitorability) {
  ltl::LtlArena arena(words::Alphabet::binary());
  const struct {
    const char* text;
    bool vacuous_monitor;
  } cases[] = {
      // lcl(a U b) = Σ^ω: the only words outside a U b are a^ω-shaped, and
      // every finite prefix of those still extends into the property.
      {"G a", false},  {"G F a", true},    {"F b", true},
      {"a U b", true}, {"a & F !a", false}, {"true", true},
  };
  for (const auto& c : cases) {
    const buchi::Nba nba = ltl::to_nba(arena, *arena.parse(c.text));
    EXPECT_EQ(monitor::SafetyMonitor::from_nba(nba).is_vacuous(), c.vacuous_monitor)
        << c.text;
  }
}

}  // namespace
}  // namespace slat
