// Parameterized cross-module property sweeps: every specification in the
// sweep must satisfy the full bundle of paper-derived invariants at once.
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "ltl/eval.hpp"
#include "ltl/syntactic.hpp"
#include "ltl/translate.hpp"
#include "monitor/dfa_monitor.hpp"
#include "monitor/monitor.hpp"

namespace slat {
namespace {

class SpecificationSweep : public ::testing::TestWithParam<const char*> {
 protected:
  ltl::LtlArena arena{words::Alphabet::binary()};
  std::vector<words::UpWord> corpus = words::enumerate_up_words(2, 3, 3);

  ltl::FormulaId formula() {
    const auto f = arena.parse(GetParam());
    EXPECT_TRUE(f.has_value()) << GetParam();
    return *f;
  }
};

TEST_P(SpecificationSweep, TranslationAgreesWithEvaluator) {
  const ltl::FormulaId f = formula();
  const buchi::Nba nba = ltl::to_nba(arena, f);
  for (const auto& w : corpus) {
    ASSERT_EQ(nba.accepts(w), ltl::holds(arena, f, w)) << w.to_string(arena.alphabet());
  }
}

TEST_P(SpecificationSweep, DecompositionIdentityOnCorpus) {
  const buchi::Nba nba = ltl::to_nba(arena, formula());
  const buchi::BuchiDecomposition d = buchi::decompose(nba);
  const buchi::Nba meet = buchi::intersect(d.safety, d.liveness);
  for (const auto& w : corpus) {
    ASSERT_EQ(meet.accepts(w), nba.accepts(w)) << w.to_string(arena.alphabet());
  }
}

TEST_P(SpecificationSweep, LivenessPartIsLiveAndPairIsMachineClosed) {
  const buchi::Nba nba = ltl::to_nba(arena, formula());
  const buchi::BuchiDecomposition d = buchi::decompose(nba);
  EXPECT_TRUE(buchi::is_liveness(d.liveness));
  EXPECT_TRUE(buchi::is_machine_closed(d.safety, d.liveness));
}

TEST_P(SpecificationSweep, MonitorsAgreeAndMatchTheClosure) {
  const ltl::FormulaId f = formula();
  const buchi::Nba nba = ltl::to_nba(arena, f);
  monitor::SafetyMonitor subset = monitor::SafetyMonitor::from_nba(nba);
  monitor::DfaMonitor minimal = monitor::DfaMonitor::from_nba(nba);
  // Exhaustive traces up to length 5.
  std::vector<words::Word> traces{{}};
  for (int len = 0; len < 5; ++len) {
    const std::size_t before = traces.size();
    for (std::size_t i = 0; i < before; ++i) {
      if (traces[i].size() != static_cast<std::size_t>(len)) continue;
      for (words::Sym s = 0; s < 2; ++s) {
        words::Word next = traces[i];
        next.push_back(s);
        traces.push_back(std::move(next));
      }
    }
  }
  for (const auto& trace : traces) {
    ASSERT_EQ(subset.run(trace), minimal.run(trace));
  }
}

TEST_P(SpecificationSweep, SyntacticFragmentIsConsistentWithSemantics) {
  const ltl::FormulaId f = formula();
  const buchi::Nba nba = ltl::to_nba(arena, f);
  const buchi::SafetyClass semantic = buchi::classify_sampled(nba, corpus);
  switch (ltl::classify_syntactic(arena, f)) {
    case ltl::SyntacticClass::kSafety:
    case ltl::SyntacticClass::kBoth:
      EXPECT_TRUE(semantic == buchi::SafetyClass::kSafety ||
                  semantic == buchi::SafetyClass::kSafetyAndLiveness)
          << GetParam();
      break;
    default:
      break;  // the fragments are sound, not complete: no converse claim
  }
}

TEST_P(SpecificationSweep, NegationSwapsAcceptanceOnCorpus) {
  const ltl::FormulaId f = formula();
  const buchi::Nba pos = ltl::to_nba(arena, f);
  const buchi::Nba neg = ltl::to_nba(arena, arena.negation(f));
  for (const auto& w : corpus) {
    ASSERT_NE(pos.accepts(w), neg.accepts(w)) << w.to_string(arena.alphabet());
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperAndPatternSpecs, SpecificationSweep,
    ::testing::Values(
        // The Rem examples.
        "false", "a", "!a", "a & F !a", "F G !a", "G F a", "true",
        // Safety patterns.
        "G a", "G (a -> X !a)", "a W b", "b R a", "G (a | X a)",
        // Co-safety / reachability patterns.
        "F b", "a U b", "X X b", "F (a & X b)",
        // Mixed / response patterns.
        "G (a -> F b)", "(a U b) | G a", "F a -> F b", "a & G F b",
        "(G F a) -> (G F b)"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

}  // namespace
}  // namespace slat
