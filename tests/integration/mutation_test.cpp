// Failure injection: the differential oracles and law checkers must CATCH
// deliberately broken artifacts. A verifier that never fires is no
// verifier; these tests tamper with correct constructions and assert the
// checks notice.
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "core/concepts.hpp"
#include "core/instances.hpp"
#include "lattice/constructions.hpp"
#include "lattice/decomposition.hpp"
#include "ltl/eval.hpp"
#include "ltl/translate.hpp"

namespace slat {
namespace {

using buchi::Nba;

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

TEST(Mutation, DroppedTransitionIsCaughtByTheWordCorpus) {
  // Remove a transition from the p3 automaton: the corpus notices.
  ltl::LtlArena arena(words::Alphabet::binary());
  const Nba good = ltl::to_nba(arena, *arena.parse("a & F !a"));
  // Rebuild without one transition.
  Nba bad(good.alphabet(), good.num_states(), good.initial());
  bool dropped = false;
  for (buchi::State q = 0; q < good.num_states(); ++q) {
    bad.set_accepting(q, good.is_accepting(q));
    for (words::Sym s = 0; s < 2; ++s) {
      for (buchi::State to : good.successors(q, s)) {
        if (!dropped && good.is_accepting(to)) {
          dropped = true;  // skip the first transition into an accepting state
          continue;
        }
        bad.add_transition(q, s, to);
      }
    }
  }
  ASSERT_TRUE(dropped);
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  EXPECT_NE(buchi::find_disagreement(good, bad, corpus), std::nullopt);
}

TEST(Mutation, FlippedAcceptanceIsCaughtByClassification) {
  // Make every state of the GFa automaton accepting: it degenerates to a
  // safety-shaped language and the classifier must stop saying "liveness".
  Nba gfa(words::Alphabet::binary(), 2, 0);
  gfa.add_transition(0, kA, 1);
  gfa.add_transition(0, kB, 0);
  gfa.add_transition(1, kA, 1);
  gfa.add_transition(1, kB, 0);
  gfa.set_accepting(1, true);
  ASSERT_EQ(buchi::classify(gfa), buchi::SafetyClass::kLiveness);
  Nba tampered = gfa;
  tampered.set_accepting(0, true);
  EXPECT_NE(buchi::classify(tampered), buchi::SafetyClass::kLiveness);
}

TEST(Mutation, WrongSafetyPartBreaksTheDecompositionIdentity) {
  // Swap the decomposition's safety part for a WEAKER safety property: the
  // meet no longer equals the specification on the corpus... unless the
  // liveness part compensates — which the canonical liveness part of a
  // DIFFERENT spec cannot. Cross the parts of two different specs.
  ltl::LtlArena arena(words::Alphabet::binary());
  const Nba spec_a = ltl::to_nba(arena, *arena.parse("a & F !a"));
  const Nba spec_b = ltl::to_nba(arena, *arena.parse("!a & F a"));
  const buchi::BuchiDecomposition da = buchi::decompose(spec_a);
  const buchi::BuchiDecomposition db = buchi::decompose(spec_b);
  const Nba crossed = buchi::intersect(db.safety, da.liveness);
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  EXPECT_NE(buchi::find_disagreement(crossed, spec_a, corpus), std::nullopt);
}

TEST(Mutation, NonClosureMapIsRejected) {
  // All three closure laws are individually enforced.
  const lattice::FiniteLattice lattice = lattice::boolean_lattice(2);
  // 0=∅,1={x},2={y},3={x,y}.
  EXPECT_TRUE(lattice::LatticeClosure::from_map(lattice, {0, 1, 2, 3}).has_value());
  // Break extensivity.
  EXPECT_FALSE(lattice::LatticeClosure::from_map(lattice, {0, 0, 2, 3}).has_value());
  // Break idempotence (1 -> 3 but 0 -> 1).
  EXPECT_FALSE(lattice::LatticeClosure::from_map(lattice, {1, 3, 2, 3}).has_value());
  // Break monotonicity (∅ -> {x,y} but {x} -> {x}).
  EXPECT_FALSE(lattice::LatticeClosure::from_map(lattice, {3, 1, 2, 3}).has_value());
}

TEST(Mutation, GenericLawCheckersFireOnBrokenOps) {
  // A "lattice" whose join is wrong fails the absorption law check.
  struct BrokenOps {
    using Element = std::uint32_t;
    Element meet(Element a, Element b) const { return a & b; }
    Element join(Element a, Element b) const { return a ^ b; }  // wrong!
    Element top() const { return 0b111; }
    Element bottom() const { return 0; }
    bool equal(Element a, Element b) const { return a == b; }
    bool leq(Element a, Element b) const { return (a & b) == a; }
    Element complement(Element a) const { return top() & ~a; }
  };
  static_assert(core::ComplementedLattice<BrokenOps>);
  std::vector<std::uint32_t> samples{0b000, 0b001, 0b011, 0b111};
  EXPECT_FALSE(core::lattice_laws_hold(BrokenOps{}, samples));
  EXPECT_TRUE(core::lattice_laws_hold(core::PowersetOps(3), samples));
}

TEST(Mutation, BrokenClosureFailsTheGenericLaws) {
  const core::PowersetOps ops(3);
  std::vector<std::uint32_t> samples;
  for (std::uint32_t m = 0; m <= ops.top(); ++m) samples.push_back(m);
  // Not idempotent: adds one missing bit per application.
  const auto creeping = [&](std::uint32_t a) {
    for (int bit = 0; bit < 3; ++bit) {
      if (!(a >> bit & 1u)) return a | (1u << bit);
    }
    return a;
  };
  EXPECT_FALSE(core::closure_laws_hold(ops, creeping, samples));
  // Not extensive: clears a bit.
  const auto shrinking = [&](std::uint32_t a) { return a & ~1u; };
  EXPECT_FALSE(core::closure_laws_hold(ops, shrinking, samples));
}

TEST(Mutation, InvalidDecompositionIsRejected) {
  const lattice::FiniteLattice lattice = lattice::boolean_lattice(3);
  const lattice::LatticeClosure cl =
      lattice::LatticeClosure::from_closed_set(lattice, {0b011});
  const lattice::Elem a = 0b001;
  auto d = lattice::decompose(lattice, cl, a);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(lattice::is_valid_decomposition(lattice, cl, cl, a, *d));
  // Tamper with each component in turn.
  auto wrong_safety = *d;
  wrong_safety.safety = a;  // a is not closed under cl
  EXPECT_FALSE(lattice::is_valid_decomposition(lattice, cl, cl, a, wrong_safety));
  auto wrong_liveness = *d;
  wrong_liveness.liveness = cl.apply(a);  // closed, but not live
  EXPECT_FALSE(lattice::is_valid_decomposition(lattice, cl, cl, a, wrong_liveness));
  auto wrong_meet = *d;
  wrong_meet.safety = lattice.top();
  wrong_meet.liveness = lattice.top();
  EXPECT_FALSE(lattice::is_valid_decomposition(lattice, cl, cl, a, wrong_meet));
}

TEST(Mutation, EvaluatorCatchesAWrongTableau) {
  // Simulate a buggy translation by translating the WRONG formula and
  // letting the differential harness spot it — the shape of every
  // translate-test failure this suite would produce.
  ltl::LtlArena arena(words::Alphabet::binary());
  const auto spec = *arena.parse("G (a -> F b)");
  const auto wrong = *arena.parse("G (a -> X b)");
  const Nba nba = ltl::to_nba(arena, wrong);
  bool caught = false;
  for (const auto& w : words::enumerate_up_words(2, 3, 3)) {
    if (nba.accepts(w) != ltl::holds(arena, spec, w)) {
      caught = true;
      break;
    }
  }
  EXPECT_TRUE(caught);
}

}  // namespace
}  // namespace slat
