// Differential test of the memo-cache layer's central contract: with caching
// on, every cached operation returns BIT-IDENTICAL results to an uncached
// run — over ≥100 random automata, at 1 and 4 threads, across the operations
// the caches retrofit (complement, safety closure, determinization,
// classification, language queries, LTL translation).
//
// Phase discipline: each phase clears all caches and resets metrics, so the
// phases are independent and the hit/miss assertions are exact.
#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "buchi/complement.hpp"
#include "buchi/inclusion.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "core/thread_pool.hpp"
#include "ltl/translate.hpp"
#include "qc/gtest_seed.hpp"

namespace slat {
namespace {

using buchi::DetSafety;
using buchi::Nba;

// Canonical string form of a DetSafety (it has no to_string of its own):
// initial, sink, and the full transition table.
std::string det_to_string(const DetSafety& det) {
  std::string out = "init=" + std::to_string(det.initial()) +
                    " sink=" + std::to_string(det.sink()) + "\n";
  for (int q = 0; q < det.num_states(); ++q) {
    out += std::to_string(q) + ":";
    for (words::Sym s = 0; s < det.alphabet().size(); ++s) {
      out += " " + std::to_string(det.step(q, s));
    }
    out += "\n";
  }
  return out;
}

std::vector<Nba> random_corpus(int count, std::string_view stream) {
  std::mt19937 rng = qc::make_rng(stream);
  buchi::RandomNbaConfig config;
  config.alphabet_size = 2;
  std::vector<Nba> corpus;
  corpus.reserve(count);
  for (int i = 0; i < count; ++i) {
    // Vary the shape a little so the corpus is not one distribution. Sizes
    // stay ≤ 4 states: the uncached reference pass recomputes every
    // complement from scratch, and rank-based complementation blows up fast
    // (the parallel_equivalence_test sweep uses the same envelope).
    config.num_states = 2 + i % 3;
    config.transition_density = 0.8 + 0.1 * (i % 3);
    corpus.push_back(buchi::random_nba(config, rng));
  }
  return corpus;
}

struct InstanceResult {
  std::string complement;
  std::string closure;
  std::string det;
  buchi::SafetyClass classification;
  std::optional<words::UpWord> separating;
};

InstanceResult run_pipeline(const Nba& nba, const Nba& other) {
  InstanceResult r;
  r.complement = buchi::complement(nba).to_string();
  r.closure = buchi::safety_closure(nba).to_string();
  r.det = det_to_string(DetSafety::from_nba(nba));
  r.classification = buchi::classify(nba);
  r.separating = buchi::find_separating_word(nba, other);
  return r;
}

void expect_equal(const InstanceResult& cached, const InstanceResult& uncached,
                  int instance) {
  EXPECT_EQ(cached.complement, uncached.complement) << "instance " << instance;
  EXPECT_EQ(cached.closure, uncached.closure) << "instance " << instance;
  EXPECT_EQ(cached.det, uncached.det) << "instance " << instance;
  EXPECT_EQ(cached.classification, uncached.classification) << "instance " << instance;
  EXPECT_EQ(cached.separating, uncached.separating) << "instance " << instance;
}

class CacheEquivalence : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    core::set_num_threads(GetParam());
    core::clear_all_caches();
    core::metrics().reset_all();
  }
  void TearDown() override { core::set_num_threads(1); }
};

TEST_P(CacheEquivalence, CachedRunsAreBitIdenticalToUncachedRuns) {
  const std::vector<Nba> corpus = random_corpus(/*count=*/100, "cache_equivalence.corpus");

  // Uncached reference pass.
  std::vector<InstanceResult> reference;
  {
    core::CacheEnabledScope disabled(false);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      reference.push_back(run_pipeline(corpus[i], corpus[(i + 1) % corpus.size()]));
    }
  }

  // Cached pass, twice: the first run fills the caches (results must already
  // match), the second run replays mostly out of the caches and must still
  // match bit-for-bit.
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  core::metrics().reset_all();
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const InstanceResult cached =
          run_pipeline(corpus[i], corpus[(i + 1) % corpus.size()]);
      expect_equal(cached, reference[i], static_cast<int>(i));
    }
  }

  // The replay round must have produced real cache traffic.
  EXPECT_GT(core::metrics().counter("cache.buchi.complement.hits").value(), 0u);
  EXPECT_GT(core::metrics().counter("cache.buchi.safety_closure.hits").value(), 0u);
  EXPECT_GT(core::metrics().counter("cache.buchi.det_safety.hits").value(), 0u);
}

TEST_P(CacheEquivalence, SecondComplementationOfSameRhsIsACacheHit) {
  // Satellite regression: is_equivalent(lhs, rhs) complements rhs for the
  // forward check and lhs for the backward check; a follow-up
  // find_separating_word against the same rhs used to recompute
  // complement(rhs) from scratch. With the memo cache it must be a hit —
  // asserted through the metrics registry, not timing. The language queries
  // default to the antichain engine nowadays, so this test pins the
  // complement backend explicitly; the antichain cache has its own exact
  // accounting in inclusion_equivalence_test.
  buchi::InclusionBackendScope oracle(buchi::InclusionBackend::kComplement);
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  core::metrics().reset_all();

  std::mt19937 rng = qc::make_rng("cache_equivalence.inclusion_metrics");
  buchi::RandomNbaConfig config;
  config.num_states = 4;
  const Nba lhs = buchi::random_nba(config, rng);
  const Nba rhs = buchi::random_nba(config, rng);

  core::Counter& hits = core::metrics().counter("cache.buchi.complement.hits");
  core::Counter& misses = core::metrics().counter("cache.buchi.complement.misses");

  (void)buchi::is_subset(lhs, rhs);
  const std::uint64_t misses_after_first = misses.value();
  EXPECT_GE(misses_after_first, 1u);  // complement(rhs) computed once
  const std::uint64_t hits_before = hits.value();

  (void)buchi::find_separating_word(lhs, rhs);  // same rhs: must hit
  EXPECT_EQ(misses.value(), misses_after_first);
  EXPECT_EQ(hits.value(), hits_before + 1);

  // is_equivalent's two directions, spelled out so the assertions stay exact
  // even when the forward check fails (is_equivalent short-circuits):
  (void)buchi::is_subset(lhs, rhs);  // complement(rhs) again: hit
  EXPECT_EQ(hits.value(), hits_before + 2);
  (void)buchi::is_subset(rhs, lhs);  // complement(lhs): first time, miss
  EXPECT_EQ(misses.value(), misses_after_first + 1);
}

TEST_P(CacheEquivalence, LtlTranslationIsCachedAndStatsReplayExactly) {
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  core::metrics().reset_all();

  ltl::LtlArena arena(words::Alphabet::binary());
  const auto f = arena.parse("G (a -> X (!a U b))");
  ASSERT_TRUE(f.has_value());

  ltl::TranslationStats first{};
  const Nba first_nba = ltl::to_nba(arena, *f, &first);
  ltl::TranslationStats second{};
  const Nba second_nba = ltl::to_nba(arena, *f, &second);

  EXPECT_EQ(first_nba.to_string(), second_nba.to_string());
  EXPECT_EQ(first.tableau_nodes, second.tableau_nodes);
  EXPECT_EQ(first.acceptance_sets, second.acceptance_sets);
  EXPECT_EQ(first.nba_states, second.nba_states);
  EXPECT_EQ(first.nba_transitions, second.nba_transitions);
  EXPECT_GE(core::metrics().counter("cache.ltl.to_nba.hits").value(), 1u);

  // An equal formula built in a DIFFERENT arena (different insertion
  // history) must also hit: the fingerprint is structural.
  ltl::LtlArena other(words::Alphabet::binary());
  // Touch the other arena first so ids diverge from the first arena's.
  (void)other.parse("F b U G a");
  const auto g = other.parse("G (a -> X (!a U b))");
  ASSERT_TRUE(g.has_value());
  const std::uint64_t hits_before =
      core::metrics().counter("cache.ltl.to_nba.hits").value();
  const Nba cross_arena = ltl::to_nba(other, *g);
  EXPECT_EQ(cross_arena.to_string(), first_nba.to_string());
  EXPECT_EQ(core::metrics().counter("cache.ltl.to_nba.hits").value(), hits_before + 1);
}

TEST_P(CacheEquivalence, ExplicitEraDigestsSurviveTheAlphabetRefactor) {
  // PR9 satellite: digest_alphabet keeps the seed-era byte stream for
  // explicit alphabets — entries written before the symbolic backend landed
  // still collide with themselves — while AP-backed alphabets key into a
  // DISJOINT digest domain even when they reuse the same atom names.
  core::CacheEnabledScope enabled(true);
  core::clear_all_caches();
  core::metrics().reset_all();

  core::Counter& hits = core::metrics().counter("cache.ltl.to_nba.hits");
  core::Counter& misses = core::metrics().counter("cache.ltl.to_nba.misses");

  ltl::LtlArena expl(words::Alphabet::binary());          // letters a, b
  ltl::LtlArena ap(words::Alphabet::of_aps({"a", "b"}));  // APs a, b
  const auto fe = expl.parse("G (a -> X b)");
  const auto fa = ap.parse("G (a -> X b)");
  ASSERT_TRUE(fe.has_value());
  ASSERT_TRUE(fa.has_value());

  (void)ltl::to_nba(expl, *fe);
  EXPECT_EQ(misses.value(), 1u);
  (void)ltl::to_nba(expl, *fe);  // same explicit-era key: hit
  EXPECT_EQ(hits.value(), 1u);

  // The SAME formula structure (same ops, same atom indices) over the
  // AP-backed flavor: only the alphabet encoding distinguishes the cache
  // keys, and it must — atom 0 means "letter == a" there, "AP a holds" here.
  (void)ltl::to_nba(ap, *fa);
  EXPECT_EQ(misses.value(), 2u);
  EXPECT_EQ(hits.value(), 1u);
  (void)ltl::to_nba(ap, *fa);
  EXPECT_EQ(hits.value(), 2u);
}

// PR6: the content address must be independent of the container holding the
// transition relation, or every memo-cache entry written before the CSR
// migration would silently miss after it. The reference digest below feeds
// the EXACT seed-era byte stream — nested vector-of-vectors slices,
// length-prefixed — through DigestBuilder and must equal fingerprint() of
// the CSR automaton bit for bit.
TEST(FingerprintLayout, CsrDigestMatchesSeedEraNestedVectorDigest) {
  const std::vector<Nba> corpus = random_corpus(50, "cache_equivalence.csr_digest");
  for (const Nba& nba : corpus) {
    const words::Alphabet& alphabet = nba.alphabet();
    std::vector<std::vector<std::vector<buchi::State>>> delta(
        nba.num_states(), std::vector<std::vector<buchi::State>>(alphabet.size()));
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      for (words::Sym s = 0; s < alphabet.size(); ++s) {
        for (buchi::State t : nba.successors(q, s)) delta[q][s].push_back(t);
      }
    }
    core::DigestBuilder reference;
    reference.add_string("buchi.nba");
    reference.add_int(alphabet.size());
    for (words::Sym s = 0; s < alphabet.size(); ++s) {
      reference.add_string(alphabet.name(s));
    }
    reference.add_int(nba.num_states()).add_int(nba.initial());
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      reference.add_bool(nba.is_accepting(q));
      for (words::Sym s = 0; s < alphabet.size(); ++s) {
        reference.add_ints(delta[q][s]);
      }
    }
    const core::Digest expected = reference.digest();
    const core::Digest actual = buchi::fingerprint(nba);
    EXPECT_EQ(actual.hi, expected.hi);
    EXPECT_EQ(actual.lo, expected.lo);
  }
}

// Pins the slice SEMANTICS the digest is defined over: first-insertion
// order, duplicates dropped — what add_transition has guaranteed since the
// seed, now reproduced by the lazy CSR rebuild.
TEST(FingerprintLayout, SliceOrderIsFirstInsertionWithDedup) {
  Nba nba(words::Alphabet::binary(), 3, 0);
  nba.set_accepting(2, true);
  nba.add_transition(0, 0, 2);
  nba.add_transition(0, 0, 1);
  nba.add_transition(0, 0, 2);  // duplicate: dropped
  nba.add_transition(1, 1, 0);
  const auto slice = nba.successors(0, 0);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_EQ(slice[0], 2);
  EXPECT_EQ(slice[1], 1);
  EXPECT_EQ(nba.num_transitions(), 3);

  core::DigestBuilder reference;
  reference.add_string("buchi.nba");
  reference.add_int(2);
  reference.add_string(nba.alphabet().name(0));
  reference.add_string(nba.alphabet().name(1));
  reference.add_int(3).add_int(0);
  reference.add_bool(false);
  reference.add_ints(std::vector<int>{2, 1});  // (q0, a)
  reference.add_ints(std::vector<int>{});      // (q0, b)
  reference.add_bool(false);
  reference.add_ints(std::vector<int>{});      // (q1, a)
  reference.add_ints(std::vector<int>{0});     // (q1, b)
  reference.add_bool(true);
  reference.add_ints(std::vector<int>{});      // (q2, a)
  reference.add_ints(std::vector<int>{});      // (q2, b)
  const core::Digest expected = reference.digest();
  const core::Digest actual = buchi::fingerprint(nba);
  EXPECT_EQ(actual.hi, expected.hi);
  EXPECT_EQ(actual.lo, expected.lo);
}

INSTANTIATE_TEST_SUITE_P(Threads, CacheEquivalence, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace slat
