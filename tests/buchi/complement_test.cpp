// Rank-based (Kupferman–Vardi) complementation, differentially tested
// against word-level semantics.
#include "buchi/complement.hpp"

#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/random.hpp"

namespace slat::buchi {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

TEST(Complement, OfUniversalIsEmpty) {
  EXPECT_TRUE(complement(Nba::universal(Alphabet::binary())).is_empty());
}

TEST(Complement, OfEmptyIsUniversal) {
  const Nba comp = complement(Nba::empty_language(Alphabet::binary()));
  EXPECT_FALSE(comp.is_empty());
  for (const auto& w : words::enumerate_up_words(2, 2, 2)) {
    EXPECT_TRUE(comp.accepts(w));
  }
}

TEST(Complement, GaComplementIsFNotA) {
  Nba ga(Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  const Nba comp = complement(ga);
  EXPECT_FALSE(comp.accepts(UpWord::constant(kA)));
  EXPECT_TRUE(comp.accepts(UpWord::constant(kB)));
  EXPECT_TRUE(comp.accepts(UpWord({kA, kA, kB}, {kA})));
}

TEST(Complement, SemanticsOnRandomAutomata) {
  std::mt19937 rng(53);
  RandomNbaConfig config;
  config.num_states = 3;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 60; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba comp = complement(nba);
    for (const auto& w : corpus) {
      ASSERT_NE(comp.accepts(w), nba.accepts(w))
          << "iteration " << i << " word " << w.to_string(nba.alphabet());
    }
  }
}

TEST(Complement, GFaComplementIsFGb) {
  Nba gfa(Alphabet::binary(), 2, 0);
  gfa.add_transition(0, kA, 1);
  gfa.add_transition(0, kB, 0);
  gfa.add_transition(1, kA, 1);
  gfa.add_transition(1, kB, 0);
  gfa.set_accepting(1, true);
  const Nba comp = complement(gfa);
  EXPECT_TRUE(comp.accepts(UpWord::constant(kB)));
  EXPECT_TRUE(comp.accepts(UpWord({kA, kA}, {kB})));
  EXPECT_FALSE(comp.accepts(UpWord::constant(kA)));
  EXPECT_FALSE(comp.accepts(UpWord({}, {kA, kB})));
}

TEST(Language, SubsetAndEquivalence) {
  Nba ga(Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  Nba gfa(Alphabet::binary(), 2, 0);
  gfa.add_transition(0, kA, 1);
  gfa.add_transition(0, kB, 0);
  gfa.add_transition(1, kA, 1);
  gfa.add_transition(1, kB, 0);
  gfa.set_accepting(1, true);
  // Ga ⊆ GFa but not conversely.
  EXPECT_TRUE(is_subset(ga, gfa));
  EXPECT_FALSE(is_subset(gfa, ga));
  EXPECT_FALSE(is_equivalent(ga, gfa));
  EXPECT_TRUE(is_equivalent(gfa, gfa));
  const auto separating = find_separating_word(gfa, ga);
  ASSERT_TRUE(separating.has_value());
  EXPECT_TRUE(gfa.accepts(*separating));
  EXPECT_FALSE(ga.accepts(*separating));
}

TEST(Language, DoubleComplementOnCorpus) {
  std::mt19937 rng(59);
  RandomNbaConfig config;
  config.num_states = 2;  // the outer complement runs on the inner's output
  const auto corpus = words::enumerate_up_words(2, 2, 2);
  for (int i = 0; i < 8; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba twice = complement(complement(nba).trim());
    EXPECT_EQ(find_disagreement(nba, twice, corpus), std::nullopt) << i;
  }
}

TEST(Language, FindDisagreementSpotsDifferences) {
  Nba ga(Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  const auto corpus = words::enumerate_up_words(2, 2, 2);
  EXPECT_NE(find_disagreement(ga, Nba::universal(Alphabet::binary()), corpus),
            std::nullopt);
  EXPECT_EQ(find_disagreement(ga, ga, corpus), std::nullopt);
}

}  // namespace
}  // namespace slat::buchi
