// Witness-validity property test for the inclusion engine (satellite of the
// antichain PR): whenever find_separating_word(lhs, rhs) produces a word, it
// must be accepted by lhs and rejected by rhs — checked with the exact
// UP-word membership evaluator (Nba::accepts) over ≥100 random automaton
// pairs, plus the universality/emptiness wrappers.
#include <gtest/gtest.h>

#include <optional>
#include <random>

#include "buchi/inclusion.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "words/up_word.hpp"
#include "qc/gtest_seed.hpp"

namespace slat {
namespace {

using buchi::Nba;
using words::UpWord;

buchi::RandomNbaConfig shape(int i) {
  buchi::RandomNbaConfig config;
  config.num_states = 2 + i % 5;
  config.alphabet_size = 2;
  config.transition_density = 0.7 + 0.15 * (i % 4);
  config.accepting_probability = 0.25 + 0.1 * (i % 4);
  return config;
}

TEST(WitnessValidity, SeparatingWordsSeparate) {
  std::mt19937 rng = qc::make_rng("witness_validity.separating");
  const std::vector<UpWord> corpus = words::enumerate_up_words(2, 2, 2);
  int found = 0;
  for (int i = 0; i < 120; ++i) {
    const Nba lhs = buchi::random_nba(shape(i), rng);
    const Nba rhs = buchi::random_nba(shape(i + 1), rng);
    const std::optional<UpWord> w = buchi::find_separating_word(lhs, rhs);
    if (w.has_value()) {
      ++found;
      EXPECT_TRUE(w->is_normalized());
      EXPECT_TRUE(lhs.accepts(*w)) << "pair " << i << ": witness not in L(lhs)";
      EXPECT_FALSE(rhs.accepts(*w)) << "pair " << i << ": witness in L(rhs)";
      EXPECT_FALSE(buchi::is_subset(lhs, rhs));
    } else {
      EXPECT_TRUE(buchi::is_subset(lhs, rhs));
      // No UP-word of the sample corpus may refute the verdict either.
      for (const UpWord& u : corpus) {
        EXPECT_FALSE(lhs.accepts(u) && !rhs.accepts(u))
            << "pair " << i << ": engine claims inclusion but "
            << u.to_string(lhs.alphabet()) << " separates";
      }
    }
  }
  // The random families above are language-diverse; if no pair ever
  // separated, the property test would be vacuous.
  EXPECT_GE(found, 20);
}

TEST(WitnessValidity, UniversalityCounterexamplesAreRejected) {
  std::mt19937 rng = qc::make_rng("witness_validity.universality");
  for (int i = 0; i < 40; ++i) {
    const Nba nba = buchi::random_nba(shape(i), rng);
    const buchi::InclusionResult r = buchi::check_universality(nba);
    if (r.counterexample.has_value()) {
      EXPECT_FALSE(nba.accepts(*r.counterexample)) << "instance " << i;
    } else {
      // Claimed universal: must accept every corpus word.
      for (const UpWord& u : words::enumerate_up_words(2, 2, 2)) {
        EXPECT_TRUE(nba.accepts(u)) << "instance " << i;
      }
    }
  }
}

TEST(WitnessValidity, EmptinessCounterexamplesAreAccepted) {
  std::mt19937 rng = qc::make_rng("witness_validity.emptiness");
  for (int i = 0; i < 40; ++i) {
    const Nba nba = buchi::random_nba(shape(i), rng);
    const buchi::InclusionResult r = buchi::check_emptiness(nba);
    EXPECT_EQ(r.included, nba.is_empty()) << "instance " << i;
    if (r.counterexample.has_value()) {
      EXPECT_TRUE(nba.accepts(*r.counterexample)) << "instance " << i;
    }
  }
}

}  // namespace
}  // namespace slat
