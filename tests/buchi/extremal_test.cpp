// Theorems 6 and 7 on the lattice of ω-regular languages: in ANY
// decomposition spec = S ∩ Z with S a safety property,
//   (Thm 6)  lcl(spec) ⊆ S                      — strongest safety part, and
//   (Thm 7)  Z ⊆ spec ∪ ¬lcl(spec)             — weakest liveness part
// (the language lattice is distributive, so Theorem 7 applies and the
// complement in it is unique).
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace slat::buchi {
namespace {

class ExtremalFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{Alphabet::binary()};
  std::vector<words::UpWord> corpus = words::enumerate_up_words(2, 3, 3);

  Nba nba(const char* text) { return ltl::to_nba(arena, *arena.parse(text)); }

  // Sampled subset check (the automata here get too large for exact
  // complementation; the corpus refutes reliably).
  bool subset_on_corpus(const Nba& lhs, const Nba& rhs) {
    for (const auto& w : corpus) {
      if (lhs.accepts(w) && !rhs.accepts(w)) return false;
    }
    return true;
  }
};

TEST_F(ExtremalFixture, Theorem6StrongestSafetyAcrossHandDecompositions) {
  // spec = p3 = a ∧ F¬a. Decompositions spec = S ∩ Z with S safety:
  //   S = "first a" (the closure itself), Z = F¬a;
  //   S = Σ^ω is NOT safety-minimal but is safe; Z = spec.
  // In every case lcl(spec) ⊆ S must hold.
  const Nba spec = nba("a & F !a");
  const Nba closure = safety_closure(spec);
  const struct {
    const char* safety;
    const char* rest;
  } decompositions[] = {
      {"a", "F !a"},
      {"true", "a & F !a"},
      {"a | X true", "a & F !a"},  // = Σ^ω in disguise
  };
  for (const auto& d : decompositions) {
    const Nba s = nba(d.safety);
    const Nba z = nba(d.rest);
    ASSERT_TRUE(is_safety(s)) << d.safety;
    // Verify it IS a decomposition of spec on the corpus.
    const Nba meet = intersect(s, z);
    for (const auto& w : corpus) {
      ASSERT_EQ(meet.accepts(w), spec.accepts(w)) << d.safety;
    }
    // Theorem 6: closure ⊆ S.
    EXPECT_TRUE(subset_on_corpus(closure, s)) << d.safety;
  }
}

TEST_F(ExtremalFixture, Theorem7WeakestLivenessAcrossHandDecompositions) {
  // Same decompositions; Theorem 7: Z ⊆ spec ∪ ¬lcl(spec).
  const Nba spec = nba("a & F !a");
  const DetSafety det = DetSafety::from_nba(spec);
  const Nba weakest = unite(spec, det.complement_nba());
  const struct {
    const char* safety;
    const char* rest;
  } decompositions[] = {
      {"a", "F !a"},
      {"a", "a & F !a"},
      {"true", "a & F !a"},
  };
  for (const auto& d : decompositions) {
    const Nba z = nba(d.rest);
    // Note the direction: every usable Z is CONTAINED in the canonical
    // liveness part (the canonical one specifies as little as possible).
    bool all_ok = true;
    for (const auto& w : corpus) {
      if (z.accepts(w) && !weakest.accepts(w)) all_ok = false;
    }
    EXPECT_TRUE(all_ok) << d.rest;
  }
}

TEST_F(ExtremalFixture, CanonicalDecompositionIsSandwichedByTheExtremes) {
  for (const char* text : {"a & F !a", "G a", "a U b", "G (a -> X !a)"}) {
    const Nba spec = nba(text);
    const BuchiDecomposition d = decompose(spec);
    const Nba closure = safety_closure(spec);
    // Safety part = the closure (strongest), liveness part = the canonical
    // weakest element.
    for (const auto& w : corpus) {
      EXPECT_EQ(d.safety.accepts(w), closure.accepts(w)) << text;
    }
    // And the liveness part is indeed weakest: spec ⊆ liveness.
    EXPECT_TRUE(subset_on_corpus(spec, d.liveness)) << text;
  }
}

TEST_F(ExtremalFixture, NonClosureSafetyPartsAreStrictlyWeaker) {
  // For p3, using S = Σ^ω (weaker than the closure) still decomposes, but
  // the pair is then NOT machine closed — Theorem 6's practical reading.
  const Nba spec = nba("a & F !a");
  EXPECT_TRUE(is_machine_closed(safety_closure(spec), spec));
  EXPECT_FALSE(is_machine_closed(nba("true"), spec));
}

}  // namespace
}  // namespace slat::buchi
