// The symbolic cube backend against the explicit oracle, at small k where
// both can run — translation, safety closure, subset construction and the
// antichain inclusion engine must agree BIT-identically after cube
// expansion — plus the k = 16 scaling contract (no letter materialization).
#include "buchi/symbolic.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace slat::buchi {
namespace {

using ltl::LtlArena;
using words::Alphabet;
using words::AlphabetBackend;
using words::AlphabetBackendScope;

const std::vector<std::string>& corpus_k3() {
  static const std::vector<std::string> corpus = {
      "G p",
      "F (p & q)",
      "p U (q R r)",
      "G (p -> X q)",
      "(F p) & (G (q -> F r))",
      "!(p U q)",
      "X X p | G F r",
      "G (p -> (q U r))",
      "false R (p | q)",
  };
  return corpus;
}

ltl::FormulaId parse(LtlArena& arena, const std::string& text) {
  const auto f = arena.parse(text);
  EXPECT_TRUE(f.has_value()) << text;
  return *f;
}

TEST(SymbolicNba, FromExplicitExpandRoundTripsBitIdentically) {
  const Alphabet alphabet = Alphabet::of_aps({"p", "q", "r"});
  Nba nba(alphabet, 3, 0);
  nba.set_accepting(1, true);
  nba.add_transition(0, 0b001, 1);
  nba.add_transition(0, 0b101, 1);
  nba.add_transition(1, 0b000, 2);
  nba.add_transition(1, 0b111, 1);
  nba.add_transition(2, 0b010, 0);
  const SymbolicNba lifted = SymbolicNba::from_explicit(nba);
  EXPECT_EQ(fingerprint(lifted.expand()), fingerprint(nba));
}

TEST(SymbolicNba, TranslationAgreesWithTheExplicitBackendAfterExpansion) {
  for (const std::string& text : corpus_k3()) {
    LtlArena arena(Alphabet::of_aps({"p", "q", "r"}));
    const ltl::FormulaId f = parse(arena, text);
    const SymbolicNba symbolic = ltl::to_nba_symbolic(arena, f);
    const Nba expl = ltl::to_nba(arena, f);
    EXPECT_EQ(fingerprint(symbolic.expand()), fingerprint(expl)) << text;

    // The SLAT_ALPHABET=explicit oracle path lands on the same automaton.
    AlphabetBackendScope oracle(AlphabetBackend::kExplicit);
    const SymbolicNba lifted = ltl::to_nba_symbolic(arena, f);
    EXPECT_EQ(fingerprint(lifted.expand()), fingerprint(expl)) << text;
  }
}

TEST(SymbolicNba, SafetyClosureAgreesWithTheExplicitClosure) {
  for (const std::string& text : corpus_k3()) {
    LtlArena arena(Alphabet::of_aps({"p", "q", "r"}));
    const ltl::FormulaId f = parse(arena, text);
    const SymbolicNba symbolic = safety_closure(ltl::to_nba_symbolic(arena, f));
    const Nba expl = safety_closure(ltl::to_nba(arena, f));
    EXPECT_EQ(fingerprint(symbolic.expand()), fingerprint(expl)) << text;
  }
}

TEST(SymbolicDetSafety, SubsetConstructionMatchesTheExplicitTable) {
  for (const std::string& text : corpus_k3()) {
    LtlArena arena(Alphabet::of_aps({"p", "q", "r"}));
    const ltl::FormulaId f = parse(arena, text);
    const SymbolicNba closure = safety_closure(ltl::to_nba_symbolic(arena, f));
    const SymbolicDetSafety symbolic = SymbolicDetSafety::determinize(closure);
    const DetSafety expl =
        DetSafety::determinize(safety_closure(ltl::to_nba(arena, f)));

    // Same subset discovery order ⇒ same state numbering, not merely the
    // same language.
    ASSERT_EQ(symbolic.num_states(), expl.num_states()) << text;
    EXPECT_EQ(symbolic.initial(), expl.initial()) << text;
    EXPECT_EQ(symbolic.sink(), expl.sink()) << text;
    for (State q = 0; q < expl.num_states(); ++q) {
      for (words::Sym s = 0; s < 8; ++s) {
        EXPECT_EQ(symbolic.step(q, s), expl.step(q, s)) << text;
      }
    }
    EXPECT_EQ(symbolic.is_universal(), expl.is_universal()) << text;
  }
}

TEST(SymbolicInclusion, VerdictsAndWitnessesMatchTheExplicitEngine) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"G p", "F p"},
      {"F p", "G p"},
      {"p U q", "F q"},
      {"F q", "p U q"},
      {"G (p -> X q)", "G p -> G F q"},
      {"G F p", "F G p"},
  };
  for (const auto& [lhs_text, rhs_text] : pairs) {
    LtlArena arena(Alphabet::of_aps({"p", "q", "r"}));
    const ltl::FormulaId lf = parse(arena, lhs_text);
    const ltl::FormulaId rf = parse(arena, rhs_text);
    const SymbolicNba sl = ltl::to_nba_symbolic(arena, lf);
    const SymbolicNba sr = ltl::to_nba_symbolic(arena, rf);

    const InclusionResult symbolic = check_inclusion(sl, sr);
    const InclusionResult expl = check_inclusion(sl.expand(), sr.expand());

    EXPECT_EQ(symbolic.included, expl.included) << lhs_text << " vs " << rhs_text;
    ASSERT_EQ(symbolic.counterexample.has_value(), expl.counterexample.has_value());
    if (symbolic.counterexample.has_value()) {
      // Witness letters are the block minima — exactly what the explicit
      // engine's ascending letter loops push first.
      EXPECT_EQ(*symbolic.counterexample, *expl.counterexample)
          << lhs_text << " vs " << rhs_text;
      EXPECT_TRUE(sl.expand().accepts(*symbolic.counterexample));
      EXPECT_FALSE(sr.expand().accepts(*symbolic.counterexample));
    }
  }
}

TEST(SymbolicInclusion, UniversalityAndEmptinessAgree) {
  for (const std::string& text : corpus_k3()) {
    LtlArena arena(Alphabet::of_aps({"p", "q", "r"}));
    const ltl::FormulaId f = parse(arena, text);
    const SymbolicNba s = ltl::to_nba_symbolic(arena, f);
    EXPECT_EQ(check_universality(s).included,
              check_universality(s.expand()).included)
        << text;
    EXPECT_EQ(check_emptiness(s).included, check_emptiness(s.expand()).included)
        << text;
  }
}

TEST(SymbolicPipeline, KSixteenRunsWithoutMaterializingLetters) {
  // 16 atomic propositions = a 65536-letter alphabet. The whole pipeline —
  // translation, closure, subset construction, universality — must run in
  // cube space: the store counts every letter it ever expands, and that
  // count has to stay zero.
  // Four conjuncts constrain 8 of the 16 APs; the pipeline's cost is
  // exponential in the CONSTRAINED APs (the condensed alphabet is their
  // minterms), not in k — which is the whole point of the backend. More
  // conjuncts would grow the tableau itself, not the letter handling.
  std::vector<std::string> aps;
  for (int i = 0; i < 16; ++i) aps.push_back("p" + std::to_string(i));
  LtlArena arena(Alphabet::of_aps(aps));
  std::string text = "G (p0 -> X p15)";
  for (int i = 1; i < 4; ++i) {
    text += " & G (p" + std::to_string(i) + " -> X p" + std::to_string(i + 4) + ")";
  }
  const ltl::FormulaId f = parse(arena, text);

  const SymbolicNba nba = ltl::to_nba_symbolic(arena, f);
  EXPECT_EQ(nba.alphabet().size(), 1 << 16);
  const SymbolicNba closure = safety_closure(nba);
  const SymbolicDetSafety det = SymbolicDetSafety::determinize(closure);
  EXPECT_GT(det.num_states(), 1);
  // A safety formula with a reachable violation: not universal.
  EXPECT_FALSE(det.is_universal());
  EXPECT_FALSE(check_emptiness(nba).included);

  EXPECT_EQ(nba.store()->stats().expanded_letters, 0u);
  EXPECT_EQ(closure.store()->stats().expanded_letters, 0u);
  // The condensed core is tiny — pseudo-letters, not 2^16 rows.
  EXPECT_LT(det.core().alphabet().size(), 1 << 10);
}

}  // namespace
}  // namespace slat::buchi
