// Direct simulation (buchi/simulation.hpp): preorder soundness (simulation
// implies language containment), quotient language preservation, coarseness
// vs bisimulation, and determinism across thread counts.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/random.hpp"
#include "buchi/simulation.hpp"
#include "core/thread_pool.hpp"
#include "words/up_word.hpp"
#include "qc/gtest_seed.hpp"

namespace slat {
namespace {

using buchi::Nba;
using buchi::SimulationPreorder;
using words::UpWord;

// The same automaton re-rooted at `q` — for testing per-state language
// containment claims.
Nba with_initial(const Nba& nba, buchi::State q) {
  Nba out(nba.alphabet(), nba.num_states(), q);
  for (buchi::State s = 0; s < nba.num_states(); ++s) {
    out.set_accepting(s, nba.is_accepting(s));
    for (words::Sym c = 0; c < nba.alphabet().size(); ++c) {
      for (buchi::State t : nba.successors(s, c)) out.add_transition(s, c, t);
    }
  }
  return out;
}

std::vector<Nba> random_corpus(int count, std::string_view stream) {
  std::mt19937 rng = qc::make_rng(stream);
  buchi::RandomNbaConfig config;
  std::vector<Nba> corpus;
  for (int i = 0; i < count; ++i) {
    config.num_states = 2 + i % 4;
    config.transition_density = 0.8 + 0.15 * (i % 4);
    config.accepting_probability = 0.3 + 0.1 * (i % 3);
    corpus.push_back(buchi::random_nba(config, rng));
  }
  return corpus;
}

class Simulation : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { core::set_num_threads(GetParam()); }
  void TearDown() override { core::set_num_threads(1); }
};

TEST_P(Simulation, IsReflexive) {
  for (const Nba& nba : random_corpus(30, "simulation.preorder")) {
    const SimulationPreorder sim = buchi::direct_simulation(nba);
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      EXPECT_TRUE(sim.simulates(q, q));
    }
  }
}

TEST_P(Simulation, SimulationImpliesLanguageContainmentOnUpWords) {
  const std::vector<UpWord> words = words::enumerate_up_words(2, 2, 2);
  for (const Nba& nba : random_corpus(25, "simulation.acceptance")) {
    const SimulationPreorder sim = buchi::direct_simulation(nba);
    for (buchi::State q = 0; q < nba.num_states(); ++q) {
      for (buchi::State t = 0; t < nba.num_states(); ++t) {
        if (t == q || !sim.simulates(t, q)) continue;
        const Nba from_q = with_initial(nba, q);
        const Nba from_t = with_initial(nba, t);
        for (const UpWord& w : words) {
          if (from_q.accepts(w)) {
            EXPECT_TRUE(from_t.accepts(w))
                << "q=" << q << " t=" << t << " w=" << w.to_string(nba.alphabet());
          }
        }
      }
    }
  }
}

TEST_P(Simulation, UniversalAcceptingStateSimulatesEverything) {
  std::mt19937 rng = qc::make_rng("simulation.universal_state");
  buchi::RandomNbaConfig config;
  config.num_states = 4;
  Nba nba = buchi::random_nba(config, rng);
  const buchi::State top = nba.add_state();
  nba.set_accepting(top, true);
  for (words::Sym c = 0; c < nba.alphabet().size(); ++c) {
    nba.add_transition(top, c, top);
  }
  const SimulationPreorder sim = buchi::direct_simulation(nba);
  for (buchi::State q = 0; q < nba.num_states(); ++q) {
    EXPECT_TRUE(sim.simulates(top, q)) << "q=" << q;
  }
}

TEST_P(Simulation, QuotientPreservesLanguage) {
  const std::vector<UpWord> words = words::enumerate_up_words(2, 3, 3);
  for (const Nba& nba : random_corpus(40, "simulation.quotient_language")) {
    const Nba quotient = nba.reduce(buchi::ReduceMode::kSimulation);
    EXPECT_EQ(buchi::find_disagreement(nba, quotient, words), std::nullopt);
  }
  // Exact equivalence on a few instances (through the inclusion engine).
  for (const Nba& nba : random_corpus(8, "simulation.quotient_exact")) {
    const Nba quotient = nba.reduce(buchi::ReduceMode::kSimulation);
    EXPECT_TRUE(buchi::is_equivalent(nba, quotient));
  }
}

TEST_P(Simulation, QuotientIsAtLeastAsCoarseAsBisimulation) {
  for (const Nba& nba : random_corpus(40, "simulation.coarseness")) {
    const Nba by_bisim = nba.reduce(buchi::ReduceMode::kBisimulation);
    const Nba by_sim = nba.reduce(buchi::ReduceMode::kSimulation);
    EXPECT_LE(by_sim.num_states(), by_bisim.num_states());
  }
}

TEST(SimulationDeterminism, PreorderIsThreadCountInvariant) {
  for (const Nba& nba : random_corpus(15, "simulation.determinism")) {
    core::set_num_threads(1);
    const SimulationPreorder seq = buchi::direct_simulation(nba);
    core::set_num_threads(4);
    const SimulationPreorder par = buchi::direct_simulation(nba);
    core::set_num_threads(1);
    ASSERT_EQ(seq.simulators.size(), par.simulators.size());
    for (std::size_t q = 0; q < seq.simulators.size(); ++q) {
      EXPECT_TRUE(seq.simulators[q] == par.simulators[q]) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, Simulation, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace slat
