// Differential tests for the bitset state-set kernel: the optimized subset
// construction (`DetSafety::determinize`) and rank-based complementation are
// run against verbatim copies of the SEED implementations (ordered-map
// interning, sort+unique images) on hundreds of random NBAs, and the
// resulting languages are compared exactly via product-emptiness. Because
// both sides assign state ids in discovery order, the automata must in fact
// be identical state for state — which the tests also assert, as the
// stronger isomorphism check.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <random>
#include <tuple>
#include <vector>

#include "buchi/complement.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "qc/gtest_seed.hpp"

namespace slat::buchi {
namespace {

// --- Seed subset construction (reference), kept verbatim modulo the output
// --- shape: sorted-vector subsets interned through std::map.
struct ReferenceDetSafety {
  State initial = 0;
  State sink = 0;
  std::vector<std::vector<State>> delta;
};

ReferenceDetSafety reference_determinize(const Nba& closure) {
  ReferenceDetSafety out;
  const int sigma = closure.alphabet().size();

  std::map<std::vector<State>, State> intern;
  std::vector<std::vector<State>> worklist_sets;
  const auto intern_set = [&](const std::vector<State>& set) {
    auto it = intern.find(set);
    if (it == intern.end()) {
      it = intern.emplace(set, static_cast<State>(intern.size())).first;
      out.delta.emplace_back(sigma, -1);
      worklist_sets.push_back(set);
    }
    return it->second;
  };

  out.sink = intern_set({});
  if (closure.is_trivially_dead()) {
    out.initial = out.sink;
  } else {
    out.initial = intern_set({closure.initial()});
  }

  for (std::size_t next = 0; next < worklist_sets.size(); ++next) {
    const std::vector<State> current = worklist_sets[next];
    const State current_id = intern.at(current);
    for (Sym s = 0; s < sigma; ++s) {
      std::vector<State> image;
      for (State q : current) {
        for (State succ : closure.successors(q, s)) image.push_back(succ);
      }
      std::sort(image.begin(), image.end());
      image.erase(std::unique(image.begin(), image.end()), image.end());
      out.delta[current_id][s] = intern_set(std::move(image));
    }
  }
  return out;
}

// L(reference) as an NBA (mirrors DetSafety::to_nba).
Nba reference_to_nba(const ReferenceDetSafety& det, const Alphabet& alphabet) {
  Nba out(alphabet, static_cast<int>(det.delta.size()), det.initial);
  for (State q = 0; q < out.num_states(); ++q) {
    if (q == det.sink) continue;
    out.set_accepting(q, true);
    for (Sym s = 0; s < alphabet.size(); ++s) {
      if (det.delta[q][s] != det.sink) out.add_transition(q, s, det.delta[q][s]);
    }
  }
  return out;
}

// ¬L(reference) as an NBA (mirrors DetSafety::complement_nba).
Nba reference_complement_nba(const ReferenceDetSafety& det, const Alphabet& alphabet) {
  Nba out(alphabet, static_cast<int>(det.delta.size()), det.initial);
  out.set_accepting(det.sink, true);
  for (State q = 0; q < out.num_states(); ++q) {
    for (Sym s = 0; s < alphabet.size(); ++s) {
      out.add_transition(q, s, det.delta[q][s]);
    }
  }
  return out;
}

// --- Seed rank-based complementation (reference), verbatim with the
// --- ordered-map interning it shipped with.
struct RefRankState {
  std::vector<int> rank;
  std::vector<bool> obligation;

  bool operator<(const RefRankState& other) const {
    if (rank != other.rank) return rank < other.rank;
    return obligation < other.obligation;
  }
};

Nba reference_complement(const Nba& nba, int max_rank) {
  const int n = nba.num_states();
  const int sigma = nba.alphabet().size();

  std::map<RefRankState, State> intern;
  std::vector<RefRankState> states;
  std::vector<std::tuple<State, Sym, State>> transitions;

  const auto intern_state = [&](const RefRankState& rs) {
    auto it = intern.find(rs);
    if (it == intern.end()) {
      it = intern.emplace(rs, static_cast<State>(states.size())).first;
      states.push_back(rs);
    }
    return it->second;
  };

  RefRankState init{std::vector<int>(n, -1), std::vector<bool>(n, false)};
  const int init_rank =
      nba.is_accepting(nba.initial()) && max_rank % 2 == 1 ? max_rank - 1 : max_rank;
  init.rank[nba.initial()] = init_rank;
  const State initial_id = intern_state(init);

  for (std::size_t work = 0; work < states.size(); ++work) {
    const RefRankState current = states[work];
    const State current_id = static_cast<State>(work);

    for (Sym s = 0; s < sigma; ++s) {
      std::vector<int> cap(n, -1);
      for (State q = 0; q < n; ++q) {
        if (current.rank[q] < 0) continue;
        for (State succ : nba.successors(q, s)) {
          cap[succ] = cap[succ] < 0 ? current.rank[q] : std::min(cap[succ], current.rank[q]);
        }
      }
      std::vector<State> members;
      for (State q = 0; q < n; ++q) {
        if (cap[q] >= 0) members.push_back(q);
      }
      const bool obligation_active =
          std::find(current.obligation.begin(), current.obligation.end(), true) !=
          current.obligation.end();
      std::vector<bool> inherits(n, false);
      if (obligation_active) {
        for (State q = 0; q < n; ++q) {
          if (current.rank[q] < 0 || !current.obligation[q]) continue;
          for (State succ : nba.successors(q, s)) inherits[succ] = true;
        }
      } else {
        for (State q : members) inherits[q] = true;
      }

      std::vector<int> chosen(members.size(), 0);
      const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
        if (idx == members.size()) {
          RefRankState next{std::vector<int>(n, -1), std::vector<bool>(n, false)};
          for (std::size_t i = 0; i < members.size(); ++i) {
            next.rank[members[i]] = chosen[i];
          }
          for (State q : members) {
            next.obligation[q] = inherits[q] && next.rank[q] % 2 == 0;
          }
          transitions.emplace_back(current_id, s, intern_state(next));
          return;
        }
        const State q = members[idx];
        for (int r = 0; r <= cap[q]; ++r) {
          if (nba.is_accepting(q) && r % 2 == 1) continue;
          chosen[idx] = r;
          recurse(idx + 1);
        }
      };
      recurse(0);
    }
  }

  Nba out(nba.alphabet(), static_cast<int>(states.size()), initial_id);
  for (State id = 0; id < out.num_states(); ++id) {
    const auto& rs = states[id];
    const bool has_obligation =
        std::find(rs.obligation.begin(), rs.obligation.end(), true) != rs.obligation.end();
    out.set_accepting(id, !has_obligation);
  }
  for (const auto& [from, s, to] : transitions) out.add_transition(from, s, to);
  return out;
}

// Exact Nba equality: same states, acceptance, and successor lists.
void expect_identical(const Nba& a, const Nba& b, const std::string& context) {
  ASSERT_EQ(a.num_states(), b.num_states()) << context;
  ASSERT_EQ(a.initial(), b.initial()) << context;
  for (State q = 0; q < a.num_states(); ++q) {
    EXPECT_EQ(a.is_accepting(q), b.is_accepting(q)) << context << " state " << q;
    for (Sym s = 0; s < a.alphabet().size(); ++s) {
      const auto sa = a.successors(q, s);
      const auto sb = b.successors(q, s);
      EXPECT_TRUE(std::equal(sa.begin(), sa.end(), sb.begin(), sb.end()))
          << context << " state " << q;
    }
  }
}

TEST(KernelEquivalence, SubsetConstructionMatchesSeedOn200RandomNbas) {
  std::mt19937 rng = qc::make_rng("kernel_equivalence.subset");
  int done = 0;
  for (int n = 2; n <= 9; ++n) {
    for (int sigma = 1; sigma <= 3; ++sigma) {
      for (int rep = 0; rep < 9; ++rep, ++done) {
        RandomNbaConfig config;
        config.num_states = n;
        config.alphabet_size = sigma;
        config.transition_density = 0.6 + 0.2 * rep;
        const Nba nba = random_nba(config, rng);
        const Nba closure = safety_closure(nba);

        const ReferenceDetSafety ref = reference_determinize(closure);
        const DetSafety opt = DetSafety::determinize(closure);

        // Identical automata (discovery-order numbering on both sides).
        ASSERT_EQ(static_cast<int>(ref.delta.size()), opt.num_states());
        ASSERT_EQ(ref.initial, opt.initial());
        ASSERT_EQ(ref.sink, opt.sink());

        // Identical languages, decided exactly by product-emptiness: safety
        // languages have cheap complements, so both inclusions are testable.
        const Nba ref_nba = reference_to_nba(ref, nba.alphabet());
        const Nba ref_not = reference_complement_nba(ref, nba.alphabet());
        EXPECT_TRUE(intersect(ref_nba, opt.complement_nba()).is_empty())
            << "reference ⊄ optimized at n=" << n << " sigma=" << sigma;
        EXPECT_TRUE(intersect(opt.to_nba(), ref_not).is_empty())
            << "optimized ⊄ reference at n=" << n << " sigma=" << sigma;
      }
    }
  }
  EXPECT_GE(done, 200);
}

TEST(KernelEquivalence, ComplementationMatchesSeedOn200RandomNbas) {
  std::mt19937 rng = qc::make_rng("kernel_equivalence.complement");
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  int done = 0;
  for (int n = 2; n <= 4; ++n) {
    for (int rep = 0; rep < 100; ++rep) {
      RandomNbaConfig config;
      config.num_states = n;
      config.alphabet_size = 2;
      config.transition_density = 0.7 + 0.1 * (rep % 8);
      const Nba nba = random_nba(config, rng);

      // Mirror complement(const Nba&)'s preprocessing, then diff the kernel.
      const Nba reduced = nba.reduce();
      if (reduced.is_trivially_dead()) continue;  // complement() short-circuits
      ++done;
      const int bound = 2 * (reduced.num_states() - reduced.num_accepting());
      const Nba ref = reference_complement(reduced, bound);
      const Nba opt = complement(reduced, bound);

      expect_identical(ref, opt, "complement n=" + std::to_string(n));

      // Language-level checks: both are disjoint from L(nba) exactly
      // (product-emptiness), and agree with ¬L(nba) on the word corpus.
      EXPECT_TRUE(intersect(opt, reduced).is_empty());
      for (const auto& w : corpus) {
        EXPECT_EQ(opt.accepts(w), !reduced.accepts(w));
      }
    }
  }
  EXPECT_GE(done, 200);
}

TEST(KernelEquivalence, TriviallyDeadClosureStartsInTheSink) {
  // A 1-state ACCEPTING automaton with no transitions has L = ∅, so even the
  // empty prefix is bad. The seed's initial-state branch misrouted this
  // shape to a live initial subset, wrongly accepting the empty prefix.
  Nba dead(Alphabet::binary(), 1, 0);
  dead.set_accepting(0, true);
  ASSERT_TRUE(dead.is_trivially_dead());

  const DetSafety det = DetSafety::determinize(dead);
  EXPECT_EQ(det.initial(), det.sink());
  EXPECT_FALSE(det.accepts_prefix({}));
  EXPECT_FALSE(det.accepts_prefix({0}));

  // Through from_nba the closure canonicalizes first; the result must agree.
  const DetSafety via_closure = DetSafety::from_nba(dead);
  EXPECT_EQ(via_closure.initial(), via_closure.sink());
  EXPECT_FALSE(via_closure.accepts_prefix({}));
}

TEST(KernelEquivalence, IsTriviallyDeadMatchesTheReplacedIdiom) {
  std::mt19937 rng = qc::make_rng("kernel_equivalence.trivially_dead");
  RandomNbaConfig config;
  config.num_states = 4;
  config.alphabet_size = 2;
  for (int rep = 0; rep < 50; ++rep) {
    const Nba nba = random_nba(config, rng);
    EXPECT_EQ(nba.is_trivially_dead(), nba.is_empty() && nba.num_transitions() == 0);
  }
  EXPECT_TRUE(Nba::empty_language(Alphabet::binary()).is_trivially_dead());
  EXPECT_FALSE(Nba::universal(Alphabet::binary()).is_trivially_dead());
}

}  // namespace
}  // namespace slat::buchi
