// Machine closure (Abadi–Lamport), the practical face of Theorem 6: the
// decomposition's safety part never over-constrains — lcl(S ∩ L) = S.
#include <gtest/gtest.h>

#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace slat::buchi {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

class MachineClosureFixture : public ::testing::Test {
 protected:
  ltl::LtlArena arena{Alphabet::binary()};

  Nba nba(const char* text) { return ltl::to_nba(arena, *arena.parse(text)); }
};

TEST_F(MachineClosureFixture, DecompositionsAreMachineClosed) {
  // Theorem 6: the canonical decomposition uses the STRONGEST safety part,
  // so the pair (B_S, B_L) is machine closed.
  for (const char* text :
       {"a & F !a", "G a", "G F a", "a U b", "G (a -> X !a) & G F a"}) {
    const BuchiDecomposition d = decompose(nba(text));
    EXPECT_TRUE(is_machine_closed(d.safety, d.liveness)) << text;
  }
}

TEST_F(MachineClosureFixture, OverConstrainedPairsAreNot) {
  // S = "first symbol a" with L = FG b: lcl(S ∩ L) = S, machine closed.
  // But S = Σ^ω with L = G a: lcl(Σ^ω ∩ G a) = G a ≠ Σ^ω — the liveness
  // part smuggles in a safety constraint, so the pair is NOT machine closed.
  EXPECT_TRUE(is_machine_closed(nba("a"), nba("F G b")));
  EXPECT_FALSE(is_machine_closed(nba("true"), nba("G a")));
  // Classic: S = G(req -> eventually...) style mix-ups. Here: S = G a with
  // L = "b eventually": S ∩ L = ∅, whose closure is ∅ ≠ S.
  EXPECT_FALSE(is_machine_closed(nba("G a"), nba("F b")));
}

TEST_F(MachineClosureFixture, RandomDecompositionsAreMachineClosed) {
  std::mt19937 rng(139);
  RandomNbaConfig config;
  config.num_states = 4;
  for (int i = 0; i < 40; ++i) {
    const Nba spec = random_nba(config, rng);
    const BuchiDecomposition d = decompose(spec);
    EXPECT_TRUE(is_machine_closed(d.safety, d.liveness)) << i;
  }
}

TEST_F(MachineClosureFixture, MachineClosedPairStillNeedsTheRightSafety) {
  // Using a WEAKER safety part than the closure keeps the intersection
  // identity but can break machine closure. Spec: p3 = a ∧ F¬a; the weaker
  // safety part Σ^ω with L = p3 itself: lcl(p3) = "first a" ≠ Σ^ω.
  const Nba p3 = nba("a & F !a");
  EXPECT_FALSE(is_machine_closed(nba("true"), p3));
  // Whereas the canonical pair is machine closed.
  const BuchiDecomposition d = decompose(p3);
  EXPECT_TRUE(is_machine_closed(d.safety, d.liveness));
}

TEST_F(MachineClosureFixture, CosafetyBasics) {
  EXPECT_TRUE(is_cosafety(nba("F a")));
  EXPECT_TRUE(is_cosafety(nba("a U b")));
  EXPECT_FALSE(is_cosafety(nba("G a")));
  EXPECT_FALSE(is_cosafety(nba("G F a")));
  // true and false are both safety AND co-safety.
  EXPECT_TRUE(is_cosafety(nba("true")));
  EXPECT_TRUE(is_cosafety(nba("false")));
  // The finite-word-determined property "first symbol a" is both, too.
  EXPECT_TRUE(is_cosafety(nba("a")));
  EXPECT_TRUE(is_safety(nba("a")));
}

TEST_F(MachineClosureFixture, DetSafetyEquivalenceViaMachineClosureApi) {
  // is_machine_closed(S, Σ^ω) ⟺ lcl(S) = lcl(S): trivially true — a
  // smoke test that the equivalence core treats identical inputs sanely.
  for (const char* text : {"G a", "a", "a & F !a"}) {
    EXPECT_TRUE(is_machine_closed(nba(text), nba("true"))) << text;
  }
}

}  // namespace
}  // namespace slat::buchi
