#include "buchi/nba.hpp"

#include <gtest/gtest.h>

#include "buchi/random.hpp"

namespace slat::buchi {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

// L = G F a (infinitely many a's): deterministic, accept after each a.
Nba make_gfa() {
  Nba nba(Alphabet::binary(), 2, 0);
  nba.add_transition(0, kA, 1);
  nba.add_transition(0, kB, 0);
  nba.add_transition(1, kA, 1);
  nba.add_transition(1, kB, 0);
  nba.set_accepting(1, true);
  return nba;
}

// L = F G b (finitely many a's): guess the all-b tail.
Nba make_fgb() {
  Nba nba(Alphabet::binary(), 2, 0);
  nba.add_transition(0, kA, 0);
  nba.add_transition(0, kB, 0);
  nba.add_transition(0, kB, 1);
  nba.add_transition(1, kB, 1);
  nba.set_accepting(1, true);
  return nba;
}

// L = a Σ^ω (first symbol is a).
Nba make_first_a() {
  Nba nba(Alphabet::binary(), 2, 0);
  nba.add_transition(0, kA, 1);
  nba.add_transition(1, kA, 1);
  nba.add_transition(1, kB, 1);
  nba.set_accepting(1, true);
  return nba;
}

// L = G a = { a^ω }.
Nba make_ga() {
  Nba nba(Alphabet::binary(), 1, 0);
  nba.add_transition(0, kA, 0);
  nba.set_accepting(0, true);
  return nba;
}

TEST(Nba, UniversalAndEmptyLanguage) {
  const Nba universal = Nba::universal(Alphabet::binary());
  const Nba empty = Nba::empty_language(Alphabet::binary());
  EXPECT_FALSE(universal.is_empty());
  EXPECT_TRUE(empty.is_empty());
  for (const auto& w : words::enumerate_up_words(2, 2, 2)) {
    EXPECT_TRUE(universal.accepts(w));
    EXPECT_FALSE(empty.accepts(w));
  }
}

TEST(Nba, MembershipGFa) {
  const Nba nba = make_gfa();
  EXPECT_TRUE(nba.accepts(UpWord::constant(kA)));
  EXPECT_TRUE(nba.accepts(UpWord({}, {kA, kB})));
  EXPECT_TRUE(nba.accepts(UpWord({kB, kB, kB}, {kA})));
  EXPECT_FALSE(nba.accepts(UpWord::constant(kB)));
  EXPECT_FALSE(nba.accepts(UpWord({kA, kA, kA}, {kB})));
}

TEST(Nba, MembershipFGb) {
  const Nba nba = make_fgb();
  EXPECT_TRUE(nba.accepts(UpWord::constant(kB)));
  EXPECT_TRUE(nba.accepts(UpWord({kA, kA}, {kB})));
  EXPECT_FALSE(nba.accepts(UpWord::constant(kA)));
  EXPECT_FALSE(nba.accepts(UpWord({}, {kA, kB})));
}

TEST(Nba, MembershipFirstA) {
  const Nba nba = make_first_a();
  EXPECT_TRUE(nba.accepts(UpWord({kA}, {kB})));
  EXPECT_TRUE(nba.accepts(UpWord::constant(kA)));
  EXPECT_FALSE(nba.accepts(UpWord({kB}, {kA})));
}

TEST(Nba, GFaAndFGbAreDisjointAndCoverNothingTwice) {
  // GFa ∩ FGb = ∅ (infinitely many a's contradicts finitely many a's).
  const Nba product = intersect(make_gfa(), make_fgb());
  EXPECT_TRUE(product.is_empty());
}

TEST(Nba, IntersectionSemanticsOnCorpus) {
  const Nba lhs = make_first_a();
  const Nba rhs = make_gfa();
  const Nba both = intersect(lhs, rhs);
  for (const auto& w : words::enumerate_up_words(2, 3, 3)) {
    EXPECT_EQ(both.accepts(w), lhs.accepts(w) && rhs.accepts(w)) << w.to_string(lhs.alphabet());
  }
}

TEST(Nba, UnionSemanticsOnCorpus) {
  const Nba lhs = make_ga();
  const Nba rhs = make_fgb();
  const Nba either = unite(lhs, rhs);
  for (const auto& w : words::enumerate_up_words(2, 3, 3)) {
    EXPECT_EQ(either.accepts(w), lhs.accepts(w) || rhs.accepts(w)) << w.to_string(lhs.alphabet());
  }
}

TEST(Nba, FindAcceptedWordRoundTrips) {
  for (const Nba& nba : {make_gfa(), make_fgb(), make_first_a(), make_ga()}) {
    const auto witness = nba.find_accepted_word();
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(nba.accepts(*witness));
  }
  EXPECT_FALSE(Nba::empty_language(Alphabet::binary()).find_accepted_word().has_value());
}

TEST(Nba, FindAcceptedWordRoundTripsOnRandomAutomata) {
  std::mt19937 rng(11);
  RandomNbaConfig config;
  config.num_states = 5;
  int nonempty_count = 0;
  for (int i = 0; i < 200; ++i) {
    const Nba nba = random_nba(config, rng);
    const auto witness = nba.find_accepted_word();
    EXPECT_EQ(witness.has_value(), !nba.is_empty());
    if (witness) {
      ++nonempty_count;
      EXPECT_TRUE(nba.accepts(*witness));
    }
  }
  EXPECT_GT(nonempty_count, 20);  // the generator is not degenerate
}

TEST(Nba, TrimPreservesLanguage) {
  std::mt19937 rng(23);
  RandomNbaConfig config;
  config.num_states = 5;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 50; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba trimmed = nba.trim();
    EXPECT_LE(trimmed.num_states(), nba.num_states());
    for (const auto& w : corpus) {
      EXPECT_EQ(nba.accepts(w), trimmed.accepts(w));
    }
  }
}

TEST(Nba, HasRunOnPrefix) {
  const Nba nba = make_ga();  // only a^ω, runs exist on a^k
  EXPECT_TRUE(nba.has_run_on_prefix({}));
  EXPECT_TRUE(nba.has_run_on_prefix({kA, kA}));
  EXPECT_FALSE(nba.has_run_on_prefix({kA, kB}));
}

TEST(Nba, StatesWithNonemptyLanguage) {
  // State 2 is a dead end; states 0, 1 can reach the accepting cycle.
  Nba nba(Alphabet::binary(), 3, 0);
  nba.add_transition(0, kA, 1);
  nba.add_transition(1, kA, 1);
  nba.add_transition(0, kB, 2);
  nba.set_accepting(1, true);
  const auto nonempty = nba.states_with_nonempty_language();
  EXPECT_TRUE(nonempty[0]);
  EXPECT_TRUE(nonempty[1]);
  EXPECT_FALSE(nonempty[2]);
}

TEST(Nba, AcceptingRequiresCycleNotJustVisit) {
  // Accepting state reachable but not on any cycle: language empty.
  Nba nba(Alphabet::binary(), 2, 0);
  nba.add_transition(0, kA, 1);
  nba.set_accepting(1, true);
  EXPECT_TRUE(nba.is_empty());
}

TEST(Nba, SelfLoopCountsAsCycle) {
  Nba nba(Alphabet::binary(), 1, 0);
  nba.add_transition(0, kB, 0);
  nba.set_accepting(0, true);
  EXPECT_FALSE(nba.is_empty());
  EXPECT_TRUE(nba.accepts(UpWord::constant(kB)));
}

}  // namespace
}  // namespace slat::buchi
