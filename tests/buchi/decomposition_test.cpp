// The §2.4 decomposition: L(B) = L(B_S) ∩ L(B_L) with B_S safe and B_L live.
#include "buchi/safety.hpp"

#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/random.hpp"

namespace slat::buchi {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

Nba make_p3() {
  Nba nba(Alphabet::binary(), 3, 0);
  nba.add_transition(0, kA, 1);
  nba.add_transition(1, kA, 1);
  nba.add_transition(1, kB, 2);
  nba.add_transition(2, kA, 2);
  nba.add_transition(2, kB, 2);
  nba.set_accepting(2, true);
  return nba;
}

TEST(BuchiDecomposition, PartsHaveTheRightCharacters) {
  std::mt19937 rng(61);
  RandomNbaConfig config;
  config.num_states = 4;
  for (int i = 0; i < 40; ++i) {
    const Nba nba = random_nba(config, rng);
    const BuchiDecomposition d = decompose(nba);
    // The safety part is the deterministic closure: safe by construction
    // (checked exactly through complementation) and the liveness part is
    // live (universality of its closure).
    EXPECT_TRUE(is_safety(d.safety)) << i;
    EXPECT_TRUE(is_liveness(d.liveness)) << i;
  }
}

TEST(BuchiDecomposition, IntersectionRecoversTheLanguageOnCorpus) {
  std::mt19937 rng(67);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 80; ++i) {
    const Nba nba = random_nba(config, rng);
    const BuchiDecomposition d = decompose(nba);
    const Nba meet = intersect(d.safety, d.liveness);
    for (const auto& w : corpus) {
      ASSERT_EQ(meet.accepts(w), nba.accepts(w))
          << "iteration " << i << " word " << w.to_string(nba.alphabet());
    }
  }
}

TEST(BuchiDecomposition, IntersectionRecoversTheLanguageExactly) {
  // Exact one-sided check: L_S ∩ L_L ⊆ L via complementation of the SMALL
  // original automaton (the other inclusion holds by construction: L ⊆ lcl L
  // and L ⊆ L ∪ X, and is additionally corpus-checked above).
  std::mt19937 rng(71);
  RandomNbaConfig config;
  config.num_states = 3;
  for (int i = 0; i < 10; ++i) {
    const Nba nba = random_nba(config, rng);
    const BuchiDecomposition d = decompose(nba);
    EXPECT_TRUE(is_subset(intersect(d.safety, d.liveness), nba)) << i;
  }
}

TEST(BuchiDecomposition, P3DecomposesIntoP1AndLiveness) {
  const Nba p3 = make_p3();
  const BuchiDecomposition d = decompose(p3);
  // Safety part = first symbol a.
  EXPECT_TRUE(d.safety.accepts(UpWord::constant(kA)));
  EXPECT_FALSE(d.safety.accepts(UpWord::constant(kB)));
  // Liveness part contains p3 itself plus everything outside the closure.
  EXPECT_TRUE(d.liveness.accepts(UpWord({kA}, {kB})));
  EXPECT_TRUE(d.liveness.accepts(UpWord::constant(kB)));  // outside closure
  EXPECT_FALSE(d.liveness.accepts(UpWord::constant(kA))); // in closure, not p3
  EXPECT_TRUE(is_liveness(d.liveness));
}

TEST(Classify, RemExamplesByHand) {
  // Σ^ω: both safety and liveness.
  EXPECT_EQ(classify(Nba::universal(Alphabet::binary())),
            SafetyClass::kSafetyAndLiveness);
  // ∅: safety only.
  EXPECT_EQ(classify(Nba::empty_language(Alphabet::binary())), SafetyClass::kSafety);
  // p3: neither.
  EXPECT_EQ(classify(make_p3()), SafetyClass::kNeither);
  // GFa: liveness.
  Nba gfa(Alphabet::binary(), 2, 0);
  gfa.add_transition(0, kA, 1);
  gfa.add_transition(0, kB, 0);
  gfa.add_transition(1, kA, 1);
  gfa.add_transition(1, kB, 0);
  gfa.set_accepting(1, true);
  EXPECT_EQ(classify(gfa), SafetyClass::kLiveness);
  // Ga: safety.
  Nba ga(Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  EXPECT_EQ(classify(ga), SafetyClass::kSafety);
}

TEST(Classify, SafetyClassNames) {
  EXPECT_STREQ(to_string(SafetyClass::kSafety), "safety");
  EXPECT_STREQ(to_string(SafetyClass::kLiveness), "liveness");
  EXPECT_STREQ(to_string(SafetyClass::kNeither), "neither");
  EXPECT_STREQ(to_string(SafetyClass::kSafetyAndLiveness), "safety+liveness");
}

TEST(BuchiDecomposition, SafetyPartIsTheClosure) {
  // L(B_S) = lcl(L(B)): exact equivalence against the closure automaton.
  std::mt19937 rng(73);
  RandomNbaConfig config;
  config.num_states = 3;
  for (int i = 0; i < 10; ++i) {
    const Nba nba = random_nba(config, rng);
    const BuchiDecomposition d = decompose(nba);
    EXPECT_TRUE(is_equivalent(d.safety, safety_closure(nba))) << i;
  }
}

}  // namespace
}  // namespace slat::buchi
