// Bisimulation-quotient reduction: language preservation and effectiveness
// on tableau-produced automata.
#include <gtest/gtest.h>

#include "buchi/language.hpp"
#include "buchi/random.hpp"
#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace slat::buchi {
namespace {

TEST(Reduce, PreservesLanguageOnRandomAutomata) {
  std::mt19937 rng(149);
  RandomNbaConfig config;
  config.num_states = 6;
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  for (int i = 0; i < 120; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba reduced = nba.reduce();
    EXPECT_LE(reduced.num_states(), std::max(1, nba.num_states()));
    for (const auto& w : corpus) {
      ASSERT_EQ(nba.accepts(w), reduced.accepts(w)) << i;
    }
  }
}

TEST(Reduce, PreservesLanguageExactlyOnSmallAutomata) {
  std::mt19937 rng(151);
  RandomNbaConfig config;
  config.num_states = 3;
  for (int i = 0; i < 10; ++i) {
    const Nba nba = random_nba(config, rng);
    EXPECT_TRUE(is_equivalent(nba, nba.reduce())) << i;
  }
}

TEST(Reduce, ShrinksTableauOutputs) {
  ltl::LtlArena arena(words::Alphabet::binary());
  int shrunk = 0;
  for (const char* text :
       {"(a U b) & F a", "G (a -> F b)", "F a | F b", "(a U b) | (b U a)"}) {
    const Nba nba = ltl::to_nba(arena, *arena.parse(text));
    const Nba reduced = nba.reduce();
    EXPECT_LE(reduced.num_states(), nba.num_states()) << text;
    if (reduced.num_states() < nba.num_states()) ++shrunk;
    // Language unchanged on the corpus.
    for (const auto& w : words::enumerate_up_words(2, 2, 3)) {
      EXPECT_EQ(nba.accepts(w), reduced.accepts(w)) << text;
    }
  }
  EXPECT_GE(shrunk, 2);  // GPVW output genuinely has bisimilar duplicates
}

TEST(Reduce, IdempotentAndStableOnCanonicalAutomata) {
  const Nba universal = Nba::universal(Alphabet::binary());
  EXPECT_EQ(universal.reduce().num_states(), 1);
  const Nba empty = Nba::empty_language(Alphabet::binary());
  EXPECT_EQ(empty.reduce().num_states(), 1);
  // Twice-reduced equals once-reduced in size.
  std::mt19937 rng(157);
  RandomNbaConfig config;
  config.num_states = 6;
  for (int i = 0; i < 30; ++i) {
    const Nba once = random_nba(config, rng).reduce();
    EXPECT_EQ(once.reduce().num_states(), once.num_states()) << i;
  }
}

TEST(Reduce, AllAcceptingStatesRegression) {
  // Shrunk by fuzz_slat from a buchi.inclusion.differential failure
  // (SLAT_SEED replay, then automatic shrinking). With every state
  // accepting, the seed partition gave every state class id 1, so the
  // stability test compared the signature count against a phantom class 0
  // and stopped refinement one round early — merging states 0 and 1 below
  // even though only state 1 can be trapped by "aabb": state 2 has no
  // b-successor, so the word aabb·a^ω kills every run.
  Nba nba(Alphabet::binary(), 3, 0);
  for (State q = 0; q < 3; ++q) nba.set_accepting(q, true);
  nba.add_transition(0, 0, 1);
  nba.add_transition(0, 1, 2);
  nba.add_transition(1, 0, 0);
  nba.add_transition(1, 0, 2);
  nba.add_transition(1, 1, 0);
  nba.add_transition(1, 1, 1);
  nba.add_transition(2, 0, 0);
  nba.add_transition(2, 0, 1);
  nba.add_transition(2, 0, 2);
  const words::UpWord separator({0, 0, 1, 1}, {0});
  ASSERT_FALSE(nba.accepts(separator));
  const Nba reduced = nba.reduce();
  EXPECT_FALSE(reduced.accepts(separator));
  EXPECT_TRUE(is_equivalent(nba, reduced));
}

TEST(Reduce, MergesObviouslyDuplicatedStates) {
  // Two identical accepting states looping on a: they must merge.
  Nba nba(Alphabet::binary(), 3, 0);
  nba.add_transition(0, 0, 1);
  nba.add_transition(0, 0, 2);
  nba.add_transition(1, 0, 1);
  nba.add_transition(2, 0, 2);
  nba.set_accepting(1, true);
  nba.set_accepting(2, true);
  EXPECT_EQ(nba.reduce().num_states(), 2);
}

}  // namespace
}  // namespace slat::buchi
