// The linear-time closure lcl on Büchi automata (§2.4): the automaton
// construction is differentially tested against a direct semantic oracle
// for lcl, and the DetSafety subset construction against both.
#include "buchi/safety.hpp"

#include <gtest/gtest.h>

#include "buchi/random.hpp"

namespace slat::buchi {
namespace {

constexpr words::Sym kA = 0;
constexpr words::Sym kB = 1;

// Direct semantic oracle: w ∈ lcl(L(B)) iff every finite prefix of w can be
// extended to a word of L(B), i.e. iff the subset reached on each prefix
// contains a state with non-empty residual language. The subset/lasso pair
// cycles within 2^|Q| periods, so a bounded scan is exact.
bool in_lcl(const Nba& nba, const UpWord& w) {
  const auto nonempty = nba.states_with_nonempty_language();
  std::vector<bool> current(nba.num_states(), false);
  current[nba.initial()] = true;
  const std::size_t bound =
      w.prefix_size() + w.period_size() * ((1u << nba.num_states()) + 1);
  for (std::size_t i = 0;; ++i) {
    bool extendable = false;
    for (State q = 0; q < nba.num_states(); ++q) {
      if (current[q] && nonempty[q]) {
        extendable = true;
        break;
      }
    }
    if (!extendable) return false;
    if (i >= bound) return true;
    std::vector<bool> next(nba.num_states(), false);
    for (State q = 0; q < nba.num_states(); ++q) {
      if (!current[q]) continue;
      for (State succ : nba.successors(q, w.at(i))) next[succ] = true;
    }
    current = std::move(next);
  }
}

Nba make_p3() {
  // p3 = a ∧ F¬a: first symbol a, some later symbol b — the paper's
  // "neither" example. lcl(p3) = p1 (first symbol a).
  Nba nba(Alphabet::binary(), 3, 0);
  nba.add_transition(0, kA, 1);   // consume the leading a
  nba.add_transition(1, kA, 1);   // wait for a b
  nba.add_transition(1, kB, 2);
  nba.add_transition(2, kA, 2);
  nba.add_transition(2, kB, 2);
  nba.set_accepting(2, true);
  return nba;
}

TEST(SafetyClosure, MatchesSemanticOracleOnHandAutomata) {
  const auto corpus = words::enumerate_up_words(2, 3, 3);
  const Nba p3 = make_p3();
  const Nba closure = safety_closure(p3);
  for (const auto& w : corpus) {
    EXPECT_EQ(closure.accepts(w), in_lcl(p3, w)) << w.to_string(p3.alphabet());
  }
}

TEST(SafetyClosure, ClosureOfP3IsP1) {
  // lcl(a ∧ F¬a) = "first symbol a".
  const Nba closure = safety_closure(make_p3());
  EXPECT_TRUE(closure.accepts(UpWord::constant(kA)));
  EXPECT_TRUE(closure.accepts(UpWord({kA}, {kB})));
  EXPECT_FALSE(closure.accepts(UpWord::constant(kB)));
  EXPECT_FALSE(closure.accepts(UpWord({kB}, {kA})));
}

TEST(SafetyClosure, MatchesSemanticOracleOnRandomAutomata) {
  std::mt19937 rng(31);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 120; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba closure = safety_closure(nba);
    for (const auto& w : corpus) {
      ASSERT_EQ(closure.accepts(w), in_lcl(nba, w))
          << "iteration " << i << " word " << w.to_string(nba.alphabet());
    }
  }
}

TEST(SafetyClosure, IsExtensive) {
  std::mt19937 rng(37);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 60; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba closure = safety_closure(nba);
    for (const auto& w : corpus) {
      if (nba.accepts(w)) {
        EXPECT_TRUE(closure.accepts(w));
      }
    }
  }
}

TEST(SafetyClosure, IsIdempotent) {
  std::mt19937 rng(41);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 60; ++i) {
    const Nba nba = random_nba(config, rng);
    const Nba once = safety_closure(nba);
    const Nba twice = safety_closure(once);
    for (const auto& w : corpus) {
      EXPECT_EQ(once.accepts(w), twice.accepts(w));
    }
  }
}

TEST(SafetyClosure, EmptyLanguageStaysEmpty) {
  const Nba empty = Nba::empty_language(Alphabet::binary());
  EXPECT_TRUE(safety_closure(empty).is_empty());
}

TEST(DetSafety, AgreesWithClosureAutomaton) {
  std::mt19937 rng(43);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 80; ++i) {
    const Nba nba = random_nba(config, rng);
    const DetSafety det = DetSafety::from_nba(nba);
    for (const auto& w : corpus) {
      ASSERT_EQ(det.accepts(w), in_lcl(nba, w)) << i;
    }
  }
}

TEST(DetSafety, ComplementIsExactComplementOfClosure) {
  std::mt19937 rng(47);
  RandomNbaConfig config;
  config.num_states = 4;
  const auto corpus = words::enumerate_up_words(2, 2, 3);
  for (int i = 0; i < 80; ++i) {
    const Nba nba = random_nba(config, rng);
    const DetSafety det = DetSafety::from_nba(nba);
    const Nba complement = det.complement_nba();
    for (const auto& w : corpus) {
      ASSERT_NE(complement.accepts(w), det.accepts(w)) << i;
    }
  }
}

TEST(DetSafety, UniversalityDetectsLiveness) {
  // GFa is a liveness property: lcl = Σ^ω.
  Nba gfa(Alphabet::binary(), 2, 0);
  gfa.add_transition(0, kA, 1);
  gfa.add_transition(0, kB, 0);
  gfa.add_transition(1, kA, 1);
  gfa.add_transition(1, kB, 0);
  gfa.set_accepting(1, true);
  EXPECT_TRUE(DetSafety::from_nba(gfa).is_universal());
  EXPECT_TRUE(is_liveness(gfa));
  // Ga is not: lcl(Ga) = Ga ≠ Σ^ω.
  Nba ga(Alphabet::binary(), 1, 0);
  ga.add_transition(0, kA, 0);
  ga.set_accepting(0, true);
  EXPECT_FALSE(DetSafety::from_nba(ga).is_universal());
  EXPECT_TRUE(is_safety(ga));
}

TEST(DetSafety, AcceptsPrefixMatchesSafeRegion) {
  const DetSafety det = DetSafety::from_nba(make_p3());
  EXPECT_TRUE(det.accepts_prefix({}));
  EXPECT_TRUE(det.accepts_prefix({kA}));
  EXPECT_TRUE(det.accepts_prefix({kA, kB, kA}));
  EXPECT_FALSE(det.accepts_prefix({kB}));
}

}  // namespace
}  // namespace slat::buchi
