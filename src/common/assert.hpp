// Lightweight contract checking used across the library.
//
// SLAT_ASSERT guards internal invariants and caller preconditions. It is
// active in every build type: violating a precondition of this library is a
// programming error, and the cost of the checks is negligible next to the
// combinatorial algorithms they protect.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace slat {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "slat: assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace slat

#define SLAT_ASSERT(expr)                                          \
  do {                                                             \
    if (!(expr)) ::slat::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define SLAT_ASSERT_MSG(expr, msg)                                \
  do {                                                            \
    if (!(expr)) ::slat::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
