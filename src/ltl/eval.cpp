#include "ltl/eval.hpp"

#include <map>

#include "common/assert.hpp"

namespace slat::ltl {

namespace {

class Evaluator {
 public:
  Evaluator(const LtlArena& arena, const UpWord& w)
      : arena_(arena),
        w_(w),
        positions_(static_cast<int>(w.prefix_size() + w.period_size())) {}

  // Truth of f at each of the `positions_` structural positions.
  const std::vector<bool>& eval(FormulaId f) {
    auto it = cache_.find(f);
    if (it != cache_.end()) return it->second;
    std::vector<bool> result(positions_, false);
    const FormulaNode& n = arena_.node(f);
    switch (n.op) {
      case Op::kTrue:
        result.assign(positions_, true);
        break;
      case Op::kFalse:
        break;
      case Op::kAtom:
        // One-hot letter equality on explicit alphabets, AP bit test on
        // AP-backed ones — same predicate the tableau literal loop uses.
        for (int i = 0; i < positions_; ++i) {
          result[i] = arena_.alphabet().letter_satisfies_atom(w_.at(i), n.atom);
        }
        break;
      case Op::kNot: {
        const auto& sub = eval(n.lhs);
        for (int i = 0; i < positions_; ++i) result[i] = !sub[i];
        break;
      }
      case Op::kAnd: {
        const auto lhs = eval(n.lhs);  // copy: the cache may rehash below
        const auto& rhs = eval(n.rhs);
        for (int i = 0; i < positions_; ++i) result[i] = lhs[i] && rhs[i];
        break;
      }
      case Op::kOr: {
        const auto lhs = eval(n.lhs);
        const auto& rhs = eval(n.rhs);
        for (int i = 0; i < positions_; ++i) result[i] = lhs[i] || rhs[i];
        break;
      }
      case Op::kImplies: {
        const auto lhs = eval(n.lhs);
        const auto& rhs = eval(n.rhs);
        for (int i = 0; i < positions_; ++i) result[i] = !lhs[i] || rhs[i];
        break;
      }
      case Op::kNext: {
        const auto& sub = eval(n.lhs);
        for (int i = 0; i < positions_; ++i) result[i] = sub[next(i)];
        break;
      }
      case Op::kEventually: {
        // Least fixpoint of result[i] = sub[i] ∨ result[next(i)].
        const auto& sub = eval(n.lhs);
        result = least_fixpoint([&](const std::vector<bool>& prev, int i) {
          return sub[i] || prev[next(i)];
        });
        break;
      }
      case Op::kAlways: {
        const auto& sub = eval(n.lhs);
        result = greatest_fixpoint([&](const std::vector<bool>& prev, int i) {
          return sub[i] && prev[next(i)];
        });
        break;
      }
      case Op::kUntil: {
        const auto lhs = eval(n.lhs);
        const auto& rhs = eval(n.rhs);
        result = least_fixpoint([&](const std::vector<bool>& prev, int i) {
          return rhs[i] || (lhs[i] && prev[next(i)]);
        });
        break;
      }
      case Op::kRelease: {
        const auto lhs = eval(n.lhs);
        const auto& rhs = eval(n.rhs);
        result = greatest_fixpoint([&](const std::vector<bool>& prev, int i) {
          return rhs[i] && (lhs[i] || prev[next(i)]);
        });
        break;
      }
    }
    return cache_.emplace(f, std::move(result)).first->second;
  }

 private:
  int next(int i) const {
    return i + 1 < positions_ ? i + 1 : static_cast<int>(w_.prefix_size());
  }

  template <typename Step>
  std::vector<bool> least_fixpoint(const Step& step) {
    std::vector<bool> current(positions_, false);
    for (bool changed = true; changed;) {
      changed = false;
      for (int i = positions_ - 1; i >= 0; --i) {
        const bool value = step(current, i);
        if (value != current[i]) {
          current[i] = value;
          changed = true;
        }
      }
    }
    return current;
  }

  template <typename Step>
  std::vector<bool> greatest_fixpoint(const Step& step) {
    std::vector<bool> current(positions_, true);
    for (bool changed = true; changed;) {
      changed = false;
      for (int i = positions_ - 1; i >= 0; --i) {
        const bool value = step(current, i);
        if (value != current[i]) {
          current[i] = value;
          changed = true;
        }
      }
    }
    return current;
  }

  const LtlArena& arena_;
  const UpWord& w_;
  int positions_;
  std::map<FormulaId, std::vector<bool>> cache_;
};

}  // namespace

bool holds(const LtlArena& arena, FormulaId f, const UpWord& w) {
  Evaluator evaluator(arena, w);
  const auto& table = evaluator.eval(f);
  SLAT_ASSERT(!table.empty());
  return table[0];
}

std::vector<bool> truth_table(const LtlArena& arena, FormulaId f, const UpWord& w) {
  Evaluator evaluator(arena, w);
  return evaluator.eval(f);
}

}  // namespace slat::ltl
