#include "ltl/rem.hpp"

namespace slat::ltl {

const std::vector<RemExample>& rem_examples() {
  using buchi::SafetyClass;
  static const std::vector<RemExample> examples = {
      {"p0", "false (the empty property)", "false", SafetyClass::kSafety, "p0"},
      {"p1", "the first symbol is a", "a", SafetyClass::kSafety, "p1"},
      {"p2", "the first symbol differs from a", "!a", SafetyClass::kSafety, "p2"},
      {"p3", "first symbol a, and some symbol differs from a", "a & F !a",
       SafetyClass::kNeither, "p1"},
      {"p4", "the number of a's is finite", "F G !a", SafetyClass::kLiveness, "p6"},
      {"p5", "the number of a's is infinite", "G F a", SafetyClass::kLiveness, "p6"},
      {"p6", "true (every word)", "true", SafetyClass::kSafetyAndLiveness, "p6"},
  };
  return examples;
}

}  // namespace slat::ltl
