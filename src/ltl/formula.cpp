#include "ltl/formula.hpp"

#include <cctype>
#include <sstream>

#include "common/assert.hpp"

namespace slat::ltl {

LtlArena::LtlArena(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

FormulaId LtlArena::intern(FormulaNode node) {
  auto it = index_.find(node);
  if (it != index_.end()) return it->second;
  const FormulaId id = static_cast<FormulaId>(nodes_.size());
  nodes_.push_back(node);
  index_.emplace(node, id);
  return id;
}

const FormulaNode& LtlArena::node(FormulaId f) const {
  SLAT_ASSERT(f >= 0 && f < size());
  return nodes_[f];
}

FormulaId LtlArena::tru() { return intern({Op::kTrue}); }
FormulaId LtlArena::fls() { return intern({Op::kFalse}); }

FormulaId LtlArena::atom(Sym s) {
  // AP-backed alphabets index atoms by PROPOSITION, explicit ones by letter
  // (the seed one-hot convention) — Alphabet::atom_range is the contract.
  SLAT_ASSERT(s >= 0 && s < alphabet_.atom_range());
  return intern({Op::kAtom, s});
}

FormulaId LtlArena::atom(std::string_view name) {
  const auto s = alphabet_.atom_index_of(name);
  SLAT_ASSERT_MSG(s.has_value(), "atom name not in alphabet");
  return atom(*s);
}

FormulaId LtlArena::negation(FormulaId f) {
  const FormulaNode& n = node(f);
  if (n.op == Op::kTrue) return fls();
  if (n.op == Op::kFalse) return tru();
  if (n.op == Op::kNot) return n.lhs;
  return intern({Op::kNot, -1, f});
}

FormulaId LtlArena::conj(FormulaId lhs, FormulaId rhs) {
  if (node(lhs).op == Op::kTrue) return rhs;
  if (node(rhs).op == Op::kTrue) return lhs;
  if (node(lhs).op == Op::kFalse || node(rhs).op == Op::kFalse) return fls();
  if (lhs == rhs) return lhs;
  if (lhs > rhs) std::swap(lhs, rhs);  // commutative: canonical operand order
  return intern({Op::kAnd, -1, lhs, rhs});
}

FormulaId LtlArena::disj(FormulaId lhs, FormulaId rhs) {
  if (node(lhs).op == Op::kFalse) return rhs;
  if (node(rhs).op == Op::kFalse) return lhs;
  if (node(lhs).op == Op::kTrue || node(rhs).op == Op::kTrue) return tru();
  if (lhs == rhs) return lhs;
  if (lhs > rhs) std::swap(lhs, rhs);
  return intern({Op::kOr, -1, lhs, rhs});
}

FormulaId LtlArena::implies(FormulaId lhs, FormulaId rhs) {
  return intern({Op::kImplies, -1, lhs, rhs});
}

FormulaId LtlArena::next(FormulaId f) { return intern({Op::kNext, -1, f}); }

FormulaId LtlArena::eventually(FormulaId f) {
  if (node(f).op == Op::kTrue || node(f).op == Op::kFalse) return f;
  return intern({Op::kEventually, -1, f});
}

FormulaId LtlArena::always(FormulaId f) {
  if (node(f).op == Op::kTrue || node(f).op == Op::kFalse) return f;
  return intern({Op::kAlways, -1, f});
}

FormulaId LtlArena::until(FormulaId lhs, FormulaId rhs) {
  if (node(rhs).op == Op::kTrue || node(rhs).op == Op::kFalse) return rhs;
  return intern({Op::kUntil, -1, lhs, rhs});
}

FormulaId LtlArena::release(FormulaId lhs, FormulaId rhs) {
  if (node(rhs).op == Op::kTrue || node(rhs).op == Op::kFalse) return rhs;
  return intern({Op::kRelease, -1, lhs, rhs});
}

namespace {

// NNF with an explicit polarity; memoization is skipped (formulas are tiny
// and the arena dedups results anyway).
FormulaId nnf_rec(LtlArena& arena, FormulaId f, bool negated) {
  const FormulaNode n = arena.node(f);
  switch (n.op) {
    case Op::kTrue:
      return negated ? arena.fls() : arena.tru();
    case Op::kFalse:
      return negated ? arena.tru() : arena.fls();
    case Op::kAtom:
      return negated ? arena.negation(f) : f;
    case Op::kNot:
      return nnf_rec(arena, n.lhs, !negated);
    case Op::kAnd: {
      const FormulaId lhs = nnf_rec(arena, n.lhs, negated);
      const FormulaId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.disj(lhs, rhs) : arena.conj(lhs, rhs);
    }
    case Op::kOr: {
      const FormulaId lhs = nnf_rec(arena, n.lhs, negated);
      const FormulaId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.conj(lhs, rhs) : arena.disj(lhs, rhs);
    }
    case Op::kImplies:
      // φ → ψ = ¬φ ∨ ψ.
      return negated ? arena.conj(nnf_rec(arena, n.lhs, false), nnf_rec(arena, n.rhs, true))
                     : arena.disj(nnf_rec(arena, n.lhs, true), nnf_rec(arena, n.rhs, false));
    case Op::kNext:
      return arena.next(nnf_rec(arena, n.lhs, negated));
    case Op::kEventually:
      // F φ = true U φ;   ¬F φ = false R ¬φ (= G ¬φ).
      return negated ? arena.release(arena.fls(), nnf_rec(arena, n.lhs, true))
                     : arena.until(arena.tru(), nnf_rec(arena, n.lhs, false));
    case Op::kAlways:
      // G φ = false R φ;   ¬G φ = true U ¬φ.
      return negated ? arena.until(arena.tru(), nnf_rec(arena, n.lhs, true))
                     : arena.release(arena.fls(), nnf_rec(arena, n.lhs, false));
    case Op::kUntil: {
      const FormulaId lhs = nnf_rec(arena, n.lhs, negated);
      const FormulaId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.release(lhs, rhs) : arena.until(lhs, rhs);
    }
    case Op::kRelease: {
      const FormulaId lhs = nnf_rec(arena, n.lhs, negated);
      const FormulaId rhs = nnf_rec(arena, n.rhs, negated);
      return negated ? arena.until(lhs, rhs) : arena.release(lhs, rhs);
    }
  }
  SLAT_ASSERT_MSG(false, "unhandled op in nnf");
  return f;
}

}  // namespace

FormulaId LtlArena::nnf(FormulaId f) { return nnf_rec(*this, f, false); }

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Parser {
  LtlArena& arena;
  std::string_view text;
  std::size_t pos = 0;
  LtlArena::ParseError error{"", 0};
  bool failed = false;

  void skip_space() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool at_end() {
    skip_space();
    return pos >= text.size();
  }

  bool eat(char c) {
    skip_space();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool eat_word(std::string_view word) {
    skip_space();
    if (text.substr(pos, word.size()) == word) {
      // Keywords must not be glued to further identifier characters.
      const std::size_t after = pos + word.size();
      if (after < text.size() &&
          (std::isalnum(static_cast<unsigned char>(text[after])) || text[after] == '_')) {
        return false;
      }
      pos = after;
      return true;
    }
    return false;
  }

  std::optional<FormulaId> fail(std::string message) {
    if (!failed) {
      failed = true;
      error = {std::move(message), pos};
    }
    return std::nullopt;
  }

  // ident = [A-Za-z_][A-Za-z0-9_]*
  std::optional<std::string> ident() {
    skip_space();
    std::size_t start = pos;
    if (pos < text.size() &&
        (std::isalpha(static_cast<unsigned char>(text[pos])) || text[pos] == '_')) {
      ++pos;
      while (pos < text.size() && (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                                   text[pos] == '_')) {
        ++pos;
      }
      return std::string(text.substr(start, pos - start));
    }
    return std::nullopt;
  }

  // unary = '!'u | 'X'u | 'F'u | 'G'u | '(' implies ')' | true | false | atom
  std::optional<FormulaId> unary() {
    skip_space();
    if (eat('!')) {
      auto f = unary();
      return f ? std::optional(arena.negation(*f)) : std::nullopt;
    }
    if (eat_word("X")) {
      auto f = unary();
      return f ? std::optional(arena.next(*f)) : std::nullopt;
    }
    if (eat_word("F")) {
      auto f = unary();
      return f ? std::optional(arena.eventually(*f)) : std::nullopt;
    }
    if (eat_word("G")) {
      auto f = unary();
      return f ? std::optional(arena.always(*f)) : std::nullopt;
    }
    if (eat('(')) {
      auto f = implies_level();
      if (!f) return std::nullopt;
      if (!eat(')')) return fail("expected ')'");
      return f;
    }
    if (eat_word("true")) return arena.tru();
    if (eat_word("false")) return arena.fls();
    if (auto name = ident()) {
      if (auto s = arena.alphabet().atom_index_of(*name)) return arena.atom(*s);
      return fail("unknown atom '" + *name + "'");
    }
    return fail("expected a formula");
  }

  // until = unary (('U'|'R'|'W') until)?   — right associative
  std::optional<FormulaId> until_level() {
    auto lhs = unary();
    if (!lhs) return std::nullopt;
    if (eat_word("U")) {
      auto rhs = until_level();
      return rhs ? std::optional(arena.until(*lhs, *rhs)) : std::nullopt;
    }
    if (eat_word("R")) {
      auto rhs = until_level();
      return rhs ? std::optional(arena.release(*lhs, *rhs)) : std::nullopt;
    }
    if (eat_word("W")) {
      // Weak until, desugared to its Release form: a W b = b R (a ∨ b).
      auto rhs = until_level();
      return rhs ? std::optional(arena.release(*rhs, arena.disj(*lhs, *rhs)))
                 : std::nullopt;
    }
    return lhs;
  }

  std::optional<FormulaId> and_level() {
    auto lhs = until_level();
    if (!lhs) return std::nullopt;
    while (eat('&')) {
      auto rhs = until_level();
      if (!rhs) return std::nullopt;
      lhs = arena.conj(*lhs, *rhs);
    }
    return lhs;
  }

  std::optional<FormulaId> or_level() {
    auto lhs = and_level();
    if (!lhs) return std::nullopt;
    while (eat('|')) {
      auto rhs = and_level();
      if (!rhs) return std::nullopt;
      lhs = arena.disj(*lhs, *rhs);
    }
    return lhs;
  }

  // implies is right associative: a -> b -> c = a -> (b -> c).
  std::optional<FormulaId> implies_level() {
    auto lhs = or_level();
    if (!lhs) return std::nullopt;
    skip_space();
    if (pos + 1 < text.size() && text[pos] == '-' && text[pos + 1] == '>') {
      pos += 2;
      auto rhs = implies_level();
      if (!rhs) return std::nullopt;
      return arena.implies(*lhs, *rhs);
    }
    return lhs;
  }
};

}  // namespace

std::optional<FormulaId> LtlArena::parse(std::string_view text, ParseError* error) {
  Parser parser{*this, text};
  auto result = parser.implies_level();
  if (result && !parser.at_end()) {
    result = parser.fail("trailing input");
  }
  if (!result && error != nullptr) *error = parser.error;
  return result;
}

std::string LtlArena::to_string(FormulaId f) const {
  const FormulaNode& n = node(f);
  const auto paren = [&](FormulaId g) {
    const Op op = node(g).op;
    const bool atomic = op == Op::kTrue || op == Op::kFalse || op == Op::kAtom ||
                        op == Op::kNot || op == Op::kNext || op == Op::kEventually ||
                        op == Op::kAlways;
    return atomic ? to_string(g) : "(" + to_string(g) + ")";
  };
  switch (n.op) {
    case Op::kTrue:
      return "true";
    case Op::kFalse:
      return "false";
    case Op::kAtom:
      return alphabet_.atom_name(n.atom);
    case Op::kNot:
      return "!" + paren(n.lhs);
    case Op::kAnd:
      return paren(n.lhs) + " & " + paren(n.rhs);
    case Op::kOr:
      return paren(n.lhs) + " | " + paren(n.rhs);
    case Op::kImplies:
      return paren(n.lhs) + " -> " + paren(n.rhs);
    case Op::kNext:
      return "X " + paren(n.lhs);
    case Op::kEventually:
      return "F " + paren(n.lhs);
    case Op::kAlways:
      return "G " + paren(n.lhs);
    case Op::kUntil:
      return paren(n.lhs) + " U " + paren(n.rhs);
    case Op::kRelease:
      return paren(n.lhs) + " R " + paren(n.rhs);
  }
  return "?";
}

}  // namespace slat::ltl
