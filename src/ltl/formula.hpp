// Linear Temporal Logic formulas (paper §2.2–2.3).
//
// Formulas live in an interning arena: structurally equal subterms share one
// id, so formula sets (the GPVW tableau works on sets) are integer sets and
// structural equality is id equality.
//
// Atomic propositions depend on the alphabet flavor. Over an explicit
// alphabet they are letters: atom `a` holds at position i of a word w iff
// w[i] is the letter `a` — the convention of the paper's Rem examples ("the
// first symbol of t is a" = the atom a; "differs from a" = ¬a). Over an
// AP-backed alphabet (Alphabet::of_aps) atom j is proposition j: it holds
// iff bit j of the current valuation letter is set. Both route through
// Alphabet::letter_satisfies_atom, so the evaluator, the tableau and the
// symbolic cube backend agree by construction.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "words/alphabet.hpp"

namespace slat::ltl {

using words::Alphabet;
using words::Sym;

/// Index of a formula within its arena.
using FormulaId = int;

enum class Op : std::uint8_t {
  kTrue,
  kFalse,
  kAtom,        // letter s
  kNot,         // ¬φ
  kAnd,         // φ ∧ ψ
  kOr,          // φ ∨ ψ
  kImplies,     // φ → ψ
  kNext,        // X φ
  kEventually,  // F φ
  kAlways,      // G φ
  kUntil,       // φ U ψ
  kRelease,     // φ R ψ
};

/// One arena node. `atom` is meaningful for kAtom; `lhs` for unary and
/// binary operators; `rhs` for binary operators only.
struct FormulaNode {
  Op op;
  Sym atom = -1;
  FormulaId lhs = -1;
  FormulaId rhs = -1;

  auto operator<=>(const FormulaNode&) const = default;
};

/// Owning, interning store of formulas. Light algebraic simplifications
/// (constant folding, double negation, idempotent ∧/∨) are applied by the
/// constructors, which keeps tableau sizes sane without a separate pass.
class LtlArena {
 public:
  explicit LtlArena(Alphabet alphabet);

  const Alphabet& alphabet() const { return alphabet_; }

  FormulaId tru();
  FormulaId fls();
  FormulaId atom(Sym s);
  FormulaId atom(std::string_view name);
  FormulaId negation(FormulaId f);
  FormulaId conj(FormulaId lhs, FormulaId rhs);
  FormulaId disj(FormulaId lhs, FormulaId rhs);
  FormulaId implies(FormulaId lhs, FormulaId rhs);
  FormulaId next(FormulaId f);
  FormulaId eventually(FormulaId f);
  FormulaId always(FormulaId f);
  FormulaId until(FormulaId lhs, FormulaId rhs);
  FormulaId release(FormulaId lhs, FormulaId rhs);

  const FormulaNode& node(FormulaId f) const;
  int size() const { return static_cast<int>(nodes_.size()); }

  /// Negation normal form over the core ops {true, false, atom, ¬atom, ∧,
  /// ∨, X, U, R}: F φ becomes true U φ, G φ becomes false R φ, negations are
  /// pushed to the atoms. The translation and the tableau consume only NNF.
  FormulaId nnf(FormulaId f);

  /// Parser for the concrete syntax
  ///   φ ::= "true" | "false" | letter | "!"φ | "X"φ | "F"φ | "G"φ
  ///       | φ "&" φ | φ "|" φ | φ "->" φ | φ "U" φ | φ "R" φ | "(" φ ")"
  /// with precedence (tightest first): unary, U/R (right-assoc), &, |, ->.
  /// Letters are alphabet symbol names. Returns std::nullopt + message on
  /// syntax errors.
  struct ParseError {
    std::string message;
    std::size_t position;
  };
  std::optional<FormulaId> parse(std::string_view text, ParseError* error = nullptr);

  std::string to_string(FormulaId f) const;

 private:
  FormulaId intern(FormulaNode node);

  Alphabet alphabet_;
  std::vector<FormulaNode> nodes_;
  std::map<FormulaNode, FormulaId> index_;
};

}  // namespace slat::ltl
