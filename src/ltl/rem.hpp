// Martin Rem's example properties (paper §2.3), as LTL formulas over the
// binary alphabet {a, b} (b standing for "any symbol different from a").
//
//   p0: false        — safety (the empty property)
//   p1: a            — safety (first symbol is a)
//   p2: !a           — safety (first symbol differs from a)
//   p3: a & F !a     — neither (closure is p1)
//   p4: F G !a       — liveness (finitely many a's)
//   p5: G F a        — liveness (infinitely many a's)
//   p6: true         — safety AND liveness (Σ^ω)
#pragma once

#include <string>
#include <vector>

#include "buchi/safety.hpp"
#include "ltl/formula.hpp"

namespace slat::ltl {

struct RemExample {
  std::string name;        ///< p0..p6
  std::string description; ///< the paper's informal reading
  std::string formula;     ///< concrete syntax, parseable by LtlArena
  buchi::SafetyClass expected;  ///< the paper's classification
  /// The paper also names each closure: "p0"/"p1"/"p2"/"p6" are their own
  /// closures, lcl(p3) = p1, lcl(p4) = lcl(p5) = Σ^ω (= p6).
  std::string closure_name;
};

/// The seven examples, in paper order.
const std::vector<RemExample>& rem_examples();

}  // namespace slat::ltl
