// Exact LTL semantics on ultimately periodic words.
//
// An UP-word u·v^ω has only |u| + |v| distinct suffix classes, so the truth
// value of every subformula at every position is computable by fixpoint
// iteration over those positions. This evaluator is the ground-truth oracle
// against which the automaton pipeline (GPVW translation, closure,
// complementation) is differentially tested.
#pragma once

#include "ltl/formula.hpp"
#include "words/up_word.hpp"

namespace slat::ltl {

using words::UpWord;

/// Does w ⊨ f (at position 0)?
bool holds(const LtlArena& arena, FormulaId f, const UpWord& w);

/// Truth of f at every structural position of w: positions 0..p+k-1 where
/// p = |prefix|, k = |period| (position p+k-1 wraps to p).
std::vector<bool> truth_table(const LtlArena& arena, FormulaId f, const UpWord& w);

}  // namespace slat::ltl
