#include "ltl/syntactic.hpp"

#include <vector>

namespace slat::ltl {

namespace {

struct OpPresence {
  bool has_until = false;
  bool has_release = false;
};

OpPresence scan(const LtlArena& arena, FormulaId root) {
  OpPresence presence;
  std::vector<FormulaId> stack{root};
  std::vector<bool> seen(arena.size(), false);
  while (!stack.empty()) {
    const FormulaId f = stack.back();
    stack.pop_back();
    if (seen[f]) continue;
    seen[f] = true;
    const FormulaNode& n = arena.node(f);
    if (n.op == Op::kUntil) presence.has_until = true;
    if (n.op == Op::kRelease) presence.has_release = true;
    if (n.lhs >= 0) stack.push_back(n.lhs);
    if (n.rhs >= 0) stack.push_back(n.rhs);
  }
  return presence;
}

}  // namespace

SyntacticClass classify_syntactic(LtlArena& arena, FormulaId f) {
  const OpPresence presence = scan(arena, arena.nnf(f));
  if (!presence.has_until && !presence.has_release) return SyntacticClass::kBoth;
  if (!presence.has_until) return SyntacticClass::kSafety;
  if (!presence.has_release) return SyntacticClass::kCoSafety;
  return SyntacticClass::kNeither;
}

bool in_syntactic_safety_fragment(LtlArena& arena, FormulaId f) {
  const SyntacticClass c = classify_syntactic(arena, f);
  return c == SyntacticClass::kSafety || c == SyntacticClass::kBoth;
}

bool in_syntactic_cosafety_fragment(LtlArena& arena, FormulaId f) {
  const SyntacticClass c = classify_syntactic(arena, f);
  return c == SyntacticClass::kCoSafety || c == SyntacticClass::kBoth;
}

FormulaId weak_until(LtlArena& arena, FormulaId lhs, FormulaId rhs) {
  return arena.release(rhs, arena.disj(lhs, rhs));
}

const char* to_string(SyntacticClass c) {
  switch (c) {
    case SyntacticClass::kSafety:
      return "syntactic-safety";
    case SyntacticClass::kCoSafety:
      return "syntactic-cosafety";
    case SyntacticClass::kBoth:
      return "syntactic-both";
    case SyntacticClass::kNeither:
      return "syntactic-neither";
  }
  return "?";
}

}  // namespace slat::ltl
