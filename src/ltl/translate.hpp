// LTL → Büchi translation via the GPVW tableau (Gerth–Peled–Vardi–Wolper,
// "Simple on-the-fly automatic verification of linear temporal logic").
//
// The formula is first brought to negation normal form; tableau nodes are
// sets of NNF subformulas; the resulting generalized Büchi automaton (one
// acceptance set per Until) is degeneralized with a counter. The output is
// a plain Nba over the arena's alphabet, ready for the §2 pipeline
// (closure, classification, decomposition).
#pragma once

#include "buchi/nba.hpp"
#include "buchi/symbolic.hpp"
#include "ltl/formula.hpp"

namespace slat::ltl {

/// L(result) = { w ∈ Σ^ω : w ⊨ f }.
buchi::Nba to_nba(LtlArena& arena, FormulaId f);

/// Statistics of a translation, for the ablation bench.
struct TranslationStats {
  int tableau_nodes = 0;   ///< nodes of the generalized automaton
  int acceptance_sets = 0; ///< number of Untils
  int nba_states = 0;      ///< states after degeneralization
  int nba_transitions = 0; ///< explicit letter edges / symbolic cube edges
};

buchi::Nba to_nba(LtlArena& arena, FormulaId f, TranslationStats* stats);

/// Symbolic translation, for AP-backed arenas only: the tableau is the
/// same, but each node's literal set becomes ONE cube (must-true = its
/// positive atoms, must-false = its negated atoms) instead of the O(2^k)
/// per-letter loop of `satisfying_symbols` — translation cost is
/// independent of the AP count. Honors SLAT_ALPHABET: the explicit oracle
/// runs to_nba over the 2^k letters and lifts the result, so
/// `expand()` of either backend's output is bit-identical (pinned by the
/// symbolic.explicit_agreement qc property).
buchi::SymbolicNba to_nba_symbolic(LtlArena& arena, FormulaId f);
buchi::SymbolicNba to_nba_symbolic(LtlArena& arena, FormulaId f,
                                   TranslationStats* stats);

}  // namespace slat::ltl
