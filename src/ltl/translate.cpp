#include "ltl/translate.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::ltl {

namespace {

using buchi::Nba;
using buchi::State;
using FormulaSet = std::set<FormulaId>;

// One tableau node under construction (GPVW's Node structure). `incoming`
// holds graph-node ids; the pseudo-id kInit marks initial edges.
constexpr int kInit = -1;

struct GraphNode {
  FormulaSet old;
  FormulaSet next;
  std::set<int> incoming;
};

class Tableau {
 public:
  Tableau(LtlArena& arena, FormulaId root_nnf) : arena_(arena) {
    struct PendingNode {
      FormulaSet neu, old, next;
      std::set<int> incoming;
    };
    std::vector<PendingNode> worklist;
    worklist.push_back({{root_nnf}, {}, {}, {kInit}});
    while (!worklist.empty()) {
      PendingNode node = std::move(worklist.back());
      worklist.pop_back();

      if (node.neu.empty()) {
        // Fully expanded: merge with an existing node or add a new one.
        bool merged = false;
        for (std::size_t i = 0; i < nodes_.size(); ++i) {
          if (nodes_[i].old == node.old && nodes_[i].next == node.next) {
            nodes_[i].incoming.insert(node.incoming.begin(), node.incoming.end());
            merged = true;
            break;
          }
        }
        if (merged) continue;
        const int id = static_cast<int>(nodes_.size());
        nodes_.push_back({node.old, node.next, node.incoming});
        worklist.push_back({node.next, {}, {}, {id}});
        continue;
      }

      const FormulaId eta = *node.neu.begin();
      node.neu.erase(node.neu.begin());
      if (node.old.count(eta) != 0) {
        worklist.push_back(std::move(node));
        continue;
      }
      const FormulaNode& n = arena_.node(eta);
      switch (n.op) {
        case Op::kFalse:
          continue;  // contradiction: drop this node
        case Op::kTrue:
          worklist.push_back(std::move(node));
          continue;
        case Op::kAtom:
        case Op::kNot: {
          // A literal; kNot in NNF wraps an atom only.
          if (n.op == Op::kNot) SLAT_ASSERT(arena_.node(n.lhs).op == Op::kAtom);
          const FormulaId contradiction =
              n.op == Op::kAtom ? arena_.negation(eta) : n.lhs;
          if (node.old.count(contradiction) != 0) continue;  // inconsistent
          node.old.insert(eta);
          worklist.push_back(std::move(node));
          continue;
        }
        case Op::kAnd: {
          node.old.insert(eta);
          node.neu.insert(n.lhs);
          node.neu.insert(n.rhs);
          worklist.push_back(std::move(node));
          continue;
        }
        case Op::kOr: {
          PendingNode left = node, right = node;
          left.old.insert(eta);
          left.neu.insert(n.lhs);
          right.old.insert(eta);
          right.neu.insert(n.rhs);
          worklist.push_back(std::move(left));
          worklist.push_back(std::move(right));
          continue;
        }
        case Op::kNext: {
          node.old.insert(eta);
          node.next.insert(n.lhs);
          worklist.push_back(std::move(node));
          continue;
        }
        case Op::kUntil: {
          // φ U ψ = ψ ∨ (φ ∧ X(φ U ψ)).
          PendingNode now = node, later = node;
          now.old.insert(eta);
          now.neu.insert(n.rhs);
          later.old.insert(eta);
          later.neu.insert(n.lhs);
          later.next.insert(eta);
          worklist.push_back(std::move(now));
          worklist.push_back(std::move(later));
          continue;
        }
        case Op::kRelease: {
          // φ R ψ = (φ ∧ ψ) ∨ (ψ ∧ X(φ R ψ)).
          PendingNode both = node, later = node;
          both.old.insert(eta);
          both.neu.insert(n.lhs);
          both.neu.insert(n.rhs);
          later.old.insert(eta);
          later.neu.insert(n.rhs);
          later.next.insert(eta);
          worklist.push_back(std::move(both));
          worklist.push_back(std::move(later));
          continue;
        }
        case Op::kImplies:
        case Op::kEventually:
        case Op::kAlways:
          SLAT_ASSERT_MSG(false, "tableau input must be in NNF");
      }
    }
  }

  const std::vector<GraphNode>& nodes() const { return nodes_; }

 private:
  LtlArena& arena_;
  std::vector<GraphNode> nodes_;
};

// Symbols satisfying the literals of a node's `old` set — the explicit
// backend's O(|Σ|) per-node loop (over an AP-backed alphabet |Σ| = 2^k,
// which is exactly what the cube backend below avoids).
std::vector<words::Sym> satisfying_symbols(const LtlArena& arena, const FormulaSet& old) {
  std::vector<words::Sym> out;
  for (words::Sym s = 0; s < arena.alphabet().size(); ++s) {
    bool ok = true;
    for (FormulaId f : old) {
      const FormulaNode& n = arena.node(f);
      if (n.op == Op::kAtom && !arena.alphabet().letter_satisfies_atom(s, n.atom)) ok = false;
      if (n.op == Op::kNot && arena.alphabet().letter_satisfies_atom(s, arena.node(n.lhs).atom)) ok = false;
      if (!ok) break;
    }
    if (ok) out.push_back(s);
  }
  return out;
}

// The cube of a node's literal set: must-true = its positive atoms,
// must-false = its negated atoms, in one pass over `old` — no letter loop.
// The tableau already dropped nodes with a directly contradictory literal
// pair, so the cube is never empty for AP-backed alphabets (every other
// valuation of the unfixed bits satisfies the node).
words::LabelId node_cube(const LtlArena& arena, const FormulaSet& old,
                         words::CubeStore& store) {
  words::ApMask must_true = 0;
  words::ApMask must_false = 0;
  for (FormulaId f : old) {
    const FormulaNode& n = arena.node(f);
    if (n.op == Op::kAtom) must_true |= words::ApMask{1} << n.atom;
    if (n.op == Op::kNot) must_false |= words::ApMask{1} << arena.node(n.lhs).atom;
  }
  return store.cube(must_true, must_false);
}

// 128-bit structural digest of the formula's reachable sub-DAG. Nodes are
// renumbered densely in preorder from the root, so the digest depends only
// on formula STRUCTURE (and the alphabet), never on arena insertion history
// — two arenas that built the same formula in different orders collide, as
// they should.
core::Digest formula_fingerprint(const LtlArena& arena, FormulaId f) {
  core::DigestBuilder b;
  b.add_string("ltl.formula");
  // Byte-identical to the seed encoding for explicit alphabets; AP-backed
  // alphabets digest the AP list instead of 2^k letter names.
  words::digest_alphabet(b, arena.alphabet());

  std::map<FormulaId, int> local;
  std::vector<FormulaId> order;
  std::vector<FormulaId> stack{f};
  while (!stack.empty()) {
    const FormulaId id = stack.back();
    stack.pop_back();
    if (local.count(id) != 0) continue;
    local.emplace(id, static_cast<int>(order.size()));
    order.push_back(id);
    const FormulaNode& n = arena.node(id);
    if (n.rhs >= 0) stack.push_back(n.rhs);
    if (n.lhs >= 0) stack.push_back(n.lhs);
  }
  b.add_int(static_cast<int>(order.size()));
  for (FormulaId id : order) {
    const FormulaNode& n = arena.node(id);
    b.add_int(static_cast<int>(n.op)).add_int(n.atom);
    b.add_int(n.lhs >= 0 ? local.at(n.lhs) : -1);
    b.add_int(n.rhs >= 0 ? local.at(n.rhs) : -1);
  }
  return b.digest();
}

Nba translate_uncached(LtlArena& arena, FormulaId f, TranslationStats& stats) {
  const FormulaId root = arena.nnf(f);
  Tableau tableau(arena, root);
  const auto& nodes = tableau.nodes();
  const int num_nodes = static_cast<int>(nodes.size());

  // Collect the Until subformulas appearing in the tableau: one generalized
  // acceptance set per Until u, F_u = {q : u ∉ old(q) ∨ rhs(u) ∈ old(q)}.
  std::set<FormulaId> untils;
  for (const auto& node : nodes) {
    for (FormulaId g : node.old) {
      if (arena.node(g).op == Op::kUntil) untils.insert(g);
    }
    for (FormulaId g : node.next) {
      if (arena.node(g).op == Op::kUntil) untils.insert(g);
    }
  }
  const std::vector<FormulaId> until_list(untils.begin(), untils.end());
  const int k = std::max<int>(1, static_cast<int>(until_list.size()));

  const auto in_acceptance_set = [&](int node_id, int set_index) {
    if (until_list.empty()) return true;  // no Untils: everything accepting
    const FormulaId u = until_list[set_index];
    const auto& old = nodes[node_id].old;
    return old.count(u) == 0 || old.count(arena.node(u).rhs) != 0;
  };

  // Degeneralized automaton: states (node, counter) plus a fresh initial.
  // Transition into node B requires the symbol to satisfy B's literals
  // (GPVW's labels shifted onto incoming edges).
  const auto state_id = [&](int node_id, int counter) { return node_id * k + counter; };
  const State initial = num_nodes * k;
  Nba out(arena.alphabet(), num_nodes * k + 1, initial);

  std::vector<std::vector<words::Sym>> symbols_of(num_nodes);
  for (int b = 0; b < num_nodes; ++b) symbols_of[b] = satisfying_symbols(arena, nodes[b].old);

  for (int b = 0; b < num_nodes; ++b) {
    for (int counter = 0; counter < k; ++counter) {
      if (in_acceptance_set(b, 0) && counter == 0) {
        out.set_accepting(state_id(b, 0), true);
      }
    }
  }

  // next counter after visiting (node, counter).
  const auto next_counter = [&](int node_id, int counter) {
    return in_acceptance_set(node_id, counter) ? (counter + 1) % k : counter;
  };

  for (int b = 0; b < num_nodes; ++b) {
    for (int source : nodes[b].incoming) {
      for (words::Sym s : symbols_of[b]) {
        if (source == kInit) {
          // All initial edges enter at counter 0.
          out.add_transition(initial, s, state_id(b, 0));
        } else {
          for (int counter = 0; counter < k; ++counter) {
            out.add_transition(state_id(source, counter), s,
                               state_id(b, next_counter(source, counter)));
          }
        }
      }
    }
  }

  Nba trimmed = out.trim();
  stats.tableau_nodes = num_nodes;
  stats.acceptance_sets = static_cast<int>(until_list.size());
  stats.nba_states = trimmed.num_states();
  stats.nba_transitions = trimmed.num_transitions();
  return trimmed;
}

// The symbolic twin of translate_uncached: identical tableau, identical
// (node, counter) state numbering and edge loop order, but each node
// contributes ONE cube edge where the explicit path adds one edge per
// satisfying letter — so expand() of this automaton reproduces the explicit
// translation bit for bit, and the construction never touches 2^k.
buchi::SymbolicNba translate_symbolic_uncached(LtlArena& arena, FormulaId f,
                                               TranslationStats& stats) {
  using buchi::SymbolicNba;
  const FormulaId root = arena.nnf(f);
  Tableau tableau(arena, root);
  const auto& nodes = tableau.nodes();
  const int num_nodes = static_cast<int>(nodes.size());

  std::set<FormulaId> untils;
  for (const auto& node : nodes) {
    for (FormulaId g : node.old) {
      if (arena.node(g).op == Op::kUntil) untils.insert(g);
    }
    for (FormulaId g : node.next) {
      if (arena.node(g).op == Op::kUntil) untils.insert(g);
    }
  }
  const std::vector<FormulaId> until_list(untils.begin(), untils.end());
  const int k = std::max<int>(1, static_cast<int>(until_list.size()));

  const auto in_acceptance_set = [&](int node_id, int set_index) {
    if (until_list.empty()) return true;
    const FormulaId u = until_list[set_index];
    const auto& old = nodes[node_id].old;
    return old.count(u) == 0 || old.count(arena.node(u).rhs) != 0;
  };

  const auto state_id = [&](int node_id, int counter) { return node_id * k + counter; };
  const buchi::State initial = num_nodes * k;
  SymbolicNba out(arena.alphabet(), nullptr, num_nodes * k + 1, initial);
  words::CubeStore& store = *out.store();

  std::vector<words::LabelId> label_of(num_nodes);
  for (int b = 0; b < num_nodes; ++b) label_of[b] = node_cube(arena, nodes[b].old, store);

  for (int b = 0; b < num_nodes; ++b) {
    if (in_acceptance_set(b, 0)) out.set_accepting(state_id(b, 0), true);
  }

  const auto next_counter = [&](int node_id, int counter) {
    return in_acceptance_set(node_id, counter) ? (counter + 1) % k : counter;
  };

  for (int b = 0; b < num_nodes; ++b) {
    for (int source : nodes[b].incoming) {
      if (source == kInit) {
        out.add_edge(initial, label_of[b], state_id(b, 0));
      } else {
        for (int counter = 0; counter < k; ++counter) {
          out.add_edge(state_id(source, counter), label_of[b],
                       state_id(b, next_counter(source, counter)));
        }
      }
    }
  }

  buchi::SymbolicNba trimmed = out.trim();
  stats.tableau_nodes = num_nodes;
  stats.acceptance_sets = static_cast<int>(until_list.size());
  stats.nba_states = trimmed.num_states();
  stats.nba_transitions = trimmed.num_edges();
  return trimmed;
}

}  // namespace

Nba to_nba(LtlArena& arena, FormulaId f) { return to_nba(arena, f, nullptr); }

Nba to_nba(LtlArena& arena, FormulaId f, TranslationStats* stats) {
  // Memoized on the formula's structural digest: the tableau construction is
  // deterministic, so a hit returns the exact automaton (and stats) the
  // translation would rebuild. A hit also skips the NNF pass, leaving the
  // arena untouched — NNF interning is invisible to callers.
  static core::MemoCache<std::pair<Nba, TranslationStats>>& cache =
      *new core::MemoCache<std::pair<Nba, TranslationStats>>("ltl.to_nba");
  auto result = cache.get_or_compute(core::DigestBuilder()
                                         .add_string("to_nba")
                                         .add_digest(formula_fingerprint(arena, f))
                                         .digest(),
                                     [&] {
                                       TranslationStats computed{};
                                       Nba nba = translate_uncached(arena, f, computed);
                                       return std::make_pair(std::move(nba), computed);
                                     });
  if (stats != nullptr) *stats = result.second;
  return std::move(result.first);
}

buchi::SymbolicNba to_nba_symbolic(LtlArena& arena, FormulaId f) {
  return to_nba_symbolic(arena, f, nullptr);
}

buchi::SymbolicNba to_nba_symbolic(LtlArena& arena, FormulaId f,
                                   TranslationStats* stats) {
  SLAT_ASSERT_MSG(arena.alphabet().ap_backed(),
                  "symbolic translation needs an AP-backed alphabet");
  if (words::alphabet_backend() == words::AlphabetBackend::kExplicit) {
    // Differential oracle: the explicit translation over all 2^k letters,
    // lifted to single-letter cubes. Small k only, by construction.
    return buchi::SymbolicNba::from_explicit(to_nba(arena, f, stats));
  }
  static core::MemoCache<std::pair<buchi::SymbolicNba, TranslationStats>>& cache =
      *new core::MemoCache<std::pair<buchi::SymbolicNba, TranslationStats>>(
          "ltl.to_nba_symbolic");
  auto result = cache.get_or_compute(
      core::DigestBuilder()
          .add_string("to_nba_symbolic")
          .add_digest(formula_fingerprint(arena, f))
          .digest(),
      [&] {
        TranslationStats computed{};
        buchi::SymbolicNba nba = translate_symbolic_uncached(arena, f, computed);
        return std::make_pair(std::move(nba), computed);
      });
  if (stats != nullptr) *stats = result.second;
  return std::move(result.first);
}

}  // namespace slat::ltl
