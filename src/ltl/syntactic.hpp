// Syntactic safety and co-safety fragments of LTL (Sistla's
// characterization, cited in the paper's §1: "Sistla characterized safety
// and liveness for temporal logic formulas").
//
// In negation normal form:
//   * a formula with no Until (only Release, hence also G) denotes a SAFETY
//     property;
//   * a formula with no Release (only Until, hence also F) denotes a
//     CO-SAFETY property (its complement is safety).
// Both fragments are sound but incomplete: semantically safe formulas
// outside the fragment exist (e.g. (a U b) | G a, i.e. a W b, is safety
// but mentions U) — which is exactly why the paper's semantic
// characterization earns its keep. The tests exercise both soundness and
// the incompleteness witnesses.
#pragma once

#include "ltl/formula.hpp"

namespace slat::ltl {

enum class SyntacticClass {
  kSafety,    ///< NNF has no Until
  kCoSafety,  ///< NNF has no Release
  kBoth,      ///< no Until and no Release (pure state/X formulas)
  kNeither,
};

/// Classifies nnf(f) by the fragments above.
SyntacticClass classify_syntactic(LtlArena& arena, FormulaId f);

/// nnf(f) mentions no Until (sound for safety).
bool in_syntactic_safety_fragment(LtlArena& arena, FormulaId f);

/// nnf(f) mentions no Release (sound for co-safety).
bool in_syntactic_cosafety_fragment(LtlArena& arena, FormulaId f);

/// Weak until: a W b = "a holds until b, or forever" = b R (a ∨ b).
/// Unlike strong until it is a SAFETY connective; exposed here (rather than
/// as an arena op) so the NNF stays the canonical core.
FormulaId weak_until(LtlArena& arena, FormulaId lhs, FormulaId rhs);

const char* to_string(SyntacticClass c);

}  // namespace slat::ltl
