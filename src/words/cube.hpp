// Symbolic edge labels over 2^AP alphabets (the ROADMAP "symbolic alphabet
// backend").
//
// A letter of an AP-backed alphabet is a valuation of k atomic propositions
// (bit j of the letter = truth of AP j). A label is a CUBE — a pair of
// must-true / must-false bitmasks — or a small disjunction of cubes
// (canonical DNF), and denotes the set of letters consistent with one of its
// cubes. One cube built from a tableau node's literal set replaces the
// O(2^k) per-letter loop of the explicit backend.
//
// Labels live in a CubeStore, a hash-consed shared node store after the
// CBMC `irept` idiom (SNIPPETS.md snippet 3): every label is interned once
// into a refcount-free arena of immutable nodes and addressed by a dense
// LabelId, so structural equality is id equality (the moral equivalent of
// irept's pointer equality) and the algebra (intersection, union,
// complement) is memoized on id pairs. "Copy-on-write" here degenerates to
// the cheapest possible form: nodes are never mutated after interning, a
// label copy is an integer copy, and every derived label is a fresh intern
// that shares the store — see DESIGN §9 for the invariants.
//
// The store also computes the MINTERM PARTITION of a set of labels: the
// coarsest partition of the 2^k letters such that every input label is a
// union of blocks. The condensed automata (buchi/symbolic.hpp) run every
// explicit algorithm over the handful of blocks instead of 2^k letters.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "words/alphabet.hpp"

namespace slat::words {

/// A valuation bitmask over atomic propositions (AP j ↔ bit j). 32 APs is
/// far beyond what any explicit structure could ever enumerate.
using ApMask = std::uint32_t;

/// One cube: the letters v with v ⊇ must_true and v ∩ must_false = ∅.
/// Contradictory cubes (overlapping masks) denote ∅ and are normalized away.
struct Cube {
  ApMask must_true = 0;
  ApMask must_false = 0;

  friend bool operator==(const Cube&, const Cube&) = default;
  friend auto operator<=>(const Cube&, const Cube&) = default;
};

/// A label: index of an interned canonical-DNF node in a CubeStore. Ids are
/// dense and store-local; equal ids ⇔ structurally equal labels.
using LabelId = std::int32_t;

/// The empty label (∅, zero cubes) — always id 0 in every store.
inline constexpr LabelId kEmptyLabel = 0;
/// The full label (Σ, the single unconstrained cube) — always id 1.
inline constexpr LabelId kFullLabel = 1;

/// Hash-consed store of DNF labels over a fixed number of APs, with
/// memoized algebra. Not thread-safe for mutation: like LtlArena, a store
/// belongs to one pipeline; concurrent READS of interned nodes are fine
/// because nodes are immutable once published.
class CubeStore {
 public:
  explicit CubeStore(int num_aps);

  int num_aps() const { return num_aps_; }
  /// Number of letters 2^k, as a 64-bit count (k ≤ 32 would overflow Sym).
  std::uint64_t num_letters() const { return std::uint64_t{1} << num_aps_; }

  /// The cubes of a label, sorted and subsumption-free (empty span = ∅).
  std::span<const Cube> cubes(LabelId label) const;

  /// Interns the single-cube label {must_true, must_false}; contradictory
  /// masks yield kEmptyLabel.
  LabelId cube(ApMask must_true, ApMask must_false);
  /// The one-letter label of valuation v (a full cube fixing every AP).
  LabelId letter(Sym v);
  /// Interns an arbitrary disjunction after normalization (sort, dedup,
  /// subsumption pruning, contradiction dropping).
  LabelId make(std::vector<Cube> disjunction);
  /// Re-interns a label of another store (same num_aps) into this one.
  LabelId import(const CubeStore& other, LabelId label);

  /// Memoized algebra. Results are canonical labels of this store.
  LabelId intersect(LabelId a, LabelId b);
  LabelId unite(LabelId a, LabelId b);
  LabelId complement(LabelId a);

  bool is_empty(LabelId label) const { return label == kEmptyLabel; }
  /// Syntactic fullness (the unconstrained cube). A semantically full DNF
  /// like p ∨ ¬p stays multi-cube; use complement() == kEmptyLabel for the
  /// semantic test.
  bool is_full(LabelId label) const { return label == kFullLabel; }

  /// Does letter v satisfy the label?
  bool matches(LabelId label, Sym v) const;
  /// The smallest letter in the label, or -1 for ∅. The min letter of a
  /// cube is its must_true mask (free bits contribute 0); of a DNF, the min
  /// over its cubes. Condensed automata use it as the canonical
  /// representative, which is what makes symbolic witnesses bit-identical
  /// to explicit ones (the explicit per-letter loops run in ascending
  /// letter order, so the first letter they see of any block is its min).
  Sym min_letter(LabelId label) const;
  /// Number of letters the label denotes (inclusion–exclusion-free: counts
  /// via the minterm split, so it is exact for overlapping cubes).
  std::uint64_t count_letters(LabelId label);

  /// The label's letters in ascending order. This MATERIALIZES letters —
  /// only the explicit oracle and small-k differential tests may call it;
  /// guarded to k ≤ kMaxExplicitAps.
  std::vector<Sym> expand_letters(LabelId label);

  /// Largest k for which letter materialization (expand_letters, and
  /// Nba expansion built on it) is permitted.
  static constexpr int kMaxExplicitAps = 20;

  /// The minterm partition generated by `labels`: disjoint, jointly
  /// exhaustive labels, each either inside or outside every input label,
  /// sorted by min letter. Deterministic in the SET of distinct input
  /// labels (duplicates are skipped by id — hash-consing makes that a
  /// structural dedup).
  std::vector<LabelId> refine(std::span<const LabelId> labels);

  /// Wear counters, for benches and the qc contract properties.
  struct Stats {
    std::uint64_t interned_labels = 0;   ///< distinct nodes ever created
    std::uint64_t intern_hits = 0;       ///< make() calls answered by dedup
    std::uint64_t memo_hits = 0;         ///< algebra answered from memo
    std::uint64_t expanded_letters = 0;  ///< letters materialized (oracle only)
  };
  const Stats& stats() const { return stats_; }

  std::size_t num_labels() const { return nodes_.size(); }

  /// Human-readable DNF over AP names ("{p !q} | {r}", "false", "true").
  std::string to_string(LabelId label, const Alphabet& alphabet) const;

 private:
  LabelId intern(std::vector<Cube> normalized);
  /// Shannon counting by substitution cofactors on APs [next_ap, k).
  std::uint64_t count_from(LabelId label, int next_ap);
  static std::uint64_t hash_cubes(const std::vector<Cube>& cubes);
  static std::uint64_t pair_key(LabelId a, LabelId b) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  }

  int num_aps_;
  ApMask ap_mask_;  // low num_aps_ bits set

  /// The shared node arena. Nodes are immutable after push_back; spans into
  /// a node's cube vector stay valid because the vectors themselves never
  /// reallocate post-intern (only nodes_ does, and it holds the vectors by
  /// value — the heap buffers don't move).
  struct Node {
    std::vector<Cube> cubes;
  };
  std::vector<Node> nodes_;
  /// Hash-consing index: cube-vector hash → candidate ids (open chaining on
  /// the rare hash collision).
  std::unordered_map<std::uint64_t, std::vector<LabelId>> index_;

  /// Operation memos keyed on node identity (valid precisely because ids
  /// are canonical).
  std::unordered_map<std::uint64_t, LabelId> and_memo_;
  std::unordered_map<std::uint64_t, LabelId> or_memo_;
  std::vector<LabelId> not_memo_;  // indexed by LabelId; -1 = not computed
  std::unordered_map<std::uint64_t, std::uint64_t> count_memo_;  // (id, depth)

  Stats stats_;
};

/// Which letter backend the pipeline entry points use. The symbolic backend
/// is the default; SLAT_ALPHABET=explicit (or the RAII scope below) routes
/// every symbolic entry point through cube expansion + the explicit
/// algorithms instead, as a differential oracle — exactly the PR4
/// SLAT_INCLUSION pattern.
enum class AlphabetBackend {
  kSymbolic,  ///< condensed cube labels (default)
  kExplicit,  ///< expand to 2^k letters, run the explicit pipeline (oracle)
};

AlphabetBackend alphabet_backend();
void set_alphabet_backend(AlphabetBackend backend);

/// RAII backend override for tests and benches.
class AlphabetBackendScope {
 public:
  explicit AlphabetBackendScope(AlphabetBackend backend)
      : previous_(alphabet_backend()) {
    set_alphabet_backend(backend);
  }
  ~AlphabetBackendScope() { set_alphabet_backend(previous_); }
  AlphabetBackendScope(const AlphabetBackendScope&) = delete;
  AlphabetBackendScope& operator=(const AlphabetBackendScope&) = delete;

 private:
  AlphabetBackend previous_;
};

}  // namespace slat::words
