#include "words/up_word.hpp"

#include <algorithm>
#include <functional>
#include <set>
#include <sstream>

#include "common/assert.hpp"

namespace slat::words {

UpWord::UpWord(Word prefix, Word period)
    : prefix_(std::move(prefix)), period_(std::move(period)) {
  SLAT_ASSERT_MSG(!period_.empty(), "UP-word period must be non-empty");
  normalize();
}

void UpWord::normalize() {
  // 1. Make the period primitive: the shortest word whose power it is.
  const std::size_t n = period_.size();
  for (std::size_t d = 1; d < n; ++d) {
    if (n % d != 0) continue;
    bool is_power = true;
    for (std::size_t i = d; i < n && is_power; ++i) {
      is_power = period_[i] == period_[i % d];
    }
    if (is_power) {
      period_.resize(d);
      break;
    }
  }
  // 2. Shorten the prefix: u·c (v₀·c)^ω = u (c·v₀)^ω whenever the prefix and
  //    the period end in the same letter. Rotating a primitive word keeps it
  //    primitive, so steps 1 and 2 commute.
  while (!prefix_.empty() && prefix_.back() == period_.back()) {
    prefix_.pop_back();
    std::rotate(period_.rbegin(), period_.rbegin() + 1, period_.rend());
  }
}

bool UpWord::is_normalized() const {
  // Direct check of the two normal-form conditions (previously this
  // deep-copied the word and re-ran normalize(), allocating two vectors per
  // call on a hot differential-testing predicate).
  //
  // 1. Primitive period: no proper divisor d of |v| has v = (v[0..d))^(n/d).
  const std::size_t n = period_.size();
  for (std::size_t d = 1; d < n; ++d) {
    if (n % d != 0) continue;
    bool is_power = true;
    for (std::size_t i = d; i < n && is_power; ++i) {
      is_power = period_[i] == period_[i % d];
    }
    if (is_power) return false;
  }
  // 2. Shortest prefix: the absorption step u·c (v₀·c)^ω = u (c·v₀)^ω fires
  //    iff the prefix's last letter equals the period's last letter.
  return prefix_.empty() || prefix_.back() != period_.back();
}

Sym UpWord::at(std::size_t i) const {
  if (i < prefix_.size()) return prefix_[i];
  return period_[(i - prefix_.size()) % period_.size()];
}

Word UpWord::take(std::size_t n) const {
  Word out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(at(i));
  return out;
}

UpWord UpWord::suffix(std::size_t i) const {
  if (i <= prefix_.size()) {
    return UpWord(Word(prefix_.begin() + i, prefix_.end()), period_);
  }
  const std::size_t shift = (i - prefix_.size()) % period_.size();
  Word rotated(period_.begin() + shift, period_.end());
  rotated.insert(rotated.end(), period_.begin(), period_.begin() + shift);
  return UpWord({}, std::move(rotated));
}

UpWord UpWord::periodic(Word period) { return UpWord({}, std::move(period)); }

UpWord UpWord::constant(Sym s) { return UpWord({}, {s}); }

std::string UpWord::to_string(const Alphabet& alphabet) const {
  std::ostringstream out;
  for (Sym s : prefix_) out << alphabet.name(s);
  out << "(";
  for (Sym s : period_) out << alphabet.name(s);
  out << ")^w";
  return out.str();
}

namespace {

void enumerate_words(int alphabet_size, int length, const std::function<void(const Word&)>& fn) {
  Word word(length, 0);
  while (true) {
    fn(word);
    int pos = length - 1;
    while (pos >= 0 && word[pos] == alphabet_size - 1) {
      word[pos] = 0;
      --pos;
    }
    if (pos < 0) return;
    ++word[pos];
  }
}

}  // namespace

std::vector<UpWord> enumerate_up_words(int alphabet_size, int max_prefix, int max_period) {
  SLAT_ASSERT(alphabet_size >= 1 && max_prefix >= 0 && max_period >= 1);
  std::set<UpWord> seen;
  for (int plen = 0; plen <= max_prefix; ++plen) {
    enumerate_words(alphabet_size, plen, [&](const Word& prefix) {
      for (int vlen = 1; vlen <= max_period; ++vlen) {
        enumerate_words(alphabet_size, vlen, [&](const Word& period) {
          seen.insert(UpWord(prefix, period));
        });
      }
    });
  }
  return std::vector<UpWord>(seen.begin(), seen.end());
}

}  // namespace slat::words
