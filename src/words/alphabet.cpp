#include "words/alphabet.hpp"

#include "common/assert.hpp"

namespace slat::words {

namespace {

std::shared_ptr<const std::unordered_map<std::string, Sym>> build_index(
    const std::vector<std::string>& names) {
  auto index = std::make_shared<std::unordered_map<std::string, Sym>>();
  index->reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    const bool inserted = index->emplace(names[i], static_cast<Sym>(i)).second;
    SLAT_ASSERT_MSG(inserted, "alphabet names must be distinct");
  }
  return index;
}

}  // namespace

Alphabet::Alphabet(std::vector<std::string> names) : names_(std::move(names)) {
  SLAT_ASSERT_MSG(!names_.empty(), "alphabet must be non-empty");
  size_ = static_cast<int>(names_.size());
  index_ = build_index(names_);  // also enforces distinctness, in O(n)
}

Alphabet Alphabet::binary() { return Alphabet({"a", "b"}); }

Alphabet Alphabet::of_size(int n) {
  SLAT_ASSERT(n >= 1);
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back("s" + std::to_string(i));
  return Alphabet(std::move(names));
}

Alphabet Alphabet::of_aps(std::vector<std::string> aps) {
  SLAT_ASSERT_MSG(!aps.empty(), "AP alphabet needs at least one proposition");
  SLAT_ASSERT_MSG(aps.size() <= 24, "AP count above the 2^24-letter ceiling");
  Alphabet out;
  out.aps_ = std::move(aps);
  out.size_ = 1 << out.aps_.size();
  out.index_ = build_index(out.aps_);  // AP-name index; also distinctness
  out.lazy_names_ = std::make_shared<LazyNames>();
  return out;
}

const std::string& Alphabet::name(Sym s) const {
  SLAT_ASSERT(s >= 0 && s < size());
  if (!ap_backed()) return names_[s];
  // Render "v" + bits (AP k-1 down to 0) on first request; cached so the
  // const-reference contract holds. Never called in bulk by the symbolic
  // pipeline — digests and cubes both avoid letter names.
  std::lock_guard<std::mutex> lock(lazy_names_->mutex);
  auto it = lazy_names_->cache.find(s);
  if (it == lazy_names_->cache.end()) {
    std::string rendered = "v";
    for (int j = ap_count() - 1; j >= 0; --j) {
      rendered += ((static_cast<std::uint32_t>(s) >> j) & 1) != 0 ? '1' : '0';
    }
    it = lazy_names_->cache.emplace(s, std::move(rendered)).first;
  }
  return it->second;
}

std::optional<Sym> Alphabet::index_of(std::string_view name) const {
  if (ap_backed()) {
    // Parse the "v<bits>" rendering back to the valuation letter.
    if (name.size() != static_cast<std::size_t>(ap_count()) + 1 || name[0] != 'v') {
      return std::nullopt;
    }
    Sym v = 0;
    for (int j = 0; j < ap_count(); ++j) {
      const char c = name[1 + ap_count() - 1 - j];
      if (c != '0' && c != '1') return std::nullopt;
      if (c == '1') v |= 1 << j;
    }
    return v;
  }
  const auto it = index_->find(std::string(name));
  if (it == index_->end()) return std::nullopt;
  return it->second;
}

const std::string& Alphabet::atom_name(int a) const {
  if (ap_backed()) {
    SLAT_ASSERT(a >= 0 && a < ap_count());
    return aps_[a];
  }
  return name(a);
}

std::optional<int> Alphabet::atom_index_of(std::string_view name) const {
  if (ap_backed()) {
    const auto it = index_->find(std::string(name));
    if (it == index_->end()) return std::nullopt;
    return it->second;
  }
  return index_of(name);
}

}  // namespace slat::words
