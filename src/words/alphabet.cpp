#include "words/alphabet.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace slat::words {

Alphabet::Alphabet(std::vector<std::string> names) : names_(std::move(names)) {
  SLAT_ASSERT_MSG(!names_.empty(), "alphabet must be non-empty");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    for (std::size_t j = i + 1; j < names_.size(); ++j) {
      SLAT_ASSERT_MSG(names_[i] != names_[j], "alphabet names must be distinct");
    }
  }
}

Alphabet Alphabet::binary() { return Alphabet({"a", "b"}); }

Alphabet Alphabet::of_size(int n) {
  SLAT_ASSERT(n >= 1);
  std::vector<std::string> names;
  names.reserve(n);
  for (int i = 0; i < n; ++i) names.push_back("s" + std::to_string(i));
  return Alphabet(std::move(names));
}

const std::string& Alphabet::name(Sym s) const {
  SLAT_ASSERT(s >= 0 && s < size());
  return names_[s];
}

std::optional<Sym> Alphabet::index_of(std::string_view name) const {
  const auto it = std::find(names_.begin(), names_.end(), name);
  if (it == names_.end()) return std::nullopt;
  return static_cast<Sym>(it - names_.begin());
}

}  // namespace slat::words
