// Interned alphabets for ω-word and tree automata.
//
// A symbol is a dense index into an Alphabet; the Alphabet maps indices to
// human-readable names. Automata store only indices, so symbol comparisons
// are integer comparisons and transition tables are arrays.
//
// Two flavors exist:
//   * explicit alphabets — a vector of named letters, as always. Name
//     lookup is backed by a hash index built once in the constructor
//     (the seed-era linear scan made every resolve-all-names caller
//     quadratic).
//   * AP-backed alphabets (of_aps) — the 2^k valuations of k atomic
//     propositions. Letter i encodes the valuation whose bit j is the truth
//     of AP j. Letter NAMES are never materialized up front (2^k of them);
//     name(s) renders "v" + the valuation bits lazily through a shared
//     cache, so the const-reference signature survives. These alphabets
//     carry the symbolic cube backend (words/cube.hpp, buchi/symbolic.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace slat::words {

/// A symbol: index into an Alphabet.
using Sym = int;

/// A finite, non-empty alphabet with named symbols.
class Alphabet {
 public:
  /// An alphabet with symbols named by `names` (must be non-empty, distinct).
  explicit Alphabet(std::vector<std::string> names);

  /// The canonical binary alphabet {a, !a} used by the Rem examples: symbol
  /// 0 is "a", symbol 1 is "b" (read: any symbol different from a).
  static Alphabet binary();

  /// An alphabet {s0, s1, ..., s(n-1)}.
  static Alphabet of_size(int n);

  /// The 2^k-letter alphabet of valuations over atomic propositions `aps`
  /// (non-empty, distinct, k ≤ 24 so letters fit Sym with headroom). Letter
  /// i ⊨ AP j iff bit j of i is set.
  static Alphabet of_aps(std::vector<std::string> aps);

  int size() const { return size_; }
  const std::string& name(Sym s) const;
  std::optional<Sym> index_of(std::string_view name) const;

  /// Is this a 2^AP valuation alphabet?
  bool ap_backed() const { return !aps_.empty(); }
  int ap_count() const { return static_cast<int>(aps_.size()); }
  const std::vector<std::string>& aps() const { return aps_; }

  /// Range of the atom payload in LTL formulas over this alphabet: AP index
  /// for AP-backed alphabets, letter index otherwise (the seed-era one-hot
  /// convention, kept for every explicit alphabet).
  int atom_range() const { return ap_backed() ? ap_count() : size(); }
  /// The name of atom index `a` (AP name or letter name).
  const std::string& atom_name(int a) const;
  /// Resolves an atom name (AP name or letter name).
  std::optional<int> atom_index_of(std::string_view name) const;
  /// Does letter `s` satisfy atom `a`? Bit test for AP-backed alphabets,
  /// letter equality (one-hot) for explicit ones. This single predicate is
  /// what keeps the evaluator, the tableau literal loop and the explicit
  /// oracle in agreement across both flavors.
  bool letter_satisfies_atom(Sym s, int a) const {
    return ap_backed() ? ((static_cast<std::uint32_t>(s) >> a) & 1) != 0 : s == a;
  }

  bool operator==(const Alphabet& other) const {
    return aps_ == other.aps_ && names_ == other.names_;
  }

 private:
  struct LazyNames {
    std::mutex mutex;
    std::unordered_map<Sym, std::string> cache;
  };

  Alphabet() = default;

  std::vector<std::string> names_;  // empty iff AP-backed
  std::vector<std::string> aps_;    // empty iff explicit
  int size_ = 0;
  /// Hash index over names_ (explicit) or aps_ (AP-backed); shared so
  /// copies stay cheap — the underlying maps are immutable after
  /// construction.
  std::shared_ptr<const std::unordered_map<std::string, Sym>> index_;
  /// Lazily rendered letter names for AP-backed alphabets; shared and
  /// mutex-guarded (unordered_map references are node-stable, so handing
  /// out const references is safe).
  std::shared_ptr<LazyNames> lazy_names_;
};

/// Streams the alphabet into any DigestBuilder-shaped sink. For explicit
/// alphabets the byte sequence is EXACTLY the seed-era encoding (size, then
/// every name) — pinned by cache_equivalence_test, so memo-cache digests
/// survive this refactor. AP-backed alphabets digest the AP list plus a
/// backend tag in a disjoint domain (the leading int is negative; explicit
/// alphabets always lead with size ≥ 1) without ever enumerating 2^k names.
template <typename Builder>
void digest_alphabet(Builder& b, const Alphabet& alphabet) {
  if (alphabet.ap_backed()) {
    b.add_int(-alphabet.ap_count());
    b.add_string("2^AP");
    for (const std::string& p : alphabet.aps()) b.add_string(p);
    return;
  }
  b.add_int(alphabet.size());
  for (Sym s = 0; s < alphabet.size(); ++s) b.add_string(alphabet.name(s));
}

}  // namespace slat::words
