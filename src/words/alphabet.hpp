// Interned alphabets for ω-word and tree automata.
//
// A symbol is a dense index into an Alphabet; the Alphabet maps indices to
// human-readable names. Automata store only indices, so symbol comparisons
// are integer comparisons and transition tables are arrays.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace slat::words {

/// A symbol: index into an Alphabet.
using Sym = int;

/// A finite, non-empty alphabet with named symbols.
class Alphabet {
 public:
  /// An alphabet with symbols named by `names` (must be non-empty, distinct).
  explicit Alphabet(std::vector<std::string> names);

  /// The canonical binary alphabet {a, !a} used by the Rem examples: symbol
  /// 0 is "a", symbol 1 is "b" (read: any symbol different from a).
  static Alphabet binary();

  /// An alphabet {s0, s1, ..., s(n-1)}.
  static Alphabet of_size(int n);

  int size() const { return static_cast<int>(names_.size()); }
  const std::string& name(Sym s) const;
  std::optional<Sym> index_of(std::string_view name) const;

  bool operator==(const Alphabet& other) const { return names_ == other.names_; }

 private:
  std::vector<std::string> names_;
};

}  // namespace slat::words
