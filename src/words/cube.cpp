#include "words/cube.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace slat::words {

namespace {

// A cube c is subsumed by d (c ⊆ d as letter sets) iff d's constraints are a
// subset of c's.
bool subsumes(const Cube& d, const Cube& c) {
  return (d.must_true & ~c.must_true) == 0 && (d.must_false & ~c.must_false) == 0;
}

bool contradictory(const Cube& c) { return (c.must_true & c.must_false) != 0; }

}  // namespace

CubeStore::CubeStore(int num_aps) : num_aps_(num_aps) {
  SLAT_ASSERT_MSG(num_aps >= 1 && num_aps <= 31, "AP count outside [1, 31]");
  ap_mask_ = static_cast<ApMask>((std::uint64_t{1} << num_aps) - 1);
  not_memo_.reserve(64);
  // Pin the two distinguished nodes at their published ids.
  const LabelId empty = intern({});
  const LabelId full = intern({Cube{0, 0}});
  SLAT_ASSERT(empty == kEmptyLabel && full == kFullLabel);
}

std::span<const Cube> CubeStore::cubes(LabelId label) const {
  SLAT_ASSERT(label >= 0 && static_cast<std::size_t>(label) < nodes_.size());
  const std::vector<Cube>& c = nodes_[label].cubes;
  return {c.data(), c.size()};
}

std::uint64_t CubeStore::hash_cubes(const std::vector<Cube>& cubes) {
  // FNV-1a over the mask words; good enough since the index chains on
  // collisions and confirms with a structural compare.
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(cubes.size());
  for (const Cube& c : cubes) {
    mix(c.must_true);
    mix(c.must_false);
  }
  return h;
}

LabelId CubeStore::intern(std::vector<Cube> normalized) {
  const std::uint64_t h = hash_cubes(normalized);
  std::vector<LabelId>& bucket = index_[h];
  for (const LabelId id : bucket) {
    if (nodes_[id].cubes == normalized) {
      ++stats_.intern_hits;
      return id;
    }
  }
  const LabelId id = static_cast<LabelId>(nodes_.size());
  nodes_.push_back(Node{std::move(normalized)});
  bucket.push_back(id);
  not_memo_.push_back(-1);
  ++stats_.interned_labels;
  return id;
}

LabelId CubeStore::make(std::vector<Cube> disjunction) {
  // Normalize to canonical DNF: mask to the live APs, drop contradictions,
  // sort, dedup, prune subsumed cubes. Any cube equal to the unconstrained
  // cube absorbs everything (the pruning handles that as a special case of
  // subsumption).
  std::vector<Cube> cubes;
  cubes.reserve(disjunction.size());
  for (Cube c : disjunction) {
    c.must_true &= ap_mask_;
    c.must_false &= ap_mask_;
    if (!contradictory(c)) cubes.push_back(c);
  }
  std::sort(cubes.begin(), cubes.end());
  cubes.erase(std::unique(cubes.begin(), cubes.end()), cubes.end());
  if (cubes.size() > 1) {
    std::vector<Cube> kept;
    kept.reserve(cubes.size());
    for (std::size_t i = 0; i < cubes.size(); ++i) {
      bool dominated = false;
      for (std::size_t j = 0; j < cubes.size() && !dominated; ++j) {
        if (i == j) continue;
        // Strict subsumption, with index order as the tiebreak on equality
        // (impossible after dedup) — so exactly one of two mutually
        // subsuming cubes survives.
        if (subsumes(cubes[j], cubes[i])) dominated = true;
      }
      if (!dominated) kept.push_back(cubes[i]);
    }
    cubes = std::move(kept);
  }
  return intern(std::move(cubes));
}

LabelId CubeStore::cube(ApMask must_true, ApMask must_false) {
  return make({Cube{must_true, must_false}});
}

LabelId CubeStore::letter(Sym v) {
  SLAT_ASSERT(v >= 0 && static_cast<std::uint64_t>(v) < num_letters());
  const ApMask val = static_cast<ApMask>(v);
  return cube(val, static_cast<ApMask>(~val) & ap_mask_);
}

LabelId CubeStore::import(const CubeStore& other, LabelId label) {
  SLAT_ASSERT_MSG(other.num_aps_ == num_aps_, "import across AP arities");
  const auto span = other.cubes(label);
  return make(std::vector<Cube>(span.begin(), span.end()));
}

LabelId CubeStore::intersect(LabelId a, LabelId b) {
  if (a == kEmptyLabel || b == kEmptyLabel) return kEmptyLabel;
  if (a == kFullLabel) return b;
  if (b == kFullLabel) return a;
  if (a == b) return a;
  // Commutative: canonicalize the memo key order.
  if (a > b) std::swap(a, b);
  const std::uint64_t key = pair_key(a, b);
  if (const auto it = and_memo_.find(key); it != and_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  std::vector<Cube> out;
  for (const Cube& x : cubes(a)) {
    for (const Cube& y : cubes(b)) {
      const Cube meet{x.must_true | y.must_true, x.must_false | y.must_false};
      if (!contradictory(meet)) out.push_back(meet);
    }
  }
  const LabelId result = make(std::move(out));
  and_memo_.emplace(key, result);
  return result;
}

LabelId CubeStore::unite(LabelId a, LabelId b) {
  if (a == kEmptyLabel) return b;
  if (b == kEmptyLabel) return a;
  if (a == kFullLabel || b == kFullLabel) return kFullLabel;
  if (a == b) return a;
  if (a > b) std::swap(a, b);
  const std::uint64_t key = pair_key(a, b);
  if (const auto it = or_memo_.find(key); it != or_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }
  const auto ca = cubes(a);
  const auto cb = cubes(b);
  std::vector<Cube> out;
  out.reserve(ca.size() + cb.size());
  out.insert(out.end(), ca.begin(), ca.end());
  out.insert(out.end(), cb.begin(), cb.end());
  const LabelId result = make(std::move(out));
  or_memo_.emplace(key, result);
  return result;
}

LabelId CubeStore::complement(LabelId a) {
  if (a == kEmptyLabel) return kFullLabel;
  if (a == kFullLabel) return kEmptyLabel;
  if (not_memo_[a] != -1) {
    ++stats_.memo_hits;
    return not_memo_[a];
  }
  // ¬(c1 ∨ … ∨ cn) = ¬c1 ∧ … ∧ ¬cn, where ¬cube is the union of one
  // single-literal cube per fixed bit. Each step is memoized intersection,
  // so repeated complements of structurally shared labels are cheap.
  LabelId result = kFullLabel;
  for (const Cube& c : cubes(a)) {
    std::vector<Cube> lits;
    for (int j = 0; j < num_aps_; ++j) {
      const ApMask bit = ApMask{1} << j;
      if (c.must_true & bit) lits.push_back(Cube{0, bit});
      if (c.must_false & bit) lits.push_back(Cube{bit, 0});
    }
    result = intersect(result, make(std::move(lits)));
    if (result == kEmptyLabel) break;
  }
  not_memo_[a] = result;
  return result;
}

bool CubeStore::matches(LabelId label, Sym v) const {
  const ApMask val = static_cast<ApMask>(v);
  for (const Cube& c : cubes(label)) {
    if ((val & c.must_true) == c.must_true && (val & c.must_false) == 0) return true;
  }
  return false;
}

Sym CubeStore::min_letter(LabelId label) const {
  const auto span = cubes(label);
  if (span.empty()) return -1;
  ApMask best = ap_mask_;
  bool found = false;
  for (const Cube& c : span) {
    // Free bits minimize at 0, so the least letter of a cube IS must_true.
    if (!found || c.must_true < best) {
      best = c.must_true;
      found = true;
    }
  }
  return static_cast<Sym>(best);
}

std::uint64_t CubeStore::count_letters(LabelId label) {
  // Shannon counting: cofactor on AP j by SUBSTITUTION (the bit disappears
  // from the cofactor's cubes), so |l| = |l[j:=1]| + |l[j:=0]| and the
  // recursion strictly eliminates one AP per level. Single-cube labels
  // close the recursion in O(1); intermediate cofactors are interned, so
  // the memo works on canonical ids.
  return count_from(label, 0);
}

std::uint64_t CubeStore::count_from(LabelId label, int next_ap) {
  if (label == kEmptyLabel) return 0;
  const auto span = cubes(label);
  if (span.size() == 1) {
    // Invariant: at depth j every cube constrains APs ≥ j only.
    const int fixed = std::popcount(span[0].must_true | span[0].must_false);
    return std::uint64_t{1} << (num_aps_ - next_ap - fixed);
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(label)) << 6) |
      static_cast<std::uint32_t>(next_ap);
  if (const auto it = count_memo_.find(key); it != count_memo_.end()) {
    return it->second;
  }
  const ApMask bit = ApMask{1} << next_ap;
  std::vector<Cube> pos, neg;
  pos.reserve(span.size());
  neg.reserve(span.size());
  for (const Cube& c : span) {
    if (c.must_true & bit) {
      pos.push_back(Cube{c.must_true & ~bit, c.must_false});
    } else if (c.must_false & bit) {
      neg.push_back(Cube{c.must_true, c.must_false & ~bit});
    } else {
      pos.push_back(c);
      neg.push_back(c);
    }
  }
  const std::uint64_t total = count_from(make(std::move(pos)), next_ap + 1) +
                              count_from(make(std::move(neg)), next_ap + 1);
  count_memo_.emplace(key, total);
  return total;
}

std::vector<Sym> CubeStore::expand_letters(LabelId label) {
  SLAT_ASSERT_MSG(num_aps_ <= kMaxExplicitAps,
                  "letter materialization requested above the explicit cap");
  // Enumerate each cube's letters by stepping through the subsets of its
  // free bits, then sort + dedup across overlapping cubes.
  std::vector<Sym> out;
  for (const Cube& c : cubes(label)) {
    const ApMask fixed = c.must_true | c.must_false;
    const ApMask free = ap_mask_ & ~fixed;
    ApMask sub = 0;
    while (true) {
      out.push_back(static_cast<Sym>(c.must_true | sub));
      if (sub == free) break;
      sub = (sub - free) & free;  // next subset of `free` in ascending order
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  stats_.expanded_letters += out.size();
  return out;
}

std::vector<LabelId> CubeStore::refine(std::span<const LabelId> labels) {
  // Start from the trivial partition {Σ} and split every block against every
  // distinct input label: B ↦ {B ∧ L, B ∧ ¬L} (empty halves dropped). The
  // result is the coarsest partition refining every label. Determinism:
  // blocks are re-sorted by min letter, which is a total order because the
  // blocks are disjoint and non-empty.
  std::vector<LabelId> blocks{kFullLabel};
  std::vector<LabelId> seen;
  for (const LabelId label : labels) {
    if (label == kEmptyLabel || label == kFullLabel) continue;
    if (std::find(seen.begin(), seen.end(), label) != seen.end()) continue;
    seen.push_back(label);
    const LabelId negation = complement(label);
    std::vector<LabelId> next;
    next.reserve(blocks.size() * 2);
    for (const LabelId block : blocks) {
      const LabelId inside = intersect(block, label);
      const LabelId outside = intersect(block, negation);
      if (inside != kEmptyLabel) next.push_back(inside);
      if (outside != kEmptyLabel) next.push_back(outside);
    }
    blocks = std::move(next);
  }
  std::sort(blocks.begin(), blocks.end(), [this](LabelId a, LabelId b) {
    return min_letter(a) < min_letter(b);
  });
  return blocks;
}

std::string CubeStore::to_string(LabelId label, const Alphabet& alphabet) const {
  if (label == kEmptyLabel) return "false";
  if (label == kFullLabel) return "true";
  std::string out;
  for (const Cube& c : cubes(label)) {
    if (!out.empty()) out += " | ";
    out += "{";
    bool first = true;
    for (int j = 0; j < num_aps_; ++j) {
      const ApMask bit = ApMask{1} << j;
      if ((c.must_true & bit) == 0 && (c.must_false & bit) == 0) continue;
      if (!first) out += " ";
      first = false;
      if (c.must_false & bit) out += "!";
      out += alphabet.ap_backed() ? alphabet.aps()[j] : std::to_string(j);
    }
    out += "}";
  }
  return out;
}

namespace {

std::atomic<AlphabetBackend>& alphabet_backend_flag() {
  static std::atomic<AlphabetBackend> backend = [] {
    const char* env = std::getenv("SLAT_ALPHABET");
    if (env != nullptr && std::strcmp(env, "explicit") == 0) {
      return AlphabetBackend::kExplicit;
    }
    return AlphabetBackend::kSymbolic;
  }();
  return backend;
}

}  // namespace

AlphabetBackend alphabet_backend() {
  return alphabet_backend_flag().load(std::memory_order_relaxed);
}

void set_alphabet_backend(AlphabetBackend backend) {
  alphabet_backend_flag().store(backend, std::memory_order_relaxed);
}

}  // namespace slat::words
