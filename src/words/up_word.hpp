// Ultimately periodic ω-words u·v^ω — the computable stand-in for Σ^ω.
//
// Two ω-regular languages are equal iff they agree on all ultimately
// periodic words, so sampling/enumerating UP-words is a complete proxy for
// language comparisons in the ω-regular world this paper lives in.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "words/alphabet.hpp"

namespace slat::words {

/// A finite word over some alphabet.
using Word = std::vector<Sym>;

/// The ultimately periodic ω-word prefix · period^ω. The period must be
/// non-empty. Words compare *by ω-word value*: (u, v) and (u', v') are equal
/// iff they denote the same infinite sequence, which normalization makes
/// syntactic.
class UpWord {
 public:
  UpWord(Word prefix, Word period);

  /// The i-th symbol of the infinite word (0-based).
  Sym at(std::size_t i) const;

  const Word& prefix() const { return prefix_; }
  const Word& period() const { return period_; }

  std::size_t prefix_size() const { return prefix_.size(); }
  std::size_t period_size() const { return period_.size(); }

  /// The finite prefix of length n.
  Word take(std::size_t n) const;

  /// The suffix ω-word starting at position i (still ultimately periodic).
  UpWord suffix(std::size_t i) const;

  /// Purely periodic word v^ω.
  static UpWord periodic(Word period);
  /// Constant word s^ω.
  static UpWord constant(Sym s);

  /// Normal form: the period is primitive (not a power of a shorter word)
  /// and the prefix is as short as possible (its last letter differs from
  /// the corresponding letter of the rotated period). Normalization happens
  /// at construction; this is exposed for tests.
  bool is_normalized() const;

  /// Render as "uv^w" with names from `alphabet`, e.g. "ab(ba)^w".
  std::string to_string(const Alphabet& alphabet) const;

  /// Value equality of the denoted ω-words.
  bool operator==(const UpWord& other) const {
    return prefix_ == other.prefix_ && period_ == other.period_;
  }
  /// Arbitrary total order (for use as map keys).
  bool operator<(const UpWord& other) const {
    if (prefix_ != other.prefix_) return prefix_ < other.prefix_;
    return period_ < other.period_;
  }

 private:
  void normalize();

  Word prefix_;
  Word period_;
};

/// Every UP-word with prefix length ≤ max_prefix, period length in
/// [1, max_period], over an alphabet of `alphabet_size` symbols, in
/// deduplicated normal form. The standard differential-testing corpus:
/// for alphabet 2, max_prefix 3, max_period 3 this is a few dozen words.
std::vector<UpWord> enumerate_up_words(int alphabet_size, int max_prefix, int max_period);

}  // namespace slat::words
