// Random Büchi automata for property-based tests and benches.
#pragma once

#include <algorithm>
#include <random>

#include "buchi/nba.hpp"

namespace slat::buchi {

struct RandomNbaConfig {
  int num_states = 4;
  int alphabet_size = 2;
  /// Expected number of successors per (state, symbol).
  double transition_density = 1.2;
  /// Probability that a state is accepting (at least one is forced).
  double accepting_probability = 0.4;
};

/// A random automaton per `config`. Always has ≥ 1 accepting state and at
/// least one outgoing transition per (state, symbol) pair with probability
/// controlled by the density (dead ends are allowed — the algorithms must
/// cope with them anyway).
Nba random_nba(const RandomNbaConfig& config, std::mt19937& rng);

}  // namespace slat::buchi
