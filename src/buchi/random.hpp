// Random Büchi automata for property-based tests and benches.
#pragma once

#include <algorithm>
#include <random>

#include "buchi/nba.hpp"

namespace slat::buchi {

struct RandomNbaConfig {
  int num_states = 4;
  int alphabet_size = 2;
  /// Expected number of successors per (state, symbol).
  double transition_density = 1.2;
  /// Probability that a state is accepting (at least one is forced).
  double accepting_probability = 0.4;
};

/// A random automaton per `config`. Always has ≥ 1 accepting state and at
/// least one outgoing transition per (state, symbol) pair with probability
/// controlled by the density (dead ends are allowed — the algorithms must
/// cope with them anyway).
Nba random_nba(const RandomNbaConfig& config, std::mt19937& rng);

/// Same distribution family at scale: draws a Poisson(density) successor
/// count per (state, symbol) and samples that many distinct targets, so
/// generation is O(edges) instead of the O(states²) per-pair Bernoulli sweep
/// of `random_nba`. Meant for the 10^4–10^6-state scaling benches, where the
/// quadratic sweep would dominate the measured kernels. Not stream-compatible
/// with `random_nba` (different draws), so existing qc corpora are unaffected.
Nba sparse_random_nba(const RandomNbaConfig& config, std::mt19937& rng);

}  // namespace slat::buchi
