#include "buchi/simulation.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/parallel.hpp"

namespace slat::buchi {

SimulationPreorder direct_simulation(const Nba& nba) {
  const int n = nba.num_states();
  const Sym sigma = nba.alphabet().size();

  // Per-(state, symbol) successor bitsets: the inner "∃ t' ∈ δ(t, s) with
  // q' ⪯ t'" test becomes one word-wise intersection.
  std::vector<core::StateSet> succ_bits(static_cast<std::size_t>(n) * sigma);
  core::parallel_for(n * sigma, [&](int cell) {
    const State q = cell / sigma;
    const Sym s = cell % sigma;
    core::StateSet bits(n);
    for (State to : nba.successors(q, s)) bits.insert(to);
    succ_bits[cell] = std::move(bits);
  });
  const auto succ = [&](State q, Sym s) -> const core::StateSet& {
    return succ_bits[static_cast<std::size_t>(q) * sigma + s];
  };

  // Initial over-approximation: t may simulate q only if it matches the
  // acceptance obligation and is not missing a symbol q can move on.
  SimulationPreorder sim;
  sim.simulators.assign(n, core::StateSet(n));
  for (State q = 0; q < n; ++q) {
    for (State t = 0; t < n; ++t) {
      if (nba.is_accepting(q) && !nba.is_accepting(t)) continue;
      bool ok = true;
      for (Sym s = 0; s < sigma && ok; ++s) {
        ok = succ(q, s).empty() || !succ(t, s).empty();
      }
      if (ok) sim.simulators[q].insert(t);
    }
  }

  // Greatest-fixpoint refinement, Jacobi-style: every round rebuilds each
  // row from the PREVIOUS round's rows only, so rows are independent and the
  // rounds parallelize with deterministic output. Jacobi reaches the same
  // greatest fixpoint as in-place refinement (the operator is monotone),
  // just in possibly more rounds — each round removes at least one pair, so
  // at most n² rounds.
  std::vector<core::StateSet> next(n);
  while (true) {
    bool changed = false;
    core::parallel_for(n, [&](int q) {
      core::StateSet row(n);
      sim.simulators[q].for_each([&](int t) {
        bool ok = true;
        for (Sym s = 0; s < sigma && ok; ++s) {
          for (State qs : nba.successors(q, s)) {
            // Some successor of t must simulate qs.
            if (!succ(t, s).intersects(sim.simulators[qs])) {
              ok = false;
              break;
            }
          }
        }
        if (ok) row.insert(t);
      });
      next[q] = std::move(row);
    });
    for (State q = 0; q < n; ++q) {
      if (!(next[q] == sim.simulators[q])) {
        changed = true;
        break;
      }
    }
    sim.simulators.swap(next);
    if (!changed) break;
  }
  return sim;
}

Nba simulation_quotient(const Nba& nba) {
  const Nba trimmed = nba.trim();
  const int n = trimmed.num_states();
  const SimulationPreorder sim = direct_simulation(trimmed);

  // Classes of mutual simulation, representatives in ascending state order
  // (deterministic regardless of how the preorder was computed).
  std::vector<int> cls(n, -1);
  int num_classes = 0;
  for (State q = 0; q < n; ++q) {
    for (State r = 0; r < q; ++r) {
      // Mutual simulation is an equivalence, so joining the first mutually
      // similar earlier state lands q in a well-defined class.
      if (sim.simulates(r, q) && sim.simulates(q, r)) {
        cls[q] = cls[r];
        break;
      }
    }
    if (cls[q] == -1) cls[q] = num_classes++;
  }
  if (num_classes == n) return trimmed;

  // Mutually simulating states carry the same acceptance bit (q ∈ F ⇒ t ∈ F
  // in both directions), so the class bit is well-defined.
  Nba out(trimmed.alphabet(), num_classes, cls[trimmed.initial()]);
  for (State q = 0; q < n; ++q) {
    out.set_accepting(cls[q], trimmed.is_accepting(q));
    for (Sym s = 0; s < trimmed.alphabet().size(); ++s) {
      for (State to : trimmed.successors(q, s)) out.add_transition(cls[q], s, cls[to]);
    }
  }
  return out;
}

}  // namespace slat::buchi
