// Direct simulation on Büchi automata: the preorder, and the quotient.
//
// State t *directly simulates* state q (written q ⪯ t) iff t matches q's
// acceptance bit obligation (q ∈ F ⇒ t ∈ F) and, for every symbol, every
// successor of q is simulated by some successor of t. Direct simulation
// implies language containment (L(q) ⊆ L(t)), which makes it the cheap
// polynomial substitute for the exponential inclusion check in two roles:
//
//   * subsumption — the antichain inclusion engine (inclusion.hpp) prunes a
//     frontier element whenever another element is pointwise ⪯-dominated,
//     which is strictly coarser (= prunes more) than plain set inclusion;
//   * reduction  — quotienting by mutual direct simulation is language-
//     preserving (unlike fair simulation) and merges states bisimulation
//     cannot, since simulation matches successors one-by-one instead of
//     comparing whole successor-class sets. `Nba::reduce(ReduceMode::
//     kSimulation)` applies it.
//
// The preorder is computed as a greatest-fixpoint refinement, Jacobi-style:
// each round rebuilds every row from the previous round's rows, so rounds
// parallelize over states with the PR2 slot-writing contract and the result
// is bit-identical at any thread count.
#pragma once

#include <vector>

#include "buchi/nba.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

/// The direct-simulation preorder, as one bitset row per state.
struct SimulationPreorder {
  /// simulators[q] = the set of states t with q ⪯ t (always contains q).
  std::vector<core::StateSet> simulators;

  /// Does t directly simulate q?
  bool simulates(State t, State q) const { return simulators[q].contains(t); }
};

/// Computes the direct-simulation preorder of `nba` (greatest fixpoint,
/// level-synchronous over the thread pool; deterministic output).
SimulationPreorder direct_simulation(const Nba& nba);

/// The quotient of `nba` by mutual direct simulation (⪯ ∩ ⪰), after
/// trimming. Language-preserving; at least as coarse as the bisimulation
/// quotient of Nba::reduce().
Nba simulation_quotient(const Nba& nba);

}  // namespace slat::buchi
