// Language-level comparisons between Büchi automata.
//
// Exact comparisons run on the antichain-based inclusion engine
// (inclusion.hpp) by default: an on-the-fly search of the lhs × subset/
// profile-view-of-rhs product with simulation-strengthened subsumption,
// which never builds the complement. Still worst-case exponential (the
// problem is PSPACE-complete) but typically explores a small fraction of
// the rank space that complementation materializes up front. Set
// SLAT_INCLUSION=complement (or install an InclusionBackendScope) to route
// the same queries through lhs ∩ ¬rhs emptiness instead — kept as the
// differential oracle. Sampled comparisons evaluate both automata on a
// corpus of ultimately periodic words — sound for refutation, and complete
// in the limit (two ω-regular languages agreeing on every UP-word are
// equal).
#pragma once

#include <optional>
#include <vector>

#include "buchi/nba.hpp"

namespace slat::buchi {

/// Exact: L(lhs) ⊆ L(rhs)? Decided as lhs ∩ ¬rhs = ∅.
bool is_subset(const Nba& lhs, const Nba& rhs);

/// Exact: L(lhs) = L(rhs)?
bool is_equivalent(const Nba& lhs, const Nba& rhs);

/// Exact: a word in L(lhs) \ L(rhs), if any.
std::optional<UpWord> find_separating_word(const Nba& lhs, const Nba& rhs);

/// Sampled: do the automata agree on every word of the corpus? Returns a
/// disagreeing word if any.
std::optional<UpWord> find_disagreement(const Nba& lhs, const Nba& rhs,
                                        const std::vector<UpWord>& corpus);

}  // namespace slat::buchi
