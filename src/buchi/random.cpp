#include "buchi/random.hpp"

#include "common/assert.hpp"

namespace slat::buchi {

Nba random_nba(const RandomNbaConfig& config, std::mt19937& rng) {
  SLAT_ASSERT(config.num_states >= 1 && config.alphabet_size >= 1);
  Nba nba(Alphabet::of_size(config.alphabet_size), config.num_states, 0);

  std::uniform_int_distribution<int> pick_state(0, config.num_states - 1);
  std::bernoulli_distribution accepting(config.accepting_probability);
  // Per (state, symbol): draw a successor count around the density.
  const double p_edge =
      std::min(1.0, config.transition_density / config.num_states);
  std::bernoulli_distribution edge(p_edge);

  for (State q = 0; q < config.num_states; ++q) {
    if (accepting(rng)) nba.set_accepting(q, true);
    for (Sym s = 0; s < config.alphabet_size; ++s) {
      for (State to = 0; to < config.num_states; ++to) {
        if (edge(rng)) nba.add_transition(q, s, to);
      }
    }
  }
  if (nba.num_accepting() == 0) nba.set_accepting(pick_state(rng), true);
  return nba;
}

}  // namespace slat::buchi
