#include "buchi/random.hpp"

#include "common/assert.hpp"

namespace slat::buchi {

Nba random_nba(const RandomNbaConfig& config, std::mt19937& rng) {
  SLAT_ASSERT(config.num_states >= 1 && config.alphabet_size >= 1);
  Nba nba(Alphabet::of_size(config.alphabet_size), config.num_states, 0);

  std::uniform_int_distribution<int> pick_state(0, config.num_states - 1);
  std::bernoulli_distribution accepting(config.accepting_probability);
  // Per (state, symbol): draw a successor count around the density.
  const double p_edge =
      std::min(1.0, config.transition_density / config.num_states);
  std::bernoulli_distribution edge(p_edge);

  for (State q = 0; q < config.num_states; ++q) {
    if (accepting(rng)) nba.set_accepting(q, true);
    for (Sym s = 0; s < config.alphabet_size; ++s) {
      for (State to = 0; to < config.num_states; ++to) {
        if (edge(rng)) nba.add_transition(q, s, to);
      }
    }
  }
  if (nba.num_accepting() == 0) nba.set_accepting(pick_state(rng), true);
  return nba;
}

Nba sparse_random_nba(const RandomNbaConfig& config, std::mt19937& rng) {
  SLAT_ASSERT(config.num_states >= 1 && config.alphabet_size >= 1);
  Nba nba(Alphabet::of_size(config.alphabet_size), config.num_states, 0);

  std::uniform_int_distribution<int> pick_state(0, config.num_states - 1);
  std::bernoulli_distribution accepting(config.accepting_probability);
  std::poisson_distribution<int> out_degree(config.transition_density);

  // Out-degree first, then targets: per (state, symbol) the successor count
  // is Poisson(density) — the states→∞ limit of the per-pair Bernoulli
  // model above — and each target is a uniform draw. Duplicate draws are
  // simply dropped by add_transition's slice dedup, which thins the degree
  // only by O(degree²/states): negligible at the scales this is for.
  for (State q = 0; q < config.num_states; ++q) {
    if (accepting(rng)) nba.set_accepting(q, true);
    for (Sym s = 0; s < config.alphabet_size; ++s) {
      const int degree = std::min(out_degree(rng), config.num_states);
      for (int i = 0; i < degree; ++i) {
        nba.add_transition(q, s, pick_state(rng));
      }
    }
  }
  if (nba.num_accepting() == 0) nba.set_accepting(pick_state(rng), true);
  return nba;
}

}  // namespace slat::buchi
