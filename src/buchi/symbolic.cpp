#include "buchi/symbolic.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::buchi {

using words::AlphabetBackend;
using words::CubeStore;
using words::LabelId;

SymbolicNba::SymbolicNba(Alphabet alphabet, std::shared_ptr<CubeStore> store,
                         int num_states, State initial)
    : alphabet_(std::move(alphabet)),
      store_(std::move(store)),
      initial_(initial),
      accepting_(num_states, false),
      edges_(num_states) {
  SLAT_ASSERT_MSG(alphabet_.ap_backed(), "symbolic automata need an AP alphabet");
  if (store_ == nullptr) store_ = std::make_shared<CubeStore>(alphabet_.ap_count());
  SLAT_ASSERT(store_->num_aps() == alphabet_.ap_count());
  SLAT_ASSERT(num_states >= 1 && initial >= 0 && initial < num_states);
}

SymbolicNba SymbolicNba::from_explicit(const Nba& nba) {
  SLAT_ASSERT_MSG(nba.alphabet().ap_backed(),
                  "from_explicit lifts AP-alphabet automata only");
  SymbolicNba out(nba.alphabet(), nullptr, nba.num_states(), nba.initial());
  for (State q = 0; q < nba.num_states(); ++q) {
    out.set_accepting(q, nba.is_accepting(q));
    for (Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (State to : nba.successors(q, s)) {
        out.add_edge(q, out.store_->letter(s), to);
      }
    }
  }
  return out;
}

SymbolicNba SymbolicNba::empty_language(Alphabet alphabet,
                                        std::shared_ptr<CubeStore> store) {
  return SymbolicNba(std::move(alphabet), std::move(store), 1, 0);
}

SymbolicNba SymbolicNba::universal(Alphabet alphabet,
                                   std::shared_ptr<CubeStore> store) {
  SymbolicNba out(std::move(alphabet), std::move(store), 1, 0);
  out.set_accepting(0, true);
  out.add_edge(0, words::kFullLabel, 0);
  return out;
}

void SymbolicNba::set_accepting(State q, bool accepting) {
  SLAT_ASSERT(q >= 0 && q < num_states());
  accepting_[q] = accepting;
}

State SymbolicNba::add_state() {
  accepting_.push_back(false);
  edges_.emplace_back();
  return num_states() - 1;
}

void SymbolicNba::add_edge(State from, LabelId label, State to) {
  SLAT_ASSERT(from >= 0 && from < num_states());
  SLAT_ASSERT(to >= 0 && to < num_states());
  if (store_->is_empty(label)) return;
  edges_[from].push_back(Edge{label, to});
}

int SymbolicNba::num_edges() const {
  int total = 0;
  for (const auto& row : edges_) total += static_cast<int>(row.size());
  return total;
}

std::vector<bool> SymbolicNba::reachable_states() const {
  std::vector<bool> seen(num_states(), false);
  std::deque<State> queue{initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (const Edge& e : edges_[q]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  return seen;
}

std::vector<bool> SymbolicNba::states_with_nonempty_language() const {
  // Same predicate as Nba::states_with_nonempty_language, on the labeled
  // graph: an edge with a non-empty label carries at least one letter, so
  // the SCC structure, the accepting-cycle states and the backward closure
  // coincide with the expansion's.
  const int n = num_states();
  const auto scc = detail::strongly_connected_components(
      n, [this](int q, const std::function<void(int)>& visit) {
        for (const Edge& e : edges_[q]) visit(e.to);
      });
  std::vector<int> scc_size(scc.num_components, 0);
  for (State q = 0; q < n; ++q) ++scc_size[scc.component[q]];
  std::vector<bool> on_cycle(n, false);
  for (State q = 0; q < n; ++q) {
    if (!accepting_[q]) continue;
    const bool self_loop =
        std::any_of(edges_[q].begin(), edges_[q].end(),
                    [q](const Edge& e) { return e.to == q; });
    on_cycle[q] = self_loop || scc_size[scc.component[q]] >= 2;
  }
  // Backward BFS over predecessor lists.
  std::vector<std::vector<State>> preds(n);
  for (State q = 0; q < n; ++q) {
    for (const Edge& e : edges_[q]) preds[e.to].push_back(q);
  }
  std::vector<bool> nonempty(n, false);
  std::deque<State> queue;
  for (State q = 0; q < n; ++q) {
    if (on_cycle[q]) {
      nonempty[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (State pred : preds[q]) {
      if (!nonempty[pred]) {
        nonempty[pred] = true;
        queue.push_back(pred);
      }
    }
  }
  return nonempty;
}

SymbolicNba SymbolicNba::restrict_to(const std::vector<bool>& keep) const {
  SLAT_ASSERT(static_cast<int>(keep.size()) == num_states());
  if (!keep[initial_]) return empty_language(alphabet_, store_);
  std::vector<State> remap(num_states(), -1);
  int next_id = 0;
  for (State q = 0; q < num_states(); ++q) {
    if (keep[q]) remap[q] = next_id++;
  }
  SymbolicNba out(alphabet_, store_, std::max(next_id, 1), remap[initial_]);
  for (State q = 0; q < num_states(); ++q) {
    if (!keep[q]) continue;
    out.set_accepting(remap[q], accepting_[q]);
    for (const Edge& e : edges_[q]) {
      if (keep[e.to]) out.add_edge(remap[q], e.label, remap[e.to]);
    }
  }
  return out;
}

SymbolicNba SymbolicNba::trim() const {
  const auto reachable = reachable_states();
  const auto nonempty = states_with_nonempty_language();
  std::vector<bool> keep(num_states());
  for (State q = 0; q < num_states(); ++q) keep[q] = reachable[q] && nonempty[q];
  return restrict_to(keep);
}

Nba SymbolicNba::expand() const {
  Nba out(alphabet_, num_states(), initial_);
  for (State q = 0; q < num_states(); ++q) {
    out.set_accepting(q, accepting_[q]);
    for (const Edge& e : edges_[q]) {
      for (Sym s : store_->expand_letters(e.label)) {
        out.add_transition(q, s, e.to);
      }
    }
  }
  return out;
}

SymbolicNba SymbolicNba::rebased(std::shared_ptr<CubeStore> store) const {
  if (store.get() == store_.get()) return *this;
  SymbolicNba out(alphabet_, store, num_states(), initial_);
  for (State q = 0; q < num_states(); ++q) {
    out.set_accepting(q, accepting_[q]);
    for (const Edge& e : edges_[q]) {
      out.add_edge(q, out.store_->import(*store_, e.label), e.to);
    }
  }
  return out;
}

core::Digest fingerprint(const SymbolicNba& nba) {
  core::DigestBuilder b;
  b.add_string("buchi.symbolic_nba");
  words::digest_alphabet(b, nba.alphabet());
  b.add_int(nba.num_states()).add_int(nba.initial());
  const CubeStore& store = *nba.store();
  for (State q = 0; q < nba.num_states(); ++q) {
    b.add_bool(nba.is_accepting(q));
    const auto row = nba.edges(q);
    b.add(row.size());
    for (const SymbolicNba::Edge& e : row) {
      const auto cubes = store.cubes(e.label);
      b.add(cubes.size());
      for (const words::Cube& c : cubes) b.add(c.must_true).add(c.must_false);
      b.add_int(e.to);
    }
  }
  return b.digest();
}

Sym BlockAlphabet::block_of(Sym letter) const {
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    if (store->matches(blocks[j], letter)) return static_cast<Sym>(j);
  }
  SLAT_ASSERT_MSG(false, "blocks must partition the alphabet");
  return -1;
}

BlockAlphabet make_block_alphabet(std::shared_ptr<CubeStore> store,
                                  std::span<const LabelId> labels) {
  BlockAlphabet out;
  out.blocks = store->refine(labels);
  out.min_letters.reserve(out.blocks.size());
  for (const LabelId block : out.blocks) {
    out.min_letters.push_back(store->min_letter(block));
  }
  out.core_alphabet = Alphabet::of_size(static_cast<int>(out.blocks.size()));
  out.store = std::move(store);
  return out;
}

Nba condense(const SymbolicNba& nba, const BlockAlphabet& blocks) {
  SLAT_ASSERT(blocks.store.get() == nba.store().get());
  CubeStore& store = *blocks.store;
  // Per-label block membership, computed once per distinct label (hash
  // consing makes the memo a structural dedup). A block intersects a label
  // iff it is contained in it — the partition refines every label.
  std::unordered_map<LabelId, std::vector<Sym>> label_blocks;
  const auto blocks_of = [&](LabelId label) -> const std::vector<Sym>& {
    auto it = label_blocks.find(label);
    if (it == label_blocks.end()) {
      std::vector<Sym> member;
      for (int j = 0; j < blocks.size(); ++j) {
        if (!store.is_empty(store.intersect(label, blocks.blocks[j]))) {
          member.push_back(static_cast<Sym>(j));
        }
      }
      it = label_blocks.emplace(label, std::move(member)).first;
    }
    return it->second;
  };
  Nba out(blocks.core_alphabet, nba.num_states(), nba.initial());
  for (State q = 0; q < nba.num_states(); ++q) {
    out.set_accepting(q, nba.is_accepting(q));
    for (const SymbolicNba::Edge& e : nba.edges(q)) {
      for (const Sym j : blocks_of(e.label)) out.add_transition(q, j, e.to);
    }
  }
  return out;
}

SymbolicNba safety_closure(const SymbolicNba& nba) {
  if (words::alphabet_backend() == AlphabetBackend::kExplicit) {
    // Oracle: the seed-era explicit closure on the expansion, lifted back.
    return SymbolicNba::from_explicit(safety_closure(nba.expand()));
  }
  static core::MemoCache<SymbolicNba>& cache =
      *new core::MemoCache<SymbolicNba>("buchi.symbolic_closure");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("lcl").add_digest(fingerprint(nba)).digest(),
      [&] {
        // Mirrors the explicit safety_closure line by line (trim to
        // non-empty residuals, then all-accepting).
        SymbolicNba trimmed = nba.restrict_to(nba.states_with_nonempty_language());
        if (trimmed.num_edges() == 0) {
          return SymbolicNba::empty_language(nba.alphabet(), nba.store());
        }
        for (State q = 0; q < trimmed.num_states(); ++q) {
          trimmed.set_accepting(q, true);
        }
        return trimmed;
      });
}

SymbolicDetSafety SymbolicDetSafety::determinize(const SymbolicNba& closure) {
  if (words::alphabet_backend() == AlphabetBackend::kExplicit) {
    return SymbolicDetSafety(closure.alphabet(),
                             DetSafety::determinize(closure.expand()),
                             std::nullopt);
  }
  std::vector<LabelId> labels;
  for (State q = 0; q < closure.num_states(); ++q) {
    for (const SymbolicNba::Edge& e : closure.edges(q)) labels.push_back(e.label);
  }
  BlockAlphabet blocks = make_block_alphabet(closure.store(), labels);
  const Nba core = condense(closure, blocks);
  return SymbolicDetSafety(closure.alphabet(), DetSafety::determinize(core),
                           std::move(blocks));
}

SymbolicDetSafety SymbolicDetSafety::from_nba(const SymbolicNba& nba) {
  return determinize(safety_closure(nba));
}

bool SymbolicDetSafety::accepts(const UpWord& w) const {
  State q = initial();
  const std::size_t bound = w.prefix_size() + w.period_size() * (num_states() + 1);
  for (std::size_t i = 0; i < bound; ++i) {
    if (q == sink()) return false;
    q = step(q, w.at(i));
  }
  return q != sink();
}

bool SymbolicDetSafety::accepts_prefix(const Word& u) const {
  State q = initial();
  for (Sym s : u) {
    if (q == sink()) return false;
    q = step(q, s);
  }
  return q != sink();
}

namespace {

UpWord map_word(const UpWord& w, const std::vector<Sym>& letter_of_block) {
  Word prefix = w.prefix();
  Word period = w.period();
  for (Sym& s : prefix) s = letter_of_block[s];
  for (Sym& s : period) s = letter_of_block[s];
  return UpWord(std::move(prefix), std::move(period));
}

InclusionResult check_inclusion_symbolic(const SymbolicNba& lhs,
                                         const SymbolicNba& rhs) {
  const SymbolicNba rhs_shared = rhs.rebased(lhs.store());
  std::vector<LabelId> labels;
  for (const SymbolicNba* nba : {&lhs, &rhs_shared}) {
    for (State q = 0; q < nba->num_states(); ++q) {
      for (const SymbolicNba::Edge& e : nba->edges(q)) labels.push_back(e.label);
    }
  }
  const BlockAlphabet blocks = make_block_alphabet(lhs.store(), labels);
  // The antichain engine (with its memo cache, metrics and SLAT_INCLUSION
  // differential) runs over the m pseudo-letters; counterexample letters
  // come back as blocks and are mapped to the block minima, which is what
  // the explicit engine's ascending letter loops would have emitted.
  InclusionResult result =
      check_inclusion(condense(lhs, blocks), condense(rhs_shared, blocks));
  if (result.counterexample.has_value()) {
    result.counterexample = map_word(*result.counterexample, blocks.min_letters);
  }
  return result;
}

}  // namespace

InclusionResult check_inclusion(const SymbolicNba& lhs, const SymbolicNba& rhs) {
  SLAT_ASSERT_MSG(lhs.alphabet() == rhs.alphabet(),
                  "inclusion requires a common alphabet");
  if (words::alphabet_backend() == AlphabetBackend::kExplicit) {
    return check_inclusion(lhs.expand(), rhs.expand());
  }
  return check_inclusion_symbolic(lhs, rhs);
}

InclusionResult check_universality(const SymbolicNba& nba) {
  if (words::alphabet_backend() == AlphabetBackend::kExplicit) {
    return check_universality(nba.expand());
  }
  return check_inclusion_symbolic(
      SymbolicNba::universal(nba.alphabet(), nba.store()), nba);
}

InclusionResult check_emptiness(const SymbolicNba& nba) {
  if (words::alphabet_backend() == AlphabetBackend::kExplicit) {
    return check_emptiness(nba.expand());
  }
  std::vector<LabelId> labels;
  for (State q = 0; q < nba.num_states(); ++q) {
    for (const SymbolicNba::Edge& e : nba.edges(q)) labels.push_back(e.label);
  }
  const BlockAlphabet blocks = make_block_alphabet(nba.store(), labels);
  InclusionResult result = check_emptiness(condense(nba, blocks));
  if (result.counterexample.has_value()) {
    result.counterexample = map_word(*result.counterexample, blocks.min_letters);
  }
  return result;
}

}  // namespace slat::buchi
