#include "buchi/language.hpp"

#include "buchi/inclusion.hpp"

namespace slat::buchi {

// Every exact query below is one or two inclusion checks on the active
// backend (inclusion.hpp). The default antichain engine memoizes verdicts
// AND witnesses in the "buchi.inclusion" cache, so is_equivalent followed by
// find_separating_word on the same pair recomputes nothing; under
// SLAT_INCLUSION=complement the queries route through rank-based
// complementation instead, which has its own "buchi.complement" cache
// (asserted via metrics in cache_equivalence_test).

bool is_subset(const Nba& lhs, const Nba& rhs) {
  return check_inclusion(lhs, rhs).included;
}

bool is_equivalent(const Nba& lhs, const Nba& rhs) {
  return check_inclusion(lhs, rhs).included && check_inclusion(rhs, lhs).included;
}

std::optional<UpWord> find_separating_word(const Nba& lhs, const Nba& rhs) {
  return check_inclusion(lhs, rhs).counterexample;
}

std::optional<UpWord> find_disagreement(const Nba& lhs, const Nba& rhs,
                                        const std::vector<UpWord>& corpus) {
  for (const UpWord& w : corpus) {
    if (lhs.accepts(w) != rhs.accepts(w)) return w;
  }
  return std::nullopt;
}

}  // namespace slat::buchi
