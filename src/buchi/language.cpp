#include "buchi/language.hpp"

#include "buchi/complement.hpp"

namespace slat::buchi {

// Every query below complements its right-hand side; complement(rhs) routes
// through the "buchi.complement" memo cache, so e.g. is_equivalent pays the
// exponential construction once per distinct automaton instead of once per
// direction, and a later find_separating_word against the same rhs is a hit
// (asserted via metrics in cache_equivalence_test).

bool is_subset(const Nba& lhs, const Nba& rhs) {
  return intersect(lhs, complement(rhs)).is_empty();
}

bool is_equivalent(const Nba& lhs, const Nba& rhs) {
  return is_subset(lhs, rhs) && is_subset(rhs, lhs);
}

std::optional<UpWord> find_separating_word(const Nba& lhs, const Nba& rhs) {
  return intersect(lhs, complement(rhs)).find_accepted_word();
}

std::optional<UpWord> find_disagreement(const Nba& lhs, const Nba& rhs,
                                        const std::vector<UpWord>& corpus) {
  for (const UpWord& w : corpus) {
    if (lhs.accepts(w) != rhs.accepts(w)) return w;
  }
  return std::nullopt;
}

}  // namespace slat::buchi
