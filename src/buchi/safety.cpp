#include "buchi/safety.hpp"

#include <algorithm>

#include "buchi/complement.hpp"
#include "common/assert.hpp"
#include "core/parallel.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

Nba safety_closure(const Nba& nba) {
  // The closure runs an SCC pass per call and feeds every downstream safety
  // product (determinization, decomposition, classification, monitors) —
  // memoized by content digest so the pipeline computes it once per
  // distinct automaton.
  static core::MemoCache<Nba>& cache = *new core::MemoCache<Nba>("buchi.safety_closure");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("lcl").add_digest(fingerprint(nba)).digest(), [&] {
        // Keep exactly the states with non-empty residual language; if the
        // initial state goes, the language (and its closure) is empty.
        Nba trimmed = nba.restrict_to(nba.states_with_nonempty_language());
        if (trimmed.is_trivially_dead()) return Nba::empty_language(nba.alphabet());
        for (State q = 0; q < trimmed.num_states(); ++q) trimmed.set_accepting(q, true);
        return trimmed;
      });
}

DetSafety DetSafety::from_nba(const Nba& nba) {
  // Cached as a unit: a hit skips the closure AND the subset construction.
  // Misses still flow through the cached safety_closure/determinize layers,
  // so partially overlapping pipelines share whatever stage they can.
  static core::MemoCache<DetSafety>& cache =
      *new core::MemoCache<DetSafety>("buchi.det_safety");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("from_nba").add_digest(fingerprint(nba)).digest(),
      [&] { return determinize(safety_closure(nba)); });
}

DetSafety DetSafety::determinize(const Nba& closure) {
  static core::MemoCache<DetSafety>& cache =
      *new core::MemoCache<DetSafety>("buchi.determinize");
  return cache.get_or_compute(core::DigestBuilder()
                                  .add_string("determinize")
                                  .add_digest(fingerprint(closure))
                                  .digest(),
                              [&] { return determinize_uncached(closure); });
}

DetSafety DetSafety::determinize_uncached(const Nba& closure) {
  DetSafety out(closure.alphabet());
  const Sym sigma = out.alphabet_.size();
  const int n = closure.num_states();

  // Subsets are SORTED MEMBER VECTORS interned through the open-addressing
  // table. Ids are assigned in discovery order — the same order the seed's
  // map-based (and the interim bitset-keyed) numbering assigned them, since
  // sorted-vector equality is set equality — so the output automaton stays
  // bit-identical. Unlike a bitset universe, memory is proportional to the
  // subsets actually discovered (O(Σ |subset|)), never O(n²) bits, which is
  // what lets 10^5–10^6-state closures determinize at all.
  core::InternTable<core::IntVecKey> intern;
  intern.reserve(2 * n + 2);  // heuristic floor; avoids the early rehash storm
  const auto intern_set = [&](std::vector<int> members) {
    bool created = false;
    const State id = intern.intern(core::IntVecKey{std::move(members)}, &created);
    if (created) out.delta_.resize(out.delta_.size() + sigma, -1);
    return id;
  };

  const State sink = intern_set({});  // empty subset = rejecting sink, id 0
  out.sink_ = sink;
  if (closure.is_trivially_dead()) {
    // No transitions means L(closure) = ∅: even the empty prefix is bad, so
    // the deterministic run starts dead — regardless of whether the lone
    // initial state happens to be marked accepting.
    out.initial_ = sink;
  } else {
    out.initial_ = intern_set({closure.initial()});
  }

  // Level-synchronous BFS over the subset graph. Each level is the block of
  // ids interned but not yet expanded; their successor images are
  // independent (they only READ the intern table), so they are computed in
  // parallel into per-cell scratch vectors, then interned SEQUENTIALLY in
  // canonical (source-id, symbol) order. That order is exactly the order the
  // sequential worklist loop interned them in, so discovery-order ids — and
  // therefore the output automaton — are bit-identical at any thread count
  // (differentially tested in parallel_equivalence_test and pinned to the
  // seed construction in kernel_equivalence_test). An image is a direct
  // gather of the members' CSR successor slices, then sort + unique — no
  // per-(state, symbol) bitset prepass.
  std::vector<std::vector<int>> images;
  for (State level_begin = 0; level_begin < intern.size();) {
    const State level_end = intern.size();
    const int frontier = level_end - level_begin;
    images.assign(static_cast<std::size_t>(frontier) * sigma, {});
    core::parallel_for(
        frontier * sigma,
        [&](int cell) {
          const State current_id = level_begin + cell / sigma;
          const Sym s = cell % sigma;
          std::vector<int> image;
          for (const int q : intern.key(current_id).values) {
            const std::span<const State> succ = closure.successors(q, s);
            image.insert(image.end(), succ.begin(), succ.end());
          }
          std::sort(image.begin(), image.end());
          image.erase(std::unique(image.begin(), image.end()), image.end());
          images[cell] = std::move(image);
        },
        /*grain=*/sigma);
    for (State current_id = level_begin; current_id < level_end; ++current_id) {
      for (Sym s = 0; s < sigma; ++s) {
        const State target =
            intern_set(std::move(images[(current_id - level_begin) * sigma + s]));
        // delta_ may have grown above.
        out.delta_[static_cast<std::size_t>(current_id) * sigma + s] = target;
      }
    }
    level_begin = level_end;
  }
  out.num_states_ = intern.size();
  return out;
}

bool DetSafety::accepts(const UpWord& w) const {
  // Deterministic run; the word is accepted iff the run never reaches the
  // sink. Because the automaton is finite and the word ultimately periodic,
  // it suffices to run for prefix + states * period steps.
  State q = initial_;
  const std::size_t bound = w.prefix_size() + w.period_size() * (num_states() + 1);
  for (std::size_t i = 0; i < bound; ++i) {
    if (q == sink_) return false;
    q = step(q, w.at(i));
  }
  return q != sink_;
}

bool DetSafety::accepts_prefix(const Word& u) const {
  State q = initial_;
  for (Sym s : u) {
    if (q == sink_) return false;
    q = step(q, s);
  }
  return q != sink_;
}

bool DetSafety::is_universal() const {
  // Universal iff the sink is unreachable from the initial state.
  std::vector<bool> seen(num_states(), false);
  std::vector<State> stack{initial_};
  seen[initial_] = true;
  while (!stack.empty()) {
    const State q = stack.back();
    stack.pop_back();
    if (q == sink_) return false;
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      const State next = step(q, s);
      if (!seen[next]) {
        seen[next] = true;
        stack.push_back(next);
      }
    }
  }
  return true;
}

Nba DetSafety::to_nba() const {
  Nba out(alphabet_, num_states(), initial_);
  for (State q = 0; q < num_states(); ++q) {
    if (q == sink_) continue;
    out.set_accepting(q, true);
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      if (step(q, s) != sink_) out.add_transition(q, s, step(q, s));
    }
  }
  return out;
}

Nba DetSafety::complement_nba() const {
  // Same structure, all transitions kept; accept exactly at the sink, which
  // is absorbing: a word is accepted iff its run falls off the safe region.
  Nba out(alphabet_, num_states(), initial_);
  out.set_accepting(sink_, true);
  for (State q = 0; q < num_states(); ++q) {
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      out.add_transition(q, s, step(q, s));
    }
  }
  // Ensure the sink loops on every symbol (it does by construction: the
  // image of the empty subset is empty).
  for (Sym s = 0; s < alphabet_.size(); ++s) {
    SLAT_ASSERT(step(sink_, s) == sink_);
  }
  return out;
}

BuchiDecomposition decompose(const Nba& nba) {
  const DetSafety det = DetSafety::from_nba(nba);
  return BuchiDecomposition{
      .safety = det.to_nba(),
      .liveness = unite(nba, det.complement_nba()),
  };
}

bool is_safety(const Nba& nba) {
  // L is safety iff lcl(L) ⊆ L, i.e. lcl(L) ∩ ¬L = ∅.
  const Nba closure = safety_closure(nba);
  const Nba not_l = complement(nba);
  return intersect(closure, not_l).is_empty();
}

bool is_liveness(const Nba& nba) {
  return DetSafety::from_nba(nba).is_universal();
}

bool is_cosafety(const Nba& nba) {
  // L is co-safety iff ¬L is safety iff lcl(¬L) ⊆ ¬L iff lcl(¬L) ∩ L = ∅.
  // One complement (exponential), then polynomial closure/emptiness — much
  // cheaper than is_safety(complement(L)), which would complement twice.
  const Nba not_l = complement(nba);
  return intersect(safety_closure(not_l), nba).is_empty();
}

namespace {

// Language equality of two deterministic safety automata: safety languages
// are determined by their good prefixes, so a product BFS comparing
// sink-ness decides it exactly.
bool det_safety_equivalent(const DetSafety& lhs, const DetSafety& rhs) {
  SLAT_ASSERT(lhs.alphabet() == rhs.alphabet());
  // Visited pairs as a flat bitset over a · |rhs| + b: one bit per product
  // state instead of an ordered map node per pair.
  const int m = rhs.num_states();
  core::StateSet seen(lhs.num_states() * m);
  std::vector<std::pair<State, State>> stack{{lhs.initial(), rhs.initial()}};
  seen.insert(lhs.initial() * m + rhs.initial());
  while (!stack.empty()) {
    const auto [a, b] = stack.back();
    stack.pop_back();
    if ((a == lhs.sink()) != (b == rhs.sink())) return false;
    if (a == lhs.sink()) continue;  // both dead: all extensions agree
    for (Sym s = 0; s < lhs.alphabet().size(); ++s) {
      const State na = lhs.step(a, s);
      const State nb = rhs.step(b, s);
      if (!seen.contains(na * m + nb)) {
        seen.insert(na * m + nb);
        stack.emplace_back(na, nb);
      }
    }
  }
  return true;
}

}  // namespace

bool is_machine_closed(const Nba& safety_part, const Nba& liveness_part) {
  // lcl(S ∩ L) = lcl(S): both sides are safety languages, compared exactly
  // through their deterministic forms. (For a safety S, lcl(S) = S.)
  const DetSafety closed_meet = DetSafety::from_nba(intersect(safety_part, liveness_part));
  const DetSafety closed_s = DetSafety::from_nba(safety_part);
  return det_safety_equivalent(closed_meet, closed_s);
}

SafetyClass classify_sampled(const Nba& nba, const std::vector<UpWord>& corpus) {
  const bool live = is_liveness(nba);
  const Nba closure = safety_closure(nba);
  bool safe = true;
  for (const UpWord& w : corpus) {
    if (nba.accepts(w) != closure.accepts(w)) {
      safe = false;
      break;
    }
  }
  if (safe && live) return SafetyClass::kSafetyAndLiveness;
  if (safe) return SafetyClass::kSafety;
  if (live) return SafetyClass::kLiveness;
  return SafetyClass::kNeither;
}

SafetyClass classify(const Nba& nba) {
  const bool live = is_liveness(nba);
  const bool safe = is_safety(nba);
  if (safe && live) return SafetyClass::kSafetyAndLiveness;
  if (safe) return SafetyClass::kSafety;
  if (live) return SafetyClass::kLiveness;
  return SafetyClass::kNeither;
}

const char* to_string(SafetyClass c) {
  switch (c) {
    case SafetyClass::kSafetyAndLiveness:
      return "safety+liveness";
    case SafetyClass::kSafety:
      return "safety";
    case SafetyClass::kLiveness:
      return "liveness";
    case SafetyClass::kNeither:
      return "neither";
  }
  return "unknown";
}

}  // namespace slat::buchi
