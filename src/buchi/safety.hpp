// The linear-time safety closure `lcl` on Büchi automata, and everything the
// paper's Section 2 builds on it: deterministic safety automata, the cheap
// complement of a safety language, safety/liveness predicates, and the
// decomposition L(B) = L(B_S) ∩ L(B_L).
//
// The closure construction is the paper's (§2.4): "remove states that cannot
// reach an accepting state and then make every remaining state an accepting
// state" — with "cannot reach an accepting state" made precise as "has empty
// residual language". The resulting automaton recognizes lcl(L(B)).
#pragma once

#include <optional>
#include <vector>

#include "buchi/nba.hpp"
#include "common/assert.hpp"

namespace slat::buchi {

/// The safety-closure automaton: L(result) = lcl(L(B)). Every state of the
/// result is accepting, so acceptance degenerates to run existence.
Nba safety_closure(const Nba& nba);

/// A deterministic, complete safety automaton: the subset construction of a
/// (closure) automaton. Language = words whose run never falls into the
/// rejecting sink. For any NBA input, recognizes lcl(L(B)) — by König's
/// lemma an infinite word has an infinite run iff all of its finite
/// prefixes have runs.
class DetSafety {
 public:
  /// Subset construction of lcl(B): `determinize(safety_closure(nba))`.
  static DetSafety from_nba(const Nba& nba);

  /// The raw subset-construction kernel over an automaton that is ALREADY in
  /// safety-closure shape (every state accepting, so acceptance degenerates
  /// to run existence). Exposed separately so the closure preprocessing can
  /// be shared/amortized and so benches time the kernel itself. Symbol
  /// images are sparse gathers over the CSR successor slices of the subset's
  /// members (sorted + deduplicated), interned as sorted member vectors
  /// through an open-addressing hash table — memory scales with the subsets
  /// actually discovered, not with |Q|² bits, so 10^5–10^6-state closures
  /// determinize without a quadratic bitset prepass.
  static DetSafety determinize(const Nba& closure);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_states() const { return num_states_; }
  State initial() const { return initial_; }
  /// The rejecting sink (always present, possibly unreachable).
  State sink() const { return sink_; }

  /// One deterministic transition. PRECONDITION: `q` is a state of this
  /// automaton and `s` a symbol of its alphabet — checked in every build
  /// type, because an out-of-range symbol would otherwise read a slot of a
  /// NEIGHBORING state's row (or past the table) and silently return a
  /// garbage state. Mirrors the `Nba::accepts` alphabet precondition.
  State step(State q, Sym s) const {
    SLAT_ASSERT_MSG(q >= 0 && q < num_states_, "state outside the automaton");
    SLAT_ASSERT_MSG(s >= 0 && s < alphabet_.size(),
                    "symbol outside the automaton's alphabet");
    return delta_[static_cast<std::size_t>(q) * alphabet_.size() + s];
  }

  /// Does the word avoid the sink forever? Every symbol of `w` must lie in
  /// the alphabet (precondition, checked).
  bool accepts(const UpWord& w) const;
  /// Does the finite prefix stay out of the sink? (= prefix is "safe")
  /// Every symbol of `u` must lie in the alphabet (precondition, checked).
  bool accepts_prefix(const Word& u) const;

  /// Universality: no reachable sink, i.e. the language is Σ^ω.
  bool is_universal() const;

  /// The same language as an NBA (all live states accepting).
  Nba to_nba() const;

  /// The complement as an NBA: accept by reaching (and then looping in) the
  /// sink. The complement of a safety language is co-safety, so this is
  /// exact and involves no Büchi complementation machinery.
  Nba complement_nba() const;

 private:
  DetSafety(Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  /// The subset-construction body; `determinize` is a memo-cache wrapper
  /// around this.
  static DetSafety determinize_uncached(const Nba& closure);

  Alphabet alphabet_;
  State initial_ = 0;
  State sink_ = 0;
  int num_states_ = 0;
  /// Row-major [state × symbol] table — one flat allocation, so the run
  /// loop in accepts()/is_universal() is a stride-σ array walk with no
  /// per-state indirection.
  std::vector<State> delta_;
};

/// Decomposition per Theorem 2 on the lattice of ω-regular languages:
/// safety part B_S = lcl(B), liveness part B_L = B ∪ ¬lcl(B).
struct BuchiDecomposition {
  Nba safety;    ///< L(safety) = lcl(L(B)) — a safety property
  Nba liveness;  ///< L(liveness) = L(B) ∪ ¬lcl(L(B)) — a liveness property
};

/// Computes the decomposition. The intersection identity
/// L(B) = L(B_S) ∩ L(B_L) and the safety/liveness of the parts are theorems
/// (checked exhaustively in tests), not runtime assertions.
BuchiDecomposition decompose(const Nba& nba);

/// Is L(B) a safety property (L = lcl L)? Exact: checks
/// lcl(L) ∩ ¬L = ∅ using rank-based complementation — exponential in the
/// worst case, intended for small automata.
bool is_safety(const Nba& nba);

/// Is L(B) a liveness property (lcl L = Σ^ω)? Cheap: universality of the
/// deterministic closure automaton.
bool is_liveness(const Nba& nba);

/// The classification of a property, as in the paper's §2.3 examples.
enum class SafetyClass {
  kSafetyAndLiveness,  ///< only Σ^ω itself
  kSafety,
  kLiveness,
  kNeither,
};

SafetyClass classify(const Nba& nba);

/// Is L(B) a co-safety property (its complement is safety, i.e. every word
/// of L has a finite GOOD prefix all of whose extensions stay in L)?
/// Exponential (complements B); intended for small automata.
bool is_cosafety(const Nba& nba);

/// Machine closure (Abadi–Lamport, discussed after the paper's Theorem 6):
/// the pair (S, L) is machine closed iff lcl(L(S) ∩ L(L)) = L(S). The
/// decomposition produced by `decompose` is machine closed by Theorem 6.
/// Exact via the deterministic safety construction on both sides.
bool is_machine_closed(const Nba& safety_part, const Nba& liveness_part);

/// Scalable variant: liveness is still decided exactly (it is cheap), but
/// the safety test compares L and lcl(L) on the given UP-word corpus
/// instead of through complementation. Sound for refutation; a "safety"
/// answer means "not refuted by the corpus".
SafetyClass classify_sampled(const Nba& nba, const std::vector<UpWord>& corpus);

/// Printable name.
const char* to_string(SafetyClass c);

}  // namespace slat::buchi
