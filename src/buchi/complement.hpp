// Full Büchi complementation via the Kupferman–Vardi rank-based
// construction.
//
// The paper leans on "Büchi automata are closed under complementation" to
// make the definable languages a Boolean algebra (the lattice that breaks
// Gumm's ⋁-completeness requirement). This module supplies that closure
// property constructively. States of the complement are pairs (f, O): a
// level ranking f over the current subset (even ranks may still be
// accepting-bound, odd ranks are "safe"; accepting states of the input may
// only get even ranks) and the obligation set O of states whose descent to
// odd ranks is still owed. Acceptance: O empties infinitely often.
//
// Worst-case state count is 2^O(n log n); intended for the small automata
// in the tests/benches (a bench measures the actual blowup).
#pragma once

#include "buchi/nba.hpp"

namespace slat::buchi {

/// L(result) = Σ^ω \ L(nba). `max_rank` overrides the default rank bound
/// 2·n (useful only for experiments; values below the safe bound can
/// under-approximate the complement and are rejected by tests).
Nba complement(const Nba& nba);
Nba complement(const Nba& nba, int max_rank);

}  // namespace slat::buchi
