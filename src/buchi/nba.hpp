// Nondeterministic Büchi automata over ω-words (paper Section 2.4).
//
// States are dense indices; the transition relation is a per-state,
// per-symbol successor list. All algorithms that the paper's results need
// live in this module and its siblings:
//   * emptiness / membership / witness extraction   (nba.hpp)
//   * intersection, union                           (nba.hpp)
//   * the safety closure `lcl` and everything built on it (safety.hpp)
//   * full rank-based complementation               (complement.hpp)
//   * language-level predicates and comparisons     (language.hpp)
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "words/alphabet.hpp"
#include "words/up_word.hpp"

namespace slat::buchi {

using words::Alphabet;
using words::Sym;
using words::UpWord;
using words::Word;

/// State index within an Nba.
using State = int;

/// How aggressively Nba::reduce() merges states. Both modes are
/// language-preserving; simulation is at least as coarse (bisimilar states
/// are mutually similar) but costs a quadratic fixpoint instead of
/// partition refinement.
enum class ReduceMode {
  kBisimulation,  ///< coarsest forward bisimulation respecting acceptance
  kSimulation,    ///< quotient by mutual direct simulation (simulation.hpp)
};

/// A nondeterministic Büchi automaton (Σ, Q, q0, δ, F). Invariants: the
/// initial state exists; every transition endpoint exists; every symbol is
/// in range. The automaton may have unreachable states or dead ends — the
/// algorithms cope, and `trim`-style helpers remove them.
///
/// Transition storage is a flat CSR (compressed sparse row) layout: one
/// contiguous `csr_targets_` array plus a `[state × symbol]` offset table,
/// with the per-state rows of ALL symbols adjacent — so per-(state, symbol)
/// iteration is one contiguous slice and whole-state traversals (SCC,
/// reachability) stream a single span. Mutation (`add_transition`,
/// `add_state`) appends to a pending edge buffer; the CSR is rebuilt
/// lazily, in O(states·|Σ| + edges), on the first read after a mutation.
/// Per-row successor order is first-insertion order with duplicates
/// dropped — exactly the order the historical vector-of-vectors layout
/// produced, so every downstream construction stays bit-identical.
///
/// Thread safety: concurrent READS (successors, traversals) are safe, even
/// when they race on the lazy rebuild (double-checked under a mutex).
/// Mutation must not run concurrently with anything else, same as before.
class Nba {
 public:
  Nba(Alphabet alphabet, int num_states, State initial);

  Nba(const Nba& other);
  Nba(Nba&& other) noexcept;
  Nba& operator=(const Nba& other);
  Nba& operator=(Nba&& other) noexcept;

  /// An automaton with a single non-accepting dead state: L = ∅.
  static Nba empty_language(Alphabet alphabet);
  /// A single accepting state with self-loops on every symbol: L = Σ^ω.
  static Nba universal(Alphabet alphabet);

  int num_states() const { return static_cast<int>(accepting_.size()); }
  const Alphabet& alphabet() const { return alphabet_; }
  State initial() const { return initial_; }

  bool is_accepting(State q) const { return accepting_[q]; }
  void set_accepting(State q, bool accepting);
  std::vector<State> accepting_states() const;
  int num_accepting() const;

  void add_transition(State from, Sym symbol, State to);

  /// Successors of q on `symbol`: a contiguous CSR slice, in first-insertion
  /// order, duplicates removed. The span stays valid until the next
  /// mutation of this automaton.
  std::span<const State> successors(State q, Sym symbol) const {
    SLAT_ASSERT(q >= 0 && q < num_states());
    SLAT_ASSERT(symbol >= 0 && symbol < alphabet_.size());
    if (csr_dirty_.load(std::memory_order_acquire)) rebuild_csr();
    const std::size_t row =
        static_cast<std::size_t>(q) * alphabet_.size() + symbol;
    return {csr_targets_.data() + csr_offsets_[row],
            csr_targets_.data() + csr_offsets_[row + 1]};
  }

  /// Successors of q across ALL symbols, as one contiguous slice (symbols in
  /// increasing order, per-symbol slices concatenated). Symbol-oblivious
  /// traversals — SCC, reachability, trimming — iterate this instead of a
  /// per-symbol loop.
  std::span<const State> all_successors(State q) const {
    SLAT_ASSERT(q >= 0 && q < num_states());
    if (csr_dirty_.load(std::memory_order_acquire)) rebuild_csr();
    const std::size_t first = static_cast<std::size_t>(q) * alphabet_.size();
    return {csr_targets_.data() + csr_offsets_[first],
            csr_targets_.data() + csr_offsets_[first + alphabet_.size()]};
  }

  int num_transitions() const;

  /// Appends a fresh (non-accepting, transitionless) state; returns its id.
  State add_state();

  /// States reachable from the initial state.
  std::vector<bool> reachable_states() const;

  /// For each state q: is L(B with initial q) non-empty? I.e. can q reach an
  /// accepting cycle. This is the paper's "remove states that cannot reach
  /// an accepting state" trimming predicate, made precise.
  std::vector<bool> states_with_nonempty_language() const;

  /// Keeps only states satisfying `keep` (plus the initial state; if the
  /// initial state is dropped, the result is an explicit empty-language
  /// automaton). Transitions into dropped states are removed.
  Nba restrict_to(const std::vector<bool>& keep) const;

  /// Drops states that are unreachable or have empty residual language.
  Nba trim() const;

  /// The language-preserving quotient selected by `mode` (after trimming).
  /// The default merges states by the coarsest forward bisimulation that
  /// respects the accepting bit: states are merged when they accept alike
  /// and have, per symbol, the same SET of successor classes. Cuts
  /// tableau-produced automata down substantially, which in turn shrinks
  /// the rank bound of complementation. `kSimulation` instead quotients by
  /// mutual direct simulation (simulation.hpp) — coarser, used by the
  /// antichain inclusion engine to shrink its right-hand side.
  Nba reduce(ReduceMode mode = ReduceMode::kBisimulation) const;

  /// Is L(B) empty? (No reachable accepting lasso.)
  bool is_empty() const;

  /// True iff the automaton has no transitions at all: no infinite run
  /// exists, so L = ∅ regardless of the acceptance bits. This is the
  /// trivially-empty shape produced by `empty_language` and by `restrict_to`
  /// when everything is dropped; checking it is O(n·|Σ|), with no SCC pass.
  bool is_trivially_dead() const { return num_transitions() == 0; }

  /// A witness word in L(B), if non-empty.
  std::optional<UpWord> find_accepted_word() const;

  /// Does the automaton accept the ultimately periodic word `w`? Decided
  /// exactly via the product of B with the lasso graph of `w`.
  bool accepts(const UpWord& w) const;

  /// Does any run (accepting or not) survive the finite word `u`? Used for
  /// prefix-extendability checks.
  bool has_run_on_prefix(const Word& u) const;

  /// Human-readable dump (for examples and debugging).
  std::string to_string() const;

 private:
  /// Merges `pending_edges_` (and any state-count growth) into the CSR
  /// arrays. Const because it is triggered lazily from readers; serialized
  /// by `csr_mutex_` so racing first-readers are safe.
  void rebuild_csr() const;

  Alphabet alphabet_;
  State initial_;
  std::vector<bool> accepting_;

  // CSR transition layout. Offsets index `[state × |Σ| + symbol]` rows into
  // the flat target array; both are rebuilt together from `pending_edges_`.
  mutable std::vector<std::int32_t> csr_offsets_;  // rows + 1 entries
  mutable std::vector<State> csr_targets_;
  mutable std::vector<std::pair<std::int32_t, State>> pending_edges_;  // (row, to)
  mutable std::atomic<bool> csr_dirty_{false};
  mutable std::mutex csr_mutex_;
};

/// 128-bit structural digest of the automaton — the content address used by
/// the memo caches (core/memo_cache.hpp). Covers everything the cached
/// constructions depend on: alphabet names, state count, initial state,
/// acceptance bits, and the LOGICAL transition relation (each (state,
/// symbol) successor slice in stored order). The digest is independent of
/// the container layout holding the relation — the CSR automaton digests
/// identically to the seed-era nested-vector layout byte for byte, so memo
/// cache entries survive layout migrations (pinned by
/// cache_equivalence_test). Structurally identical automata (not merely
/// language-equal ones) share a digest.
core::Digest fingerprint(const Nba& nba);

/// L(result) = L(lhs) ∩ L(rhs), via the 2-counter degeneralized product.
Nba intersect(const Nba& lhs, const Nba& rhs);

/// L(result) = L(lhs) ∪ L(rhs) (disjoint union with a fresh initial state).
Nba unite(const Nba& lhs, const Nba& rhs);

namespace detail {

/// Tarjan SCC over an explicit successor function. Returns the SCC id of
/// each node (ids in reverse topological order) and the SCC count.
struct SccResult {
  std::vector<int> component;  // node -> scc id
  int num_components = 0;
};
SccResult strongly_connected_components(
    int num_nodes, const std::function<void(int, const std::function<void(int)>&)>& for_each_succ);

}  // namespace detail

}  // namespace slat::buchi
