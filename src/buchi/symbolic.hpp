// Büchi automata with symbolic cube labels over 2^AP alphabets, and the
// condensation that lets every explicit algorithm run on them unchanged.
//
// A SymbolicNba stores, per state, an ordered list of (label, target) edges
// where the label is a hash-consed cube DNF (words/cube.hpp) — memory is
// O(edges), never O(2^k). The pipeline algorithms (safety closure, subset
// construction, antichain inclusion) do not iterate letters; they iterate
// the MINTERM PARTITION of the automaton's labels: the coarsest partition
// of the 2^k letters on which every edge label is constant. Two letters of
// one block are indistinguishable to the automaton (identical successor
// sets everywhere), so the partition's m blocks — ordered by their minimum
// contained letter — form a faithful quotient alphabet of pseudo-letters.
// `condense()` builds an ordinary explicit Nba over that m-letter alphabet,
// and the existing kernels (trim, DetSafety::determinize, the PR6
// arena/SoA antichain engine, the memo caches) run on it as-is.
//
// The ordering discipline makes this EXACTLY the explicit computation, not
// merely an equivalent one: the explicit per-letter loops run in ascending
// letter order and discover each distinct item at its block's minimum
// letter (later same-block letters re-discover only duplicates, which the
// intern tables and antichain domination checks drop). Iterating blocks in
// min-letter order therefore reproduces the explicit visit order, state
// numbering and witness letters bit-for-bit — pinned by the
// symbolic.explicit_agreement qc property and the differential tests.
//
// The explicit backend stays available as a differential oracle: under
// SLAT_ALPHABET=explicit (words::AlphabetBackendScope) every entry point
// here expands the cubes to 2^k letters, runs the seed-era explicit
// algorithm and lifts the result back — feasible only at small k, which is
// the point: the oracle validates the symbolic path where both can run.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "buchi/inclusion.hpp"
#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "words/cube.hpp"

namespace slat::buchi {

/// A nondeterministic Büchi automaton whose transitions carry cube labels
/// instead of single letters. Always over an AP-backed alphabet; the label
/// store is shared (and carried) so derived automata reuse interned nodes
/// and memoized algebra.
class SymbolicNba {
 public:
  struct Edge {
    words::LabelId label;
    State to;

    friend bool operator==(const Edge&, const Edge&) = default;
  };

  /// `alphabet` must be AP-backed and match the store's arity. A null store
  /// allocates a fresh one.
  SymbolicNba(Alphabet alphabet, std::shared_ptr<words::CubeStore> store,
              int num_states, State initial);

  /// Lifts an explicit automaton over an AP-backed alphabet: each
  /// (q, letter, t) transition becomes one single-letter cube edge, in row
  /// order — so expand() is the exact inverse.
  static SymbolicNba from_explicit(const Nba& nba);

  /// L = ∅ (one dead state) and L = Σ^ω (one accepting full-label
  /// self-loop) — the symbolic mirrors of the Nba factories.
  static SymbolicNba empty_language(Alphabet alphabet,
                                    std::shared_ptr<words::CubeStore> store);
  static SymbolicNba universal(Alphabet alphabet,
                               std::shared_ptr<words::CubeStore> store);

  const Alphabet& alphabet() const { return alphabet_; }
  const std::shared_ptr<words::CubeStore>& store() const { return store_; }
  int num_states() const { return static_cast<int>(edges_.size()); }
  State initial() const { return initial_; }

  bool is_accepting(State q) const { return accepting_[q]; }
  void set_accepting(State q, bool accepting);
  State add_state();

  /// Appends the edge (empty labels are dropped — they denote no letters,
  /// and keeping them would desynchronize the labeled graph from its
  /// expansion in every reachability-flavored pass).
  void add_edge(State from, words::LabelId label, State to);

  std::span<const Edge> edges(State q) const {
    return {edges_[q].data(), edges_[q].size()};
  }
  int num_edges() const;

  /// Graph passes, label-oblivious — each mirrors its Nba namesake on the
  /// labeled graph (an edge exists iff its expansion has ≥1 letter), so the
  /// keep-masks and remaps agree with the explicit pipeline exactly.
  std::vector<bool> reachable_states() const;
  std::vector<bool> states_with_nonempty_language() const;
  SymbolicNba restrict_to(const std::vector<bool>& keep) const;
  SymbolicNba trim() const;

  /// The explicit automaton over the full 2^k-letter alphabet. Oracle /
  /// small-k only (cube expansion is capped at CubeStore::kMaxExplicitAps).
  Nba expand() const;

  /// Re-interns every label into `store` (same arity); used to bring two
  /// automata onto one store before a joint condensation.
  SymbolicNba rebased(std::shared_ptr<words::CubeStore> store) const;

 private:
  Alphabet alphabet_;
  std::shared_ptr<words::CubeStore> store_;
  State initial_;
  std::vector<bool> accepting_;
  std::vector<std::vector<Edge>> edges_;
};

/// Structural digest (memo-cache key): AP alphabet + states + acceptance +
/// each edge's cube list and target. Label ids never enter the digest —
/// they are store-history; the CUBES are the content.
core::Digest fingerprint(const SymbolicNba& nba);

/// The minterm partition of a label set, packaged as a pseudo-letter
/// alphabet: block i of the partition (sorted by min letter) is letter i of
/// an ordinary explicit alphabet of size m.
struct BlockAlphabet {
  std::shared_ptr<words::CubeStore> store;
  std::vector<words::LabelId> blocks;  ///< disjoint, exhaustive, min-letter order
  std::vector<Sym> min_letters;        ///< canonical representative per block
  Alphabet core_alphabet = Alphabet::of_size(1);  ///< of_size(blocks.size())

  int size() const { return static_cast<int>(blocks.size()); }
  /// The block containing `letter` — a scan over the blocks' cubes, O(m),
  /// deliberately NOT a 2^k lookup table (k = 16 must never materialize).
  Sym block_of(Sym letter) const;
};

/// Builds the partition generated by `labels` (typically: every label of
/// the automata about to be condensed together).
BlockAlphabet make_block_alphabet(std::shared_ptr<words::CubeStore> store,
                                  std::span<const words::LabelId> labels);

/// The quotient automaton over the pseudo-letter alphabet: same states,
/// edge (q, j, t) for each labeled edge whose label contains block j (edge
/// order preserved per state). `blocks` must refine every label of `nba` —
/// i.e. be built from a superset of its labels.
Nba condense(const SymbolicNba& nba, const BlockAlphabet& blocks);

/// Safety closure on symbolic automata (paper §2.4): trim to states with
/// non-empty residual language, make everything accepting. Memoized like
/// the explicit closure; honors SLAT_ALPHABET (explicit mode expands, runs
/// the seed closure and lifts the result back).
SymbolicNba safety_closure(const SymbolicNba& nba);

/// The deterministic safety automaton of a symbolic closure: the seed
/// subset construction runs over the m condensed pseudo-letters, and
/// `step()` translates real letters to blocks on the fly — the 2^k-row
/// delta table of the explicit DetSafety never exists.
class SymbolicDetSafety {
 public:
  /// Subset construction of an automaton already in closure shape. Honors
  /// SLAT_ALPHABET: the explicit oracle determinizes the expansion and
  /// serves `step` straight from the 2^k-letter table.
  static SymbolicDetSafety determinize(const SymbolicNba& closure);
  /// determinize(safety_closure(nba)) — the from_nba convenience.
  static SymbolicDetSafety from_nba(const SymbolicNba& nba);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_states() const { return core_.num_states(); }
  State initial() const { return core_.initial(); }
  State sink() const { return core_.sink(); }

  /// One deterministic step on a REAL letter of the 2^k alphabet.
  State step(State q, Sym s) const {
    SLAT_ASSERT_MSG(s >= 0 && s < alphabet_.size(),
                    "symbol outside the automaton's alphabet");
    return core_.step(q, blocks_ ? blocks_->block_of(s) : s);
  }

  bool accepts(const UpWord& w) const;
  bool accepts_prefix(const Word& u) const;
  /// Universality over Σ^ω: the blocks partition Σ, so core-universality is
  /// exactly real-letter universality.
  bool is_universal() const { return core_.is_universal(); }

  /// The underlying pseudo-letter (or, on the explicit oracle path,
  /// real-letter) automaton — for tests and diagnostics.
  const DetSafety& core() const { return core_; }

 private:
  SymbolicDetSafety(Alphabet alphabet, DetSafety core,
                    std::optional<BlockAlphabet> blocks)
      : alphabet_(std::move(alphabet)),
        core_(std::move(core)),
        blocks_(std::move(blocks)) {}

  Alphabet alphabet_;
  DetSafety core_;
  std::optional<BlockAlphabet> blocks_;  ///< nullopt ⇔ explicit oracle path
};

/// Language inclusion L(lhs) ⊆ L(rhs) on symbolic automata: both sides are
/// condensed over their JOINT label partition (the period-phase profiles
/// depend on all of rhs's edges, so the partition must refine both automata
/// at once), the PR4/PR6 antichain engine — including its memo cache and
/// its own SLAT_INCLUSION differential — runs over the m pseudo-letters,
/// and witness pseudo-letters map back to their block's min letter, which
/// is bit-identical to the explicit engine's witness. Honors SLAT_ALPHABET.
InclusionResult check_inclusion(const SymbolicNba& lhs, const SymbolicNba& rhs);
InclusionResult check_universality(const SymbolicNba& nba);
InclusionResult check_emptiness(const SymbolicNba& nba);

inline bool is_subset(const SymbolicNba& lhs, const SymbolicNba& rhs) {
  return check_inclusion(lhs, rhs).included;
}
inline bool is_equivalent(const SymbolicNba& lhs, const SymbolicNba& rhs) {
  return is_subset(lhs, rhs) && is_subset(rhs, lhs);
}

}  // namespace slat::buchi
