// On-the-fly antichain-based language inclusion for Büchi automata.
//
// Decides L(lhs) ⊆ L(rhs) WITHOUT materializing ¬rhs. A counterexample is
// an ultimately periodic word u·v^ω accepted by lhs and rejected by rhs;
// the engine searches for one in two phases, both over views of rhs built
// from the PR1 StateSet/InternTable kernels:
//
//   * stem phase — pairs (p, S): p an lhs state reachable on some finite u,
//     S the full rhs subset δ(I, u). The subset view is deterministic, so S
//     is exact per word.
//   * period phase — from each pivot (p, S), triples (q, f, R): q the lhs
//     state inside a candidate loop, f a breakpoint-style bit recording
//     whether the loop has passed an accepting lhs state, and R the rhs
//     *arc profile* of the loop word v so far — for each rhs state s, the
//     set of states reachable from s over v, split into "some path" and
//     "some path through an accepting state" rows (the per-arc analogue of
//     the Miyano–Hayashi obligation bit). R is closed under composition, so
//     a closed loop (q = p, f = 1) decides "does rhs accept v^ω from S?"
//     exactly, via an SCC pass over the profile graph; a rejecting closure
//     is a counterexample, reconstructed from predecessor links.
//
// Both frontiers are pruned to antichains: a stem (p, S) is subsumed when
// another (p, S') has every state of S' simulated by a state of S (direct
// simulation, simulation.hpp — strictly coarser than S' ⊆ S), and a period
// (q, f, R) is subsumed by (q, f', R') with f' ≥ f and R' ⊆ R. Subsumption
// is sound in both directions: dominated elements can neither produce a
// counterexample the dominator cannot, nor change the "included" verdict.
//
// Complexity: worst-case exponential (inclusion is PSPACE-complete), but
// the explored fraction is typically tiny — complementation pays the full
// 2^O(n log n) rank space up front, the antichain search only what the
// query needs (bench_inclusion measures the gap). The complement-based
// pipeline is kept as a differential oracle: set SLAT_INCLUSION=complement
// (or use InclusionBackendScope) to route every query through it.
#pragma once

#include <optional>

#include "buchi/nba.hpp"

namespace slat::buchi {

/// Which decision procedure the language-level queries use.
enum class InclusionBackend {
  kAntichain,   ///< on-the-fly antichain engine (default)
  kComplement,  ///< lhs ∩ ¬rhs = ∅ via rank-based complementation (oracle)
};

/// Process-wide backend switch, initialized from the SLAT_INCLUSION
/// environment variable ("complement" selects the oracle; anything else —
/// including unset — selects the antichain engine).
InclusionBackend inclusion_backend();
void set_inclusion_backend(InclusionBackend backend);

/// RAII backend override for tests and benches.
class InclusionBackendScope {
 public:
  explicit InclusionBackendScope(InclusionBackend backend)
      : previous_(inclusion_backend()) {
    set_inclusion_backend(backend);
  }
  ~InclusionBackendScope() { set_inclusion_backend(previous_); }
  InclusionBackendScope(const InclusionBackendScope&) = delete;
  InclusionBackendScope& operator=(const InclusionBackendScope&) = delete;

 private:
  InclusionBackend previous_;
};

/// Verdict of an inclusion-shaped query, with the witness when it fails.
struct InclusionResult {
  bool included = true;
  /// Set iff !included: a word in L(lhs) \ L(rhs).
  std::optional<UpWord> counterexample;
};

/// Decides L(lhs) ⊆ L(rhs) on the active backend. Antichain verdicts are
/// memoized in the "buchi.inclusion" cache, keyed by the digest pair; the
/// engine is deterministic, so hits replay bit-identical results (and
/// identical witnesses). Metrics land under "buchi.inclusion.*": node
/// counts, subsumption prunings, antichain-size and frontier-peak
/// histograms.
InclusionResult check_inclusion(const Nba& lhs, const Nba& rhs);

/// Universality L(nba) = Σ^ω, as Σ^ω ⊆ L(nba) on the same engine; the
/// counterexample, if any, is a word nba rejects.
InclusionResult check_universality(const Nba& nba);

/// Emptiness L(nba) ⊆ ∅ — the lhs-degenerate case, where the period test is
/// trivially rejecting and the search reduces to the linear accepting-lasso
/// pass Nba already implements; delegated there. The counterexample, if
/// any, is a word nba accepts.
InclusionResult check_emptiness(const Nba& nba);

}  // namespace slat::buchi
