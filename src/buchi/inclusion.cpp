#include "buchi/inclusion.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

#include "buchi/complement.hpp"
#include "buchi/simulation.hpp"
#include "common/assert.hpp"
#include "core/arena.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

namespace {

using core::StateSet;

struct InclusionStats {
  core::Counter& queries = core::metrics().counter("buchi.inclusion.queries");
  core::Counter& stem_nodes = core::metrics().counter("buchi.inclusion.stem_nodes");
  core::Counter& period_nodes = core::metrics().counter("buchi.inclusion.period_nodes");
  core::Counter& prunings =
      core::metrics().counter("buchi.inclusion.subsumption_prunings");
  core::Histogram& antichain_size =
      core::metrics().histogram("buchi.inclusion.antichain_size");
  core::Histogram& frontier_peak =
      core::metrics().histogram("buchi.inclusion.frontier_peak");
};

InclusionStats& stats() {
  static InclusionStats* s = new InclusionStats();  // leaked, like the caches
  return *s;
}

// ---- fixed-width word-block primitives ------------------------------------
//
// Every set the engine touches lives over the SAME universe (the quotiented
// rhs state space), so instead of capacity-tracking StateSets the hot state
// is stored as fixed-width rows of `nb_words` uint64s in flat buffers. All
// subsumption checks then become straight-line word loops over contiguous
// memory — no per-row size negotiation, no pointer chasing.

/// sup ⊇ sub, word-parallel with early exit.
inline bool words_contain_all(const std::uint64_t* sup, const std::uint64_t* sub,
                              std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) {
    if ((sub[w] & ~sup[w]) != 0) return false;
  }
  return true;
}

inline void words_or_into(std::uint64_t* dst, const std::uint64_t* src,
                          std::size_t nw) {
  for (std::size_t w = 0; w < nw; ++w) dst[w] |= src[w];
}

inline bool words_test(const std::uint64_t* row, int i) {
  return (row[i >> 6] >> (i & 63) & 1ull) != 0;
}

inline void words_set(std::uint64_t* row, int i) { row[i >> 6] |= 1ull << (i & 63); }

/// Calls `f(index)` for each set bit, in increasing order (ctz iteration).
template <typename F>
inline void words_for_each(const std::uint64_t* row, std::size_t nw, F&& f) {
  for (std::size_t w = 0; w < nw; ++w) {
    std::uint64_t bits = row[w];
    while (bits != 0) {
      f(static_cast<int>(w * 64) + std::countr_zero(bits));
      bits &= bits - 1;
    }
  }
}

/// Arc profile of a finite word v over the rhs state space: any[s] = states
/// reachable from s along v, acc[s] ⊆ any[s] = reachable along a path that
/// visits an accepting state (endpoints included). Profiles compose under
/// word concatenation, which is what lets the period search summarize loop
/// words of unbounded length in a bounded domain.
///
/// Stored as two nb × nb_words bit-matrix halves; a ProfView is a non-owning
/// pair of row-major matrix pointers (the backing blocks live in the period
/// arena or in the engine's one-step tables).
struct ProfView {
  const std::uint64_t* any;
  const std::uint64_t* acc;
};

/// The two-phase antichain search. Sequential by construction (all frontier
/// pops and antichain edits happen in canonical order); the parallel pieces
/// it builds on — trim/quotient/simulation — are deterministic at any thread
/// count, so the whole engine is too.
///
/// Storage discipline (the perf-critical part):
///   * Search nodes are SoA: parallel flat vectors per field, no per-node
///     heap objects.
///   * Stem sets are 2·nb_words-word set‖cover blocks bump-allocated from
///     `stem_arena_` (monotone over the whole search — stem nodes are never
///     freed, so the arena is never reset). The cover half caches the set's
///     simulation closure so chain scans are pure subset sweeps.
///   * Period profiles are 2·nb·nb_words-word blocks from `period_arena_`,
///     which is reset() per pivot: each pivot's period search starts on the
///     same cache-warm chunks the previous one used.
///   * Candidate sets/profiles are built in scratch buffers and only copied
///     into an arena when they survive subsumption.
class AntichainEngine {
 public:
  AntichainEngine(const Nba& lhs, const Nba& rhs)
      : a_(lhs.trim()),
        b_(simulation_quotient(rhs)),
        sigma_(a_.alphabet().size()),
        na_(a_.num_states()),
        nb_(b_.num_states()),
        nb_words_(static_cast<std::size_t>(nb_ + 63) / 64),
        sim_(direct_simulation(b_)) {
    // One-step profile rows of b_ as flat [symbol][state][word] matrices,
    // reused by subset steps and compositions.
    step_any_.assign(static_cast<std::size_t>(sigma_) * matrix_words(), 0);
    step_acc_.assign(static_cast<std::size_t>(sigma_) * matrix_words(), 0);
    for (State s = 0; s < nb_; ++s) {
      for (Sym c = 0; c < sigma_; ++c) {
        std::uint64_t* any_row = step_any_.data() + row_offset(c, s);
        std::uint64_t* acc_row = step_acc_.data() + row_offset(c, s);
        for (State t : b_.successors(s, c)) {
          words_set(any_row, t);
          if (b_.is_accepting(s) || b_.is_accepting(t)) words_set(acc_row, t);
        }
      }
    }

    // The simulation preorder as a flat row matrix (sim_row(q) = simulators
    // of q), plus its transpose (simd_row(t) = states t simulates). The
    // transpose is what makes antichain subsumption word-parallel: the
    // per-member test "every s ∈ strong has a simulator in weak" is exactly
    // strong ⊆ cover(weak) with cover(weak) = ∪_{t∈weak} simd_row(t), so a
    // set's cover is built once when it enters a chain and every comparison
    // after that is a plain subset check.
    sim_words_.assign(matrix_words(), 0);
    for (State q = 0; q < nb_; ++q) {
      std::uint64_t* row = sim_words_.data() + static_cast<std::size_t>(q) * nb_words_;
      sim_.simulators[q].for_each([&](int t) { words_set(row, t); });
    }
    simd_words_.assign(matrix_words(), 0);
    for (State q = 0; q < nb_; ++q) {
      words_for_each(sim_row(q), nb_words_, [&](int t) {
        words_set(simd_words_.data() + static_cast<std::size_t>(t) * nb_words_, q);
      });
    }

    set_scratch_.assign(nb_words_, 0);
    norm_scratch_.assign(nb_words_, 0);
    cover_scratch_.assign(nb_words_, 0);
    prof_scratch_.assign(2 * matrix_words(), 0);

    // A pivot p can close an accepting lhs loop iff its SCC is cyclic and
    // contains an accepting state; other pivots never need a period search.
    std::vector<bool> self_loop(na_, false);
    const auto scc = detail::strongly_connected_components(
        na_, [&](int q, const std::function<void(int)>& visit) {
          for (Sym c = 0; c < sigma_; ++c) {
            for (State t : a_.successors(q, c)) {
              if (t == q) self_loop[q] = true;
              visit(t);
            }
          }
        });
    std::vector<int> scc_size(scc.num_components, 0);
    std::vector<bool> scc_accepting(scc.num_components, false);
    for (State q = 0; q < na_; ++q) {
      scc_size[scc.component[q]] += 1;
      if (a_.is_accepting(q)) scc_accepting[scc.component[q]] = true;
    }
    pivot_ok_.assign(na_, false);
    for (State q = 0; q < na_; ++q) {
      const int c = scc.component[q];
      pivot_ok_[q] = scc_accepting[c] && (scc_size[c] >= 2 || self_loop[q]);
    }
  }

  InclusionResult run() {
    stats().queries.inc();
    InclusionResult result;
    if (!a_.is_trivially_dead()) {
      result = search();
    }
    std::uint64_t live = 0;
    for (const auto& chain : stem_chain_) live += chain.size();
    stats().antichain_size.record(live);
    stats().frontier_peak.record(frontier_peak_);
    return result;
  }

 private:
  std::size_t matrix_words() const {
    return static_cast<std::size_t>(nb_) * nb_words_;
  }
  std::size_t row_offset(Sym c, State s) const {
    return (static_cast<std::size_t>(c) * nb_ + s) * nb_words_;
  }
  const std::uint64_t* step_any_row(Sym c, State s) const {
    return step_any_.data() + row_offset(c, s);
  }
  const std::uint64_t* step_acc_row(Sym c, State s) const {
    return step_acc_.data() + row_offset(c, s);
  }
  const std::uint64_t* sim_row(State q) const {
    return sim_words_.data() + static_cast<std::size_t>(q) * nb_words_;
  }
  const std::uint64_t* simd_row(State t) const {
    return simd_words_.data() + static_cast<std::size_t>(t) * nb_words_;
  }

  // ---- simulation-based set pruning and subsumption -----------------------

  /// Keeps only ⪯-maximal members, one representative (the smallest index)
  /// per class of mutually similar states, written into `out`. Language-
  /// from-set preserving: every dropped state has a kept simulator.
  void normalize_set(const std::uint64_t* full, std::uint64_t* out) const {
    std::memset(out, 0, nb_words_ * sizeof(std::uint64_t));
    words_for_each(full, nb_words_, [&](int q) {
      // Only members that simulate q can shadow it, so intersect the
      // simulator row with the set word-parallel and test just those.
      const std::uint64_t* row = sim_row(q);
      bool drop = false;
      for (std::size_t w = 0; w < nb_words_ && !drop; ++w) {
        std::uint64_t bits = row[w] & full[w];
        while (bits != 0) {
          const int t = static_cast<int>(w * 64) + std::countr_zero(bits);
          bits &= bits - 1;
          if (t == q) continue;
          // t strictly above q, or an equivalent member with smaller index.
          if (!words_test(sim_row(t), q) || t < q) {
            drop = true;
            break;
          }
        }
      }
      if (!drop) words_set(out, q);
    });
  }

  /// cover(W) = every state with a simulator in W. The sufficient language
  /// test behind antichain subsumption — "each member of `strong` is
  /// simulated by some member of `weak`, hence L(strong) ⊆ L(weak)" — is
  /// exactly strong ⊆ cover(weak): plain set inclusion is the reflexive
  /// special case, already absorbed because cover(W) ⊇ W. Chains store each
  /// set's cover next to it, so dominance checks are single subset sweeps.
  void build_cover(const std::uint64_t* set, std::uint64_t* out) const {
    std::memset(out, 0, nb_words_ * sizeof(std::uint64_t));
    words_for_each(set, nb_words_, [&](int t) {
      words_or_into(out, simd_row(t), nb_words_);
    });
  }

  /// Normalized subset successor δ(S, c), left in `norm_scratch_`.
  void step_set(const std::uint64_t* set, Sym c) {
    std::memset(set_scratch_.data(), 0, nb_words_ * sizeof(std::uint64_t));
    words_for_each(set, nb_words_, [&](int s) {
      words_or_into(set_scratch_.data(), step_any_row(c, s), nb_words_);
    });
    normalize_set(set_scratch_.data(), norm_scratch_.data());
  }

  // ---- profiles -----------------------------------------------------------

  ProfView one_step_profile(Sym c) const {
    return ProfView{step_any_.data() + static_cast<std::size_t>(c) * matrix_words(),
                    step_acc_.data() + static_cast<std::size_t>(c) * matrix_words()};
  }

  /// Profile of v·c from the profile of v: relational composition of the
  /// arc rows with the one-step rows, acc-bits absorbed from either side.
  /// Built in `prof_scratch_` (the view stays valid until the next compose).
  ProfView compose(ProfView r, Sym c) {
    std::uint64_t* any_out = prof_scratch_.data();
    std::uint64_t* acc_out = prof_scratch_.data() + matrix_words();
    std::memset(prof_scratch_.data(), 0,
                prof_scratch_.size() * sizeof(std::uint64_t));
    for (State s = 0; s < nb_; ++s) {
      std::uint64_t* any_row = any_out + static_cast<std::size_t>(s) * nb_words_;
      std::uint64_t* acc_row = acc_out + static_cast<std::size_t>(s) * nb_words_;
      words_for_each(r.any + static_cast<std::size_t>(s) * nb_words_, nb_words_,
                     [&](int t) {
                       words_or_into(any_row, step_any_row(c, t), nb_words_);
                       words_or_into(acc_row, step_acc_row(c, t), nb_words_);
                     });
      words_for_each(r.acc + static_cast<std::size_t>(s) * nb_words_, nb_words_,
                     [&](int t) {
                       words_or_into(acc_row, step_any_row(c, t), nb_words_);
                     });
    }
    return ProfView{any_out, acc_out};
  }

  /// a ⊆ b row-wise. Fewer arcs constrain the rhs more, so the smaller
  /// profile dominates in the antichain ordering. Rows are contiguous, so
  /// this is one word-parallel sweep per matrix half with early exit.
  bool profile_subseteq(ProfView a, ProfView b) const {
    return words_contain_all(b.any, a.any, matrix_words()) &&
           words_contain_all(b.acc, a.acc, matrix_words());
  }

  /// Does b_ accept v^ω from some state of `set`, where `prof` is the arc
  /// profile of v? Exact: an accepting run exists iff the any-graph has a
  /// lasso from `set` whose cycle carries an acc-arc — i.e. some reachable s
  /// has an acc-successor inside its own SCC.
  bool profile_accepts(const std::uint64_t* set, ProfView prof) const {
    std::vector<std::uint64_t> reach(nb_words_, 0);
    std::vector<int> work;
    words_for_each(set, nb_words_, [&](int s) {
      words_set(reach.data(), s);
      work.push_back(s);
    });
    while (!work.empty()) {
      const int s = work.back();
      work.pop_back();
      words_for_each(prof.any + static_cast<std::size_t>(s) * nb_words_, nb_words_,
                     [&](int t) {
                       if (!words_test(reach.data(), t)) {
                         words_set(reach.data(), t);
                         work.push_back(t);
                       }
                     });
    }
    const auto scc = detail::strongly_connected_components(
        nb_, [&](int s, const std::function<void(int)>& visit) {
          words_for_each(prof.any + static_cast<std::size_t>(s) * nb_words_,
                         nb_words_, visit);
        });
    bool found = false;
    for (State s = 0; s < nb_ && !found; ++s) {
      if (!words_test(reach.data(), s)) continue;
      words_for_each(prof.acc + static_cast<std::size_t>(s) * nb_words_, nb_words_,
                     [&](int t) {
                       if (scc.component[t] == scc.component[s]) found = true;
                     });
    }
    return found;
  }

  // ---- stem phase ---------------------------------------------------------

  void push_stem(State p, const std::uint64_t* set, int pred, Sym sym) {
    auto& chain = stem_chain_[p];
    // entry dominates candidate ⟺ entry ⊆ cover(candidate); candidate
    // dominates entry ⟺ candidate ⊆ cover(entry), stored with the entry.
    build_cover(set, cover_scratch_.data());
    for (const int id : chain) {
      if (words_contain_all(cover_scratch_.data(), stem_set_[id], nb_words_)) {
        stats().prunings.inc();
        return;
      }
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      if (words_contain_all(stem_set_[id] + nb_words_, set, nb_words_)) {
        stem_live_[id] = false;
        stats().prunings.inc();
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(stem_p_.size());
    std::uint64_t* block = stem_arena_.alloc_array<std::uint64_t>(2 * nb_words_);
    std::memcpy(block, set, nb_words_ * sizeof(std::uint64_t));
    std::memcpy(block + nb_words_, cover_scratch_.data(),
                nb_words_ * sizeof(std::uint64_t));
    stem_p_.push_back(p);
    stem_set_.push_back(block);
    stem_pred_.push_back(pred);
    stem_sym_.push_back(sym);
    stem_live_.push_back(1);
    chain.push_back(id);
    stem_frontier_.push_back(id);
    stats().stem_nodes.inc();
  }

  /// BFS over (p, S) to the antichain fixpoint.
  void run_stems() {
    stem_chain_.assign(na_, {});
    std::memset(set_scratch_.data(), 0, nb_words_ * sizeof(std::uint64_t));
    words_set(set_scratch_.data(), b_.initial());
    normalize_set(set_scratch_.data(), norm_scratch_.data());
    push_stem(a_.initial(), norm_scratch_.data(), -1, -1);
    std::size_t head = 0;
    while (head < stem_frontier_.size()) {
      note_frontier(stem_frontier_.size() - head);
      const int id = stem_frontier_[head++];
      if (!stem_live_[id]) continue;
      const State p = stem_p_[id];
      const std::uint64_t* set = stem_set_[id];  // arena block: stable address
      for (Sym c = 0; c < sigma_; ++c) {
        const std::span<const State> succs = a_.successors(p, c);
        if (succs.empty()) continue;
        step_set(set, c);  // → norm_scratch_, shared by all pushes below
        for (const State q : succs) push_stem(q, norm_scratch_.data(), id, c);
      }
    }
  }

  // ---- period phase -------------------------------------------------------

  /// (stem node id, period node id) of a counterexample, if one closed here.
  struct Hit {
    int stem_id;
    int period_id;
  };

  ProfView period_prof(int id) const {
    const std::uint64_t* block = period_prof_[id];
    return ProfView{block, block + matrix_words()};
  }

  std::optional<Hit> push_period(State pivot, State q, bool acc, ProfView prof,
                                 int pred, Sym sym) {
    auto& chain = period_chain_[q];
    for (const int id : chain) {
      if ((period_acc_[id] != 0) >= acc && profile_subseteq(period_prof(id), prof)) {
        stats().prunings.inc();
        return std::nullopt;
      }
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      if (acc >= (period_acc_[id] != 0) && profile_subseteq(prof, period_prof(id))) {
        period_live_[id] = false;
        stats().prunings.inc();
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(period_q_.size());
    std::uint64_t* block = period_arena_.alloc_array<std::uint64_t>(2 * matrix_words());
    std::memcpy(block, prof.any, matrix_words() * sizeof(std::uint64_t));
    std::memcpy(block + matrix_words(), prof.acc,
                matrix_words() * sizeof(std::uint64_t));
    period_q_.push_back(q);
    period_acc_.push_back(acc ? 1 : 0);
    period_prof_.push_back(block);
    period_pred_.push_back(pred);
    period_sym_.push_back(sym);
    period_live_.push_back(1);
    chain.push_back(id);
    period_frontier_.push_back(id);
    stats().period_nodes.inc();
    if (q == pivot && acc) {
      // A closed accepting lhs loop: its word is a counterexample iff some
      // stem set at the pivot rejects it. (Dominated closings skipped above
      // are covered: their dominator rejects whenever they would.)
      for (const int stem_id : stem_chain_[pivot]) {
        if (!profile_accepts(stem_set_[stem_id], period_prof(id))) {
          return Hit{stem_id, id};
        }
      }
    }
    return std::nullopt;
  }

  /// BFS over (q, acc, R) from one pivot; stops at the first rejecting
  /// closed loop or at the antichain fixpoint.
  std::optional<Hit> run_periods(State pivot) {
    period_q_.clear();
    period_acc_.clear();
    period_prof_.clear();
    period_pred_.clear();
    period_sym_.clear();
    period_live_.clear();
    period_frontier_.clear();
    period_chain_.assign(na_, {});
    period_arena_.reset();  // reuse the previous pivot's (cache-warm) chunks
    const bool pivot_acc = a_.is_accepting(pivot);
    for (Sym c = 0; c < sigma_; ++c) {
      const std::span<const State> succs = a_.successors(pivot, c);
      if (succs.empty()) continue;
      const ProfView prof = one_step_profile(c);
      for (const State q : succs) {
        if (auto hit = push_period(pivot, q, pivot_acc || a_.is_accepting(q), prof,
                                   -1, c)) {
          return hit;
        }
      }
    }
    std::size_t head = 0;
    while (head < period_frontier_.size()) {
      note_frontier(period_frontier_.size() - head);
      const int id = period_frontier_[head++];
      if (!period_live_[id]) continue;
      const State q = period_q_[id];
      const bool acc = period_acc_[id] != 0;
      const ProfView prof = period_prof(id);  // arena block: stable address
      for (Sym c = 0; c < sigma_; ++c) {
        const std::span<const State> succs = a_.successors(q, c);
        if (succs.empty()) continue;
        const ProfView next = compose(prof, c);  // scratch, shared by pushes
        for (const State q2 : succs) {
          if (auto hit =
                  push_period(pivot, q2, acc || a_.is_accepting(q2), next, id, c)) {
            return hit;
          }
        }
      }
    }
    return std::nullopt;
  }

  // ---- top level ----------------------------------------------------------

  InclusionResult search() {
    run_stems();
    for (State pivot = 0; pivot < na_; ++pivot) {
      if (!pivot_ok_[pivot] || stem_chain_[pivot].empty()) continue;
      if (const auto hit = run_periods(pivot)) {
        return InclusionResult{false, build_witness(hit->stem_id, hit->period_id)};
      }
    }
    return InclusionResult{true, std::nullopt};
  }

  UpWord build_witness(int stem_id, int period_id) const {
    Word u;
    for (int id = stem_id; id != -1; id = stem_pred_[id]) {
      if (stem_sym_[id] >= 0) u.push_back(stem_sym_[id]);
    }
    std::reverse(u.begin(), u.end());
    Word v;
    for (int id = period_id; id != -1; id = period_pred_[id]) {
      v.push_back(period_sym_[id]);
    }
    std::reverse(v.begin(), v.end());
    return UpWord(std::move(u), std::move(v));
  }

  void note_frontier(std::size_t pending) {
    if (pending > frontier_peak_) frontier_peak_ = pending;
  }

  const Nba a_;  // lhs, trimmed
  const Nba b_;  // rhs, quotiented by mutual direct simulation
  const Sym sigma_;
  const int na_;
  const int nb_;
  const std::size_t nb_words_;       // words per rhs state-set row
  const SimulationPreorder sim_;     // on b_
  std::vector<std::uint64_t> step_any_;  // [symbol][state][word] one-step rows
  std::vector<std::uint64_t> step_acc_;
  std::vector<std::uint64_t> sim_words_;   // [state][word] simulator rows
  std::vector<std::uint64_t> simd_words_;  // transpose: [state][word] simulated rows
  std::vector<bool> pivot_ok_;

  // Stem nodes, SoA; set blocks live in stem_arena_ (never reset — stems
  // are consulted by every later period search).
  core::Arena stem_arena_;
  std::vector<State> stem_p_;
  std::vector<const std::uint64_t*> stem_set_;
  std::vector<int> stem_pred_;
  std::vector<Sym> stem_sym_;
  std::vector<char> stem_live_;
  std::vector<std::vector<int>> stem_chain_;  // per lhs state, live node ids
  std::vector<int> stem_frontier_;

  // Period nodes, SoA; profile blocks live in period_arena_, reset per pivot.
  core::Arena period_arena_;
  std::vector<State> period_q_;
  std::vector<char> period_acc_;
  std::vector<const std::uint64_t*> period_prof_;  // any ‖ acc halves
  std::vector<int> period_pred_;
  std::vector<Sym> period_sym_;
  std::vector<char> period_live_;
  std::vector<std::vector<int>> period_chain_;
  std::vector<int> period_frontier_;

  // Candidate scratch: successors/compositions are built here and copied
  // into an arena only when they survive subsumption.
  std::vector<std::uint64_t> set_scratch_;
  std::vector<std::uint64_t> norm_scratch_;
  std::vector<std::uint64_t> cover_scratch_;
  std::vector<std::uint64_t> prof_scratch_;

  std::uint64_t frontier_peak_ = 0;
};

std::atomic<InclusionBackend>& backend_flag() {
  static std::atomic<InclusionBackend> backend = [] {
    const char* env = std::getenv("SLAT_INCLUSION");
    return env != nullptr && std::string_view(env) == "complement"
               ? InclusionBackend::kComplement
               : InclusionBackend::kAntichain;
  }();
  return backend;
}

}  // namespace

InclusionBackend inclusion_backend() {
  return backend_flag().load(std::memory_order_relaxed);
}

void set_inclusion_backend(InclusionBackend backend) {
  backend_flag().store(backend, std::memory_order_relaxed);
}

InclusionResult check_inclusion(const Nba& lhs, const Nba& rhs) {
  SLAT_ASSERT_MSG(lhs.alphabet().size() == rhs.alphabet().size(),
                  "inclusion requires a common alphabet");
  if (inclusion_backend() == InclusionBackend::kComplement) {
    InclusionResult result;
    result.counterexample = intersect(lhs, complement(rhs)).find_accepted_word();
    result.included = !result.counterexample.has_value();
    return result;
  }
  static core::MemoCache<InclusionResult>& cache =
      *new core::MemoCache<InclusionResult>("buchi.inclusion");
  const core::Digest key = core::DigestBuilder()
                               .add_string("buchi.inclusion.antichain")
                               .add_digest(fingerprint(lhs))
                               .add_digest(fingerprint(rhs))
                               .digest();
  return cache.get_or_compute(
      key, [&] { return AntichainEngine(lhs, rhs).run(); });
}

InclusionResult check_universality(const Nba& nba) {
  return check_inclusion(Nba::universal(nba.alphabet()), nba);
}

InclusionResult check_emptiness(const Nba& nba) {
  InclusionResult result;
  result.counterexample = nba.find_accepted_word();
  result.included = !result.counterexample.has_value();
  return result;
}

}  // namespace slat::buchi
