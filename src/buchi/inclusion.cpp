#include "buchi/inclusion.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "buchi/complement.hpp"
#include "buchi/simulation.hpp"
#include "common/assert.hpp"
#include "core/memo_cache.hpp"
#include "core/metrics.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

namespace {

using core::StateSet;

struct InclusionStats {
  core::Counter& queries = core::metrics().counter("buchi.inclusion.queries");
  core::Counter& stem_nodes = core::metrics().counter("buchi.inclusion.stem_nodes");
  core::Counter& period_nodes = core::metrics().counter("buchi.inclusion.period_nodes");
  core::Counter& prunings =
      core::metrics().counter("buchi.inclusion.subsumption_prunings");
  core::Histogram& antichain_size =
      core::metrics().histogram("buchi.inclusion.antichain_size");
  core::Histogram& frontier_peak =
      core::metrics().histogram("buchi.inclusion.frontier_peak");
};

InclusionStats& stats() {
  static InclusionStats* s = new InclusionStats();  // leaked, like the caches
  return *s;
}

/// Arc profile of a finite word v over the rhs state space: any[s] = states
/// reachable from s along v, acc[s] ⊆ any[s] = reachable along a path that
/// visits an accepting state (endpoints included). Profiles compose under
/// word concatenation, which is what lets the period search summarize loop
/// words of unbounded length in a bounded domain.
struct Profile {
  std::vector<StateSet> any;
  std::vector<StateSet> acc;
};

/// a ⊆ b row-wise. Fewer arcs constrain the rhs more, so the smaller profile
/// dominates in the antichain ordering.
bool profile_subseteq(const Profile& a, const Profile& b) {
  for (std::size_t s = 0; s < a.any.size(); ++s) {
    if (!b.any[s].contains_all(a.any[s])) return false;
    if (!b.acc[s].contains_all(a.acc[s])) return false;
  }
  return true;
}

/// The two-phase antichain search. Sequential by construction (all frontier
/// pops and antichain edits happen in canonical order); the parallel pieces
/// it builds on — trim/quotient/simulation — are deterministic at any thread
/// count, so the whole engine is too.
class AntichainEngine {
 public:
  AntichainEngine(const Nba& lhs, const Nba& rhs)
      : a_(lhs.trim()),
        b_(simulation_quotient(rhs)),
        sigma_(a_.alphabet().size()),
        na_(a_.num_states()),
        nb_(b_.num_states()),
        sim_(direct_simulation(b_)) {
    // One-step profile rows of b_, reused by subset steps and compositions.
    step_any_.assign(sigma_, std::vector<StateSet>(nb_, StateSet(nb_)));
    step_acc_.assign(sigma_, std::vector<StateSet>(nb_, StateSet(nb_)));
    for (State s = 0; s < nb_; ++s) {
      for (Sym c = 0; c < sigma_; ++c) {
        for (State t : b_.successors(s, c)) {
          step_any_[c][s].insert(t);
          if (b_.is_accepting(s) || b_.is_accepting(t)) step_acc_[c][s].insert(t);
        }
      }
    }

    // A pivot p can close an accepting lhs loop iff its SCC is cyclic and
    // contains an accepting state; other pivots never need a period search.
    std::vector<bool> self_loop(na_, false);
    const auto scc = detail::strongly_connected_components(
        na_, [&](int q, const std::function<void(int)>& visit) {
          for (Sym c = 0; c < sigma_; ++c) {
            for (State t : a_.successors(q, c)) {
              if (t == q) self_loop[q] = true;
              visit(t);
            }
          }
        });
    std::vector<int> scc_size(scc.num_components, 0);
    std::vector<bool> scc_accepting(scc.num_components, false);
    for (State q = 0; q < na_; ++q) {
      scc_size[scc.component[q]] += 1;
      if (a_.is_accepting(q)) scc_accepting[scc.component[q]] = true;
    }
    pivot_ok_.assign(na_, false);
    for (State q = 0; q < na_; ++q) {
      const int c = scc.component[q];
      pivot_ok_[q] = scc_accepting[c] && (scc_size[c] >= 2 || self_loop[q]);
    }
  }

  InclusionResult run() {
    stats().queries.inc();
    InclusionResult result;
    if (!a_.is_trivially_dead()) {
      result = search();
    }
    std::uint64_t live = 0;
    for (const auto& chain : stem_chain_) live += chain.size();
    stats().antichain_size.record(live);
    stats().frontier_peak.record(frontier_peak_);
    return result;
  }

 private:
  // ---- simulation-based set pruning and subsumption -----------------------

  /// Keeps only ⪯-maximal members, one representative (the smallest index)
  /// per class of mutually similar states. Language-from-set preserving:
  /// every dropped state has a kept simulator.
  StateSet normalize_set(const StateSet& full) const {
    StateSet out(nb_);
    full.for_each([&](int q) {
      bool drop = false;
      sim_.simulators[q].for_each([&](int t) {
        if (drop || t == q || !full.contains(t)) return;
        // t strictly above q, or an equivalent member with smaller index.
        if (!sim_.simulates(q, t) || t < q) drop = true;
      });
      if (!drop) out.insert(q);
    });
    return out;
  }

  /// L(strong) ⊆ L(weak)? Sufficient test: every member of `strong` is
  /// simulated by some member of `weak`. Plain set inclusion is the special
  /// case where the simulator is the state itself.
  bool set_dominates(const StateSet& strong, const StateSet& weak) const {
    bool ok = true;
    strong.for_each([&](int s) {
      if (ok && !sim_.simulators[s].intersects(weak)) ok = false;
    });
    return ok;
  }

  /// Normalized subset successor δ(S, c).
  StateSet step_set(const StateSet& set, Sym c) const {
    StateSet next(nb_);
    set.for_each([&](int s) { next.union_with(step_any_[c][s]); });
    return normalize_set(next);
  }

  // ---- profiles -----------------------------------------------------------

  Profile one_step_profile(Sym c) const {
    return Profile{step_any_[c], step_acc_[c]};
  }

  /// Profile of v·c from the profile of v: relational composition of the
  /// arc rows with the one-step rows, acc-bits absorbed from either side.
  Profile compose(const Profile& r, Sym c) const {
    Profile out;
    out.any.assign(nb_, StateSet(nb_));
    out.acc.assign(nb_, StateSet(nb_));
    for (State s = 0; s < nb_; ++s) {
      r.any[s].for_each([&](int t) {
        out.any[s].union_with(step_any_[c][t]);
        out.acc[s].union_with(step_acc_[c][t]);
      });
      r.acc[s].for_each([&](int t) { out.acc[s].union_with(step_any_[c][t]); });
    }
    return out;
  }

  /// Does b_ accept v^ω from some state of `set`, where `prof` is the arc
  /// profile of v? Exact: an accepting run exists iff the any-graph has a
  /// lasso from `set` whose cycle carries an acc-arc — i.e. some reachable s
  /// has an acc-successor inside its own SCC.
  bool profile_accepts(const StateSet& set, const Profile& prof) const {
    StateSet reach(nb_);
    std::vector<int> work;
    set.for_each([&](int s) {
      reach.insert(s);
      work.push_back(s);
    });
    while (!work.empty()) {
      const int s = work.back();
      work.pop_back();
      prof.any[s].for_each([&](int t) {
        if (!reach.contains(t)) {
          reach.insert(t);
          work.push_back(t);
        }
      });
    }
    const auto scc = detail::strongly_connected_components(
        nb_, [&](int s, const std::function<void(int)>& visit) {
          prof.any[s].for_each(visit);
        });
    bool found = false;
    for (State s = 0; s < nb_ && !found; ++s) {
      if (!reach.contains(s)) continue;
      prof.acc[s].for_each([&](int t) {
        if (scc.component[t] == scc.component[s]) found = true;
      });
    }
    return found;
  }

  // ---- stem phase ---------------------------------------------------------

  struct StemNode {
    State p;
    StateSet set;  // normalized δ(I_b, u)
    int pred;      // stem node id, -1 at the root
    Sym sym;       // symbol taken from pred, -1 at the root
  };

  void push_stem(State p, StateSet set, int pred, Sym sym) {
    auto& chain = stem_chain_[p];
    for (const int id : chain) {
      if (set_dominates(stem_nodes_[id].set, set)) {
        stats().prunings.inc();
        return;
      }
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      if (set_dominates(set, stem_nodes_[id].set)) {
        stem_live_[id] = false;
        stats().prunings.inc();
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(stem_nodes_.size());
    stem_nodes_.push_back(StemNode{p, std::move(set), pred, sym});
    stem_live_.push_back(true);
    chain.push_back(id);
    stem_frontier_.push_back(id);
    stats().stem_nodes.inc();
  }

  /// BFS over (p, S) to the antichain fixpoint.
  void run_stems() {
    stem_chain_.assign(na_, {});
    StateSet init(nb_);
    init.insert(b_.initial());
    push_stem(a_.initial(), normalize_set(init), -1, -1);
    std::size_t head = 0;
    while (head < stem_frontier_.size()) {
      note_frontier(stem_frontier_.size() - head);
      const int id = stem_frontier_[head++];
      if (!stem_live_[id]) continue;
      // Copy out: push_stem may reallocate stem_nodes_.
      const State p = stem_nodes_[id].p;
      const StateSet set = stem_nodes_[id].set;
      for (Sym c = 0; c < sigma_; ++c) {
        const auto& succs = a_.successors(p, c);
        if (succs.empty()) continue;
        const StateSet next = step_set(set, c);
        for (const State q : succs) push_stem(q, next, id, c);
      }
    }
  }

  // ---- period phase -------------------------------------------------------

  struct PeriodNode {
    State q;
    bool acc;  // accepting lhs state passed since the pivot?
    Profile prof;
    int pred;  // period node id, -1 for the pivot's first step
    Sym sym;
  };

  /// (stem node id, period node id) of a counterexample, if one closed here.
  struct Hit {
    int stem_id;
    int period_id;
  };

  std::optional<Hit> push_period(State pivot, State q, bool acc, const Profile& prof,
                                 int pred, Sym sym) {
    auto& chain = period_chain_[q];
    for (const int id : chain) {
      const PeriodNode& node = period_nodes_[id];
      if (node.acc >= acc && profile_subseteq(node.prof, prof)) {
        stats().prunings.inc();
        return std::nullopt;
      }
    }
    std::size_t kept = 0;
    for (const int id : chain) {
      const PeriodNode& node = period_nodes_[id];
      if (acc >= node.acc && profile_subseteq(prof, node.prof)) {
        period_live_[id] = false;
        stats().prunings.inc();
      } else {
        chain[kept++] = id;
      }
    }
    chain.resize(kept);
    const int id = static_cast<int>(period_nodes_.size());
    period_nodes_.push_back(PeriodNode{q, acc, prof, pred, sym});
    period_live_.push_back(true);
    chain.push_back(id);
    period_frontier_.push_back(id);
    stats().period_nodes.inc();
    if (q == pivot && acc) {
      // A closed accepting lhs loop: its word is a counterexample iff some
      // stem set at the pivot rejects it. (Dominated closings skipped above
      // are covered: their dominator rejects whenever they would.)
      for (const int stem_id : stem_chain_[pivot]) {
        if (!profile_accepts(stem_nodes_[stem_id].set, prof)) {
          return Hit{stem_id, id};
        }
      }
    }
    return std::nullopt;
  }

  /// BFS over (q, acc, R) from one pivot; stops at the first rejecting
  /// closed loop or at the antichain fixpoint.
  std::optional<Hit> run_periods(State pivot) {
    period_nodes_.clear();
    period_live_.clear();
    period_frontier_.clear();
    period_chain_.assign(na_, {});
    const bool pivot_acc = a_.is_accepting(pivot);
    for (Sym c = 0; c < sigma_; ++c) {
      const auto& succs = a_.successors(pivot, c);
      if (succs.empty()) continue;
      const Profile prof = one_step_profile(c);
      for (const State q : succs) {
        if (auto hit = push_period(pivot, q, pivot_acc || a_.is_accepting(q), prof,
                                   -1, c)) {
          return hit;
        }
      }
    }
    std::size_t head = 0;
    while (head < period_frontier_.size()) {
      note_frontier(period_frontier_.size() - head);
      const int id = period_frontier_[head++];
      if (!period_live_[id]) continue;
      const State q = period_nodes_[id].q;
      const bool acc = period_nodes_[id].acc;
      const Profile prof = period_nodes_[id].prof;  // copy: vector may grow
      for (Sym c = 0; c < sigma_; ++c) {
        const auto& succs = a_.successors(q, c);
        if (succs.empty()) continue;
        const Profile next = compose(prof, c);
        for (const State q2 : succs) {
          if (auto hit =
                  push_period(pivot, q2, acc || a_.is_accepting(q2), next, id, c)) {
            return hit;
          }
        }
      }
    }
    return std::nullopt;
  }

  // ---- top level ----------------------------------------------------------

  InclusionResult search() {
    run_stems();
    for (State pivot = 0; pivot < na_; ++pivot) {
      if (!pivot_ok_[pivot] || stem_chain_[pivot].empty()) continue;
      if (const auto hit = run_periods(pivot)) {
        return InclusionResult{false, build_witness(hit->stem_id, hit->period_id)};
      }
    }
    return InclusionResult{true, std::nullopt};
  }

  UpWord build_witness(int stem_id, int period_id) const {
    Word u;
    for (int id = stem_id; id != -1; id = stem_nodes_[id].pred) {
      if (stem_nodes_[id].sym >= 0) u.push_back(stem_nodes_[id].sym);
    }
    std::reverse(u.begin(), u.end());
    Word v;
    for (int id = period_id; id != -1; id = period_nodes_[id].pred) {
      v.push_back(period_nodes_[id].sym);
    }
    std::reverse(v.begin(), v.end());
    return UpWord(std::move(u), std::move(v));
  }

  void note_frontier(std::size_t pending) {
    if (pending > frontier_peak_) frontier_peak_ = pending;
  }

  const Nba a_;  // lhs, trimmed
  const Nba b_;  // rhs, quotiented by mutual direct simulation
  const Sym sigma_;
  const int na_;
  const int nb_;
  const SimulationPreorder sim_;           // on b_
  std::vector<std::vector<StateSet>> step_any_;  // [symbol][state]
  std::vector<std::vector<StateSet>> step_acc_;
  std::vector<bool> pivot_ok_;

  std::vector<StemNode> stem_nodes_;
  std::vector<bool> stem_live_;
  std::vector<std::vector<int>> stem_chain_;  // per lhs state, live node ids
  std::vector<int> stem_frontier_;

  std::vector<PeriodNode> period_nodes_;
  std::vector<bool> period_live_;
  std::vector<std::vector<int>> period_chain_;
  std::vector<int> period_frontier_;

  std::uint64_t frontier_peak_ = 0;
};

std::atomic<InclusionBackend>& backend_flag() {
  static std::atomic<InclusionBackend> backend = [] {
    const char* env = std::getenv("SLAT_INCLUSION");
    return env != nullptr && std::string_view(env) == "complement"
               ? InclusionBackend::kComplement
               : InclusionBackend::kAntichain;
  }();
  return backend;
}

}  // namespace

InclusionBackend inclusion_backend() {
  return backend_flag().load(std::memory_order_relaxed);
}

void set_inclusion_backend(InclusionBackend backend) {
  backend_flag().store(backend, std::memory_order_relaxed);
}

InclusionResult check_inclusion(const Nba& lhs, const Nba& rhs) {
  SLAT_ASSERT_MSG(lhs.alphabet().size() == rhs.alphabet().size(),
                  "inclusion requires a common alphabet");
  if (inclusion_backend() == InclusionBackend::kComplement) {
    InclusionResult result;
    result.counterexample = intersect(lhs, complement(rhs)).find_accepted_word();
    result.included = !result.counterexample.has_value();
    return result;
  }
  static core::MemoCache<InclusionResult>& cache =
      *new core::MemoCache<InclusionResult>("buchi.inclusion");
  const core::Digest key = core::DigestBuilder()
                               .add_string("buchi.inclusion.antichain")
                               .add_digest(fingerprint(lhs))
                               .add_digest(fingerprint(rhs))
                               .digest();
  return cache.get_or_compute(
      key, [&] { return AntichainEngine(lhs, rhs).run(); });
}

InclusionResult check_universality(const Nba& nba) {
  return check_inclusion(Nba::universal(nba.alphabet()), nba);
}

InclusionResult check_emptiness(const Nba& nba) {
  InclusionResult result;
  result.counterexample = nba.find_accepted_word();
  result.included = !result.counterexample.has_value();
  return result;
}

}  // namespace slat::buchi
