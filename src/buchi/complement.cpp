#include "buchi/complement.hpp"

#include <algorithm>
#include <functional>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "core/parallel.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

namespace {

// A complement state: ranking over the input's states (-1 = state absent
// from the current level) plus the obligation set O (as a bool per state,
// only meaningful where the ranking is present).
struct RankState {
  std::vector<int> rank;
  std::vector<bool> obligation;

  std::uint64_t hash() const {
    std::uint64_t h = core::hash_ints(rank.data(), rank.size());
    std::uint64_t word = 0;  // obligation bits packed into 64-bit lanes
    for (std::size_t i = 0; i < obligation.size(); ++i) {
      word |= static_cast<std::uint64_t>(obligation[i]) << (i & 63);
      if ((i & 63) == 63) {
        h = core::hash_combine(h, word);
        word = 0;
      }
    }
    return core::hash_combine(h, word);
  }

  friend bool operator==(const RankState&, const RankState&) = default;
};

}  // namespace

Nba complement(const Nba& nba) {
  // Complementation is the pipeline's most expensive product (2^O(n log n))
  // and the most frequently repeated one: is_subset/is_equivalent/
  // find_separating_word all complement their right-hand side, and classify
  // complements the same automaton it closed. Memoize by content digest;
  // the construction below is deterministic, so hits are bit-identical to
  // recomputation (differential-tested in cache_equivalence_test).
  static core::MemoCache<Nba>& cache = *new core::MemoCache<Nba>("buchi.complement");
  return cache.get_or_compute(
      core::DigestBuilder().add_string("complement").add_digest(fingerprint(nba)).digest(),
      [&] {
        // Reduce first (bisimulation quotient + trim: fewer states and a
        // larger accepting fraction shrink the rank bound), then use the
        // tight bound 2(n − |F|): odd ranks are only ever needed on
        // non-accepting states, and at most n − |F| distinct odd ranks can
        // appear in a run DAG.
        const Nba reduced = nba.reduce();
        if (reduced.is_trivially_dead()) {
          return Nba::universal(nba.alphabet());
        }
        return complement(reduced, 2 * (reduced.num_states() - reduced.num_accepting()));
      });
}

Nba complement(const Nba& nba, int max_rank) {
  SLAT_ASSERT(max_rank >= 0);
  const int n = nba.num_states();
  const int sigma = nba.alphabet().size();

  // Hashed interning; ids are assigned in discovery order, matching the
  // seed's ordered-map numbering, and the table doubles as the id → state
  // array the worklist iterates.
  core::InternTable<RankState> intern;
  intern.reserve(4 * n + 4);  // rank spaces blow up fast; skip the early rehashes
  // Transitions collected as (from, symbol, to); the Nba is assembled at the
  // end once the state count is known.
  std::vector<std::tuple<State, Sym, State>> transitions;

  const auto intern_state = [&](RankState rs) { return intern.intern(std::move(rs)); };

  // Initial state: the input's initial state at the maximal rank, O = ∅.
  RankState init{std::vector<int>(n, -1), std::vector<bool>(n, false)};
  // Accepting input states may only carry even ranks.
  const int init_rank =
      nba.is_accepting(nba.initial()) && max_rank % 2 == 1 ? max_rank - 1 : max_rank;
  init.rank[nba.initial()] = init_rank;
  const State initial_id = intern_state(init);

  // Enumerates every legal successor RankState of (current, s), in the
  // canonical recursion order, into `out_states`. Pure function of its
  // arguments — safe to run for many (current, s) cells concurrently.
  const auto enumerate_successors = [&](const RankState& current, Sym s,
                                        std::vector<RankState>& out_states) {
    // The successor subset, and for each successor the cap on its rank:
    // min over predecessors' ranks (ranks may not increase along runs).
    std::vector<int> cap(n, -1);
    for (State q = 0; q < n; ++q) {
      if (current.rank[q] < 0) continue;
      for (State succ : nba.successors(q, s)) {
        cap[succ] = cap[succ] < 0 ? current.rank[q] : std::min(cap[succ], current.rank[q]);
      }
    }
    std::vector<State> members;
    for (State q = 0; q < n; ++q) {
      if (cap[q] >= 0) members.push_back(q);
    }
    const bool obligation_active =
        std::find(current.obligation.begin(), current.obligation.end(), true) !=
        current.obligation.end();
    // Which successors inherit an obligation (before the even-rank filter):
    // O-successors if O ≠ ∅, otherwise everyone (O resets to all evens).
    std::vector<bool> inherits(n, false);
    if (obligation_active) {
      for (State q = 0; q < n; ++q) {
        if (current.rank[q] < 0 || !current.obligation[q]) continue;
        for (State succ : nba.successors(q, s)) inherits[succ] = true;
      }
    } else {
      for (State q : members) inherits[q] = true;
    }

    // Enumerate every legal ranking of the successor subset.
    std::vector<int> chosen(members.size(), 0);
    const std::function<void(std::size_t)> recurse = [&](std::size_t idx) {
      if (idx == members.size()) {
        RankState next{std::vector<int>(n, -1), std::vector<bool>(n, false)};
        for (std::size_t i = 0; i < members.size(); ++i) {
          next.rank[members[i]] = chosen[i];
        }
        for (State q : members) {
          next.obligation[q] = inherits[q] && next.rank[q] % 2 == 0;
        }
        out_states.push_back(std::move(next));
        return;
      }
      const State q = members[idx];
      for (int r = 0; r <= cap[q]; ++r) {
        if (nba.is_accepting(q) && r % 2 == 1) continue;
        chosen[idx] = r;
        recurse(idx + 1);
      }
    };
    recurse(0);
  };

  // Level-synchronous exploration: each level's (state, symbol) successor
  // enumerations run in parallel into per-cell buffers (they only read the
  // intern table), then the buffers are interned sequentially in canonical
  // (source-id, symbol, enumeration) order — the exact order the sequential
  // worklist interned them, so ids and transitions are bit-identical at any
  // thread count.
  std::vector<std::vector<RankState>> successor_buffers;
  for (int level_begin = 0; level_begin < intern.size();) {
    const int level_end = intern.size();
    const int frontier = level_end - level_begin;
    successor_buffers.assign(static_cast<std::size_t>(frontier) * sigma, {});
    core::parallel_for(
        frontier * sigma,
        [&](int cell) {
          const State current_id = level_begin + cell / sigma;
          const Sym s = cell % sigma;
          enumerate_successors(intern.key(current_id), s, successor_buffers[cell]);
        },
        /*grain=*/sigma);
    for (State current_id = level_begin; current_id < level_end; ++current_id) {
      for (Sym s = 0; s < sigma; ++s) {
        auto& buffer = successor_buffers[(current_id - level_begin) * sigma + s];
        for (RankState& next : buffer) {
          transitions.emplace_back(current_id, s, intern_state(std::move(next)));
        }
      }
    }
    level_begin = level_end;
  }

  Nba out(nba.alphabet(), intern.size(), initial_id);
  for (State id = 0; id < out.num_states(); ++id) {
    const auto& rs = intern.key(id);
    const bool has_obligation =
        std::find(rs.obligation.begin(), rs.obligation.end(), true) != rs.obligation.end();
    out.set_accepting(id, !has_obligation);
  }
  for (const auto& [from, s, to] : transitions) out.add_transition(from, s, to);
  return out;
}

}  // namespace slat::buchi
