#include "buchi/nba.hpp"

#include "buchi/simulation.hpp"

#include <algorithm>
#include <deque>
#include <sstream>
#include <tuple>

#include "common/assert.hpp"
#include "core/state_set.hpp"

namespace slat::buchi {

Nba::Nba(Alphabet alphabet, int num_states, State initial)
    : alphabet_(std::move(alphabet)), initial_(initial) {
  SLAT_ASSERT(num_states >= 1);
  SLAT_ASSERT(initial >= 0 && initial < num_states);
  accepting_.assign(num_states, false);
  csr_offsets_.assign(static_cast<std::size_t>(num_states) * alphabet_.size() + 1, 0);
}

// The copy/move special members exist only because the lazy-CSR guard
// members (atomic flag, mutex) are not copyable; logically a copy is a
// plain member-wise copy, with the target getting a fresh mutex.

Nba::Nba(const Nba& other)
    : alphabet_(other.alphabet_),
      initial_(other.initial_),
      accepting_(other.accepting_),
      csr_offsets_(other.csr_offsets_),
      csr_targets_(other.csr_targets_),
      pending_edges_(other.pending_edges_),
      csr_dirty_(other.csr_dirty_.load(std::memory_order_acquire)) {}

Nba::Nba(Nba&& other) noexcept
    : alphabet_(std::move(other.alphabet_)),
      initial_(other.initial_),
      accepting_(std::move(other.accepting_)),
      csr_offsets_(std::move(other.csr_offsets_)),
      csr_targets_(std::move(other.csr_targets_)),
      pending_edges_(std::move(other.pending_edges_)),
      csr_dirty_(other.csr_dirty_.load(std::memory_order_acquire)) {}

Nba& Nba::operator=(const Nba& other) {
  if (this != &other) {
    alphabet_ = other.alphabet_;
    initial_ = other.initial_;
    accepting_ = other.accepting_;
    csr_offsets_ = other.csr_offsets_;
    csr_targets_ = other.csr_targets_;
    pending_edges_ = other.pending_edges_;
    csr_dirty_.store(other.csr_dirty_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  return *this;
}

Nba& Nba::operator=(Nba&& other) noexcept {
  if (this != &other) {
    alphabet_ = std::move(other.alphabet_);
    initial_ = other.initial_;
    accepting_ = std::move(other.accepting_);
    csr_offsets_ = std::move(other.csr_offsets_);
    csr_targets_ = std::move(other.csr_targets_);
    pending_edges_ = std::move(other.pending_edges_);
    csr_dirty_.store(other.csr_dirty_.load(std::memory_order_acquire),
                     std::memory_order_release);
  }
  return *this;
}

Nba Nba::empty_language(Alphabet alphabet) {
  return Nba(std::move(alphabet), 1, 0);  // one dead, non-accepting state
}

Nba Nba::universal(Alphabet alphabet) {
  Nba nba(std::move(alphabet), 1, 0);
  nba.set_accepting(0, true);
  for (Sym s = 0; s < nba.alphabet().size(); ++s) nba.add_transition(0, s, 0);
  return nba;
}

void Nba::set_accepting(State q, bool accepting) {
  SLAT_ASSERT(q >= 0 && q < num_states());
  accepting_[q] = accepting;
}

std::vector<State> Nba::accepting_states() const {
  std::vector<State> out;
  for (State q = 0; q < num_states(); ++q) {
    if (accepting_[q]) out.push_back(q);
  }
  return out;
}

int Nba::num_accepting() const {
  return static_cast<int>(std::count(accepting_.begin(), accepting_.end(), true));
}

void Nba::add_transition(State from, Sym symbol, State to) {
  SLAT_ASSERT(from >= 0 && from < num_states());
  SLAT_ASSERT(to >= 0 && to < num_states());
  SLAT_ASSERT(symbol >= 0 && symbol < alphabet_.size());
  pending_edges_.emplace_back(
      static_cast<std::int32_t>(static_cast<std::size_t>(from) * alphabet_.size() +
                                symbol),
      to);
  csr_dirty_.store(true, std::memory_order_release);
}

void Nba::rebuild_csr() const {
  // Double-checked: racing first readers serialize here; mutation itself is
  // never concurrent with reads (documented precondition, as before).
  std::lock_guard<std::mutex> lock(csr_mutex_);
  if (!csr_dirty_.load(std::memory_order_relaxed)) return;

  const std::size_t rows = static_cast<std::size_t>(num_states()) * alphabet_.size();
  SLAT_ASSERT_MSG(rows < static_cast<std::size_t>(INT32_MAX),
                  "CSR row index overflows 32 bits");
  const std::size_t old_rows = csr_offsets_.empty() ? 0 : csr_offsets_.size() - 1;

  // Counting sort by row: old (already deduplicated) slices keep their
  // positions first, pending edges append per row in insertion order — which
  // reproduces the per-row order incremental insertion would have built.
  std::vector<std::int32_t> offsets(rows + 1, 0);
  for (std::size_t r = 0; r < old_rows; ++r) {
    offsets[r + 1] = csr_offsets_[r + 1] - csr_offsets_[r];
  }
  for (const auto& [row, to] : pending_edges_) offsets[row + 1] += 1;
  for (std::size_t r = 0; r < rows; ++r) offsets[r + 1] += offsets[r];
  SLAT_ASSERT_MSG(static_cast<std::size_t>(offsets[rows]) <
                      static_cast<std::size_t>(INT32_MAX),
                  "CSR edge count overflows 32 bits");

  std::vector<State> targets(offsets[rows]);
  std::vector<std::int32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (std::size_t r = 0; r < old_rows; ++r) {
    for (std::int32_t i = csr_offsets_[r]; i < csr_offsets_[r + 1]; ++i) {
      targets[cursor[r]++] = csr_targets_[i];
    }
  }
  for (const auto& [row, to] : pending_edges_) targets[cursor[row]++] = to;

  // In-place per-row dedup keeping first occurrences; `stamp[t] == row`
  // marks t as already present in the current row.
  std::vector<std::int32_t> stamp(num_states(), -1);
  std::int32_t write = 0;
  std::int32_t row_begin = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int32_t row_end = offsets[r + 1];
    offsets[r] = write;
    for (std::int32_t i = row_begin; i < row_end; ++i) {
      const State to = targets[i];
      if (stamp[to] != static_cast<std::int32_t>(r)) {
        stamp[to] = static_cast<std::int32_t>(r);
        targets[write++] = to;
      }
    }
    row_begin = row_end;
  }
  offsets[rows] = write;
  targets.resize(write);

  csr_offsets_ = std::move(offsets);
  csr_targets_ = std::move(targets);
  pending_edges_.clear();
  csr_dirty_.store(false, std::memory_order_release);
}

int Nba::num_transitions() const {
  if (csr_dirty_.load(std::memory_order_acquire)) rebuild_csr();
  return static_cast<int>(csr_targets_.size());
}

State Nba::add_state() {
  accepting_.push_back(false);
  // The offset table gains |Σ| rows; the lazy rebuild recomputes it.
  csr_dirty_.store(true, std::memory_order_release);
  return num_states() - 1;
}

std::vector<bool> Nba::reachable_states() const {
  std::vector<bool> seen(num_states(), false);
  std::deque<State> queue{initial_};
  seen[initial_] = true;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (State next : all_successors(q)) {
      if (!seen[next]) {
        seen[next] = true;
        queue.push_back(next);
      }
    }
  }
  return seen;
}

namespace detail {

SccResult strongly_connected_components(
    int num_nodes,
    const std::function<void(int, const std::function<void(int)>&)>& for_each_succ) {
  // Iterative Tarjan: product graphs can have tens of thousands of nodes,
  // which would overflow the stack with the recursive formulation.
  SccResult result;
  result.component.assign(num_nodes, -1);
  std::vector<int> index(num_nodes, -1), lowlink(num_nodes, 0);
  std::vector<bool> on_stack(num_nodes, false);
  std::vector<int> stack;
  stack.reserve(num_nodes);
  int next_index = 0;

  // All frames share one successor pool: a frame's successors occupy
  // [pool_begin, pool.size()) exactly while it is the deepest frame, and the
  // pool truncates back on pop — no per-node vector allocation or copy.
  struct Frame {
    int node;
    std::size_t pool_begin;
    std::size_t next_succ;
  };
  std::vector<Frame> frames;
  std::vector<int> pool;
  pool.reserve(256);

  for (int root = 0; root < num_nodes; ++root) {
    if (index[root] != -1) continue;
    auto push_node = [&](int node) {
      index[node] = lowlink[node] = next_index++;
      stack.push_back(node);
      on_stack[node] = true;
      const std::size_t begin = pool.size();
      for_each_succ(node, [&](int succ) { pool.push_back(succ); });
      frames.push_back(Frame{node, begin, begin});
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      if (frame.next_succ < pool.size()) {
        const int succ = pool[frame.next_succ++];
        if (index[succ] == -1) {
          push_node(succ);
        } else if (on_stack[succ]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[succ]);
        }
      } else {
        const int node = frame.node;
        pool.resize(frame.pool_begin);
        if (lowlink[node] == index[node]) {
          while (true) {
            const int member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component[member] = result.num_components;
            if (member == node) break;
          }
          ++result.num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[node]);
        }
      }
    }
  }
  return result;
}

}  // namespace detail

namespace {

// Tarjan specialized to an Nba's own CSR transition structure: a frame is a
// cursor into the state's contiguous all-symbols slice, so the whole
// traversal streams one flat array. This is the SCC pass behind every
// emptiness / trim / closure query — the hottest traversal in the library.
detail::SccResult scc_of_nba(const Nba& nba) {
  const int n = nba.num_states();
  detail::SccResult result;
  result.component.assign(n, -1);
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  stack.reserve(n);
  int next_index = 0;

  struct Frame {
    State node;
    std::size_t idx;  // cursor into all_successors(node)
  };
  std::vector<Frame> frames;
  frames.reserve(64);

  for (State root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    auto push_node = [&](State node) {
      index[node] = lowlink[node] = next_index++;
      stack.push_back(node);
      on_stack[node] = true;
      frames.push_back(Frame{node, 0});
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const State node = frame.node;
      const auto slice = nba.all_successors(node);
      // Advance the cursor to the next successor, if any remain.
      State succ = -1;
      if (frame.idx < slice.size()) succ = slice[frame.idx++];
      if (succ != -1) {
        if (index[succ] == -1) {
          push_node(succ);
        } else if (on_stack[succ]) {
          lowlink[node] = std::min(lowlink[node], index[succ]);
        }
      } else {
        if (lowlink[node] == index[node]) {
          while (true) {
            const State member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            result.component[member] = result.num_components;
            if (member == node) break;
          }
          ++result.num_components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          lowlink[parent.node] = std::min(lowlink[parent.node], lowlink[node]);
        }
      }
    }
  }
  return result;
}

// States lying on an accepting cycle: accepting states whose SCC is
// non-trivial, or which carry a self-loop.
std::vector<bool> accepting_cycle_states(const Nba& nba) {
  const int n = nba.num_states();
  const auto scc = scc_of_nba(nba);
  std::vector<int> scc_size(scc.num_components, 0);
  for (int q = 0; q < n; ++q) ++scc_size[scc.component[q]];
  std::vector<bool> on_cycle(n, false);
  for (int q = 0; q < n; ++q) {
    if (!nba.is_accepting(q)) continue;
    const auto slice = nba.all_successors(q);
    const bool self_loop = std::find(slice.begin(), slice.end(), q) != slice.end();
    if (self_loop) {
      on_cycle[q] = true;
      continue;
    }
    // Non-trivial SCC: some other member, or any cycle through q. Two
    // members suffice; a singleton SCC without self-loop is acyclic.
    if (scc_size[scc.component[q]] >= 2) on_cycle[q] = true;
  }
  return on_cycle;
}

}  // namespace

std::vector<bool> Nba::states_with_nonempty_language() const {
  // q has non-empty residual language iff q can reach a state on an
  // accepting cycle. Backward BFS from those states, over a flat CSR
  // transpose (counting sort of the forward edges) instead of n little
  // predecessor vectors.
  const auto targets = accepting_cycle_states(*this);
  const int n = num_states();
  std::vector<std::int32_t> pred_offsets(n + 1, 0);
  for (State q = 0; q < n; ++q) {
    for (State next : all_successors(q)) pred_offsets[next + 1] += 1;
  }
  for (State q = 0; q < n; ++q) pred_offsets[q + 1] += pred_offsets[q];
  std::vector<State> pred_targets(pred_offsets[n]);
  std::vector<std::int32_t> cursor(pred_offsets.begin(), pred_offsets.end() - 1);
  for (State q = 0; q < n; ++q) {
    for (State next : all_successors(q)) pred_targets[cursor[next]++] = q;
  }
  std::vector<bool> nonempty(n, false);
  std::deque<State> queue;
  for (State q = 0; q < n; ++q) {
    if (targets[q]) {
      nonempty[q] = true;
      queue.push_back(q);
    }
  }
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (std::int32_t i = pred_offsets[q]; i < pred_offsets[q + 1]; ++i) {
      const State pred = pred_targets[i];
      if (!nonempty[pred]) {
        nonempty[pred] = true;
        queue.push_back(pred);
      }
    }
  }
  return nonempty;
}

Nba Nba::restrict_to(const std::vector<bool>& keep) const {
  SLAT_ASSERT(static_cast<int>(keep.size()) == num_states());
  if (!keep[initial_]) return empty_language(alphabet_);
  std::vector<State> remap(num_states(), -1);
  int next_id = 0;
  for (State q = 0; q < num_states(); ++q) {
    if (keep[q]) remap[q] = next_id++;
  }
  Nba out(alphabet_, std::max(next_id, 1), remap[initial_]);
  for (State q = 0; q < num_states(); ++q) {
    if (!keep[q]) continue;
    out.set_accepting(remap[q], accepting_[q]);
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      for (State next : successors(q, s)) {
        if (keep[next]) out.add_transition(remap[q], s, remap[next]);
      }
    }
  }
  return out;
}

Nba Nba::trim() const {
  const auto reachable = reachable_states();
  const auto nonempty = states_with_nonempty_language();
  std::vector<bool> keep(num_states());
  for (State q = 0; q < num_states(); ++q) keep[q] = reachable[q] && nonempty[q];
  return restrict_to(keep);
}

Nba Nba::reduce(ReduceMode mode) const {
  if (mode == ReduceMode::kSimulation) return simulation_quotient(*this);
  const Nba trimmed = trim();
  const int n = trimmed.num_states();
  // Partition refinement: class signature = (accepting, per-symbol sorted
  // set of successor classes); iterate until stable.
  std::vector<int> cls(n);
  // Seed ids must be dense: the stability test below compares the signature
  // count against 1 + max(cls), which over-counts by one if every state is
  // accepting and all ids are 1 (the loop would then stop one round early
  // and merge non-bisimilar states).
  bool mixed = false;
  for (State q = 1; q < n; ++q) mixed |= trimmed.is_accepting(q) != trimmed.is_accepting(0);
  for (State q = 0; q < n; ++q) {
    cls[q] = mixed && trimmed.is_accepting(q) ? 1 : 0;
  }
  core::StateSet succ_classes(n);  // class ids are < n; bitset dedups + sorts
  while (true) {
    core::InternTable<core::IntVecKey> signatures;
    signatures.reserve(n);
    std::vector<int> next_cls(n);
    for (State q = 0; q < n; ++q) {
      core::IntVecKey signature;
      signature.values.reserve(1 + 2 * alphabet_.size());
      signature.values.push_back(cls[q]);
      for (Sym s = 0; s < alphabet_.size(); ++s) {
        succ_classes.clear();
        for (State to : trimmed.successors(q, s)) succ_classes.insert(cls[to]);
        signature.values.push_back(-1);  // separator between symbols
        succ_classes.for_each([&](int c) { signature.values.push_back(c); });
      }
      next_cls[q] = signatures.intern(std::move(signature));
    }
    const bool stable =
        signatures.size() == 1 + *std::max_element(cls.begin(), cls.end());
    cls = std::move(next_cls);
    if (stable) break;
  }
  const int num_classes = 1 + *std::max_element(cls.begin(), cls.end());
  if (num_classes == n) return trimmed;
  Nba out(alphabet_, num_classes, cls[trimmed.initial()]);
  for (State q = 0; q < n; ++q) {
    out.set_accepting(cls[q], trimmed.is_accepting(q));
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      for (State to : trimmed.successors(q, s)) out.add_transition(cls[q], s, cls[to]);
    }
  }
  return out;
}

bool Nba::is_empty() const {
  const auto reachable = reachable_states();
  const auto on_cycle = accepting_cycle_states(*this);
  for (State q = 0; q < num_states(); ++q) {
    if (reachable[q] && on_cycle[q]) return false;
  }
  return true;
}

namespace {

// BFS shortest word labeling a path from `from` to `to`. With `force_step`
// the path must have at least one transition (used to find cycles at a
// state). Reconstruction walks parent pointers; seeds (one-step successors
// of `from`) carry parent -1 so the walk terminates even when from == to.
std::optional<Word> shortest_word(const Nba& nba, State from, State to, bool force_step) {
  if (!force_step && from == to) return Word{};
  const int n = nba.num_states();
  std::vector<int> parent(n, -2);     // -2 = unvisited, -1 = seed
  std::vector<Sym> parent_sym(n, -1);
  std::deque<State> queue;
  const auto reconstruct = [&](State last) {
    Word word;
    for (State cur = last; cur != -1; cur = parent[cur]) {
      word.push_back(parent_sym[cur]);
      if (parent[cur] == -1) break;
    }
    std::reverse(word.begin(), word.end());
    return word;
  };
  for (Sym s = 0; s < nba.alphabet().size(); ++s) {
    for (State next : nba.successors(from, s)) {
      if (next == to) {
        return Word{s};
      }
      if (parent[next] == -2) {
        parent[next] = -1;
        parent_sym[next] = s;
        queue.push_back(next);
      }
    }
  }
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (Sym s = 0; s < nba.alphabet().size(); ++s) {
      for (State next : nba.successors(q, s)) {
        if (next == to) {
          Word word = reconstruct(q);
          word.push_back(s);
          return word;
        }
        if (parent[next] != -2) continue;
        parent[next] = q;
        parent_sym[next] = s;
        queue.push_back(next);
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<UpWord> Nba::find_accepted_word() const {
  const auto reachable = reachable_states();
  const auto on_cycle = accepting_cycle_states(*this);
  for (State q = 0; q < num_states(); ++q) {
    if (!(reachable[q] && on_cycle[q])) continue;
    auto stem = shortest_word(*this, initial_, q, /*force_step=*/false);
    auto loop = shortest_word(*this, q, q, /*force_step=*/true);
    if (stem && loop && !loop->empty()) return UpWord(*stem, *loop);
  }
  return std::nullopt;
}

bool Nba::accepts(const UpWord& w) const {
  for (std::size_t i = 0; i < w.prefix_size() + w.period_size(); ++i) {
    SLAT_ASSERT_MSG(w.at(i) >= 0 && w.at(i) < alphabet_.size(),
                    "word symbol outside the automaton's alphabet");
  }
  // Product of the automaton with the lasso shape of w: positions
  // 0..p+k-1, where position p+k-1 steps back to p.
  const int p = static_cast<int>(w.prefix_size());
  const int k = static_cast<int>(w.period_size());
  const int positions = p + k;
  const int n = num_states();
  const int num_nodes = n * positions;
  const auto node = [&](State q, int pos) { return q * positions + pos; };
  const auto next_pos = [&](int pos) { return pos + 1 < positions ? pos + 1 : p; };

  const auto for_each_succ = [&](int id, const std::function<void(int)>& visit) {
    const State q = id / positions;
    const int pos = id % positions;
    const Sym s = w.at(pos);
    for (State nxt : successors(q, s)) visit(node(nxt, next_pos(pos)));
  };

  // Reachability from (initial, 0).
  std::vector<bool> seen(num_nodes, false);
  std::deque<int> queue{node(initial_, 0)};
  seen[node(initial_, 0)] = true;
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    for_each_succ(id, [&](int nxt) {
      if (!seen[nxt]) {
        seen[nxt] = true;
        queue.push_back(nxt);
      }
    });
  }

  const auto scc = detail::strongly_connected_components(num_nodes, for_each_succ);
  std::vector<int> scc_size(scc.num_components, 0);
  for (int id = 0; id < num_nodes; ++id) ++scc_size[scc.component[id]];

  for (int id = 0; id < num_nodes; ++id) {
    if (!seen[id]) continue;
    const State q = id / positions;
    if (!accepting_[q]) continue;
    if (scc_size[scc.component[id]] >= 2) return true;
    // Singleton SCC: accepting only with a self-loop edge.
    bool self_loop = false;
    for_each_succ(id, [&](int nxt) { self_loop = self_loop || nxt == id; });
    if (self_loop) return true;
  }
  return false;
}

bool Nba::has_run_on_prefix(const Word& u) const {
  std::vector<bool> current(num_states(), false);
  current[initial_] = true;
  for (Sym s : u) {
    std::vector<bool> next(num_states(), false);
    bool any = false;
    for (State q = 0; q < num_states(); ++q) {
      if (!current[q]) continue;
      for (State nxt : successors(q, s)) {
        next[nxt] = true;
        any = true;
      }
    }
    if (!any) return false;
    current = std::move(next);
  }
  return true;
}

std::string Nba::to_string() const {
  std::ostringstream out;
  out << "NBA: " << num_states() << " states, initial " << initial_ << ", accepting {";
  bool first = true;
  for (State q : accepting_states()) {
    if (!first) out << ", ";
    out << q;
    first = false;
  }
  out << "}\n";
  for (State q = 0; q < num_states(); ++q) {
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      for (State next : successors(q, s)) {
        out << "  " << q << " --" << alphabet_.name(s) << "--> " << next << "\n";
      }
    }
  }
  return out.str();
}

namespace {

bool all_states_accepting(const Nba& nba) {
  return nba.num_accepting() == nba.num_states();
}

}  // namespace

core::Digest fingerprint(const Nba& nba) {
  core::DigestBuilder b;
  b.add_string("buchi.nba");
  // Byte-identical to the seed encoding for explicit alphabets (pinned by
  // cache_equivalence_test); AP-backed alphabets digest the AP list instead
  // of enumerating 2^k letter names.
  const Alphabet& alphabet = nba.alphabet();
  words::digest_alphabet(b, alphabet);
  b.add_int(nba.num_states()).add_int(nba.initial());
  for (State q = 0; q < nba.num_states(); ++q) {
    b.add_bool(nba.is_accepting(q));
    for (Sym s = 0; s < alphabet.size(); ++s) {
      b.add_ints(nba.successors(q, s));
    }
  }
  return b.digest();
}

Nba intersect(const Nba& lhs, const Nba& rhs) {
  SLAT_ASSERT_MSG(lhs.alphabet() == rhs.alphabet(),
                  "intersection requires a common alphabet");
  // Both paths explore only the REACHABLE product: pair states are
  // discovered from the initial pair and numbered in BFS order (a flat
  // remap array interns the dense pair encoding), so sparse products no
  // longer pay for the full n1·n2 grid of the seed construction.
  const int n1 = lhs.num_states();
  const int n2 = rhs.num_states();
  const Sym sigma = lhs.alphabet().size();
  std::vector<std::tuple<State, Sym, State>> transitions;

  // Fast path: if both operands are all-accepting (safety-closure shape),
  // acceptance is just run existence and the plain product suffices — and
  // stays all-accepting, which keeps downstream complementation cheap.
  if (all_states_accepting(lhs) && all_states_accepting(rhs)) {
    std::vector<State> remap(static_cast<std::size_t>(n1) * n2, -1);
    std::vector<std::pair<State, State>> pairs;  // compact id -> (q1, q2)
    const auto intern_pair = [&](State q1, State q2) {
      State& id = remap[static_cast<std::size_t>(q1) * n2 + q2];
      if (id == -1) {
        id = static_cast<State>(pairs.size());
        pairs.emplace_back(q1, q2);
      }
      return id;
    };
    const State initial = intern_pair(lhs.initial(), rhs.initial());
    for (std::size_t head = 0; head < pairs.size(); ++head) {
      const auto [q1, q2] = pairs[head];  // copy: `pairs` grows below
      const State from = static_cast<State>(head);
      for (Sym s = 0; s < sigma; ++s) {
        for (State t1 : lhs.successors(q1, s)) {
          for (State t2 : rhs.successors(q2, s)) {
            transitions.emplace_back(from, s, intern_pair(t1, t2));
          }
        }
      }
    }
    Nba out(lhs.alphabet(), static_cast<int>(pairs.size()), initial);
    for (State q = 0; q < out.num_states(); ++q) out.set_accepting(q, true);
    for (const auto& [from, s, to] : transitions) out.add_transition(from, s, to);
    return out;
  }

  // Degeneralized product with a 2-valued counter: counter 0 waits for an
  // accepting state of lhs, counter 1 for one of rhs. Accepting product
  // states are (q1, q2, 0) with q1 ∈ F1 (each full 0→1→0 counter cycle
  // passes one, so they recur iff both F1 and F2 recur).
  std::vector<State> remap(static_cast<std::size_t>(n1) * n2 * 2, -1);
  std::vector<std::tuple<State, State, int>> triples;  // id -> (q1, q2, counter)
  const auto intern_triple = [&](State q1, State q2, int counter) {
    State& id = remap[(static_cast<std::size_t>(q1) * n2 + q2) * 2 + counter];
    if (id == -1) {
      id = static_cast<State>(triples.size());
      triples.emplace_back(q1, q2, counter);
    }
    return id;
  };
  const State initial = intern_triple(lhs.initial(), rhs.initial(), 0);
  for (std::size_t head = 0; head < triples.size(); ++head) {
    const auto [q1, q2, counter] = triples[head];  // copy: `triples` grows below
    const State from = static_cast<State>(head);
    int next_counter = counter;
    if (counter == 0 && lhs.is_accepting(q1)) next_counter = 1;
    if (counter == 1 && rhs.is_accepting(q2)) next_counter = 0;
    for (Sym s = 0; s < sigma; ++s) {
      for (State t1 : lhs.successors(q1, s)) {
        for (State t2 : rhs.successors(q2, s)) {
          transitions.emplace_back(from, s, intern_triple(t1, t2, next_counter));
        }
      }
    }
  }
  Nba out(lhs.alphabet(), static_cast<int>(triples.size()), initial);
  for (State id = 0; id < out.num_states(); ++id) {
    const auto& [q1, q2, counter] = triples[id];
    (void)q2;
    if (counter == 0 && lhs.is_accepting(q1)) out.set_accepting(id, true);
  }
  for (const auto& [from, s, to] : transitions) out.add_transition(from, s, to);
  return out;
}

Nba unite(const Nba& lhs, const Nba& rhs) {
  SLAT_ASSERT_MSG(lhs.alphabet() == rhs.alphabet(), "union requires a common alphabet");
  // Disjoint union plus a fresh initial state duplicating both old initial
  // states' outgoing transitions.
  const int n1 = lhs.num_states();
  const int n2 = rhs.num_states();
  Nba out(lhs.alphabet(), n1 + n2 + 1, n1 + n2);
  for (State q = 0; q < n1; ++q) {
    out.set_accepting(q, lhs.is_accepting(q));
    for (Sym s = 0; s < lhs.alphabet().size(); ++s) {
      for (State next : lhs.successors(q, s)) out.add_transition(q, s, next);
    }
  }
  for (State q = 0; q < n2; ++q) {
    out.set_accepting(n1 + q, rhs.is_accepting(q));
    for (Sym s = 0; s < rhs.alphabet().size(); ++s) {
      for (State next : rhs.successors(q, s)) out.add_transition(n1 + q, s, n1 + next);
    }
  }
  const State fresh = n1 + n2;
  for (Sym s = 0; s < lhs.alphabet().size(); ++s) {
    for (State next : lhs.successors(lhs.initial(), s)) out.add_transition(fresh, s, next);
    for (State next : rhs.successors(rhs.initial(), s))
      out.add_transition(fresh, s, n1 + next);
  }
  // If either initial state could be revisited and was accepting, acceptance
  // is unaffected: Büchi acceptance only depends on states seen infinitely
  // often, and `fresh` is visited exactly once.
  return out;
}

}  // namespace slat::buchi
