#include "finite/dfa.hpp"

#include <algorithm>
#include <deque>
#include <sstream>

#include "common/assert.hpp"
#include "core/state_set.hpp"

namespace slat::finite {

Dfa::Dfa(Alphabet alphabet, int num_states, State initial)
    : alphabet_(std::move(alphabet)), initial_(initial) {
  SLAT_ASSERT(num_states >= 1);
  SLAT_ASSERT(initial >= 0 && initial < num_states);
  accepting_.assign(num_states, false);
  delta_.assign(num_states, std::vector<State>(alphabet_.size(), -1));
}

void Dfa::set_transition(State from, Sym symbol, State to) {
  SLAT_ASSERT(from >= 0 && from < num_states());
  SLAT_ASSERT(to >= 0 && to < num_states());
  SLAT_ASSERT(symbol >= 0 && symbol < alphabet_.size());
  delta_[from][symbol] = to;
}

State Dfa::step(State q, Sym symbol) const {
  SLAT_ASSERT(q >= 0 && q < num_states());
  SLAT_ASSERT(symbol >= 0 && symbol < alphabet_.size());
  const State to = delta_[q][symbol];
  SLAT_ASSERT_MSG(to != -1, "DFA transition undefined; complete the automaton");
  return to;
}

void Dfa::set_accepting(State q, bool accepting) {
  SLAT_ASSERT(q >= 0 && q < num_states());
  accepting_[q] = accepting;
}

bool Dfa::is_total() const {
  for (const auto& row : delta_) {
    for (State to : row) {
      if (to == -1) return false;
    }
  }
  return true;
}

bool Dfa::accepts(const Word& word) const {
  State q = initial_;
  for (Sym s : word) q = step(q, s);
  return accepting_[q];
}

Dfa Dfa::minimize() const {
  SLAT_ASSERT_MSG(is_total(), "minimize requires a total DFA");
  const int n = num_states();

  // Restrict to reachable states first.
  std::vector<bool> reachable(n, false);
  std::deque<State> queue{initial_};
  reachable[initial_] = true;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      const State to = delta_[q][s];
      if (!reachable[to]) {
        reachable[to] = true;
        queue.push_back(to);
      }
    }
  }

  // Moore partition refinement: start from accepting/rejecting, split by
  // successor-class signatures until stable.
  std::vector<int> cls(n, -1);
  for (State q = 0; q < n; ++q) {
    if (reachable[q]) cls[q] = accepting_[q] ? 1 : 0;
  }
  int num_classes = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    core::InternTable<core::IntVecKey> signatures;
    signatures.reserve(n);
    std::vector<int> next_cls(n, -1);
    for (State q = 0; q < n; ++q) {
      if (!reachable[q]) continue;
      core::IntVecKey signature;
      signature.values.reserve(1 + alphabet_.size());
      signature.values.push_back(cls[q]);
      for (Sym s = 0; s < alphabet_.size(); ++s) signature.values.push_back(cls[delta_[q][s]]);
      next_cls[q] = signatures.intern(std::move(signature));
    }
    const int new_count = signatures.size();
    if (new_count != num_classes) changed = true;
    num_classes = new_count;
    cls = std::move(next_cls);
  }

  Dfa out(alphabet_, num_classes, cls[initial_]);
  for (State q = 0; q < n; ++q) {
    if (!reachable[q]) continue;
    out.set_accepting(cls[q], accepting_[q]);
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      out.set_transition(cls[q], s, cls[delta_[q][s]]);
    }
  }
  return out;
}

bool Dfa::equivalent(const Dfa& other) const {
  SLAT_ASSERT(alphabet_.size() == other.alphabet_.size());
  SLAT_ASSERT(is_total() && other.is_total());
  // BFS over the product; a pair with differing acceptance refutes. Visited
  // pairs live in a flat bitset over a · |other| + b.
  const int m = other.num_states();
  core::StateSet seen(num_states() * m);
  std::deque<std::pair<State, State>> queue{{initial_, other.initial_}};
  seen.insert(initial_ * m + other.initial_);
  while (!queue.empty()) {
    const auto [a, b] = queue.front();
    queue.pop_front();
    if (accepting_[a] != other.accepting_[b]) return false;
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      const State na = delta_[a][s];
      const State nb = other.delta_[b][s];
      if (!seen.contains(na * m + nb)) {
        seen.insert(na * m + nb);
        queue.emplace_back(na, nb);
      }
    }
  }
  return true;
}

std::optional<Word> Dfa::shortest_accepted() const {
  std::vector<int> parent(num_states(), -2);
  std::vector<Sym> via(num_states(), -1);
  std::deque<State> queue{initial_};
  parent[initial_] = -1;
  while (!queue.empty()) {
    const State q = queue.front();
    queue.pop_front();
    if (accepting_[q]) {
      Word word;
      for (State cur = q; parent[cur] != -1; cur = parent[cur]) word.push_back(via[cur]);
      std::reverse(word.begin(), word.end());
      return word;
    }
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      const State to = delta_[q][s];
      if (to != -1 && parent[to] == -2) {
        parent[to] = q;
        via[to] = s;
        queue.push_back(to);
      }
    }
  }
  return std::nullopt;
}

Dfa Dfa::complemented() const {
  SLAT_ASSERT_MSG(is_total(), "complement requires a total DFA");
  Dfa out = *this;
  for (State q = 0; q < num_states(); ++q) out.set_accepting(q, !accepting_[q]);
  return out;
}

bool Dfa::is_extension_closed() const {
  for (State q = 0; q < num_states(); ++q) {
    if (!accepting_[q]) continue;
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      if (delta_[q][s] != -1 && !accepting_[delta_[q][s]]) return false;
    }
  }
  return true;
}

std::string Dfa::to_string() const {
  std::ostringstream out;
  out << "DFA: " << num_states() << " states, initial " << initial_ << ", accepting {";
  bool first = true;
  for (State q = 0; q < num_states(); ++q) {
    if (accepting_[q]) {
      if (!first) out << ", ";
      out << q;
      first = false;
    }
  }
  out << "}\n";
  for (State q = 0; q < num_states(); ++q) {
    for (Sym s = 0; s < alphabet_.size(); ++s) {
      if (delta_[q][s] != -1) {
        out << "  " << q << " --" << alphabet_.name(s) << "--> " << delta_[q][s] << "\n";
      }
    }
  }
  return out.str();
}

Dfa bad_prefix_dfa(const buchi::DetSafety& safety) {
  return good_prefix_dfa(safety).complemented().minimize();
}

Dfa good_prefix_dfa(const buchi::DetSafety& safety) {
  // The DetSafety automaton is already a total DFA whose "safe" states
  // accept; minimize it.
  Dfa dfa(safety.alphabet(), safety.num_states(), safety.initial());
  for (State q = 0; q < safety.num_states(); ++q) {
    dfa.set_accepting(q, q != safety.sink());
    for (Sym s = 0; s < safety.alphabet().size(); ++s) {
      dfa.set_transition(q, s, safety.step(q, s));
    }
  }
  return dfa.minimize();
}

}  // namespace slat::finite
