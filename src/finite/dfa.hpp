// Deterministic finite automata over finite words.
//
// Alpern–Schneider's "Recognizing safety and liveness" observation, made
// executable: a property is safety iff its violating prefixes form a
// regular, extension-closed finite-word language. This module hosts that
// finite-word side: total DFAs, Moore minimization, and the extraction of
// the canonical minimal bad-prefix DFA from a deterministic safety
// automaton — which is exactly the smallest runtime monitor for the
// property's safety closure.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "buchi/safety.hpp"
#include "words/alphabet.hpp"

namespace slat::finite {

using words::Alphabet;
using words::Sym;
using words::Word;

using State = int;

/// A complete DFA: every state has a transition on every symbol.
class Dfa {
 public:
  Dfa(Alphabet alphabet, int num_states, State initial);

  const Alphabet& alphabet() const { return alphabet_; }
  int num_states() const { return static_cast<int>(accepting_.size()); }
  State initial() const { return initial_; }

  void set_transition(State from, Sym symbol, State to);
  State step(State q, Sym symbol) const;
  void set_accepting(State q, bool accepting);
  bool is_accepting(State q) const { return accepting_[q]; }

  /// Is every transition defined? (Required by most operations below.)
  bool is_total() const;

  /// Membership of a finite word.
  bool accepts(const Word& word) const;

  /// The Moore-minimized equivalent DFA (reachable part only).
  Dfa minimize() const;

  /// Same language? Both DFAs must be total and share the alphabet.
  /// Decided by product reachability (no sampling).
  bool equivalent(const Dfa& other) const;

  /// A shortest accepted word, if the language is non-empty.
  std::optional<Word> shortest_accepted() const;

  /// Swaps accepting and rejecting states (complement language).
  Dfa complemented() const;

  /// Is the accepted language extension-closed (accepting states never
  /// escape to rejection)? Bad-prefix languages of safety properties are.
  bool is_extension_closed() const;

  std::string to_string() const;

 private:
  Alphabet alphabet_;
  State initial_;
  std::vector<bool> accepting_;
  std::vector<std::vector<State>> delta_;  // [state][symbol], -1 = undefined
};

/// The DFA of BAD PREFIXES of the safety automaton's language: it accepts
/// exactly the finite words u such that no extension of u lies in
/// lcl-language of `safety` — i.e. the monitor's rejection language.
/// Minimized; accepting states form a sink-closed region.
Dfa bad_prefix_dfa(const buchi::DetSafety& safety);

/// The minimal monitor: the Moore-minimized DFA of GOOD prefixes (the
/// complement of bad_prefix_dfa). Its size is the canonical state count of
/// any monitor for the property's closure.
Dfa good_prefix_dfa(const buchi::DetSafety& safety);

}  // namespace slat::finite
