// Content-addressed memoization for the pipeline's expensive products —
// complementation, determinization, closures, decompositions.
//
// Callers key each cache entry by a 128-bit structural digest of the input
// (DigestBuilder below; every module exposes a `fingerprint()` of its
// automaton/formula/lattice types). Two inputs with the same digest are the
// same value for all practical purposes (collision probability ~2^-128·k²),
// and every cached operation is a pure deterministic function of its input,
// so a cache hit returns the bit-identical automaton the miss path would
// have rebuilt. cache_equivalence_test differential-tests exactly this
// contract, at 1 and 4 threads.
//
// Each MemoCache is LRU-bounded (default capacity from SLAT_CACHE_CAPACITY,
// else 256 entries) and registers hit/miss/eviction counters plus a
// miss-compute timer in the metrics registry under "cache.<name>.*" —
// scripts/run_benches.sh exports the resulting hit rates to BENCH_PR3.json.
//
// Concurrency: lookups and inserts take a per-cache mutex; the miss
// computation runs OUTSIDE the lock (it may itself consult other caches or
// fan out onto the thread pool). Two threads missing on the same key both
// compute; determinism makes the duplicate insert harmless (first insert
// wins). This composes with the parallel layer under TSan.
//
// The process-wide enable switch (SLAT_CACHE env var / set_cache_enabled)
// turns every cache into a pass-through, which is how the differential
// tests obtain their uncached reference runs.
#pragma once

#include <atomic>
#include <cstdlib>
#include <list>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/state_set.hpp"

namespace slat::core {

/// A 128-bit structural digest: the cache key.
struct Digest {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest&, const Digest&) = default;
  /// For hash tables; `lo` is already fully mixed.
  std::uint64_t hash() const { return lo; }
};

/// Accumulates a stream of words/strings into a Digest. The two lanes run
/// the same FNV-style combine from different seeds with per-lane pre-mixing,
/// so they behave as independent 64-bit hashes.
class DigestBuilder {
 public:
  DigestBuilder& add(std::uint64_t v) {
    a_ = hash_combine(a_, v);
    b_ = hash_combine(b_, v ^ 0x9e3779b97f4a7c15ull);
    return *this;
  }

  DigestBuilder& add_int(int v) {
    return add(static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)));
  }

  DigestBuilder& add_bool(bool v) { return add(v ? 1 : 0); }

  /// Length-prefixed so "ab"+"c" and "a"+"bc" digest differently.
  DigestBuilder& add_string(std::string_view s) {
    add(s.size());
    std::uint64_t word = 0;
    int lane = 0;
    for (unsigned char c : s) {
      word = word << 8 | c;
      if (++lane == 8) {
        add(word);
        word = 0;
        lane = 0;
      }
    }
    if (lane != 0) add(word);
    return *this;
  }

  /// Digests the VALUES (length-prefixed), independent of the container
  /// carrying them: a CSR slice and a nested vector with equal contents
  /// produce identical digests.
  template <typename Int>
  DigestBuilder& add_ints(std::span<const Int> values) {
    add(values.size());
    for (const Int v : values) add_int(static_cast<int>(v));
    return *this;
  }

  template <typename Int>
  DigestBuilder& add_ints(const std::vector<Int>& values) {
    return add_ints(std::span<const Int>(values.data(), values.size()));
  }

  DigestBuilder& add_bools(const std::vector<bool>& values) {
    add(values.size());
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      word |= static_cast<std::uint64_t>(values[i]) << (i & 63);
      if ((i & 63) == 63) {
        add(word);
        word = 0;
      }
    }
    if (values.size() % 64 != 0) add(word);
    return *this;
  }

  DigestBuilder& add_digest(const Digest& d) { return add(d.hi).add(d.lo); }

  Digest digest() const { return Digest{hash_mix(a_), hash_mix(b_)}; }

 private:
  std::uint64_t a_ = kHashSeed;
  std::uint64_t b_ = ~kHashSeed;
};

/// Process-wide cache switch (default on; SLAT_CACHE=0 disables). When off,
/// get_or_compute always recomputes and touches neither entries nor metrics.
inline std::atomic<bool>& cache_enabled_flag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SLAT_CACHE");
    return env == nullptr || env[0] != '0';
  }();
  return enabled;
}

inline bool cache_enabled() {
  return cache_enabled_flag().load(std::memory_order_relaxed);
}

inline void set_cache_enabled(bool enabled) {
  cache_enabled_flag().store(enabled, std::memory_order_relaxed);
}

/// RAII toggle for differential tests: runs a scope with caching forced on
/// or off, restoring the previous setting.
class CacheEnabledScope {
 public:
  explicit CacheEnabledScope(bool enabled) : previous_(cache_enabled()) {
    set_cache_enabled(enabled);
  }
  ~CacheEnabledScope() { set_cache_enabled(previous_); }
  CacheEnabledScope(const CacheEnabledScope&) = delete;
  CacheEnabledScope& operator=(const CacheEnabledScope&) = delete;

 private:
  bool previous_;
};

namespace detail {

class MemoCacheBase;

/// The list of live caches, for clear_all_caches(). Leaked so that caches
/// with static storage duration can deregister safely in any destruction
/// order.
struct CacheList {
  std::mutex mutex;
  std::vector<MemoCacheBase*> caches;

  static CacheList& global() {
    static CacheList* instance = new CacheList();
    return *instance;
  }
};

class MemoCacheBase {
 public:
  virtual void clear() = 0;

 protected:
  MemoCacheBase() {
    CacheList& list = CacheList::global();
    std::lock_guard<std::mutex> lock(list.mutex);
    list.caches.push_back(this);
  }
  ~MemoCacheBase() {
    CacheList& list = CacheList::global();
    std::lock_guard<std::mutex> lock(list.mutex);
    std::erase(list.caches, this);
  }
};

}  // namespace detail

/// Default per-cache entry bound: SLAT_CACHE_CAPACITY env var, else 256.
inline std::size_t default_cache_capacity() {
  static const std::size_t capacity = [] {
    if (const char* env = std::getenv("SLAT_CACHE_CAPACITY")) {
      const long n = std::atol(env);
      if (n >= 1) return static_cast<std::size_t>(n);
    }
    return static_cast<std::size_t>(256);
  }();
  return capacity;
}

/// Empties every live MemoCache (metrics registrations and counter values
/// are untouched; use metrics().reset_all() for those).
void clear_all_caches();

/// An LRU-bounded map from content digest to a computed value.
template <typename Value>
class MemoCache : public detail::MemoCacheBase {
 public:
  explicit MemoCache(std::string name, std::size_t capacity = default_cache_capacity())
      : name_(std::move(name)),
        capacity_(capacity),
        hits_(metrics().counter("cache." + name_ + ".hits")),
        misses_(metrics().counter("cache." + name_ + ".misses")),
        evictions_(metrics().counter("cache." + name_ + ".evictions")),
        miss_time_(metrics().timer("cache." + name_ + ".miss_compute")) {}

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return index_.size();
  }

  /// The cached value for `key`, computing (and inserting) it on a miss.
  /// `compute` must be a pure function of the content `key` addresses.
  template <typename Compute>
  Value get_or_compute(const Digest& key, Compute&& compute) {
    if (!cache_enabled()) return compute();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      const auto it = index_.find(key);
      if (it != index_.end()) {
        entries_.splice(entries_.begin(), entries_, it->second);
        hits_.inc();
        return it->second->value;
      }
    }
    misses_.inc();
    Value value = [&] {
      ScopedTimer timed(miss_time_);
      return compute();
    }();
    insert(key, value);
    return value;
  }

  void clear() override {
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    index_.clear();
  }

  Counter& hit_counter() { return hits_; }
  Counter& miss_counter() { return misses_; }
  Counter& eviction_counter() { return evictions_; }

 private:
  struct Entry {
    Digest key;
    Value value;
  };
  struct DigestHash {
    std::size_t operator()(const Digest& d) const { return d.hash(); }
  };

  void insert(const Digest& key, const Value& value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (index_.count(key) != 0) return;  // a concurrent miss got here first
    entries_.push_front(Entry{key, value});
    index_.emplace(key, entries_.begin());
    if (index_.size() > capacity_) {
      index_.erase(entries_.back().key);
      entries_.pop_back();
      evictions_.inc();
    }
  }

  const std::string name_;
  const std::size_t capacity_;
  Counter& hits_;
  Counter& misses_;
  Counter& evictions_;
  Timer& miss_time_;

  mutable std::mutex mutex_;
  std::list<Entry> entries_;  // front = most recently used
  std::unordered_map<Digest, typename std::list<Entry>::iterator, DigestHash> index_;
};

inline void clear_all_caches() {
  // Snapshot under the list lock, clear outside it: a cache's own mutex is
  // never acquired while the registry lock is held.
  std::vector<detail::MemoCacheBase*> snapshot;
  {
    detail::CacheList& list = detail::CacheList::global();
    std::lock_guard<std::mutex> lock(list.mutex);
    snapshot = list.caches;
  }
  for (detail::MemoCacheBase* cache : snapshot) cache->clear();
}

}  // namespace slat::core
