// The third instantiation of the generic framework: Rabin-definable tree
// languages (§4.4). Elements are Büchi-shaped Rabin tree automata (the
// class from_ctl and rfcl produce, closed under the union/intersection in
// rabin/operations.hpp); equality is sampled over a regular-tree corpus.
//
// Complementation of Rabin tree automata is the one closure property this
// build substitutes (DESIGN.md §3), so this instance models a BOUNDED
// lattice, not a complemented one — enough for the closure laws, the
// lattice laws, and the safety/liveness definitions; the decomposition
// itself runs through rabin::decompose's effective-union representation.
#pragma once

#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "core/concepts.hpp"
#include "rabin/operations.hpp"
#include "rabin/rabin_tree_automaton.hpp"
#include "trees/ktree.hpp"

namespace slat::core {

class TreeLanguageOps {
 public:
  using Element = rabin::RabinTreeAutomaton;

  TreeLanguageOps(words::Alphabet alphabet, int branching,
                  std::vector<trees::KTree> corpus)
      : alphabet_(std::move(alphabet)),
        branching_(branching),
        corpus_(std::move(corpus)) {
    SLAT_ASSERT(!corpus_.empty());
  }

  Element meet(const Element& a, const Element& b) const {
    return rabin::intersect_buchi(a, b);
  }
  Element join(const Element& a, const Element& b) const {
    // The general union is not Büchi-shaped (pairs side by side); re-shape
    // is unnecessary for the law checks, but meet() requires the shape, so
    // keep joins Büchi-shaped by uniting and re-normalizing the pair: a
    // union of two one-green-pair automata has two green-only pairs, and
    // "∃i: inf green_i" over green-only pairs equals one pair with the
    // union of the greens.
    const Element sum = rabin::unite(a, b);
    std::vector<rabin::State> green;
    for (int i = 0; i < sum.num_pairs(); ++i) {
      for (rabin::State q = 0; q < sum.num_states(); ++q) {
        if (sum.pair(i).green[q]) green.push_back(q);
      }
    }
    Element reshaped(sum.alphabet(), sum.branching(), sum.num_states(), sum.initial());
    for (rabin::State q = 0; q < sum.num_states(); ++q) {
      for (words::Sym s = 0; s < sum.alphabet().size(); ++s) {
        for (const rabin::Tuple& tuple : sum.transitions(q, s)) {
          reshaped.add_transition(q, s, tuple);
        }
      }
    }
    reshaped.add_pair(green, {});
    return reshaped;
  }
  Element top() const {
    Element all(alphabet_, branching_, 1, 0);
    for (words::Sym s = 0; s < alphabet_.size(); ++s) {
      all.add_transition(0, s, rabin::Tuple(branching_, 0));
    }
    all.set_trivial_acceptance();
    return all;
  }
  Element bottom() const {
    Element none(alphabet_, branching_, 1, 0);
    none.set_trivial_acceptance();
    return none;
  }
  bool equal(const Element& a, const Element& b) const {
    for (const trees::KTree& t : corpus_) {
      if (a.accepts(t) != b.accepts(t)) return false;
    }
    return true;
  }
  bool leq(const Element& a, const Element& b) const {
    for (const trees::KTree& t : corpus_) {
      if (a.accepts(t) && !b.accepts(t)) return false;
    }
    return true;
  }

 private:
  words::Alphabet alphabet_;
  int branching_;
  std::vector<trees::KTree> corpus_;
};

static_assert(BoundedLattice<TreeLanguageOps>);

/// rfcl as a generic closure on tree languages.
struct RfclClosureFn {
  rabin::RabinTreeAutomaton operator()(const rabin::RabinTreeAutomaton& a) const {
    return rabin::rfcl(a);
  }
};

static_assert(ClosureFor<RfclClosureFn, TreeLanguageOps>);

}  // namespace slat::core
