// The paper's contribution, as a generic library: safety, liveness, and the
// decomposition theorems over ANY modular complemented lattice with a
// lattice-closure operator — written once, instantiated by finite lattices,
// by the Boolean algebra of ω-regular languages (Büchi automata), and by
// Rabin-definable tree languages.
//
// A lattice instance is a *context object* supplying the operations; the
// element type is whatever the instance says it is (an int for finite
// lattices, a whole Büchi automaton for ω-regular languages). Equality is
// SEMANTIC equality (`equal`), not representational: two automata are the
// same lattice element iff their languages coincide. This is exactly the
// paper's move — the lattice of Büchi-definable languages is a Boolean
// algebra even though no ⋁-complete representation of it exists, which is
// why Gumm's σ-complete framework does not apply and this one does.
#pragma once

#include <concepts>
#include <utility>
#include <vector>

namespace slat::core {

/// Operations of a bounded lattice over Ops::Element. `equal` must be a
/// congruence for meet/join (semantic equality).
template <typename Ops>
concept BoundedLattice = requires(const Ops& lattice, const typename Ops::Element& a,
                                  const typename Ops::Element& b) {
  typename Ops::Element;
  { lattice.meet(a, b) } -> std::convertible_to<typename Ops::Element>;
  { lattice.join(a, b) } -> std::convertible_to<typename Ops::Element>;
  { lattice.top() } -> std::convertible_to<typename Ops::Element>;
  { lattice.bottom() } -> std::convertible_to<typename Ops::Element>;
  { lattice.equal(a, b) } -> std::convertible_to<bool>;
  { lattice.leq(a, b) } -> std::convertible_to<bool>;
};

/// A complemented lattice additionally produces, for each element, SOME
/// complement (complements need not be unique outside distributive
/// lattices; any one works for Theorem 3).
template <typename Ops>
concept ComplementedLattice =
    BoundedLattice<Ops> && requires(const Ops& lattice, const typename Ops::Element& a) {
      { lattice.complement(a) } -> std::convertible_to<typename Ops::Element>;
    };

/// A closure operator for a lattice instance: a callable Element → Element.
template <typename Cl, typename Ops>
concept ClosureFor = requires(const Cl& cl, const typename Ops::Element& a) {
  { cl(a) } -> std::convertible_to<typename Ops::Element>;
};

// ---------------------------------------------------------------------------
// Definitions (paper §3)
// ---------------------------------------------------------------------------

/// a is a cl-safety element iff cl.a = a.
template <typename Ops, typename Cl>
  requires BoundedLattice<Ops> && ClosureFor<Cl, Ops>
bool is_safety_element(const Ops& lattice, const Cl& cl, const typename Ops::Element& a) {
  return lattice.equal(cl(a), a);
}

/// a is a cl-liveness element iff cl.a = 1.
template <typename Ops, typename Cl>
  requires BoundedLattice<Ops> && ClosureFor<Cl, Ops>
bool is_liveness_element(const Ops& lattice, const Cl& cl, const typename Ops::Element& a) {
  return lattice.equal(cl(a), lattice.top());
}

/// A decomposition a = safety ∧ liveness.
template <typename Ops>
struct Decomposition {
  typename Ops::Element safety;
  typename Ops::Element liveness;
};

/// Theorem 3: with lattice closures cl1 ≤ cl2 on a modular complemented
/// lattice, a = cl1.a ∧ (a ∨ b) for b ∈ cmp(cl2.a); cl1.a is a cl1-safety
/// element and a ∨ b is a cl2-liveness element (Lemma 4).
template <typename Ops, typename Cl1, typename Cl2>
  requires ComplementedLattice<Ops> && ClosureFor<Cl1, Ops> && ClosureFor<Cl2, Ops>
Decomposition<Ops> decompose(const Ops& lattice, const Cl1& cl1, const Cl2& cl2,
                             const typename Ops::Element& a) {
  auto b = lattice.complement(cl2(a));
  return Decomposition<Ops>{cl1(a), lattice.join(a, std::move(b))};
}

/// Theorem 2 (single closure): cl1 = cl2 = cl.
template <typename Ops, typename Cl>
  requires ComplementedLattice<Ops> && ClosureFor<Cl, Ops>
Decomposition<Ops> decompose(const Ops& lattice, const Cl& cl,
                             const typename Ops::Element& a) {
  return decompose(lattice, cl, cl, a);
}

// ---------------------------------------------------------------------------
// Law checkers (used by tests on every instance)
// ---------------------------------------------------------------------------

/// The three lattice-closure laws, checked on a sample of elements.
template <typename Ops, typename Cl>
  requires BoundedLattice<Ops> && ClosureFor<Cl, Ops>
bool closure_laws_hold(const Ops& lattice, const Cl& cl,
                       const std::vector<typename Ops::Element>& samples) {
  for (const auto& a : samples) {
    if (!lattice.leq(a, cl(a))) return false;            // extensive
    if (!lattice.equal(cl(cl(a)), cl(a))) return false;  // idempotent
  }
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      if (lattice.leq(a, b) && !lattice.leq(cl(a), cl(b))) return false;  // monotone
    }
  }
  return true;
}

/// The algebraic lattice laws of §3 on a sample (associativity,
/// commutativity, idempotency, absorption — and their duals).
template <typename Ops>
  requires BoundedLattice<Ops>
bool lattice_laws_hold(const Ops& lattice,
                       const std::vector<typename Ops::Element>& samples) {
  for (const auto& a : samples) {
    if (!lattice.equal(lattice.meet(a, a), a)) return false;
    if (!lattice.equal(lattice.join(a, a), a)) return false;
    for (const auto& b : samples) {
      if (!lattice.equal(lattice.meet(a, b), lattice.meet(b, a))) return false;
      if (!lattice.equal(lattice.join(a, b), lattice.join(b, a))) return false;
      if (!lattice.equal(lattice.meet(a, lattice.join(a, b)), a)) return false;
      if (!lattice.equal(lattice.join(a, lattice.meet(a, b)), a)) return false;
      for (const auto& c : samples) {
        if (!lattice.equal(lattice.meet(lattice.meet(a, b), c),
                           lattice.meet(a, lattice.meet(b, c))))
          return false;
        if (!lattice.equal(lattice.join(lattice.join(a, b), c),
                           lattice.join(a, lattice.join(b, c))))
          return false;
      }
    }
  }
  return true;
}

/// Modularity on a sample: a ≤ c ⟹ a ∨ (b ∧ c) = (a ∨ b) ∧ c.
template <typename Ops>
  requires BoundedLattice<Ops>
bool modularity_holds(const Ops& lattice,
                      const std::vector<typename Ops::Element>& samples) {
  for (const auto& a : samples) {
    for (const auto& b : samples) {
      for (const auto& c : samples) {
        if (!lattice.leq(a, c)) continue;
        if (!lattice.equal(lattice.join(a, lattice.meet(b, c)),
                           lattice.meet(lattice.join(a, b), c)))
          return false;
      }
    }
  }
  return true;
}

/// Validity of one decomposition of `a`.
template <typename Ops, typename Cl1, typename Cl2>
  requires BoundedLattice<Ops> && ClosureFor<Cl1, Ops> && ClosureFor<Cl2, Ops>
bool decomposition_valid(const Ops& lattice, const Cl1& cl1, const Cl2& cl2,
                         const typename Ops::Element& a, const Decomposition<Ops>& d) {
  return is_safety_element(lattice, cl1, d.safety) &&
         is_liveness_element(lattice, cl2, d.liveness) &&
         lattice.equal(lattice.meet(d.safety, d.liveness), a);
}

/// Theorem 6 (extremal safety / machine closure) for one decomposition
/// a = s ∧ z with s closed under cl1 or cl2: cl1.a ≤ s must hold.
template <typename Ops, typename Cl1>
  requires BoundedLattice<Ops> && ClosureFor<Cl1, Ops>
bool theorem6_holds(const Ops& lattice, const Cl1& cl1, const typename Ops::Element& a,
                    const typename Ops::Element& s, const typename Ops::Element& z) {
  if (!lattice.equal(lattice.meet(s, z), a)) return true;  // not a decomposition
  return lattice.leq(cl1(a), s);
}

}  // namespace slat::core
