// Deterministic parallel primitives over core::ThreadPool.
//
// The contract every helper here honors (and every caller relies on):
// OUTPUT IS BIT-IDENTICAL REGARDLESS OF THREAD COUNT OR SCHEDULE.
//
//   * parallel_for   — f(i) writes only state owned by index i; the barrier
//                      at the end makes the whole loop a pure function of
//                      its input. Scheduling freedom is invisible.
//   * parallel_map   — results land in a vector slot per index, so the
//                      returned vector is in index order by construction.
//   * parallel_reduce— per-chunk partial folds, combined SEQUENTIALLY in
//                      chunk order. The chunking is a pure function of
//                      (n, grain) — never of the thread count — so even a
//                      non-associative combine (floats, first-hit selection)
//                      sees the exact same grouping every run.
//
// The hot-path constructions (determinize, complement, IAR, attractors) use
// these for their "compute images in parallel, commit sequentially in
// canonical order" levels; see DESIGN notes in each call site.
#pragma once

#include <utility>
#include <vector>

#include "core/thread_pool.hpp"

namespace slat::core {

/// Default elements-per-chunk when the caller does not override it. Small
/// enough to load-balance irregular work, large enough to amortize the
/// chunk-claim atomics.
inline constexpr int kDefaultGrain = 16;

namespace detail {
inline int num_chunks(int n, int grain) { return (n + grain - 1) / grain; }
}  // namespace detail

/// Calls `f(i)` for every i in [0, n), split into `grain`-sized chunks
/// executed across the pool. `f` must only touch state owned by its index
/// (or read shared state that no chunk writes). Runs inline when the pool is
/// single-threaded, the loop is small, or we are already on a worker.
template <typename F>
void parallel_for(int n, F&& f, int grain = kDefaultGrain,
                  ThreadPool& pool = ThreadPool::global()) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  if (n <= grain || pool.num_threads() == 1 || ThreadPool::in_worker()) {
    for (int i = 0; i < n; ++i) f(i);
    return;
  }
  const int chunks = detail::num_chunks(n, grain);
  pool.run(chunks, [&](int c) {
    const int begin = c * grain;
    const int end = begin + grain < n ? begin + grain : n;
    for (int i = begin; i < end; ++i) f(i);
  });
}

/// results[i] = f(i), computed across the pool, returned in index order.
/// R must be default-constructible; each slot is written exactly once.
template <typename R, typename F>
std::vector<R> parallel_map(int n, F&& f, int grain = kDefaultGrain,
                            ThreadPool& pool = ThreadPool::global()) {
  std::vector<R> results(n > 0 ? n : 0);
  parallel_for(
      n, [&](int i) { results[i] = f(i); }, grain, pool);
  return results;
}

/// Folds f(0), f(1), ..., f(n-1) into `identity` via `combine`, evaluating
/// the per-chunk partial folds in parallel and combining the chunk results
/// sequentially in chunk order. Chunk boundaries depend only on (n, grain),
/// so the grouping — and therefore the result, associative combine or not —
/// is independent of the thread count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(int n, T identity, Map&& f, Combine&& combine,
                  int grain = kDefaultGrain,
                  ThreadPool& pool = ThreadPool::global()) {
  if (n <= 0) return identity;
  if (grain < 1) grain = 1;
  // The per-chunk grouping is applied even when running sequentially, so a
  // non-associative combine sees identical rounding at every thread count.
  const int chunks = detail::num_chunks(n, grain);
  std::vector<T> partial(chunks, identity);
  const auto fold_chunk = [&](int c) {
    const int begin = c * grain;
    const int end = begin + grain < n ? begin + grain : n;
    T acc = std::move(partial[c]);
    for (int i = begin; i < end; ++i) acc = combine(std::move(acc), f(i));
    partial[c] = std::move(acc);
  };
  if (chunks == 1 || pool.num_threads() == 1 || ThreadPool::in_worker()) {
    for (int c = 0; c < chunks; ++c) fold_chunk(c);
  } else {
    pool.run(chunks, fold_chunk);
  }
  T acc = std::move(identity);
  for (int c = 0; c < chunks; ++c) acc = combine(std::move(acc), std::move(partial[c]));
  return acc;
}

}  // namespace slat::core
