// Lattice instances for the generic framework in core/concepts.hpp.
//
//   FiniteLatticeOps   — any lattice::FiniteLattice (elements are indices)
//   OmegaRegularOps    — the Boolean algebra of ω-regular languages,
//                        represented by Büchi automata modulo language
//                        equality; the closure is the linear-time lcl.
//                        This is precisely the lattice for which the paper
//                        notes Gumm's framework fails (not ⋁-complete) and
//                        its own applies.
//   PowersetOps        — P({0..n-1}) as bitmasks; a tiny Boolean algebra
//                        with arbitrary set-based closures, used in tests.
#pragma once

#include <cstdint>
#include <functional>

#include "buchi/complement.hpp"
#include "buchi/language.hpp"
#include "buchi/nba.hpp"
#include "buchi/safety.hpp"
#include "common/assert.hpp"
#include "core/concepts.hpp"
#include "lattice/closure.hpp"
#include "lattice/finite_lattice.hpp"

namespace slat::core {

/// A finite lattice as a generic instance. `complement` returns the first
/// complement found; it asserts on non-complemented lattices.
class FiniteLatticeOps {
 public:
  using Element = lattice::Elem;

  explicit FiniteLatticeOps(const lattice::FiniteLattice& lattice) : lattice_(&lattice) {}

  Element meet(Element a, Element b) const { return lattice_->meet(a, b); }
  Element join(Element a, Element b) const { return lattice_->join(a, b); }
  Element top() const { return lattice_->top(); }
  Element bottom() const { return lattice_->bottom(); }
  bool equal(Element a, Element b) const { return a == b; }
  bool leq(Element a, Element b) const { return lattice_->leq(a, b); }
  Element complement(Element a) const {
    const auto complements = lattice_->complements(a);
    SLAT_ASSERT_MSG(!complements.empty(), "element has no complement");
    return complements.front();
  }

 private:
  const lattice::FiniteLattice* lattice_;
};

/// An adapter making lattice::LatticeClosure usable as a generic closure.
class FiniteClosureFn {
 public:
  explicit FiniteClosureFn(const lattice::LatticeClosure& closure) : closure_(&closure) {}
  lattice::Elem operator()(lattice::Elem a) const { return closure_->apply(a); }

 private:
  const lattice::LatticeClosure* closure_;
};

/// The lattice of ω-regular languages over a fixed alphabet. Elements are
/// Büchi automata; all operations are language-level. `equal`/`leq` run on
/// the antichain inclusion engine (buchi/inclusion.hpp) — worst-case
/// exponential (PSPACE-complete problem) but far cheaper than the
/// complementation it replaces; SLAT_INCLUSION=complement restores the
/// rank-based oracle. This instance exists to run the paper's §3 theorems
/// verbatim on the §2 objects.
class OmegaRegularOps {
 public:
  using Element = buchi::Nba;

  explicit OmegaRegularOps(words::Alphabet alphabet) : alphabet_(std::move(alphabet)) {}

  Element meet(const Element& a, const Element& b) const { return buchi::intersect(a, b); }
  Element join(const Element& a, const Element& b) const { return buchi::unite(a, b); }
  Element top() const { return buchi::Nba::universal(alphabet_); }
  Element bottom() const { return buchi::Nba::empty_language(alphabet_); }
  bool equal(const Element& a, const Element& b) const { return buchi::is_equivalent(a, b); }
  bool leq(const Element& a, const Element& b) const { return buchi::is_subset(a, b); }
  Element complement(const Element& a) const { return buchi::complement(a); }

 private:
  words::Alphabet alphabet_;
};

/// The linear-time safety closure lcl as a generic closure on ω-regular
/// languages.
struct LclClosureFn {
  buchi::Nba operator()(const buchi::Nba& a) const { return buchi::safety_closure(a); }
};

/// The same ω-regular lattice with SAMPLED equality: `equal`/`leq` compare
/// languages on a fixed corpus of ultimately periodic words instead of
/// running an exact inclusion check. Sound for refutation and cheap,
/// so usable on automata the exact instance cannot afford; complements are
/// still exact (via the rank construction on the trimmed automaton).
class SampledOmegaRegularOps {
 public:
  using Element = buchi::Nba;

  SampledOmegaRegularOps(words::Alphabet alphabet, std::vector<words::UpWord> corpus)
      : alphabet_(std::move(alphabet)), corpus_(std::move(corpus)) {
    SLAT_ASSERT(!corpus_.empty());
  }

  Element meet(const Element& a, const Element& b) const { return buchi::intersect(a, b); }
  Element join(const Element& a, const Element& b) const { return buchi::unite(a, b); }
  Element top() const { return buchi::Nba::universal(alphabet_); }
  Element bottom() const { return buchi::Nba::empty_language(alphabet_); }
  bool equal(const Element& a, const Element& b) const {
    return !buchi::find_disagreement(a, b, corpus_).has_value();
  }
  bool leq(const Element& a, const Element& b) const {
    for (const auto& w : corpus_) {
      if (a.accepts(w) && !b.accepts(w)) return false;
    }
    return true;
  }
  Element complement(const Element& a) const { return buchi::complement(a); }

 private:
  words::Alphabet alphabet_;
  std::vector<words::UpWord> corpus_;
};

/// P({0..n-1}) with bitmask elements — a Boolean algebra for cheap tests.
// (TreeLanguageOps, the Rabin-tree instance, lives in core/tree_instance.hpp
// to keep this header free of the tree/game dependency chain.)
class PowersetOps {
 public:
  using Element = std::uint32_t;

  explicit PowersetOps(int universe_size) : size_(universe_size) {
    SLAT_ASSERT(universe_size >= 0 && universe_size <= 31);
  }

  Element meet(Element a, Element b) const { return a & b; }
  Element join(Element a, Element b) const { return a | b; }
  Element top() const { return (1u << size_) - 1; }
  Element bottom() const { return 0; }
  bool equal(Element a, Element b) const { return a == b; }
  bool leq(Element a, Element b) const { return (a & b) == a; }
  Element complement(Element a) const { return top() & ~a; }

  int universe_size() const { return size_; }

 private:
  int size_;
};

}  // namespace slat::core
