// A small persistent thread pool for the automata and lattice hot paths.
//
// Design constraints, in order:
//
//   1. DETERMINISM. Every algorithm built on this pool must produce
//      bit-identical output regardless of thread count or schedule. The pool
//      therefore only provides an unordered "execute chunks [0, n)" barrier
//      (`run`); all ordering-sensitive combination (interning, reduction,
//      output assembly) happens in the caller, sequentially, in index order.
//      parallel.hpp packages the common patterns.
//   2. Low standing cost. Workers sleep on a condition variable between
//      jobs; an idle pool burns no CPU. Chunks are claimed dynamically off a
//      shared atomic cursor, so an idle thread steals the next unclaimed
//      chunk and load imbalance self-corrects at chunk granularity.
//   3. Re-entrancy safety. A task that itself calls `run` (e.g. a bench pool
//      parallelizing over instances whose construction is internally
//      parallel) executes the nested job inline on the worker thread —
//      nested jobs never deadlock waiting for the busy workers.
//
// Thread count resolution: explicit `set_num_threads`, else the SLAT_THREADS
// environment variable, else std::thread::hardware_concurrency().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"

namespace slat::core {

class ThreadPool {
 public:
  /// The process-wide pool the parallel algorithms use by default.
  static ThreadPool& global() {
    static ThreadPool pool;
    return pool;
  }

  /// `num_threads` counts the calling thread: a pool of size T spawns T - 1
  /// workers. 0 = auto (SLAT_THREADS env var, else hardware concurrency).
  explicit ThreadPool(int num_threads = 0) { set_num_threads(num_threads); }

  ~ThreadPool() { stop_workers(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resizes the pool (joins and respawns workers). Must not be called while
  /// a job is in flight — a resize would join workers that are executing the
  /// live job's chunks and tear the job state out from under them. The
  /// precondition is asserted, not silently assumed. 0 = auto.
  void set_num_threads(int num_threads) {
    SLAT_ASSERT_MSG(!job_in_flight_.load(std::memory_order_acquire) && !in_worker_flag(),
                    "set_num_threads while a job is in flight on this pool");
    if (num_threads <= 0) num_threads = default_num_threads();
    stop_workers();
    num_threads_ = num_threads;
    shutdown_ = false;
    workers_.reserve(num_threads - 1);
    for (int t = 0; t < num_threads - 1; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// True inside a pool task on a worker thread (nested `run`s go inline).
  static bool in_worker() { return in_worker_flag(); }

  /// Executes `chunk_fn(c)` for every c in [0, num_chunks) across the
  /// workers and the calling thread; returns once all chunks completed.
  /// Chunks run in an unspecified order and MUST be independent. The first
  /// exception thrown by a chunk is rethrown here after the barrier.
  void run(int num_chunks, const std::function<void(int)>& chunk_fn) {
    if (num_chunks <= 0) return;
    // Inline when parallelism can't help — and, crucially, when a job is
    // already in flight on this pool: a nested run() from the original
    // caller thread (workers have their own thread_local guard) must not
    // clobber the live job's cursor and function.
    if (num_chunks == 1 || workers_.empty() || in_worker_flag() ||
        job_in_flight_.exchange(true, std::memory_order_acquire)) {
      for (int c = 0; c < num_chunks; ++c) chunk_fn(c);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_fn_ = &chunk_fn;
      job_chunks_ = num_chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      done_chunks_.store(0, std::memory_order_relaxed);
      error_ = nullptr;
      ++generation_;
    }
    wake_workers_.notify_all();

    claim_chunks(chunk_fn, num_chunks);

    std::unique_lock<std::mutex> lock(mutex_);
    job_done_.wait(lock, [this] {
      // Wait for every chunk to finish AND every worker to leave the claim
      // loop: a laggard still inside it must not observe the next job's
      // reset cursor (it would re-execute this job's function on it).
      return done_chunks_.load(std::memory_order_acquire) >= job_chunks_ &&
             active_workers_ == 0;
    });
    job_fn_ = nullptr;
    const std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    job_in_flight_.store(false, std::memory_order_release);
    if (error != nullptr) std::rethrow_exception(error);
  }

 private:
  static int default_num_threads() {
    if (const char* env = std::getenv("SLAT_THREADS")) {
      const int n = std::atoi(env);
      if (n >= 1) return n;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  static bool& in_worker_flag() {
    thread_local bool flag = false;
    return flag;
  }

  void claim_chunks(const std::function<void(int)>& fn, int num_chunks) {
    while (true) {
      const int c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      try {
        fn(c);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (error_ == nullptr) error_ = std::current_exception();
      }
      done_chunks_.fetch_add(1, std::memory_order_release);
    }
  }

  void worker_loop() {
    in_worker_flag() = true;
    std::uint64_t seen_generation = 0;
    while (true) {
      const std::function<void(int)>* fn = nullptr;
      int num_chunks = 0;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_workers_.wait(lock, [&] {
          return shutdown_ || generation_ != seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
        fn = job_fn_;
        num_chunks = job_chunks_;
        ++active_workers_;
      }
      if (fn != nullptr) claim_chunks(*fn, num_chunks);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_workers_;
      }
      job_done_.notify_one();
    }
  }

  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    wake_workers_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    workers_.clear();
  }

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_workers_;
  std::condition_variable job_done_;
  bool shutdown_ = false;
  std::uint64_t generation_ = 0;
  int active_workers_ = 0;

  std::atomic<bool> job_in_flight_{false};
  const std::function<void(int)>* job_fn_ = nullptr;
  int job_chunks_ = 0;
  std::atomic<int> next_chunk_{0};
  std::atomic<int> done_chunks_{0};
  std::exception_ptr error_;
};

/// Sets the global pool size (0 = auto). Benches and tests use this to sweep
/// thread counts; outputs must not change — only wall-clock time may.
inline void set_num_threads(int num_threads) {
  ThreadPool::global().set_num_threads(num_threads);
}

inline int num_threads() { return ThreadPool::global().num_threads(); }

}  // namespace slat::core
