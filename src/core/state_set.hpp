// High-performance state-set kernel shared by the automata hot paths.
//
// Every expensive construction in this library — the subset construction,
// rank-based complementation, bisimulation refinement, IAR expansion —
// bottoms out in two operations: "build a set of dense state indices" and
// "map that set (or tuple) to a canonical id". The seed implementation used
// sorted `std::vector<State>` keyed through `std::map` (O(log n) ordered
// lookups, each a full-vector comparison). This header provides the fast
// replacements:
//
//   * StateSet    — a dynamic bitset over uint64_t words with small-size
//                   inline storage (≤128 states allocation-free), word-wise
//                   union, popcount/ctz iteration, and an FNV-style hash
//                   that is independent of capacity.
//   * InternTable — an open-addressing (linear probing, power-of-two) hash
//                   table assigning dense ids to keys in FIRST-ENCOUNTER
//                   order. Because the seed's std::map interning also
//                   assigned ids by first encounter (`map.size()` at
//                   emplace), swapping it in preserves state numbering —
//                   and therefore exact output automata — everywhere.
//
// Interning keys supply `hash()` and `operator==`; `IntVecKey` wraps a
// `std::vector<int>` (partition-refinement signatures, IAR records) so the
// common cases need no bespoke key type.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace slat::core {

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// FNV-1a-style combining step over 64-bit lanes.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  h ^= hash_mix(v);
  h *= 1099511628211ull;  // FNV prime
  return h;
}

inline constexpr std::uint64_t kHashSeed = 1469598103934665603ull;  // FNV offset

/// A set of dense non-negative indices as a dynamic bitset. Grows on insert;
/// sets that fit in 128 bits never touch the heap.
class StateSet {
 public:
  StateSet() : words_(inline_), num_words_(kInlineWords) {
    inline_[0] = inline_[1] = 0;
  }

  /// Pre-sizes the universe so inserts below `universe_size` never grow.
  explicit StateSet(int universe_size) : StateSet() {
    if (universe_size > kInlineWords * 64) grow(words_for(universe_size));
  }

  StateSet(const StateSet& other) : StateSet() { assign(other); }

  StateSet(StateSet&& other) noexcept : StateSet() { swap(other); }

  StateSet& operator=(const StateSet& other) {
    if (this != &other) assign(other);
    return *this;
  }

  StateSet& operator=(StateSet&& other) noexcept {
    if (this != &other) swap(other);
    return *this;
  }

  ~StateSet() {
    if (words_ != inline_) delete[] words_;
  }

  void swap(StateSet& other) noexcept {
    // Both inline: swap the buffers. Otherwise repoint heap pointers,
    // copying inline contents across when exactly one side is inline.
    const bool a_inline = words_ == inline_;
    const bool b_inline = other.words_ == other.inline_;
    std::swap(inline_[0], other.inline_[0]);
    std::swap(inline_[1], other.inline_[1]);
    std::swap(num_words_, other.num_words_);
    std::swap(words_, other.words_);
    if (a_inline) other.words_ = other.inline_;
    if (b_inline) words_ = inline_;
  }

  bool empty() const {
    for (int w = 0; w < num_words_; ++w) {
      if (words_[w] != 0) return false;
    }
    return true;
  }

  /// Number of elements (popcount over the words).
  int count() const {
    int total = 0;
    for (int w = 0; w < num_words_; ++w) total += std::popcount(words_[w]);
    return total;
  }

  void clear() { std::memset(words_, 0, sizeof(std::uint64_t) * num_words_); }

  void insert(int index) {
    SLAT_ASSERT(index >= 0);
    const int w = index >> 6;
    if (w >= num_words_) grow(w + 1);
    words_[w] |= 1ull << (index & 63);
  }

  void erase(int index) {
    SLAT_ASSERT(index >= 0);
    const int w = index >> 6;
    if (w < num_words_) words_[w] &= ~(1ull << (index & 63));
  }

  bool contains(int index) const {
    SLAT_ASSERT(index >= 0);
    const int w = index >> 6;
    return w < num_words_ && (words_[w] >> (index & 63) & 1ull) != 0;
  }

  /// this ∪= other, word-wise.
  void union_with(const StateSet& other) {
    if (other.num_words_ > num_words_) grow(other.num_words_);
    for (int w = 0; w < other.num_words_; ++w) words_[w] |= other.words_[w];
  }

  /// this ⊇ other? (capacity-independent word-wise test). The antichain
  /// subsumption checks in the inclusion engine are built on this.
  bool contains_all(const StateSet& other) const {
    const int common = other.num_words_ < num_words_ ? other.num_words_ : num_words_;
    for (int w = 0; w < common; ++w) {
      if ((other.words_[w] & ~words_[w]) != 0) return false;
    }
    for (int w = common; w < other.num_words_; ++w) {
      if (other.words_[w] != 0) return false;
    }
    return true;
  }

  /// this ∩ other ≠ ∅?
  bool intersects(const StateSet& other) const {
    const int common = other.num_words_ < num_words_ ? other.num_words_ : num_words_;
    for (int w = 0; w < common; ++w) {
      if ((words_[w] & other.words_[w]) != 0) return true;
    }
    return false;
  }

  /// Calls `f(index)` for each member in increasing order (ctz iteration).
  template <typename F>
  void for_each(F&& f) const {
    for (int w = 0; w < num_words_; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        f(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
      }
    }
  }

  /// Members as a sorted vector (bitset order is increasing).
  std::vector<int> to_vector() const {
    std::vector<int> out;
    out.reserve(count());
    for_each([&](int q) { out.push_back(q); });
    return out;
  }

  /// Capacity-independent: equal sets hash equal regardless of how they grew.
  std::uint64_t hash() const {
    std::uint64_t h = kHashSeed;
    int last = num_words_ - 1;
    while (last >= 0 && words_[last] == 0) --last;
    for (int w = 0; w <= last; ++w) h = hash_combine(h, words_[w]);
    return h;
  }

  /// Set equality (capacity-independent).
  friend bool operator==(const StateSet& a, const StateSet& b) {
    const StateSet& small = a.num_words_ <= b.num_words_ ? a : b;
    const StateSet& large = a.num_words_ <= b.num_words_ ? b : a;
    for (int w = 0; w < small.num_words_; ++w) {
      if (small.words_[w] != large.words_[w]) return false;
    }
    for (int w = small.num_words_; w < large.num_words_; ++w) {
      if (large.words_[w] != 0) return false;
    }
    return true;
  }

 private:
  static constexpr int kInlineWords = 2;

  static int words_for(int universe_size) { return (universe_size + 63) >> 6; }

  void grow(int want_words) {
    if (want_words <= num_words_) return;
    // Double to keep repeated single-bit inserts amortized-linear.
    int new_words = num_words_;
    while (new_words < want_words) new_words *= 2;
    auto* fresh = new std::uint64_t[new_words];
    std::memcpy(fresh, words_, sizeof(std::uint64_t) * num_words_);
    std::memset(fresh + num_words_, 0,
                sizeof(std::uint64_t) * (new_words - num_words_));
    if (words_ != inline_) delete[] words_;
    words_ = fresh;
    num_words_ = new_words;
  }

  void assign(const StateSet& other) {
    if (other.num_words_ > num_words_) grow(other.num_words_);
    std::memcpy(words_, other.words_, sizeof(std::uint64_t) * other.num_words_);
    std::memset(words_ + other.num_words_, 0,
                sizeof(std::uint64_t) * (num_words_ - other.num_words_));
  }

  std::uint64_t* words_;
  int num_words_;
  std::uint64_t inline_[kInlineWords];
};

/// Hash over a span of ints (signatures, records, rankings).
inline std::uint64_t hash_ints(const int* data, std::size_t n,
                               std::uint64_t h = kHashSeed) {
  for (std::size_t i = 0; i < n; ++i) {
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(data[i])));
  }
  return h;
}

/// Interning key wrapping a vector<int>: partition-refinement signatures,
/// IAR records, rank vectors.
struct IntVecKey {
  std::vector<int> values;

  std::uint64_t hash() const { return hash_ints(values.data(), values.size()); }
  friend bool operator==(const IntVecKey& a, const IntVecKey& b) {
    return a.values == b.values;
  }
};

/// Open-addressing interner: assigns dense ids 0,1,2,... to distinct keys in
/// first-encounter order. Key must provide `hash()` and `operator==`.
/// Load factor is kept below 2/3; probing is linear (keys hash well — every
/// hash() above ends in a full mix — so clustering stays benign).
template <typename Key>
class InternTable {
 public:
  InternTable() : slots_(kInitialSlots, -1), mask_(kInitialSlots - 1) {}

  int size() const { return static_cast<int>(keys_.size()); }

  const Key& key(int id) const { return keys_[id]; }
  const std::vector<Key>& keys() const { return keys_; }

  /// Pre-sizes both the key storage and the slot array so that interning up
  /// to `expected_keys` keys triggers no rehash (constructions that know
  /// their expected state count call this to avoid rehash storms).
  void reserve(int expected_keys) {
    if (expected_keys <= 0) return;
    keys_.reserve(expected_keys);
    hashes_.reserve(expected_keys);
    std::size_t want = slots_.size();
    while (static_cast<std::size_t>(expected_keys) * 3 >= want * 2) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  /// Forgets all keys (ids restart at 0) but keeps the allocated capacity,
  /// so a cleared table can be refilled without re-growing.
  void clear() {
    keys_.clear();
    hashes_.clear();
    std::fill(slots_.begin(), slots_.end(), -1);
  }

  /// Id of `key`, inserting it if new. `created` (optional) reports whether
  /// this call allocated a fresh id.
  int intern(Key key, bool* created = nullptr) {
    const std::uint64_t h = key.hash();
    std::size_t slot = h & mask_;
    while (slots_[slot] != -1) {
      const int id = slots_[slot];
      if (hashes_[id] == h && keys_[id] == key) {
        if (created != nullptr) *created = false;
        return id;
      }
      slot = (slot + 1) & mask_;
    }
    const int id = static_cast<int>(keys_.size());
    keys_.push_back(std::move(key));
    hashes_.push_back(h);
    slots_[slot] = id;
    if (created != nullptr) *created = true;
    if (keys_.size() * 3 >= slots_.size() * 2) rehash(slots_.size() * 2);
    return id;
  }

  /// Id of `key` if present, else -1. Never inserts.
  int find(const Key& key) const {
    const std::uint64_t h = key.hash();
    std::size_t slot = h & mask_;
    while (slots_[slot] != -1) {
      const int id = slots_[slot];
      if (hashes_[id] == h && keys_[id] == key) return id;
      slot = (slot + 1) & mask_;
    }
    return -1;
  }

 private:
  static constexpr std::size_t kInitialSlots = 16;

  void rehash(std::size_t new_slots) {
    slots_.assign(new_slots, -1);
    mask_ = new_slots - 1;
    for (int id = 0; id < static_cast<int>(keys_.size()); ++id) {
      std::size_t slot = hashes_[id] & mask_;
      while (slots_[slot] != -1) slot = (slot + 1) & mask_;
      slots_[slot] = id;
    }
  }

  std::vector<Key> keys_;
  std::vector<std::uint64_t> hashes_;
  std::vector<int> slots_;  // -1 = empty, else key id
  std::size_t mask_;
};

}  // namespace slat::core
