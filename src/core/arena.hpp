// Monotone bump-pointer arena for search-engine scratch allocations.
//
// The antichain inclusion engine allocates one profile matrix (two
// nb × nb_words bit-matrix halves) per period-search node and one state-set
// word block per stem node. With `new`/`std::vector` those allocations
// dominate the search loop: each node pays a malloc round trip, and the
// blocks end up scattered across the heap, so the word-parallel subsumption
// sweeps stride through cold cache lines. An Arena replaces that with a
// bump pointer over large chunks:
//
//   * allocate(n)       — O(1): bump within the current chunk, or chain a
//                         new chunk (geometrically grown, so the number of
//                         chunks is logarithmic in total bytes).
//   * reset()           — O(1): forgets every allocation but KEEPS the
//                         chunks, so the next search phase reuses the same
//                         hot memory. This is the "monotone" lifetime rule:
//                         individual blocks are never freed; whole phases
//                         are.
//   * alloc_array<T>(n) — typed convenience over allocate() for trivially
//                         destructible T (nothing runs destructors).
//
// Alignment: every block is aligned to alignof(std::max_align_t), which
// covers the std::uint64_t word blocks the engine stores. Oversized
// requests (larger than the current chunk) get a dedicated chunk of at
// least the requested size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "common/assert.hpp"

namespace slat::core {

class Arena {
 public:
  /// `chunk_bytes` seeds the granularity of the backing allocations; chunks
  /// double from there (capped), so a small seed only costs a few extra
  /// chunk headers, never O(n) allocations.
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : default_chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw block of `bytes`, aligned to alignof(std::max_align_t). Never
  /// returns nullptr (a zero-byte request returns a valid chunk position).
  void* allocate(std::size_t bytes) {
    bytes = align_up(bytes);
    if (current_ == chunks_.size() || used_ + bytes > chunks_[current_].size) {
      advance_to_chunk_fitting(bytes);
    }
    Chunk& chunk = chunks_[current_];
    void* out = chunk.data.get() + used_;
    used_ += bytes;
    bytes_allocated_ += bytes;
    return out;
  }

  /// Typed array of `count` uninitialized elements. T must be trivially
  /// destructible: reset() runs no destructors.
  template <typename T>
  T* alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return static_cast<T*>(allocate(count * sizeof(T)));
  }

  /// Like alloc_array<std::uint64_t>, but zero-filled — the engine's
  /// state-set and profile blocks start empty.
  std::uint64_t* alloc_words(std::size_t count) {
    auto* words = alloc_array<std::uint64_t>(count);
    std::memset(words, 0, count * sizeof(std::uint64_t));
    return words;
  }

  /// Forgets all allocations, keeps the chunks. Previously returned
  /// pointers dangle; the next allocations reuse the same (cache-warm)
  /// memory from the first chunk onward.
  void reset() {
    current_ = 0;
    used_ = 0;
    bytes_allocated_ = 0;
  }

  /// Total bytes handed out since construction / the last reset() (after
  /// alignment rounding).
  std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes of backing chunks currently held (survives reset()).
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{1} << 20;  // 1 MiB
  static constexpr std::size_t kMaxChunkBytes = std::size_t{1} << 26;      // 64 MiB

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t align_up(std::size_t bytes) {
    constexpr std::size_t a = alignof(std::max_align_t);
    return (bytes + a - 1) & ~(a - 1);
  }

  /// Leaves the (full or missing) current chunk and lands on one that fits
  /// `bytes` (already aligned), appending a fresh chunk if none does. Chunk
  /// sizes double up to the cap; an oversized request gets an exact-fit
  /// chunk. operator new[] aligns to max_align_t and chunk sizes are
  /// multiples of it, so every bump stays aligned.
  void advance_to_chunk_fitting(std::size_t bytes) {
    if (current_ < chunks_.size()) ++current_;  // current chunk cannot fit
    while (current_ < chunks_.size() && chunks_[current_].size < bytes) ++current_;
    if (current_ == chunks_.size()) {
      std::size_t want = default_chunk_bytes_;
      for (std::size_t i = 0; i < chunks_.size() && want < kMaxChunkBytes; ++i) {
        want <<= 1;
      }
      if (want > kMaxChunkBytes) want = kMaxChunkBytes;
      if (want < bytes) want = bytes;
      chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
    }
    used_ = 0;
  }

  std::size_t default_chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t current_ = 0;  // == chunks_.size() before the first allocation
  std::size_t used_ = 0;     // bytes consumed in chunks_[current_]
  std::size_t bytes_allocated_ = 0;
};

}  // namespace slat::core
