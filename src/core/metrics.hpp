// Process-wide metrics registry: named counters, timers, and histograms for
// the pipeline's hot products (cache hit rates, compute times, size
// distributions). The registry is the observability half of the memo-cache
// layer (memo_cache.hpp): every cache registers hit/miss/eviction counters
// here, and scripts/run_benches.sh exports the dump into BENCH_PR3.json.
//
// Cost model:
//   * Counters are single relaxed atomic adds — cheap enough to leave on in
//     production paths.
//   * Timers read the steady clock, so ScopedTimer checks the runtime enable
//     flag first; with SLAT_METRICS=0 a scope costs one predictable branch.
//   * Compiling with -DSLAT_METRICS_ENABLED=0 turns every mutation into a
//     no-op the optimizer deletes entirely (the zero-cost escape hatch).
//
// Instrument-site pattern (the registry returns stable references; look the
// metric up once, not per event):
//
//   static core::Counter& hits = core::metrics().counter("cache.foo.hits");
//   ...
//   hits.inc();
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

#ifndef SLAT_METRICS_ENABLED
#define SLAT_METRICS_ENABLED 1
#endif

namespace slat::core {

inline constexpr bool kMetricsCompiled = SLAT_METRICS_ENABLED != 0;

/// Runtime toggle, initialized from the SLAT_METRICS environment variable
/// (anything but "0" enables). Timers consult it; counters do not (a relaxed
/// add is cheaper than a well-predicted branch plus the add).
inline std::atomic<bool>& metrics_enabled_flag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("SLAT_METRICS");
    return env == nullptr || env[0] != '0';
  }();
  return enabled;
}

inline bool metrics_enabled() {
  return kMetricsCompiled && metrics_enabled_flag().load(std::memory_order_relaxed);
}

inline void set_metrics_enabled(bool enabled) {
  metrics_enabled_flag().store(enabled, std::memory_order_relaxed);
}

/// A monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if constexpr (kMetricsCompiled) value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Accumulated wall-clock time plus an invocation count. Use via ScopedTimer
/// or add() directly when the duration is measured elsewhere.
class Timer {
 public:
  void add(std::uint64_t nanoseconds) {
    if constexpr (kMetricsCompiled) {
      total_ns_.fetch_add(nanoseconds, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::uint64_t total_ns() const { return total_ns_.load(std::memory_order_relaxed); }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  void reset() {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII scope feeding a Timer. Skips the clock reads when metrics are
/// disabled at runtime.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& timer)
      : timer_(metrics_enabled() ? &timer : nullptr),
        start_(timer_ != nullptr ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (timer_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      timer_->add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Power-of-two histogram over uint64 values: bucket i counts values whose
/// bit width is i (bucket 0 holds the value 0). Fixed footprint, lock-free
/// recording — good enough for size and latency distributions.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void record(std::uint64_t value) {
    if constexpr (kMetricsCompiled) {
      buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t value) {
    return value == 0 ? 0 : 64 - std::countl_zero(value);
  }

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
};

/// Name-addressed registry. Lookups intern the name under a mutex and return
/// a reference that stays valid for the life of the process; hot paths look
/// up once and keep the reference. Dumps walk the (ordered) name map, so
/// output order is deterministic.
class MetricsRegistry {
 public:
  /// The process-wide registry. Intentionally leaked: metric references held
  /// by immortal caches must never dangle during static destruction.
  static MetricsRegistry& global() {
    static MetricsRegistry* instance = new MetricsRegistry();
    return *instance;
  }

  Counter& counter(std::string_view name) { return intern(counters_, name); }
  Timer& timer(std::string_view name) { return intern(timers_, name); }
  Histogram& histogram(std::string_view name) { return intern(histograms_, name); }

  /// Zeroes every metric (registrations survive). Tests and differential
  /// runs use this to isolate phases.
  void reset_all() {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, t] : timers_) t->reset();
    for (auto& [name, h] : histograms_) h->reset();
  }

  /// Human-readable dump, one metric per line, sorted by name.
  std::string dump_text() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    for (const auto& [name, c] : counters_) {
      out << name << " = " << c->value() << "\n";
    }
    for (const auto& [name, t] : timers_) {
      out << name << " = " << t->total_ns() << " ns over " << t->count() << " calls\n";
    }
    for (const auto& [name, h] : histograms_) {
      out << name << " = histogram(" << h->total_count() << " samples)\n";
    }
    return out.str();
  }

  /// Machine-readable dump: {"counters": {...}, "timers": {...},
  /// "histograms": {...}}. Histograms list only non-empty buckets as
  /// [bit_width, count] pairs.
  std::string dump_json() const {
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      out << (first ? "" : ",") << "\n    \"" << name << "\": " << c->value();
      first = false;
    }
    out << "\n  },\n  \"timers\": {";
    first = true;
    for (const auto& [name, t] : timers_) {
      out << (first ? "" : ",") << "\n    \"" << name << "\": {\"total_ns\": "
          << t->total_ns() << ", \"count\": " << t->count() << "}";
      first = false;
    }
    out << "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      out << (first ? "" : ",") << "\n    \"" << name << "\": [";
      bool first_bucket = true;
      for (int i = 0; i < Histogram::kNumBuckets; ++i) {
        if (h->bucket(i) == 0) continue;
        out << (first_bucket ? "" : ", ") << "[" << i << ", " << h->bucket(i) << "]";
        first_bucket = false;
      }
      out << "]";
      first = false;
    }
    out << "\n  }\n}\n";
    return out.str();
  }

 private:
  MetricsRegistry() = default;

  template <typename Metric>
  Metric& intern(std::map<std::string, std::unique_ptr<Metric>, std::less<>>& store,
                 std::string_view name) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = store.find(name);
    if (it == store.end()) {
      it = store.emplace(std::string(name), std::make_unique<Metric>()).first;
    }
    return *it->second;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Timer>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthand for the global registry.
inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

}  // namespace slat::core
