#include "monitor/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace slat::monitor {

std::vector<MonitorId> zipf_monitor_assignment(const TrafficConfig& cfg,
                                               std::mt19937& rng) {
  SLAT_ASSERT(cfg.num_monitors >= 1);
  // Small-population zipf via an explicit CDF: weight(m) = (m+1)^-s.
  std::vector<double> cdf(cfg.num_monitors);
  double total = 0.0;
  for (std::uint32_t m = 0; m < cfg.num_monitors; ++m) {
    total += std::pow(static_cast<double>(m + 1), -cfg.zipf_exponent);
    cdf[m] = total;
  }
  std::uniform_real_distribution<double> unit(0.0, total);
  std::vector<MonitorId> assignment(cfg.num_sessions);
  for (std::uint32_t i = 0; i < cfg.num_sessions; ++i) {
    const double u = unit(rng);
    std::uint32_t m = 0;
    while (m + 1 < cfg.num_monitors && cdf[m] < u) ++m;
    assignment[i] = m;
  }
  return assignment;
}

std::vector<Event> make_batch(const TrafficConfig& cfg, std::size_t num_events,
                              std::mt19937& rng) {
  SLAT_ASSERT(cfg.num_sessions >= 1);
  SLAT_ASSERT(cfg.alphabet_size >= 1);
  std::uniform_int_distribution<std::uint32_t> pick_session(0, cfg.num_sessions - 1);
  // geometric(p) has mean (1-p)/p; +1 below makes bursts start at length 1
  // with mean cfg.mean_burst.
  const double p = 1.0 / std::max(1.0, cfg.mean_burst);
  std::geometric_distribution<int> burst_tail(p);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<words::Sym> rare_sym(
      1, std::max(1, cfg.alphabet_size - 1));

  std::vector<Event> batch;
  batch.reserve(num_events);
  while (batch.size() < num_events) {
    const SessionId session = pick_session(rng);
    int burst = 1 + burst_tail(rng);
    for (; burst > 0 && batch.size() < num_events; --burst) {
      words::Sym sym;
      if (cfg.garbage_rate > 0.0 && unit(rng) < cfg.garbage_rate) {
        sym = cfg.alphabet_size;  // out of alphabet, deliberately
      } else if (cfg.alphabet_size == 1 || unit(rng) < cfg.common_sym_bias) {
        sym = 0;
      } else {
        sym = rare_sym(rng);
      }
      batch.push_back(Event{session, sym});
    }
  }
  return batch;
}

}  // namespace slat::monitor
