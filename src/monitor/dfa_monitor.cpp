#include "monitor/dfa_monitor.hpp"

#include "buchi/safety.hpp"
#include "ltl/translate.hpp"

namespace slat::monitor {

DfaMonitor::DfaMonitor(finite::Dfa dfa) : dfa_(std::move(dfa)), state_(dfa_.initial()) {
  violated_ = !dfa_.is_accepting(state_);
}

DfaMonitor DfaMonitor::from_nba(const buchi::Nba& specification) {
  return DfaMonitor(
      finite::good_prefix_dfa(buchi::DetSafety::from_nba(specification)));
}

DfaMonitor DfaMonitor::from_ltl(ltl::LtlArena& arena, ltl::FormulaId formula) {
  return from_nba(ltl::to_nba(arena, formula));
}

bool DfaMonitor::step(words::Sym event) {
  if (violated_) return false;
  // Same contract as SafetyMonitor::step: an out-of-alphabet event is a
  // deterministic, latching rejection, never a Dfa::step precondition
  // failure (which would abort the process).
  if (event < 0 || event >= dfa_.alphabet().size()) {
    violated_ = true;
    return false;
  }
  state_ = dfa_.step(state_, event);
  if (!dfa_.is_accepting(state_)) {
    violated_ = true;
    return false;
  }
  return true;
}

void DfaMonitor::reset() {
  state_ = dfa_.initial();
  violated_ = !dfa_.is_accepting(state_);
}

std::optional<std::size_t> DfaMonitor::run(const words::Word& trace) {
  reset();
  // Empty-prefix verdict, identical to SafetyMonitor::run: a closure that
  // rejects ε reports 0 accepted events even on the empty trace.
  if (violated_) return 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!step(trace[i])) return i;
  }
  return std::nullopt;
}

bool DfaMonitor::is_vacuous() const {
  // Vacuous iff every state accepts (after minimization, the universal
  // good-prefix language has a single accepting state).
  for (finite::State q = 0; q < dfa_.num_states(); ++q) {
    if (!dfa_.is_accepting(q)) return false;
  }
  return true;
}

}  // namespace slat::monitor
