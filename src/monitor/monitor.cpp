#include "monitor/monitor.hpp"

#include "ltl/translate.hpp"

namespace slat::monitor {

SafetyMonitor::SafetyMonitor(DetSafety automaton)
    : automaton_(std::move(automaton)), state_(automaton_.initial()) {
  violated_ = state_ == automaton_.sink();
}

SafetyMonitor SafetyMonitor::from_nba(const Nba& specification) {
  return SafetyMonitor(DetSafety::from_nba(specification));
}

SafetyMonitor SafetyMonitor::from_ltl(ltl::LtlArena& arena, ltl::FormulaId formula) {
  return from_nba(ltl::to_nba(arena, formula));
}

bool SafetyMonitor::step(Sym event) {
  if (violated_) return false;
  // An out-of-alphabet event is not a symbol of the specification's Σ, so
  // no extension of the trace is a word of the (closure) language: the
  // verdict is a deterministic, latching rejection. Checking here keeps the
  // monitor total over untrusted event streams — DetSafety::step treats an
  // out-of-range symbol as a caller bug and aborts.
  if (event < 0 || event >= automaton_.alphabet().size()) {
    violated_ = true;
    return false;
  }
  state_ = automaton_.step(state_, event);
  if (state_ == automaton_.sink()) {
    violated_ = true;
    return false;
  }
  // Recording is bounded: a monitor fed millions of events must not grow
  // with the trace (it previously pushed every event unconditionally).
  if (accepted_.size() < max_recorded_) accepted_.push_back(event);
  ++accepted_count_;
  return true;
}

void SafetyMonitor::record_trace(std::size_t max_events) {
  max_recorded_ = max_events;
  accepted_.clear();
  accepted_.shrink_to_fit();
  accepted_.reserve(max_events);
}

void SafetyMonitor::stop_recording() {
  max_recorded_ = 0;
  accepted_.clear();
  accepted_.shrink_to_fit();
}

void SafetyMonitor::reset() {
  state_ = automaton_.initial();
  violated_ = state_ == automaton_.sink();
  accepted_.clear();
  accepted_count_ = 0;
}

std::optional<std::size_t> SafetyMonitor::run(const Word& trace) {
  reset();
  // An unsatisfiable closure rejects the EMPTY prefix: the constructor
  // latches violated_ before any event, so the verdict is "0 events
  // accepted" — including on the empty trace, which previously slipped
  // through the loop and came back nullopt ("safe throughout").
  if (violated_) return 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!step(trace[i])) return i;
  }
  return std::nullopt;
}

}  // namespace slat::monitor
