#include "monitor/monitor.hpp"

#include "ltl/translate.hpp"

namespace slat::monitor {

SafetyMonitor::SafetyMonitor(DetSafety automaton)
    : automaton_(std::move(automaton)), state_(automaton_.initial()) {
  violated_ = state_ == automaton_.sink();
}

SafetyMonitor SafetyMonitor::from_nba(const Nba& specification) {
  return SafetyMonitor(DetSafety::from_nba(specification));
}

SafetyMonitor SafetyMonitor::from_ltl(ltl::LtlArena& arena, ltl::FormulaId formula) {
  return from_nba(ltl::to_nba(arena, formula));
}

bool SafetyMonitor::step(Sym event) {
  if (violated_) return false;
  state_ = automaton_.step(state_, event);
  if (state_ == automaton_.sink()) {
    violated_ = true;
    return false;
  }
  accepted_.push_back(event);
  return true;
}

void SafetyMonitor::reset() {
  state_ = automaton_.initial();
  violated_ = state_ == automaton_.sink();
  accepted_.clear();
}

std::optional<std::size_t> SafetyMonitor::run(const Word& trace) {
  reset();
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!step(trace[i])) return i;
  }
  return std::nullopt;
}

}  // namespace slat::monitor
