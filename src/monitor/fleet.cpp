#include "monitor/fleet.hpp"

#include <utility>

#include "common/assert.hpp"
#include "core/parallel.hpp"
#include "ltl/translate.hpp"

namespace slat::monitor {

namespace {

std::uint32_t round_up_pow2(int n) {
  std::uint32_t v = n < 1 ? 1u : static_cast<std::uint32_t>(n);
  v -= 1;
  v |= v >> 1;
  v |= v >> 2;
  v |= v >> 4;
  v |= v >> 8;
  v |= v >> 16;
  return v + 1;
}

}  // namespace

MonitorFleet::MonitorFleet(int num_shards) {
  const std::uint32_t shards = round_up_pow2(num_shards);
  shard_mask_ = shards - 1;
  shard_bits_ = 0;
  while ((1u << shard_bits_) < shards) ++shard_bits_;
  shards_.reserve(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MonitorId MonitorFleet::add_program(int alphabet_size, std::uint32_t num_states,
                                    std::uint32_t initial, std::uint32_t sink,
                                    std::vector<std::uint32_t> table) {
  SLAT_ASSERT(alphabet_size >= 1);
  SLAT_ASSERT(num_states >= 1);
  SLAT_ASSERT(initial < num_states);
  SLAT_ASSERT(sink < num_states);
  SLAT_ASSERT_MSG(table.size() == static_cast<std::size_t>(num_states) *
                                      static_cast<std::size_t>(alphabet_size),
                  "program table must be num_states x alphabet_size");
  for (const std::uint32_t to : table) {
    SLAT_ASSERT_MSG(to < num_states, "program transition targets a missing state");
  }
  for (int s = 0; s < alphabet_size; ++s) {
    SLAT_ASSERT_MSG(table[static_cast<std::size_t>(sink) * alphabet_size + s] == sink,
                    "sink row must self-loop (latching violations)");
  }
  Program p;
  p.num_states = num_states;
  p.initial = initial;
  p.sink = sink;
  p.alphabet_size = alphabet_size;
  p.table = std::move(table);
  if (static_cast<std::uint32_t>(alphabet_size) > row_stride_) {
    // First program, or a wider alphabet than anything compiled so far:
    // re-lay the fleet-wide table at the new row width (and remap any live
    // sessions). The common lifecycle compiles every program up front, so
    // this almost always runs on an empty fleet.
    programs_.push_back(std::move(p));
    rebuild_rows(static_cast<std::uint32_t>(alphabet_size));
  } else {
    append_rows(p);
    programs_.push_back(std::move(p));
  }
  return static_cast<MonitorId>(programs_.size() - 1);
}

void MonitorFleet::append_rows(Program& p) {
  p.base_row = static_cast<std::uint32_t>(row_table_.size());
  const auto sigma = static_cast<std::uint32_t>(p.alphabet_size);
  for (std::uint32_t q = 0; q < p.num_states; ++q) {
    for (std::uint32_t a = 0; a < row_stride_; ++a) {
      // The sink state's own row is never entered (transitions into the
      // sink are redirected to the shared row 0) but is emitted anyway so
      // the base_row + q × stride arithmetic stays uniform. Symbols beyond
      // this program's alphabet pad to the sink: out-of-alphabet rejection
      // by table entry.
      std::uint32_t entry = 0;
      if (q != p.sink && a < sigma) {
        const std::uint32_t to = p.table[q * sigma + a];
        entry = to == p.sink ? 0 : p.base_row + to * row_stride_;
      }
      row_table_.push_back(entry);
    }
  }
}

void MonitorFleet::rebuild_rows(std::uint32_t stride) {
  std::vector<std::uint32_t> old_base(programs_.size());
  for (std::size_t m = 0; m < programs_.size(); ++m) {
    old_base[m] = programs_[m].base_row;
  }
  const std::uint32_t old_stride = row_stride_;
  row_stride_ = stride;
  row_table_.assign(stride, 0);  // the shared latching sink, row 0
  for (Program& p : programs_) append_rows(p);
  if (num_sessions_ == 0) return;
  SLAT_ASSERT(old_stride > 0);  // sessions imply at least one prior program
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::uint32_t idx = 0; idx < shard->count; ++idx) {
      Session& s = shard->slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
      if (s.state_row == 0) continue;  // sink maps to sink
      const std::uint32_t state = (s.state_row - old_base[s.monitor]) / old_stride;
      s.state_row = programs_[s.monitor].base_row + state * row_stride_;
    }
  }
}

MonitorId MonitorFleet::compile(const buchi::DetSafety& automaton) {
  const int sigma = automaton.alphabet().size();
  const std::uint32_t n = static_cast<std::uint32_t>(automaton.num_states());
  std::vector<std::uint32_t> table(static_cast<std::size_t>(n) * sigma);
  for (std::uint32_t q = 0; q < n; ++q) {
    for (words::Sym s = 0; s < sigma; ++s) {
      table[static_cast<std::size_t>(q) * sigma + s] = static_cast<std::uint32_t>(
          automaton.step(static_cast<buchi::State>(q), s));
    }
  }
  return add_program(sigma, n, static_cast<std::uint32_t>(automaton.initial()),
                     static_cast<std::uint32_t>(automaton.sink()), std::move(table));
}

MonitorId MonitorFleet::compile(const finite::Dfa& good_prefix) {
  SLAT_ASSERT_MSG(good_prefix.is_total(), "monitor programs need a complete DFA");
  const int sigma = good_prefix.alphabet().size();
  const std::uint32_t n = static_cast<std::uint32_t>(good_prefix.num_states());
  // All rejecting states collapse into one latching sink row. That is
  // language-preserving exactly when rejection is extension-closed — the
  // defining shape of a good-prefix DFA (bad prefixes have only bad
  // extensions), asserted here rather than assumed.
  SLAT_ASSERT_MSG(good_prefix.complemented().is_extension_closed(),
                  "good-prefix DFA: rejecting region must be extension-closed");
  std::int32_t sink = -1;
  for (std::uint32_t q = 0; q < n; ++q) {
    if (!good_prefix.is_accepting(static_cast<finite::State>(q))) {
      sink = static_cast<std::int32_t>(q);
      break;
    }
  }
  // A vacuous monitor (every prefix good) gets an unreachable sink row so
  // the program invariant "exactly one latching sink" still holds.
  const std::uint32_t num_states = sink < 0 ? n + 1 : n;
  if (sink < 0) sink = static_cast<std::int32_t>(n);
  const auto fold = [&](finite::State q) {
    return good_prefix.is_accepting(q) ? static_cast<std::uint32_t>(q)
                                       : static_cast<std::uint32_t>(sink);
  };
  std::vector<std::uint32_t> table(static_cast<std::size_t>(num_states) * sigma);
  for (std::uint32_t q = 0; q < num_states; ++q) {
    for (words::Sym s = 0; s < sigma; ++s) {
      const bool sink_row = q == static_cast<std::uint32_t>(sink) ||
                            !good_prefix.is_accepting(static_cast<finite::State>(q));
      table[static_cast<std::size_t>(q) * sigma + s] =
          sink_row ? static_cast<std::uint32_t>(sink)
                   : fold(good_prefix.step(static_cast<finite::State>(q), s));
    }
  }
  return add_program(sigma, num_states, fold(good_prefix.initial()),
                     static_cast<std::uint32_t>(sink), std::move(table));
}

MonitorId MonitorFleet::compile_nba(const buchi::Nba& specification) {
  return compile(finite::good_prefix_dfa(buchi::DetSafety::from_nba(specification)));
}

MonitorId MonitorFleet::compile_ltl(ltl::LtlArena& arena, ltl::FormulaId formula) {
  return compile_nba(ltl::to_nba(arena, formula));
}

SessionId MonitorFleet::open_session(MonitorId monitor) {
  SLAT_ASSERT(monitor < programs_.size());
  SLAT_ASSERT_MSG(num_sessions_ < (std::size_t{1} << 32),
                  "SessionId space exhausted");
  const SessionId id = static_cast<SessionId>(num_sessions_);
  Shard& shard = *shards_[id & shard_mask_];
  const std::uint32_t idx = id >> shard_bits_;
  // Round-robin opening keeps per-shard indices dense: the j-th session of
  // a shard has idx == j, so the slab directory needs no holes.
  SLAT_ASSERT(idx == shard.count);
  if ((idx & (kSlabSize - 1)) == 0) {
    Session* const slab = shard.arena.alloc_array<Session>(kSlabSize);
    shard.slabs.push_back(slab);
    const std::uint32_t num_shards = shard_mask_ + 1;
    const std::uint32_t global_slab = idx >> kSlabBits;
    if (slab_dir_.size() < static_cast<std::size_t>(global_slab + 1) * num_shards) {
      slab_dir_.resize(static_cast<std::size_t>(global_slab + 1) * num_shards,
                       nullptr);
    }
    slab_dir_[static_cast<std::size_t>(global_slab) * num_shards +
              (id & shard_mask_)] = slab;
  }
  Session& s = shard.slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
  s.monitor = monitor;
  s.state_row = initial_row(programs_[monitor]);
  ++shard.count;
  ++num_sessions_;
  return id;
}

MonitorFleet::Session& MonitorFleet::session_ref(SessionId id) {
  SLAT_ASSERT_MSG(id < num_sessions_, "unknown session");
  return *session_ptr(id);
}

const MonitorFleet::Session& MonitorFleet::session_ref(SessionId id) const {
  return const_cast<MonitorFleet*>(this)->session_ref(id);
}

bool MonitorFleet::session_violated(SessionId id) const {
  return session_ref(id).state_row == 0;
}

std::uint32_t MonitorFleet::session_state(SessionId id) const {
  const Session& s = session_ref(id);
  const Program& p = programs_[s.monitor];
  return s.state_row == 0 ? p.sink : (s.state_row - p.base_row) / row_stride_;
}

MonitorId MonitorFleet::session_monitor(SessionId id) const {
  return session_ref(id).monitor;
}

std::size_t MonitorFleet::count_violated() const {
  std::size_t violated = 0;
  for (std::size_t id = 0; id < num_sessions_; ++id) {
    if (session_violated(static_cast<SessionId>(id))) ++violated;
  }
  return violated;
}

void MonitorFleet::reset_sessions() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::uint32_t idx = 0; idx < shard->count; ++idx) {
      Session& s = shard->slabs[idx >> kSlabBits][idx & (kSlabSize - 1)];
      s.state_row = initial_row(programs_[s.monitor]);
    }
  }
}

bool MonitorFleet::step(SessionId id, words::Sym sym) {
  return step_session(session_ref(id), row_table_.data(), row_stride_, sym);
}

void MonitorFleet::ingest(std::span<const Event> batch, core::ThreadPool& pool) {
  ingest_impl(batch, {}, pool);
}

void MonitorFleet::ingest(std::span<const Event> batch,
                          std::span<std::uint8_t> verdicts, core::ThreadPool& pool) {
  SLAT_ASSERT_MSG(verdicts.size() == batch.size(),
                  "one verdict slot per batch event");
  ingest_impl(batch, verdicts, pool);
}

void MonitorFleet::ingest_impl(std::span<const Event> batch,
                               std::span<std::uint8_t> verdicts,
                               core::ThreadPool& pool) {
  if (batch.empty()) return;

  // Serial fast path: on a 1-thread pool the shard bucketing buys nothing
  // and costs two extra passes over the batch, so apply the events in batch
  // order directly. The output is the same by construction — both paths
  // preserve batch order per session and write caller-indexed verdict
  // slots — and the fleet tests pin pool(1) == pool(4) == scalar.
  if (pool.num_threads() <= 1) {
    // Validate the whole batch up front (the sharded path does the same in
    // its counting pass, so both paths abort before stepping anything); the
    // hot loop below then runs assert-free.
    SessionId max_session = 0;
    for (const Event& e : batch) {
      max_session = e.session > max_session ? e.session : max_session;
    }
    SLAT_ASSERT_MSG(max_session < num_sessions_, "event for unknown session");
    const std::uint32_t* const table = row_table_.data();
    const std::uint32_t stride = row_stride_;
    constexpr std::size_t kPrefetchAhead = 8;
    const auto run_events = [&](auto&& emit_verdict) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
#if defined(__GNUC__) || defined(__clang__)
        if (i + kPrefetchAhead < batch.size()) {
          __builtin_prefetch(session_ptr(batch[i + kPrefetchAhead].session), 1);
        }
#endif
        Session& session = *session_ptr(batch[i].session);
        emit_verdict(i, step_session(session, table, stride, batch[i].sym));
      }
    };
    if (verdicts.empty()) {
      run_events([](std::size_t, bool) {});
    } else {
      run_events([&](std::size_t i, bool accepted) {
        verdicts[i] = accepted ? 1 : 0;
      });
    }
    return;
  }

  const std::uint32_t num_shards = shard_mask_ + 1;

  // Stable counting sort of batch indices by session shard. The scratch
  // vectors are members, so steady-state ingest performs no allocations.
  // Counts land at [shard + 1], the in-place prefix sum turns slot [shard]
  // into that shard's scatter cursor, and after the scatter pass slot
  // [shard] has advanced to the shard's END — so range s is
  // [s == 0 ? 0 : offset[s-1], offset[s]), no cursor copy needed.
  bucket_offset_.assign(num_shards + 1, 0);
  for (const Event& e : batch) {
    SLAT_ASSERT_MSG(e.session < num_sessions_, "event for unknown session");
    ++bucket_offset_[(e.session & shard_mask_) + 1];
  }
  for (std::uint32_t s = 1; s <= num_shards; ++s) {
    bucket_offset_[s] += bucket_offset_[s - 1];
  }
  bucket_order_.resize(batch.size());
  for (std::uint32_t i = 0; i < batch.size(); ++i) {
    bucket_order_[bucket_offset_[batch[i].session & shard_mask_]++] = i;
  }

  // Each shard's events, in batch order, on one task: a session is stepped
  // by exactly one thread and writes only its own slab slot and its events'
  // verdict slots — bit-identical output at every thread count, and
  // data-race-free by ownership (the fleet-smoke tier runs this under
  // TSan).
  core::parallel_for(
      static_cast<int>(num_shards),
      [&](int s) {
        const std::uint32_t begin = s == 0 ? 0 : bucket_offset_[s - 1];
        const std::uint32_t end = bucket_offset_[s];
        Shard& shard = *shards_[s];
        const std::uint32_t* const table = row_table_.data();
        const std::uint32_t stride = row_stride_;
        Session* const* const slabs = shard.slabs.data();
        // The per-event work is a chain of dependent loads (session slot →
        // transition row) over randomly-ordered sessions, so the loop is
        // latency-bound, not throughput-bound. The batch fixes the access
        // sequence in advance — prefetch the session slot a few events
        // ahead to overlap those misses.
        constexpr std::uint32_t kPrefetchAhead = 8;
        const auto session_slot = [&](std::uint32_t k) -> Session* {
          const std::uint32_t idx = batch[bucket_order_[k]].session >> shard_bits_;
          return slabs[idx >> kSlabBits] + (idx & (kSlabSize - 1));
        };
        for (std::uint32_t k = begin; k < end; ++k) {
#if defined(__GNUC__) || defined(__clang__)
          if (k + kPrefetchAhead < end) {
            __builtin_prefetch(session_slot(k + kPrefetchAhead), 1);
          }
#endif
          const std::uint32_t i = bucket_order_[k];
          Session& session = *session_slot(k);
          const bool accepted = step_session(session, table, stride, batch[i].sym);
          if (!verdicts.empty()) verdicts[i] = accepted ? 1 : 0;
        }
      },
      /*grain=*/1, pool);
}

}  // namespace slat::monitor
