// Synthetic fleet traffic: the workload generator behind bench_fleet and
// the fleet tests.
//
// The shape follows the pip-style trace serving scenario the ROADMAP
// targets (many concurrent causal-path sessions, a small population of hot
// path-expectation monitors): session → monitor assignment is
// zipf-distributed — a few monitors watch most sessions, a long tail
// watches a handful each — and events arrive in BURSTS, a session emitting
// a geometric run of consecutive events once it wakes up, the way an
// instrumented request emits its whole causal path at once.
//
// Every function is a pure function of the std::mt19937 it is handed
// (callers seed via qc::make_rng for SLAT_SEED-reproducible workloads), in
// the same style as qc/gen.hpp.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "monitor/fleet.hpp"

namespace slat::monitor {

struct TrafficConfig {
  std::uint32_t num_sessions = 10'000;
  /// Monitors in the fleet; sessions are assigned zipf(exponent) over them,
  /// so monitor 0 is the hottest.
  std::uint32_t num_monitors = 8;
  double zipf_exponent = 1.1;
  int alphabet_size = 2;
  /// Mean length of one burst (geometric run of events for one session).
  double mean_burst = 8.0;
  /// Probability an event carries symbol 0 (the common "everything is
  /// fine" event); the remainder is uniform over the other symbols, so
  /// violations are rare-but-present rather than instant.
  double common_sym_bias = 0.9;
  /// Probability an event carries an OUT-OF-ALPHABET symbol (== Σ), to
  /// exercise the hardened event path. Off by default.
  double garbage_rate = 0.0;
};

/// Session → monitor assignment: entry i is the monitor of session i,
/// drawn zipf(cfg.zipf_exponent) over cfg.num_monitors monitors.
std::vector<MonitorId> zipf_monitor_assignment(const TrafficConfig& cfg,
                                               std::mt19937& rng);

/// One batch of exactly `num_events` events: bursty arrivals over uniform
/// sessions, symbols biased per the config. Batch order is arrival order.
std::vector<Event> make_batch(const TrafficConfig& cfg, std::size_t num_events,
                              std::mt19937& rng);

}  // namespace slat::monitor
