// Runtime safety monitors — the applied payoff of the decomposition
// (paper §1, citing Schneider's "Enforceable security policies"):
// execution-monitoring mechanisms can enforce exactly the safety
// properties, and a security automaton is precisely a Büchi automaton
// accepting a safe language.
//
// Given any specification (LTL formula or Büchi automaton), the monitor is
// built from the deterministic form of the specification's safety closure
// lcl(L): it flags a trace prefix as a violation at the earliest event that
// makes EVERY extension violate the specification. By Theorem 6 the safety
// closure is the strongest safety property implied by the specification, so
// this monitor catches everything a runtime monitor can possibly catch; the
// residual liveness part (spec ∪ ¬closure) is not finitely refutable and is
// reported alongside for documentation.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "buchi/safety.hpp"
#include "ltl/formula.hpp"

namespace slat::monitor {

using buchi::DetSafety;
using buchi::Nba;
using words::Sym;
using words::Word;

/// Online monitor for the safety closure of a specification.
class SafetyMonitor {
 public:
  /// From any Büchi specification.
  static SafetyMonitor from_nba(const Nba& specification);
  /// From an LTL specification (translated via the GPVW tableau).
  static SafetyMonitor from_ltl(ltl::LtlArena& arena, ltl::FormulaId formula);

  /// Feeds one event. Returns true while the trace is still safe; returns
  /// false from the first violating event on (the monitor latches). An
  /// out-of-alphabet event (negative or ≥ |Σ|) is itself a violation: it
  /// is rejected deterministically, never fed to the transition table.
  bool step(Sym event);

  /// Has a violation occurred?
  bool violated() const { return violated_; }

  /// Opt-in trace recording. A long-running monitor must stay O(1) in
  /// memory — its job is a DFA walk — so recording is OFF by default and
  /// BOUNDED when on: the first `max_events` accepted events are kept and
  /// later ones only counted. Calling this resets the recorded buffer.
  void record_trace(std::size_t max_events);
  /// Turns recording off and releases the buffer.
  void stop_recording();
  bool recording() const { return max_recorded_ > 0; }

  /// The recorded prefix of the accepted (enforced, possibly truncated)
  /// trace: up to `max_events` events since recording was enabled. Empty
  /// when recording is off.
  const Word& accepted_trace() const { return accepted_; }
  /// Total events accepted since construction/reset — exact even when the
  /// recorded buffer is capped or recording is off.
  std::size_t accepted_count() const { return accepted_count_; }

  void reset();

  /// Runs a whole trace; returns the number of events accepted before the
  /// violation (the index of the first rejected event — 0 when the closure
  /// already rejects the EMPTY prefix, even on the empty trace), or
  /// std::nullopt if the trace is safe throughout. The monitor is reset
  /// first and left in the end state of the run.
  std::optional<std::size_t> run(const Word& trace);

  /// The underlying deterministic safety automaton.
  const DetSafety& automaton() const { return automaton_; }

  /// True iff the monitor can never be violated (the closure is universal —
  /// i.e. the specification was a pure liveness property and runtime
  /// monitoring cannot refute it at all).
  bool is_vacuous() const { return automaton_.is_universal(); }

 private:
  explicit SafetyMonitor(DetSafety automaton);

  DetSafety automaton_;
  buchi::State state_;
  bool violated_ = false;
  Word accepted_;                    // recorded prefix, ≤ max_recorded_ events
  std::size_t max_recorded_ = 0;     // 0 = recording off
  std::size_t accepted_count_ = 0;
};

}  // namespace slat::monitor
