// The streaming monitor fleet: monitoring-as-a-service over compiled
// good-prefix DFAs.
//
// SafetyMonitor/DfaMonitor are one-object-per-trace libraries; a serving
// layer that watches millions of concurrent sessions needs the opposite
// shape. The fleet separates the two halves of a monitor:
//
//   * A PROGRAM is the compiled form of one specification's safety
//     closure: a dense num_states × |Σ| transition table of uint32 state
//     ids, with the rejecting sink folded in as a latching self-loop row.
//     All programs are linked into ONE fleet-wide row table whose row 0 is
//     the shared latching sink; entries are global row offsets and every
//     row is padded to the fleet-wide maximum alphabet width. Stepping is
//     therefore a single indexed load with no pointers, no per-program
//     metadata, and no branches on acceptance bits — the violation check
//     is `row == 0`.
//
//   * A SESSION is one live trace: just {monitor_id, current_state}, eight
//     bytes, packed into slabs that are bump-allocated from per-shard
//     core::Arena instances. Opening a session is O(1) and allocation-free
//     outside slab boundaries; 10^6 sessions are ~8 MB of state plus the
//     (shared) program tables, so resident memory is O(sessions), not
//     O(sessions × monitor size).
//
// Events arrive in batches (`span<const Event>`), are bucketed by session
// shard in a stable counting sort, and the shards are processed across the
// PR 2 ThreadPool. The contract is the repo-wide one: BATCHED INGESTION IS
// BIT-IDENTICAL TO PER-EVENT SCALAR STEPPING AT EVERY THREAD COUNT — a
// session's events are applied in batch order by exactly one task, every
// session is owned by exactly one shard, and per-event verdicts land in
// caller-indexed slots. (tests/monitor/fleet_test.cpp and the qc property
// `monitor.fleet_batch_scalar` pin this.)
//
// Verdict semantics are exactly SafetyMonitor's, including the PR 8 event
// hardening: out-of-alphabet events are deterministic latching violations
// (never an out-of-bounds table read), and a specification whose closure
// rejects the empty prefix yields sessions that are born violated.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "buchi/safety.hpp"
#include "core/arena.hpp"
#include "core/thread_pool.hpp"
#include "finite/dfa.hpp"
#include "ltl/formula.hpp"

namespace slat::monitor {

/// Index of a compiled program within a fleet.
using MonitorId = std::uint32_t;
/// Dense session handle (assigned by open_session, starting at 0).
using SessionId = std::uint32_t;

/// One event of a batch: "session `session` observed symbol `sym`".
struct Event {
  SessionId session;
  words::Sym sym;
};

class MonitorFleet {
 public:
  /// `num_shards` is rounded up to a power of two; it fixes the session →
  /// shard mapping for the fleet's lifetime (so it must not depend on the
  /// thread count — determinism — and defaults to a constant).
  explicit MonitorFleet(int num_shards = kDefaultShards);

  // --- Programs -----------------------------------------------------------

  /// Compiles the subset-construction safety automaton as-is (states map
  /// 1:1; the DetSafety sink becomes the latching sink row).
  MonitorId compile(const buchi::DetSafety& automaton);

  /// Compiles a good-prefix DFA (accepting = still safe). The rejecting
  /// region must be extension-closed — true of every good-prefix DFA —
  /// because all rejecting states are folded into the single sink row.
  MonitorId compile(const finite::Dfa& good_prefix);

  /// Specification → minimal monitor program: the Moore-minimized
  /// good-prefix DFA of the specification's safety closure.
  MonitorId compile_nba(const buchi::Nba& specification);
  MonitorId compile_ltl(ltl::LtlArena& arena, ltl::FormulaId formula);

  /// Raw program, for tests and front-ends that already produce tables.
  /// `table` is row-major [state × symbol] with `num_states × alphabet_size`
  /// entries; row `sink` must self-loop on every symbol (checked), so a
  /// violated session can never un-latch.
  MonitorId add_program(int alphabet_size, std::uint32_t num_states,
                        std::uint32_t initial, std::uint32_t sink,
                        std::vector<std::uint32_t> table);

  std::size_t num_monitors() const { return programs_.size(); }
  /// Is the program's closure unsatisfiable (sessions born violated)?
  bool rejects_empty_prefix(MonitorId m) const {
    return programs_[m].initial == programs_[m].sink;
  }

  // --- Sessions -----------------------------------------------------------

  /// Opens a session of `monitor` in its initial state. Ids are dense:
  /// the k-th call returns k. If the closure rejects the empty prefix the
  /// session starts violated.
  SessionId open_session(MonitorId monitor);

  std::size_t num_sessions() const { return num_sessions_; }
  bool session_violated(SessionId id) const;
  std::uint32_t session_state(SessionId id) const;
  MonitorId session_monitor(SessionId id) const;
  /// Violated sessions, counted in id order (an O(sessions) sweep for
  /// artifact checks and tests, not a hot-path counter).
  std::size_t count_violated() const;

  /// Rewinds every session to its program's initial state (sessions of an
  /// empty-prefix-rejecting program are born violated again). O(sessions);
  /// for benchmark passes and tests that replay traffic against one build.
  void reset_sessions();

  // --- Event path ---------------------------------------------------------

  /// Scalar path: feeds one event, SafetyMonitor::step semantics (false
  /// from the first violating event on; out-of-alphabet latches).
  bool step(SessionId id, words::Sym sym);

  /// Batched path: applies `batch` in order, sharded across `pool`.
  /// Bit-identical to calling step(e.session, e.sym) for each event in
  /// batch order, at every thread count.
  void ingest(std::span<const Event> batch,
              core::ThreadPool& pool = core::ThreadPool::global());

  /// As above, and writes the per-event verdict (1 = accepted, 0 =
  /// rejected/latched — exactly what the scalar step returns) into
  /// `verdicts[i]` for batch[i]. verdicts.size() must equal batch.size().
  void ingest(std::span<const Event> batch, std::span<std::uint8_t> verdicts,
              core::ThreadPool& pool = core::ThreadPool::global());

 private:
  static constexpr int kDefaultShards = 64;
  /// Sessions per slab (8 KB slabs: big enough to amortize the arena bump,
  /// small enough that a 10^4-session shard does not overshoot its RSS).
  static constexpr std::uint32_t kSlabBits = 10;
  static constexpr std::uint32_t kSlabSize = 1u << kSlabBits;

  struct Program {
    std::uint32_t num_states = 0;
    std::uint32_t initial = 0;
    std::uint32_t sink = 0;
    std::int32_t alphabet_size = 0;
    /// Offset of this program's state-0 row inside the fleet-wide
    /// row_table_; state q's row is base_row + q × row_stride_ (the sink
    /// state instead maps to the shared row 0).
    std::uint32_t base_row = 0;
    /// Row-major [state × symbol] with plain LOCAL state ids — exactly what
    /// add_program validated. Kept as the program's source of truth: the
    /// global rows are re-derived from it whenever a wider alphabet forces
    /// a row_table_ rebuild.
    std::vector<std::uint32_t> table;
  };

  /// {owning program, current state as a row offset into the fleet-wide
  /// row_table_ (0 = the shared latching sink)}. Eight bytes; the event
  /// path touches only state_row — the monitor id is for the accessors and
  /// the reset/remap sweeps.
  struct Session {
    std::uint32_t monitor;
    std::uint32_t state_row;
  };

  struct Shard {
    /// Slab backing store; slabs are never individually freed (monotone
    /// arena rule), matching the fleet's session lifetime.
    core::Arena arena{std::size_t{1} << 15};
    /// Slab directory: sessions [i * kSlabSize, (i+1) * kSlabSize).
    std::vector<Session*> slabs;
    std::uint32_t count = 0;
  };

  Session& session_ref(SessionId id);
  const Session& session_ref(SessionId id) const;

  /// Bounds-unchecked slab-directory lookup (callers assert id validity).
  /// Two dependent loads (directory entry, then the slot) instead of the
  /// four a walk through shards_[s]->slabs would cost — this is the event
  /// path's address computation.
  Session* session_ptr(SessionId id) {
    const std::uint32_t idx = id >> shard_bits_;
    return slab_dir_[(idx >> kSlabBits) * (shard_mask_ + 1) + (id & shard_mask_)] +
           (idx & (kSlabSize - 1));
  }

  /// The one transition everybody shares (scalar step, batched ingest):
  /// route out-of-alphabet events to the shared sink row 0, otherwise one
  /// table load. `table`/`stride` are the fleet-wide row table and row
  /// width, hoisted into registers by every caller — the step reads NO
  /// per-program metadata, not even the session's monitor id. There is
  /// deliberately no at-sink early-out (row 0's entries are all 0, so a
  /// violated session latches through the same unconditional walk), and
  /// symbols in [|Σ_p|, stride) hit padding entries that also point at row
  /// 0 — per-program out-of-alphabet rejection is a table entry, not a
  /// compare. The one branch left is the fleet-wide width check, a single
  /// unsigned compare (negative syms wrap above any real alphabet size).
  /// Returns the scalar-step verdict.
  static bool step_session(Session& s, const std::uint32_t* table,
                           std::uint32_t stride, words::Sym sym) {
    if (static_cast<std::uint32_t>(sym) >= stride) {
      s.state_row = 0;
      return false;
    }
    s.state_row = table[s.state_row + static_cast<std::uint32_t>(sym)];
    return s.state_row != 0;
  }

  void ingest_impl(std::span<const Event> batch, std::span<std::uint8_t> verdicts,
                   core::ThreadPool& pool);

  /// (Re)emits program p's rows at the end of row_table_ (sets p.base_row).
  void append_rows(Program& p);
  /// Grows the fleet-wide row width to `stride`, re-laying every program's
  /// rows and remapping live sessions' row offsets. Only runs when a new
  /// program's alphabet exceeds the current width — O(table + sessions),
  /// amortized away by the usual compile-then-serve lifecycle.
  void rebuild_rows(std::uint32_t stride);
  std::uint32_t initial_row(const Program& p) const {
    return p.initial == p.sink ? 0 : p.base_row + p.initial * row_stride_;
  }

  std::vector<Program> programs_;
  /// The fleet-wide transition table: row 0 is the shared latching sink
  /// (all entries 0), then each program's rows. Every row is row_stride_
  /// entries wide (the max alphabet size across programs; narrower
  /// programs' tail entries are sink-padding), and entries are global ROW
  /// OFFSETS, not state ids — sessions step with one load and no multiply.
  /// Sessions index it by offset, so append growth never invalidates them.
  std::vector<std::uint32_t> row_table_;
  std::uint32_t row_stride_ = 0;
  /// unique_ptr because core::Arena is pinned in place (non-movable); the
  /// indirection is per-shard, not per-session.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Flat view of every shard's slab list, indexed
  /// [global_slab × num_shards + shard] where global_slab = idx >> kSlabBits
  /// — the round-robin id assignment keeps shard slab counts within one of
  /// each other, so the directory is dense.
  std::vector<Session*> slab_dir_;
  std::uint32_t shard_mask_ = 0;   // num_shards - 1 (power of two)
  std::uint32_t shard_bits_ = 0;   // log2(num_shards)
  std::size_t num_sessions_ = 0;

  // Counting-sort scratch, reused across batches so steady-state ingest
  // does not allocate.
  std::vector<std::uint32_t> bucket_offset_;  // num_shards + 1 running cursors
  std::vector<std::uint32_t> bucket_order_;   // batch indices, shard-grouped
};

}  // namespace slat::monitor
