// The minimal-state runtime monitor: the same verdicts as SafetyMonitor,
// running on the Moore-minimized good-prefix DFA instead of the raw subset
// automaton. This is the canonical (smallest possible) deterministic
// monitor for the specification's safety closure.
#pragma once

#include <optional>

#include "buchi/nba.hpp"
#include "finite/dfa.hpp"
#include "ltl/formula.hpp"

namespace slat::monitor {

class DfaMonitor {
 public:
  static DfaMonitor from_nba(const buchi::Nba& specification);
  static DfaMonitor from_ltl(ltl::LtlArena& arena, ltl::FormulaId formula);

  /// Feeds one event; false from the first violation on (latching).
  /// Out-of-alphabet events are deterministic violations (no UB, no abort),
  /// matching SafetyMonitor::step.
  bool step(words::Sym event);
  bool violated() const { return violated_; }
  void reset();

  /// Number of events accepted before the violation (0 when the closure
  /// rejects the empty prefix, even on the empty trace), or nullopt when
  /// safe throughout. Resets first. Same verdict as SafetyMonitor::run.
  std::optional<std::size_t> run(const words::Word& trace);

  /// The minimized monitor automaton (good prefixes accept).
  const finite::Dfa& automaton() const { return dfa_; }

  bool is_vacuous() const;

 private:
  explicit DfaMonitor(finite::Dfa dfa);

  finite::Dfa dfa_;
  finite::State state_;
  bool violated_ = false;
};

}  // namespace slat::monitor
