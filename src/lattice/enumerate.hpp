// Exhaustive enumeration of small posets/lattices, used by the Figure 1 and
// Figure 2 sweeps: "over ALL lattices with at most N elements, modularity is
// exactly what separates always-decomposable from sometimes-not".
#pragma once

#include <functional>
#include <vector>

#include "lattice/closure.hpp"
#include "lattice/finite_lattice.hpp"

namespace slat::lattice {

/// Calls `fn` for every labeled poset on n elements whose linear order of
/// indices extends the partial order (i.e. a < b in the poset implies
/// a < b as integers — every poset on n elements appears this way at least
/// once, possibly more than once under relabeling). n ≤ 6.
void for_each_labeled_poset(int n, const std::function<void(const FinitePoset&)>& fn);

/// Calls `fn` for every labeled lattice on n elements (same labeling caveat
/// as for_each_labeled_poset). n ≤ 6.
void for_each_labeled_lattice(int n, const std::function<void(const FiniteLattice&)>& fn);

/// Calls `fn` for every lattice-closure operator on the given lattice.
/// There is one closure per meet-complete subset containing the top, so this
/// enumerates closed sets. Practical for lattices up to ~16 elements.
void for_each_closure(const FiniteLattice& lattice,
                      const std::function<void(const LatticeClosure&)>& fn);

}  // namespace slat::lattice
