// The paper's decomposition machinery on finite lattices: Theorem 3 (and its
// corollary Theorem 2), the extremal Theorems 6 and 7, the impossibility
// Theorem 5, and exhaustive verifiers for all of them.
//
// These are the *finite-lattice* instances; src/core hosts the generic
// template versions shared with the automata-based instances.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "lattice/closure.hpp"
#include "lattice/finite_lattice.hpp"

namespace slat::lattice {

/// Result of decomposing `a` as safety ∧ liveness.
struct Decomposition {
  Elem safety;      ///< cl1-safety element (cl1.safety = safety)
  Elem liveness;    ///< cl2-liveness element (cl2.liveness = 1)
  Elem complement;  ///< the b ∈ cmp(cl2.a) used to build liveness = a ∨ b
};

/// Theorem 3: given lattice closures cl1 ≤ cl2 on a modular complemented
/// lattice, decompose `a` as cl1.a ∧ (a ∨ b) with b ∈ cmp(cl2.a).
/// Preconditions checked: cl1 ≤ cl2 pointwise. Returns std::nullopt only if
/// cl2.a has no complement (impossible in a complemented lattice).
///
/// Note the theorem's *hypotheses* (modularity, complementedness) are not
/// re-checked here; `verify_theorem3` exercises them, and the Figure 1 tests
/// show the construction genuinely failing without modularity.
std::optional<Decomposition> decompose(const FiniteLattice& lattice,
                                       const LatticeClosure& cl1,
                                       const LatticeClosure& cl2, Elem a);

/// Single-closure version (Theorem 2): cl1 = cl2 = cl.
std::optional<Decomposition> decompose(const FiniteLattice& lattice,
                                       const LatticeClosure& cl, Elem a);

/// Checks that `d` really decomposes `a`: safety is a cl1-safety element,
/// liveness is a cl2-liveness element, and safety ∧ liveness = a.
bool is_valid_decomposition(const FiniteLattice& lattice, const LatticeClosure& cl1,
                            const LatticeClosure& cl2, Elem a, const Decomposition& d);

/// Exhaustively verifies Theorem 3 on a lattice for a pair of closures:
/// every element decomposes, and the produced decomposition is valid.
/// Returns a failing element if any.
std::optional<Elem> verify_theorem3(const FiniteLattice& lattice,
                                    const LatticeClosure& cl1,
                                    const LatticeClosure& cl2);

/// Brute-force search: does ANY pair (s, l) with cl1.s = s, cl2.l = 1 and
/// s ∧ l = a exist? Used to demonstrate Lemma 6 (Figure 1): in the
/// non-modular N5, element `a` has no decomposition at all.
std::optional<std::pair<Elem, Elem>> find_any_decomposition(
    const FiniteLattice& lattice, const LatticeClosure& cl1,
    const LatticeClosure& cl2, Elem a);

/// Theorem 5 (impossibility): if cl2.a = 1 and cl1.a < 1 then no s, l with
/// cl2.s = s, cl1.l = 1, a = s ∧ l exist. Verifies the claim exhaustively
/// for all such a; returns a counterexample (a, s, l) if the theorem were
/// ever violated (it is not — tests assert nullopt).
std::optional<std::array<Elem, 3>> verify_theorem5(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2);

/// Theorem 6 (extremal safety): for every a and every decomposition
/// a = s ∧ z with s closed under cl1 or cl2, we must have cl1.a ≤ s;
/// i.e. cl1.a is the strongest safety element usable in any decomposition
/// of a (machine closure). Returns a violating triple (a, s, z) if any.
std::optional<std::array<Elem, 3>> verify_theorem6(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2);

/// Theorem 7 (extremal liveness, needs distributivity): for every a, every
/// decomposition a = s ∧ z with s closed, and every b ∈ cmp(cl1.a),
/// z ≤ a ∨ b. Returns a violating quadruple (a, s, z, b) if any — which is
/// exactly what the Figure 2 lattice exhibits.
std::optional<std::array<Elem, 4>> verify_theorem7(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2);

/// Lemma 3: cl(a ∧ b) ≤ cl.a ∧ cl.b for all a, b. Returns violating pair.
std::optional<std::pair<Elem, Elem>> verify_lemma3(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl);

/// Lemma 4: if b ∈ cmp(cl.a) then a ∨ b is a cl-liveness element.
/// Returns violating pair (a, b).
std::optional<std::pair<Elem, Elem>> verify_lemma4(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl);

/// Lemma 5: if c ∈ cmp.b and a ≤ b then a ∧ c = 0. Returns violating triple.
std::optional<std::array<Elem, 3>> verify_lemma5(const FiniteLattice& lattice);

}  // namespace slat::lattice
