#include "lattice/finite_poset.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace slat::lattice {

std::optional<FinitePoset> FinitePoset::from_leq(std::vector<std::vector<bool>> leq) {
  const int n = static_cast<int>(leq.size());
  for (const auto& row : leq) {
    if (static_cast<int>(row.size()) != n) return std::nullopt;
  }
  for (int a = 0; a < n; ++a) {
    if (!leq[a][a]) return std::nullopt;  // reflexivity
    for (int b = 0; b < n; ++b) {
      if (a != b && leq[a][b] && leq[b][a]) return std::nullopt;  // antisymmetry
      if (!leq[a][b]) continue;
      for (int c = 0; c < n; ++c) {
        if (leq[b][c] && !leq[a][c]) return std::nullopt;  // transitivity
      }
    }
  }
  return FinitePoset(std::move(leq));
}

std::optional<FinitePoset> FinitePoset::from_covers(
    int n, const std::vector<std::pair<Elem, Elem>>& covers) {
  SLAT_ASSERT(n >= 0);
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (int a = 0; a < n; ++a) leq[a][a] = true;
  for (const auto& [a, b] : covers) {
    SLAT_ASSERT(a >= 0 && a < n && b >= 0 && b < n);
    if (a == b) return std::nullopt;
    leq[a][b] = true;
  }
  // Floyd–Warshall-style transitive closure.
  for (int k = 0; k < n; ++k)
    for (int a = 0; a < n; ++a)
      if (leq[a][k])
        for (int b = 0; b < n; ++b)
          if (leq[k][b]) leq[a][b] = true;
  // A cycle shows up as mutual order between distinct elements.
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b)
      if (leq[a][b] && leq[b][a]) return std::nullopt;
  return FinitePoset(std::move(leq));
}

std::vector<Elem> FinitePoset::maximal_elements() const {
  std::vector<Elem> out;
  for (int a = 0; a < size(); ++a) {
    bool maximal = true;
    for (int b = 0; b < size(); ++b) {
      if (lt(a, b)) {
        maximal = false;
        break;
      }
    }
    if (maximal) out.push_back(a);
  }
  return out;
}

std::vector<Elem> FinitePoset::minimal_elements() const {
  std::vector<Elem> out;
  for (int a = 0; a < size(); ++a) {
    bool minimal = true;
    for (int b = 0; b < size(); ++b) {
      if (lt(b, a)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(a);
  }
  return out;
}

std::vector<std::pair<Elem, Elem>> FinitePoset::cover_pairs() const {
  std::vector<std::pair<Elem, Elem>> out;
  for (int a = 0; a < size(); ++a) {
    for (int b = 0; b < size(); ++b) {
      if (!lt(a, b)) continue;
      bool covered = true;
      for (int c = 0; c < size(); ++c) {
        if (lt(a, c) && lt(c, b)) {
          covered = false;
          break;
        }
      }
      if (covered) out.emplace_back(a, b);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<Elem> FinitePoset::meet(Elem a, Elem b) const {
  // The meet is the greatest common lower bound: a lower bound above all
  // other lower bounds.
  std::optional<Elem> best;
  for (int c = 0; c < size(); ++c) {
    if (!(leq(c, a) && leq(c, b))) continue;
    if (!best || lt(*best, c)) best = c;
  }
  if (!best) return std::nullopt;
  for (int c = 0; c < size(); ++c) {
    if (leq(c, a) && leq(c, b) && !leq(c, *best)) return std::nullopt;
  }
  return best;
}

std::optional<Elem> FinitePoset::join(Elem a, Elem b) const {
  std::optional<Elem> best;
  for (int c = 0; c < size(); ++c) {
    if (!(leq(a, c) && leq(b, c))) continue;
    if (!best || lt(c, *best)) best = c;
  }
  if (!best) return std::nullopt;
  for (int c = 0; c < size(); ++c) {
    if (leq(a, c) && leq(b, c) && !leq(*best, c)) return std::nullopt;
  }
  return best;
}

bool FinitePoset::is_lattice() const {
  if (size() == 0) return false;
  for (int a = 0; a < size(); ++a) {
    for (int b = a + 1; b < size(); ++b) {
      if (!meet(a, b) || !join(a, b)) return false;
    }
  }
  return true;
}

std::optional<Elem> FinitePoset::bottom() const {
  for (int a = 0; a < size(); ++a) {
    bool below_all = true;
    for (int b = 0; b < size(); ++b) {
      if (!leq(a, b)) {
        below_all = false;
        break;
      }
    }
    if (below_all) return a;
  }
  return std::nullopt;
}

std::optional<Elem> FinitePoset::top() const {
  for (int a = 0; a < size(); ++a) {
    bool above_all = true;
    for (int b = 0; b < size(); ++b) {
      if (!leq(b, a)) {
        above_all = false;
        break;
      }
    }
    if (above_all) return a;
  }
  return std::nullopt;
}

FinitePoset FinitePoset::dual() const {
  std::vector<std::vector<bool>> rev(size(), std::vector<bool>(size(), false));
  for (int a = 0; a < size(); ++a)
    for (int b = 0; b < size(); ++b) rev[a][b] = leq_[b][a];
  return FinitePoset(std::move(rev));
}

std::vector<std::vector<Elem>> FinitePoset::down_sets() const {
  // Enumerate subsets in increasing order of popcount-free brute force;
  // fine for the ≤ 20-element posets the Birkhoff construction sees.
  SLAT_ASSERT_MSG(size() <= 20, "down_sets is exponential; poset too large");
  std::vector<std::vector<Elem>> out;
  const std::uint32_t limit = 1u << size();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    bool closed = true;
    for (int b = 0; b < size() && closed; ++b) {
      if (!(mask >> b & 1u)) continue;
      for (int a = 0; a < size(); ++a) {
        if (lt(a, b) && !(mask >> a & 1u)) {
          closed = false;
          break;
        }
      }
    }
    if (!closed) continue;
    std::vector<Elem> set;
    for (int a = 0; a < size(); ++a)
      if (mask >> a & 1u) set.push_back(a);
    out.push_back(std::move(set));
  }
  return out;
}

}  // namespace slat::lattice
