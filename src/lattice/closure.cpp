#include "lattice/closure.hpp"

#include <string>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::lattice {

std::optional<std::string> LatticeClosure::violation(const FiniteLattice& lattice,
                                                     const std::vector<Elem>& map) {
  const int n = lattice.size();
  if (static_cast<int>(map.size()) != n) return "map size differs from lattice size";
  for (int a = 0; a < n; ++a) {
    if (map[a] < 0 || map[a] >= n) return "map image out of range";
    if (!lattice.leq(a, map[a]))
      return "not extensive at element " + std::to_string(a);
  }
  for (int a = 0; a < n; ++a) {
    if (map[map[a]] != map[a])
      return "not idempotent at element " + std::to_string(a);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (lattice.leq(a, b) && !lattice.leq(map[a], map[b]))
        return "not monotone at pair (" + std::to_string(a) + ", " + std::to_string(b) + ")";
    }
  }
  return std::nullopt;
}

std::optional<LatticeClosure> LatticeClosure::from_map(const FiniteLattice& lattice,
                                                       std::vector<Elem> map) {
  if (violation(lattice, map)) return std::nullopt;
  return LatticeClosure(lattice, std::move(map));
}

LatticeClosure LatticeClosure::from_closed_set(const FiniteLattice& lattice,
                                               std::vector<Elem> closed_set) {
  const int n = lattice.size();
  std::vector<bool> closed(n, false);
  closed[lattice.top()] = true;
  for (Elem c : closed_set) {
    SLAT_ASSERT(c >= 0 && c < n);
    closed[c] = true;
  }
  // The closure map depends only on (lattice, generator MEMBERSHIP), so the
  // cache key uses the bool vector — generator order and duplicates collide
  // onto one entry. The map (not the LatticeClosure) is cached: closures
  // hold a pointer to their lattice, which must be the caller's object.
  static core::MemoCache<std::vector<Elem>>& cache =
      *new core::MemoCache<std::vector<Elem>>("lattice.from_closed_set");
  std::vector<Elem> map = cache.get_or_compute(
      core::DigestBuilder()
          .add_string("from_closed_set")
          .add_digest(lattice.content_digest())
          .add_bools(closed)
          .digest(),
      [&] { return closure_map_from_generators(lattice, closed); });
  auto result = from_map(lattice, std::move(map));
  SLAT_ASSERT_MSG(result.has_value(),
                  "meet-complete closed set must induce a closure");
  return std::move(*result);
}

std::vector<Elem> LatticeClosure::closure_map_from_generators(
    const FiniteLattice& lattice, std::vector<bool> closed) {
  // Meet-complete the generator set; top is already included so every
  // element has some closed element above it.
  const int n = lattice.size();
  bool grew = true;
  while (grew) {
    grew = false;
    for (int a = 0; a < n; ++a) {
      if (!closed[a]) continue;
      for (int b = 0; b < n; ++b) {
        if (!closed[b]) continue;
        const Elem m = lattice.meet(a, b);
        if (!closed[m]) {
          closed[m] = true;
          grew = true;
        }
      }
    }
  }
  std::vector<Elem> map(n);
  for (int a = 0; a < n; ++a) {
    // cl.a = meet of closed elements above a. Because the closed set is
    // meet-complete, this meet is itself closed and above a.
    Elem acc = lattice.top();
    for (int c = 0; c < n; ++c) {
      if (closed[c] && lattice.leq(a, c)) acc = lattice.meet(acc, c);
    }
    SLAT_ASSERT(closed[acc] && lattice.leq(a, acc));
    map[a] = acc;
  }
  return map;
}

LatticeClosure LatticeClosure::identity(const FiniteLattice& lattice) {
  std::vector<Elem> map(lattice.size());
  for (int a = 0; a < lattice.size(); ++a) map[a] = a;
  return LatticeClosure(lattice, std::move(map));
}

LatticeClosure LatticeClosure::to_top(const FiniteLattice& lattice) {
  std::vector<Elem> map(lattice.size(), lattice.top());
  return LatticeClosure(lattice, std::move(map));
}

LatticeClosure LatticeClosure::random(const FiniteLattice& lattice, std::mt19937& rng) {
  std::vector<Elem> gen;
  std::bernoulli_distribution flip(0.5);
  for (int a = 0; a < lattice.size(); ++a) {
    if (flip(rng)) gen.push_back(a);
  }
  return from_closed_set(lattice, std::move(gen));
}

std::vector<Elem> LatticeClosure::closed_elements() const {
  std::vector<Elem> out;
  for (int a = 0; a < lattice_->size(); ++a) {
    if (is_safety_element(a)) out.push_back(a);
  }
  return out;
}

std::vector<Elem> LatticeClosure::liveness_elements() const {
  std::vector<Elem> out;
  for (int a = 0; a < lattice_->size(); ++a) {
    if (is_liveness_element(a)) out.push_back(a);
  }
  return out;
}

core::Digest LatticeClosure::content_digest() const {
  return core::DigestBuilder()
      .add_string("lattice.closure")
      .add_digest(lattice_->content_digest())
      .add_ints(map_)
      .digest();
}

bool LatticeClosure::pointwise_leq(const LatticeClosure& other) const {
  SLAT_ASSERT(lattice_ == other.lattice_ || *lattice_ == *other.lattice_);
  for (int a = 0; a < lattice_->size(); ++a) {
    if (!lattice_->leq(map_[a], other.map_[a])) return false;
  }
  return true;
}

}  // namespace slat::lattice
