// Finite partially ordered sets with an explicit order relation.
//
// Elements are indices 0..size()-1. The order is stored as a dense
// boolean matrix, which keeps every query O(1) and every global check
// (transitivity, lattice-ness, modularity, ...) a straightforward loop.
// All lattices in this library are small (the paper's counterexamples have
// five elements; the largest sweeps use a few hundred), so density is the
// right trade-off.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace slat::lattice {

/// An element of a poset/lattice, by index.
using Elem = int;

/// A finite poset given by its full order relation (reflexive, antisymmetric,
/// transitive). Construct via `from_leq` (validates) or `from_covers`
/// (computes the reflexive-transitive closure of a cover/Hasse relation).
class FinitePoset {
 public:
  FinitePoset() = default;

  /// Builds a poset from a complete ≤ matrix. Returns std::nullopt if the
  /// matrix is not reflexive, antisymmetric, and transitive.
  static std::optional<FinitePoset> from_leq(std::vector<std::vector<bool>> leq);

  /// Builds a poset from cover pairs (a ⋖ b means a < b with nothing between;
  /// any acyclic "less-than" pairs are accepted and transitively closed).
  /// Returns std::nullopt if the pairs induce a cycle.
  static std::optional<FinitePoset> from_covers(int n,
                                                const std::vector<std::pair<Elem, Elem>>& covers);

  int size() const { return static_cast<int>(leq_.size()); }

  bool leq(Elem a, Elem b) const { return leq_[a][b]; }
  bool lt(Elem a, Elem b) const { return a != b && leq_[a][b]; }
  bool comparable(Elem a, Elem b) const { return leq_[a][b] || leq_[b][a]; }

  /// All maximal / minimal elements.
  std::vector<Elem> maximal_elements() const;
  std::vector<Elem> minimal_elements() const;

  /// The cover (Hasse) relation recovered from the order: pairs (a, b) with
  /// a ⋖ b. Sorted lexicographically.
  std::vector<std::pair<Elem, Elem>> cover_pairs() const;

  /// Greatest lower bound of {a, b} if it exists.
  std::optional<Elem> meet(Elem a, Elem b) const;
  /// Least upper bound of {a, b} if it exists.
  std::optional<Elem> join(Elem a, Elem b) const;

  /// True iff every pair of elements has both a meet and a join.
  bool is_lattice() const;

  /// Bottom element (below everything) if it exists.
  std::optional<Elem> bottom() const;
  /// Top element (above everything) if it exists.
  std::optional<Elem> top() const;

  /// The dual poset (order reversed).
  FinitePoset dual() const;

  /// All down-sets (order ideals), each as a sorted vector of elements.
  /// Exponential in general; used by the Birkhoff construction on small posets.
  std::vector<std::vector<Elem>> down_sets() const;

  bool operator==(const FinitePoset& other) const { return leq_ == other.leq_; }

 private:
  explicit FinitePoset(std::vector<std::vector<bool>> leq) : leq_(std::move(leq)) {}

  std::vector<std::vector<bool>> leq_;
};

}  // namespace slat::lattice
