// Standard lattice constructions used throughout the paper and the tests:
// the paper's two counterexample lattices (Figures 1 and 2), Boolean
// lattices, chains, divisor / partition / subspace lattices, products, and
// the Birkhoff representation of finite distributive lattices.
#pragma once

#include <cstdint>
#include <vector>

#include "lattice/finite_lattice.hpp"

namespace slat::lattice {

/// The pentagon N5 — the paper's Figure 1. Not modular. The shape matches
/// the figure's caption: 0 < a < b < 1 on one side, 0 < c < 1 on the other,
/// so that a ≤ b but a ∨ (c ∧ b) = a while (a ∨ c) ∧ b = b. The paper's
/// closure (cl.a = b, identity elsewhere) makes `a` undecomposable (Lemma 6).
FiniteLattice n5();

/// Named accessors for the N5 elements as labeled in Figure 1.
struct N5Elems {
  static constexpr Elem bottom = 0, a = 1, b = 2, c = 3, top = 4;
};

/// The diamond M3: bottom, three atoms, top. Modular but not distributive;
/// each atom has the other two as complements.
/// Indices: 0 = bottom, 1..3 = atoms, 4 = top.
FiniteLattice m3();

/// The paper's Figure 2 lattice — M3 with the figure's labels: bottom `a`,
/// middle antichain {s, b, z}, top 1. With any closure mapping a ↦ s it
/// witnesses that Theorem 7 needs distributivity: s is a safety element,
/// a = s ∧ z, b ∈ cmp(cl.a), yet z ≤ a ∨ b fails (a ∨ b = b and z ≰ b).
FiniteLattice fig2();

/// Named accessors for the Figure 2 elements (indices into fig2()/m3()).
struct Fig2Elems {
  static constexpr Elem a = 0, s = 1, b = 2, z = 3, top = 4;
};

/// The Boolean lattice B_n = powerset of an n-element set ordered by
/// inclusion; element i is the subset whose bitmask is i. Size 2^n; n ≤ 16.
FiniteLattice boolean_lattice(int n);

/// A linear order with n elements (0 < 1 < ... < n-1). A chain is modular
/// and distributive but complemented only for n ≤ 2.
FiniteLattice chain(int n);

/// Order-embedding hook for the quantitative tier (src/quant): the element
/// of `chain(values.size())` that the real `x` maps to, i.e. its index in
/// the strictly ascending universe `values`. Precondition: x ∈ values.
/// Finite samples of a quantitative property land in a chain, where meet is
/// min — this is how the pointwise decomposition minimum is re-checked
/// against this layer's lattice machinery.
Elem chain_index(const std::vector<double>& ascending_values, double x);

/// Divisors of n ordered by divisibility. Distributive; complemented iff n
/// is squarefree. Element i is the i-th smallest divisor.
FiniteLattice divisor_lattice(std::uint64_t n);

/// The divisors of n in increasing order (index ↔ element of
/// divisor_lattice(n)).
std::vector<std::uint64_t> divisors(std::uint64_t n);

/// The partition lattice Π_n: partitions of {0..n-1} where p ≤ q iff p
/// refines q. Complemented; modular only for n ≤ 3. n ≤ 7.
FiniteLattice partition_lattice(int n);

/// The lattice of linear subspaces of the vector space GF(2)^dim, ordered by
/// inclusion. The canonical modular, complemented, non-distributive lattice —
/// exactly the paper's Section 3 setting without being Boolean. dim ≤ 4.
FiniteLattice subspace_lattice_gf2(int dim);

/// Direct product of two lattices (componentwise order). Element index for
/// the pair (a, b) is a * rhs.size() + b.
FiniteLattice product(const FiniteLattice& lhs, const FiniteLattice& rhs);

/// Birkhoff's representation: the distributive lattice of down-sets of a
/// poset, ordered by inclusion. Every finite distributive lattice arises
/// this way from its poset of join-irreducibles.
FiniteLattice downset_lattice(const FinitePoset& poset);

/// The sub-poset of join-irreducibles of a lattice (for round-tripping
/// through Birkhoff's theorem in tests). Index i of the result corresponds
/// to the i-th join-irreducible (in element order) of `lattice`.
FinitePoset join_irreducible_poset(const FiniteLattice& lattice);

/// Dedekind–MacNeille completion: the smallest complete lattice into which
/// the poset order-embeds. Elements of the completion are the "cuts"
/// (Y = (Y^upper)^lower), computed as the ∩-closure of the principal ideals;
/// `embedding[x]` is the completion element of ↓x. For a poset that is
/// already a (finite, hence complete) lattice, the completion is isomorphic
/// to it. This is the bridge the paper's §1 discussion of Gumm's
/// ⋁-complete setting needs: finite lattices complete for free, while the
/// Büchi-language lattice does not (its completion leaves the ω-regular
/// world), which is exactly why the paper replaces completeness with the
/// three closure laws.
struct DedekindMacNeille {
  FiniteLattice lattice;
  std::vector<Elem> embedding;  ///< poset element -> completion element
};
DedekindMacNeille dedekind_macneille(const FinitePoset& poset);

}  // namespace slat::lattice
