#include "lattice/enumerate.hpp"

#include <cstdint>

#include "common/assert.hpp"
#include "lattice/closure.hpp"

namespace slat::lattice {

void for_each_labeled_poset(int n, const std::function<void(const FinitePoset&)>& fn) {
  SLAT_ASSERT(n >= 1 && n <= 6);
  // Each pair (a, b) with a < b (as integers) is either incomparable or
  // a < b in the poset; orders incompatible with the integer order are
  // relabelings of ones compatible with it, so restricting to "natural"
  // labelings still covers every isomorphism class.
  const int num_pairs = n * (n - 1) / 2;
  std::vector<std::pair<int, int>> pairs;
  for (int a = 0; a < n; ++a)
    for (int b = a + 1; b < n; ++b) pairs.emplace_back(a, b);

  const std::uint32_t limit = 1u << num_pairs;
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n));
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    for (int a = 0; a < n; ++a)
      for (int b = 0; b < n; ++b) leq[a][b] = a == b;
    for (int i = 0; i < num_pairs; ++i) {
      if (mask >> i & 1u) leq[pairs[i].first][pairs[i].second] = true;
    }
    // Check transitivity directly (cheaper than closing and comparing).
    bool transitive = true;
    for (int a = 0; a < n && transitive; ++a)
      for (int b = 0; b < n && transitive; ++b) {
        if (!leq[a][b] || a == b) continue;
        for (int c = 0; c < n; ++c) {
          if (leq[b][c] && !leq[a][c]) {
            transitive = false;
            break;
          }
        }
      }
    if (!transitive) continue;
    auto poset = FinitePoset::from_leq(leq);
    SLAT_ASSERT(poset.has_value());
    fn(*poset);
  }
}

void for_each_labeled_lattice(int n, const std::function<void(const FiniteLattice&)>& fn) {
  for_each_labeled_poset(n, [&](const FinitePoset& poset) {
    auto lattice = FiniteLattice::from_poset(poset);
    if (lattice) fn(*lattice);
  });
}

void for_each_closure(const FiniteLattice& lattice,
                      const std::function<void(const LatticeClosure&)>& fn) {
  const int n = lattice.size();
  SLAT_ASSERT_MSG(n <= 20, "closure enumeration is exponential in lattice size");
  // Enumerate subsets containing top that are closed under binary meets.
  const std::uint32_t limit = 1u << n;
  const std::uint32_t top_bit = 1u << lattice.top();
  for (std::uint32_t mask = 0; mask < limit; ++mask) {
    if (!(mask & top_bit)) continue;
    bool meet_closed = true;
    for (int a = 0; a < n && meet_closed; ++a) {
      if (!(mask >> a & 1u)) continue;
      for (int b = a; b < n; ++b) {
        if (!(mask >> b & 1u)) continue;
        if (!(mask >> lattice.meet(a, b) & 1u)) {
          meet_closed = false;
          break;
        }
      }
    }
    if (!meet_closed) continue;
    std::vector<Elem> closed;
    for (int a = 0; a < n; ++a)
      if (mask >> a & 1u) closed.push_back(a);
    fn(LatticeClosure::from_closed_set(lattice, std::move(closed)));
  }
}

}  // namespace slat::lattice
