#include "lattice/decomposition.hpp"

#include <array>

#include "common/assert.hpp"
#include "core/memo_cache.hpp"

namespace slat::lattice {

std::optional<Decomposition> decompose(const FiniteLattice& lattice,
                                       const LatticeClosure& cl1,
                                       const LatticeClosure& cl2, Elem a) {
  // Precondition checks stay OUTSIDE the cache: a hit must not silently
  // accept arguments that violate Theorem 3's hypothesis.
  SLAT_ASSERT(a >= 0 && a < lattice.size());
  SLAT_ASSERT_MSG(cl1.pointwise_leq(cl2), "Theorem 3 requires cl1 ≤ cl2");
  static core::MemoCache<std::optional<Decomposition>>& cache =
      *new core::MemoCache<std::optional<Decomposition>>("lattice.decompose");
  return cache.get_or_compute(core::DigestBuilder()
                                  .add_string("decompose")
                                  .add_digest(cl1.content_digest())
                                  .add_digest(cl2.content_digest())
                                  .add_int(a)
                                  .digest(),
                              [&]() -> std::optional<Decomposition> {
                                const auto complements =
                                    lattice.complements(cl2.apply(a));
                                if (complements.empty()) return std::nullopt;
                                const Elem b = complements.front();
                                return Decomposition{
                                    .safety = cl1.apply(a),
                                    .liveness = lattice.join(a, b),
                                    .complement = b,
                                };
                              });
}

std::optional<Decomposition> decompose(const FiniteLattice& lattice,
                                       const LatticeClosure& cl, Elem a) {
  return decompose(lattice, cl, cl, a);
}

bool is_valid_decomposition(const FiniteLattice& lattice, const LatticeClosure& cl1,
                            const LatticeClosure& cl2, Elem a,
                            const Decomposition& d) {
  if (!cl1.is_safety_element(d.safety)) return false;
  if (!cl2.is_liveness_element(d.liveness)) return false;
  return lattice.meet(d.safety, d.liveness) == a;
}

std::optional<Elem> verify_theorem3(const FiniteLattice& lattice,
                                    const LatticeClosure& cl1,
                                    const LatticeClosure& cl2) {
  // The whole sweep is cached (closure digests embed the lattice digest);
  // on a miss the per-element decompose calls below still land in — and
  // warm — the "lattice.decompose" cache.
  static core::MemoCache<std::optional<Elem>>& cache =
      *new core::MemoCache<std::optional<Elem>>("lattice.verify_theorem3");
  return cache.get_or_compute(core::DigestBuilder()
                                  .add_string("verify_theorem3")
                                  .add_digest(cl1.content_digest())
                                  .add_digest(cl2.content_digest())
                                  .digest(),
                              [&]() -> std::optional<Elem> {
                                for (int a = 0; a < lattice.size(); ++a) {
                                  const auto d = decompose(lattice, cl1, cl2, a);
                                  if (!d || !is_valid_decomposition(lattice, cl1, cl2,
                                                                    a, *d)) {
                                    return a;
                                  }
                                }
                                return std::nullopt;
                              });
}

std::optional<std::pair<Elem, Elem>> find_any_decomposition(
    const FiniteLattice& lattice, const LatticeClosure& cl1,
    const LatticeClosure& cl2, Elem a) {
  for (int s = 0; s < lattice.size(); ++s) {
    if (!cl1.is_safety_element(s)) continue;
    for (int l = 0; l < lattice.size(); ++l) {
      if (!cl2.is_liveness_element(l)) continue;
      if (lattice.meet(s, l) == a) return std::make_pair(s, l);
    }
  }
  return std::nullopt;
}

std::optional<std::array<Elem, 3>> verify_theorem5(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2) {
  const Elem top = lattice.top();
  for (int a = 0; a < lattice.size(); ++a) {
    if (!(cl2.apply(a) == top && cl1.apply(a) != top)) continue;
    // Theorem 5 claims no (s, l) with cl2.s = s, cl1.l = 1, a = s ∧ l.
    for (int s = 0; s < lattice.size(); ++s) {
      if (cl2.apply(s) != s) continue;
      for (int l = 0; l < lattice.size(); ++l) {
        if (cl1.apply(l) != top) continue;
        if (lattice.meet(s, l) == a) return std::array<Elem, 3>{a, s, l};
      }
    }
  }
  return std::nullopt;
}

std::optional<std::array<Elem, 3>> verify_theorem6(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2) {
  for (int a = 0; a < lattice.size(); ++a) {
    for (int s = 0; s < lattice.size(); ++s) {
      const bool closed = cl1.apply(s) == s || cl2.apply(s) == s;
      if (!closed) continue;
      for (int z = 0; z < lattice.size(); ++z) {
        if (lattice.meet(s, z) != a) continue;
        if (!lattice.leq(cl1.apply(a), s)) return std::array<Elem, 3>{a, s, z};
      }
    }
  }
  return std::nullopt;
}

std::optional<std::array<Elem, 4>> verify_theorem7(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl1,
                                                   const LatticeClosure& cl2) {
  for (int a = 0; a < lattice.size(); ++a) {
    for (int s = 0; s < lattice.size(); ++s) {
      const bool closed = cl1.apply(s) == s || cl2.apply(s) == s;
      if (!closed) continue;
      for (int z = 0; z < lattice.size(); ++z) {
        if (lattice.meet(s, z) != a) continue;
        for (Elem b : lattice.complements(cl1.apply(a))) {
          if (!lattice.leq(z, lattice.join(a, b)))
            return std::array<Elem, 4>{a, s, z, b};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::pair<Elem, Elem>> verify_lemma3(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl) {
  for (int a = 0; a < lattice.size(); ++a) {
    for (int b = 0; b < lattice.size(); ++b) {
      if (!lattice.leq(cl.apply(lattice.meet(a, b)),
                       lattice.meet(cl.apply(a), cl.apply(b))))
        return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

std::optional<std::pair<Elem, Elem>> verify_lemma4(const FiniteLattice& lattice,
                                                   const LatticeClosure& cl) {
  for (int a = 0; a < lattice.size(); ++a) {
    for (Elem b : lattice.complements(cl.apply(a))) {
      if (!cl.is_liveness_element(lattice.join(a, b))) return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

std::optional<std::array<Elem, 3>> verify_lemma5(const FiniteLattice& lattice) {
  for (int b = 0; b < lattice.size(); ++b) {
    for (Elem c : lattice.complements(b)) {
      for (int a = 0; a < lattice.size(); ++a) {
        if (lattice.leq(a, b) && lattice.meet(a, c) != lattice.bottom())
          return std::array<Elem, 3>{a, b, c};
      }
    }
  }
  return std::nullopt;
}

}  // namespace slat::lattice
