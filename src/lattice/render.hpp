// Rendering of Hasse diagrams — regenerates the paper's Figures 1 and 2 as
// text (and Graphviz DOT for anyone who wants the pictures).
#pragma once

#include <string>
#include <vector>

#include "lattice/finite_lattice.hpp"

namespace slat::lattice {

/// Graphviz DOT of the Hasse diagram (covers as edges, bottom at the
/// bottom). `labels` may be empty (indices are used) or one per element.
std::string to_dot(const FiniteLattice& lattice, const std::vector<std::string>& labels = {});

/// A plain-text rendering: elements grouped by height (longest chain from
/// bottom), one rank per line, top first, with the cover relation listed.
std::string to_text(const FiniteLattice& lattice, const std::vector<std::string>& labels = {});

/// Height of each element: length of the longest chain from the bottom.
std::vector<int> element_heights(const FiniteLattice& lattice);

}  // namespace slat::lattice
