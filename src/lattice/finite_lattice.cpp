#include "lattice/finite_lattice.hpp"

#include <array>

#include "common/assert.hpp"

namespace slat::lattice {

FiniteLattice::FiniteLattice(FinitePoset poset, std::vector<std::vector<Elem>> meet,
                             std::vector<std::vector<Elem>> join, Elem bottom, Elem top)
    : poset_(std::move(poset)),
      meet_(std::move(meet)),
      join_(std::move(join)),
      bottom_(bottom),
      top_(top) {
  // The meet table determines the order (a ≤ b ⟺ a ∧ b = a) and therefore
  // the whole lattice; bottom/top are derived but cheap to pin down.
  core::DigestBuilder b;
  b.add_string("lattice.finite");
  b.add_int(size()).add_int(bottom_).add_int(top_);
  for (const auto& row : meet_) b.add_ints(row);
  digest_ = b.digest();
}

std::optional<FiniteLattice> FiniteLattice::from_poset(FinitePoset poset) {
  const int n = poset.size();
  if (n == 0) return std::nullopt;
  std::vector<std::vector<Elem>> meet(n, std::vector<Elem>(n));
  std::vector<std::vector<Elem>> join(n, std::vector<Elem>(n));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      auto m = poset.meet(a, b);
      auto j = poset.join(a, b);
      if (!m || !j) return std::nullopt;
      meet[a][b] = *m;
      join[a][b] = *j;
    }
  }
  auto bottom = poset.bottom();
  auto top = poset.top();
  // A finite lattice always has both (meet/join of everything).
  SLAT_ASSERT(bottom && top);
  return FiniteLattice(std::move(poset), std::move(meet), std::move(join), *bottom, *top);
}

std::optional<FiniteLattice> FiniteLattice::from_covers(
    int n, const std::vector<std::pair<Elem, Elem>>& covers) {
  auto poset = FinitePoset::from_covers(n, covers);
  if (!poset) return std::nullopt;
  return from_poset(std::move(*poset));
}

Elem FiniteLattice::meet_all(const std::vector<Elem>& xs) const {
  Elem acc = top_;
  for (Elem x : xs) acc = meet(acc, x);
  return acc;
}

Elem FiniteLattice::join_all(const std::vector<Elem>& xs) const {
  Elem acc = bottom_;
  for (Elem x : xs) acc = join(acc, x);
  return acc;
}

std::vector<Elem> FiniteLattice::complements(Elem a) const {
  SLAT_ASSERT(a >= 0 && a < size());
  std::vector<Elem> out;
  for (int b = 0; b < size(); ++b) {
    if (meet(a, b) == bottom_ && join(a, b) == top_) out.push_back(b);
  }
  return out;
}

bool FiniteLattice::is_modular() const { return !modularity_counterexample(); }

bool FiniteLattice::is_distributive() const { return !distributivity_counterexample(); }

bool FiniteLattice::is_complemented() const {
  for (int a = 0; a < size(); ++a) {
    if (complements(a).empty()) return false;
  }
  return true;
}

std::optional<std::array<Elem, 3>> FiniteLattice::modularity_counterexample() const {
  for (int a = 0; a < size(); ++a) {
    for (int c = 0; c < size(); ++c) {
      if (!leq(a, c)) continue;
      for (int b = 0; b < size(); ++b) {
        if (join(a, meet(b, c)) != meet(join(a, b), c)) {
          return std::array<Elem, 3>{a, b, c};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::array<Elem, 3>> FiniteLattice::distributivity_counterexample() const {
  for (int a = 0; a < size(); ++a) {
    for (int b = 0; b < size(); ++b) {
      for (int c = 0; c < size(); ++c) {
        if (meet(a, join(b, c)) != join(meet(a, b), meet(a, c))) {
          return std::array<Elem, 3>{a, b, c};
        }
      }
    }
  }
  return std::nullopt;
}

bool FiniteLattice::satisfies_lattice_axioms() const {
  const int n = size();
  for (int a = 0; a < n; ++a) {
    if (meet(a, a) != a || join(a, a) != a) return false;  // idempotency
    for (int b = 0; b < n; ++b) {
      if (meet(a, b) != meet(b, a) || join(a, b) != join(b, a)) return false;  // comm.
      if (meet(a, join(a, b)) != a || join(a, meet(a, b)) != a) return false;  // absorp.
      for (int c = 0; c < n; ++c) {
        if (meet(meet(a, b), c) != meet(a, meet(b, c))) return false;  // assoc.
        if (join(join(a, b), c) != join(a, join(b, c))) return false;
      }
    }
  }
  // The induced order must agree with the poset: a ≤ b ⟺ a ∧ b = a ⟺ a ∨ b = b.
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      const bool ord = leq(a, b);
      if (ord != (meet(a, b) == a)) return false;
      if (ord != (join(a, b) == b)) return false;
    }
  }
  return true;
}

std::vector<Elem> FiniteLattice::join_irreducibles() const {
  std::vector<Elem> out;
  for (int x = 0; x < size(); ++x) {
    if (x == bottom_) continue;
    bool irreducible = true;
    for (int a = 0; a < size() && irreducible; ++a) {
      for (int b = 0; b < size(); ++b) {
        if (a != x && b != x && join(a, b) == x) {
          irreducible = false;
          break;
        }
      }
    }
    if (irreducible) out.push_back(x);
  }
  return out;
}

FiniteLattice FiniteLattice::dual() const {
  auto dual_lattice = from_poset(poset_.dual());
  SLAT_ASSERT(dual_lattice.has_value());
  return std::move(*dual_lattice);
}

}  // namespace slat::lattice
