#include "lattice/constructions.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <set>
#include <numeric>

#include "common/assert.hpp"

namespace slat::lattice {

namespace {

FiniteLattice lattice_from_covers(int n, const std::vector<std::pair<Elem, Elem>>& covers) {
  auto lattice = FiniteLattice::from_covers(n, covers);
  SLAT_ASSERT_MSG(lattice.has_value(), "construction must yield a lattice");
  return std::move(*lattice);
}

FiniteLattice lattice_from_leq(std::vector<std::vector<bool>> leq) {
  auto poset = FinitePoset::from_leq(std::move(leq));
  SLAT_ASSERT_MSG(poset.has_value(), "construction must yield a poset");
  auto lattice = FiniteLattice::from_poset(std::move(*poset));
  SLAT_ASSERT_MSG(lattice.has_value(), "construction must yield a lattice");
  return std::move(*lattice);
}

}  // namespace

FiniteLattice n5() {
  using E = N5Elems;
  return lattice_from_covers(5, {{E::bottom, E::a},
                                 {E::a, E::b},
                                 {E::b, E::top},
                                 {E::bottom, E::c},
                                 {E::c, E::top}});
}

FiniteLattice m3() {
  return lattice_from_covers(5, {{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 4}, {3, 4}});
}

FiniteLattice fig2() { return m3(); }

FiniteLattice boolean_lattice(int n) {
  SLAT_ASSERT(n >= 0 && n <= 16);
  const int size = 1 << n;
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a)
    for (int b = 0; b < size; ++b) leq[a][b] = (a & b) == a;
  return lattice_from_leq(std::move(leq));
}

FiniteLattice chain(int n) {
  SLAT_ASSERT(n >= 1);
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (int a = 0; a < n; ++a)
    for (int b = a; b < n; ++b) leq[a][b] = true;
  return lattice_from_leq(std::move(leq));
}

Elem chain_index(const std::vector<double>& ascending_values, double x) {
  const auto it = std::lower_bound(ascending_values.begin(), ascending_values.end(), x);
  SLAT_ASSERT(it != ascending_values.end() && *it == x);
  return static_cast<Elem>(it - ascending_values.begin());
}

std::vector<std::uint64_t> divisors(std::uint64_t n) {
  SLAT_ASSERT(n >= 1);
  std::vector<std::uint64_t> divs;
  for (std::uint64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      divs.push_back(d);
      if (d != n / d) divs.push_back(n / d);
    }
  }
  std::sort(divs.begin(), divs.end());
  return divs;
}

FiniteLattice divisor_lattice(std::uint64_t n) {
  const auto divs = divisors(n);
  const int size = static_cast<int>(divs.size());
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a)
    for (int b = 0; b < size; ++b) leq[a][b] = divs[b] % divs[a] == 0;
  return lattice_from_leq(std::move(leq));
}

namespace {

// Partitions of {0..n-1} in restricted-growth-string form: rgs[i] is the
// block index of i, with rgs[0] = 0 and rgs[i] ≤ max(rgs[0..i-1]) + 1.
void enumerate_rgs(int n, int pos, int max_block, std::vector<int>& rgs,
                   std::vector<std::vector<int>>& out) {
  if (pos == n) {
    out.push_back(rgs);
    return;
  }
  for (int block = 0; block <= max_block + 1; ++block) {
    rgs[pos] = block;
    enumerate_rgs(n, pos + 1, std::max(max_block, block), rgs, out);
  }
}

// p refines q: every block of p is contained in a block of q.
bool refines(const std::vector<int>& p, const std::vector<int>& q) {
  const int n = static_cast<int>(p.size());
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      if (p[i] == p[j] && q[i] != q[j]) return false;
  return true;
}

}  // namespace

FiniteLattice partition_lattice(int n) {
  SLAT_ASSERT(n >= 1 && n <= 7);
  std::vector<std::vector<int>> parts;
  std::vector<int> rgs(n, 0);
  enumerate_rgs(n, 1, 0, rgs, parts);
  const int size = static_cast<int>(parts.size());
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a)
    for (int b = 0; b < size; ++b) leq[a][b] = refines(parts[a], parts[b]);
  return lattice_from_leq(std::move(leq));
}

FiniteLattice subspace_lattice_gf2(int dim) {
  SLAT_ASSERT(dim >= 0 && dim <= 4);
  // A subspace of GF(2)^dim is a set of vectors closed under XOR and
  // containing 0; represent it as a bitmask over the 2^dim vectors.
  const int num_vectors = 1 << dim;
  std::vector<std::uint32_t> subspaces;
  // Enumerate candidate subsets containing 0 and closed under XOR. 2^dim ≤ 16
  // vectors, so enumerate subspaces by span of every subset of vectors.
  const std::uint32_t vec_limit = 1u << num_vectors;
  std::vector<bool> seen(vec_limit, false);
  for (std::uint32_t gens = 0; gens < vec_limit; ++gens) {
    // Compute the span of the generator set `gens`.
    std::uint32_t span = 1u;  // contains the zero vector
    bool grew = true;
    while (grew) {
      grew = false;
      for (int u = 0; u < num_vectors; ++u) {
        if (!(span >> u & 1u) && !(gens >> u & 1u)) continue;
        if (!(span >> u & 1u)) {
          span |= 1u << u;
          grew = true;
        }
        for (int v = 0; v < num_vectors; ++v) {
          if (!(span >> v & 1u)) continue;
          const int w = u ^ v;
          if (!(span >> w & 1u)) {
            span |= 1u << w;
            grew = true;
          }
        }
      }
    }
    if (!seen[span]) {
      seen[span] = true;
      subspaces.push_back(span);
    }
  }
  std::sort(subspaces.begin(), subspaces.end(),
            [](std::uint32_t a, std::uint32_t b) {
              const int pa = std::popcount(a), pb = std::popcount(b);
              return pa != pb ? pa < pb : a < b;
            });
  const int size = static_cast<int>(subspaces.size());
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a)
    for (int b = 0; b < size; ++b)
      leq[a][b] = (subspaces[a] & subspaces[b]) == subspaces[a];
  return lattice_from_leq(std::move(leq));
}

FiniteLattice product(const FiniteLattice& lhs, const FiniteLattice& rhs) {
  const int n = lhs.size() * rhs.size();
  std::vector<std::vector<bool>> leq(n, std::vector<bool>(n, false));
  for (int a1 = 0; a1 < lhs.size(); ++a1)
    for (int b1 = 0; b1 < rhs.size(); ++b1)
      for (int a2 = 0; a2 < lhs.size(); ++a2)
        for (int b2 = 0; b2 < rhs.size(); ++b2)
          leq[a1 * rhs.size() + b1][a2 * rhs.size() + b2] =
              lhs.leq(a1, a2) && rhs.leq(b1, b2);
  return lattice_from_leq(std::move(leq));
}

FiniteLattice downset_lattice(const FinitePoset& poset) {
  const auto sets = poset.down_sets();
  const int size = static_cast<int>(sets.size());
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a) {
    for (int b = 0; b < size; ++b) {
      leq[a][b] = std::includes(sets[b].begin(), sets[b].end(), sets[a].begin(),
                                sets[a].end());
    }
  }
  return lattice_from_leq(std::move(leq));
}

DedekindMacNeille dedekind_macneille(const FinitePoset& poset) {
  const int n = poset.size();
  SLAT_ASSERT_MSG(n <= 20, "completion enumerates cuts as bitsets");
  using Cut = std::uint32_t;
  const Cut everything = n == 0 ? 0 : (n >= 32 ? ~0u : ((1u << n) - 1));

  // Principal ideals ↓x.
  std::vector<Cut> ideals(n, 0);
  for (int x = 0; x < n; ++x) {
    for (int y = 0; y < n; ++y) {
      if (poset.leq(y, x)) ideals[x] |= 1u << y;
    }
  }
  // Cuts = ∩-closure of the principal ideals, plus the full set (empty
  // intersection) — this is exactly { Y : Y = (Y^u)^l } for finite posets.
  std::set<Cut> cuts{everything};
  for (Cut ideal : ideals) cuts.insert(ideal);
  bool grew = true;
  while (grew) {
    grew = false;
    const std::vector<Cut> snapshot(cuts.begin(), cuts.end());
    for (Cut a : snapshot) {
      for (Cut b : snapshot) {
        if (cuts.insert(a & b).second) grew = true;
      }
    }
  }

  const std::vector<Cut> ordered(cuts.begin(), cuts.end());
  const int m = static_cast<int>(ordered.size());
  std::vector<std::vector<bool>> leq(m, std::vector<bool>(m, false));
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) leq[i][j] = (ordered[i] & ordered[j]) == ordered[i];
  }
  auto completion_poset = FinitePoset::from_leq(std::move(leq));
  SLAT_ASSERT(completion_poset.has_value());
  auto lattice = FiniteLattice::from_poset(std::move(*completion_poset));
  SLAT_ASSERT_MSG(lattice.has_value(),
                  "a ∩-closed family ordered by ⊆ is always a lattice");

  DedekindMacNeille out{std::move(*lattice), std::vector<Elem>(n, -1)};
  for (int x = 0; x < n; ++x) {
    const auto it = std::find(ordered.begin(), ordered.end(), ideals[x]);
    SLAT_ASSERT(it != ordered.end());
    out.embedding[x] = static_cast<Elem>(it - ordered.begin());
  }
  return out;
}

FinitePoset join_irreducible_poset(const FiniteLattice& lattice) {
  const auto irr = lattice.join_irreducibles();
  const int size = static_cast<int>(irr.size());
  std::vector<std::vector<bool>> leq(size, std::vector<bool>(size, false));
  for (int a = 0; a < size; ++a)
    for (int b = 0; b < size; ++b) leq[a][b] = lattice.leq(irr[a], irr[b]);
  auto poset = FinitePoset::from_leq(std::move(leq));
  SLAT_ASSERT(poset.has_value());
  return std::move(*poset);
}

}  // namespace slat::lattice
