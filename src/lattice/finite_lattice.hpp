// Finite lattices with precomputed meet/join tables and the structural
// predicates the paper's theorems are stated against: bounded, modular,
// distributive, complemented.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "core/memo_cache.hpp"
#include "lattice/finite_poset.hpp"

namespace slat::lattice {

/// A finite lattice. Invariants established at construction: the underlying
/// poset is a lattice, with a bottom (0) and a top (1); `meet` and `join`
/// tables are total.
class FiniteLattice {
 public:
  /// Wraps a poset that is a lattice. Returns std::nullopt otherwise.
  static std::optional<FiniteLattice> from_poset(FinitePoset poset);

  /// Convenience: build from cover pairs, requiring the result to be a lattice.
  static std::optional<FiniteLattice> from_covers(
      int n, const std::vector<std::pair<Elem, Elem>>& covers);

  int size() const { return poset_.size(); }
  const FinitePoset& poset() const { return poset_; }

  bool leq(Elem a, Elem b) const { return poset_.leq(a, b); }
  bool lt(Elem a, Elem b) const { return poset_.lt(a, b); }

  Elem meet(Elem a, Elem b) const { return meet_[a][b]; }
  Elem join(Elem a, Elem b) const { return join_[a][b]; }

  Elem bottom() const { return bottom_; }
  Elem top() const { return top_; }

  /// n-ary meet/join over a set of elements (empty meet = top, empty join =
  /// bottom, per the usual convention in a bounded lattice).
  Elem meet_all(const std::vector<Elem>& xs) const;
  Elem join_all(const std::vector<Elem>& xs) const;

  /// All complements of `a`: every b with a ∧ b = 0 and a ∨ b = 1. In a
  /// non-distributive lattice there may be several (M3) or none.
  std::vector<Elem> complements(Elem a) const;

  /// Structural predicates. Each is an exhaustive check over the lattice and
  /// caches nothing; the library's lattices are small.
  bool is_modular() const;
  bool is_distributive() const;
  bool is_complemented() const;
  /// Modular + complemented — the setting of the paper's Section 3.
  bool is_paper_setting() const { return is_modular() && is_complemented(); }
  /// Boolean algebra = distributive + complemented.
  bool is_boolean() const { return is_distributive() && is_complemented(); }

  /// If the lattice is modular, returns std::nullopt. Otherwise returns a
  /// witness (a, b, c) with a ≤ c but a ∨ (b ∧ c) ≠ (a ∨ b) ∧ c.
  std::optional<std::array<Elem, 3>> modularity_counterexample() const;
  /// Likewise for distributivity: a ∧ (b ∨ c) ≠ (a ∧ b) ∨ (a ∧ c).
  std::optional<std::array<Elem, 3>> distributivity_counterexample() const;

  /// Verifies the algebraic lattice laws from the paper's Section 3
  /// (associativity, commutativity, idempotency, absorption, and their
  /// duals) directly on the meet/join tables. Always true for a correctly
  /// constructed instance; exposed so tests can exercise the axioms
  /// themselves, as the paper does.
  bool satisfies_lattice_axioms() const;

  /// Join-irreducible elements: x ≠ 0 such that x = a ∨ b implies x ∈ {a, b}.
  std::vector<Elem> join_irreducibles() const;

  /// The dual lattice.
  FiniteLattice dual() const;

  bool operator==(const FiniteLattice& other) const { return poset_ == other.poset_; }

  /// 128-bit structural digest (the meet table determines the lattice), used
  /// to content-address closure/decomposition memo-cache entries. Computed
  /// once at construction — lattices are built rarely and queried a lot.
  const core::Digest& content_digest() const { return digest_; }

 private:
  FiniteLattice(FinitePoset poset, std::vector<std::vector<Elem>> meet,
                std::vector<std::vector<Elem>> join, Elem bottom, Elem top);

  FinitePoset poset_;
  std::vector<std::vector<Elem>> meet_;
  std::vector<std::vector<Elem>> join_;
  Elem bottom_ = 0;
  Elem top_ = 0;
  core::Digest digest_;
};

}  // namespace slat::lattice
