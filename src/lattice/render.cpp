#include "lattice/render.hpp"

#include <algorithm>
#include <sstream>

#include "common/assert.hpp"

namespace slat::lattice {

namespace {

std::string label_of(int a, const std::vector<std::string>& labels) {
  if (a < static_cast<int>(labels.size()) && !labels[a].empty()) return labels[a];
  return std::to_string(a);
}

}  // namespace

std::vector<int> element_heights(const FiniteLattice& lattice) {
  const int n = lattice.size();
  std::vector<int> height(n, 0);
  // Heights via repeated relaxation over covers; the lattice is tiny.
  const auto covers = lattice.poset().cover_pairs();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [lo, hi] : covers) {
      if (height[hi] < height[lo] + 1) {
        height[hi] = height[lo] + 1;
        changed = true;
      }
    }
  }
  return height;
}

std::string to_dot(const FiniteLattice& lattice, const std::vector<std::string>& labels) {
  std::ostringstream out;
  out << "digraph hasse {\n  rankdir=BT;\n  node [shape=circle];\n";
  for (int a = 0; a < lattice.size(); ++a) {
    out << "  n" << a << " [label=\"" << label_of(a, labels) << "\"];\n";
  }
  for (const auto& [lo, hi] : lattice.poset().cover_pairs()) {
    out << "  n" << lo << " -> n" << hi << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string to_text(const FiniteLattice& lattice, const std::vector<std::string>& labels) {
  const auto height = element_heights(lattice);
  const int max_height = *std::max_element(height.begin(), height.end());
  std::ostringstream out;
  for (int h = max_height; h >= 0; --h) {
    out << "rank " << h << ":";
    for (int a = 0; a < lattice.size(); ++a) {
      if (height[a] == h) out << "  " << label_of(a, labels);
    }
    out << "\n";
  }
  out << "covers:";
  for (const auto& [lo, hi] : lattice.poset().cover_pairs()) {
    out << "  " << label_of(lo, labels) << "<" << label_of(hi, labels);
  }
  out << "\n";
  return out.str();
}

}  // namespace slat::lattice
